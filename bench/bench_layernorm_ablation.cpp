// Reproduces Fig. 7: the LayerNorm latency-minimization method. Compares the
// straightforward schedule, step one (online ΣG accumulators), and step one +
// step two (var = E[G²] − E[G]²) on whole-ResBlock latency.
#include <cstdio>

#include "core/accelerator.hpp"
#include "table.hpp"

int main() {
  using namespace tfacc;

  bench::title("Fig. 7 — LayerNorm tail after the last G column (cycles)");
  std::printf("%-22s | %10s %10s %10s\n", "strategy", "d=512", "d=768",
              "d=1024");
  bench::rule();
  const AcceleratorConfig base;
  struct Row {
    const char* name;
    LayerNormStrategy strategy;
  };
  for (const Row row : {Row{"straightforward", LayerNormStrategy::kStraightforward},
                        Row{"step one", LayerNormStrategy::kStepOne},
                        Row{"step one + two", LayerNormStrategy::kStepOneAndTwo}}) {
    std::printf("%-22s |", row.name);
    for (int d : {512, 768, 1024})
      std::printf(" %10lld", static_cast<long long>(LayerNormModule::tail_cycles(
                                 base, row.strategy, d)));
    std::printf("\n");
  }
  std::printf("\nThe paper: the straightforward way adds at least 128h cycles\n"
              "(2 x 64h) over the optimized module — here %lld at d_model=512.\n",
              static_cast<long long>(
                  LayerNormModule::tail_cycles(
                      base, LayerNormStrategy::kStraightforward, 512) -
                  LayerNormModule::tail_cycles(
                      base, LayerNormStrategy::kStepOneAndTwo, 512)));

  bench::title("End-to-end ResBlock latency by strategy (s = 64, base model)");
  std::printf("%-22s | %12s %12s | %12s %12s\n", "strategy", "MHA cyc",
              "MHA us", "FFN cyc", "FFN us");
  bench::rule(80);
  for (const Row row : {Row{"straightforward", LayerNormStrategy::kStraightforward},
                        Row{"step one", LayerNormStrategy::kStepOne},
                        Row{"step one + two", LayerNormStrategy::kStepOneAndTwo}}) {
    AcceleratorConfig cfg;
    cfg.layernorm_strategy = row.strategy;
    Accelerator acc(cfg);
    const RunReport mha = acc.time_mha(64, 64, 512, 8);
    const RunReport ffn = acc.time_ffn(64, 512, 2048);
    std::printf("%-22s | %12lld %12.2f | %12lld %12.2f\n", row.name,
                static_cast<long long>(mha.total_cycles), mha.microseconds(),
                static_cast<long long>(ffn.total_cycles), ffn.microseconds());
  }
  std::printf("\nLayerNorm sits on the critical path of both blocks (Section\n"
              "IV-B): every cycle of its tail is a cycle of system latency.\n");
  return 0;
}
