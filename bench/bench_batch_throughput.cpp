// EXTENSION (ROADMAP scale axis: batching/throughput): sentences/sec of a
// farm of accelerator cards decoding independent translation requests.
//
// The paper reports batch-1 latency of one FPGA card; a serving deployment
// replicates the card and spreads requests across the replicas — since PR 3
// through a work-stealing RequestQueue instead of a static round-robin deal.
// BatchRunner simulates every card on its own host thread, so this bench
// reports both
//  * wall sent/s  — how fast this machine simulates the farm (host-bound), and
//  * modeled sent/s — n / makespan at 200 MHz, the throughput a real farm of
//    these cards would sustain (the architecture-level number).
//
// The second table is this PR's point: continuous batching packs up to
// `slots` live sentences' single-row decode steps into one multi-row SA
// invocation. One-row steps are weight-load bound (a 64-cycle tile load buys
// a ~9-cycle pass); packed steps stream full tiles, so modeled throughput
// and SA utilization rise at the same card count.
//
// Machine-readable results land in BENCH_batch.json for cross-PR tracking.
//
//   $ ./build/bench_batch_throughput [sentences]
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "core/batch_runner.hpp"
#include "core/full_model.hpp"
#include "json.hpp"
#include "nlp/synthetic.hpp"
#include "reference/weights.hpp"
#include "serve/scheduler.hpp"
#include "table.hpp"
#include "tensor/kernels.hpp"

int main(int argc, char** argv) {
  using namespace tfacc;
  const int sentences = argc > 1 ? std::atoi(argv[1]) : 32;

  // Hardware-compatible small model (one 64-wide head, as examples/translate).
  // Random weights: throughput depends only on shapes and decode lengths,
  // both of which are deterministic here, not on translation quality.
  ModelConfig cfg;
  cfg.name = "batch-bench";
  cfg.d_model = 64;
  cfg.d_ff = 256;
  cfg.num_heads = 1;
  cfg.head_dim = 64;
  cfg.num_encoder_layers = 1;
  cfg.num_decoder_layers = 1;

  const SyntheticTranslationTask task(24, 5, 8);
  Rng rng(17);
  const TransformerWeights weights =
      TransformerWeights::random(cfg, task.vocab_size(), rng);
  std::vector<TokenSeq> calib, sources;
  for (int i = 0; i < 4; ++i) calib.push_back(task.sample(rng).source);
  for (int i = 0; i < sentences; ++i)
    sources.push_back(task.sample(rng).source);
  const int max_len = task.max_len() + 2;

  std::ofstream json_file("BENCH_batch.json");
  bench::JsonWriter json(json_file);
  json.begin_object();
  json.key("bench").value("batch_throughput");
  json.key("sentences").value(sentences);
  json.key("max_len").value(max_len);
  bench::write_host_info(json);

  bench::title("Accelerator-farm decode throughput (" +
               std::to_string(sentences) + " sentences, greedy, max_len " +
               std::to_string(max_len) + ", 1 slot/card)");
  std::printf("%5s | %9s %12s | %14s %14s %9s\n", "cards", "wall s",
              "wall sent/s", "makespan cyc", "modeled sent/s", "speedup");
  bench::rule(74);

  json.key("card_sweep").begin_array();
  double base_modeled = 0.0;
  double modeled_at_8 = 0.0;
  for (const int cards : {1, 2, 4, 8}) {
    BatchConfig bc;
    bc.num_cards = cards;
    bc.max_len = max_len;
    // Bench-gated ledgers run under the typed verifier (PR 7).
    bc.accel.verify_schedules = true;
    BatchRunner runner(weights, calib, bc);
    const BatchReport rep = runner.run(sources);
    const double modeled = rep.modeled_sentences_per_second();
    if (cards == 1) base_modeled = modeled;
    if (cards == 8) modeled_at_8 = modeled;
    std::printf("%5d | %9.3f %12.1f | %14lld %14.1f %8.2fx\n", cards,
                rep.wall_seconds, rep.wall_sentences_per_second(),
                static_cast<long long>(rep.makespan_cycles()), modeled,
                base_modeled > 0 ? modeled / base_modeled : 1.0);
    json.begin_object();
    json.key("cards").value(cards);
    json.key("slots_per_card").value(1);
    json.key("makespan_cycles")
        .value(static_cast<long long>(rep.makespan_cycles()));
    json.key("modeled_sentences_per_second").value(modeled);
    json.key("sa_utilization").value(rep.sa_utilization());
    bench::write_module_breakdown(
        json, static_cast<long long>(rep.total_cycles()),
        static_cast<long long>(rep.sa_busy_cycles),
        static_cast<long long>(rep.softmax_busy_cycles),
        static_cast<long long>(rep.layernorm_busy_cycles),
        static_cast<long long>(rep.softmax_stall_cycles),
        static_cast<long long>(rep.boundary_stall_cycles),
        static_cast<long long>(rep.prefill_stall_cycles));
    json.end_object();
  }
  json.end_array();

  const double card_speedup =
      base_modeled > 0 ? modeled_at_8 / base_modeled : 0.0;
  std::printf("\n8-card modeled speedup over 1 card: %.2fx (target >= 3x: "
              "%s)\n",
              card_speedup, card_speedup >= 3.0 ? "PASS" : "FAIL");

  bench::title(
      "Continuous batching: one-row steps (PR 2) vs packed slots (1 card)");
  std::printf("%5s | %12s %12s | %14s %14s %8s\n", "slots", "steps",
              "rows/step", "makespan cyc", "modeled sent/s", "SA util");
  bench::rule(74);

  json.key("slot_sweep").begin_array();
  double one_row_modeled = 0.0, packed_modeled = 0.0;
  double one_row_util = 0.0, packed_util = 0.0;
  std::vector<TokenSeq> one_row_outputs;
  bool outputs_identical = true;
  for (const int slots : {1, 8}) {
    BatchConfig bc;
    bc.num_cards = 1;
    bc.max_len = max_len;
    bc.slots_per_card = slots;
    bc.accel.verify_schedules = true;
    BatchRunner runner(weights, calib, bc);
    const BatchReport rep = runner.run(sources);
    if (slots == 1) {
      one_row_outputs = rep.outputs;
      one_row_modeled = rep.modeled_sentences_per_second();
      one_row_util = rep.sa_utilization();
    } else {
      outputs_identical = rep.outputs == one_row_outputs;
      packed_modeled = rep.modeled_sentences_per_second();
      packed_util = rep.sa_utilization();
    }
    std::printf("%5d | %12ld %12.2f | %14lld %14.1f %7.1f%%\n", slots,
                rep.packed_steps, rep.packed_rows_mean(),
                static_cast<long long>(rep.makespan_cycles()),
                rep.modeled_sentences_per_second(),
                100.0 * rep.sa_utilization());
    json.begin_object();
    json.key("cards").value(1);
    json.key("slots_per_card").value(slots);
    json.key("packed_steps").value(rep.packed_steps);
    json.key("packed_rows_mean").value(rep.packed_rows_mean());
    json.key("makespan_cycles")
        .value(static_cast<long long>(rep.makespan_cycles()));
    json.key("modeled_sentences_per_second")
        .value(rep.modeled_sentences_per_second());
    json.key("sa_utilization").value(rep.sa_utilization());
    bench::write_module_breakdown(
        json, static_cast<long long>(rep.total_cycles()),
        static_cast<long long>(rep.sa_busy_cycles),
        static_cast<long long>(rep.softmax_busy_cycles),
        static_cast<long long>(rep.layernorm_busy_cycles),
        static_cast<long long>(rep.softmax_stall_cycles),
        static_cast<long long>(rep.boundary_stall_cycles),
        static_cast<long long>(rep.prefill_stall_cycles));
    json.end_object();
  }
  json.end_array();

  const bool packed_wins = outputs_identical &&
                           packed_modeled > one_row_modeled &&
                           packed_util > one_row_util;
  std::printf(
      "\npacked vs one-row at batch %d: %.2fx modeled sent/s, SA utilization "
      "%.1f%% -> %.1f%%, outputs %s (gate: %s)\n",
      sentences, one_row_modeled > 0 ? packed_modeled / one_row_modeled : 0.0,
      100.0 * one_row_util, 100.0 * packed_util,
      outputs_identical ? "bit-identical" : "DIVERGED",
      packed_wins ? "PASS" : "FAIL");

  bench::title("KV cache vs full recompute (1 card, same sentences)");
  double wall[2] = {0.0, 0.0};
  Cycle cycles[2] = {0, 0};
  for (const DecodeMode mode :
       {DecodeMode::kKvCache, DecodeMode::kFullRecompute}) {
    BatchConfig bc;
    bc.num_cards = 1;
    bc.max_len = max_len;
    bc.decode = mode;
    bc.accel.verify_schedules = true;
    BatchRunner runner(weights, calib, bc);
    const BatchReport rep = runner.run(sources);
    const int i = mode == DecodeMode::kKvCache ? 0 : 1;
    wall[i] = rep.wall_seconds;
    cycles[i] = rep.makespan_cycles();
  }
  // Modeled ratio of the analytic scheduler at this workload's shape, for
  // comparison with the measured card cycles (outputs are bit-identical in
  // both modes; only the work to produce them changes).
  const FullModelScheduler sched;
  const double modeled_ratio =
      static_cast<double>(
          sched.greedy_decode(cfg, 8, max_len, false).compute_cycles) /
      sched.greedy_decode(cfg, 8, max_len, true).compute_cycles;
  std::printf(
      "%-22s | %9s %14s\n", "decode mode", "wall s", "card cycles");
  bench::rule(50);
  std::printf("%-22s | %9.3f %14lld\n", "KV cache", wall[0],
              static_cast<long long>(cycles[0]));
  std::printf("%-22s | %9.3f %14lld\n", "full recompute", wall[1],
              static_cast<long long>(cycles[1]));
  std::printf(
      "wall speedup %.2fx, simulated-cycle ratio %.2fx, modeled kv_cache "
      "ratio %.2fx\n",
      wall[0] > 0 ? wall[1] / wall[0] : 0.0,
      cycles[0] > 0 ? static_cast<double>(cycles[1]) / cycles[0] : 0.0,
      modeled_ratio);

  json.key("gates").begin_object();
  json.key("card_speedup_at_8").value(card_speedup);
  json.key("packed_beats_one_row").value(packed_wins);
  json.key("outputs_bit_identical").value(outputs_identical);
  json.end_object();
  json.end_object();
  json_file << '\n';
  std::printf("results written to BENCH_batch.json\n");

  // PR 8: measured wall-clock throughput of the serve step loop per GEMM
  // kernel kind. The quantized backend (no cycle simulator) on a
  // GEMM-dominated model, 16 slots on 1 card — the packed step loop is
  // allocation-free and every projection runs through the packed INT8
  // kernels, so the kernel dispatch is the only thing this sweep varies.
  // Outputs must stay bit-identical across kinds (integer kernels are exact
  // under blocking). The gate — SIMD >= 2x scalar wall sentences/sec — lands
  // in BENCH_wallclock.json for perf_gate.py (skipped on hosts whose kernel
  // capability differs from the baseline's).
  bench::title("Measured wall-clock serve throughput per kernel (16 slots, "
               "1 card, quantized backend, d_model 256)");
  ModelConfig wc_cfg;
  wc_cfg.name = "wallclock-bench";
  wc_cfg.d_model = 256;
  wc_cfg.d_ff = 1024;
  wc_cfg.num_heads = 4;
  wc_cfg.head_dim = 64;
  wc_cfg.num_encoder_layers = 1;
  wc_cfg.num_decoder_layers = 2;
  Rng wc_rng(23);
  const TransformerWeights wc_weights =
      TransformerWeights::random(wc_cfg, task.vocab_size(), wc_rng);
  SchedulerConfig wc_sc;
  wc_sc.backend = ServeBackend::kQuantized;
  wc_sc.num_cards = 1;
  wc_sc.slots_per_card = 16;
  wc_sc.max_len = max_len;
  Scheduler wc_sched(wc_weights, calib, wc_sc);

  std::ofstream wc_file("BENCH_wallclock.json");
  bench::JsonWriter wc_json(wc_file);
  wc_json.begin_object();
  wc_json.key("bench").value("wallclock_kernel_sweep");
  wc_json.key("sentences").value(sentences);
  wc_json.key("max_len").value(max_len);
  wc_json.key("slots").value(16);
  wc_json.key("cards").value(1);
  wc_json.key("d_model").value(wc_cfg.d_model);
  bench::write_host_info(wc_json);

  std::printf("%8s | %9s %12s | %9s\n", "kernel", "wall s", "wall sent/s",
              "vs scalar");
  bench::rule(48);
  wc_json.key("kernel_sweep").begin_array();
  // Three interleaved rounds per kind, keeping each kind's fastest run.
  // Preemption noise only ever slows a run, so min-of-runs is the cleanest
  // estimate; interleaving the kinds keeps one noisy stretch of time from
  // penalizing a single kind's ratio. The first scalar run pins the output
  // reference every later run (any kind) must match bit-for-bit.
  constexpr kernels::Kind kWcKinds[] = {kernels::Kind::kScalar,
                                        kernels::Kind::kBlocked,
                                        kernels::Kind::kSimd};
  double wc_best_wall[3] = {0.0, 0.0, 0.0};
  std::vector<TokenSeq> wc_scalar_outputs;
  bool wc_identical = true;
  for (int round = 0; round < 3; ++round) {
    for (int ki = 0; ki < 3; ++ki) {
      kernels::set_kind(kWcKinds[ki]);
      const ScheduleReport rep = wc_sched.run(sources);
      if (wc_scalar_outputs.empty())
        wc_scalar_outputs = rep.outputs;
      else
        wc_identical = wc_identical && rep.outputs == wc_scalar_outputs;
      if (round == 0 || rep.wall_seconds < wc_best_wall[ki])
        wc_best_wall[ki] = rep.wall_seconds;
    }
  }
  double wc_scalar_sps = 0.0, wc_simd_sps = 0.0;
  for (int ki = 0; ki < 3; ++ki) {
    const double sps =
        wc_best_wall[ki] > 0 ? sentences / wc_best_wall[ki] : 0.0;
    if (kWcKinds[ki] == kernels::Kind::kScalar) wc_scalar_sps = sps;
    if (kWcKinds[ki] == kernels::Kind::kSimd) wc_simd_sps = sps;
    std::printf("%8s | %9.3f %12.1f | %8.2fx\n",
                kernels::kind_name(kWcKinds[ki]), wc_best_wall[ki], sps,
                wc_scalar_sps > 0 ? sps / wc_scalar_sps : 1.0);
    wc_json.begin_object();
    wc_json.key("kernel").value(kernels::kind_name(kWcKinds[ki]));
    wc_json.key("wall_seconds").value(wc_best_wall[ki]);
    wc_json.key("wall_sentences_per_second").value(sps);
    wc_json.end_object();
  }
  wc_json.end_array();
  kernels::refresh_from_env();  // restore the environment's selection

  const double wc_speedup =
      wc_scalar_sps > 0 ? wc_simd_sps / wc_scalar_sps : 0.0;
  wc_json.key("gates").begin_object();
  wc_json.key("wallclock_speedup_vs_scalar").value(wc_speedup);
  wc_json.key("outputs_bit_identical").value(wc_identical);
  wc_json.end_object();
  wc_json.end_object();
  wc_file << '\n';
  const bool wc_wins = wc_identical && wc_speedup >= 2.0;
  std::printf(
      "\nsimd vs scalar at 16 slots: %.2fx wall sentences/sec (>= 2x "
      "required), outputs %s (gate: %s)\n"
      "results written to BENCH_wallclock.json\n",
      wc_speedup, wc_identical ? "bit-identical" : "DIVERGED",
      wc_wins ? "PASS" : "FAIL");

  return card_speedup >= 3.0 && packed_wins && wc_wins ? 0 : 1;
}
