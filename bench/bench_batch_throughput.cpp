// EXTENSION (ROADMAP scale axis: batching/throughput): sentences/sec of a
// farm of accelerator cards decoding independent translation requests.
//
// The paper reports batch-1 latency of one FPGA card; a serving deployment
// replicates the card and spreads requests across the replicas — since PR 3
// through a work-stealing RequestQueue instead of a static round-robin deal.
// BatchRunner simulates every card on its own host thread, so this bench
// reports both
//  * wall sent/s  — how fast this machine simulates the farm (host-bound), and
//  * modeled sent/s — n / makespan at 200 MHz, the throughput a real farm of
//    these cards would sustain (the architecture-level number).
//
// The second table is this PR's point: continuous batching packs up to
// `slots` live sentences' single-row decode steps into one multi-row SA
// invocation. One-row steps are weight-load bound (a 64-cycle tile load buys
// a ~9-cycle pass); packed steps stream full tiles, so modeled throughput
// and SA utilization rise at the same card count.
//
// Machine-readable results land in BENCH_batch.json for cross-PR tracking.
//
//   $ ./build/bench_batch_throughput [sentences]
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "core/batch_runner.hpp"
#include "core/full_model.hpp"
#include "json.hpp"
#include "nlp/synthetic.hpp"
#include "reference/weights.hpp"
#include "table.hpp"

int main(int argc, char** argv) {
  using namespace tfacc;
  const int sentences = argc > 1 ? std::atoi(argv[1]) : 32;

  // Hardware-compatible small model (one 64-wide head, as examples/translate).
  // Random weights: throughput depends only on shapes and decode lengths,
  // both of which are deterministic here, not on translation quality.
  ModelConfig cfg;
  cfg.name = "batch-bench";
  cfg.d_model = 64;
  cfg.d_ff = 256;
  cfg.num_heads = 1;
  cfg.head_dim = 64;
  cfg.num_encoder_layers = 1;
  cfg.num_decoder_layers = 1;

  const SyntheticTranslationTask task(24, 5, 8);
  Rng rng(17);
  const TransformerWeights weights =
      TransformerWeights::random(cfg, task.vocab_size(), rng);
  std::vector<TokenSeq> calib, sources;
  for (int i = 0; i < 4; ++i) calib.push_back(task.sample(rng).source);
  for (int i = 0; i < sentences; ++i)
    sources.push_back(task.sample(rng).source);
  const int max_len = task.max_len() + 2;

  std::ofstream json_file("BENCH_batch.json");
  bench::JsonWriter json(json_file);
  json.begin_object();
  json.key("bench").value("batch_throughput");
  json.key("sentences").value(sentences);
  json.key("max_len").value(max_len);

  bench::title("Accelerator-farm decode throughput (" +
               std::to_string(sentences) + " sentences, greedy, max_len " +
               std::to_string(max_len) + ", 1 slot/card)");
  std::printf("%5s | %9s %12s | %14s %14s %9s\n", "cards", "wall s",
              "wall sent/s", "makespan cyc", "modeled sent/s", "speedup");
  bench::rule(74);

  json.key("card_sweep").begin_array();
  double base_modeled = 0.0;
  double modeled_at_8 = 0.0;
  for (const int cards : {1, 2, 4, 8}) {
    BatchConfig bc;
    bc.num_cards = cards;
    bc.max_len = max_len;
    // Bench-gated ledgers run under the typed verifier (PR 7).
    bc.accel.verify_schedules = true;
    BatchRunner runner(weights, calib, bc);
    const BatchReport rep = runner.run(sources);
    const double modeled = rep.modeled_sentences_per_second();
    if (cards == 1) base_modeled = modeled;
    if (cards == 8) modeled_at_8 = modeled;
    std::printf("%5d | %9.3f %12.1f | %14lld %14.1f %8.2fx\n", cards,
                rep.wall_seconds, rep.wall_sentences_per_second(),
                static_cast<long long>(rep.makespan_cycles()), modeled,
                base_modeled > 0 ? modeled / base_modeled : 1.0);
    json.begin_object();
    json.key("cards").value(cards);
    json.key("slots_per_card").value(1);
    json.key("makespan_cycles")
        .value(static_cast<long long>(rep.makespan_cycles()));
    json.key("modeled_sentences_per_second").value(modeled);
    json.key("sa_utilization").value(rep.sa_utilization());
    bench::write_module_breakdown(
        json, static_cast<long long>(rep.total_cycles()),
        static_cast<long long>(rep.sa_busy_cycles),
        static_cast<long long>(rep.softmax_busy_cycles),
        static_cast<long long>(rep.layernorm_busy_cycles),
        static_cast<long long>(rep.softmax_stall_cycles),
        static_cast<long long>(rep.boundary_stall_cycles),
        static_cast<long long>(rep.prefill_stall_cycles));
    json.end_object();
  }
  json.end_array();

  const double card_speedup =
      base_modeled > 0 ? modeled_at_8 / base_modeled : 0.0;
  std::printf("\n8-card modeled speedup over 1 card: %.2fx (target >= 3x: "
              "%s)\n",
              card_speedup, card_speedup >= 3.0 ? "PASS" : "FAIL");

  bench::title(
      "Continuous batching: one-row steps (PR 2) vs packed slots (1 card)");
  std::printf("%5s | %12s %12s | %14s %14s %8s\n", "slots", "steps",
              "rows/step", "makespan cyc", "modeled sent/s", "SA util");
  bench::rule(74);

  json.key("slot_sweep").begin_array();
  double one_row_modeled = 0.0, packed_modeled = 0.0;
  double one_row_util = 0.0, packed_util = 0.0;
  std::vector<TokenSeq> one_row_outputs;
  bool outputs_identical = true;
  for (const int slots : {1, 8}) {
    BatchConfig bc;
    bc.num_cards = 1;
    bc.max_len = max_len;
    bc.slots_per_card = slots;
    bc.accel.verify_schedules = true;
    BatchRunner runner(weights, calib, bc);
    const BatchReport rep = runner.run(sources);
    if (slots == 1) {
      one_row_outputs = rep.outputs;
      one_row_modeled = rep.modeled_sentences_per_second();
      one_row_util = rep.sa_utilization();
    } else {
      outputs_identical = rep.outputs == one_row_outputs;
      packed_modeled = rep.modeled_sentences_per_second();
      packed_util = rep.sa_utilization();
    }
    std::printf("%5d | %12ld %12.2f | %14lld %14.1f %7.1f%%\n", slots,
                rep.packed_steps, rep.packed_rows_mean(),
                static_cast<long long>(rep.makespan_cycles()),
                rep.modeled_sentences_per_second(),
                100.0 * rep.sa_utilization());
    json.begin_object();
    json.key("cards").value(1);
    json.key("slots_per_card").value(slots);
    json.key("packed_steps").value(rep.packed_steps);
    json.key("packed_rows_mean").value(rep.packed_rows_mean());
    json.key("makespan_cycles")
        .value(static_cast<long long>(rep.makespan_cycles()));
    json.key("modeled_sentences_per_second")
        .value(rep.modeled_sentences_per_second());
    json.key("sa_utilization").value(rep.sa_utilization());
    bench::write_module_breakdown(
        json, static_cast<long long>(rep.total_cycles()),
        static_cast<long long>(rep.sa_busy_cycles),
        static_cast<long long>(rep.softmax_busy_cycles),
        static_cast<long long>(rep.layernorm_busy_cycles),
        static_cast<long long>(rep.softmax_stall_cycles),
        static_cast<long long>(rep.boundary_stall_cycles),
        static_cast<long long>(rep.prefill_stall_cycles));
    json.end_object();
  }
  json.end_array();

  const bool packed_wins = outputs_identical &&
                           packed_modeled > one_row_modeled &&
                           packed_util > one_row_util;
  std::printf(
      "\npacked vs one-row at batch %d: %.2fx modeled sent/s, SA utilization "
      "%.1f%% -> %.1f%%, outputs %s (gate: %s)\n",
      sentences, one_row_modeled > 0 ? packed_modeled / one_row_modeled : 0.0,
      100.0 * one_row_util, 100.0 * packed_util,
      outputs_identical ? "bit-identical" : "DIVERGED",
      packed_wins ? "PASS" : "FAIL");

  bench::title("KV cache vs full recompute (1 card, same sentences)");
  double wall[2] = {0.0, 0.0};
  Cycle cycles[2] = {0, 0};
  for (const DecodeMode mode :
       {DecodeMode::kKvCache, DecodeMode::kFullRecompute}) {
    BatchConfig bc;
    bc.num_cards = 1;
    bc.max_len = max_len;
    bc.decode = mode;
    bc.accel.verify_schedules = true;
    BatchRunner runner(weights, calib, bc);
    const BatchReport rep = runner.run(sources);
    const int i = mode == DecodeMode::kKvCache ? 0 : 1;
    wall[i] = rep.wall_seconds;
    cycles[i] = rep.makespan_cycles();
  }
  // Modeled ratio of the analytic scheduler at this workload's shape, for
  // comparison with the measured card cycles (outputs are bit-identical in
  // both modes; only the work to produce them changes).
  const FullModelScheduler sched;
  const double modeled_ratio =
      static_cast<double>(
          sched.greedy_decode(cfg, 8, max_len, false).compute_cycles) /
      sched.greedy_decode(cfg, 8, max_len, true).compute_cycles;
  std::printf(
      "%-22s | %9s %14s\n", "decode mode", "wall s", "card cycles");
  bench::rule(50);
  std::printf("%-22s | %9.3f %14lld\n", "KV cache", wall[0],
              static_cast<long long>(cycles[0]));
  std::printf("%-22s | %9.3f %14lld\n", "full recompute", wall[1],
              static_cast<long long>(cycles[1]));
  std::printf(
      "wall speedup %.2fx, simulated-cycle ratio %.2fx, modeled kv_cache "
      "ratio %.2fx\n",
      wall[0] > 0 ? wall[1] / wall[0] : 0.0,
      cycles[0] > 0 ? static_cast<double>(cycles[1]) / cycles[0] : 0.0,
      modeled_ratio);

  json.key("gates").begin_object();
  json.key("card_speedup_at_8").value(card_speedup);
  json.key("packed_beats_one_row").value(packed_wins);
  json.key("outputs_bit_identical").value(outputs_identical);
  json.end_object();
  json.end_object();
  json_file << '\n';
  std::printf("results written to BENCH_batch.json\n");

  return card_speedup >= 3.0 && packed_wins ? 0 : 1;
}
