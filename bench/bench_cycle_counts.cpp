// Reproduces the Section V.B simulation result: 21,344 cycles per MHA
// ResBlock and 42,099 cycles per FFN ResBlock at s = 64, batch 1, on the
// 64×64 systolic array — plus a sweep over sequence length and the
// per-component cycle accounting of the model.
#include <cstdio>

#include "core/accelerator.hpp"
#include "table.hpp"

int main() {
  using namespace tfacc;
  Accelerator acc;

  bench::title("Section V.B — ResBlock cycle counts (s = 64, batch 1)");
  const RunReport mha = acc.time_mha(64, 64, 512, 8);
  const RunReport ffn = acc.time_ffn(64, 512, 2048);
  std::printf("%-14s %10s %10s %9s\n", "block", "paper", "simulated",
              "delta %");
  bench::rule();
  std::printf("%-14s %10d %10lld %+8.2f%%\n", "MHA ResBlock", 21344,
              static_cast<long long>(mha.total_cycles),
              bench::delta_pct(static_cast<double>(mha.total_cycles), 21344));
  std::printf("%-14s %10d %10lld %+8.2f%%\n", "FFN ResBlock", 42099,
              static_cast<long long>(ffn.total_cycles),
              bench::delta_pct(static_cast<double>(ffn.total_cycles), 42099));

  bench::title("Cycle accounting (simulated)");
  std::printf("%-28s %12s %12s\n", "component", "MHA", "FFN");
  bench::rule();
  auto row = [](const char* name, Cycle a, Cycle b) {
    std::printf("%-28s %12lld %12lld\n", name, static_cast<long long>(a),
                static_cast<long long>(b));
  };
  row("SA streaming (MAC-issuing)", mha.sa_stream, ffn.sa_stream);
  row("SA drain bubbles", mha.sa_busy - mha.sa_stream - mha.accum_spill,
      ffn.sa_busy - ffn.sa_stream - ffn.accum_spill);
  row("accumulator spills", mha.accum_spill, ffn.accum_spill);
  row("exposed weight loads", mha.exposed_weight_load,
      ffn.exposed_weight_load);
  row("LayerNorm tail", mha.layernorm_busy, ffn.layernorm_busy);
  row("total", mha.total_cycles, ffn.total_cycles);
  std::printf("%-28s %11.1f%% %11.1f%%\n", "SA busy utilization",
              100.0 * mha.sa_utilization(), 100.0 * ffn.sa_utilization());
  std::printf("%-28s %11.1f%% %11.1f%%\n", "SA MAC utilization",
              100.0 * mha.sa_mac_utilization(),
              100.0 * ffn.sa_mac_utilization());

  bench::title("Sweep over max sequence length (Transformer-base)");
  std::printf("%6s | %12s %12s | %12s %12s | %8s\n", "s", "MHA cyc",
              "MHA us", "FFN cyc", "FFN us", "sm slack");
  bench::rule();
  for (int s : {16, 32, 48, 64, 96, 128}) {
    const RunReport m = acc.time_mha(s, s, 512, 8);
    const RunReport f = acc.time_ffn(s, 512, 2048);
    std::printf("%6d | %12lld %12.2f | %12lld %12.2f | %8lld\n", s,
                static_cast<long long>(m.total_cycles), m.microseconds(),
                static_cast<long long>(f.total_cycles), f.microseconds(),
                static_cast<long long>(m.softmax_slack_min));
  }

  bench::title("Back-to-back streaming (extension): weights resident, "
               "LayerNorm tail overlapped");
  std::printf("%-14s | %14s %16s | %14s\n", "block", "1st latency",
              "steady interval", "seq/s");
  bench::rule(70);
  const auto sm_mha = acc.stream_mha(64, 64, 512, 8);
  const auto sm_ffn = acc.stream_ffn(64, 512, 2048);
  std::printf("%-14s | %14lld %16lld | %14.0f\n", "MHA ResBlock",
              static_cast<long long>(sm_mha.first_latency),
              static_cast<long long>(sm_mha.steady_interval),
              sm_mha.sequences_per_second());
  std::printf("%-14s | %14lld %16lld | %14.0f\n", "FFN ResBlock",
              static_cast<long long>(sm_ffn.first_latency),
              static_cast<long long>(sm_ffn.steady_interval),
              sm_ffn.sequences_per_second());

  bench::title("Model variants (s = 64)");
  std::printf("%-18s | %12s %12s\n", "model", "MHA cyc", "FFN cyc");
  bench::rule();
  struct Variant {
    const char* name;
    int d_model, d_ff, h;
  };
  for (const Variant v : {Variant{"transformer-base", 512, 2048, 8},
                          Variant{"bert-base", 768, 3072, 12},
                          Variant{"transformer-big", 1024, 4096, 16}}) {
    std::printf("%-18s | %12lld %12lld\n", v.name,
                static_cast<long long>(
                    acc.time_mha(64, 64, v.d_model, v.h).total_cycles),
                static_cast<long long>(
                    acc.time_ffn(64, v.d_model, v.d_ff).total_cycles));
  }
  return 0;
}
