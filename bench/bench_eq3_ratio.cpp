// Reproduces the Eq. 3 analysis: the share of Q_i·K_iᵀ multiplies in the MHA
// ResBlock, which justifies handling that one operation specially (zero
// padding / Q_i partitioning) without hurting overall SA utilization.
//
// Prints the paper's simplified formula s/(s + 256h² + 64) next to the exact
// MAC-count ratio, swept over sequence length and head count.
#include <cstdio>

#include "perf/analysis.hpp"
#include "table.hpp"

int main() {
  using namespace tfacc;
  bench::title("Eq. 3 — share of Q·Kᵀ multiplies in the MHA ResBlock");
  std::printf("%6s %4s %10s | %14s %14s\n", "s", "h", "d_model",
              "paper Eq.(3) %", "exact MACs %");
  bench::rule();
  for (int h : {8, 12, 16}) {
    const int d_model = 64 * h;
    for (int s : {16, 32, 64, 128}) {
      std::printf("%6d %4d %10d | %14.4f %14.4f\n", s, h, d_model,
                  100.0 * qkt_ratio_paper(s, h),
                  100.0 * qkt_ratio_exact(s, d_model, h));
    }
  }
  std::printf(
      "\nAt the paper's design point (s=64, h=8) the share is %.4f%% — the\n"
      "Q·Kᵀ special case cannot meaningfully hurt SA utilization.\n",
      100.0 * qkt_ratio_paper(64, 8));

  bench::title("MAC budget per ResBlock (batch 1, Transformer-base)");
  std::printf("%6s | %14s %14s\n", "s", "MHA MACs", "FFN MACs");
  bench::rule();
  for (int s : {16, 32, 64, 128}) {
    std::printf("%6d | %14lld %14lld\n", s,
                static_cast<long long>(mha_macs(s, 512, 8).total()),
                static_cast<long long>(ffn_macs(s, 512, 2048)));
  }
  return 0;
}
