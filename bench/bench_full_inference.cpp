// EXTENSION (the paper's stated future work): latency of the *complete*
// Transformer inference on the accelerator — full encoder pass and greedy
// decoding — including per-layer weight DMA (the Fig. 5 weight memory holds
// one layer) and the KV-cache decoding mode. GPU baseline from the same
// calibrated eager model used for Table III.
//
// The last section measures the *functional* stack (the code that actually
// produces tokens) decoding with and without KV caches, next to the modeled
// cached/naive ratio — since the incremental-decode rework, the measured
// system exercises the same O(L²) path the cycle model assumes.
#include <chrono>
#include <cstdio>

#include "core/full_model.hpp"
#include "perf/gpu_model.hpp"
#include "reference/transformer.hpp"
#include "table.hpp"
#include "tensor/kernels.hpp"

namespace {

/// Wall seconds of `out_len` forced decode steps (tokens fed cyclically so
/// an early EOS cannot shorten the comparison) on the reference stack.
double decode_wall_seconds(const tfacc::Transformer& model,
                           const tfacc::MatF& memory, int src_valid,
                           int out_len, tfacc::DecodeMode mode) {
  using namespace tfacc;
  const auto t0 = std::chrono::steady_clock::now();
  if (mode == DecodeMode::kKvCache) {
    DecodeState state = model.begin_decode(memory, src_valid);
    for (int t = 0; t < out_len; ++t) model.decode_step(state, 3 + (t % 7));
  } else {
    TokenSeq tgt{kBosId};
    for (int t = 0; t < out_len; ++t) {
      model.next_token_logits(tgt, memory, src_valid);
      tgt.push_back(3 + (t % 7));
    }
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  using namespace tfacc;
  const ModelConfig cfg = ModelConfig::transformer_base();
  const int s = 64;

  bench::title("Full encoder pass (6 layers, s = 64, Transformer-base)");
  std::printf("%-22s | %12s %12s %12s | %10s\n", "weight streaming",
              "compute cyc", "DMA cyc", "exposed", "total us");
  bench::rule(84);
  for (bool db : {true, false}) {
    DmaConfig dma;
    dma.double_buffered = db;
    const FullModelScheduler sched({}, dma);
    const FullModelReport rep = sched.encoder_pass(cfg, s);
    std::printf("%-22s | %12lld %12lld %12lld | %10.1f\n",
                db ? "double-buffered" : "serial reload",
                static_cast<long long>(rep.compute_cycles),
                static_cast<long long>(rep.dma_cycles),
                static_cast<long long>(rep.dma_exposed_cycles),
                rep.microseconds());
  }
  const double gpu_layer =
      gpu_mha_latency(s, cfg.d_model, cfg.num_heads).total_us +
      gpu_ffn_latency(s, cfg.d_model, cfg.d_ff).total_us;
  std::printf("GPU eager baseline (6 layers): %.1f us\n",
              6.0 * gpu_layer);

  bench::title("Greedy decoding, 32 output tokens from a 64-token source");
  std::printf("%-28s | %14s %12s | %10s\n", "decoder mode", "compute cyc",
              "exposed DMA", "ms total");
  bench::rule(76);
  const FullModelScheduler sched;
  const FullModelReport naive = sched.greedy_decode(cfg, 64, 32, false);
  const FullModelReport cached = sched.greedy_decode(cfg, 64, 32, true);
  std::printf("%-28s | %14lld %12lld | %10.2f\n", "naive (recompute rows)",
              static_cast<long long>(naive.compute_cycles),
              static_cast<long long>(naive.dma_exposed_cycles),
              naive.microseconds() / 1000.0);
  std::printf("%-28s | %14lld %12lld | %10.2f\n", "KV cache",
              static_cast<long long>(cached.compute_cycles),
              static_cast<long long>(cached.dma_exposed_cycles),
              cached.microseconds() / 1000.0);
  std::printf(
      "\nKV caching removes %.0f%% of decode compute — less than one might\n"
      "expect, because below ~%d rows every tile pass is bounded by the\n"
      "64-cycle weight load, not by row streaming. Weight movement (loads +\n"
      "DMA) is the first-order cost of autoregressive decoding on this\n"
      "architecture, the same wall real LLM serving hits.\n",
      100.0 * (1.0 - static_cast<double>(cached.compute_cycles) /
                         naive.compute_cycles),
      64 - 8);

  bench::title("Tokens/second vs output length (KV cache, double-buffered)");
  std::printf("%10s | %12s %12s\n", "out tokens", "ms", "tok/s");
  bench::rule();
  for (int out : {8, 16, 32, 64, 128}) {
    const FullModelReport rep = sched.greedy_decode(cfg, 64, out, true);
    std::printf("%10d | %12.2f %12.0f\n", out, rep.microseconds() / 1000.0,
                out / (rep.microseconds() * 1e-6));
  }

  bench::title("DMA bandwidth sensitivity (KV cache, 32 tokens)");
  std::printf("%16s | %12s %14s\n", "bytes/cycle", "ms total",
              "exposed DMA %");
  bench::rule();
  for (double bpc : {16.0, 32.0, 64.0, 128.0, 256.0}) {
    DmaConfig dma;
    dma.bytes_per_cycle = bpc;
    const FullModelScheduler s2({}, dma);
    const FullModelReport rep = s2.greedy_decode(cfg, 64, 32, true);
    std::printf("%16.0f | %12.2f %13.1f%%\n", bpc,
                rep.microseconds() / 1000.0,
                100.0 * rep.dma_exposed_cycles / rep.total_cycles);
  }

  bench::title(
      "Measured functional decode: KV cache vs full recompute "
      "(Transformer-base, FP32 reference stack)");
  Rng rng(7);
  Transformer model(TransformerWeights::random(cfg, /*vocab=*/256, rng));
  const TokenSeq bench_src(16, 3);
  const MatF memory = model.encode(bench_src);
  const int src_valid = static_cast<int>(bench_src.size());
  std::printf("%10s | %12s %12s %10s | %12s\n", "out tokens", "naive s",
              "cached s", "speedup", "modeled x");
  bench::rule(70);
  double speedup_at_32 = 0.0;
  for (const int out : {8, 16, 32}) {
    const double naive_s = decode_wall_seconds(model, memory, src_valid, out,
                                               DecodeMode::kFullRecompute);
    const double cached_s = decode_wall_seconds(model, memory, src_valid, out,
                                                DecodeMode::kKvCache);
    const double modeled =
        static_cast<double>(
            sched.greedy_decode(cfg, src_valid, out, false).compute_cycles) /
        sched.greedy_decode(cfg, src_valid, out, true).compute_cycles;
    const double speedup = naive_s / cached_s;
    if (out == 32) speedup_at_32 = speedup;
    std::printf("%10d | %12.3f %12.3f %9.2fx | %11.2fx\n", out, naive_s,
                cached_s, speedup, modeled);
  }
  std::printf(
      "\ncached speedup at 32 tokens: %.2fx (target >= 3x: %s)\n"
      "The measured ratio exceeds the modeled compute-cycle ratio: the\n"
      "accelerator model is weight-load bound at small row counts, while\n"
      "the host FP32 stack pays the full O(L^3) arithmetic.\n",
      speedup_at_32, speedup_at_32 >= 3.0 ? "PASS" : "FAIL");

  // PR 8: the same KV-cached decode under each GEMM kernel kind. FP32 stays
  // bit-identical across kinds (the SIMD f32 kernel keeps the scalar
  // per-element accumulation order, vectorizing across output columns), so
  // this isolates the kernel dispatch on the measured token loop.
  bench::title("Measured decode tokens/sec per kernel variant (KV cache, "
               "32 tokens, FP32 reference stack)");
  std::printf("%10s | %12s %12s | %9s\n", "kernel", "wall s", "tok/s",
              "vs scalar");
  bench::rule(56);
  double kernel_scalar_s = 0.0;
  for (const kernels::Kind kind :
       {kernels::Kind::kScalar, kernels::Kind::kBlocked,
        kernels::Kind::kSimd}) {
    kernels::set_kind(kind);
    const double secs =
        decode_wall_seconds(model, memory, src_valid, 32, DecodeMode::kKvCache);
    if (kind == kernels::Kind::kScalar) kernel_scalar_s = secs;
    std::printf("%10s | %12.3f %12.0f | %8.2fx\n", kernels::kind_name(kind),
                secs, 32.0 / secs, kernel_scalar_s > 0 ? kernel_scalar_s / secs
                                                       : 1.0);
  }
  kernels::refresh_from_env();  // restore the environment's selection

  return speedup_at_32 >= 3.0 ? 0 : 1;
}
