// EXTENSION (the paper's stated future work): latency of the *complete*
// Transformer inference on the accelerator — full encoder pass and greedy
// decoding — including per-layer weight DMA (the Fig. 5 weight memory holds
// one layer) and the KV-cache decoding mode. GPU baseline from the same
// calibrated eager model used for Table III.
#include <cstdio>

#include "core/full_model.hpp"
#include "perf/gpu_model.hpp"
#include "table.hpp"

int main() {
  using namespace tfacc;
  const ModelConfig cfg = ModelConfig::transformer_base();
  const int s = 64;

  bench::title("Full encoder pass (6 layers, s = 64, Transformer-base)");
  std::printf("%-22s | %12s %12s %12s | %10s\n", "weight streaming",
              "compute cyc", "DMA cyc", "exposed", "total us");
  bench::rule(84);
  for (bool db : {true, false}) {
    DmaConfig dma;
    dma.double_buffered = db;
    const FullModelScheduler sched({}, dma);
    const FullModelReport rep = sched.encoder_pass(cfg, s);
    std::printf("%-22s | %12lld %12lld %12lld | %10.1f\n",
                db ? "double-buffered" : "serial reload",
                static_cast<long long>(rep.compute_cycles),
                static_cast<long long>(rep.dma_cycles),
                static_cast<long long>(rep.dma_exposed_cycles),
                rep.microseconds());
  }
  const double gpu_layer =
      gpu_mha_latency(s, cfg.d_model, cfg.num_heads).total_us +
      gpu_ffn_latency(s, cfg.d_model, cfg.d_ff).total_us;
  std::printf("GPU eager baseline (6 layers): %.1f us\n",
              6.0 * gpu_layer);

  bench::title("Greedy decoding, 32 output tokens from a 64-token source");
  std::printf("%-28s | %14s %12s | %10s\n", "decoder mode", "compute cyc",
              "exposed DMA", "ms total");
  bench::rule(76);
  const FullModelScheduler sched;
  const FullModelReport naive = sched.greedy_decode(cfg, 64, 32, false);
  const FullModelReport cached = sched.greedy_decode(cfg, 64, 32, true);
  std::printf("%-28s | %14lld %12lld | %10.2f\n", "naive (recompute rows)",
              static_cast<long long>(naive.compute_cycles),
              static_cast<long long>(naive.dma_exposed_cycles),
              naive.microseconds() / 1000.0);
  std::printf("%-28s | %14lld %12lld | %10.2f\n", "KV cache",
              static_cast<long long>(cached.compute_cycles),
              static_cast<long long>(cached.dma_exposed_cycles),
              cached.microseconds() / 1000.0);
  std::printf(
      "\nKV caching removes %.0f%% of decode compute — less than one might\n"
      "expect, because below ~%d rows every tile pass is bounded by the\n"
      "64-cycle weight load, not by row streaming. Weight movement (loads +\n"
      "DMA) is the first-order cost of autoregressive decoding on this\n"
      "architecture, the same wall real LLM serving hits.\n",
      100.0 * (1.0 - static_cast<double>(cached.compute_cycles) /
                         naive.compute_cycles),
      64 - 8);

  bench::title("Tokens/second vs output length (KV cache, double-buffered)");
  std::printf("%10s | %12s %12s\n", "out tokens", "ms", "tok/s");
  bench::rule();
  for (int out : {8, 16, 32, 64, 128}) {
    const FullModelReport rep = sched.greedy_decode(cfg, 64, out, true);
    std::printf("%10d | %12.2f %12.0f\n", out, rep.microseconds() / 1000.0,
                out / (rep.microseconds() * 1e-6));
  }

  bench::title("DMA bandwidth sensitivity (KV cache, 32 tokens)");
  std::printf("%16s | %12s %14s\n", "bytes/cycle", "ms total",
              "exposed DMA %");
  bench::rule();
  for (double bpc : {16.0, 32.0, 64.0, 128.0, 256.0}) {
    DmaConfig dma;
    dma.bytes_per_cycle = bpc;
    const FullModelScheduler s2({}, dma);
    const FullModelReport rep = s2.greedy_decode(cfg, 64, 32, true);
    std::printf("%16.0f | %12.2f %13.1f%%\n", bpc,
                rep.microseconds() / 1000.0,
                100.0 * rep.dma_exposed_cycles / rep.total_cycles);
  }
  return 0;
}
