// Reproduces the Section V.A experiment: the effect of INT8 quantization and
// of the simplified softmax on translation BLEU.
//
// Paper (Transformer-base on IWSLT'16 De-En, tst2014):
//   FP32:                         23.88 BLEU
//   INT8, FP32-internal softmax:  23.48 BLEU   (step one)
//   INT8 + simplified softmax:    23.57 BLEU   (step two)
//
// SUBSTITUTION (DESIGN.md §4): no IWSLT corpus or pretrained checkpoint is
// available here, so a small hardware-compatible Transformer (d_model = 64,
// one 64-wide head — the Fig. 6 datapath requires head_dim 64) is trained
// in-process on the synthetic De→En-like task of src/nlp, then evaluated in
// the same three configurations, with the step-two variant additionally run
// through the cycle-level accelerator (bit-identical by construction).
// Absolute BLEU differs from the paper; the reproduced claim is the *shape*:
// a small INT8 drop, and the simplified softmax being BLEU-neutral.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/backend.hpp"
#include "nlp/bleu.hpp"
#include "nlp/synthetic.hpp"
#include "quant/qtransformer.hpp"
#include "table.hpp"
#include "train/trainer.hpp"

namespace {

using namespace tfacc;

ModelConfig bleu_config() {
  ModelConfig cfg;
  cfg.name = "synthetic-nmt";
  cfg.d_model = 64;
  cfg.d_ff = 256;
  cfg.num_heads = 1;
  cfg.head_dim = 64;
  cfg.num_encoder_layers = 1;
  cfg.num_decoder_layers = 1;
  return cfg;
}

double bleu_with_backend(Transformer& model, const ResBlockBackend& backend,
                         const std::vector<SentencePair>& eval_set,
                         int max_len) {
  model.set_backend(backend);
  std::vector<TokenSeq> hyps, refs;
  for (const auto& pair : eval_set) {
    hyps.push_back(model.translate_greedy(pair.source, max_len));
    refs.push_back(pair.reference);
  }
  model.set_backend(ResBlockBackend{});
  return corpus_bleu(hyps, refs, 4, /*smooth=*/true);
}

}  // namespace

int main(int argc, char** argv) {
  // Defaults sized for ~1 minute of training; override for deeper runs:
  //   bench_quant_bleu [train_sentences] [epochs]
  const int train_sentences = argc > 1 ? std::atoi(argv[1]) : 512;
  const int epochs = argc > 2 ? std::atoi(argv[2]) : 12;

  const SyntheticTranslationTask task(24, 4, 10);
  Rng rng(2024);
  const auto train_set = task.corpus(train_sentences, rng);
  const auto eval_set = task.corpus(64, rng);
  const int max_len = task.max_len() + 2;

  bench::title("Section V.A — training the translation model (substitution)");
  std::printf("task: synthetic De->En-like (lexicon %d, verb-second reorder)\n"
              "model: %s (d_model=64, 1 head, 1+1 layers) — hardware-compatible\n"
              "corpus: %d train / %zu eval sentences, %d epochs\n\n",
              task.lexicon_size(), bleu_config().name.c_str(), train_sentences,
              eval_set.size(), epochs);

  AdamConfig adam;
  adam.lr = 2e-3f;
  Trainer trainer(
      TransformerWeights::random(bleu_config(), task.vocab_size(), rng), adam);
  const int batch = 16;
  for (int e = 0; e < epochs; ++e) {
    float loss = 0.0f;
    int batches = 0;
    for (std::size_t i = 0; i < train_set.size(); i += batch) {
      loss += trainer.train_batch(std::vector<SentencePair>(
          train_set.begin() + i,
          train_set.begin() + std::min(i + batch, train_set.size())));
      ++batches;
    }
    std::printf("  epoch %2d  mean loss %.4f\n", e + 1, loss / batches);
  }

  Transformer model(trainer.take_weights());

  // Calibration set for post-training quantization: a slice of training data.
  std::vector<TokenSeq> calib_sources;
  for (int i = 0; i < 16; ++i) calib_sources.push_back(train_set[i].source);
  const auto qt_exact = QuantizedTransformer::build(
      model, calib_sources, max_len, SoftmaxImpl::kFloatExact);
  const auto qt_hw = QuantizedTransformer::build(model, calib_sources, max_len,
                                                 SoftmaxImpl::kHardware);

  const double bleu_fp32 =
      bleu_with_backend(model, ResBlockBackend{}, eval_set, max_len);
  const double bleu_int8 =
      bleu_with_backend(model, qt_exact.backend(), eval_set, max_len);
  const double bleu_int8_hw =
      bleu_with_backend(model, qt_hw.backend(), eval_set, max_len);

  Accelerator acc;
  AcceleratorStats stats;
  const double bleu_accel = bleu_with_backend(
      model, accelerator_backend(qt_hw, acc, &stats), eval_set, max_len);

  bench::title("Section V.A — BLEU under quantization (paper vs ours)");
  std::printf("%-38s | %12s | %12s\n", "configuration", "paper (IWSLT)",
              "ours (synth)");
  bench::rule(72);
  std::printf("%-38s | %12.2f | %12.2f\n", "FP32", 23.88, bleu_fp32);
  std::printf("%-38s | %12.2f | %12.2f\n",
              "INT8, FP32-internal softmax (step 1)", 23.48, bleu_int8);
  std::printf("%-38s | %12.2f | %12.2f\n",
              "INT8 + simplified softmax (step 2)", 23.57, bleu_int8_hw);
  std::printf("%-38s | %12s | %12.2f\n",
              "step 2 on cycle-level accelerator", "-", bleu_accel);

  bench::title("Shape check");
  std::printf("paper deltas:  INT8 %-+.2f BLEU, simplified softmax %-+.2f\n",
              23.48 - 23.88, 23.57 - 23.48);
  std::printf("our deltas:    INT8 %-+.2f BLEU, simplified softmax %-+.2f\n",
              bleu_int8 - bleu_fp32, bleu_int8_hw - bleu_int8);
  std::printf("accelerator == functional step-2 model: %s\n",
              bleu_accel == bleu_int8_hw ? "bit-identical (expected)"
                                         : "MISMATCH");
  std::printf("\naccelerator activity during evaluation: %ld MHA + %ld FFN "
              "ResBlock runs, %.1f ms simulated at 200 MHz\n",
              stats.mha_runs, stats.ffn_runs,
              stats.microseconds(200.0) / 1000.0);
  return 0;
}
