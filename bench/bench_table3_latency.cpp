// Reproduces Table III: FPGA vs GPU latency and speed-up for both ResBlocks
// (batch 1, s = 64). FPGA latency comes from the cycle-level simulator at
// 200 MHz; the GPU baseline is the calibrated V100 eager-mode model
// (DESIGN.md §4).
#include <cstdio>

#include "core/accelerator.hpp"
#include "perf/gpu_model.hpp"
#include "table.hpp"

int main() {
  using namespace tfacc;
  Accelerator acc;

  const double fpga_mha = acc.time_mha(64, 64, 512, 8).microseconds();
  const double fpga_ffn = acc.time_ffn(64, 512, 2048).microseconds();
  const double gpu_mha = gpu_mha_latency(64, 512, 8).total_us;
  const double gpu_ffn = gpu_ffn_latency(64, 512, 2048).total_us;

  bench::title("Table III — FPGA vs GPU latency (batch 1, s = 64)");
  std::printf("%-14s | %21s | %21s | %17s\n", "", "FPGA latency (us)",
              "GPU latency (us)", "speed-up");
  std::printf("%-14s | %10s %10s | %10s %10s | %8s %8s\n", "block", "paper",
              "ours", "paper", "ours", "paper", "ours");
  bench::rule(84);
  std::printf("%-14s | %10.1f %10.1f | %10.1f %10.1f | %7.1fx %7.1fx\n",
              "MHA ResBlock", 106.7, fpga_mha, 1557.8, gpu_mha, 14.6,
              gpu_mha / fpga_mha);
  std::printf("%-14s | %10.1f %10.1f | %10.1f %10.1f | %7.1fx %7.1fx\n",
              "FFN ResBlock", 210.5, fpga_ffn, 713.4, gpu_ffn, 3.4,
              gpu_ffn / fpga_ffn);

  bench::title("GPU-side per-op breakdown (modeled eager-mode execution)");
  for (const auto& [name, lat] :
       {std::pair<const char*, GpuLatency>{"MHA", gpu_mha_latency(64, 512, 8)},
        std::pair<const char*, GpuLatency>{"FFN",
                                           gpu_ffn_latency(64, 512, 2048)}}) {
    std::printf("\n%s (%zu framework ops, %.1f us total):\n", name,
                lat.ops.size(), lat.total_us);
    std::printf("  %-16s %10s %10s\n", "op", "dispatch", "compute");
    for (const auto& op : lat.ops)
      std::printf("  %-16s %9.1f  %9.1f\n", op.name.c_str(), op.dispatch_us,
                  op.compute_us);
  }

  bench::title("Speed-up vs sequence length (where the crossover lives)");
  std::printf("%6s | %10s %10s %8s | %10s %10s %8s\n", "s", "MHA fpga",
              "MHA gpu", "speedup", "FFN fpga", "FFN gpu", "speedup");
  bench::rule(84);
  for (int s : {16, 32, 64, 128, 256}) {
    const double fm = acc.time_mha(s, s, 512, 8).microseconds();
    const double ff = acc.time_ffn(s, 512, 2048).microseconds();
    const double gm = gpu_mha_latency(s, 512, 8).total_us;
    const double gf = gpu_ffn_latency(s, 512, 2048).total_us;
    std::printf("%6d | %10.1f %10.1f %7.1fx | %10.1f %10.1f %7.1fx\n", s, fm,
                gm, gm / fm, ff, gf, gf / ff);
  }
  std::printf(
      "\nShape check: the FPGA wins most on the MHA (many small launch-bound\n"
      "GPU ops), less on the FFN (GPU amortizes into two big GEMMs) — and the\n"
      "gap narrows as s grows, matching the paper's 14.6x vs 3.4x contrast.\n");
  return 0;
}
