// EXTENSION ablations on the quantized datapath:
//   (a) per-tensor vs per-column weight quantization accuracy (the s
//       requantizers of Fig. 5 sit per column anyway, so per-column scales
//       are nearly free in hardware);
//   (b) weight-memory bit-flip robustness of both ResBlocks — output
//       fidelity vs bit-error rate.
#include <cstdio>

#include "core/accelerator.hpp"
#include "quant/fault.hpp"
#include "reference/functional.hpp"
#include "table.hpp"
#include "tensor/compare.hpp"
#include "tensor/ops.hpp"

namespace {

using namespace tfacc;

ModelConfig bench_cfg() {
  ModelConfig cfg;
  cfg.name = "robustness";
  cfg.d_model = 256;
  cfg.d_ff = 1024;
  cfg.num_heads = 4;
  cfg.head_dim = 64;
  return cfg;
}

}  // namespace

int main() {
  const ModelConfig cfg = bench_cfg();
  const int s = 32;
  Rng rng(1);
  const MhaWeights mw = MhaWeights::random(cfg, rng);
  const FfnWeights fw = FfnWeights::random(cfg, rng);

  MhaQuantized::Calibration calib;
  std::vector<MatF> ffn_calib;
  for (int i = 0; i < 3; ++i) {
    MatF x(s, cfg.d_model);
    fill_normal(x, rng, 0, 1);
    calib.q.push_back(x);
    calib.kv.push_back(x);
    calib.mask.push_back(no_mask(s, s));
    ffn_calib.push_back(x);
  }
  MatF x(s, cfg.d_model);
  fill_normal(x, rng, 0, 1);
  const Mask mask = no_mask(s, s);
  const MatF mha_ref = mha_resblock(x, x, mw, mask);
  const MatF ffn_ref = ffn_resblock(x, fw);

  bench::title("Weight-scale granularity ablation (MSE vs FP32 reference)");
  std::printf("%-14s | %16s %16s | %10s\n", "block", "per-tensor MSE",
              "per-column MSE", "ratio");
  bench::rule(70);
  for (const char* which : {"MHA", "FFN"}) {
    double mse_tensor = 0, mse_col = 0;
    for (WeightGranularity g :
         {WeightGranularity::kPerTensor, WeightGranularity::kPerColumn}) {
      double* slot =
          (g == WeightGranularity::kPerTensor) ? &mse_tensor : &mse_col;
      if (std::string(which) == "MHA") {
        const auto qm = MhaQuantized::build(mw, calib, SoftmaxImpl::kHardware,
                                            CalibMethod::kMaxAbs, g);
        *slot = mse(mha_ref, qm.dequantize_out(qm.forward(
                                 qm.quantize_q(x), qm.quantize_kv(x), mask)));
      } else {
        const auto qf = FfnQuantized::build(fw, ffn_calib,
                                            CalibMethod::kMaxAbs, 0.0f, g);
        *slot = mse(ffn_ref, qf.dequantize_out(qf.forward(qf.quantize_in(x))));
      }
    }
    std::printf("%-14s | %16.6g %16.6g | %9.2fx\n", which, mse_tensor,
                mse_col, mse_tensor / mse_col);
  }

  bench::title("Weight-memory bit-flip robustness (cosine vs fault-free)");
  std::printf("%12s | %12s %12s | %14s\n", "BER", "MHA cosine", "FFN cosine",
              "flips (FFN)");
  bench::rule(64);
  const auto qm_clean =
      MhaQuantized::build(mw, calib, SoftmaxImpl::kHardware);
  const auto qf_clean = FfnQuantized::build(fw, ffn_calib);
  const MatI8 qi = qm_clean.quantize_q(x);
  const MatF mha_base = qm_clean.dequantize_out(qm_clean.forward(qi, qi, mask));
  const MatI8 xi = qf_clean.quantize_in(x);
  const MatF ffn_base = qf_clean.dequantize_out(qf_clean.forward(xi));
  for (double ber : {0.0, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2}) {
    MhaQuantized qm = qm_clean;
    FfnQuantized qf = qf_clean;
    Rng frng(42);
    inject_faults(qm, ber, frng);
    const std::int64_t flips = inject_faults(qf, ber, frng);
    const double mc = cosine_similarity(
        mha_base, qm.dequantize_out(qm.forward(qi, qi, mask)));
    const double fc =
        cosine_similarity(ffn_base, qf.dequantize_out(qf.forward(xi)));
    std::printf("%12.0e | %12.6f %12.6f | %14lld\n", ber, mc, fc,
                static_cast<long long>(flips));
  }
  std::printf("\nINT8 inference degrades gracefully below ~1e-4 BER; the\n"
              "LayerNorm renormalization absorbs part of the perturbation.\n");
  return 0;
}
