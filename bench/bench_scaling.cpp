// PR 9 measured multi-card scaling: wall-clock throughput of the slot-16
// quantized serve loop at 1 / 2 / 4 cards on THIS host.
//
// The simulated per-card cycle ledgers have always been host-independent;
// what this bench pins is that the *measured* farm now scales too. Before
// PR 9 the refill loop host-blocked a card in AdmissionGate::wait_turn
// whenever it merely had a vacant slot, so cards convoyed behind the
// globally slowest sibling; with convoy-free reservation admission and the
// persistent worker pool, a card with live decode work keeps stepping while
// its admission turn is pending, and N cards should occupy N host cores.
//
// The quantized backend is the right probe: every decode step does real
// INT8 host compute through the PR 8 kernel dispatch (no cycle-model
// bookkeeping dominating), so wall time measures the serve loop itself.
//
// Gates (exit code):
//   * outputs bit-identical across card counts, and repeated runs at each
//     card count reproduce outputs, admission order, and per-card simulated
//     cycle totals exactly — always enforced;
//   * wall-clock speedup vs 1 card >= 1.6x at 2 cards and >= 2.5x at 4
//     cards — enforced only on hosts with >= 4 cores (reported otherwise).
//
// Machine-readable results land in BENCH_scaling.json; perf_gate.py diffs
// the dimensionless speedup curve against bench/baselines/scaling.json,
// skipping it on core-starved or kernel-capability-mismatched hosts.
//
//   $ ./build/bench_scaling [sentences] [repeats]
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <thread>
#include <vector>

#include "json.hpp"
#include "nlp/synthetic.hpp"
#include "reference/weights.hpp"
#include "serve/scheduler.hpp"
#include "table.hpp"

namespace {

using namespace tfacc;

// Repeated runs of one Scheduler must reproduce everything the thread-stress
// suite checks; the bench re-asserts the wall-clock-relevant core of it so a
// nondeterministic schedule can never publish a scaling number.
bool reports_identical(const ScheduleReport& a, const ScheduleReport& b) {
  if (a.outputs != b.outputs) return false;
  if (a.per_card.size() != b.per_card.size()) return false;
  for (std::size_t c = 0; c < a.per_card.size(); ++c) {
    if (a.per_card_steps[c].admitted != b.per_card_steps[c].admitted)
      return false;
    if (a.per_card[c].total_cycles() != b.per_card[c].total_cycles())
      return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const int sentences = argc > 1 ? std::atoi(argv[1]) : 96;
  const int repeats = argc > 2 ? std::atoi(argv[2]) : 3;

  // Big enough that a decode step is real host work (the per-step INT8
  // GEMMs dwarf the admission handshake), small enough for CI.
  ModelConfig cfg;
  cfg.name = "scaling-bench";
  cfg.d_model = 128;
  cfg.d_ff = 512;
  cfg.num_heads = 2;
  cfg.head_dim = 64;
  cfg.num_encoder_layers = 1;
  cfg.num_decoder_layers = 2;

  const SyntheticTranslationTask task(24, 5, 8);
  Rng rng(17);
  const TransformerWeights weights =
      TransformerWeights::random(cfg, task.vocab_size(), rng);
  std::vector<TokenSeq> calib, sources;
  for (int i = 0; i < 4; ++i) calib.push_back(task.sample(rng).source);
  for (int i = 0; i < sentences; ++i)
    sources.push_back(task.sample(rng).source);
  const int max_len = task.max_len() + 2;
  const int cores = static_cast<int>(std::thread::hardware_concurrency());

  bench::title("Measured multi-card scaling (quantized serve loop, 16 slots, " +
               std::to_string(sentences) + " sentences, " +
               std::to_string(cores) + " host cores)");
  std::printf("%5s | %12s %14s %12s\n", "cards", "best wall s",
              "wall sent/s", "speedup");
  bench::rule(52);

  std::ofstream json_file("BENCH_scaling.json");
  bench::JsonWriter json(json_file);
  json.begin_object();
  json.key("bench").value("multi_card_scaling");
  json.key("backend").value("quantized");
  json.key("sentences").value(sentences);
  json.key("max_len").value(max_len);
  json.key("slots").value(16);
  json.key("repeats").value(repeats);
  bench::write_host_info(json);
  json.key("sweep").begin_array();

  std::vector<TokenSeq> base_outputs;
  double base_sps = 0.0;
  double speedup2 = 0.0, speedup4 = 0.0;
  bool outputs_identical = true;
  bool runs_deterministic = true;
  for (const int cards : {1, 2, 4}) {
    SchedulerConfig sc;
    sc.backend = ServeBackend::kQuantized;
    sc.num_cards = cards;
    sc.max_len = max_len;
    sc.slots_per_card = 16;
    Scheduler sched(weights, calib, sc);
    ScheduleReport first;
    double best_wall = 0.0;
    for (int r = 0; r < repeats; ++r) {
      ScheduleReport rep = sched.run(sources);
      if (r == 0) {
        first = std::move(rep);
        best_wall = first.wall_seconds;
      } else {
        if (!reports_identical(first, rep)) runs_deterministic = false;
        if (rep.wall_seconds < best_wall) best_wall = rep.wall_seconds;
      }
    }
    if (cards == 1)
      base_outputs = first.outputs;
    else if (first.outputs != base_outputs)
      outputs_identical = false;
    const double wall_sps = best_wall > 0 ? sentences / best_wall : 0.0;
    const double speedup =
        cards == 1 ? 1.0 : (base_sps > 0 ? wall_sps / base_sps : 0.0);
    if (cards == 1) base_sps = wall_sps;
    if (cards == 2) speedup2 = speedup;
    if (cards == 4) speedup4 = speedup;
    std::printf("%5d | %12.4f %14.1f %11.2fx\n", cards, best_wall, wall_sps,
                speedup);

    json.begin_object();
    json.key("cards").value(cards);
    json.key("wall_seconds_best").value(best_wall);
    json.key("wall_sentences_per_second").value(wall_sps);
    json.key("wall_speedup_vs_1card").value(speedup);
    json.key("makespan_cycles")
        .value(static_cast<long long>(first.makespan_cycles()));
    json.key("packed_rows_mean").value(first.packed_rows_mean());
    json.end_object();
  }
  json.end_array();

  const bool scaling_ok = speedup2 >= 1.6 && speedup4 >= 2.5;
  const bool enough_cores = cores >= 4;
  json.key("gate").begin_object();
  json.key("outputs_bit_identical").value(outputs_identical);
  json.key("runs_deterministic").value(runs_deterministic);
  json.key("scaling_gated").value(enough_cores);
  json.key("scaling_ok").value(scaling_ok);
  json.end_object();
  json.end_object();
  json_file << '\n';

  std::printf(
      "outputs across card counts %s, repeated runs %s; speedup %.2fx @ 2 "
      "cards (>= 1.6x), %.2fx @ 4 cards (>= 2.5x): %s\n"
      "results written to BENCH_scaling.json\n",
      outputs_identical ? "bit-identical" : "DIVERGED",
      runs_deterministic ? "deterministic" : "NONDETERMINISTIC",
      speedup2, speedup4,
      !enough_cores ? "SKIPPED (host has < 4 cores)"
                    : (scaling_ok ? "PASS" : "FAIL"));
  if (!outputs_identical || !runs_deterministic) return 2;
  return !enough_cores || scaling_ok ? 0 : 1;
}
