// Minimal JSON emitter for machine-readable bench outputs (BENCH_*.json):
// the perf trajectory of the serving stack is tracked across PRs by diffing
// these files, so benches write them next to their human-readable tables.
// Comma placement is handled; values are numbers, strings, bools and nested
// arrays/objects opened and closed explicitly.
#pragma once

#include <cmath>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace tfacc::bench {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) { os_.precision(12); }

  JsonWriter& begin_object() { return open('{'); }
  JsonWriter& end_object() { return close('}'); }
  JsonWriter& begin_array() { return open('['); }
  JsonWriter& end_array() { return close(']'); }

  /// Key inside an object; follow with exactly one value or begin_*.
  JsonWriter& key(const std::string& k) {
    separate();
    escape(k);
    os_ << ':';
    pending_key_ = true;
    return *this;
  }

  JsonWriter& value(double v) {
    separate();
    if (std::isfinite(v))
      os_ << v;
    else
      os_ << "null";
    return *this;
  }
  JsonWriter& value(long long v) {
    separate();
    os_ << v;
    return *this;
  }
  JsonWriter& value(long v) { return value(static_cast<long long>(v)); }
  JsonWriter& value(int v) { return value(static_cast<long long>(v)); }
  JsonWriter& value(bool v) {
    separate();
    os_ << (v ? "true" : "false");
    return *this;
  }
  JsonWriter& value(const std::string& v) {
    separate();
    escape(v);
    return *this;
  }
  JsonWriter& value(const char* v) { return value(std::string(v)); }

  template <typename T>
  JsonWriter& value_array(const std::vector<T>& values) {
    begin_array();
    for (const T& v : values) value(v);
    return end_array();
  }

 private:
  JsonWriter& open(char c) {
    separate();
    os_ << c;
    first_.push_back(true);
    return *this;
  }
  JsonWriter& close(char c) {
    first_.pop_back();
    os_ << c;
    return *this;
  }
  /// Emit a comma before any element that is not the first of its container
  /// and is not the value completing a key.
  void separate() {
    if (pending_key_) {
      pending_key_ = false;
      return;
    }
    if (!first_.empty()) {
      if (!first_.back()) os_ << ',';
      first_.back() = false;
    }
  }
  void escape(const std::string& s) {
    os_ << '"';
    for (char c : s) {
      switch (c) {
        case '"': os_ << "\\\""; break;
        case '\\': os_ << "\\\\"; break;
        case '\n': os_ << "\\n"; break;
        case '\t': os_ << "\\t"; break;
        default: os_ << c;
      }
    }
    os_ << '"';
  }

  std::ostream& os_;
  std::vector<bool> first_;
  bool pending_key_ = false;
};

}  // namespace tfacc::bench
