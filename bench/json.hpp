// Minimal JSON emitter for machine-readable bench outputs (BENCH_*.json):
// the perf trajectory of the serving stack is tracked across PRs by diffing
// these files, so benches write them next to their human-readable tables.
// Comma placement is handled; values are numbers, strings, bools and nested
// arrays/objects opened and closed explicitly.
#pragma once

#include <cmath>
#include <cstdint>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "tensor/kernels.hpp"

namespace tfacc::bench {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) { os_.precision(12); }

  JsonWriter& begin_object() { return open('{'); }
  JsonWriter& end_object() { return close('}'); }
  JsonWriter& begin_array() { return open('['); }
  JsonWriter& end_array() { return close(']'); }

  /// Key inside an object; follow with exactly one value or begin_*.
  JsonWriter& key(const std::string& k) {
    separate();
    escape(k);
    os_ << ':';
    pending_key_ = true;
    return *this;
  }

  JsonWriter& value(double v) {
    separate();
    if (std::isfinite(v))
      os_ << v;
    else
      os_ << "null";
    return *this;
  }
  JsonWriter& value(long long v) {
    separate();
    os_ << v;
    return *this;
  }
  JsonWriter& value(long v) { return value(static_cast<long long>(v)); }
  JsonWriter& value(int v) { return value(static_cast<long long>(v)); }
  JsonWriter& value(bool v) {
    separate();
    os_ << (v ? "true" : "false");
    return *this;
  }
  JsonWriter& value(const std::string& v) {
    separate();
    escape(v);
    return *this;
  }
  JsonWriter& value(const char* v) { return value(std::string(v)); }

  template <typename T>
  JsonWriter& value_array(const std::vector<T>& values) {
    begin_array();
    for (const T& v : values) value(v);
    return end_array();
  }

 private:
  JsonWriter& open(char c) {
    separate();
    os_ << c;
    first_.push_back(true);
    return *this;
  }
  JsonWriter& close(char c) {
    first_.pop_back();
    os_ << c;
    return *this;
  }
  /// Emit a comma before any element that is not the first of its container
  /// and is not the value completing a key.
  void separate() {
    if (pending_key_) {
      pending_key_ = false;
      return;
    }
    if (!first_.empty()) {
      if (!first_.back()) os_ << ',';
      first_.back() = false;
    }
  }
  void escape(const std::string& s) {
    os_ << '"';
    for (char c : s) {
      switch (c) {
        case '"': os_ << "\\\""; break;
        case '\\': os_ << "\\\\"; break;
        case '\n': os_ << "\\n"; break;
        case '\t': os_ << "\\t"; break;
        default: os_ << c;
      }
    }
    os_ << '"';
  }

  std::ostream& os_;
  std::vector<bool> first_;
  bool pending_key_ = false;
};

/// Host kernel-capability stanza (PR 8): which GEMM microkernel dispatch the
/// bench ran with and what the host CPU supports. perf_gate.py reads
/// "kernel_capability" to skip wall-clock gates when the current host cannot
/// reproduce the baseline's kernel class (e.g. a NEON box diffing an AVX2
/// baseline) — simulated-cycle metrics stay gated regardless. "cores" (PR 9)
/// is the host's hardware concurrency: perf_gate.py skips the multi-card
/// scaling gates when either side of the diff ran on fewer than 4 cores.
inline void write_host_info(JsonWriter& json) {
  json.key("host").begin_object();
  json.key("kernel").value(kernels::kind_name(kernels::selected()));
  json.key("kernel_capability").value(kernels::capability());
  json.key("simd_available").value(kernels::simd_available());
  json.key("cores")
      .value(static_cast<int>(std::thread::hardware_concurrency()));
  json.end_object();
}

/// Per-module busy/idle breakdown of a farm report (PR 4 BENCH schema,
/// extended with the PR 5 boundary-stall and PR 6 prefill-stall
/// attributions):
///   "modules": {"sa"|"softmax"|"layernorm": {"busy_cycles", "idle_cycles"},
///               "softmax_stall_cycles": ..., "boundary_stall_cycles": ...,
///               "prefill_stall_cycles": ...}
/// where idle = total simulated ResBlock cycles − module busy,
/// softmax_stall_cycles counts SA cycles lost waiting on softmax results,
/// boundary_stall_cycles counts SA cycles lost at run/sublayer boundaries
/// (cold weight-tile loads + LayerNorm tails + fused seam gaps) — the idle
/// the fused decode-step ledger shrinks — and prefill_stall_cycles counts
/// cycles live decode rows waited on prefill (encoder) work sharing their
/// card — the cost chunked prefill packing spreads and shrinks.
inline void write_module_breakdown(JsonWriter& json, long long total_cycles,
                                   long long sa_busy, long long softmax_busy,
                                   long long layernorm_busy,
                                   long long softmax_stall,
                                   long long boundary_stall,
                                   long long prefill_stall) {
  const auto module = [&](const char* name, long long busy) {
    json.key(name).begin_object();
    json.key("busy_cycles").value(busy);
    json.key("idle_cycles").value(total_cycles - busy);
    json.end_object();
  };
  json.key("modules").begin_object();
  module("sa", sa_busy);
  module("softmax", softmax_busy);
  module("layernorm", layernorm_busy);
  json.key("softmax_stall_cycles").value(softmax_stall);
  json.key("boundary_stall_cycles").value(boundary_stall);
  json.key("prefill_stall_cycles").value(prefill_stall);
  json.end_object();
}

}  // namespace tfacc::bench
