// Reproduces Table I: variations on the Transformer and BERT architectures,
// plus the d_model = 64h / d_ff = 256h pattern that Section III's matrix
// partitioning relies on (block counts of Fig. 4).
#include <cstdio>

#include "common/config.hpp"
#include "table.hpp"

int main() {
  using namespace tfacc;
  bench::title("Table I — Variations on the Transformer and BERT architectures");
  std::printf("%-18s %8s %8s %4s | %10s %10s | %-9s\n", "model", "d_model",
              "d_ff", "h", "64h", "256h", "pattern");
  bench::rule();
  for (const auto& cfg : ModelConfig::table1()) {
    cfg.validate();
    const bool ok = cfg.d_model == 64 * cfg.num_heads &&
                    cfg.d_ff == 256 * cfg.num_heads;
    std::printf("%-18s %8d %8d %4d | %10d %10d | %-9s\n", cfg.name.c_str(),
                cfg.d_model, cfg.d_ff, cfg.num_heads, 64 * cfg.num_heads,
                256 * cfg.num_heads, ok ? "holds" : "VIOLATED");
  }

  bench::title("Fig. 4 — 64-column weight blocks per model (W_G / W_1 / W_2)");
  std::printf("%-18s %12s %12s %12s\n", "model", "W_G blocks", "W_1 blocks",
              "W_2 blocks");
  bench::rule();
  for (const auto& cfg : ModelConfig::table1())
    std::printf("%-18s %12d %12d %12d\n", cfg.name.c_str(), cfg.wg_blocks(),
                cfg.w1_blocks(), cfg.w2_blocks());
  std::printf("\nAll GEMMs in both ResBlocks reduce to products against\n"
              "64-column blocks, servable by one s x 64 systolic array.\n");
  return 0;
}
