// Reproduces the Algorithm 1 / Section IV claim that the computation flow
// keeps the systolic array busy ("the SA Module will hardly stop running
// until the LayerNorm Module starts"), including the ablation of the
// softmax / V·W_V overlap (line 6).
#include <cstdio>

#include "core/accelerator.hpp"
#include "table.hpp"

int main() {
  using namespace tfacc;

  bench::title("SA utilization and softmax overlap (s = 64, base model)");
  std::printf("%-26s | %10s %10s %10s %10s\n", "configuration", "MHA cyc",
              "SA busy%", "sm slack", "hidden?");
  bench::rule(76);
  for (bool overlap : {true, false}) {
    AcceleratorConfig cfg;
    cfg.overlap_softmax = overlap;
    Accelerator acc(cfg);
    const RunReport rep = acc.time_mha(64, 64, 512, 8);
    std::printf("%-26s | %10lld %9.1f%% %10lld %10s\n",
                overlap ? "overlapped (Alg.1 l.6)" : "serialized softmax",
                static_cast<long long>(rep.total_cycles),
                100.0 * rep.sa_utilization(),
                static_cast<long long>(rep.softmax_slack_min),
                rep.softmax_hidden ? "yes" : "no");
  }

  bench::title("Softmax slack across sequence lengths (overlap enabled)");
  std::printf("%6s | %12s %12s %10s\n", "s", "softmax cyc", "V.Wv cyc",
              "slack");
  bench::rule();
  Accelerator acc;
  for (int s : {8, 16, 32, 64, 96, 128}) {
    const RunReport rep = acc.time_mha(s, s, 512, 8);
    // softmax_busy is per-head unit occupancy (2s); the pipeline depth is
    // result latency (drains under the next row), so the per-head result
    // delay is occupancy + depth. V·W_V spans d_model/64 tiles.
    const Cycle per_head = rep.softmax_busy / 8 +
                           acc.config().softmax_pipeline_depth;
    std::printf("%6d | %12lld %12s %10lld\n", s,
                static_cast<long long>(per_head), "(see trace)",
                static_cast<long long>(rep.softmax_slack_min));
  }
  std::printf("\nThe softmax module finishes before V.Wv on every head for all\n"
              "tested s — the condition the paper states for the SA-bound\n"
              "latency model to hold.\n");

  bench::title("Idle-cycle accounting, MHA at the design point");
  const RunReport rep = acc.time_mha(64, 64, 512, 8);
  const Cycle idle = rep.total_cycles - rep.sa_busy;
  std::printf("total %lld | SA busy %lld | idle %lld "
              "(exposed loads %lld + LayerNorm tail %lld + initial %lld)\n",
              static_cast<long long>(rep.total_cycles),
              static_cast<long long>(rep.sa_busy),
              static_cast<long long>(idle),
              static_cast<long long>(rep.exposed_weight_load),
              static_cast<long long>(rep.layernorm_busy),
              static_cast<long long>(idle - rep.exposed_weight_load -
                                     rep.layernorm_busy));
  return 0;
}
