// PR 8 kernel sweep: ns/GEMM and GMAC/s of every kernel kind (scalar loop,
// cache-blocked, SIMD) at the GEMM shapes the serve step loop actually
// issues, plus the packed-B fused-bias form the INT8 datapath runs. Every
// timed result is first checked bit-identical to the scalar reference — a
// kernel that drifts never publishes a number.
//
// The headline gate is gemm_ns_scalar_over_simd: scalar ns / SIMD ns at the
// packed-i8 decode-projection shape. A host-speed-free ratio, gated by
// perf_gate.py against bench/baselines/gemm.json (and skipped there when the
// host's kernel capability differs from the baseline's).
//
//   $ ./build/bench_gemm [--smoke]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/random.hpp"
#include "json.hpp"
#include "table.hpp"
#include "tensor/kernels.hpp"
#include "tensor/ops.hpp"
#include "tensor/pack.hpp"

namespace {

using namespace tfacc;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct Shape {
  const char* label;  // what the serve loop uses this shape for
  int m, k, n;
};

// The measured path's GEMMs: packed decode projections (16 slot rows into
// d_model/d_ff sized weights) and the host-side output projection.
constexpr Shape kShapes[] = {
    {"decode proj 16x64x64", 16, 64, 64},
    {"decode proj 16x256x256", 16, 256, 256},
    {"ffn up 16x256x1024", 16, 256, 1024},
    {"ffn down 16x1024x256", 16, 1024, 256},
    {"logits 16x256x1000", 16, 256, 1000},
};

/// Repeats `fn` until ~`budget_s` of wall time, three times, and returns the
/// fastest pass's mean ns per call. Minimum-of-means: preemption by another
/// process only ever *slows* a pass, so the fastest pass is the cleanest
/// estimate — this keeps the CI smoke gate from flapping on a shared runner.
template <typename Fn>
double time_ns(const Fn& fn, double budget_s) {
  fn();  // warm: pool classes, pack, icache
  double best = 0.0;
  for (int pass = 0; pass < 3; ++pass) {
    long iters = 0;
    const auto t0 = std::chrono::steady_clock::now();
    double elapsed = 0.0;
    do {
      fn();
      ++iters;
      elapsed = seconds_since(t0);
    } while (elapsed < budget_s);
    const double ns = 1e9 * elapsed / static_cast<double>(iters);
    if (pass == 0 || ns < best) best = ns;
  }
  return best;
}

bool check_i32(const MatI32& got, const MatI32& want, const char* what) {
  if (got == want) return true;
  std::printf("FATAL: %s diverged from the scalar reference\n", what);
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tfacc;
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  // Smoke mode (CI): enough iterations to prove the sweep runs and the
  // kernels agree; the published timings come from full runs.
  const double budget_s = smoke ? 0.002 : 0.05;

  const kernels::Kind kinds[] = {kernels::Kind::kScalar,
                                 kernels::Kind::kBlocked,
                                 kernels::Kind::kSimd};

  std::ofstream json_file("BENCH_gemm.json");
  bench::JsonWriter json(json_file);
  json.begin_object();
  json.key("bench").value("gemm_kernel_sweep");
  json.key("smoke").value(smoke);
  bench::write_host_info(json);

  bench::title(std::string("GEMM kernel sweep (int8 -> int32, ") +
               kernels::capability() + " host" + (smoke ? ", smoke" : "") +
               ")");
  std::printf("%-24s | %10s | %12s %10s | %8s\n", "shape (m x k x n)",
              "kernel", "ns/GEMM", "GMAC/s", "vs scal");
  bench::rule(78);

  Rng rng(42);
  bool identical = true;
  double headline_scalar_ns = 0.0, headline_simd_ns = 0.0;
  json.key("sweep").begin_array();
  for (const Shape& s : kShapes) {
    MatI8 a(s.m, s.k), b(s.k, s.n);
    fill_uniform_i8(a, rng);
    fill_uniform_i8(b, rng);
    std::vector<std::int32_t> bias(static_cast<std::size_t>(s.n));
    for (auto& v : bias) v = rng.uniform_int(-100000, 100000);
    const PackedI8 bp = pack_b_i8(b);

    MatI32 want(s.m, s.n), want_bias(s.m, s.n);
    {
      // Scalar reference results for the bit-identity check.
      kernels::set_kind(kernels::Kind::kScalar);
      kernels::gemm_i8_into(a, b, want);
      kernels::gemm_i8_packed_bias_into(a, bp, bias, want_bias);
    }

    const double macs = static_cast<double>(s.m) * s.k * s.n;
    double scalar_ns = 0.0;
    for (const kernels::Kind kind : kinds) {
      kernels::set_kind(kind);
      MatI32 out(s.m, s.n), out_bias(s.m, s.n);
      kernels::gemm_i8_into(a, b, out);
      kernels::gemm_i8_packed_bias_into(a, bp, bias, out_bias);
      identical = check_i32(out, want, "gemm_i8") &&
                  check_i32(out_bias, want_bias, "gemm_i8_packed_bias") &&
                  identical;

      const double dense_ns =
          time_ns([&] { kernels::gemm_i8_into(a, b, out); }, budget_s);
      const double packed_ns = time_ns(
          [&] { kernels::gemm_i8_packed_bias_into(a, bp, bias, out_bias); },
          budget_s);
      if (kind == kernels::Kind::kScalar) scalar_ns = packed_ns;
      // The headline ratio is the packed fused-bias kernel at the d_model
      // 256 decode-projection shape — the one QuantizedLinear::accumulate
      // issues every sublayer of every packed step.
      if (std::strcmp(s.label, "decode proj 16x256x256") == 0) {
        if (kind == kernels::Kind::kScalar) headline_scalar_ns = packed_ns;
        if (kind == kernels::Kind::kSimd) headline_simd_ns = packed_ns;
      }
      std::printf("%-24s | %10s | %12.0f %10.2f | %7.2fx\n", s.label,
                  kernels::kind_name(kind), packed_ns,
                  macs / packed_ns,  // MAC/ns == GMAC/s
                  scalar_ns > 0 ? scalar_ns / packed_ns : 1.0);

      json.begin_object();
      json.key("shape").value(s.label);
      json.key("m").value(s.m);
      json.key("k").value(s.k);
      json.key("n").value(s.n);
      json.key("kernel").value(kernels::kind_name(kind));
      json.key("dense_ns_per_gemm").value(dense_ns);
      json.key("packed_bias_ns_per_gemm").value(packed_ns);
      json.key("packed_gmac_per_s").value(macs / packed_ns);
      json.key("speedup_vs_scalar")
          .value(scalar_ns > 0 ? scalar_ns / packed_ns : 1.0);
      json.end_object();
    }
  }
  json.end_array();
  kernels::refresh_from_env();  // restore the environment's selection

  const double ratio =
      headline_simd_ns > 0 ? headline_scalar_ns / headline_simd_ns : 0.0;
  json.key("gates").begin_object();
  json.key("outputs_bit_identical").value(identical);
  // Dimensionless and host-speed free: gated by perf_gate.py (skipped on a
  // host whose kernel capability differs from the baseline's).
  json.key("gemm_ns_scalar_over_simd").value(ratio);
  json.end_object();
  json.end_object();
  json_file << '\n';

  std::printf(
      "\nheadline (packed i8+bias, 16x256x256): scalar/simd = %.2fx, outputs "
      "%s\nresults written to BENCH_gemm.json\n",
      ratio, identical ? "bit-identical" : "DIVERGED");
  return identical ? 0 : 1;
}
