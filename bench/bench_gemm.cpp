// Supporting micro-benchmarks: the GEMM kernels that back the functional
// models (FP32 reference, INT8 datapath) and the clocked systolic-array
// simulator itself — the cost of simulation, not of the hardware.
#include <benchmark/benchmark.h>

#include "common/random.hpp"
#include "quant/quantizer.hpp"
#include "sim/systolic_rtl.hpp"
#include "tensor/ops.hpp"

namespace {

using namespace tfacc;

void BM_GemmF32(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  MatF a(64, n), b(n, 64);
  fill_normal(a, rng, 0, 1);
  fill_normal(b, rng, 0, 1);
  for (auto _ : state) {
    MatF c = gemm(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2ll * 64 * 64 * n);
}
BENCHMARK(BM_GemmF32)->Arg(64)->Arg(512)->Arg(2048);

void BM_GemmI8(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(2);
  MatI8 a(64, n), b(n, 64);
  fill_uniform_i8(a, rng);
  fill_uniform_i8(b, rng);
  for (auto _ : state) {
    MatI32 c = gemm_i8(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2ll * 64 * 64 * n);
}
BENCHMARK(BM_GemmI8)->Arg(64)->Arg(512)->Arg(2048);

void BM_GemmNtI8(benchmark::State& state) {
  Rng rng(3);
  MatI8 a(64, 64), b(64, 64);
  fill_uniform_i8(a, rng);
  fill_uniform_i8(b, rng);
  for (auto _ : state) {
    MatI32 c = gemm_nt_i8(a, b);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_GemmNtI8);

void BM_RequantizeI8(benchmark::State& state) {
  Rng rng(4);
  MatI32 acc(64, 64);
  for (int r = 0; r < 64; ++r)
    for (int c = 0; c < 64; ++c) acc(r, c) = rng.uniform_int(-100000, 100000);
  const auto fps = FixedPointScale::from_double(3.1e-4);
  for (auto _ : state) {
    MatI8 q = requantize_i8(acc, fps);
    benchmark::DoNotOptimize(q.data());
  }
  state.SetItemsProcessed(state.iterations() * 64 * 64);
}
BENCHMARK(BM_RequantizeI8);

void BM_SystolicRtlTick(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  Rng rng(5);
  MatI8 a(64, k), b(k, 64);
  fill_uniform_i8(a, rng);
  fill_uniform_i8(b, rng);
  SystolicArrayRtl sa(64, 64);
  for (auto _ : state) {
    auto res = sa.run(a, b);
    benchmark::DoNotOptimize(res.out.data());
  }
  // Simulated hardware cycles per wall-second of simulation.
  state.SetItemsProcessed(state.iterations() *
                          SystolicArrayRtl::expected_cycles(64, k, 64));
}
BENCHMARK(BM_SystolicRtlTick)->Arg(64)->Arg(512);

}  // namespace

BENCHMARK_MAIN();
