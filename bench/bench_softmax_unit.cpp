// Fig. 6 / Section V.A support: accuracy of the shift-add log-sum-exp
// softmax datapath against FP32, plus google-benchmark throughput of the
// unit and its EXP/LN primitives.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "hwarith/exp_ln.hpp"
#include "hwarith/softmax_unit.hpp"
#include "quant/quantizer.hpp"
#include "reference/functional.hpp"
#include "table.hpp"
#include "tensor/compare.hpp"
#include "tensor/ops.hpp"

namespace {

using namespace tfacc;

void print_accuracy_tables() {
  bench::title("EXP unit accuracy (shift-add, 4-segment PWL, Q.10)");
  std::printf("%10s %14s %14s %12s\n", "x", "exp(x)", "EXP unit",
              "rel err %");
  bench::rule();
  for (double x : {0.0, -0.25, -0.5, -1.0, -2.0, -4.0, -8.0, -12.0}) {
    const double ref = std::exp(x);
    const double got = hw::exp_unit(x);
    std::printf("%10.2f %14.6f %14.6f %12.3f\n", x, ref, got,
                ref == 0 ? 0.0 : 100.0 * std::abs(got - ref) / ref);
  }

  bench::title("LN unit accuracy");
  std::printf("%10s %14s %14s %12s\n", "v", "ln(v)", "LN unit", "abs err");
  bench::rule();
  for (double v : {1.0, 1.5, 2.0, 4.0, 10.0, 64.0, 1000.0, 65536.0}) {
    const double ref = std::log(v);
    const double got = hw::ln_unit(v);
    std::printf("%10.1f %14.6f %14.6f %12.4f\n", v, ref, got,
                std::abs(got - ref));
  }

  bench::title("Softmax datapath vs FP32 (s = 64 rows, random scores)");
  std::printf("%12s %14s %14s\n", "d_scale", "max |err|", "cosine sim");
  bench::rule();
  Rng rng(1);
  for (double d_scale : {1e-3, 1.0 / 512, 1.0 / 128, 0.05}) {
    MatI32 d(64, 64);
    for (int r = 0; r < 64; ++r)
      for (int c = 0; c < 64; ++c) d(r, c) = rng.uniform_int(-20000, 20000);
    const hw::SoftmaxUnit unit(d_scale);
    const MatF got =
        dequantize(unit(d, no_mask(64, 64)), QuantParams{hw::kProbScale});
    const MatF ref = scaled_masked_softmax(
        dequantize_i32(d, static_cast<float>(d_scale)), no_mask(64, 64), 8.0f);
    std::printf("%12.5f %14.5f %14.6f\n", d_scale, max_abs_diff(got, ref),
                cosine_similarity(got, ref));
  }
  std::printf("\n(The paper reports this approximation *raises* IWSLT BLEU\n"
              "slightly, 23.48 -> 23.57; see bench_quant_bleu.)\n");

  bench::title("PWL resolution ablation (extension): accuracy vs segments");
  std::printf("%-26s %14s %14s\n", "variant", "max |err|", "cosine sim");
  bench::rule();
  Rng rng2(7);
  MatI32 d(64, 64);
  for (int r = 0; r < 64; ++r)
    for (int c = 0; c < 64; ++c) d(r, c) = rng2.uniform_int(-20000, 20000);
  const double ds = 1.0 / 512.0;
  const MatF ref = scaled_masked_softmax(
      dequantize_i32(d, static_cast<float>(ds)), no_mask(64, 64), 8.0f);
  auto report = [&](const char* name, const hw::SoftmaxUnit& unit) {
    const MatF got =
        dequantize(unit(d, no_mask(64, 64)), QuantParams{hw::kProbScale});
    std::printf("%-26s %14.5f %14.6f\n", name, max_abs_diff(got, ref),
                cosine_similarity(got, ref));
  };
  report("2-segment secant", hw::SoftmaxUnit(ds, hw::PwlResolution::kTwo));
  report("4-segment dyadic (ship)", hw::SoftmaxUnit(ds));
  report("4-segment secant", hw::SoftmaxUnit(ds, hw::PwlResolution::kFour));
  report("8-segment secant", hw::SoftmaxUnit(ds, hw::PwlResolution::kEight));
  report("16-segment secant",
         hw::SoftmaxUnit(ds, hw::PwlResolution::kSixteen));
  std::printf("\nBeyond 4 segments the INT8 probability floor (1/254)\n"
              "dominates — the shipped dyadic design is at the knee.\n\n");
}

void BM_SoftmaxUnitRow(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(2);
  std::vector<std::int32_t> d(static_cast<std::size_t>(n));
  std::vector<std::uint8_t> mask(static_cast<std::size_t>(n), 0);
  std::vector<std::int8_t> out(static_cast<std::size_t>(n));
  for (auto& v : d) v = rng.uniform_int(-20000, 20000);
  const hw::SoftmaxUnit unit(1.0 / 512);
  for (auto _ : state) {
    unit.row(d.data(), mask.data(), n, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SoftmaxUnitRow)->Arg(16)->Arg(64)->Arg(128);

void BM_FloatSoftmaxRow(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(3);
  MatF d(1, n);
  fill_normal(d, rng, 0, 10);
  const Mask m = no_mask(1, n);
  for (auto _ : state) {
    MatF p = scaled_masked_softmax(d, m);
    benchmark::DoNotOptimize(p.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_FloatSoftmaxRow)->Arg(16)->Arg(64)->Arg(128);

void BM_ExpUnit(benchmark::State& state) {
  std::int32_t x = -3000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hw::exp_unit_q10(x));
    x = -((-x + 37) & 0x3FFF);
  }
}
BENCHMARK(BM_ExpUnit);

void BM_LnUnit(benchmark::State& state) {
  std::int64_t v = 4096;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hw::ln_unit_q10(v));
    v = 1024 + ((v * 7) & 0xFFFF);
  }
}
BENCHMARK(BM_LnUnit);

}  // namespace

int main(int argc, char** argv) {
  print_accuracy_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
