// Minimal fixed-width table printing shared by the bench binaries, so every
// table/figure reproduction prints a readable paper-vs-measured comparison.
#pragma once

#include <cstdio>
#include <string>

namespace tfacc::bench {

inline void rule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

inline void title(const std::string& text) {
  std::printf("\n== %s ==\n", text.c_str());
}

/// Percentage delta of measured vs paper, e.g. -0.73.
inline double delta_pct(double measured, double paper) {
  return paper == 0.0 ? 0.0 : 100.0 * (measured - paper) / paper;
}

}  // namespace tfacc::bench
