// Reproduces Table II: utilization report for the accelerator and its
// primary modules on the xcvu13p, from the calibrated analytic resource
// model (see DESIGN.md §4 for the substitution rationale), plus the
// Section V.B power figure.
#include <cstdio>

#include "core/accelerator.hpp"
#include "perf/resource_model.hpp"
#include "table.hpp"

namespace {

struct PaperRow {
  const char* name;
  double lut, regs, bram, dsp;
};

}  // namespace

int main() {
  using namespace tfacc;
  const ResourceModel model;
  const auto table = model.utilization_table(ModelConfig::transformer_base(),
                                             64);
  const PaperRow paper[] = {
      {"Top", 471563, 217859, 498, 129},
      {"64x64 SA", 420867, 173110, 0, 0},
      {"Softmax", 21190, 32623, 0, 0},
      {"LayerNorm", 10551, 5325, 27.5, 129},
      {"Weight Memory", 3379, 80, 456, 0},
  };
  const auto avail = xcvu13p_available();

  bench::title(
      "Table II — utilization report (xcvu13p, s = 64, Transformer-base)");
  std::printf("%-15s | %9s %9s | %9s %9s | %7s %7s | %5s %5s\n", "module",
              "LUT", "model", "Regs", "model", "BRAM", "model", "DSP",
              "model");
  bench::rule(96);
  std::printf("%-15s | %9.0f %9s | %9.0f %9s | %7.0f %7s | %5.0f %5s\n",
              avail.name.c_str(), avail.lut, "-", avail.registers, "-",
              avail.bram, "-", avail.dsp, "-");
  for (std::size_t i = 0; i < table.size(); ++i) {
    std::printf(
        "%-15s | %9.0f %9.0f | %9.0f %9.0f | %7.1f %7.1f | %5.0f %5.0f\n",
        paper[i].name, paper[i].lut, table[i].lut, paper[i].regs,
        table[i].registers, paper[i].bram, table[i].bram, paper[i].dsp,
        table[i].dsp);
  }
  std::printf("\nDeltas (model vs paper): Top LUT %+.1f%%, Top Regs %+.1f%%, "
              "Top BRAM %+.1f%%, Top DSP %+.1f%%\n",
              bench::delta_pct(table[0].lut, paper[0].lut),
              bench::delta_pct(table[0].registers, paper[0].regs),
              bench::delta_pct(table[0].bram, paper[0].bram),
              bench::delta_pct(table[0].dsp, paper[0].dsp));

  bench::title("Section V.B — power at 200 MHz");
  Accelerator acc;
  const double util = acc.time_mha(64, 64, 512, 8).sa_mac_utilization();
  const double watts = model.total_power_w(64, 64, 200.0, util);
  std::printf("paper: 16.7 W total (13.3 dynamic + 3.4 static)\n");
  std::printf("model: %.1f W total at measured SA MAC utilization %.1f%% "
              "(delta %+.1f%%)\n",
              watts, 100.0 * util, bench::delta_pct(watts, 16.7));

  bench::title("Scaling — SA size vs resources (model)");
  std::printf("%10s | %10s %10s\n", "SA rows", "LUT", "Regs");
  bench::rule();
  for (int rows : {16, 32, 64, 128}) {
    const auto sa = model.systolic_array(rows, 64);
    std::printf("%10d | %10.0f %10.0f\n", rows, sa.lut, sa.registers);
  }
  return 0;
}
