// EXTENSION / related-work baseline: the paper cites A³ (Ham et al., HPCA
// 2020) as the only prior attention accelerator. This bench reproduces A³'s
// approximation on the same workload and compares it with this paper's
// exact systolic-array approach: output fidelity, skipped score MACs, and
// estimated attention-stage cycles per head at s = 64.
#include <cstdio>

#include "baseline/a3.hpp"
#include "core/accelerator.hpp"
#include "table.hpp"
#include "tensor/compare.hpp"
#include "tensor/ops.hpp"

int main() {
  using namespace tfacc;
  const int s = 64, dk = 64;
  Rng rng(1);
  MatF q(s, dk), k(s, dk), v(s, dk);
  fill_normal(q, rng, 0, 1);
  fill_normal(k, rng, 0, 1);
  fill_normal(v, rng, 0, 1);
  const Mask mask = no_mask(s, s);
  const MatF exact = attention_head(q, k, v, mask);

  bench::title("A3-style approximate attention vs exact (one head, s = 64)");
  std::printf("%12s | %12s %12s %14s | %12s\n", "iterations", "cosine",
              "mean cand", "MACs skipped", "A3 cycles");
  bench::rule(76);
  for (int iters : {8, 16, 32, 64, 128, 256}) {
    A3Config cfg;
    cfg.search_iterations = iters;
    const A3Result res = a3_attention(q, k, v, mask, cfg);
    std::printf("%12d | %12.5f %12.1f %13.1f%% | %12lld\n", iters,
                cosine_similarity(exact, res.output), res.mean_candidates,
                100.0 * res.score_macs_saved,
                static_cast<long long>(a3_attention_cycles(
                    s, s, dk, res.mean_candidates, cfg)));
  }

  // The exact design's attention stage per head: Q·Kᵀ op + softmax + Attn·V
  // op on the 64×64 SA (projections excluded on both sides).
  Accelerator acc;
  const AcceleratorConfig& c = acc.config();
  const Cycle qkt = 64 + c.tile_drain_cycles + c.weight_load_cycles;
  const Cycle av = 64 + c.tile_drain_cycles + c.weight_load_cycles;
  const Cycle softmax = 2 * 64 + c.softmax_pipeline_depth;
  std::printf("\nexact SA attention stage per head: QKt %lld + softmax %lld "
              "(overlapped) + AV %lld ~= %lld cycles\n",
              static_cast<long long>(qkt), static_cast<long long>(softmax),
              static_cast<long long>(av),
              static_cast<long long>(qkt + av));
  std::printf(
      "\nShape check: A3 trades output fidelity for skipped score MACs; at\n"
      "s = 64 the exact SA attention stage is already tiny (Eq. 3: 0.39%% of\n"
      "the ResBlock), which is this paper's argument for keeping attention\n"
      "exact and spending area on the shared projection datapath instead.\n");
  return 0;
}
