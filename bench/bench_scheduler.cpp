// EXTENSION (ROADMAP scale axis: continuous batching): the serve/ scheduler's
// packed decode steps versus PR 2's one-row-per-step decode.
//
// KV-cached decode feeds the systolic array one query row per step, so every
// weight tile load (64 cycles) buys a 1-row pass (~9 cycles): the SA is
// weight-load bound. The scheduler packs the next-token rows of up to
// `slots` live sentences into one multi-row invocation, amortizing tile
// loads and per-op overheads across the batch. This bench sweeps the slot
// count at one card and reports the modeled effect; outputs are bit-identical
// at every point (asserted here), only the schedule changes.
//
// Machine-readable results land in BENCH_scheduler.json for cross-PR
// tracking.
//
//   $ ./build/bench_scheduler [sentences]
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "json.hpp"
#include "nlp/synthetic.hpp"
#include "reference/weights.hpp"
#include "serve/scheduler.hpp"
#include "table.hpp"

int main(int argc, char** argv) {
  using namespace tfacc;
  const int sentences = argc > 1 ? std::atoi(argv[1]) : 32;

  ModelConfig cfg;
  cfg.name = "sched-bench";
  cfg.d_model = 64;
  cfg.d_ff = 256;
  cfg.num_heads = 1;
  cfg.head_dim = 64;
  cfg.num_encoder_layers = 1;
  cfg.num_decoder_layers = 1;

  const SyntheticTranslationTask task(24, 5, 8);
  Rng rng(17);
  const TransformerWeights weights =
      TransformerWeights::random(cfg, task.vocab_size(), rng);
  std::vector<TokenSeq> calib, sources;
  for (int i = 0; i < 4; ++i) calib.push_back(task.sample(rng).source);
  for (int i = 0; i < sentences; ++i)
    sources.push_back(task.sample(rng).source);
  const int max_len = task.max_len() + 2;

  bench::title("Continuous batching: packed rows per decode step (1 card, " +
               std::to_string(sentences) + " sentences)");
  std::printf("%5s | %10s %12s | %14s %14s %8s %9s %11s\n", "slots", "steps",
              "rows/step", "makespan cyc", "modeled sent/s", "SA util",
              "sm stall", "wall sent/s");
  bench::rule(96);

  std::ofstream json_file("BENCH_scheduler.json");
  bench::JsonWriter json(json_file);
  json.begin_object();
  json.key("bench").value("scheduler_slot_sweep");
  json.key("sentences").value(sentences);
  json.key("max_len").value(max_len);
  bench::write_host_info(json);
  json.key("sweep").begin_array();

  std::vector<TokenSeq> baseline_outputs;
  double base_modeled = 0.0, best_modeled = 0.0;
  double base_util = 0.0, best_util = 0.0;
  ScheduleReport fused16;  // the 16-slot point doubles as fused_step's side
  for (const int slots : {1, 2, 4, 8, 16}) {
    SchedulerConfig sc;
    sc.num_cards = 1;
    sc.max_len = max_len;
    sc.slots_per_card = slots;
    // Every bench-gated ledger runs under the typed verifier (PR 7): any
    // illegal or non-reproducible schedule aborts the bench before it can
    // publish numbers.
    sc.accel.verify_schedules = true;
    Scheduler sched(weights, calib, sc);
    const ScheduleReport rep = sched.run(sources);
    if (slots == 16) fused16 = rep;
    if (slots == 1) {
      baseline_outputs = rep.outputs;
      base_modeled = rep.modeled_sentences_per_second();
      base_util = rep.sa_utilization();
    } else if (rep.outputs != baseline_outputs) {
      std::printf("FATAL: packed outputs diverged at slots=%d\n", slots);
      return 2;
    }
    best_modeled = rep.modeled_sentences_per_second();
    best_util = rep.sa_utilization();
    // Wall sent/s is how fast THIS HOST simulates the farm — the measured
    // serve-loop number the PR 8 kernels accelerate. Reported for tracking,
    // not gated (host-speed dependent; BENCH_wallclock.json gates the
    // dimensionless kernel ratio instead).
    const double wall_sps =
        rep.wall_seconds > 0 ? sentences / rep.wall_seconds : 0.0;
    std::printf("%5d | %10ld %12.2f | %14lld %14.1f %7.1f%% %9lld %11.1f\n",
                slots, rep.packed_steps(), rep.packed_rows_mean(),
                static_cast<long long>(rep.makespan_cycles()),
                rep.modeled_sentences_per_second(),
                100.0 * rep.sa_utilization(),
                static_cast<long long>(rep.softmax_stall_cycles()), wall_sps);

    json.begin_object();
    json.key("slots").value(slots);
    json.key("wall_sentences_per_second").value(wall_sps);
    json.key("packed_steps").value(rep.packed_steps());
    json.key("packed_rows_mean").value(rep.packed_rows_mean());
    json.key("makespan_cycles")
        .value(static_cast<long long>(rep.makespan_cycles()));
    json.key("modeled_sentences_per_second")
        .value(rep.modeled_sentences_per_second());
    json.key("sa_utilization").value(rep.sa_utilization());
    bench::write_module_breakdown(
        json, static_cast<long long>(rep.total_cycles()),
        static_cast<long long>(rep.sa_busy_cycles()),
        static_cast<long long>(rep.softmax_busy_cycles()),
        static_cast<long long>(rep.layernorm_busy_cycles()),
        static_cast<long long>(rep.softmax_stall_cycles()),
        static_cast<long long>(rep.boundary_stall_cycles()),
        static_cast<long long>(rep.prefill_stall_cycles()));
    json.key("packed_rows_histogram")
        .value_array(rep.per_card_steps[0].rows_hist);
    json.end_object();
  }
  json.end_array();

  // The PR 5 fused decode-step ledger vs the per-sublayer ledgers it
  // replaces (ablation knob accel.fuse_decode_step). The fused side IS the
  // sweep's 16-slot point (fuse_decode_step defaults to true), so only the
  // unfused ablation needs a fresh run. Both sides' metrics are gated by
  // perf_gate.py.
  bench::title(
      "Fused decode-step ledger vs per-sublayer runs (16 slots, 1 card)");
  std::printf("%10s | %14s %14s %8s %14s\n", "step model", "makespan cyc",
              "modeled sent/s", "SA util", "boundary stall");
  bench::rule(70);
  json.key("fused_step").begin_object();
  json.key("slots").value(16);
  SchedulerConfig unfused_cfg;
  unfused_cfg.num_cards = 1;
  unfused_cfg.max_len = max_len;
  unfused_cfg.slots_per_card = 16;
  unfused_cfg.accel.fuse_decode_step = false;
  unfused_cfg.accel.verify_schedules = true;
  Scheduler unfused_sched(weights, calib, unfused_cfg);
  const ScheduleReport unfused16 = unfused_sched.run(sources);
  // fused16's outputs were already checked against the one-row outputs in
  // the sweep; matching them here proves the ablation pair bit-identical.
  const bool fused_identical = unfused16.outputs == fused16.outputs;
  const ScheduleReport* const reps[] = {&unfused16, &fused16};
  for (const ScheduleReport* rep : reps) {
    const bool fused = rep == &fused16;
    std::printf("%10s | %14lld %14.1f %7.1f%% %14lld\n",
                fused ? "fused" : "per-run",
                static_cast<long long>(rep->makespan_cycles()),
                rep->modeled_sentences_per_second(),
                100.0 * rep->sa_utilization(),
                static_cast<long long>(rep->boundary_stall_cycles()));
    json.key(fused ? "fused" : "unfused").begin_object();
    json.key("fused_steps").value(rep->fused_steps());
    json.key("makespan_cycles")
        .value(static_cast<long long>(rep->makespan_cycles()));
    json.key("modeled_sentences_per_second")
        .value(rep->modeled_sentences_per_second());
    json.key("sa_utilization").value(rep->sa_utilization());
    bench::write_module_breakdown(
        json, static_cast<long long>(rep->total_cycles()),
        static_cast<long long>(rep->sa_busy_cycles()),
        static_cast<long long>(rep->softmax_busy_cycles()),
        static_cast<long long>(rep->layernorm_busy_cycles()),
        static_cast<long long>(rep->softmax_stall_cycles()),
        static_cast<long long>(rep->boundary_stall_cycles()),
        static_cast<long long>(rep->prefill_stall_cycles()));
    json.end_object();
  }
  json.end_object();
  const bool fused_wins =
      fused_identical &&
      fused16.sa_utilization() > unfused16.sa_utilization() &&
      fused16.boundary_stall_cycles() < unfused16.boundary_stall_cycles();
  std::printf(
      "fused vs per-run: boundary stall %lld -> %lld cycles, SA utilization "
      "%.1f%% -> %.1f%%, outputs %s (gate: %s)\n",
      static_cast<long long>(unfused16.boundary_stall_cycles()),
      static_cast<long long>(fused16.boundary_stall_cycles()),
      100.0 * unfused16.sa_utilization(), 100.0 * fused16.sa_utilization(),
      fused_identical ? "bit-identical" : "DIVERGED",
      fused_wins ? "PASS" : "FAIL");

  bench::title("Beam search through the packed scheduler (beam 4)");
  SchedulerConfig beam_cfg;
  beam_cfg.num_cards = 1;
  beam_cfg.max_len = max_len;
  beam_cfg.beam_size = 4;
  beam_cfg.slots_per_card = 16;  // four sentences' beams in flight at once
  Scheduler beam_sched(weights, calib, beam_cfg);
  const ScheduleReport beam_rep = beam_sched.run(sources);
  std::printf(
      "%ld packed steps, %.2f rows/step, %.1f%% SA util, %.1f modeled "
      "sent/s\n",
      beam_rep.packed_steps(), beam_rep.packed_rows_mean(),
      100.0 * beam_rep.sa_utilization(),
      beam_rep.modeled_sentences_per_second());
  json.key("beam").begin_object();
  json.key("beam_size").value(4);
  json.key("slots").value(16);
  json.key("packed_rows_mean").value(beam_rep.packed_rows_mean());
  json.key("modeled_sentences_per_second")
      .value(beam_rep.modeled_sentences_per_second());
  json.key("sa_utilization").value(beam_rep.sa_utilization());
  bench::write_module_breakdown(
      json, static_cast<long long>(beam_rep.total_cycles()),
      static_cast<long long>(beam_rep.sa_busy_cycles()),
      static_cast<long long>(beam_rep.softmax_busy_cycles()),
      static_cast<long long>(beam_rep.layernorm_busy_cycles()),
      static_cast<long long>(beam_rep.softmax_stall_cycles()),
      static_cast<long long>(beam_rep.boundary_stall_cycles()),
      static_cast<long long>(beam_rep.prefill_stall_cycles()));
  json.end_object();

  // PR 6: chunked prefill packing under an admission burst. Three points,
  // all 16 slots on 1 card: the packed step loop with every request present
  // at t=0 (the hardest admission pattern — every slot wants its encoder
  // pass at once), the same packed loop with staggered Poisson-ish arrivals
  // (deterministic LCG gaps, mean `arrival_mean_gap_cycles`), and the eager
  // ablation (pack_prefill=false, PR 5's admission model) under the burst.
  // Gates: the packed burst keeps SA utilization above 63%, its makespan is
  // insensitive to the admission pattern (<= 2% delta vs staggered), and
  // outputs stay bit-identical across all three.
  bench::title("Admission burst vs staggered arrivals (16 slots, 1 card)");
  // Mean gap sized so the whole arrival window spans a handful of packed
  // steps: the point is admission *pattern* sensitivity (burst vs trickle),
  // not load sensitivity — a window comparable to the makespan would starve
  // the slots and measure underfill, not admission handling.
  const Cycle arrival_mean_gap = 100;
  // The makespan gate is one-sided: the burst (the stressor the eager-encode
  // model buckled under — every slot demanding its encoder pass at once)
  // must cost at most 2% over the staggered trickle. The trickle itself runs
  // a few percent longer from cold-start slot underfill (early steps pack
  // fewer live rows), which hits the eager model identically and is not an
  // admission-handling effect.
  std::vector<Cycle> staggered_arrivals(sources.size());
  std::uint64_t lcg = 12345;
  Cycle arrival_t = 0;
  for (std::size_t i = 0; i < staggered_arrivals.size(); ++i) {
    lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
    arrival_t += static_cast<Cycle>((lcg >> 33) %
                                    static_cast<std::uint64_t>(
                                        2 * arrival_mean_gap));
    staggered_arrivals[i] = arrival_t;
  }
  SchedulerConfig burst_cfg;
  burst_cfg.num_cards = 1;
  burst_cfg.max_len = max_len;
  burst_cfg.slots_per_card = 16;
  burst_cfg.accel.verify_schedules = true;
  Scheduler packed_sched(weights, calib, burst_cfg);
  // The packed burst point IS the sweep's 16-slot run (pack_prefill defaults
  // to true and run(sources) means all-arrivals-0), so only the staggered
  // and eager sides need fresh runs.
  const ScheduleReport& packed_burst = fused16;
  const ScheduleReport packed_staggered =
      packed_sched.run(sources, staggered_arrivals);
  SchedulerConfig eager_cfg = burst_cfg;
  eager_cfg.accel.pack_prefill = false;
  Scheduler eager_sched(weights, calib, eager_cfg);
  const ScheduleReport eager_burst = eager_sched.run(sources);
  const bool burst_identical = packed_staggered.outputs == fused16.outputs &&
                               eager_burst.outputs == fused16.outputs;

  std::printf("%16s | %14s %14s %8s %14s %8s\n", "arrivals", "makespan cyc",
              "modeled sent/s", "SA util", "prefill stall", "chunks");
  bench::rule(84);
  json.key("admission_burst").begin_object();
  json.key("slots").value(16);
  json.key("cards").value(1);
  json.key("prefill_chunk_rows").value(burst_cfg.accel.prefill_chunk_rows);
  json.key("arrival_mean_gap_cycles")
      .value(static_cast<long long>(arrival_mean_gap));
  const struct {
    const char* name;
    const ScheduleReport* rep;
    bool pack;
  } burst_points[] = {{"burst", &packed_burst, true},
                      {"staggered", &packed_staggered, true},
                      {"eager_burst", &eager_burst, false}};
  for (const auto& p : burst_points) {
    std::printf("%16s | %14lld %14.1f %7.1f%% %14lld %8ld\n", p.name,
                static_cast<long long>(p.rep->makespan_cycles()),
                p.rep->modeled_sentences_per_second(),
                100.0 * p.rep->sa_utilization(),
                static_cast<long long>(p.rep->prefill_stall_cycles()),
                p.rep->prefill_chunks());
    json.key(p.name).begin_object();
    json.key("pack_prefill").value(p.pack);
    json.key("prefill_chunks").value(p.rep->prefill_chunks());
    json.key("makespan_cycles")
        .value(static_cast<long long>(p.rep->makespan_cycles()));
    json.key("modeled_sentences_per_second")
        .value(p.rep->modeled_sentences_per_second());
    json.key("sa_utilization").value(p.rep->sa_utilization());
    bench::write_module_breakdown(
        json, static_cast<long long>(p.rep->total_cycles()),
        static_cast<long long>(p.rep->sa_busy_cycles()),
        static_cast<long long>(p.rep->softmax_busy_cycles()),
        static_cast<long long>(p.rep->layernorm_busy_cycles()),
        static_cast<long long>(p.rep->softmax_stall_cycles()),
        static_cast<long long>(p.rep->boundary_stall_cycles()),
        static_cast<long long>(p.rep->prefill_stall_cycles()));
    json.end_object();
  }
  const double burst_util = packed_burst.sa_utilization();
  const double burst_over_staggered =
      packed_staggered.makespan_cycles() <= 0
          ? 1.0
          : std::max(0.0,
                     static_cast<double>(packed_burst.makespan_cycles() -
                                         packed_staggered.makespan_cycles()) /
                         static_cast<double>(
                             packed_staggered.makespan_cycles()));
  json.key("burst_over_staggered_makespan").value(burst_over_staggered);
  json.key("outputs_bit_identical").value(burst_identical);
  json.end_object();
  json.end_object();
  json_file << '\n';
  const bool burst_wins =
      burst_identical && burst_util > 0.63 && burst_over_staggered <= 0.02;
  std::printf(
      "burst point: SA utilization %.1f%% (> 63%% required), makespan excess "
      "of burst over staggered %.2f%% (<= 2%% required), outputs %s "
      "(gate: %s)\n",
      100.0 * burst_util, 100.0 * burst_over_staggered,
      burst_identical ? "bit-identical" : "DIVERGED",
      burst_wins ? "PASS" : "FAIL");

  const double speedup = base_modeled > 0 ? best_modeled / base_modeled : 0.0;
  const bool packed_wins = best_modeled > base_modeled && best_util > base_util;
  std::printf(
      "\npacked (16 slots) vs one-row steps: %.2fx modeled sent/s, SA "
      "utilization %.1f%% -> %.1f%% (gate: faster AND fuller: %s)\n"
      "results written to BENCH_scheduler.json\n",
      speedup, 100.0 * base_util, 100.0 * best_util,
      packed_wins ? "PASS" : "FAIL");
  return packed_wins && fused_wins && burst_wins ? 0 : 1;
}
