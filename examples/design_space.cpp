// Design-space exploration with the public API: sweep the systolic-array
// geometry and micro-architectural parameters, reporting latency, resource
// and power trade-offs — the kind of study the accelerator model enables
// beyond the paper's single design point.
//
//   $ ./examples/design_space
#include <cstdio>

#include "core/accelerator.hpp"
#include "core/memories.hpp"
#include "perf/resource_model.hpp"

int main() {
  using namespace tfacc;
  const ResourceModel resources;
  const auto avail = xcvu13p_available();

  std::printf("design-space exploration: Transformer-base encoder layer,\n"
              "batch 1, s = 64 (MHA + FFN ResBlock per layer)\n\n");
  std::printf("%8s %6s | %10s %10s | %9s %8s | %8s %9s\n", "SA rows",
              "drain", "MHA cyc", "FFN cyc", "layer us", "tok/s", "kLUT",
              "LUT %");
  for (int rows : {16, 32, 64, 128}) {
    for (int drain : {4, 8, 16}) {
      AcceleratorConfig cfg;
      cfg.sa_rows = rows;
      cfg.tile_drain_cycles = drain;
      Accelerator acc(cfg);
      const Cycle mha = acc.time_mha(64, 64, 512, 8).total_cycles;
      const Cycle ffn = acc.time_ffn(64, 512, 2048).total_cycles;
      const double layer_us =
          static_cast<double>(mha + ffn) / cfg.clock_mhz;
      const double tokens_per_s = 64.0 / (layer_us * 1e-6) /
                                  6.0;  // 6 encoder layers
      const auto sa = resources.systolic_array(rows, 64);
      std::printf("%8d %6d | %10lld %10lld | %9.1f %8.0f | %8.0f %8.1f%%\n",
                  rows, drain, static_cast<long long>(mha),
                  static_cast<long long>(ffn), layer_us, tokens_per_s,
                  sa.lut / 1000.0, 100.0 * sa.lut / avail.lut);
    }
  }

  std::printf("\naccumulator depth vs FFN spill (64x64 SA):\n");
  std::printf("%12s | %10s %14s\n", "depth tiles", "FFN cyc", "spill cyc");
  for (int depth : {4, 8, 16, 32}) {
    AcceleratorConfig cfg;
    cfg.accum_depth_tiles = depth;
    Accelerator acc(cfg);
    const RunReport rep = acc.time_ffn(64, 512, 2048);
    std::printf("%12d | %10lld %14lld\n", depth,
                static_cast<long long>(rep.total_cycles),
                static_cast<long long>(rep.accum_spill));
  }

  std::printf("\nclock scaling at the paper's design point (64x64, drain 8):\n");
  std::printf("%10s | %12s %12s %10s\n", "clock MHz", "MHA us", "FFN us",
              "power W");
  Accelerator acc;
  const RunReport mha = acc.time_mha(64, 64, 512, 8);
  const RunReport ffn = acc.time_ffn(64, 512, 2048);
  for (double mhz : {100.0, 150.0, 200.0, 250.0}) {
    std::printf("%10.0f | %12.2f %12.2f %10.1f\n", mhz,
                static_cast<double>(mha.total_cycles) / mhz,
                static_cast<double>(ffn.total_cycles) / mhz,
                resources.total_power_w(64, 64, mhz,
                                        mha.sa_mac_utilization()));
  }

  std::printf("\nmodel scaling at 64x64, s = 64:\n");
  std::printf("%-18s | %12s %12s %12s\n", "model", "MHA cyc", "FFN cyc",
              "weights BRAM");
  for (const auto& cfg : ModelConfig::table1()) {
    const Cycle m = acc.time_mha(64, 64, cfg.d_model, cfg.num_heads)
                        .total_cycles;
    const Cycle f = acc.time_ffn(64, cfg.d_model, cfg.d_ff).total_cycles;
    std::printf("%-18s | %12lld %12lld %12.0f\n", cfg.name.c_str(),
                static_cast<long long>(m), static_cast<long long>(f),
                resources.weight_memory(cfg).bram);
  }

  std::printf("\non-chip buffer inventory (Fig. 5), Transformer-base, s = 64:\n");
  const MemoryLayout layout =
      MemoryLayout::compute(ModelConfig::transformer_base(), 64);
  std::printf("%-28s | %10s %8s\n", "buffer", "bytes", "BRAM36");
  for (const auto& b : layout.buffers)
    std::printf("%-28s | %10lld %8lld\n", b.name.c_str(),
                static_cast<long long>(b.bytes),
                static_cast<long long>((b.bytes + 4607) / 4608));
  std::printf("%-28s | %10lld %8.0f  (device: 2688 BRAM36%s)\n", "total",
              static_cast<long long>(layout.total_bytes()), layout.bram36(),
              layout.fits(2688) ? ", fits" : ", DOES NOT FIT");
  return 0;
}
