// Per-module execution trace of one MHA and one FFN ResBlock run: prints the
// head-by-head schedule (Algorithm 1) and writes the full interval trace as
// CSV — the textual equivalent of a waveform view of Fig. 5.
//
//   $ ./examples/profile_timeline [out.csv]
#include <cstdio>
#include <fstream>
#include <iostream>

#include "core/accelerator.hpp"
#include "quant/qresblock.hpp"
#include "reference/functional.hpp"
#include "sim/gantt.hpp"
#include "tensor/ops.hpp"

int main(int argc, char** argv) {
  using namespace tfacc;

  // A 2-head, d_model=128 block keeps the printed trace readable while using
  // exactly the same schedule logic as the full-size model.
  ModelConfig cfg;
  cfg.name = "profile";
  cfg.d_model = 128;
  cfg.d_ff = 512;
  cfg.num_heads = 2;
  cfg.head_dim = 64;

  Rng rng(3);
  const MhaWeights mw = MhaWeights::random(cfg, rng);
  const FfnWeights fw = FfnWeights::random(cfg, rng);
  const int s = 64;
  MatF x(s, cfg.d_model);
  fill_normal(x, rng, 0, 1);
  const Mask mask = causal_mask(s);

  MhaQuantized::Calibration calib;
  calib.q.push_back(x);
  calib.kv.push_back(x);
  calib.mask.push_back(mask);
  const auto qm = MhaQuantized::build(mw, calib, SoftmaxImpl::kHardware);
  const auto qf = FfnQuantized::build(fw, {x});

  Accelerator acc;
  const auto mha = acc.run_mha(qm, qm.quantize_q(x), qm.quantize_kv(x), mask);
  const auto ffn = acc.run_ffn(qf, qf.quantize_in(
                                       qm.dequantize_out(mha.out)));

  auto print_trace = [](const char* name, const RunReport& rep) {
    std::printf("\n%s — %lld cycles (%.2f us), SA busy %.1f%%\n", name,
                static_cast<long long>(rep.total_cycles), rep.microseconds(),
                100.0 * rep.sa_utilization());
    std::printf("%-10s %10s %10s %8s  %s\n", "module", "start", "end", "dur",
                "op");
    for (const auto& module : rep.timeline.modules())
      for (const auto& iv : module.intervals())
        std::printf("%-10s %10lld %10lld %8lld  %s\n", module.name().c_str(),
                    static_cast<long long>(iv.start),
                    static_cast<long long>(iv.end),
                    static_cast<long long>(iv.duration()), iv.label.c_str());
  };
  print_trace("MHA ResBlock (Algorithm 1, lines 1-13)", mha.report);
  print_trace("FFN ResBlock (Algorithm 1, lines 14-22)", ffn.report);

  std::printf("\nGantt view of the MHA run (softmax overlap visible):\n");
  render_gantt(mha.report.timeline, std::cout);

  const char* path = argc > 1 ? argv[1] : "timeline.csv";
  std::ofstream out(path);
  mha.report.timeline.write_csv(out);
  std::printf("\nMHA trace written to %s (module,start,end,label)\n", path);
  return 0;
}
