// End-to-end machine translation on the accelerator: train a small
// encoder-decoder Transformer on the synthetic De→En-like task, quantize it,
// and greedily translate test sentences with every ResBlock running through
// the cycle-level accelerator — the deployment the paper motivates
// (embeddings/output on the host, MHA/FFN ResBlocks on the FPGA).
//
//   $ ./examples/translate [train_sentences] [epochs]
#include <cstdio>
#include <cstdlib>

#include "core/backend.hpp"
#include "nlp/bleu.hpp"
#include "nlp/synthetic.hpp"
#include "quant/qtransformer.hpp"
#include "reference/serialize.hpp"
#include "train/trainer.hpp"

namespace {

using namespace tfacc;

void print_tokens(const char* tag, const TokenSeq& seq) {
  std::printf("  %-10s", tag);
  for (int t : seq) std::printf(" %3d", t);
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const int train_sentences = argc > 1 ? std::atoi(argv[1]) : 384;
  const int epochs = argc > 2 ? std::atoi(argv[2]) : 10;

  // Hardware-compatible small model: one 64-wide head per the Fig. 6 softmax.
  ModelConfig cfg;
  cfg.name = "synthetic-nmt";
  cfg.d_model = 64;
  cfg.d_ff = 256;
  cfg.num_heads = 1;
  cfg.head_dim = 64;
  cfg.num_encoder_layers = 1;
  cfg.num_decoder_layers = 1;

  const SyntheticTranslationTask task(24, 4, 9);
  Rng rng(7);
  std::printf("training %s on the synthetic task (%d sentences, %d epochs)...\n",
              cfg.name.c_str(), train_sentences, epochs);
  AdamConfig adam;
  adam.lr = 2e-3f;
  Trainer trainer(TransformerWeights::random(cfg, task.vocab_size(), rng),
                  adam);
  const auto train_set = task.corpus(train_sentences, rng);
  for (int e = 0; e < epochs; ++e) {
    float loss = 0;
    int n = 0;
    for (std::size_t i = 0; i < train_set.size(); i += 16) {
      loss += trainer.train_batch(std::vector<SentencePair>(
          train_set.begin() + i,
          train_set.begin() + std::min(i + 16, train_set.size())));
      ++n;
    }
    if ((e + 1) % 2 == 0)
      std::printf("  epoch %2d, mean loss %.4f\n", e + 1, loss / n);
  }

  Transformer model(trainer.take_weights());
  std::vector<TokenSeq> calib;
  for (int i = 0; i < 12; ++i) calib.push_back(train_set[i].source);
  const int max_len = task.max_len() + 2;
  const auto qt =
      QuantizedTransformer::build(model, calib, max_len, SoftmaxImpl::kHardware);

  Accelerator acc;
  AcceleratorStats stats;

  std::printf("\ntranslating 5 test sentences on the accelerator backend:\n");
  const auto tests = task.corpus(5, rng);
  for (const auto& pair : tests) {
    model.set_backend(accelerator_backend(qt, acc, &stats));
    const TokenSeq hyp = model.translate_greedy(pair.source, max_len);
    model.set_backend(ResBlockBackend{});
    std::printf("\n");
    print_tokens("source:", pair.source);
    print_tokens("reference:", pair.reference);
    print_tokens("output:", hyp);
    std::printf("  sentence BLEU: %.1f\n", sentence_bleu(hyp, pair.reference));
  }

  std::printf("\naccelerator totals: %ld MHA runs, %ld FFN runs, "
              "%lld cycles = %.2f ms at 200 MHz\n",
              stats.mha_runs, stats.ffn_runs,
              static_cast<long long>(stats.total_cycles()),
              stats.microseconds(200.0) / 1000.0);

  // Corpus BLEU on a larger test set: FP32 greedy, FP32 beam-4, and the
  // INT8 accelerator backend.
  const auto eval_set = task.corpus(40, rng);
  std::vector<TokenSeq> refs, fp32_hyps, beam_hyps, accel_hyps;
  for (const auto& pair : eval_set) {
    refs.push_back(pair.reference);
    fp32_hyps.push_back(model.translate_greedy(pair.source, max_len));
    beam_hyps.push_back(model.translate_beam(pair.source, max_len));
    model.set_backend(accelerator_backend(qt, acc, nullptr));
    accel_hyps.push_back(model.translate_greedy(pair.source, max_len));
    model.set_backend(ResBlockBackend{});
  }
  std::printf("\ncorpus BLEU (40 sentences): FP32 greedy %.2f | FP32 beam-4 "
              "%.2f | INT8-on-accelerator %.2f\n",
              corpus_bleu(fp32_hyps, refs, 4, true),
              corpus_bleu(beam_hyps, refs, 4, true),
              corpus_bleu(accel_hyps, refs, 4, true));

  // Persist the trained model so other tools can reuse it.
  const char* out_path = "synthetic_nmt.tfacc";
  save_weights(model.weights(), out_path);
  std::printf("trained weights saved to %s (load with "
              "tfacc::load_weights)\n", out_path);
  return 0;
}
