// Quickstart: build a Transformer-base MHA ResBlock, quantize it to INT8,
// run it on the cycle-level accelerator, and compare against the FP32
// reference — the minimal end-to-end use of the tfacc public API.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "core/accelerator.hpp"
#include "quant/qresblock.hpp"
#include "reference/functional.hpp"
#include "tensor/compare.hpp"
#include "tensor/ops.hpp"

int main() {
  using namespace tfacc;

  // 1. A Transformer-base MHA ResBlock with random weights, and a batch-1
  //    s = 64 workload (the paper's evaluation point).
  const ModelConfig cfg = ModelConfig::transformer_base();
  Rng rng(1);
  const MhaWeights weights = MhaWeights::random(cfg, rng);
  const int s = 64;
  MatF q(s, cfg.d_model), kv(s, cfg.d_model);
  fill_normal(q, rng, 0.0f, 1.0f);
  fill_normal(kv, rng, 0.0f, 1.0f);
  const Mask mask = no_mask(s, s);

  // 2. FP32 golden result.
  const MatF golden = mha_resblock(q, kv, weights, mask);

  // 3. Post-training INT8 quantization with the Fig. 6 hardware softmax.
  MhaQuantized::Calibration calib;
  calib.q.push_back(q);
  calib.kv.push_back(kv);
  calib.mask.push_back(mask);
  const MhaQuantized block =
      MhaQuantized::build(weights, calib, SoftmaxImpl::kHardware);

  // 4. Run on the accelerator model (64×64 SA, 200 MHz defaults).
  Accelerator accelerator;
  const auto result =
      accelerator.run_mha(block, block.quantize_q(q), block.quantize_kv(kv),
                          mask);
  const MatF output = block.dequantize_out(result.out);

  // 5. Report.
  std::printf("tfacc quickstart — MHA ResBlock on the simulated accelerator\n");
  std::printf("  model            : %s (d_model=%d, h=%d)\n",
              cfg.name.c_str(), cfg.d_model, cfg.num_heads);
  std::printf("  cycles           : %lld (%.1f us at %.0f MHz)\n",
              static_cast<long long>(result.report.total_cycles),
              result.report.microseconds(), result.report.clock_mhz);
  std::printf("  SA utilization   : %.1f%% busy / %.1f%% issuing MACs\n",
              100.0 * result.report.sa_utilization(),
              100.0 * result.report.sa_mac_utilization());
  std::printf("  softmax hidden   : %s (min slack %lld cycles)\n",
              result.report.softmax_hidden ? "yes" : "no",
              static_cast<long long>(result.report.softmax_slack_min));
  std::printf("  vs FP32 golden   : cosine %.5f, max|err| %.4f\n",
              cosine_similarity(golden, output), max_abs_diff(golden, output));
  std::printf("\nNext: examples/translate (full NMT pipeline), "
              "examples/design_space (sweeps),\n"
              "examples/profile_timeline (per-module trace).\n");
  return 0;
}
