#include "nlp/bleu.hpp"

#include <cmath>
#include <map>

#include "common/check.hpp"

namespace tfacc {

namespace {

using Ngram = std::vector<int>;

std::map<Ngram, int> ngram_counts(const TokenSeq& seq, int n) {
  std::map<Ngram, int> counts;
  if (static_cast<int>(seq.size()) < n) return counts;
  for (std::size_t i = 0; i + n <= seq.size(); ++i)
    ++counts[Ngram(seq.begin() + i, seq.begin() + i + n)];
  return counts;
}

}  // namespace

double corpus_bleu(const std::vector<TokenSeq>& hypotheses,
                   const std::vector<TokenSeq>& references, int max_n,
                   bool smooth) {
  TFACC_CHECK_ARG(max_n >= 1);
  TFACC_CHECK_ARG_MSG(hypotheses.size() == references.size(),
                      hypotheses.size() << " hyps vs " << references.size()
                                        << " refs");
  if (hypotheses.empty()) return 0.0;

  std::vector<std::int64_t> matched(static_cast<std::size_t>(max_n), 0);
  std::vector<std::int64_t> total(static_cast<std::size_t>(max_n), 0);
  std::int64_t hyp_len = 0, ref_len = 0;

  for (std::size_t i = 0; i < hypotheses.size(); ++i) {
    const TokenSeq& hyp = hypotheses[i];
    const TokenSeq& ref = references[i];
    hyp_len += static_cast<std::int64_t>(hyp.size());
    ref_len += static_cast<std::int64_t>(ref.size());
    for (int n = 1; n <= max_n; ++n) {
      const auto hyp_counts = ngram_counts(hyp, n);
      const auto ref_counts = ngram_counts(ref, n);
      for (const auto& [gram, count] : hyp_counts) {
        const auto it = ref_counts.find(gram);
        const int clip = it == ref_counts.end() ? 0 : it->second;
        matched[static_cast<std::size_t>(n - 1)] += std::min(count, clip);
      }
      const std::int64_t slots =
          std::max<std::int64_t>(0, static_cast<std::int64_t>(hyp.size()) -
                                        n + 1);
      total[static_cast<std::size_t>(n - 1)] += slots;
    }
  }

  double log_precision_sum = 0.0;
  for (int n = 1; n <= max_n; ++n) {
    double num = static_cast<double>(matched[static_cast<std::size_t>(n - 1)]);
    double den = static_cast<double>(total[static_cast<std::size_t>(n - 1)]);
    if (smooth && n > 1) {
      num += 1.0;
      den += 1.0;
    }
    if (num <= 0.0 || den <= 0.0) return 0.0;
    log_precision_sum += std::log(num / den);
  }
  const double geo_mean = std::exp(log_precision_sum / max_n);

  const double bp =
      hyp_len >= ref_len
          ? 1.0
          : std::exp(1.0 - static_cast<double>(ref_len) /
                               std::max<std::int64_t>(1, hyp_len));
  return 100.0 * bp * geo_mean;
}

double sentence_bleu(const TokenSeq& hypothesis, const TokenSeq& reference,
                     int max_n) {
  return corpus_bleu({hypothesis}, {reference}, max_n, /*smooth=*/true);
}

}  // namespace tfacc
