// Corpus-level BLEU (Papineni et al. 2002): clipped n-gram precision up to
// 4-grams, geometric mean, multiplicative brevity penalty. This is the metric
// behind the paper's 23.88 / 23.48 / 23.57 quantization study (Section V.A).
#pragma once

#include <vector>

#include "reference/transformer.hpp"

namespace tfacc {

/// BLEU of hypothesis corpus vs single-reference corpus, in percent (0-100).
/// `max_n` is the largest n-gram order (standard BLEU-4).
/// With `smooth` (add-one on higher-order precisions, Lin & Och 2004) short
/// corpora don't collapse to zero when an order has no matches.
double corpus_bleu(const std::vector<TokenSeq>& hypotheses,
                   const std::vector<TokenSeq>& references, int max_n = 4,
                   bool smooth = false);

/// Sentence BLEU (smoothed), convenience for tests/examples.
double sentence_bleu(const TokenSeq& hypothesis, const TokenSeq& reference,
                     int max_n = 4);

}  // namespace tfacc
