// Synthetic translation task standing in for IWSLT'16 De-En (see DESIGN.md
// §4). Source sentences are drawn from a toy verb-final grammar; the
// reference translation is a deterministic transform: every source word maps
// through a bilingual dictionary and the final (verb) position moves to
// second position ("verb-second" target order). A Transformer must therefore
// learn both lexical mapping and reordering — the properties the INT8
// quantization study stresses.
#pragma once

#include <utility>
#include <vector>

#include "common/random.hpp"
#include "reference/transformer.hpp"

namespace tfacc {

/// One source/reference sentence pair (token ids, no BOS/EOS).
struct SentencePair {
  TokenSeq source;
  TokenSeq reference;
};

class SyntheticTranslationTask {
 public:
  /// `lexicon_size` words per language; sentence lengths drawn uniformly in
  /// [min_len, max_len].
  SyntheticTranslationTask(int lexicon_size = 24, int min_len = 4,
                           int max_len = 10);

  /// Total vocabulary (PAD/BOS/EOS + both lexicons).
  int vocab_size() const { return 3 + 2 * lexicon_size_; }
  int lexicon_size() const { return lexicon_size_; }
  int max_len() const { return max_len_; }

  /// First token id of the source / target lexicon.
  int source_base() const { return 3; }
  int target_base() const { return 3 + lexicon_size_; }

  /// The deterministic reference translation of a source sentence.
  TokenSeq translate_reference(const TokenSeq& source) const;

  /// Draw one random sentence pair.
  SentencePair sample(Rng& rng) const;

  /// Draw a corpus of n pairs.
  std::vector<SentencePair> corpus(int n, Rng& rng) const;

 private:
  int lexicon_size_;
  int min_len_;
  int max_len_;
};

}  // namespace tfacc
