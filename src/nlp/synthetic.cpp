#include "nlp/synthetic.hpp"

#include "common/check.hpp"

namespace tfacc {

SyntheticTranslationTask::SyntheticTranslationTask(int lexicon_size,
                                                   int min_len, int max_len)
    : lexicon_size_(lexicon_size), min_len_(min_len), max_len_(max_len) {
  TFACC_CHECK_ARG(lexicon_size >= 4);
  TFACC_CHECK_ARG(2 <= min_len && min_len <= max_len);
}

TokenSeq SyntheticTranslationTask::translate_reference(
    const TokenSeq& source) const {
  TFACC_CHECK_ARG(source.size() >= 2);
  const int offset = target_base() - source_base();
  TokenSeq out;
  out.reserve(source.size());
  // Verb-final source → verb-second target: subject stays, the final word
  // moves to position 2, everything else keeps its relative order.
  out.push_back(source.front() + offset);
  out.push_back(source.back() + offset);
  for (std::size_t i = 1; i + 1 < source.size(); ++i)
    out.push_back(source[i] + offset);
  return out;
}

SentencePair SyntheticTranslationTask::sample(Rng& rng) const {
  const int len = rng.uniform_int(min_len_, max_len_);
  TokenSeq src;
  src.reserve(static_cast<std::size_t>(len));
  for (int i = 0; i < len; ++i)
    src.push_back(source_base() + rng.uniform_int(0, lexicon_size_ - 1));
  return SentencePair{src, translate_reference(src)};
}

std::vector<SentencePair> SyntheticTranslationTask::corpus(int n,
                                                           Rng& rng) const {
  TFACC_CHECK_ARG(n >= 0);
  std::vector<SentencePair> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) out.push_back(sample(rng));
  return out;
}

}  // namespace tfacc
