// Quantized functional models of the MHA and FFN ResBlocks.
//
// These define, matrix-wise, the exact INT8/INT16/INT32 arithmetic the
// accelerator datapath performs; the cycle-level simulator in src/core must
// (and is tested to) reproduce these outputs bit-for-bit. The two-step
// quantization of Section V.A maps to SoftmaxImpl:
//   kFloatExact — step one: everything INT8 except the softmax internals
//   kHardware   — step two: the Fig. 6 shift-add softmax datapath
#pragma once

#include <memory>
#include <vector>

#include "hwarith/layernorm_unit.hpp"
#include "hwarith/softmax_unit.hpp"
#include "quant/quantizer.hpp"
#include "tensor/pack.hpp"
#include "reference/decode_state.hpp"
#include "reference/functional.hpp"
#include "reference/weights.hpp"

namespace tfacc {

/// INT8 K/V cache of one quantized MHA block: the *already-requantized*
/// per-head K₁/V₁ rows (outputs of wk/wv.forward). Storing the INT8 rows —
/// not FP32 rows requantized per step — makes cached decode bit-identical
/// to full recompute by construction: each row is quantized exactly once.
class QuantKvCache final : public MhaCache {
 public:
  QuantKvCache(std::size_t num_heads, int head_dim);
  MhaCachePtr clone() const override;
  int rows() const override;

  std::vector<MatI8> k1, v1;  // per head, rows × head_dim
};

/// Which softmax the quantized model (and the accelerator) uses.
enum class SoftmaxImpl {
  kFloatExact,  ///< FP32 softmax on dequantized scores, probs quantized to INT8
  kHardware,    ///< bit-accurate Fig. 6 log-sum-exp shift-add datapath
};

/// Weight-scale granularity of a quantized linear layer.
/// Per-column ("per output channel") costs one requantization multiplier
/// per SA column instead of one shared — cheap in hardware (the s adders of
/// Fig. 5 already sit per column) and more accurate.
enum class WeightGranularity { kPerTensor, kPerColumn };

/// A quantized linear sublayer y = x·W + b with INT8 in/out.
/// The requantizer folds (in_scale·w_scale[j])/out_scale into one
/// fixed-point multiply per output column (shared when per-tensor).
struct QuantizedLinear {
  MatI8 w;                          // k × n, quantized weights
  std::vector<std::int32_t> bias;   // n, in accumulator units
  float in_scale = 1.0f;
  float w_scale = 1.0f;             // per-tensor scale (max of col scales)
  float out_scale = 1.0f;
  FixedPointScale requant;          // per-tensor (in·w)/out
  WeightGranularity granularity = WeightGranularity::kPerTensor;
  std::vector<float> col_w_scale;            // per column, when per-column
  std::vector<FixedPointScale> col_requant;  // per column, when per-column
  PackedI8 wpack;  // Bᵀ pack of w for the blocked/SIMD GEMM kernels (PR 8)

  /// Quantize FP32 weights/bias given the input scale and the calibrated
  /// output scale.
  static QuantizedLinear build(
      const MatF& w, const std::vector<float>& bias, float in_scale,
      float out_scale,
      WeightGranularity granularity = WeightGranularity::kPerTensor);

  /// Rebuild wpack from w — call after mutating w in place (fault injection).
  void repack() { wpack = pack_b_i8(w); }

  /// INT32 accumulators of x·W + b (what leaves the systolic array + adders).
  /// Runs the packed fused-bias kernel (bit-identical to the unpacked GEMM).
  MatI32 accumulate(const MatI8& x) const;
  /// Requantize accumulators of columns [col_offset, col_offset + acc.cols)
  /// — the per-64-column-block path the accelerator controller uses.
  MatI8 requantize(const MatI32& acc, int col_offset = 0) const;
  /// Full INT8 output (accumulate → requantize).
  MatI8 forward(const MatI8& x) const;
  /// With ReLU applied on the accumulator before requantization (Fig. 5:
  /// the ReLU sits right after the bias adders).
  MatI8 forward_relu(const MatI8& x) const;
};

/// Quantized MHA ResBlock (Fig. 3a datapath).
struct MhaQuantized {
  int d_model = 0;
  int num_heads = 0;
  int head_dim = 0;
  SoftmaxImpl softmax_impl = SoftmaxImpl::kHardware;

  float q_in_scale = 1.0f;   ///< scale of the INT8 Q (query/residual) input
  float kv_in_scale = 1.0f;  ///< scale of the INT8 K=V input

  struct Head {
    QuantizedLinear wq, wk, wv;
    FixedPointScale av_requant;  ///< (probs·v_scale)/p_scale for Attention·V
  };
  std::vector<Head> heads;

  float p_scale = 1.0f;            ///< scale of the concatenated P matrix
  QuantizedLinear wg;              ///< output projection (requant handled below)
  float g_scale = 1.0f;            ///< INT16 scale of the pre-norm G
  FixedPointScale wg_to_g;         ///< (p_scale·wg_scale)/g_scale
  FixedPointScale residual_to_g;   ///< q_in_scale/g_scale
  float out_scale = 1.0f;
  hw::LayerNormUnit norm = {};

  /// Calibration samples: parallel vectors of FP32 inputs seen by the block.
  struct Calibration {
    std::vector<MatF> q, kv;
    std::vector<Mask> mask;
  };

  /// `granularity` applies to the INT8-output projections (W_Q/W_K/W_V);
  /// W_G requantizes into the INT16 residual domain and stays per-tensor.
  static MhaQuantized build(
      const MhaWeights& w, const Calibration& calib, SoftmaxImpl impl,
      CalibMethod method = CalibMethod::kMaxAbs,
      WeightGranularity granularity = WeightGranularity::kPerTensor);

  /// Run the quantized block. q/kv are INT8 at q_in_scale/kv_in_scale.
  MatI8 forward(const MatI8& q, const MatI8& kv, const Mask& mask) const;

  /// Empty K/V cache shaped for this block.
  QuantKvCache make_cache() const;
  /// Project `kv` rows (INT8 at kv_in_scale) and append their K₁/V₁ to the
  /// cache — one call per decode step (self) or once per sentence (cross).
  void append_kv(const MatI8& kv, QuantKvCache& cache) const;
  /// forward() against cached K₁/V₁: only q is projected. Bit-identical to
  /// forward(q, kv, mask) when the cache holds kv's projections.
  MatI8 forward_cached(const MatI8& q, const QuantKvCache& cache,
                       const Mask& mask) const;

  /// Packed decode step: project the stacked new K/V rows (row r belongs to
  /// slot r) in ONE pass through wk/wv and scatter row r into caches[r].
  /// Bit-identical to per-slot append_kv — the projections/requantizers are
  /// row-independent.
  void append_kv_batch(const MatI8& kv,
                       const std::vector<QuantKvCache*>& caches) const;
  /// forward_cached over many slots at once: row r of q attends over
  /// caches[r] under masks[r] (1 × caches[r]->rows()). The Q projection and
  /// the whole output stage (W_G, residual, LayerNorm) run over the stacked
  /// rows; attention/softmax stay per slot. Bit-identical, row for row, to
  /// per-slot forward_cached.
  MatI8 forward_cached_batch(const MatI8& q,
                             const std::vector<const QuantKvCache*>& caches,
                             const std::vector<const Mask*>& masks) const;

  /// INT8 attention probabilities for one head's score accumulators —
  /// shared by forward() and the accelerator simulator.
  MatI8 softmax(const MatI32& scores, const Mask& mask, int head) const;

  /// Quantize an FP32 input at the calibrated scales.
  MatI8 quantize_q(const MatF& q) const {
    return quantize_i8(q, QuantParams{q_in_scale});
  }
  MatI8 quantize_kv(const MatF& kv) const {
    return quantize_i8(kv, QuantParams{kv_in_scale});
  }
  /// Dequantize the block output.
  MatF dequantize_out(const MatI8& y) const {
    return dequantize(y, QuantParams{out_scale});
  }
};

/// Quantized FFN ResBlock (Fig. 3b datapath).
struct FfnQuantized {
  int d_model = 0;
  int d_ff = 0;

  float in_scale = 1.0f;
  QuantizedLinear w1;              ///< ReLU folded into forward
  QuantizedLinear w2;
  float g_scale = 1.0f;
  FixedPointScale w2_to_g;         ///< (h_scale·w2_scale)/g_scale
  FixedPointScale residual_to_g;   ///< in_scale/g_scale
  float out_scale = 1.0f;
  hw::LayerNormUnit norm = {};

  /// `granularity` applies to W_1 (INT8 hidden output); W_2 requantizes
  /// into the INT16 residual domain and stays per-tensor.
  static FfnQuantized build(
      const FfnWeights& w, const std::vector<MatF>& x_samples,
      CalibMethod method = CalibMethod::kMaxAbs,
      float in_scale_override = 0.0f,
      WeightGranularity granularity = WeightGranularity::kPerTensor);

  MatI8 forward(const MatI8& x) const;

  MatI8 quantize_in(const MatF& x) const {
    return quantize_i8(x, QuantParams{in_scale});
  }
  MatF dequantize_out(const MatI8& y) const {
    return dequantize(y, QuantParams{out_scale});
  }
};

/// Downcast a backend hook's cache list to the INT8 caches (throws on a
/// foreign cache type) — shared marshalling of the packed mha_cached_batch
/// hooks in qtransformer and core/backend.
std::vector<QuantKvCache*> quant_kv_caches(
    const std::vector<MhaCache*>& caches);
/// Address-of view of a hook's mask list, as forward_cached_batch consumes.
std::vector<const Mask*> mask_ptrs(const std::vector<Mask>& masks);

/// Thread-local marshalling scratch for the packed decode hooks: the
/// cache/mask pointer views and the per-slot totals are rebuilt every step,
/// but their buffers persist, so a warm step's hook does zero heap
/// allocations (PR 8). Each hook invocation overwrites the previous one's
/// contents — don't hold views across calls.
struct BatchHookScratch {
  std::vector<QuantKvCache*> kv;
  std::vector<const QuantKvCache*> ckv;
  std::vector<const Mask*> masks;
  std::vector<int> totals;
};
BatchHookScratch& batch_hook_scratch();

/// quant_kv_caches + the const view, into `s.kv` / `s.ckv` (no allocation
/// once warm).
void quant_kv_caches_into(const std::vector<MhaCache*>& caches,
                          BatchHookScratch& s);
/// mask_ptrs into `s.masks` (no allocation once warm).
void mask_ptrs_into(const std::vector<Mask>& masks, BatchHookScratch& s);

/// Saturating INT16 residual add: sat16(a + b) elementwise.
MatI16 saturating_add_i16(const MatI16& a, const MatI16& b);

/// Requantize an INT8 matrix to INT16 under a fixed-point scale
/// (the residual path: q_in_scale → g_scale).
MatI16 requantize_i8_to_i16(const MatI8& m, const FixedPointScale& s);

}  // namespace tfacc
