// Weight-memory fault injection.
//
// On-chip weight SRAM of a deployed accelerator is exposed to soft errors
// (and aggressive voltage scaling); INT8 inference robustness against bit
// flips is a standard deployment question. This module flips uniformly
// random bits in the quantized weight matrices of a ResBlock at a given
// bit-error rate, so tests and benches can measure output degradation.
#pragma once

#include <cstdint>

#include "common/random.hpp"
#include "quant/qresblock.hpp"

namespace tfacc {

/// Flip each bit of `m` independently with probability `ber`.
/// Returns the number of flipped bits.
std::int64_t inject_bit_flips(MatI8& m, double ber, Rng& rng);

/// Inject faults into every weight matrix of a quantized MHA block
/// (W_Q/W_K/W_V of each head plus W_G). Biases and scales are unaffected
/// (they live in the small, typically protected bias memory).
/// Returns the total number of flipped bits.
std::int64_t inject_faults(MhaQuantized& block, double ber, Rng& rng);

/// Same for the FFN block (W_1 and W_2).
std::int64_t inject_faults(FfnQuantized& block, double ber, Rng& rng);

}  // namespace tfacc
