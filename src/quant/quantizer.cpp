#include "quant/quantizer.hpp"

#include <algorithm>
#include <cmath>

#include "tensor/kernels.hpp"

namespace tfacc {

namespace {

float reduce_range(std::vector<float> absvals, int qmax, CalibMethod method) {
  if (absvals.empty()) return 1.0f;
  float bound = 0.0f;
  switch (method) {
    case CalibMethod::kMaxAbs:
      bound = *std::max_element(absvals.begin(), absvals.end());
      break;
    case CalibMethod::kPercentile999: {
      const auto k = static_cast<std::size_t>(
          0.999 * static_cast<double>(absvals.size() - 1));
      std::nth_element(absvals.begin(), absvals.begin() + k, absvals.end());
      bound = absvals[k];
      break;
    }
  }
  if (bound <= 0.0f) return 1.0f;
  return bound / static_cast<float>(qmax);
}

}  // namespace

QuantParams calibrate(const std::vector<float>& values, int qmax,
                      CalibMethod method) {
  TFACC_CHECK_ARG(qmax > 0);
  std::vector<float> absvals(values.size());
  std::transform(values.begin(), values.end(), absvals.begin(),
                 [](float v) { return std::abs(v); });
  return QuantParams{reduce_range(std::move(absvals), qmax, method)};
}

QuantParams calibrate(const MatF& values, int qmax, CalibMethod method) {
  TFACC_CHECK_ARG(qmax > 0);
  std::vector<float> absvals;
  absvals.reserve(values.size());
  for (int r = 0; r < values.rows(); ++r)
    for (int c = 0; c < values.cols(); ++c)
      absvals.push_back(std::abs(values(r, c)));
  return QuantParams{reduce_range(std::move(absvals), qmax, method)};
}

QuantParams calibrate(const std::vector<MatF>& samples, int qmax,
                      CalibMethod method) {
  TFACC_CHECK_ARG(qmax > 0);
  std::vector<float> absvals;
  for (const auto& m : samples)
    for (int r = 0; r < m.rows(); ++r)
      for (int c = 0; c < m.cols(); ++c) absvals.push_back(std::abs(m(r, c)));
  return QuantParams{reduce_range(std::move(absvals), qmax, method)};
}

MatI8 quantize_i8(const MatF& m, QuantParams p) {
  TFACC_CHECK_ARG(p.scale > 0.0f);
  MatI8 out(m.rows(), m.cols());
  for (int r = 0; r < m.rows(); ++r)
    for (int c = 0; c < m.cols(); ++c)
      out(r, c) = saturate_i8(std::llround(m(r, c) / p.scale));
  return out;
}

MatI16 quantize_i16(const MatF& m, QuantParams p) {
  TFACC_CHECK_ARG(p.scale > 0.0f);
  MatI16 out(m.rows(), m.cols());
  for (int r = 0; r < m.rows(); ++r)
    for (int c = 0; c < m.cols(); ++c)
      out(r, c) = saturate_i16(std::llround(m(r, c) / p.scale));
  return out;
}

std::vector<std::int8_t> quantize_i8(const std::vector<float>& v,
                                     QuantParams p) {
  TFACC_CHECK_ARG(p.scale > 0.0f);
  std::vector<std::int8_t> out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i)
    out[i] = saturate_i8(std::llround(v[i] / p.scale));
  return out;
}

std::vector<std::int32_t> quantize_bias(const std::vector<float>& bias,
                                        float in_scale, float w_scale) {
  TFACC_CHECK_ARG(in_scale > 0.0f && w_scale > 0.0f);
  const double acc_scale = static_cast<double>(in_scale) * w_scale;
  std::vector<std::int32_t> out(bias.size());
  for (std::size_t i = 0; i < bias.size(); ++i)
    out[i] = saturate_i32(std::llround(bias[i] / acc_scale));
  return out;
}

MatF dequantize(const MatI8& m, QuantParams p) {
  MatF out(m.rows(), m.cols());
  for (int r = 0; r < m.rows(); ++r)
    for (int c = 0; c < m.cols(); ++c)
      out(r, c) = static_cast<float>(m(r, c)) * p.scale;
  return out;
}

MatF dequantize_i16(const MatI16& m, QuantParams p) {
  MatF out(m.rows(), m.cols());
  for (int r = 0; r < m.rows(); ++r)
    for (int c = 0; c < m.cols(); ++c)
      out(r, c) = static_cast<float>(m(r, c)) * p.scale;
  return out;
}

MatF dequantize_i32(const MatI32& m, float scale) {
  MatF out(m.rows(), m.cols());
  for (int r = 0; r < m.rows(); ++r)
    for (int c = 0; c < m.cols(); ++c)
      out(r, c) = static_cast<float>(m(r, c)) * scale;
  return out;
}

MatI8 requantize_i8(const MatI32& acc, const FixedPointScale& s) {
  MatI8 out(acc.rows(), acc.cols());
  kernels::requantize_i8_into(acc, s.mantissa, s.shift, out);
  return out;
}

MatI16 requantize_i16(const MatI32& acc, const FixedPointScale& s) {
  MatI16 out(acc.rows(), acc.cols());
  kernels::requantize_i16_into(acc, s.mantissa, s.shift, out);
  return out;
}

}  // namespace tfacc
