// Post-training quantization of a whole Transformer: capture per-ResBlock
// calibration inputs by running FP32 inference, build the quantized blocks,
// and expose a ResBlockBackend that routes every block through its INT8
// model. This is the software side of the Section V.A experiment.
#pragma once

#include <unordered_map>
#include <vector>

#include "quant/qresblock.hpp"
#include "reference/transformer.hpp"

namespace tfacc {

/// FP32 inputs observed at each ResBlock during a calibration run,
/// keyed by the address of the block's weights inside the model.
///
/// The maps are lookup-only accumulators: anything that must iterate over
/// the captured blocks (QuantizedTransformer::build) walks `mha_order` /
/// `ffn_order` instead, which record first-capture order — pointer-keyed
/// hash iteration depends on where the allocator placed the weights, and a
/// build that quantizes blocks in allocator order is not reproducible.
struct CaptureStore {
  std::unordered_map<const MhaWeights*, MhaQuantized::Calibration>
      mha;  // lint: lookup-only
  std::unordered_map<const FfnWeights*, std::vector<MatF>>
      ffn;  // lint: lookup-only
  std::vector<const MhaWeights*> mha_order;  ///< first-capture order
  std::vector<const FfnWeights*> ffn_order;  ///< first-capture order
};

/// A backend that behaves exactly like the FP32 reference but records every
/// block input into `store` (which must outlive the backend's use).
ResBlockBackend capturing_backend(CaptureStore& store);

/// All ResBlocks of one model, quantized. Keys are weight addresses inside
/// the Transformer used at build time, so that model object must stay alive
/// (and unmoved) for the lifetime of this object.
class QuantizedTransformer {
 public:
  /// Calibrate by greedily translating `calib_sources` with the FP32 model,
  /// then quantize every block.
  static QuantizedTransformer build(Transformer& model,
                                    const std::vector<TokenSeq>& calib_sources,
                                    int max_len, SoftmaxImpl impl,
                                    CalibMethod method = CalibMethod::kMaxAbs);

  /// Backend computing every ResBlock with its INT8 model
  /// (dequantizing back to FP32 at block boundaries, as deployment does).
  /// Includes the cached-MHA hooks: K/V caches hold already-quantized INT8
  /// rows, so incremental decode is bit-identical to full recompute.
  ResBlockBackend backend() const;

  const MhaQuantized& mha_for(const MhaWeights& w) const;
  const FfnQuantized& ffn_for(const FfnWeights& w) const;

  /// Convenience: translate with the quantized backend installed, restoring
  /// the model's previous (FP32) backend afterwards.
  TokenSeq translate_greedy(Transformer& model, const TokenSeq& src,
                            int max_len,
                            DecodeMode mode = DecodeMode::kKvCache) const;

 private:
  // Accessed only through find() (mha_for / ffn_for); nothing iterates, so
  // pointer keys cannot leak allocator order into any report or ledger.
  std::unordered_map<const MhaWeights*, MhaQuantized> mha_;  // lint: lookup-only
  std::unordered_map<const FfnWeights*, FfnQuantized> ffn_;  // lint: lookup-only
};

}  // namespace tfacc
