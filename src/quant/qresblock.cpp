#include "quant/qresblock.hpp"

#include <algorithm>
#include <cmath>

#include "tensor/kernels.hpp"
#include "tensor/ops.hpp"

namespace tfacc {

namespace {

// INT16 activations keep ~2.7% headroom below the type limit so that
// rounding in the requantizers cannot saturate calibration-range values.
constexpr int kI16CalibMax = 32000;

float scale_of(const std::vector<MatF>& samples, int qmax,
               CalibMethod method) {
  return calibrate(samples, qmax, method).scale;
}

}  // namespace

MatI16 saturating_add_i16(const MatI16& a, const MatI16& b) {
  TFACC_CHECK_ARG(a.same_shape(b));
  MatI16 out(a.rows(), a.cols());
  for (int r = 0; r < a.rows(); ++r) {
    const std::int16_t* ar = a.row(r);
    const std::int16_t* br = b.row(r);
    std::int16_t* orow = out.row(r);
    for (int c = 0; c < a.cols(); ++c)
      orow[c] = saturate_i16(static_cast<std::int64_t>(ar[c]) + br[c]);
  }
  return out;
}

MatI16 requantize_i8_to_i16(const MatI8& m, const FixedPointScale& s) {
  MatI16 out(m.rows(), m.cols());
  for (int r = 0; r < m.rows(); ++r) {
    const std::int8_t* mr = m.row(r);
    std::int16_t* orow = out.row(r);
    for (int c = 0; c < m.cols(); ++c) orow[c] = s.apply_i16(mr[c]);
  }
  return out;
}

// --- QuantizedLinear ---------------------------------------------------------

QuantizedLinear QuantizedLinear::build(const MatF& w,
                                       const std::vector<float>& bias,
                                       float in_scale, float out_scale,
                                       WeightGranularity granularity) {
  TFACC_CHECK_ARG(in_scale > 0.0f && out_scale > 0.0f);
  TFACC_CHECK_ARG(static_cast<int>(bias.size()) == w.cols());
  QuantizedLinear q;
  q.in_scale = in_scale;
  q.w_scale = calibrate(w, 127).scale;
  q.out_scale = out_scale;
  q.granularity = granularity;
  q.requant = FixedPointScale::from_double(
      static_cast<double>(in_scale) * q.w_scale / out_scale);
  if (granularity == WeightGranularity::kPerTensor) {
    q.w = quantize_i8(w, QuantParams{q.w_scale});
    q.bias = quantize_bias(bias, in_scale, q.w_scale);
    q.repack();
    return q;
  }
  // Per-column: each output channel gets its own scale and requantizer.
  q.w = MatI8(w.rows(), w.cols());
  q.bias.resize(static_cast<std::size_t>(w.cols()));
  q.col_w_scale.resize(static_cast<std::size_t>(w.cols()));
  q.col_requant.resize(static_cast<std::size_t>(w.cols()));
  for (int j = 0; j < w.cols(); ++j) {
    float mx = 0.0f;
    for (int r = 0; r < w.rows(); ++r)
      mx = std::max(mx, std::abs(w(r, j)));
    const float ws = mx > 0.0f ? mx / 127.0f : 1.0f;
    q.col_w_scale[static_cast<std::size_t>(j)] = ws;
    for (int r = 0; r < w.rows(); ++r)
      q.w(r, j) = saturate_i8(std::llround(w(r, j) / ws));
    q.bias[static_cast<std::size_t>(j)] = saturate_i32(std::llround(
        bias[static_cast<std::size_t>(j)] /
        (static_cast<double>(in_scale) * ws)));
    q.col_requant[static_cast<std::size_t>(j)] = FixedPointScale::from_double(
        static_cast<double>(in_scale) * ws / out_scale);
  }
  q.repack();
  return q;
}

MatI32 QuantizedLinear::accumulate(const MatI8& x) const {
  // Packed fused-bias kernel: c = bias ⊕ x·W in one pass, exactly
  // add_bias_i32(gemm_i8(x, w), bias). The fallback covers hand-assembled
  // layers that never called build()/repack().
  if (wpack.k != w.rows() || wpack.n != w.cols())
    return add_bias_i32(gemm_i8(x, w), bias);
  MatI32 out(x.rows(), w.cols());
  kernels::gemm_i8_packed_bias_into(x, wpack, bias, out);
  return out;
}

MatI8 QuantizedLinear::requantize(const MatI32& acc, int col_offset) const {
  if (granularity == WeightGranularity::kPerTensor)
    return requantize_i8(acc, requant);
  TFACC_CHECK_ARG(col_offset >= 0 &&
                  col_offset + acc.cols() <=
                      static_cast<int>(col_requant.size()));
  MatI8 out(acc.rows(), acc.cols());
  for (int r = 0; r < acc.rows(); ++r)
    for (int c = 0; c < acc.cols(); ++c)
      out(r, c) = col_requant[static_cast<std::size_t>(col_offset + c)]
                      .apply_i8(acc(r, c));
  return out;
}

MatI8 QuantizedLinear::forward(const MatI8& x) const {
  return requantize(accumulate(x));
}

MatI8 QuantizedLinear::forward_relu(const MatI8& x) const {
  return requantize(relu_i32(accumulate(x)));
}

// --- MhaQuantized ------------------------------------------------------------

MhaQuantized MhaQuantized::build(const MhaWeights& w, const Calibration& calib,
                                 SoftmaxImpl impl, CalibMethod method,
                                 WeightGranularity granularity) {
  TFACC_CHECK_ARG(!w.heads.empty());
  TFACC_CHECK_ARG(!calib.q.empty());
  TFACC_CHECK_ARG(calib.q.size() == calib.kv.size() &&
                  calib.q.size() == calib.mask.size());
  const int head_dim = w.heads.front().wq.cols();
  TFACC_CHECK_ARG_MSG(impl != SoftmaxImpl::kHardware || head_dim == 64,
                      "the Fig. 6 datapath hard-codes the /8 = sqrt(64) scale");

  MhaQuantized m;
  m.d_model = w.wg.rows();
  m.num_heads = static_cast<int>(w.heads.size());
  m.head_dim = head_dim;
  m.softmax_impl = impl;
  m.q_in_scale = scale_of(calib.q, 127, method);
  m.kv_in_scale = scale_of(calib.kv, 127, method);

  // FP32 calibration pass: collect per-head projection ranges and the ranges
  // of P, G and the LayerNorm output over all samples.
  const std::size_t n_samples = calib.q.size();
  std::vector<std::vector<MatF>> q1s(w.heads.size()), k1s(w.heads.size()),
      v1s(w.heads.size());
  std::vector<MatF> ps, gs, outs;
  for (std::size_t s = 0; s < n_samples; ++s) {
    std::vector<MatF> head_outputs;
    for (std::size_t h = 0; h < w.heads.size(); ++h) {
      const auto& head = w.heads[h];
      MatF q1 = add_bias(gemm(calib.q[s], head.wq), head.bq);
      MatF k1 = add_bias(gemm(calib.kv[s], head.wk), head.bk);
      MatF v1 = add_bias(gemm(calib.kv[s], head.wv), head.bv);
      head_outputs.push_back(attention_head(q1, k1, v1, calib.mask[s]));
      q1s[h].push_back(std::move(q1));
      k1s[h].push_back(std::move(k1));
      v1s[h].push_back(std::move(v1));
    }
    MatF p = hconcat(head_outputs);
    MatF g = add(calib.q[s], add_bias(gemm(p, w.wg), w.bg));
    outs.push_back(layer_norm(g, w.norm));
    ps.push_back(std::move(p));
    gs.push_back(std::move(g));
  }

  m.p_scale = scale_of(ps, 127, method);
  m.g_scale = scale_of(gs, kI16CalibMax, method);
  m.out_scale = scale_of(outs, 127, method);

  m.heads.resize(w.heads.size());
  for (std::size_t h = 0; h < w.heads.size(); ++h) {
    Head& qh = m.heads[h];
    qh.wq = QuantizedLinear::build(w.heads[h].wq, w.heads[h].bq, m.q_in_scale,
                                   scale_of(q1s[h], 127, method), granularity);
    qh.wk = QuantizedLinear::build(w.heads[h].wk, w.heads[h].bk, m.kv_in_scale,
                                   scale_of(k1s[h], 127, method), granularity);
    qh.wv = QuantizedLinear::build(w.heads[h].wv, w.heads[h].bv, m.kv_in_scale,
                                   scale_of(v1s[h], 127, method), granularity);
    qh.av_requant = FixedPointScale::from_double(
        static_cast<double>(hw::kProbScale) * qh.wv.out_scale / m.p_scale);
  }

  // W_G requantizes straight into the INT16 residual domain, so its
  // QuantizedLinear out_scale equals g_scale (requant field unused there).
  m.wg = QuantizedLinear::build(w.wg, w.bg, m.p_scale, m.g_scale);
  m.wg_to_g = FixedPointScale::from_double(
      static_cast<double>(m.p_scale) * m.wg.w_scale / m.g_scale);
  m.residual_to_g =
      FixedPointScale::from_double(static_cast<double>(m.q_in_scale) /
                                   m.g_scale);
  m.norm = hw::LayerNormUnit::build(w.norm, m.out_scale);
  return m;
}

MatI8 MhaQuantized::softmax(const MatI32& scores, const Mask& mask,
                            int head) const {
  TFACC_CHECK_ARG(head >= 0 && head < num_heads);
  const auto& qh = heads[static_cast<std::size_t>(head)];
  const double d_scale =
      static_cast<double>(qh.wq.out_scale) * qh.wk.out_scale;
  switch (softmax_impl) {
    case SoftmaxImpl::kHardware: {
      const hw::SoftmaxUnit unit(d_scale);
      return unit(scores, mask);
    }
    case SoftmaxImpl::kFloatExact: {
      const MatF d = dequantize_i32(scores, static_cast<float>(d_scale));
      const MatF probs = scaled_masked_softmax(
          d, mask, std::sqrt(static_cast<float>(head_dim)));
      return quantize_i8(probs, QuantParams{hw::kProbScale});
    }
  }
  TFACC_CHECK(false);
  return {};
}

namespace {

/// W_G projection + residual + LayerNorm, shared by the plain and cached
/// forward paths (both operate per row).
MatI8 mha_output_stage(const MhaQuantized& m, const MatI8& q,
                       const MatI8& p) {
  const MatI32 g_acc = m.wg.accumulate(p);
  const MatI16 g_proj = requantize_i16(g_acc, m.wg_to_g);
  const MatI16 g_res = requantize_i8_to_i16(q, m.residual_to_g);
  const MatI16 g = saturating_add_i16(g_proj, g_res);
  return m.norm(g);
}

}  // namespace

MatI8 MhaQuantized::forward(const MatI8& q, const MatI8& kv,
                            const Mask& mask) const {
  TFACC_CHECK_ARG(q.cols() == d_model && kv.cols() == d_model);
  TFACC_CHECK_ARG(mask.rows() == q.rows() && mask.cols() == kv.rows());

  MatI8 p(q.rows(), d_model);
  for (int h = 0; h < num_heads; ++h) {
    const auto& qh = heads[static_cast<std::size_t>(h)];
    const MatI8 q1 = qh.wq.forward(q);
    const MatI8 k1 = qh.wk.forward(kv);
    const MatI8 v1 = qh.wv.forward(kv);
    const MatI32 scores = gemm_nt_i8(q1, k1);
    const MatI8 probs = softmax(scores, mask, h);
    const MatI32 a = gemm_i8(probs, v1);
    p.set_block(0, h * head_dim, requantize_i8(a, qh.av_requant));
  }
  return mha_output_stage(*this, q, p);
}

// --- Cached (incremental-decode) path ---------------------------------------

QuantKvCache::QuantKvCache(std::size_t num_heads, int head_dim)
    : k1(num_heads, MatI8(0, head_dim)), v1(num_heads, MatI8(0, head_dim)) {}

MhaCachePtr QuantKvCache::clone() const {
  return std::make_unique<QuantKvCache>(*this);
}

int QuantKvCache::rows() const { return k1.empty() ? 0 : k1.front().rows(); }

QuantKvCache MhaQuantized::make_cache() const {
  return QuantKvCache(static_cast<std::size_t>(num_heads), head_dim);
}

void MhaQuantized::append_kv(const MatI8& kv, QuantKvCache& cache) const {
  TFACC_CHECK_ARG(kv.cols() == d_model);
  TFACC_CHECK_ARG(cache.k1.size() == heads.size());
  for (std::size_t h = 0; h < heads.size(); ++h) {
    cache.k1[h].append_rows(heads[h].wk.forward(kv));
    cache.v1[h].append_rows(heads[h].wv.forward(kv));
  }
}

MatI8 MhaQuantized::forward_cached(const MatI8& q, const QuantKvCache& cache,
                                   const Mask& mask) const {
  TFACC_CHECK_ARG(q.cols() == d_model);
  TFACC_CHECK_ARG(mask.rows() == q.rows() && mask.cols() == cache.rows());

  MatI8 p(q.rows(), d_model);
  for (int h = 0; h < num_heads; ++h) {
    const auto& qh = heads[static_cast<std::size_t>(h)];
    const MatI8 q1 = qh.wq.forward(q);
    const MatI32 scores =
        gemm_nt_i8(q1, cache.k1[static_cast<std::size_t>(h)]);
    const MatI8 probs = softmax(scores, mask, h);
    const MatI32 a = gemm_i8(probs, cache.v1[static_cast<std::size_t>(h)]);
    p.set_block(0, h * head_dim, requantize_i8(a, qh.av_requant));
  }
  return mha_output_stage(*this, q, p);
}

std::vector<QuantKvCache*> quant_kv_caches(
    const std::vector<MhaCache*>& caches) {
  std::vector<QuantKvCache*> kv(caches.size());
  for (std::size_t i = 0; i < caches.size(); ++i)
    kv[i] = &dynamic_cast<QuantKvCache&>(*caches[i]);
  return kv;
}

std::vector<const Mask*> mask_ptrs(const std::vector<Mask>& masks) {
  std::vector<const Mask*> out(masks.size());
  for (std::size_t i = 0; i < masks.size(); ++i) out[i] = &masks[i];
  return out;
}

BatchHookScratch& batch_hook_scratch() {
  thread_local BatchHookScratch s;
  return s;
}

void quant_kv_caches_into(const std::vector<MhaCache*>& caches,
                          BatchHookScratch& s) {
  s.kv.clear();
  s.ckv.clear();
  s.kv.reserve(caches.size());
  s.ckv.reserve(caches.size());
  for (MhaCache* c : caches) {
    QuantKvCache* q = &dynamic_cast<QuantKvCache&>(*c);
    s.kv.push_back(q);
    s.ckv.push_back(q);
  }
}

void mask_ptrs_into(const std::vector<Mask>& masks, BatchHookScratch& s) {
  s.masks.clear();
  s.masks.reserve(masks.size());
  for (const Mask& m : masks) s.masks.push_back(&m);
}

void MhaQuantized::append_kv_batch(
    const MatI8& kv, const std::vector<QuantKvCache*>& caches) const {
  TFACC_CHECK_ARG(kv.cols() == d_model);
  TFACC_CHECK_ARG(static_cast<int>(caches.size()) == kv.rows());
  for (std::size_t h = 0; h < heads.size(); ++h) {
    const MatI8 k1 = heads[h].wk.forward(kv);
    const MatI8 v1 = heads[h].wv.forward(kv);
    for (int r = 0; r < kv.rows(); ++r) {
      QuantKvCache& cache = *caches[static_cast<std::size_t>(r)];
      TFACC_CHECK_ARG(cache.k1.size() == heads.size());
      cache.k1[h].append_rows(k1.block(r, 0, 1, head_dim));
      cache.v1[h].append_rows(v1.block(r, 0, 1, head_dim));
    }
  }
}

MatI8 MhaQuantized::forward_cached_batch(
    const MatI8& q, const std::vector<const QuantKvCache*>& caches,
    const std::vector<const Mask*>& masks) const {
  const int n = q.rows();
  TFACC_CHECK_ARG(q.cols() == d_model);
  TFACC_CHECK_ARG(static_cast<int>(caches.size()) == n &&
                  static_cast<int>(masks.size()) == n);
  for (int r = 0; r < n; ++r)
    TFACC_CHECK_ARG(masks[static_cast<std::size_t>(r)]->rows() == 1 &&
                    masks[static_cast<std::size_t>(r)]->cols() ==
                        caches[static_cast<std::size_t>(r)]->rows());

  MatI8 p(n, d_model);
  for (int h = 0; h < num_heads; ++h) {
    const auto& qh = heads[static_cast<std::size_t>(h)];
    const MatI8 q1 = qh.wq.forward(q);  // one stacked projection
    for (int r = 0; r < n; ++r) {
      const QuantKvCache& cache = *caches[static_cast<std::size_t>(r)];
      const MatI8 q1_row = q1.block(r, 0, 1, head_dim);
      const MatI32 scores =
          gemm_nt_i8(q1_row, cache.k1[static_cast<std::size_t>(h)]);
      const MatI8 probs =
          softmax(scores, *masks[static_cast<std::size_t>(r)], h);
      const MatI32 a = gemm_i8(probs, cache.v1[static_cast<std::size_t>(h)]);
      p.set_block(r, h * head_dim, requantize_i8(a, qh.av_requant));
    }
  }
  return mha_output_stage(*this, q, p);
}

// --- FfnQuantized ------------------------------------------------------------

FfnQuantized FfnQuantized::build(const FfnWeights& w,
                                 const std::vector<MatF>& x_samples,
                                 CalibMethod method, float in_scale_override,
                                 WeightGranularity granularity) {
  TFACC_CHECK_ARG(!x_samples.empty());
  FfnQuantized f;
  f.d_model = w.w1.rows();
  f.d_ff = w.w1.cols();
  f.in_scale = in_scale_override > 0.0f ? in_scale_override
                                        : scale_of(x_samples, 127, method);

  std::vector<MatF> hiddens, gs, outs;
  for (const auto& x : x_samples) {
    MatF hidden = relu(add_bias(gemm(x, w.w1), w.b1));
    MatF g = add(x, add_bias(gemm(hidden, w.w2), w.b2));
    outs.push_back(layer_norm(g, w.norm));
    hiddens.push_back(std::move(hidden));
    gs.push_back(std::move(g));
  }
  const float h_scale = scale_of(hiddens, 127, method);
  f.g_scale = scale_of(gs, kI16CalibMax, method);
  f.out_scale = scale_of(outs, 127, method);

  f.w1 = QuantizedLinear::build(w.w1, w.b1, f.in_scale, h_scale, granularity);
  f.w2 = QuantizedLinear::build(w.w2, w.b2, h_scale, f.g_scale);
  f.w2_to_g = FixedPointScale::from_double(
      static_cast<double>(h_scale) * f.w2.w_scale / f.g_scale);
  f.residual_to_g =
      FixedPointScale::from_double(static_cast<double>(f.in_scale) /
                                   f.g_scale);
  f.norm = hw::LayerNormUnit::build(w.norm, f.out_scale);
  return f;
}

MatI8 FfnQuantized::forward(const MatI8& x) const {
  TFACC_CHECK_ARG(x.cols() == d_model);
  const MatI8 hidden = w1.forward_relu(x);
  const MatI32 g_acc = w2.accumulate(hidden);
  const MatI16 g_proj = requantize_i16(g_acc, w2_to_g);
  const MatI16 g_res = requantize_i8_to_i16(x, residual_to_g);
  const MatI16 g = saturating_add_i16(g_proj, g_res);
  return norm(g);
}

}  // namespace tfacc
