// Symmetric INT8/INT16 quantization (Section V.A of the paper, following
// Bhandare et al. [2]: all trainable matrices and activations in Fig. 3 are
// quantized with INT8; accumulators are INT32; requantization uses the
// fixed-point multiplier of common/fixed_point.hpp).
#pragma once

#include <vector>

#include "common/fixed_point.hpp"
#include "tensor/matrix.hpp"

namespace tfacc {

/// Symmetric quantization parameters: real = raw * scale.
struct QuantParams {
  float scale = 1.0f;
};

/// How activation ranges are reduced to a scale.
enum class CalibMethod {
  kMaxAbs,         ///< scale = max|x| / qmax
  kPercentile999,  ///< scale = 99.9th percentile of |x| / qmax (clips outliers)
};

/// Compute a scale so values map into [-qmax, qmax].
QuantParams calibrate(const std::vector<float>& values, int qmax,
                      CalibMethod method = CalibMethod::kMaxAbs);
QuantParams calibrate(const MatF& values, int qmax,
                      CalibMethod method = CalibMethod::kMaxAbs);
/// Calibrate over several sample matrices (activation calibration set).
QuantParams calibrate(const std::vector<MatF>& samples, int qmax,
                      CalibMethod method = CalibMethod::kMaxAbs);

/// Round-to-nearest symmetric quantization.
MatI8 quantize_i8(const MatF& m, QuantParams p);
MatI16 quantize_i16(const MatF& m, QuantParams p);
std::vector<std::int8_t> quantize_i8(const std::vector<float>& v,
                                     QuantParams p);

/// Bias vectors are quantized straight into accumulator units:
/// raw = round(b / (in_scale * w_scale)).
std::vector<std::int32_t> quantize_bias(const std::vector<float>& bias,
                                        float in_scale, float w_scale);

MatF dequantize(const MatI8& m, QuantParams p);
MatF dequantize_i16(const MatI16& m, QuantParams p);
MatF dequantize_i32(const MatI32& m, float scale);

/// Requantize an INT32 accumulator matrix to INT8/INT16 with a fixed-point
/// multiplier (the hardware path: int32 × mantissa >> shift, round, saturate).
MatI8 requantize_i8(const MatI32& acc, const FixedPointScale& s);
MatI16 requantize_i16(const MatI32& acc, const FixedPointScale& s);

}  // namespace tfacc
