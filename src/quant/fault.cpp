#include "quant/fault.hpp"

#include "common/check.hpp"

namespace tfacc {

std::int64_t inject_bit_flips(MatI8& m, double ber, Rng& rng) {
  TFACC_CHECK_ARG_MSG(ber >= 0.0 && ber <= 1.0, "ber=" << ber);
  if (ber == 0.0 || m.size() == 0) return 0;
  // Draw the number of flips from the expected binomial via per-bit
  // Bernoulli trials; cheap at the matrix sizes involved.
  std::int64_t flips = 0;
  for (int r = 0; r < m.rows(); ++r) {
    for (int c = 0; c < m.cols(); ++c) {
      for (int bit = 0; bit < 8; ++bit) {
        if (rng.flip(ber)) {
          m(r, c) = static_cast<std::int8_t>(m(r, c) ^ (1 << bit));
          ++flips;
        }
      }
    }
  }
  return flips;
}

std::int64_t inject_faults(MhaQuantized& block, double ber, Rng& rng) {
  std::int64_t flips = 0;
  for (auto& head : block.heads) {
    flips += inject_bit_flips(head.wq.w, ber, rng);
    flips += inject_bit_flips(head.wk.w, ber, rng);
    flips += inject_bit_flips(head.wv.w, ber, rng);
    // The GEMM kernels read the Bᵀ pack, not w — re-pack the flipped bits.
    head.wq.repack();
    head.wk.repack();
    head.wv.repack();
  }
  flips += inject_bit_flips(block.wg.w, ber, rng);
  block.wg.repack();
  return flips;
}

std::int64_t inject_faults(FfnQuantized& block, double ber, Rng& rng) {
  std::int64_t flips = inject_bit_flips(block.w1.w, ber, rng);
  flips += inject_bit_flips(block.w2.w, ber, rng);
  block.w1.repack();
  block.w2.repack();
  return flips;
}

}  // namespace tfacc
