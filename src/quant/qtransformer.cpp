#include "quant/qtransformer.hpp"

namespace tfacc {

ResBlockBackend capturing_backend(CaptureStore& store) {
  // Only the batch-style hooks capture; the cached-MHA hooks keep their
  // reference defaults, so drive this backend with
  // DecodeMode::kFullRecompute (as build() does) to record every block.
  ResBlockBackend b;
  b.mha = [&store](const MatF& q, const MatF& kv, const MhaWeights& w,
                   const Mask& mask) {
    if (store.mha.find(&w) == store.mha.end()) store.mha_order.push_back(&w);
    auto& calib = store.mha[&w];
    calib.q.push_back(q);
    calib.kv.push_back(kv);
    calib.mask.push_back(mask);
    return mha_resblock(q, kv, w, mask);
  };
  b.ffn = [&store](const MatF& x, const FfnWeights& w) {
    if (store.ffn.find(&w) == store.ffn.end()) store.ffn_order.push_back(&w);
    store.ffn[&w].push_back(x);
    return ffn_resblock(x, w);
  };
  return b;
}

QuantizedTransformer QuantizedTransformer::build(
    Transformer& model, const std::vector<TokenSeq>& calib_sources,
    int max_len, SoftmaxImpl impl, CalibMethod method) {
  TFACC_CHECK_ARG(!calib_sources.empty());

  CaptureStore store;
  model.set_backend(capturing_backend(store));
  // Full recompute: the capturing backend only hooks the batch-style
  // mha/ffn calls, and calibration wants the same growing-prefix inputs
  // deployment's batch ResBlocks would see.
  for (const auto& src : calib_sources)
    model.translate_greedy(src, max_len, DecodeMode::kFullRecompute);
  model.set_backend(ResBlockBackend{});

  // Quantize in first-capture order, not hash-map order: the maps are keyed
  // by weight addresses, and iterating them would make the build sequence
  // (and any diagnostics it emits) depend on allocator placement.
  QuantizedTransformer qt;
  for (const MhaWeights* weights : store.mha_order)
    qt.mha_.emplace(weights, MhaQuantized::build(*weights, store.mha.at(weights),
                                                 impl, method));
  for (const FfnWeights* weights : store.ffn_order)
    qt.ffn_.emplace(weights, FfnQuantized::build(*weights,
                                                 store.ffn.at(weights), method));
  return qt;
}

const MhaQuantized& QuantizedTransformer::mha_for(const MhaWeights& w) const {
  const auto it = mha_.find(&w);
  TFACC_CHECK_ARG_MSG(it != mha_.end(),
                      "MHA block was not seen during calibration");
  return it->second;
}

const FfnQuantized& QuantizedTransformer::ffn_for(const FfnWeights& w) const {
  const auto it = ffn_.find(&w);
  TFACC_CHECK_ARG_MSG(it != ffn_.end(),
                      "FFN block was not seen during calibration");
  return it->second;
}

ResBlockBackend QuantizedTransformer::backend() const {
  ResBlockBackend b;
  b.mha = [this](const MatF& q, const MatF& kv, const MhaWeights& w,
                 const Mask& mask) {
    const MhaQuantized& qm = mha_for(w);
    return qm.dequantize_out(
        qm.forward(qm.quantize_q(q), qm.quantize_kv(kv), mask));
  };
  b.ffn = [this](const MatF& x, const FfnWeights& w) {
    const FfnQuantized& qf = ffn_for(w);
    return qf.dequantize_out(qf.forward(qf.quantize_in(x)));
  };
  b.mha_self_cache = [this](const MhaWeights& w) -> MhaCachePtr {
    return std::make_unique<QuantKvCache>(mha_for(w).make_cache());
  };
  b.mha_cross_cache = [this](const MatF& memory,
                             const MhaWeights& w) -> MhaCachePtr {
    const MhaQuantized& qm = mha_for(w);
    auto cache = std::make_unique<QuantKvCache>(qm.make_cache());
    qm.append_kv(qm.quantize_kv(memory), *cache);
    return cache;
  };
  b.mha_cached = [this](const MatF& q, MhaCache& cache, const MhaWeights& w,
                        const Mask& mask, bool append) {
    const MhaQuantized& qm = mha_for(w);
    auto& kv_cache = dynamic_cast<QuantKvCache&>(cache);
    if (append) qm.append_kv(qm.quantize_kv(q), kv_cache);
    return qm.dequantize_out(
        qm.forward_cached(qm.quantize_q(q), kv_cache, mask));
  };
  // Packed decode: the stacked rows share one quantization pass per scale
  // (q_in for queries/residual, kv_in for the appended K/V) and one
  // projection per weight matrix; attention stays per slot.
  b.mha_cached_batch = [this](const MatF& q,
                              const std::vector<MhaCache*>& caches,
                              const MhaWeights& w,
                              const std::vector<Mask>& masks, bool append) {
    const MhaQuantized& qm = mha_for(w);
    // Thread-local marshalling scratch: zero heap allocations once warm.
    BatchHookScratch& s = batch_hook_scratch();
    quant_kv_caches_into(caches, s);
    mask_ptrs_into(masks, s);
    if (append) qm.append_kv_batch(qm.quantize_kv(q), s.kv);
    return qm.dequantize_out(
        qm.forward_cached_batch(qm.quantize_q(q), s.ckv, s.masks));
  };
  return b;
}

TokenSeq QuantizedTransformer::translate_greedy(Transformer& model,
                                                const TokenSeq& src,
                                                int max_len,
                                                DecodeMode mode) const {
  model.set_backend(backend());
  TokenSeq out = model.translate_greedy(src, max_len, mode);
  model.set_backend(ResBlockBackend{});
  return out;
}

}  // namespace tfacc
