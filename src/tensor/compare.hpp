// Numerical comparison metrics between matrices, used by tests and the
// quantization-fidelity experiments.
#pragma once

#include "tensor/matrix.hpp"

namespace tfacc {

/// max_{r,c} |a - b|
double max_abs_diff(const MatF& a, const MatF& b);

/// mean squared error
double mse(const MatF& a, const MatF& b);

/// Cosine similarity of the flattened matrices (1.0 == identical direction).
/// Returns 1.0 when both matrices are all-zero.
double cosine_similarity(const MatF& a, const MatF& b);

/// Convert an integer matrix to float (for comparisons / plotting).
template <typename T>
MatF to_float(const Matrix<T>& a) {
  MatF out(a.rows(), a.cols());
  for (int r = 0; r < a.rows(); ++r)
    for (int c = 0; c < a.cols(); ++c) out(r, c) = static_cast<float>(a(r, c));
  return out;
}

}  // namespace tfacc
