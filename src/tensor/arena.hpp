// Thread-local recycling arena behind every Matrix<T> buffer.
//
// The packed serve step loop (PR 8) must run allocation-free: each decode
// step builds dozens of short-lived matrices (projections, scores, softmax
// rows, requantized blocks) whose shapes repeat step after step. Routing
// Matrix storage through a size-bucketed free list means the first step
// warms the pool and every later step recycles blocks without touching the
// global heap — generalizing the PR 2 SoftmaxUnit::row hoist to every
// temporary on the measured path.
//
// Design constraints:
//  * No heap bookkeeping inside the pool itself (fixed-capacity free lists),
//    so a free/alloc pair can never allocate — the zero-allocation guard in
//    tests/test_kernels.cpp counts global operator new calls.
//  * 64-byte-aligned blocks, so pooled storage doubles as the aligned
//    backing for the packed GEMM kernels (src/tensor/pack.hpp).
//  * Pools are thread_local: no cross-thread synchronization (TSan-clean for
//    the per-card scheduler threads), and each pool frees its cached blocks
//    at thread exit (ASan leak-clean). A block allocated on one thread and
//    freed on another simply migrates pools; the memory itself comes from
//    the global aligned operator new either way.
//  * Static-destruction safe: a trivially-destructible thread_local state
//    flag routes frees arriving after the pool's destructor straight to
//    operator delete.
//
// Ownership rules under the PR 10 concurrency wall. The pool carries no
// mutex on purpose, so Clang's -Wthread-safety has nothing to track here;
// its safety argument is CONFINEMENT, stated once and policed by
// structure:
//  * Every BytePool is thread_local: only its owning thread ever touches
//    its free lists, so there is no shared state to guard. The pool must
//    never be reached through a pointer that crosses threads — nothing in
//    this header hands out a pool reference, and pool_alloc/pool_free
//    always resolve the CALLING thread's pool.
//  * The blocks themselves may cross threads (a Matrix built on a worker
//    and read on the host): hand-off ordering is the responsibility of
//    whatever publishes the matrix — in this repo always a WorkerPool
//    job completion or an annotated Mutex, both of which synchronize.
//  * Cross-thread free is safe by the migration rule above (the block
//    simply joins the freeing thread's pool); what remains forbidden is
//    two threads freeing or resizing the SAME matrix concurrently —
//    that is a data race on the Matrix, not on the pool.
#pragma once

#include <bit>
#include <cstddef>
#include <new>
#include <vector>

namespace tfacc {
namespace pool_detail {

constexpr std::size_t kAlign = 64;
constexpr int kMinClassLog2 = 6;   // 64 B — one cache line / SA tile row
constexpr int kMaxClassLog2 = 26;  // 64 MiB — larger blocks bypass the pool
constexpr int kNumClasses = kMaxClassLog2 - kMinClassLog2 + 1;
// Free-list depth: generous for small blocks (many per step), shallow for
// large ones so an idle pool cannot pin hundreds of megabytes.
constexpr int kSmallCap = 64;
constexpr int kLargeCap = 8;
constexpr int kLargeClassLog2 = 16;  // > 64 KiB counts as large

/// Size-class index of a request, or -1 when it bypasses the pool.
inline int class_of(std::size_t bytes) {
  if (bytes <= (std::size_t{1} << kMinClassLog2)) return 0;
  const int log2 = std::bit_width(bytes - 1);  // ceil(log2(bytes))
  if (log2 > kMaxClassLog2) return -1;
  return log2 - kMinClassLog2;
}

inline std::size_t class_bytes(int cls) {
  return std::size_t{1} << (kMinClassLog2 + cls);
}

inline void* aligned_new(std::size_t bytes) {
  return ::operator new(bytes, std::align_val_t{kAlign});
}

inline void aligned_delete(void* p) {
  ::operator delete(p, std::align_val_t{kAlign});
}

enum class PoolState : char { kUninit, kLive, kDead };

/// Trivially destructible, so it outlives the pool during thread/static
/// teardown and keeps routing frees safely.
inline PoolState& pool_state() {
  static thread_local PoolState state = PoolState::kUninit;
  return state;
}

class BytePool {
 public:
  BytePool() { pool_state() = PoolState::kLive; }
  ~BytePool() {
    pool_state() = PoolState::kDead;
    for (int cls = 0; cls < kNumClasses; ++cls)
      for (int i = 0; i < lists_[cls].count; ++i)
        aligned_delete(lists_[cls].blocks[i]);
  }
  BytePool(const BytePool&) = delete;
  BytePool& operator=(const BytePool&) = delete;

  void* alloc(int cls) {
    FreeList& list = lists_[cls];
    if (list.count > 0) return list.blocks[--list.count];
    return aligned_new(class_bytes(cls));
  }

  void free(int cls, void* p) {
    FreeList& list = lists_[cls];
    const int cap = cls + kMinClassLog2 > kLargeClassLog2 ? kLargeCap
                                                          : kSmallCap;
    if (list.count < cap) {
      list.blocks[list.count++] = p;
      return;
    }
    aligned_delete(p);  // list full — don't hoard
  }

 private:
  // Plain arrays: the pool's own bookkeeping never touches the heap.
  struct FreeList {
    void* blocks[kSmallCap];
    int count = 0;
  };
  FreeList lists_[kNumClasses] = {};
};

inline BytePool& pool_instance() {
  static thread_local BytePool pool;
  return pool;
}

}  // namespace pool_detail

/// 64-byte-aligned allocation from the calling thread's recycling pool.
// hot-path: allocation-free
// (steady state: a warm pool serves repeats from its free lists;
//  `operator new` is reached only on a cold size class.)
inline void* pool_alloc(std::size_t bytes) {
  using namespace pool_detail;
  const int cls = class_of(bytes);
  if (cls < 0 || pool_state() == PoolState::kDead)
    return aligned_new(bytes);
  return pool_instance().alloc(cls);
}

/// Return a pool_alloc'd block (same byte count) to the pool.
inline void pool_free(void* p, std::size_t bytes) {
  using namespace pool_detail;
  const int cls = class_of(bytes);
  if (cls < 0 || pool_state() != PoolState::kLive) {
    aligned_delete(p);
    return;
  }
  pool_instance().free(cls, p);
}

/// std::allocator drop-in that recycles through the thread-local pool.
/// Matrix<T> uses it for data_, so every matrix temporary on the decode hot
/// path draws from (and returns to) the arena instead of the heap.
template <typename T>
struct PoolAllocator {
  using value_type = T;

  PoolAllocator() = default;
  template <typename U>
  PoolAllocator(const PoolAllocator<U>&) {}  // NOLINT(google-explicit-constructor)

  T* allocate(std::size_t n) {
    return static_cast<T*>(pool_alloc(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) { pool_free(p, n * sizeof(T)); }

  friend bool operator==(const PoolAllocator&, const PoolAllocator&) {
    return true;
  }
};

/// A std::vector whose storage recycles through the arena (64-byte aligned).
template <typename T>
using PoolVec = std::vector<T, PoolAllocator<T>>;

}  // namespace tfacc
