// Pre-packed B operands for the blocked GEMM kernels (PR 8).
//
// The SA-style GEMMs all compute C = A·B where B is a weight matrix that is
// quantized once at load time and then read on every step. Packing B as Bᵀ
// (one contiguous row per *output column*, padded to a 64-byte multiple and
// 64-byte aligned) turns every output element into a dot product of two
// contiguous streams — the layout marian-dev's int16 kernels use — so the
// inner loop is a straight-line SIMD reduction with no strided loads.
//
// The pack is built once (QuantizedLinear::build), never on the hot path.
// Zero padding beyond k is arithmetically inert for both the integer and
// float kernels (0·x = 0 exactly).
#pragma once

#include <cstdint>

#include "tensor/matrix.hpp"

namespace tfacc {

template <typename T>
struct PackedB {
  int k = 0;      // logical inner dimension (B is k×n)
  int n = 0;      // logical output columns
  int k_pad = 0;  // row stride in elements: k rounded up to 64 bytes

  // Pooled storage is 64-byte aligned (tensor/arena.hpp), so row(0) — and,
  // because k_pad is a 64-byte multiple, every row — starts on a cache line.
  PoolVec<T> data;

  bool empty() const { return n == 0; }

  /// Contiguous packed column j of the original B (length k_pad, zero tail).
  const T* row(int j) const {
    return data.data() + static_cast<std::size_t>(j) * k_pad;
  }
};

using PackedI8 = PackedB<std::int8_t>;
using PackedI16 = PackedB<std::int16_t>;
using PackedF = PackedB<float>;

/// Transpose-and-pad pack of B (k×n) for the packed GEMM kernels.
PackedI8 pack_b_i8(const MatI8& b);
PackedI16 pack_b_i16(const MatI16& b);
PackedF pack_b_f32(const MatF& b);

/// Inverse of pack_b_* (drops the padding); round-trip tested.
MatI8 unpack_b_i8(const PackedI8& p);
MatI16 unpack_b_i16(const PackedI16& p);
MatF unpack_b_f32(const PackedF& p);

}  // namespace tfacc
