#include "tensor/pack.hpp"

namespace tfacc {
namespace {

template <typename T>
PackedB<T> pack_b(const Matrix<T>& b) {
  constexpr int kPadElems = static_cast<int>(64 / sizeof(T));
  PackedB<T> out;
  out.k = b.rows();
  out.n = b.cols();
  out.k_pad = (b.rows() + kPadElems - 1) / kPadElems * kPadElems;
  out.data.assign(static_cast<std::size_t>(out.n) * out.k_pad, T{});
  for (int j = 0; j < out.n; ++j) {
    T* dst = out.data.data() + static_cast<std::size_t>(j) * out.k_pad;
    for (int p = 0; p < out.k; ++p) dst[p] = b(p, j);
  }
  return out;
}

template <typename T>
Matrix<T> unpack_b(const PackedB<T>& p) {
  Matrix<T> out(p.k, p.n);
  for (int j = 0; j < p.n; ++j) {
    const T* src = p.row(j);
    for (int r = 0; r < p.k; ++r) out(r, j) = src[r];
  }
  return out;
}

}  // namespace

PackedI8 pack_b_i8(const MatI8& b) { return pack_b(b); }
PackedI16 pack_b_i16(const MatI16& b) { return pack_b(b); }
PackedF pack_b_f32(const MatF& b) { return pack_b(b); }

MatI8 unpack_b_i8(const PackedI8& p) { return unpack_b(p); }
MatI16 unpack_b_i16(const PackedI16& p) { return unpack_b(p); }
MatF unpack_b_f32(const PackedF& p) { return unpack_b(p); }

}  // namespace tfacc
