#include "tensor/kernels.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string_view>

#include "common/check.hpp"
#include "common/fixed_point.hpp"

// Intrinsics headers are safe to include without -march flags; the AVX2
// paths are compiled per-function via __attribute__((target("avx2"))) and
// only ever *called* after a runtime __builtin_cpu_supports check, so the
// binary stays runnable on any x86-64 host.
#if defined(__x86_64__) || defined(__i386__)
#define TFACC_KERNELS_X86 1
#include <immintrin.h>
#endif
#if defined(__aarch64__) && defined(__ARM_NEON)
#define TFACC_KERNELS_NEON 1
#include <arm_neon.h>
#endif

namespace tfacc::kernels {

namespace {

#if TFACC_KERNELS_X86
bool cpu_has_avx2() {
  static const bool has = __builtin_cpu_supports("avx2");
  return has;
}
#endif

Kind kind_from_env_or_default() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* spec = std::getenv("TFACC_KERNEL");
  if (spec == nullptr || *spec == '\0') return Kind::kSimd;
  Kind kind = Kind::kSimd;
  TFACC_CHECK_ARG_MSG(parse_kind(spec, &kind),
                      "TFACC_KERNEL='" << spec
                                       << "' (want scalar|blocked|simd)");
  return kind;
}

// Memory-ordering contract for the dispatch slot (PR 10, pinned):
// std::memory_order_relaxed is sufficient on BOTH sides, by design. The
// slot is the only cross-thread state in the dispatch, and every kernel
// kind is bit-identical on every input (the test_kernels equivalence grid
// + bench_gemm --smoke prove it), so dispatch is idempotent: a racing
// reader observing the old kind merely runs the other, equally-correct
// kernel once — no other memory is published alongside the store, hence
// nothing to acquire/release. kRelaxedDispatchOrder names the contract so
// a future non-idempotent publication (e.g. a kind-specific lookup table)
// cannot silently inherit it: such a change must replace the named
// constant, not add one more bare memory_order argument.
constexpr std::memory_order kRelaxedDispatchOrder =
    std::memory_order_relaxed;

std::atomic<Kind>& kind_slot() {
  static std::atomic<Kind> slot{kind_from_env_or_default()};
  return slot;
}

// ---------------------------------------------------------------------------
// Scalar kernels: the original tensor/ops triple loops, verbatim. These are
// the semantic reference every other kind must match bit-for-bit, and the
// "before" side of the wall-clock speedup gate.
// ---------------------------------------------------------------------------

// hot-path: allocation-free region — every kernel in this namespace runs
// inside decode_step_batch; they write pre-shaped outputs and never touch
// the heap (scripts/lint_invariants.py scans the region until the matching
// '// hot-path: region end').

template <typename T, typename Acc>
void gemm_scalar(const Matrix<T>& a, const Matrix<T>& b, Matrix<Acc>& out) {
  const int m = a.rows(), k = a.cols(), n = b.cols();
  for (int i = 0; i < m; ++i) {
    Acc* orow = out.row(i);
    for (int j = 0; j < n; ++j) orow[j] = Acc{};
    const T* arow = a.row(i);
    for (int p = 0; p < k; ++p) {
      const Acc av = arow[p];
      const T* brow = b.row(p);
      for (int j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
}

template <typename T, typename Acc>
void gemm_nt_scalar(const Matrix<T>& a, const Matrix<T>& b, Matrix<Acc>& out) {
  const int k = a.cols();
  for (int i = 0; i < a.rows(); ++i) {
    const T* arow = a.row(i);
    Acc* orow = out.row(i);
    for (int j = 0; j < b.rows(); ++j) {
      const T* brow = b.row(j);
      Acc acc{};
      for (int p = 0; p < k; ++p) acc += static_cast<Acc>(arow[p]) * brow[p];
      orow[j] = acc;
    }
  }
}

template <typename T, typename Acc>
void gemm_packed_scalar(const Matrix<T>& a, const PackedB<T>& bp,
                        const std::int32_t* bias, Matrix<Acc>& out) {
  const int k = a.cols();
  for (int i = 0; i < a.rows(); ++i) {
    const T* arow = a.row(i);
    Acc* orow = out.row(i);
    for (int j = 0; j < bp.n; ++j) {
      const T* brow = bp.row(j);
      Acc acc = bias != nullptr ? static_cast<Acc>(bias[j]) : Acc{};
      for (int p = 0; p < k; ++p) acc += static_cast<Acc>(arow[p]) * brow[p];
      orow[j] = acc;
    }
  }
}

/// Saturate to the output element type (int8 or int16).
template <typename OutT>
OutT saturate_narrow(std::int64_t v) {
  if constexpr (sizeof(OutT) == 1) return saturate_i8(v);
  else return saturate_i16(v);  // NOLINT(readability-else-after-return)
}

/// The quantizer's original requantize loops, verbatim: (r,c) indexing and
/// FixedPointScale::apply per element.
template <typename OutT>
void requantize_scalar(const MatI32& acc, std::int32_t mantissa, int shift,
                       Matrix<OutT>& out) {
  for (int r = 0; r < acc.rows(); ++r)
    for (int c = 0; c < acc.cols(); ++c)
      out(r, c) = saturate_narrow<OutT>(rounding_shift_right(
          static_cast<std::int64_t>(acc(r, c)) * mantissa, shift));
}

/// LayerNormUnit::row's accumulator loop, verbatim.
void layernorm_stats_scalar(const std::int16_t* g, int n, std::int64_t* sum,
                            std::int64_t* sumsq) {
  std::int64_t s = 0, q = 0;
  for (int j = 0; j < n; ++j) {
    s += g[j];
    q += static_cast<std::int64_t>(g[j]) * g[j];
  }
  *sum = s;
  *sumsq = q;
}

/// LayerNormUnit::finish_row's γ/β loop, verbatim.
void layernorm_finish_scalar(const std::int16_t* g, int n, std::int64_t sum,
                             std::int32_t rs_mantissa, int norm_shift,
                             int gamma_shift, const std::int32_t* gq,
                             const std::int32_t* bq, std::int8_t* out) {
  for (int j = 0; j < n; ++j) {
    const std::int64_t t = static_cast<std::int64_t>(n) * g[j] - sum;
    const std::int64_t norm =
        rounding_shift_right(t * rs_mantissa, norm_shift);
    const std::int64_t scaled =
        rounding_shift_right(norm * gq[j], gamma_shift);
    out[j] = saturate_i8(scaled + bq[j]);
  }
}

// ---------------------------------------------------------------------------
// Blocked kernels: plain C++, always available. gemm blocks over a 4-row
// strip of A so each streamed B row is reused 4× from registers/L1; each
// output element still accumulates in ascending-p order with a single
// accumulator, so the float results are bit-identical to scalar. The dot
// kernels (packed / nt) unroll the reduction 4-way — integer-only, where
// reassociation is exact.
// ---------------------------------------------------------------------------

template <typename T, typename Acc>
void gemm_blocked(const Matrix<T>& a, const Matrix<T>& b, Matrix<Acc>& out) {
  constexpr int kRowStrip = 4;
  const int m = a.rows(), k = a.cols(), n = b.cols();
  for (int i0 = 0; i0 < m; i0 += kRowStrip) {
    const int strip = i0 + kRowStrip <= m ? kRowStrip : m - i0;
    for (int ii = 0; ii < strip; ++ii) {
      Acc* orow = out.row(i0 + ii);
      for (int j = 0; j < n; ++j) orow[j] = Acc{};
    }
    for (int p = 0; p < k; ++p) {
      const T* brow = b.row(p);
      for (int ii = 0; ii < strip; ++ii) {
        const Acc av = a(i0 + ii, p);
        Acc* orow = out.row(i0 + ii);
        for (int j = 0; j < n; ++j) orow[j] += av * brow[j];
      }
    }
  }
}

/// Integer dot with a 4-way unrolled reduction (exact reassociation).
template <typename T>
std::int32_t dot_i32_blocked(const T* a, const T* b, int k) {
  std::int32_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  int p = 0;
  for (; p + 4 <= k; p += 4) {
    s0 += static_cast<std::int32_t>(a[p]) * b[p];
    s1 += static_cast<std::int32_t>(a[p + 1]) * b[p + 1];
    s2 += static_cast<std::int32_t>(a[p + 2]) * b[p + 2];
    s3 += static_cast<std::int32_t>(a[p + 3]) * b[p + 3];
  }
  std::int32_t sum = (s0 + s1) + (s2 + s3);
  for (; p < k; ++p) sum += static_cast<std::int32_t>(a[p]) * b[p];
  return sum;
}

/// Float dot in strict ascending-p order (bit-identical to the scalar loop).
float dot_f32_ordered(const float* a, const float* b, int k) {
  float acc = 0.0f;
  for (int p = 0; p < k; ++p) acc += a[p] * b[p];
  return acc;
}

template <typename T>
void gemm_nt_blocked(const Matrix<T>& a, const Matrix<T>& b, MatI32& out) {
  const int k = a.cols();
  for (int i = 0; i < a.rows(); ++i) {
    const T* arow = a.row(i);
    std::int32_t* orow = out.row(i);
    for (int j = 0; j < b.rows(); ++j)
      orow[j] = dot_i32_blocked(arow, b.row(j), k);
  }
}

void gemm_nt_blocked_f32(const MatF& a, const MatF& b, MatF& out) {
  const int k = a.cols();
  for (int i = 0; i < a.rows(); ++i) {
    const float* arow = a.row(i);
    float* orow = out.row(i);
    for (int j = 0; j < b.rows(); ++j)
      orow[j] = dot_f32_ordered(arow, b.row(j), k);
  }
}

template <typename T>
void gemm_packed_blocked(const Matrix<T>& a, const PackedB<T>& bp,
                         const std::int32_t* bias, MatI32& out) {
  const int k = a.cols();
  for (int i = 0; i < a.rows(); ++i) {
    const T* arow = a.row(i);
    std::int32_t* orow = out.row(i);
    for (int j = 0; j < bp.n; ++j) {
      const std::int32_t seed = bias != nullptr ? bias[j] : 0;
      orow[j] = seed + dot_i32_blocked(arow, bp.row(j), k);
    }
  }
}

/// Row-pointer requantize — same math as requantize_scalar, contiguous walk.
template <typename OutT>
void requantize_rows(const MatI32& acc, std::int32_t mantissa, int shift,
                     Matrix<OutT>& out) {
  const int n = acc.cols();
  for (int r = 0; r < acc.rows(); ++r) {
    const std::int32_t* in = acc.row(r);
    OutT* o = out.row(r);
    for (int c = 0; c < n; ++c)
      o[c] = saturate_narrow<OutT>(rounding_shift_right(
          static_cast<std::int64_t>(in[c]) * mantissa, shift));
  }
}

/// 4-way unrolled LayerNorm accumulators — integer reassociation is exact.
void layernorm_stats_blocked(const std::int16_t* g, int n, std::int64_t* sum,
                             std::int64_t* sumsq) {
  std::int64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  std::int64_t q0 = 0, q1 = 0, q2 = 0, q3 = 0;
  int j = 0;
  for (; j + 4 <= n; j += 4) {
    s0 += g[j];
    s1 += g[j + 1];
    s2 += g[j + 2];
    s3 += g[j + 3];
    q0 += static_cast<std::int64_t>(g[j]) * g[j];
    q1 += static_cast<std::int64_t>(g[j + 1]) * g[j + 1];
    q2 += static_cast<std::int64_t>(g[j + 2]) * g[j + 2];
    q3 += static_cast<std::int64_t>(g[j + 3]) * g[j + 3];
  }
  std::int64_t s = (s0 + s1) + (s2 + s3);
  std::int64_t q = (q0 + q1) + (q2 + q3);
  for (; j < n; ++j) {
    s += g[j];
    q += static_cast<std::int64_t>(g[j]) * g[j];
  }
  *sum = s;
  *sumsq = q;
}

// ---------------------------------------------------------------------------
// AVX2 kernels (x86, runtime-dispatched). Integer reductions use
// sign-extension to int16 + pmaddwd, which is exact for int8 operands
// (|pair sum| ≤ 2·128² < 2³¹) and for quantized int16 operands. The f32
// kernel vectorizes across output columns with separate mul+add — the
// target attribute enables AVX2 only (no FMA), so no contraction can change
// the scalar path's per-element rounding.
// ---------------------------------------------------------------------------

#if TFACC_KERNELS_X86

__attribute__((target("avx2"))) std::int32_t hsum_epi32(__m256i v) {
  __m128i s = _mm_add_epi32(_mm256_castsi256_si128(v),
                            _mm256_extracti128_si256(v, 1));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(1, 0, 3, 2)));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(2, 3, 0, 1)));
  return _mm_cvtsi128_si32(s);
}

__attribute__((target("avx2"))) std::int32_t dot_i8_avx2(const std::int8_t* a,
                                                         const std::int8_t* b,
                                                         int k) {
  __m256i acc = _mm256_setzero_si256();
  int p = 0;
  for (; p + 32 <= k; p += 32) {
    const __m256i a0 = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + p)));
    const __m256i b0 = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + p)));
    const __m256i a1 = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + p + 16)));
    const __m256i b1 = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + p + 16)));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(a0, b0));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(a1, b1));
  }
  for (; p + 16 <= k; p += 16) {
    const __m256i a0 = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + p)));
    const __m256i b0 = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + p)));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(a0, b0));
  }
  std::int32_t sum = hsum_epi32(acc);
  for (; p < k; ++p) sum += static_cast<std::int32_t>(a[p]) * b[p];
  return sum;
}

__attribute__((target("avx2"))) std::int32_t dot_i16_avx2(
    const std::int16_t* a, const std::int16_t* b, int k) {
  __m256i acc = _mm256_setzero_si256();
  int p = 0;
  for (; p + 16 <= k; p += 16) {
    const __m256i a0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + p));
    const __m256i b0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + p));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(a0, b0));
  }
  std::int32_t sum = hsum_epi32(acc);
  for (; p < k; ++p) sum += static_cast<std::int32_t>(a[p]) * b[p];
  return sum;
}

__attribute__((target("avx2"))) void gemm_i8_avx2(const MatI8& a,
                                                  const MatI8& b,
                                                  MatI32& out) {
  const int m = a.rows(), k = a.cols(), n = b.cols();
  if (n == 0) return;  // row() may be null on an empty matrix (memset UB)
  for (int i = 0; i < m; ++i) {
    std::int32_t* orow = out.row(i);
    std::memset(orow, 0, static_cast<std::size_t>(n) * sizeof(std::int32_t));
    const std::int8_t* arow = a.row(i);
    for (int p = 0; p < k; ++p) {
      const std::int8_t* brow = b.row(p);
      const __m256i av = _mm256_set1_epi16(arow[p]);
      int j = 0;
      for (; j + 16 <= n; j += 16) {
        const __m256i b16 = _mm256_cvtepi8_epi16(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(brow + j)));
        // int8·int8 products fit int16 exactly (|v| ≤ 128·128 < 2¹⁵).
        const __m256i prod = _mm256_mullo_epi16(av, b16);
        const __m256i lo =
            _mm256_cvtepi16_epi32(_mm256_castsi256_si128(prod));
        const __m256i hi =
            _mm256_cvtepi16_epi32(_mm256_extracti128_si256(prod, 1));
        __m256i* o = reinterpret_cast<__m256i*>(orow + j);
        _mm256_storeu_si256(o, _mm256_add_epi32(_mm256_loadu_si256(o), lo));
        __m256i* o2 = reinterpret_cast<__m256i*>(orow + j + 8);
        _mm256_storeu_si256(o2, _mm256_add_epi32(_mm256_loadu_si256(o2), hi));
      }
      const std::int32_t avs = arow[p];
      for (; j < n; ++j) orow[j] += avs * brow[j];
    }
  }
}

__attribute__((target("avx2"))) void gemm_i16_avx2(const MatI16& a,
                                                   const MatI16& b,
                                                   MatI32& out) {
  const int m = a.rows(), k = a.cols(), n = b.cols();
  if (n == 0) return;  // row() may be null on an empty matrix (memset UB)
  for (int i = 0; i < m; ++i) {
    std::int32_t* orow = out.row(i);
    std::memset(orow, 0, static_cast<std::size_t>(n) * sizeof(std::int32_t));
    const std::int16_t* arow = a.row(i);
    for (int p = 0; p < k; ++p) {
      const std::int16_t* brow = b.row(p);
      const __m256i av = _mm256_set1_epi32(arow[p]);
      int j = 0;
      for (; j + 8 <= n; j += 8) {
        const __m256i b32 = _mm256_cvtepi16_epi32(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(brow + j)));
        const __m256i prod = _mm256_mullo_epi32(av, b32);
        __m256i* o = reinterpret_cast<__m256i*>(orow + j);
        _mm256_storeu_si256(o, _mm256_add_epi32(_mm256_loadu_si256(o), prod));
      }
      const std::int32_t avs = arow[p];
      for (; j < n; ++j) orow[j] += avs * brow[j];
    }
  }
}

__attribute__((target("avx2"))) void gemm_f32_avx2(const MatF& a,
                                                   const MatF& b, MatF& out) {
  const int m = a.rows(), k = a.cols(), n = b.cols();
  if (n == 0) return;  // row() may be null on an empty matrix (memset UB)
  for (int i = 0; i < m; ++i) {
    float* orow = out.row(i);
    std::memset(orow, 0, static_cast<std::size_t>(n) * sizeof(float));
    const float* arow = a.row(i);
    for (int p = 0; p < k; ++p) {
      const float* brow = b.row(p);
      const __m256 av = _mm256_set1_ps(arow[p]);
      int j = 0;
      for (; j + 8 <= n; j += 8) {
        // Separate mul + add (no FMA in the target set): each orow[j]
        // accumulates the same rounded products in the same order as the
        // scalar loop.
        const __m256 prod = _mm256_mul_ps(av, _mm256_loadu_ps(brow + j));
        _mm256_storeu_ps(orow + j,
                         _mm256_add_ps(_mm256_loadu_ps(orow + j), prod));
      }
      const float avs = arow[p];
      for (; j < n; ++j) orow[j] += avs * brow[j];
    }
  }
}

__attribute__((target("avx2"))) void gemm_nt_i8_avx2(const MatI8& a,
                                                     const MatI8& b,
                                                     MatI32& out) {
  const int k = a.cols();
  for (int i = 0; i < a.rows(); ++i) {
    const std::int8_t* arow = a.row(i);
    std::int32_t* orow = out.row(i);
    for (int j = 0; j < b.rows(); ++j) orow[j] = dot_i8_avx2(arow, b.row(j), k);
  }
}

__attribute__((target("avx2"))) void gemm_i8_packed_avx2(
    const MatI8& a, const PackedI8& bp, const std::int32_t* bias,
    MatI32& out) {
  const int k = a.cols();
  for (int i = 0; i < a.rows(); ++i) {
    const std::int8_t* arow = a.row(i);
    std::int32_t* orow = out.row(i);
    for (int j = 0; j < bp.n; ++j) {
      const std::int32_t seed = bias != nullptr ? bias[j] : 0;
      orow[j] = seed + dot_i8_avx2(arow, bp.row(j), k);
    }
  }
}

__attribute__((target("avx2"))) void gemm_i16_packed_avx2(const MatI16& a,
                                                          const PackedI16& bp,
                                                          MatI32& out) {
  const int k = a.cols();
  for (int i = 0; i < a.rows(); ++i) {
    const std::int16_t* arow = a.row(i);
    std::int32_t* orow = out.row(i);
    for (int j = 0; j < bp.n; ++j) orow[j] = dot_i16_avx2(arow, bp.row(j), k);
  }
}

// --- AVX2 requantization ---------------------------------------------------
// Branchless reformulation of rounding_shift_right(v·m, s) for s ≥ 1:
//
//   round(p, s) = (p + bias + (p < 0 ? −1 : 0)) >>ₐ s,   bias = 2^(s−1)
//
// (for p < 0, −((−p + bias) >> s) = floor((p − bias + 2^s − 1)/2^s) and
// 2^s − 1 − bias = bias − 1). AVX2 has no 64-bit arithmetic shift, so it is
// emulated: x >>ₐ s = ((x + 2^62) >>ₗ s) − 2^(62−s), valid while x + 2^62
// stays in [0, 2^63). Here |p| = |v·m| < 2^31·2^15 = 2^46 and bias ≤ 2^47
// (the dispatch only takes this path for 1 ≤ s ≤ 48), so |x| < 2^48. The
// products come from _mm256_mul_epi32 on the even/odd 32-bit lanes — it
// sign-extends the low dword of each 64-bit lane, which is exactly the
// int32 accumulator value.

/// Round, emulated-arithmetic-shift, and clamp four int64 products.
__attribute__((target("avx2"))) __m256i requant_round_clamp_avx2(
    __m256i prod, __m256i bias, __m128i count, __m256i offset,
    __m256i offset_shifted, __m256i lo, __m256i hi) {
  const __m256i neg = _mm256_cmpgt_epi64(_mm256_setzero_si256(), prod);
  __m256i x = _mm256_add_epi64(_mm256_add_epi64(prod, bias), neg);
  x = _mm256_sub_epi64(_mm256_srl_epi64(_mm256_add_epi64(x, offset), count),
                       offset_shifted);
  x = _mm256_blendv_epi8(x, hi, _mm256_cmpgt_epi64(x, hi));
  x = _mm256_blendv_epi8(x, lo, _mm256_cmpgt_epi64(lo, x));
  return x;
}

/// Eight int32 lanes → eight clamped int32 results in lane order: multiply
/// the even and odd dwords separately (mul_epi32 eats the low dword of each
/// 64-bit lane), round/clamp each half, then re-interleave the low dwords.
__attribute__((target("avx2"))) __m256i requant_8lanes_avx2(
    const std::int32_t* in, __m256i mvec, __m256i bias, __m128i count,
    __m256i offset, __m256i offset_shifted, __m256i lo, __m256i hi) {
  const __m256i x = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in));
  const __m256i pe = _mm256_mul_epi32(x, mvec);  // dwords 0,2,4,6
  const __m256i po = _mm256_mul_epi32(
      _mm256_shuffle_epi32(x, _MM_SHUFFLE(3, 3, 1, 1)), mvec);  // 1,3,5,7
  const __m256i re = requant_round_clamp_avx2(pe, bias, count, offset,
                                              offset_shifted, lo, hi);
  const __m256i ro = requant_round_clamp_avx2(po, bias, count, offset,
                                              offset_shifted, lo, hi);
  return _mm256_blend_epi32(re, _mm256_slli_epi64(ro, 32), 0b10101010);
}

__attribute__((target("avx2"))) void requantize_i8_avx2(const MatI32& acc,
                                                        std::int32_t mantissa,
                                                        int shift,
                                                        MatI8& out) {
  const __m256i mvec = _mm256_set1_epi64x(mantissa);
  const __m256i bias = _mm256_set1_epi64x(std::int64_t{1} << (shift - 1));
  const __m128i count = _mm_cvtsi32_si128(shift);
  const __m256i offset = _mm256_set1_epi64x(std::int64_t{1} << 62);
  const __m256i offset_shifted =
      _mm256_set1_epi64x((std::int64_t{1} << 62) >> shift);
  const __m256i lo = _mm256_set1_epi64x(-128);
  const __m256i hi = _mm256_set1_epi64x(127);
  // Byte 0 of each dword, per 128-bit lane (clamped → truncation is exact).
  const __m256i pick = _mm256_setr_epi8(
      0, 4, 8, 12, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1,  //
      0, 4, 8, 12, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1);
  const __m256i join = _mm256_setr_epi32(0, 4, 0, 0, 0, 0, 0, 0);
  const int n = acc.cols();
  for (int r = 0; r < acc.rows(); ++r) {
    const std::int32_t* in = acc.row(r);
    std::int8_t* o = out.row(r);
    int c = 0;
    for (; c + 8 <= n; c += 8) {
      const __m256i merged = requant_8lanes_avx2(
          in + c, mvec, bias, count, offset, offset_shifted, lo, hi);
      const __m256i packed =
          _mm256_permutevar8x32_epi32(_mm256_shuffle_epi8(merged, pick), join);
      _mm_storel_epi64(reinterpret_cast<__m128i*>(o + c),
                       _mm256_castsi256_si128(packed));
    }
    for (; c < n; ++c)
      o[c] = saturate_i8(rounding_shift_right(
          static_cast<std::int64_t>(in[c]) * mantissa, shift));
  }
}

__attribute__((target("avx2"))) void requantize_i16_avx2(const MatI32& acc,
                                                         std::int32_t mantissa,
                                                         int shift,
                                                         MatI16& out) {
  const __m256i mvec = _mm256_set1_epi64x(mantissa);
  const __m256i bias = _mm256_set1_epi64x(std::int64_t{1} << (shift - 1));
  const __m128i count = _mm_cvtsi32_si128(shift);
  const __m256i offset = _mm256_set1_epi64x(std::int64_t{1} << 62);
  const __m256i offset_shifted =
      _mm256_set1_epi64x((std::int64_t{1} << 62) >> shift);
  const __m256i lo = _mm256_set1_epi64x(-32768);
  const __m256i hi = _mm256_set1_epi64x(32767);
  // Bytes 0–1 of each dword, per 128-bit lane.
  const __m256i pick = _mm256_setr_epi8(
      0, 1, 4, 5, 8, 9, 12, 13, -1, -1, -1, -1, -1, -1, -1, -1,  //
      0, 1, 4, 5, 8, 9, 12, 13, -1, -1, -1, -1, -1, -1, -1, -1);
  const __m256i join = _mm256_setr_epi32(0, 1, 4, 5, 0, 0, 0, 0);
  const int n = acc.cols();
  for (int r = 0; r < acc.rows(); ++r) {
    const std::int32_t* in = acc.row(r);
    std::int16_t* o = out.row(r);
    int c = 0;
    for (; c + 8 <= n; c += 8) {
      const __m256i merged = requant_8lanes_avx2(
          in + c, mvec, bias, count, offset, offset_shifted, lo, hi);
      const __m256i packed =
          _mm256_permutevar8x32_epi32(_mm256_shuffle_epi8(merged, pick), join);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(o + c),
                       _mm256_castsi256_si128(packed));
    }
    for (; c < n; ++c)
      o[c] = saturate_i16(rounding_shift_right(
          static_cast<std::int64_t>(in[c]) * mantissa, shift));
  }
}

// --- AVX2 LayerNorm row kernels --------------------------------------------
// Stats: 8 int16 lanes per iteration; squares via pmulld on sign-extended
// int32 (≤ 2¹⁵·2¹⁵ = 2³⁰, exact — pmaddwd would wrap on a (−32768)² pair),
// both reductions widened to four int64 lane accumulators, so any n is exact.
// Finish: 4 int64 lanes; t = n·g − sum stays within int32 for n ≤ 2¹⁴
// (|t| ≤ 2n·2¹⁵ ≤ 2³⁰), so mul_epi32 on the low dwords is exact, and both
// rounding shifts reuse the requantizer's branchless reformulation. The
// intermediate clamp bounds are a no-op by Cauchy–Schwarz: Σtⱼ² = n·V gives
// |norm| ≤ √n·2¹³ < 2²¹, hence |norm·γq| < 2⁵² — inside the emulated
// arithmetic shift's valid range.

__attribute__((target("avx2"))) void layernorm_stats_avx2(const std::int16_t* g,
                                                          int n,
                                                          std::int64_t* sum,
                                                          std::int64_t* sumsq) {
  __m256i sacc = _mm256_setzero_si256();
  __m256i qacc = _mm256_setzero_si256();
  int j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m128i raw =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(g + j));
    const __m256i v32 = _mm256_cvtepi16_epi32(raw);
    const __m256i sq32 = _mm256_mullo_epi32(v32, v32);
    sacc = _mm256_add_epi64(
        sacc, _mm256_cvtepi32_epi64(_mm256_castsi256_si128(v32)));
    sacc = _mm256_add_epi64(
        sacc, _mm256_cvtepi32_epi64(_mm256_extracti128_si256(v32, 1)));
    qacc = _mm256_add_epi64(
        qacc, _mm256_cvtepi32_epi64(_mm256_castsi256_si128(sq32)));
    qacc = _mm256_add_epi64(
        qacc, _mm256_cvtepi32_epi64(_mm256_extracti128_si256(sq32, 1)));
  }
  alignas(32) std::int64_t ls[4];
  alignas(32) std::int64_t lq[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(ls), sacc);
  _mm256_store_si256(reinterpret_cast<__m256i*>(lq), qacc);
  std::int64_t s = (ls[0] + ls[1]) + (ls[2] + ls[3]);
  std::int64_t q = (lq[0] + lq[1]) + (lq[2] + lq[3]);
  for (; j < n; ++j) {
    s += g[j];
    q += static_cast<std::int64_t>(g[j]) * g[j];
  }
  *sum = s;
  *sumsq = q;
}

__attribute__((target("avx2"))) void layernorm_finish_avx2(
    const std::int16_t* g, int n, std::int64_t sum, std::int32_t rs_mantissa,
    int norm_shift, int gamma_shift, const std::int32_t* gq,
    const std::int32_t* bq, std::int8_t* out) {
  const __m256i nvec = _mm256_set1_epi64x(n);
  const __m256i sumv = _mm256_set1_epi64x(sum);
  const __m256i mant = _mm256_set1_epi64x(rs_mantissa);
  const __m256i offset = _mm256_set1_epi64x(std::int64_t{1} << 62);
  const __m256i nbias = _mm256_set1_epi64x(std::int64_t{1} << (norm_shift - 1));
  const __m128i ncount = _mm_cvtsi32_si128(norm_shift);
  const __m256i noff_sh =
      _mm256_set1_epi64x((std::int64_t{1} << 62) >> norm_shift);
  const __m256i gbias =
      _mm256_set1_epi64x(std::int64_t{1} << (gamma_shift - 1));
  const __m128i gcount = _mm_cvtsi32_si128(gamma_shift);
  const __m256i goff_sh =
      _mm256_set1_epi64x((std::int64_t{1} << 62) >> gamma_shift);
  const __m256i wide_lo = _mm256_set1_epi64x(-(std::int64_t{1} << 40));
  const __m256i wide_hi = _mm256_set1_epi64x(std::int64_t{1} << 40);
  const __m256i i8lo = _mm256_set1_epi64x(-128);
  const __m256i i8hi = _mm256_set1_epi64x(127);
  alignas(32) std::int64_t lanes[4];
  int j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256i g64 = _mm256_cvtepi16_epi64(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(g + j)));
    const __m256i t = _mm256_sub_epi64(_mm256_mul_epi32(nvec, g64), sumv);
    const __m256i norm =
        requant_round_clamp_avx2(_mm256_mul_epi32(t, mant), nbias, ncount,
                                 offset, noff_sh, wide_lo, wide_hi);
    const __m256i gq64 = _mm256_cvtepi32_epi64(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(gq + j)));
    const __m256i scaled =
        requant_round_clamp_avx2(_mm256_mul_epi32(norm, gq64), gbias, gcount,
                                 offset, goff_sh, wide_lo, wide_hi);
    const __m256i bq64 = _mm256_cvtepi32_epi64(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(bq + j)));
    __m256i res = _mm256_add_epi64(scaled, bq64);
    res = _mm256_blendv_epi8(res, i8hi, _mm256_cmpgt_epi64(res, i8hi));
    res = _mm256_blendv_epi8(res, i8lo, _mm256_cmpgt_epi64(i8lo, res));
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), res);
    out[j] = static_cast<std::int8_t>(lanes[0]);
    out[j + 1] = static_cast<std::int8_t>(lanes[1]);
    out[j + 2] = static_cast<std::int8_t>(lanes[2]);
    out[j + 3] = static_cast<std::int8_t>(lanes[3]);
  }
  for (; j < n; ++j) {
    const std::int64_t t = static_cast<std::int64_t>(n) * g[j] - sum;
    const std::int64_t norm = rounding_shift_right(t * rs_mantissa, norm_shift);
    const std::int64_t scaled = rounding_shift_right(norm * gq[j], gamma_shift);
    out[j] = saturate_i8(scaled + bq[j]);
  }
}

// --- SSE2 fallbacks (x86 baseline, no runtime check needed) ----------------

/// Sign-extend the low/high 8 bytes of an epi8 vector to epi16 (SSE2 has no
/// pmovsxbw): interleave-with-self then arithmetic-shift restores the sign.
std::int32_t dot_i8_sse2(const std::int8_t* a, const std::int8_t* b, int k) {
  __m128i acc = _mm_setzero_si128();
  int p = 0;
  for (; p + 16 <= k; p += 16) {
    const __m128i av =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + p));
    const __m128i bv =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + p));
    const __m128i alo = _mm_srai_epi16(_mm_unpacklo_epi8(av, av), 8);
    const __m128i ahi = _mm_srai_epi16(_mm_unpackhi_epi8(av, av), 8);
    const __m128i blo = _mm_srai_epi16(_mm_unpacklo_epi8(bv, bv), 8);
    const __m128i bhi = _mm_srai_epi16(_mm_unpackhi_epi8(bv, bv), 8);
    acc = _mm_add_epi32(acc, _mm_madd_epi16(alo, blo));
    acc = _mm_add_epi32(acc, _mm_madd_epi16(ahi, bhi));
  }
  __m128i s =
      _mm_add_epi32(acc, _mm_shuffle_epi32(acc, _MM_SHUFFLE(1, 0, 3, 2)));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(2, 3, 0, 1)));
  std::int32_t sum = _mm_cvtsi128_si32(s);
  for (; p < k; ++p) sum += static_cast<std::int32_t>(a[p]) * b[p];
  return sum;
}

void gemm_nt_i8_sse2(const MatI8& a, const MatI8& b, MatI32& out) {
  const int k = a.cols();
  for (int i = 0; i < a.rows(); ++i) {
    const std::int8_t* arow = a.row(i);
    std::int32_t* orow = out.row(i);
    for (int j = 0; j < b.rows(); ++j) orow[j] = dot_i8_sse2(arow, b.row(j), k);
  }
}

void gemm_i8_packed_sse2(const MatI8& a, const PackedI8& bp,
                         const std::int32_t* bias, MatI32& out) {
  const int k = a.cols();
  for (int i = 0; i < a.rows(); ++i) {
    const std::int8_t* arow = a.row(i);
    std::int32_t* orow = out.row(i);
    for (int j = 0; j < bp.n; ++j) {
      const std::int32_t seed = bias != nullptr ? bias[j] : 0;
      orow[j] = seed + dot_i8_sse2(arow, bp.row(j), k);
    }
  }
}

void gemm_f32_sse2(const MatF& a, const MatF& b, MatF& out) {
  const int m = a.rows(), k = a.cols(), n = b.cols();
  if (n == 0) return;  // row() may be null on an empty matrix (memset UB)
  for (int i = 0; i < m; ++i) {
    float* orow = out.row(i);
    std::memset(orow, 0, static_cast<std::size_t>(n) * sizeof(float));
    const float* arow = a.row(i);
    for (int p = 0; p < k; ++p) {
      const float* brow = b.row(p);
      const __m128 av = _mm_set1_ps(arow[p]);
      int j = 0;
      for (; j + 4 <= n; j += 4) {
        const __m128 prod = _mm_mul_ps(av, _mm_loadu_ps(brow + j));
        _mm_storeu_ps(orow + j, _mm_add_ps(_mm_loadu_ps(orow + j), prod));
      }
      const float avs = arow[p];
      for (; j < n; ++j) orow[j] += avs * brow[j];
    }
  }
}

#endif  // TFACC_KERNELS_X86

#if TFACC_KERNELS_NEON

std::int32_t dot_i8_neon(const std::int8_t* a, const std::int8_t* b, int k) {
  int32x4_t acc = vdupq_n_s32(0);
  int p = 0;
  for (; p + 16 <= k; p += 16) {
    const int8x16_t av = vld1q_s8(a + p);
    const int8x16_t bv = vld1q_s8(b + p);
    acc = vpadalq_s16(acc, vmull_s8(vget_low_s8(av), vget_low_s8(bv)));
    acc = vpadalq_s16(acc, vmull_s8(vget_high_s8(av), vget_high_s8(bv)));
  }
  std::int32_t sum = vaddvq_s32(acc);
  for (; p < k; ++p) sum += static_cast<std::int32_t>(a[p]) * b[p];
  return sum;
}

std::int32_t dot_i16_neon(const std::int16_t* a, const std::int16_t* b,
                          int k) {
  int32x4_t acc = vdupq_n_s32(0);
  int p = 0;
  for (; p + 8 <= k; p += 8) {
    const int16x8_t av = vld1q_s16(a + p);
    const int16x8_t bv = vld1q_s16(b + p);
    acc = vmlal_s16(acc, vget_low_s16(av), vget_low_s16(bv));
    acc = vmlal_s16(acc, vget_high_s16(av), vget_high_s16(bv));
  }
  std::int32_t sum = vaddvq_s32(acc);
  for (; p < k; ++p) sum += static_cast<std::int32_t>(a[p]) * b[p];
  return sum;
}

void gemm_nt_i8_neon(const MatI8& a, const MatI8& b, MatI32& out) {
  const int k = a.cols();
  for (int i = 0; i < a.rows(); ++i) {
    const std::int8_t* arow = a.row(i);
    std::int32_t* orow = out.row(i);
    for (int j = 0; j < b.rows(); ++j) orow[j] = dot_i8_neon(arow, b.row(j), k);
  }
}

void gemm_i8_packed_neon(const MatI8& a, const PackedI8& bp,
                         const std::int32_t* bias, MatI32& out) {
  const int k = a.cols();
  for (int i = 0; i < a.rows(); ++i) {
    const std::int8_t* arow = a.row(i);
    std::int32_t* orow = out.row(i);
    for (int j = 0; j < bp.n; ++j) {
      const std::int32_t seed = bias != nullptr ? bias[j] : 0;
      orow[j] = seed + dot_i8_neon(arow, bp.row(j), k);
    }
  }
}

void gemm_i16_packed_neon(const MatI16& a, const PackedI16& bp, MatI32& out) {
  const int k = a.cols();
  for (int i = 0; i < a.rows(); ++i) {
    const std::int16_t* arow = a.row(i);
    std::int32_t* orow = out.row(i);
    for (int j = 0; j < bp.n; ++j) orow[j] = dot_i16_neon(arow, bp.row(j), k);
  }
}

#endif  // TFACC_KERNELS_NEON

// hot-path: region end

}  // namespace

const char* kind_name(Kind kind) {
  switch (kind) {
    case Kind::kScalar:
      return "scalar";
    case Kind::kBlocked:
      return "blocked";
    case Kind::kSimd:
      return "simd";
  }
  return "?";
}

bool parse_kind(const char* spec, Kind* out) {
  if (spec == nullptr || out == nullptr) return false;
  const std::string_view s(spec);
  if (s == "scalar") *out = Kind::kScalar;
  else if (s == "blocked") *out = Kind::kBlocked;
  else if (s == "simd") *out = Kind::kSimd;
  else return false;
  return true;
}

Kind selected() { return kind_slot().load(kRelaxedDispatchOrder); }

void set_kind(Kind kind) {
  kind_slot().store(kind, kRelaxedDispatchOrder);
}

Kind refresh_from_env() {
  const Kind kind = kind_from_env_or_default();
  set_kind(kind);
  return kind;
}

bool simd_available() {
#if TFACC_KERNELS_X86
  return true;  // SSE2 is the x86-64 baseline; AVX2 upgraded at runtime
#elif TFACC_KERNELS_NEON
  return true;
#else
  return false;
#endif
}

const char* capability() {
#if TFACC_KERNELS_X86
  return cpu_has_avx2() ? "avx2" : "sse2";
#elif TFACC_KERNELS_NEON
  return "neon";
#else
  return "generic";
#endif
}

// --- Dispatch --------------------------------------------------------------

void gemm_f32_into(const MatF& a, const MatF& b, MatF& out) {
  TFACC_CHECK_ARG(a.cols() == b.rows());
  TFACC_CHECK_ARG(out.rows() == a.rows() && out.cols() == b.cols());
  switch (selected()) {
    case Kind::kScalar:
      gemm_scalar(a, b, out);
      return;
    case Kind::kBlocked:
      gemm_blocked(a, b, out);
      return;
    case Kind::kSimd:
#if TFACC_KERNELS_X86
      if (cpu_has_avx2()) {
        gemm_f32_avx2(a, b, out);
        return;
      }
      gemm_f32_sse2(a, b, out);
      return;
#else
      // NEON/generic: the blocked path keeps the scalar summation order;
      // a NEON f32 path would risk FMA contraction differences.
      gemm_blocked(a, b, out);
      return;
#endif
  }
}

void gemm_i8_into(const MatI8& a, const MatI8& b, MatI32& out) {
  TFACC_CHECK_ARG(a.cols() == b.rows());
  TFACC_CHECK_ARG(out.rows() == a.rows() && out.cols() == b.cols());
  switch (selected()) {
    case Kind::kScalar:
      gemm_scalar(a, b, out);
      return;
    case Kind::kBlocked:
      gemm_blocked(a, b, out);
      return;
    case Kind::kSimd:
#if TFACC_KERNELS_X86
      if (cpu_has_avx2()) {
        gemm_i8_avx2(a, b, out);
        return;
      }
#endif
      gemm_blocked(a, b, out);
      return;
  }
}

void gemm_i16_into(const MatI16& a, const MatI16& b, MatI32& out) {
  TFACC_CHECK_ARG(a.cols() == b.rows());
  TFACC_CHECK_ARG(out.rows() == a.rows() && out.cols() == b.cols());
  switch (selected()) {
    case Kind::kScalar:
      gemm_scalar(a, b, out);
      return;
    case Kind::kBlocked:
      gemm_blocked(a, b, out);
      return;
    case Kind::kSimd:
#if TFACC_KERNELS_X86
      if (cpu_has_avx2()) {
        gemm_i16_avx2(a, b, out);
        return;
      }
#endif
      gemm_blocked(a, b, out);
      return;
  }
}

void gemm_nt_f32_into(const MatF& a, const MatF& b, MatF& out) {
  TFACC_CHECK_ARG(a.cols() == b.cols());
  TFACC_CHECK_ARG(out.rows() == a.rows() && out.cols() == b.rows());
  switch (selected()) {
    case Kind::kScalar:
      gemm_nt_scalar(a, b, out);
      return;
    case Kind::kBlocked:
    case Kind::kSimd:
      // The f32 reduction must keep one accumulator in ascending-p order to
      // stay bit-identical, so the "fast" kinds share the blocked layout.
      gemm_nt_blocked_f32(a, b, out);
      return;
  }
}

void gemm_nt_i8_into(const MatI8& a, const MatI8& b, MatI32& out) {
  TFACC_CHECK_ARG(a.cols() == b.cols());
  TFACC_CHECK_ARG(out.rows() == a.rows() && out.cols() == b.rows());
  switch (selected()) {
    case Kind::kScalar:
      gemm_nt_scalar(a, b, out);
      return;
    case Kind::kBlocked:
      gemm_nt_blocked(a, b, out);
      return;
    case Kind::kSimd:
#if TFACC_KERNELS_X86
      if (cpu_has_avx2()) {
        gemm_nt_i8_avx2(a, b, out);
        return;
      }
      gemm_nt_i8_sse2(a, b, out);
      return;
#elif TFACC_KERNELS_NEON
      gemm_nt_i8_neon(a, b, out);
      return;
#else
      gemm_nt_blocked(a, b, out);
      return;
#endif
  }
}

namespace {

void gemm_i8_packed_dispatch(const MatI8& a, const PackedI8& bp,
                             const std::int32_t* bias, MatI32& out) {
  TFACC_CHECK_ARG(a.cols() == bp.k);
  TFACC_CHECK_ARG(out.rows() == a.rows() && out.cols() == bp.n);
  switch (selected()) {
    case Kind::kScalar:
      gemm_packed_scalar(a, bp, bias, out);
      return;
    case Kind::kBlocked:
      gemm_packed_blocked(a, bp, bias, out);
      return;
    case Kind::kSimd:
#if TFACC_KERNELS_X86
      if (cpu_has_avx2()) {
        gemm_i8_packed_avx2(a, bp, bias, out);
        return;
      }
      gemm_i8_packed_sse2(a, bp, bias, out);
      return;
#elif TFACC_KERNELS_NEON
      gemm_i8_packed_neon(a, bp, bias, out);
      return;
#else
      gemm_packed_blocked(a, bp, bias, out);
      return;
#endif
  }
}

}  // namespace

void gemm_i8_packed_into(const MatI8& a, const PackedI8& bp, MatI32& out) {
  gemm_i8_packed_dispatch(a, bp, nullptr, out);
}

void gemm_i8_packed_bias_into(const MatI8& a, const PackedI8& bp,
                              const std::vector<std::int32_t>& bias,
                              MatI32& out) {
  TFACC_CHECK_ARG(static_cast<int>(bias.size()) == bp.n);
  gemm_i8_packed_dispatch(a, bp, bias.data(), out);
}

void gemm_i16_packed_into(const MatI16& a, const PackedI16& bp, MatI32& out) {
  TFACC_CHECK_ARG(a.cols() == bp.k);
  TFACC_CHECK_ARG(out.rows() == a.rows() && out.cols() == bp.n);
  switch (selected()) {
    case Kind::kScalar:
      gemm_packed_scalar(a, bp, nullptr, out);
      return;
    case Kind::kBlocked:
      gemm_packed_blocked(a, bp, nullptr, out);
      return;
    case Kind::kSimd:
#if TFACC_KERNELS_X86
      if (cpu_has_avx2()) {
        gemm_i16_packed_avx2(a, bp, out);
        return;
      }
#elif TFACC_KERNELS_NEON
      gemm_i16_packed_neon(a, bp, out);
      return;
#endif
      gemm_packed_blocked(a, bp, nullptr, out);
      return;
  }
}

void requantize_i8_into(const MatI32& acc, std::int32_t mantissa, int shift,
                        MatI8& out) {
  TFACC_CHECK_ARG(out.rows() == acc.rows() && out.cols() == acc.cols());
  switch (selected()) {
    case Kind::kScalar:
      requantize_scalar(acc, mantissa, shift, out);
      return;
    case Kind::kBlocked:
      requantize_rows(acc, mantissa, shift, out);
      return;
    case Kind::kSimd:
#if TFACC_KERNELS_X86
      // The branchless AVX2 reformulation needs shift ≥ 1, and its emulated
      // arithmetic shift needs bias ≤ 2^47 (see the kernel's comment).
      if (cpu_has_avx2() && shift >= 1 && shift <= 48) {
        requantize_i8_avx2(acc, mantissa, shift, out);
        return;
      }
#endif
      requantize_rows(acc, mantissa, shift, out);
      return;
  }
}

void requantize_i16_into(const MatI32& acc, std::int32_t mantissa, int shift,
                         MatI16& out) {
  TFACC_CHECK_ARG(out.rows() == acc.rows() && out.cols() == acc.cols());
  switch (selected()) {
    case Kind::kScalar:
      requantize_scalar(acc, mantissa, shift, out);
      return;
    case Kind::kBlocked:
      requantize_rows(acc, mantissa, shift, out);
      return;
    case Kind::kSimd:
#if TFACC_KERNELS_X86
      if (cpu_has_avx2() && shift >= 1 && shift <= 48) {
        requantize_i16_avx2(acc, mantissa, shift, out);
        return;
      }
#endif
      requantize_rows(acc, mantissa, shift, out);
      return;
  }
}

void layernorm_stats(const std::int16_t* g, int n, std::int64_t* sum,
                     std::int64_t* sumsq) {
  TFACC_CHECK_ARG(n >= 0);
  switch (selected()) {
    case Kind::kScalar:
      layernorm_stats_scalar(g, n, sum, sumsq);
      return;
    case Kind::kBlocked:
      layernorm_stats_blocked(g, n, sum, sumsq);
      return;
    case Kind::kSimd:
#if TFACC_KERNELS_X86
      if (cpu_has_avx2()) {
        layernorm_stats_avx2(g, n, sum, sumsq);
        return;
      }
#endif
      layernorm_stats_blocked(g, n, sum, sumsq);
      return;
  }
}

void layernorm_finish_into(const std::int16_t* g, int n, std::int64_t sum,
                           std::int32_t rs_mantissa, int norm_shift,
                           int gamma_shift, const std::int32_t* gq,
                           const std::int32_t* bq, std::int8_t* out) {
  TFACC_CHECK_ARG(n >= 0);
  switch (selected()) {
    case Kind::kScalar:
    case Kind::kBlocked:
      // The finish loop is per-element with no reduction — nothing to block,
      // so kBlocked shares the scalar reference loop.
      layernorm_finish_scalar(g, n, sum, rs_mantissa, norm_shift, gamma_shift,
                              gq, bq, out);
      return;
    case Kind::kSimd:
#if TFACC_KERNELS_X86
      // t = n·g − sum must fit the int32 low dword (n ≤ 2¹⁴ bounds |t| ≤ 2³⁰)
      // and both emulated arithmetic shifts need 1 ≤ s ≤ 48 (see requantize).
      if (cpu_has_avx2() && n <= 16384 && norm_shift >= 1 && norm_shift <= 48 &&
          gamma_shift >= 1 && gamma_shift <= 48) {
        layernorm_finish_avx2(g, n, sum, rs_mantissa, norm_shift, gamma_shift,
                              gq, bq, out);
        return;
      }
#endif
      layernorm_finish_scalar(g, n, sum, rs_mantissa, norm_shift, gamma_shift,
                              gq, bq, out);
      return;
  }
}

}  // namespace tfacc::kernels
