// Blocked / SIMD GEMM microkernels behind a runtime-checked dispatch table
// (PR 8).
//
// Three implementations of every GEMM, selectable per process:
//
//   kind      | implementation
//   ----------|------------------------------------------------------------
//   kScalar   | the original tensor/ops triple loops, kept verbatim as the
//             | reference semantics (and the perf baseline for the 2× gate)
//   kBlocked  | plain C++, cache-blocked + unrolled; always available
//   kSimd     | intrinsics (AVX2 / SSE2 / NEON) chosen by a *runtime* CPU
//             | check — the binary is compiled without -march so it runs
//             | anywhere; unsupported hosts fall back to kBlocked per op
//
// Selection: `TFACC_KERNEL=scalar|blocked|simd` (read once at first use),
// overridable with set_kind() for A/B benches and tests. Default is kSimd.
//
// Bit-identity contract (enforced by tests/test_kernels.cpp and the
// cross-backend equivalence suites):
//  * Integer kernels (int8→int32, int16→int32) are exact — integer addition
//    is associative, so any blocking/vectorization reorder is bit-identical.
//    int16 inputs must keep |Σ a·b| within int32 (quantized values do).
//  * Float kernels preserve the scalar path's per-element summation order
//    (ascending p, one accumulator per output element, no FMA contraction),
//    so all three kinds produce bit-identical floats — tolerance 0, pinned
//    explicitly in the tests. This is why the f32 Q·Kᵀ kernel vectorizes
//    across output columns rather than across the reduction.
//
// The *_into kernels write a pre-shaped `out` and perform no allocation —
// they are the hot-path seam under decode_step_batch.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/matrix.hpp"
#include "tensor/pack.hpp"

namespace tfacc::kernels {

enum class Kind { kScalar, kBlocked, kSimd };

const char* kind_name(Kind kind);

/// Parse "scalar" | "blocked" | "simd"; returns false on anything else.
bool parse_kind(const char* spec, Kind* out);

/// The process-wide selected kernel (TFACC_KERNEL env var, default simd).
Kind selected();

/// Override the selected kernel (benches/tests; atomic, any thread).
void set_kind(Kind kind);

/// Re-read TFACC_KERNEL and make it the selection. Throws CheckError on an
/// unparseable value. Returns the new selection.
Kind refresh_from_env();

/// True when this host has a vector unit the kSimd paths can use.
bool simd_available();

/// Host vector capability, for the BENCH_*.json host stanza and the
/// perf-gate capability match: "avx2" | "sse2" | "neon" | "generic".
const char* capability();

// --- Dispatched GEMMs (out must be pre-shaped; overwritten, no alloc) ------

/// C = A·B, float. Bit-identical across kinds (fixed summation order).
void gemm_f32_into(const MatF& a, const MatF& b, MatF& out);

/// C = A·B, int8 operands, int32 accumulation. Exact.
void gemm_i8_into(const MatI8& a, const MatI8& b, MatI32& out);

/// C = A·B, int16 operands, int32 accumulation. Exact within int32 range.
void gemm_i16_into(const MatI16& a, const MatI16& b, MatI32& out);

/// C = A·Bᵀ, float (attention scores). Scalar summation order in all kinds.
void gemm_nt_f32_into(const MatF& a, const MatF& b, MatF& out);

/// C = A·Bᵀ, int8 operands, int32 accumulation. Exact.
void gemm_nt_i8_into(const MatI8& a, const MatI8& b, MatI32& out);

// --- Packed-B GEMMs (B pre-packed at weight-load time, tensor/pack.hpp) ----

/// C = A·B with B packed. Exact (identical to gemm_i8 on unpack(bp)).
void gemm_i8_packed_into(const MatI8& a, const PackedI8& bp, MatI32& out);

/// C = bias ⊕ A·B with B packed — the bias seeds the accumulator, which is
/// exactly add_bias_i32(gemm_i8(a, b), bias) in one pass.
void gemm_i8_packed_bias_into(const MatI8& a, const PackedI8& bp,
                              const std::vector<std::int32_t>& bias,
                              MatI32& out);

/// C = A·B with B packed, int16 operands. Exact within int32 range.
void gemm_i16_packed_into(const MatI16& a, const PackedI16& bp, MatI32& out);

// --- Dispatched requantization ---------------------------------------------
// out = saturate(round((acc · mantissa) >> shift)) per element — the hardware
// requantizer (FixedPointScale::apply_i8/apply_i16) over a whole accumulator
// matrix. The rounding is half-away-from-zero, exactly like
// rounding_shift_right; all kinds are bit-identical (the AVX2 path uses a
// branchless reformulation proven equal for shift ≥ 1, scalar otherwise).

/// out(r,c) = FixedPointScale{mantissa, shift}.apply_i8(acc(r,c)).
void requantize_i8_into(const MatI32& acc, std::int32_t mantissa, int shift,
                        MatI8& out);

/// out(r,c) = FixedPointScale{mantissa, shift}.apply_i16(acc(r,c)).
void requantize_i16_into(const MatI32& acc, std::int32_t mantissa, int shift,
                         MatI16& out);

// --- Dispatched LayerNorm row kernels --------------------------------------
// The fixed-point LayerNorm datapath of hwarith/layernorm_unit.cpp, split
// into its two row loops so the hot serve path can run them blocked/SIMD.
// Integer-exact in every kind: the stats loop is a pure integer reduction
// (associative), and the finish loop is per-element independent — the AVX2
// variant reuses the requantizer's branchless rounding-shift reformulation,
// proven equal for 1 <= shift <= 48 (blocked fallback otherwise).

/// ΣG and ΣG² of one n-wide INT16 row (Fig. 7 step 1 accumulators).
void layernorm_stats(const std::int16_t* g, int n, std::int64_t* sum,
                     std::int64_t* sumsq);

/// The γ/β finish loop of LayerNormUnit::finish_row, per element j:
///   t      = n·g[j] − sum
///   norm   = rounding_shift_right(t · rs_mantissa, norm_shift)
///   scaled = rounding_shift_right(norm · gq[j], gamma_shift)
///   out[j] = saturate_i8(scaled + bq[j])
/// `norm_shift` may be <= 0 (a left shift), exactly like the scalar loop.
void layernorm_finish_into(const std::int16_t* g, int n, std::int64_t sum,
                           std::int32_t rs_mantissa, int norm_shift,
                           int gamma_shift, const std::int32_t* gq,
                           const std::int32_t* bq, std::int8_t* out);

}  // namespace tfacc::kernels
