// Dense matrix kernels used by both the reference model (float) and the
// quantized/accelerator models (int8 → int32).
#pragma once

#include <cstdint>

#include "common/random.hpp"
#include "tensor/matrix.hpp"

namespace tfacc {

// --- GEMM ------------------------------------------------------------------

/// C = A·B with float accumulation. A is m×k, B is k×n, C is m×n.
MatF gemm(const MatF& a, const MatF& b);

/// C = A·B with int32 accumulation over int8 operands (the SA datapath).
MatI32 gemm_i8(const MatI8& a, const MatI8& b);

/// C = A·B with int32 accumulation over int16 operands (marian-style
/// 16-bit quantization; callers must keep |Σ a·b| within int32).
MatI32 gemm_i16(const MatI16& a, const MatI16& b);

/// C = A·Bᵀ (float). Used by attention scores Q·Kᵀ.
MatF gemm_nt(const MatF& a, const MatF& b);

/// C = A·Bᵀ with int32 accumulation over int8 operands.
MatI32 gemm_nt_i8(const MatI8& a, const MatI8& b);

/// C = Aᵀ·B (float). The weight-gradient shape dW = Xᵀ·dY in backprop.
MatF gemm_tn(const MatF& a, const MatF& b);

// --- Structure ---------------------------------------------------------------

template <typename T>
Matrix<T> transpose(const Matrix<T>& a) {
  Matrix<T> out(a.cols(), a.rows());
  for (int r = 0; r < a.rows(); ++r)
    for (int c = 0; c < a.cols(); ++c) out(c, r) = a(r, c);
  return out;
}

/// Horizontally concatenate blocks of equal row count: [a | b | ...].
template <typename T>
Matrix<T> hconcat(const std::vector<Matrix<T>>& blocks) {
  TFACC_CHECK_ARG(!blocks.empty());
  int cols = 0;
  for (const auto& b : blocks) {
    TFACC_CHECK_ARG_MSG(b.rows() == blocks.front().rows(),
                        "hconcat: mismatched row counts");
    cols += b.cols();
  }
  Matrix<T> out(blocks.front().rows(), cols);
  int c0 = 0;
  for (const auto& b : blocks) {
    out.set_block(0, c0, b);
    c0 += b.cols();
  }
  return out;
}

/// Split a matrix into equal-width column blocks (Fig. 4 partitioning).
template <typename T>
std::vector<Matrix<T>> split_cols(const Matrix<T>& a, int block_cols) {
  TFACC_CHECK_ARG_MSG(block_cols > 0 && a.cols() % block_cols == 0,
                      "cols=" << a.cols() << " block=" << block_cols);
  std::vector<Matrix<T>> out;
  out.reserve(a.cols() / block_cols);
  for (int c0 = 0; c0 < a.cols(); c0 += block_cols)
    out.push_back(a.block(0, c0, a.rows(), block_cols));
  return out;
}

// --- Elementwise -------------------------------------------------------------

/// out = a + b (same shape).
template <typename T>
Matrix<T> add(const Matrix<T>& a, const Matrix<T>& b) {
  TFACC_CHECK_ARG(a.same_shape(b));
  Matrix<T> out(a.rows(), a.cols());
  for (int r = 0; r < a.rows(); ++r)
    for (int c = 0; c < a.cols(); ++c) out(r, c) = a(r, c) + b(r, c);
  return out;
}

/// Add a length-cols bias row vector to every row.
MatF add_bias(const MatF& a, const std::vector<float>& bias);

/// Add an int32 bias row vector to an int32 accumulator matrix.
MatI32 add_bias_i32(const MatI32& a, const std::vector<std::int32_t>& bias);

/// Elementwise max(x, 0).
MatF relu(const MatF& a);
MatI32 relu_i32(const MatI32& a);

/// Column sums (bias-gradient shape).
std::vector<float> col_sums(const MatF& a);

/// dst += src (same shape), in place.
void accumulate(MatF& dst, const MatF& src);
void accumulate(std::vector<float>& dst, const std::vector<float>& src);

// --- Initialization ----------------------------------------------------------

/// Fill with uniform floats in [lo, hi).
void fill_uniform(MatF& m, Rng& rng, float lo, float hi);

/// Fill with normal(mean, stddev) floats.
void fill_normal(MatF& m, Rng& rng, float mean, float stddev);

/// Fill with uniform int8 in [lo, hi].
void fill_uniform_i8(MatI8& m, Rng& rng, int lo = -128, int hi = 127);

}  // namespace tfacc
