#include "tensor/compare.hpp"

#include <cmath>

namespace tfacc {

double max_abs_diff(const MatF& a, const MatF& b) {
  TFACC_CHECK_ARG(a.same_shape(b));
  double m = 0.0;
  for (int r = 0; r < a.rows(); ++r)
    for (int c = 0; c < a.cols(); ++c)
      m = std::max(m, std::abs(static_cast<double>(a(r, c)) - b(r, c)));
  return m;
}

double mse(const MatF& a, const MatF& b) {
  TFACC_CHECK_ARG(a.same_shape(b));
  if (a.size() == 0) return 0.0;
  double acc = 0.0;
  for (int r = 0; r < a.rows(); ++r)
    for (int c = 0; c < a.cols(); ++c) {
      const double d = static_cast<double>(a(r, c)) - b(r, c);
      acc += d * d;
    }
  return acc / static_cast<double>(a.size());
}

double cosine_similarity(const MatF& a, const MatF& b) {
  TFACC_CHECK_ARG(a.same_shape(b));
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (int r = 0; r < a.rows(); ++r)
    for (int c = 0; c < a.cols(); ++c) {
      dot += static_cast<double>(a(r, c)) * b(r, c);
      na += static_cast<double>(a(r, c)) * a(r, c);
      nb += static_cast<double>(b(r, c)) * b(r, c);
    }
  if (na == 0.0 && nb == 0.0) return 1.0;
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

}  // namespace tfacc
