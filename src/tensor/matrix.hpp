// A small row-major dense matrix type.
//
// The accelerator operates on 2-D tiles (batch is 1 throughout the paper's
// evaluation), so a matrix — not an N-D tensor — is the natural unit. The
// element type is a template parameter because the same shapes flow through
// the library as float (reference model), int8 (quantized activations and
// weights) and int32 (accumulators).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <vector>

#include "common/check.hpp"
#include "tensor/arena.hpp"

namespace tfacc {

template <typename T>
class Matrix {
 public:
  using value_type = T;

  Matrix() = default;

  /// Create a rows×cols matrix, zero-initialized.
  Matrix(int rows, int cols) : rows_(rows), cols_(cols) {
    TFACC_CHECK_ARG_MSG(rows >= 0 && cols >= 0,
                        "rows=" << rows << " cols=" << cols);
    data_.assign(static_cast<std::size_t>(rows) * cols, T{});
  }

  /// Create from a nested initializer list (row major); rows must be equal
  /// length. Intended for small literals in tests.
  Matrix(std::initializer_list<std::initializer_list<T>> init) {
    rows_ = static_cast<int>(init.size());
    cols_ = rows_ == 0 ? 0 : static_cast<int>(init.begin()->size());
    data_.reserve(static_cast<std::size_t>(rows_) * cols_);
    for (const auto& row : init) {
      TFACC_CHECK_ARG_MSG(static_cast<int>(row.size()) == cols_,
                          "ragged initializer list");
      data_.insert(data_.end(), row.begin(), row.end());
    }
  }

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  T& at(int r, int c) {
    TFACC_CHECK_ARG_MSG(r >= 0 && r < rows_ && c >= 0 && c < cols_,
                        "(" << r << ',' << c << ") out of " << rows_ << 'x'
                            << cols_);
    return data_[static_cast<std::size_t>(r) * cols_ + c];
  }
  const T& at(int r, int c) const {
    TFACC_CHECK_ARG_MSG(r >= 0 && r < rows_ && c >= 0 && c < cols_,
                        "(" << r << ',' << c << ") out of " << rows_ << 'x'
                            << cols_);
    return data_[static_cast<std::size_t>(r) * cols_ + c];
  }

  /// Unchecked element access for inner loops (bounds are loop invariants).
  T& operator()(int r, int c) {
    return data_[static_cast<std::size_t>(r) * cols_ + c];
  }
  const T& operator()(int r, int c) const {
    return data_[static_cast<std::size_t>(r) * cols_ + c];
  }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }
  T* row(int r) { return data_.data() + static_cast<std::size_t>(r) * cols_; }
  const T* row(int r) const {
    return data_.data() + static_cast<std::size_t>(r) * cols_;
  }

  void fill(T v) { data_.assign(data_.size(), v); }

  bool same_shape(const Matrix& o) const {
    return rows_ == o.rows_ && cols_ == o.cols_;
  }

  bool operator==(const Matrix& o) const {
    return rows_ == o.rows_ && cols_ == o.cols_ && data_ == o.data_;
  }

  /// Copy a rectangular block [r0, r0+h) × [c0, c0+w) into a new matrix.
  Matrix block(int r0, int c0, int h, int w) const {
    TFACC_CHECK_ARG(r0 >= 0 && c0 >= 0 && h >= 0 && w >= 0);
    TFACC_CHECK_ARG_MSG(r0 + h <= rows_ && c0 + w <= cols_,
                        "block (" << r0 << ',' << c0 << ")+" << h << 'x' << w
                                  << " out of " << rows_ << 'x' << cols_);
    Matrix out(h, w);
    for (int r = 0; r < h; ++r)
      for (int c = 0; c < w; ++c) out(r, c) = (*this)(r0 + r, c0 + c);
    return out;
  }

  /// Append the rows of `src` below the existing rows (same column count).
  /// Row-major storage makes this a single amortized-O(src) tail insert —
  /// the KV caches of incremental decode grow one row per step this way.
  void append_rows(const Matrix& src) {
    TFACC_CHECK_ARG_MSG(src.cols_ == cols_, "append_rows: " << src.cols_
                                                            << " cols onto "
                                                            << cols_);
    data_.insert(data_.end(), src.data_.begin(), src.data_.end());
    rows_ += src.rows_;
  }

  /// Write `src` into this matrix at offset (r0, c0).
  void set_block(int r0, int c0, const Matrix& src) {
    TFACC_CHECK_ARG(r0 >= 0 && c0 >= 0);
    TFACC_CHECK_ARG_MSG(r0 + src.rows() <= rows_ && c0 + src.cols() <= cols_,
                        "set_block overflows destination");
    for (int r = 0; r < src.rows(); ++r)
      for (int c = 0; c < src.cols(); ++c)
        (*this)(r0 + r, c0 + c) = src(r, c);
  }

 private:
  int rows_ = 0;
  int cols_ = 0;
  // Storage recycles through the thread-local arena (tensor/arena.hpp): the
  // decode hot path re-creates same-shaped temporaries every step, and a
  // warm pool serves them without heap traffic. Pooled blocks are 64-byte
  // aligned, which the packed GEMM kernels rely on.
  PoolVec<T> data_;
};

using MatF = Matrix<float>;
using MatI8 = Matrix<std::int8_t>;
using MatI16 = Matrix<std::int16_t>;
using MatI32 = Matrix<std::int32_t>;

}  // namespace tfacc
