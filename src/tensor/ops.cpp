#include "tensor/ops.hpp"

#include "tensor/kernels.hpp"

namespace tfacc {

// The GEMM entry points delegate to the PR 8 dispatch table
// (tensor/kernels.hpp): TFACC_KERNEL selects scalar / blocked / SIMD, and
// every kind is bit-identical (integer accumulation is exact; the float
// kernels pin the scalar summation order).

MatF gemm(const MatF& a, const MatF& b) {
  TFACC_CHECK_ARG_MSG(a.cols() == b.rows(), "gemm: " << a.rows() << 'x'
                                                     << a.cols() << " * "
                                                     << b.rows() << 'x'
                                                     << b.cols());
  MatF out(a.rows(), b.cols());
  kernels::gemm_f32_into(a, b, out);
  return out;
}

MatI32 gemm_i8(const MatI8& a, const MatI8& b) {
  TFACC_CHECK_ARG_MSG(a.cols() == b.rows(), "gemm_i8: " << a.rows() << 'x'
                                                        << a.cols() << " * "
                                                        << b.rows() << 'x'
                                                        << b.cols());
  MatI32 out(a.rows(), b.cols());
  kernels::gemm_i8_into(a, b, out);
  return out;
}

MatI32 gemm_i16(const MatI16& a, const MatI16& b) {
  TFACC_CHECK_ARG_MSG(a.cols() == b.rows(), "gemm_i16: " << a.rows() << 'x'
                                                         << a.cols() << " * "
                                                         << b.rows() << 'x'
                                                         << b.cols());
  MatI32 out(a.rows(), b.cols());
  kernels::gemm_i16_into(a, b, out);
  return out;
}

MatF gemm_nt(const MatF& a, const MatF& b) {
  TFACC_CHECK_ARG_MSG(a.cols() == b.cols(), "gemm_nt: inner dims "
                                                << a.cols() << " vs "
                                                << b.cols());
  MatF out(a.rows(), b.rows());
  kernels::gemm_nt_f32_into(a, b, out);
  return out;
}

MatI32 gemm_nt_i8(const MatI8& a, const MatI8& b) {
  TFACC_CHECK_ARG_MSG(a.cols() == b.cols(), "gemm_nt_i8: inner dims "
                                                << a.cols() << " vs "
                                                << b.cols());
  MatI32 out(a.rows(), b.rows());
  kernels::gemm_nt_i8_into(a, b, out);
  return out;
}

MatF gemm_tn(const MatF& a, const MatF& b) {
  TFACC_CHECK_ARG_MSG(a.rows() == b.rows(), "gemm_tn: outer dims "
                                                << a.rows() << " vs "
                                                << b.rows());
  MatF out(a.cols(), b.cols());
  for (int p = 0; p < a.rows(); ++p) {
    const float* arow = a.row(p);
    const float* brow = b.row(p);
    for (int i = 0; i < a.cols(); ++i) {
      float* orow = out.row(i);
      const float av = arow[i];
      for (int j = 0; j < b.cols(); ++j) orow[j] += av * brow[j];
    }
  }
  return out;
}

std::vector<float> col_sums(const MatF& a) {
  std::vector<float> out(static_cast<std::size_t>(a.cols()), 0.0f);
  for (int r = 0; r < a.rows(); ++r) {
    const float* row = a.row(r);
    for (int c = 0; c < a.cols(); ++c)
      out[static_cast<std::size_t>(c)] += row[c];
  }
  return out;
}

void accumulate(MatF& dst, const MatF& src) {
  TFACC_CHECK_ARG(dst.same_shape(src));
  for (int r = 0; r < dst.rows(); ++r)
    for (int c = 0; c < dst.cols(); ++c) dst(r, c) += src(r, c);
}

void accumulate(std::vector<float>& dst, const std::vector<float>& src) {
  TFACC_CHECK_ARG(dst.size() == src.size());
  for (std::size_t i = 0; i < dst.size(); ++i) dst[i] += src[i];
}

MatF add_bias(const MatF& a, const std::vector<float>& bias) {
  TFACC_CHECK_ARG(static_cast<int>(bias.size()) == a.cols());
  MatF out = a;
  for (int r = 0; r < out.rows(); ++r) {
    float* row = out.row(r);
    for (int c = 0; c < out.cols(); ++c) row[c] += bias[c];
  }
  return out;
}

MatI32 add_bias_i32(const MatI32& a, const std::vector<std::int32_t>& bias) {
  TFACC_CHECK_ARG(static_cast<int>(bias.size()) == a.cols());
  MatI32 out = a;
  for (int r = 0; r < out.rows(); ++r) {
    std::int32_t* row = out.row(r);
    for (int c = 0; c < out.cols(); ++c) row[c] += bias[c];
  }
  return out;
}

MatF relu(const MatF& a) {
  MatF out = a;
  for (int r = 0; r < out.rows(); ++r)
    for (int c = 0; c < out.cols(); ++c)
      if (out(r, c) < 0.0f) out(r, c) = 0.0f;
  return out;
}

MatI32 relu_i32(const MatI32& a) {
  MatI32 out = a;
  for (int r = 0; r < out.rows(); ++r)
    for (int c = 0; c < out.cols(); ++c)
      if (out(r, c) < 0) out(r, c) = 0;
  return out;
}

void fill_uniform(MatF& m, Rng& rng, float lo, float hi) {
  for (int r = 0; r < m.rows(); ++r)
    for (int c = 0; c < m.cols(); ++c)
      m(r, c) = static_cast<float>(rng.uniform(lo, hi));
}

void fill_normal(MatF& m, Rng& rng, float mean, float stddev) {
  for (int r = 0; r < m.rows(); ++r)
    for (int c = 0; c < m.cols(); ++c)
      m(r, c) = static_cast<float>(rng.normal(mean, stddev));
}

void fill_uniform_i8(MatI8& m, Rng& rng, int lo, int hi) {
  TFACC_CHECK_ARG(lo >= -128 && hi <= 127 && lo <= hi);
  for (int r = 0; r < m.rows(); ++r)
    for (int c = 0; c < m.cols(); ++c)
      m(r, c) = static_cast<std::int8_t>(rng.uniform_int(lo, hi));
}

}  // namespace tfacc
