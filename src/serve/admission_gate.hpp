// Convoy-free simulated-time admission order (the PR 9 tentpole), hoisted
// out of scheduler.cpp into an annotatable header (PR 10) so the lock
// discipline is checked at compile time by Clang's -Wthread-safety.
//
// Card threads race on the host, but the farm being modeled has every card
// live at once, so "who takes the next request" must follow *simulated*
// time, not host scheduling. The old protocol had each vacant card
// host-block in wait_turn() until it held the global minimum (clock, id) —
// cards with live decode work convoyed behind the slowest sibling's step
// compute. Here admission is reservation-based and a card never blocks
// while it has work:
//
//  * reserve(c, key) posts card c's intent to pop at simulated time `key`.
//    The key is frozen — computed from simulated state only, so it is
//    identical on every host and at every thread count.
//  * Whichever thread next touches the gate and observes that c's
//    (key, id) pair is the strict minimum over every live card's blocking
//    pair resolves the admission: the queue pop runs right there, under
//    the gate mutex, at c's frozen key — pops execute in exact (key, id)
//    order regardless of host scheduling. The outcome is parked in the
//    slot as a Grant.
//  * The card collects its grant with the non-blocking try_consume() at
//    its next drain point; with in-flight work it keeps stepping while the
//    grant is pending and only parks (WorkerPool) when it truly cannot
//    progress. A card with no reservation blocks siblings at its published
//    clock, exactly like the old protocol.
//
// Blocking pair of live card i: (key_i, i) while a reservation is posted
// (pending, granted or held), else (clock_i, i). A pending slot is granted
// iff its pair is strictly below every other live card's pair — the same
// total order wait_turn() enforced, so the admission sequence (and with it
// every per-card cycle ledger) is unchanged from the blocking protocol.
//
// Concurrency contract (machine-checked):
//  * Every slot field is guarded by mu_; all protocol transitions happen
//    under it (TFACC_GUARDED_BY / TFACC_REQUIRES below, compile-time under
//    Clang).
//  * Lock order: mu_ → RequestQueue shard mutexes (scan_locked pops under
//    mu_) and mu_ → WorkerPool::mu_ (on_grant_ unparks the granted card's
//    job under mu_). Neither callee ever takes the gate mutex, so the
//    order is acyclic.
//  * The reachable protocol state space (reserve/try_consume/release/
//    publish/retire × kIdle/kPending/kGranted/kHeld) is explored
//    exhaustively by tools/gate_model_check over every interleaving of
//    small farms — see src/analysis/gate_model.hpp.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "common/thread_annotations.hpp"
#include "serve/request_queue.hpp"

namespace tfacc {

class AdmissionGate {
 public:
  struct Grant {
    RequestQueue::PopOutcome outcome = RequestQueue::PopOutcome::kDrained;
    TranslationRequest req;
    Cycle next_arrival = 0;
  };

  /// `on_grant(c)` fires under the gate mutex whenever card c's reservation
  /// resolves (WorkerPool::unpark hook — see the lock-order note above).
  AdmissionGate(std::size_t n, RequestQueue& queue,
                std::function<void(std::size_t)> on_grant);

  AdmissionGate(const AdmissionGate&) = delete;
  AdmissionGate& operator=(const AdmissionGate&) = delete;

  /// Post card c's intent to pop at simulated time `key`. Raises the card's
  /// clock to the key (a reservation is also a progress publication). Legal
  /// from idle or held (re-reserving right after consuming a grant).
  void reserve(std::size_t c, Cycle key) TFACC_EXCLUDES(mu_);

  /// Collect a resolved reservation. Non-blocking: true moves the grant out
  /// and holds the turn (the slot keeps blocking siblings at its key until
  /// release()/reserve()); false means the reservation is still pending.
  bool try_consume(std::size_t c, Grant* out) TFACC_EXCLUDES(mu_);

  /// Drop a held turn without re-reserving (card is full or done popping).
  void release(std::size_t c) TFACC_EXCLUDES(mu_);

  /// Monotonically raise card c's published clock (end of a step).
  void publish(std::size_t c, Cycle t) TFACC_EXCLUDES(mu_);

  /// Card c is done (no further admissions); scans stop considering it.
  void retire(std::size_t c) TFACC_EXCLUDES(mu_);

 private:
  enum class Phase { kIdle, kPending, kGranted, kHeld };

  struct Slot {
    bool live = true;
    Cycle clock = 0;
    Phase phase = Phase::kIdle;
    Cycle key = 0;
    Grant grant;
  };

  // Resolve at most one admission: if the globally minimal blocking pair
  // belongs to a PENDING slot, pop for it at its frozen key and mark it
  // granted. A granted/held minimum blocks everyone (its pop is already in
  // the total order but its card has not folded it in yet); an idle minimum
  // means that card is mid-step and may still reserve an earlier key.
  void scan_locked() TFACC_REQUIRES(mu_);

  RequestQueue* queue_;
  std::function<void(std::size_t)> on_grant_;
  mutable Mutex mu_;
  std::vector<Slot> slots_ TFACC_GUARDED_BY(mu_);
};

}  // namespace tfacc
