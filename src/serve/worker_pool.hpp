// Persistent host worker pool owned by the Scheduler (PR 9), hoisted out of
// scheduler.cpp into an annotatable header (PR 10): the threads are spawned
// once at construction and reused by every run() (and by the concurrent
// card builds), replacing the old per-run spawn/join. Job i is pinned to
// worker i % threads, so a card's state is only ever touched by one thread
// across park/unpark cycles. A job returns kParked when it cannot progress
// (admission grant pending); unpark(i) makes it runnable again. With one
// effective thread there are no workers at all: run() drives every job
// cooperatively on the calling thread — the forced-serial mode the
// thread-stress test compares against.
//
// Concurrency contract (machine-checked): every mutable scheduling field is
// guarded by mu_ (TFACC_GUARDED_BY below — compile-time under Clang's
// -Wthread-safety). A job body runs with mu_ RELEASED: the worker claims
// the job under the lock (runnable_[j] = 0 makes it the sole owner), drops
// the lock around the invocation, and re-acquires to record the outcome.
// workers_ and threads_ are written only during construction / destruction
// and never resized afterwards, so they need no guard. AdmissionGate's
// grant callback calls unpark() while holding the *gate* mutex — the lock
// order is gate → pool, and no pool code ever calls into the gate while
// holding mu_, so the order is acyclic. std::thread objects are constructed
// nowhere else in the tree (lint rule thread-spawn).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/thread_annotations.hpp"

namespace tfacc {

class WorkerPool {
 public:
  enum class Status { kDone, kParked };
  using Job = std::function<Status()>;

  /// `threads >= 1`; one thread is the cooperative inline mode (no workers
  /// are spawned and run() drives every job on the calling thread).
  explicit WorkerPool(int threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int threads() const {
    return threads_.empty() ? 1 : static_cast<int>(threads_.size());
  }

  /// Run `jobs` to completion (every job returned kDone). Blocks the caller.
  /// Jobs must not throw — wrap them.
  void run(std::vector<Job> jobs) TFACC_EXCLUDES(mu_);

  /// Make a parked job runnable again and wake its worker. Callable from
  /// any thread (the admission gate's grant callback, possibly while that
  /// thread is executing a different job).
  void unpark(std::size_t job) TFACC_EXCLUDES(mu_);

 private:
  struct Worker {
    CondVar cv;
  };

  // Cooperative single-thread mode: round-robin over runnable jobs. All
  // parked with work remaining would be a deadlock — unreachable, because a
  // job only parks on a pending reservation, and the gate grants the
  // minimal pending reservation at every interaction (the grant callback
  // marks its job runnable before the owner can observe it parked);
  // tools/gate_model_check proves deadlock-freedom over every interleaving
  // of the abstracted protocol.
  void run_inline() TFACC_EXCLUDES(mu_);

  void worker_main(std::size_t w) TFACC_EXCLUDES(mu_);

  /// Does worker w own a live, runnable job right now?
  bool has_runnable(std::size_t w) const TFACC_REQUIRES(mu_);

  mutable Mutex mu_;
  CondVar done_cv_;
  std::uint64_t generation_ TFACC_GUARDED_BY(mu_) = 0;
  std::vector<Job> jobs_ TFACC_GUARDED_BY(mu_);
  std::vector<char> live_ TFACC_GUARDED_BY(mu_);
  std::vector<char> runnable_ TFACC_GUARDED_BY(mu_);
  std::size_t remaining_ TFACC_GUARDED_BY(mu_) = 0;
  bool shutdown_ TFACC_GUARDED_BY(mu_) = false;
  std::vector<std::unique_ptr<Worker>> workers_;  // sized once, at spawn
  std::vector<std::thread> threads_;              // ctor spawn / dtor join
};

}  // namespace tfacc
