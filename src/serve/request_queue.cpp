#include "serve/request_queue.hpp"

#include "common/check.hpp"

namespace tfacc {

RequestQueue::RequestQueue(int num_shards)
    : shards_(static_cast<std::size_t>(num_shards)) {
  TFACC_CHECK_ARG_MSG(num_shards >= 1,
                      "num_shards must be >= 1, got " << num_shards);
}

void RequestQueue::push(TranslationRequest req) {
  TFACC_CHECK_MSG(!closed(), "push after close");
  const std::size_t s =
      next_shard_.fetch_add(1, std::memory_order_relaxed) % shards_.size();
  const std::lock_guard<std::mutex> lock(shards_[s].mu);
  shards_[s].q.push_back(std::move(req));
}

void RequestQueue::close() { closed_.store(true, std::memory_order_release); }

bool RequestQueue::try_pop(int shard, TranslationRequest& out) {
  TFACC_CHECK_ARG(shard >= 0 &&
                  shard < static_cast<int>(shards_.size()));
  {
    Shard& own = shards_[static_cast<std::size_t>(shard)];
    const std::lock_guard<std::mutex> lock(own.mu);
    if (!own.q.empty()) {
      out = std::move(own.q.front());
      own.q.pop_front();
      return true;
    }
  }
  // Steal from the most loaded sibling. A victim may drain between the scan
  // and the steal; rescan until a steal lands or everything is empty.
  for (;;) {
    int victim = -1;
    std::size_t victim_load = 0;
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      if (static_cast<int>(s) == shard) continue;
      const std::lock_guard<std::mutex> lock(shards_[s].mu);
      if (shards_[s].q.size() > victim_load) {
        victim_load = shards_[s].q.size();
        victim = static_cast<int>(s);
      }
    }
    if (victim < 0) return false;
    Shard& v = shards_[static_cast<std::size_t>(victim)];
    const std::lock_guard<std::mutex> lock(v.mu);
    if (!v.q.empty()) {
      out = std::move(v.q.back());
      v.q.pop_back();
      return true;
    }
  }
}

std::size_t RequestQueue::pending() const {
  std::size_t n = 0;
  for (const Shard& s : shards_) {
    const std::lock_guard<std::mutex> lock(s.mu);
    n += s.q.size();
  }
  return n;
}

}  // namespace tfacc
