#include "serve/request_queue.hpp"

#include <algorithm>
#include <limits>

#include "common/check.hpp"

namespace tfacc {

RequestQueue::RequestQueue(int num_shards)
    : shards_(static_cast<std::size_t>(num_shards)) {
  TFACC_CHECK_ARG_MSG(num_shards >= 1,
                      "num_shards must be >= 1, got " << num_shards);
}

void RequestQueue::push(TranslationRequest req) {
  TFACC_CHECK_MSG(!closed(), "push after close");
  Shard& shard =
      shards_[next_shard_.fetch_add(1, std::memory_order_relaxed) %
              shards_.size()];
  const MutexLock lock(shard.mu);
  shard.q.push_back(std::move(req));
}

void RequestQueue::close() { closed_.store(true, std::memory_order_release); }

bool RequestQueue::try_pop(int shard, TranslationRequest& out) {
  // "Everything has arrived": reduces to the original owner-front /
  // thief-back pop (the back-most arrived entry IS the back).
  return try_pop(shard, std::numeric_limits<Cycle>::max(), out) ==
         PopOutcome::kPopped;
}

RequestQueue::PopOutcome RequestQueue::try_pop(int shard, Cycle now,
                                               TranslationRequest& out,
                                               Cycle* next_arrival) {
  TFACC_CHECK_ARG(shard >= 0 &&
                  shard < static_cast<int>(shards_.size()));
  {
    Shard& own = shards_[static_cast<std::size_t>(shard)];
    const MutexLock lock(own.mu);
    if (!own.q.empty() && own.q.front().arrival <= now) {
      out = std::move(own.q.front());
      own.q.pop_front();
      return PopOutcome::kPopped;
    }
  }
  // Steal from the most loaded sibling that holds an arrived request. A
  // victim may drain between the scan and the steal; rescan until a steal
  // lands, nothing has arrived, or everything is empty.
  for (;;) {
    int victim = -1;
    std::size_t victim_load = 0;
    bool any_request = false;
    Cycle earliest = std::numeric_limits<Cycle>::max();
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      Shard& sh = shards_[s];
      const MutexLock lock(sh.mu);
      const auto& q = sh.q;
      if (q.empty()) continue;
      any_request = true;
      for (const TranslationRequest& r : q)
        earliest = std::min(earliest, r.arrival);
      if (static_cast<int>(s) == shard) continue;
      // Per-shard FIFO order is arrival-sorted (see header), so the front
      // tells whether anything in the shard has arrived.
      if (q.front().arrival <= now && q.size() > victim_load) {
        victim_load = q.size();
        victim = static_cast<int>(s);
      }
    }
    if (!any_request) return PopOutcome::kDrained;
    if (victim < 0) {
      if (next_arrival != nullptr) *next_arrival = earliest;
      return PopOutcome::kPending;
    }
    Shard& v = shards_[static_cast<std::size_t>(victim)];
    const MutexLock lock(v.mu);
    // Thief-back among eligibles: the back-most entry that has arrived
    // (the plain back once every arrival has passed).
    std::ptrdiff_t idx = -1;
    for (std::size_t i = 0; i < v.q.size(); ++i)
      if (v.q[i].arrival <= now) idx = static_cast<std::ptrdiff_t>(i);
    if (idx >= 0) {
      out = std::move(v.q[static_cast<std::size_t>(idx)]);
      v.q.erase(v.q.begin() + idx);
      return PopOutcome::kPopped;
    }
  }
}

std::size_t RequestQueue::pending() const {
  std::size_t n = 0;
  for (const Shard& s : shards_) {
    const MutexLock lock(s.mu);
    n += s.q.size();
  }
  return n;
}

}  // namespace tfacc
