// Work-stealing request queue in front of the decode farm.
//
// PR 1's BatchRunner dealt sentence i to card i % num_cards statically: a
// card that drew short sentences idled while its neighbors worked through
// long ones. Here every card owns a shard (deque) of the queue; requests are
// dealt round-robin into the shards, a card pops work from the front of its
// own shard, and a card whose shard runs dry steals from the *back* of the
// most loaded sibling — the classic owner-front/thief-back split that keeps
// contention off the common path. The queue itself does not order *when*
// cards pop; the scheduler's simulated-time AdmissionGate does, which makes
// request placement deterministic. Outputs are bit-identical regardless of
// assignment either way (decoding is deterministic per request).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "reference/transformer.hpp"

namespace tfacc {

/// One translation request; `id` is echoed so responses can be matched up
/// (Scheduler uses the source index).
struct TranslationRequest {
  std::uint64_t id = 0;
  TokenSeq src;
};

class RequestQueue {
 public:
  /// One shard per worker (card). Workers are numbered [0, num_shards).
  explicit RequestQueue(int num_shards);

  RequestQueue(const RequestQueue&) = delete;
  RequestQueue& operator=(const RequestQueue&) = delete;

  /// Enqueue a request; requests are dealt round-robin across shards.
  void push(TranslationRequest req);

  /// No more pushes will follow; try_pop returning false is then final.
  void close();
  bool closed() const { return closed_.load(std::memory_order_acquire); }

  /// Pop the next request for worker `shard`: its own shard's front first,
  /// else steal from the back of the most loaded sibling. Returns false only
  /// when every shard is empty at the time of the scan.
  bool try_pop(int shard, TranslationRequest& out);

  /// Requests currently enqueued across all shards (advisory under
  /// concurrency).
  std::size_t pending() const;

 private:
  struct Shard {
    mutable std::mutex mu;
    std::deque<TranslationRequest> q;
  };

  std::vector<Shard> shards_;
  std::atomic<std::uint64_t> next_shard_{0};
  std::atomic<bool> closed_{false};
};

}  // namespace tfacc
