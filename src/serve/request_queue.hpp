// Work-stealing request queue in front of the decode farm.
//
// PR 1's BatchRunner dealt sentence i to card i % num_cards statically: a
// card that drew short sentences idled while its neighbors worked through
// long ones. Here every card owns a shard (deque) of the queue; requests are
// dealt round-robin into the shards, a card pops work from the front of its
// own shard, and a card whose shard runs dry steals from the *back* of the
// most loaded sibling — the classic owner-front/thief-back split that keeps
// contention off the common path. The queue itself does not order *when*
// cards pop; the scheduler's simulated-time AdmissionGate does, which makes
// request placement deterministic. Outputs are bit-identical regardless of
// assignment either way (decoding is deterministic per request).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <vector>

#include "common/thread_annotations.hpp"
#include "reference/transformer.hpp"
#include "sim/timeline.hpp"

namespace tfacc {

/// One translation request; `id` is echoed so responses can be matched up
/// (Scheduler uses the source index). `arrival` is the simulated cycle the
/// request enters the system (0 = a burst present before the run starts);
/// the arrival-aware try_pop overload only hands out arrived requests.
struct TranslationRequest {
  std::uint64_t id = 0;
  TokenSeq src;
  Cycle arrival = 0;
};

class RequestQueue {
 public:
  /// One shard per worker (card). Workers are numbered [0, num_shards).
  explicit RequestQueue(int num_shards);

  RequestQueue(const RequestQueue&) = delete;
  RequestQueue& operator=(const RequestQueue&) = delete;

  /// Enqueue a request; requests are dealt round-robin across shards.
  void push(TranslationRequest req);

  /// No more pushes will follow; try_pop returning false is then final.
  void close();
  bool closed() const { return closed_.load(std::memory_order_acquire); }

  /// Pop the next request for worker `shard`: its own shard's front first,
  /// else steal from the back of the most loaded sibling. Returns false only
  /// when every shard is empty at the time of the scan.
  bool try_pop(int shard, TranslationRequest& out);

  /// What the arrival-aware try_pop found.
  enum class PopOutcome {
    kPopped,   ///< `out` holds an arrived request
    kPending,  ///< requests remain, but none has arrived by `now`
    kDrained,  ///< every shard is empty
  };

  /// Arrival-aware pop at simulated time `now`: only requests with
  /// arrival <= now are eligible. Own-shard front first, else steal the
  /// back-most arrived entry of the most loaded sibling holding one. On
  /// kPending the earliest pending arrival is written to *next_arrival
  /// (when non-null) so an idle card can fast-forward its virtual clock.
  /// Requests must be pushed in non-decreasing arrival order (per-shard
  /// FIFO order then stays arrival-sorted; Scheduler::run enforces this).
  PopOutcome try_pop(int shard, Cycle now, TranslationRequest& out,
                     Cycle* next_arrival = nullptr);

  /// Requests currently enqueued across all shards (advisory under
  /// concurrency).
  std::size_t pending() const;

 private:
  // Shard mutexes are leaves: try_pop locks at most one at a time (scan
  // scopes close before the steal lock opens), and nothing is called out to
  // while one is held.
  struct Shard {
    mutable Mutex mu;
    std::deque<TranslationRequest> q TFACC_GUARDED_BY(mu);
  };

  std::vector<Shard> shards_;
  std::atomic<std::uint64_t> next_shard_{0};
  std::atomic<bool> closed_{false};
};

}  // namespace tfacc
