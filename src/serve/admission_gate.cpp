#include "serve/admission_gate.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"

namespace tfacc {

AdmissionGate::AdmissionGate(std::size_t n, RequestQueue& queue,
                             std::function<void(std::size_t)> on_grant)
    : queue_(&queue), on_grant_(std::move(on_grant)), slots_(n) {}

void AdmissionGate::reserve(std::size_t c, Cycle key) {
  const MutexLock lock(mu_);
  Slot& s = slots_[c];
  TFACC_CHECK(s.phase == Phase::kIdle || s.phase == Phase::kHeld);
  s.key = std::max(key, s.clock);
  s.clock = s.key;
  s.phase = Phase::kPending;
  scan_locked();
}

bool AdmissionGate::try_consume(std::size_t c, Grant* out) {
  const MutexLock lock(mu_);
  Slot& s = slots_[c];
  if (s.phase != Phase::kGranted) {
    TFACC_CHECK(s.phase == Phase::kPending);
    return false;
  }
  *out = std::move(s.grant);
  s.phase = Phase::kHeld;
  return true;
}

void AdmissionGate::release(std::size_t c) {
  const MutexLock lock(mu_);
  Slot& s = slots_[c];
  TFACC_CHECK(s.phase == Phase::kHeld);
  s.phase = Phase::kIdle;
  scan_locked();
}

void AdmissionGate::publish(std::size_t c, Cycle t) {
  const MutexLock lock(mu_);
  slots_[c].clock = std::max(slots_[c].clock, t);
  scan_locked();
}

void AdmissionGate::retire(std::size_t c) {
  const MutexLock lock(mu_);
  slots_[c].live = false;
  slots_[c].phase = Phase::kIdle;
  scan_locked();
}

void AdmissionGate::scan_locked() {
  std::size_t min_c = slots_.size();
  Cycle min_k = 0;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const Slot& s = slots_[i];
    if (!s.live) continue;
    const Cycle k = s.phase == Phase::kIdle ? s.clock : s.key;
    if (min_c == slots_.size() || k < min_k) {
      min_c = i;
      min_k = k;
    }
  }
  if (min_c == slots_.size()) return;
  Slot& s = slots_[min_c];
  if (s.phase != Phase::kPending) return;
  s.grant.outcome = queue_->try_pop(static_cast<int>(min_c), s.key,
                                    s.grant.req, &s.grant.next_arrival);
  s.phase = Phase::kGranted;
  if (on_grant_) on_grant_(min_c);
}

}  // namespace tfacc
