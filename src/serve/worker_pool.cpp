#include "serve/worker_pool.hpp"

#include <utility>

#include "common/check.hpp"

namespace tfacc {

WorkerPool::WorkerPool(int threads) {
  TFACC_CHECK(threads >= 1);
  if (threads == 1) return;  // inline cooperative mode
  workers_.resize(static_cast<std::size_t>(threads));
  for (auto& w : workers_) w = std::make_unique<Worker>();
  threads_.reserve(workers_.size());
  for (std::size_t w = 0; w < workers_.size(); ++w)
    threads_.emplace_back([this, w] { worker_main(w); });
}

WorkerPool::~WorkerPool() {
  {
    const MutexLock lock(mu_);
    shutdown_ = true;
  }
  for (auto& w : workers_) w->cv.notify_all();
  for (std::thread& t : threads_) t.join();
}

void WorkerPool::run(std::vector<Job> jobs) {
  if (jobs.empty()) return;
  {
    const MutexLock lock(mu_);
    jobs_ = std::move(jobs);
    live_.assign(jobs_.size(), 1);
    runnable_.assign(jobs_.size(), 1);
    remaining_ = jobs_.size();
    ++generation_;
  }
  if (threads_.empty()) {
    run_inline();
  } else {
    for (auto& w : workers_) w->cv.notify_all();
    const MutexLock lock(mu_);
    while (remaining_ != 0) done_cv_.wait(mu_);
  }
  const MutexLock lock(mu_);
  jobs_.clear();
}

void WorkerPool::unpark(std::size_t job) {
  std::size_t w = 0;
  {
    const MutexLock lock(mu_);
    if (job >= runnable_.size() || !live_[job]) return;
    runnable_[job] = 1;
    if (threads_.empty()) return;
    w = job % workers_.size();
  }
  workers_[w]->cv.notify_all();
}

void WorkerPool::run_inline() {
  std::size_t next = 0;
  for (;;) {
    std::size_t j = 0;
    Job* job = nullptr;
    {
      const MutexLock lock(mu_);
      if (remaining_ == 0) return;
      std::size_t found = jobs_.size();
      for (std::size_t k = 0; k < jobs_.size(); ++k) {
        const std::size_t cand = (next + k) % jobs_.size();
        if (live_[cand] && runnable_[cand]) {
          found = cand;
          break;
        }
      }
      TFACC_CHECK_MSG(found < jobs_.size(),
                      "worker pool deadlock: every live job is parked");
      j = found;
      // Claiming the runnable flag makes this thread the job's sole owner,
      // and jobs_ is never resized during a generation, so the invocation
      // below is safe outside the lock.
      runnable_[j] = 0;
      job = &jobs_[j];
    }
    next = j + 1;
    const Status st = (*job)();
    if (st == Status::kDone) {
      const MutexLock lock(mu_);
      live_[j] = 0;
      --remaining_;
    }
  }
}

bool WorkerPool::has_runnable(std::size_t w) const {
  for (std::size_t cand = w; cand < jobs_.size(); cand += workers_.size())
    if (live_[cand] && runnable_[cand]) return true;
  return false;
}

void WorkerPool::worker_main(std::size_t w) {
  Worker& self = *workers_[w];
  MutexLock lock(mu_);
  std::uint64_t seen = 0;
  for (;;) {
    while (!shutdown_ && generation_ == seen) self.cv.wait(mu_);
    if (shutdown_) return;
    seen = generation_;
    for (;;) {
      std::size_t j = jobs_.size();
      bool any_live = false;
      for (std::size_t cand = w; cand < jobs_.size();
           cand += workers_.size()) {
        if (!live_[cand]) continue;
        any_live = true;
        if (runnable_[cand]) {
          j = cand;
          break;
        }
      }
      if (!any_live) break;  // this generation is done for this worker
      if (j == jobs_.size()) {
        // Every job this worker owns is parked: sleep until one is
        // unparked (or the pool shuts down).
        while (!shutdown_ && !has_runnable(w)) self.cv.wait(mu_);
        if (shutdown_) return;
        continue;
      }
      // Sole ownership as in run_inline(): claim under the lock, invoke
      // with it released so sibling workers keep scheduling.
      runnable_[j] = 0;
      Job* job = &jobs_[j];
      lock.Unlock();
      const Status st = (*job)();
      lock.Lock();
      if (st == Status::kDone) {
        live_[j] = 0;
        if (--remaining_ == 0) done_cv_.notify_all();
      }
    }
  }
}

}  // namespace tfacc
