// Iteration-level continuous batching over a farm of accelerator cards —
// the serving architecture marian-dev uses for production NMT, applied to
// the paper's card.
//
// PR 2's KV-cached decode shrank every decode step to a single-row ResBlock
// invocation, which leaves the systolic array weight-load bound (a 1-row
// pass under a 64-cycle tile load). The Scheduler restores full tiles by
// packing: each card keeps up to `slots_per_card` live hypotheses; every
// step-loop iteration gathers their next-token rows into one stacked matrix,
// runs ONE batched cached-MHA/FFN ResBlock pass per decoder sublayer
// (Transformer::decode_step_batch), and scatters the logits rows back to
// each sentence's search state machine. Sentences finish at ragged lengths;
// a finished sentence vacates its slot and the card immediately refills from
// the work-stealing RequestQueue — no barrier per batch.
//
// Invariants:
//  * Outputs are bit-identical to serial per-sentence decode (greedy and
//    beam) on every backend: all packed ops are row-independent and the
//    serial translate_* loops drive the same GreedySearch/BeamSearch
//    machines.
//  * Which card serves a request is dynamic (work stealing) yet
//    deterministic: admissions are ordered by the simulated-time
//    AdmissionGate, so per-card cycle ledgers reproduce at any card count
//    on any host.
#pragma once

#include <memory>
#include <vector>

#include "core/backend.hpp"
#include "serve/request_queue.hpp"

namespace tfacc {

class AdmissionGate;  // simulated-time admission (serve/admission_gate.hpp)
class WorkerPool;     // persistent host worker pool (serve/worker_pool.hpp)

/// Which per-card execution engine the scheduler drives. The accelerator is
/// the deployment target; the functional backends exist so the bit-identity
/// guarantee can be pinned on all three.
enum class ServeBackend { kAccelerator, kQuantized, kReference };

struct SchedulerConfig {
  int num_cards = 1;       ///< worker threads, one card each
  int max_len = 32;        ///< decode length cap per sentence
  int slots_per_card = 8;  ///< max hypothesis rows packed into one step
  /// 0 = greedy decode; >= 1 = beam search of this width (a sentence's beam
  /// hypotheses become sibling slots of the packed step).
  int beam_size = 0;
  float length_penalty = 0.6f;  ///< GNMT alpha (beam mode)
  DecodeMode decode = DecodeMode::kKvCache;
  ServeBackend backend = ServeBackend::kAccelerator;
  AcceleratorConfig accel{};
  SoftmaxImpl softmax = SoftmaxImpl::kHardware;
  /// Host worker threads driving the cards (the persistent pool). 0 = auto:
  /// min(num_cards, hardware_concurrency). Values above num_cards are
  /// clamped (a card is single-threaded); 1 runs every card cooperatively
  /// on the calling thread — the forced-serial mode the thread-stress test
  /// compares against. Admission order, outputs and per-card cycle ledgers
  /// are bit-identical at every setting.
  int host_threads = 0;

  /// Slots one sentence may occupy (1 for greedy, beam_size for beam).
  int slot_demand() const { return beam_size < 1 ? 1 : beam_size; }
  void validate() const;
};

/// Step-loop activity of one card.
struct CardStepStats {
  long steps = 0;        ///< packed step-loop iterations (>= 1 decode row)
  long packed_rows = 0;  ///< Σ hypothesis rows over all steps
  int sentences = 0;     ///< sentences this card decoded
  /// Prefill (encoder) chunks this card spliced into its step ledgers
  /// (0 with eager encode or full-recompute decode).
  long prefill_chunks = 0;
  /// rows_hist[k] = steps that packed exactly k rows (k in [1, slots]).
  std::vector<long> rows_hist;
  /// Request ids this card admitted, in admission order — the determinism
  /// witness the thread-stress test compares across host-thread counts.
  std::vector<std::uint64_t> admitted;
};

/// Outcome of one Scheduler::run call.
struct ScheduleReport {
  std::vector<TokenSeq> outputs;  ///< outputs[i] decodes sources[i]
  std::vector<AcceleratorStats> per_card;
  std::vector<CardStepStats> per_card_steps;
  double wall_seconds = 0;
  double clock_mhz = 200.0;

  int sentences() const { return static_cast<int>(outputs.size()); }
  /// Simulated cycles of the busiest card: the farm finishes when it does.
  Cycle makespan_cycles() const;
  /// Sum of ResBlock cycles across every card.
  Cycle total_cycles() const;
  /// Farm throughput a real deployment of these cards would sustain.
  double modeled_sentences_per_second() const;
  long packed_steps() const;
  long packed_rows() const;
  /// Mean hypothesis rows per packed step — 1.0 is PR 2's one-row mode,
  /// higher means the SA streams fuller tiles. 0.0 when no step executed.
  double packed_rows_mean() const;
  /// SA-busy fraction of all simulated ResBlock cycles across the farm
  /// (0.0 when nothing ran — never a division by zero).
  double sa_utilization() const;
  /// Per-module busy-cycle aggregates across every card (idle follows as
  /// total_cycles() − busy). Feeds the benches' per-module breakdown.
  Cycle sa_busy_cycles() const;
  Cycle softmax_busy_cycles() const;
  Cycle layernorm_busy_cycles() const;
  /// Σ SA cycles the farm stalled waiting on softmax results — the bubble
  /// the interleaved schedule is meant to shrink.
  Cycle softmax_stall_cycles() const;
  /// Σ SA cycles idle at run/sublayer boundaries (cold weight loads, fused
  /// seam gaps, LayerNorm tails) — the bubble the fused decode-step ledger
  /// is meant to shrink.
  Cycle boundary_stall_cycles() const;
  /// Packed decode steps that were timed as one fused cross-sublayer ledger
  /// (0 when fuse_decode_step is off or the backend is functional-only).
  long fused_steps() const;
  /// Σ cycles live decode rows waited on prefill (encoder) work across the
  /// farm — mixed-step makespan deltas with pack_prefill, whole eager
  /// encoder passes that found live decode slots without it.
  Cycle prefill_stall_cycles() const;
  /// Prefill chunks spliced into step ledgers across the farm.
  long prefill_chunks() const;
};

/// Continuous-batching decode farm. Construction pays the per-card setup
/// (weight copy + INT8 calibration) once; run() may be called repeatedly.
class Scheduler {
 public:
  /// `weights` is copied into every card. `calib_sources` drive the INT8
  /// calibration (identical across cards because calibration is
  /// deterministic); they may be empty for ServeBackend::kReference.
  Scheduler(const TransformerWeights& weights,
            const std::vector<TokenSeq>& calib_sources,
            SchedulerConfig cfg = {});
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  const SchedulerConfig& config() const { return cfg_; }

  /// Translate every source. Outputs are bit-identical to serial decode of
  /// each source alone on the same backend, whatever the packing.
  ScheduleReport run(const std::vector<TokenSeq>& sources);

  /// As above with per-request arrival times (simulated cycles, one per
  /// source, non-decreasing): a card only admits requests that have arrived
  /// by its virtual clock, idling forward to the next arrival when it has
  /// nothing in flight. An empty vector means everything arrives at t=0
  /// (the burst case — identical to run(sources)).
  ScheduleReport run(const std::vector<TokenSeq>& sources,
                     const std::vector<Cycle>& arrivals);

 private:
  struct Card;
  struct CardRun;  // resumable per-card step machine (scheduler.cpp)

  SchedulerConfig cfg_;
  std::vector<std::unique_ptr<Card>> cards_;
  std::unique_ptr<WorkerPool> pool_;
};

}  // namespace tfacc
