#include "serve/scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <optional>
#include <thread>

#include "common/check.hpp"
#include "reference/search.hpp"

namespace tfacc {

void SchedulerConfig::validate() const {
  TFACC_CHECK_ARG_MSG(num_cards >= 1,
                      "num_cards must be >= 1, got " << num_cards);
  TFACC_CHECK_ARG_MSG(max_len >= 1, "max_len must be >= 1, got " << max_len);
  TFACC_CHECK_ARG_MSG(beam_size >= 0,
                      "beam_size must be >= 0, got " << beam_size);
  TFACC_CHECK_ARG_MSG(slots_per_card >= slot_demand(),
                      "slots_per_card must be >= " << slot_demand()
                          << " (one sentence's hypotheses), got "
                          << slots_per_card);
  accel.validate();
}

Cycle ScheduleReport::makespan_cycles() const {
  Cycle m = 0;
  for (const AcceleratorStats& s : per_card)
    m = std::max(m, s.total_cycles());
  return m;
}

Cycle ScheduleReport::total_cycles() const {
  Cycle t = 0;
  for (const AcceleratorStats& s : per_card) t += s.total_cycles();
  return t;
}

double ScheduleReport::modeled_sentences_per_second() const {
  const Cycle makespan = makespan_cycles();
  if (makespan <= 0) return 0.0;
  return sentences() * clock_mhz * 1e6 / static_cast<double>(makespan);
}

long ScheduleReport::packed_steps() const {
  long n = 0;
  for (const CardStepStats& s : per_card_steps) n += s.steps;
  return n;
}

long ScheduleReport::packed_rows() const {
  long n = 0;
  for (const CardStepStats& s : per_card_steps) n += s.packed_rows;
  return n;
}

double ScheduleReport::packed_rows_mean() const {
  const long steps = packed_steps();
  return steps <= 0 ? 0.0
                    : static_cast<double>(packed_rows()) / steps;
}

double ScheduleReport::sa_utilization() const {
  const Cycle total = total_cycles();
  return total == 0 ? 0.0 : static_cast<double>(sa_busy_cycles()) / total;
}

Cycle ScheduleReport::sa_busy_cycles() const {
  Cycle busy = 0;
  for (const AcceleratorStats& s : per_card) busy += s.sa_busy_cycles;
  return busy;
}

Cycle ScheduleReport::softmax_busy_cycles() const {
  Cycle busy = 0;
  for (const AcceleratorStats& s : per_card) busy += s.softmax_busy_cycles;
  return busy;
}

Cycle ScheduleReport::layernorm_busy_cycles() const {
  Cycle busy = 0;
  for (const AcceleratorStats& s : per_card) busy += s.layernorm_busy_cycles;
  return busy;
}

Cycle ScheduleReport::softmax_stall_cycles() const {
  Cycle stall = 0;
  for (const AcceleratorStats& s : per_card) stall += s.softmax_stall_cycles;
  return stall;
}

Cycle ScheduleReport::boundary_stall_cycles() const {
  Cycle stall = 0;
  for (const AcceleratorStats& s : per_card) stall += s.boundary_stall_cycles;
  return stall;
}

long ScheduleReport::fused_steps() const {
  long steps = 0;
  for (const AcceleratorStats& s : per_card) steps += s.fused_steps;
  return steps;
}

// One card: a host model copy, the INT8 quantization of its blocks (keyed by
// weight addresses inside *this* model, hence per-card) and a cycle-level
// simulator. The functional backends skip the parts they do not need.
struct Scheduler::Card {
  Transformer model;
  std::optional<QuantizedTransformer> qt;
  std::optional<Accelerator> acc;

  Card(const TransformerWeights& weights,
       const std::vector<TokenSeq>& calib_sources,
       const SchedulerConfig& cfg)
      : model(weights) {
    if (cfg.backend != ServeBackend::kReference)
      qt.emplace(QuantizedTransformer::build(model, calib_sources,
                                             cfg.max_len, cfg.softmax));
    if (cfg.backend == ServeBackend::kAccelerator) acc.emplace(cfg.accel);
  }
};

/// Conservative simulated-time admission order. Card threads race on the
/// host (and may even be fully serialized on a single CPU), but the farm
/// being modeled has every card live at once, so "who takes the next
/// request" must follow *simulated* time, not host scheduling: a card may
/// admit only while no live sibling sits at a smaller virtual clock (ties
/// break toward the lower card id). Cards publish their clock after every
/// admission and every packed step, so waiters advance promptly. This makes
/// multi-card request placement — and with it every per-card cycle ledger —
/// fully deterministic and host-independent.
class AdmissionGate {
 public:
  explicit AdmissionGate(std::size_t n) : clock_(n, 0), live_(n, true) {}

  /// Monotonically raise card c's virtual clock and wake waiters.
  void publish(std::size_t c, Cycle t) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      clock_[c] = std::max(clock_[c], t);
    }
    cv_.notify_all();
  }

  /// Card c is done (no further admissions); waiters stop considering it.
  void retire(std::size_t c) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      live_[c] = false;
    }
    cv_.notify_all();
  }

  /// Block until card c holds the smallest (clock, id) among live cards.
  void wait_turn(std::size_t c) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return my_turn(c); });
  }

 private:
  bool my_turn(std::size_t c) const {
    for (std::size_t i = 0; i < clock_.size(); ++i) {
      if (i == c || !live_[i]) continue;
      if (clock_[i] < clock_[c] || (clock_[i] == clock_[c] && i < c))
        return false;
    }
    return true;
  }

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Cycle> clock_;
  std::vector<bool> live_;
};

namespace {

// Run `fn(c)` for c in [0, n) on one thread each (or inline when n == 1),
// capturing the first exception so it rethrows on the caller's thread
// instead of std::terminate-ing the process.
template <typename Fn>
void run_per_card(std::size_t n, Fn&& fn) {
  std::exception_ptr error;
  std::mutex error_mu;
  auto guarded = [&](std::size_t c) {
    try {
      fn(c);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(error_mu);
      if (!error) error = std::current_exception();
    }
  };
  if (n == 1) {
    guarded(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(n);
    for (std::size_t c = 0; c < n; ++c) threads.emplace_back(guarded, c);
    for (std::thread& t : threads) t.join();
  }
  if (error) std::rethrow_exception(error);
}

std::unique_ptr<SentenceSearch> make_search(const SchedulerConfig& cfg,
                                            std::optional<DecodeState> state) {
  if (cfg.beam_size < 1)
    return std::make_unique<GreedySearch>(cfg.max_len, std::move(state));
  Transformer::BeamConfig beam;
  beam.beam_size = cfg.beam_size;
  beam.length_penalty = cfg.length_penalty;
  return std::make_unique<BeamSearch>(cfg.max_len, beam, std::move(state));
}

}  // namespace

Scheduler::Scheduler(const TransformerWeights& weights,
                     const std::vector<TokenSeq>& calib_sources,
                     SchedulerConfig cfg)
    : cfg_(cfg) {
  cfg_.validate();
  TFACC_CHECK_ARG_MSG(
      cfg_.backend == ServeBackend::kReference || !calib_sources.empty(),
      "need at least one calibration sentence");
  // Card setups are independent (each copies the weights and calibrates its
  // own quantization), so build them concurrently like run() decodes.
  cards_.resize(static_cast<std::size_t>(cfg_.num_cards));
  run_per_card(cards_.size(), [&](std::size_t c) {
    cards_[c] = std::make_unique<Card>(weights, calib_sources, cfg_);
  });
}

Scheduler::~Scheduler() = default;

ScheduleReport Scheduler::run(const std::vector<TokenSeq>& sources) {
  ScheduleReport rep;
  rep.clock_mhz = cfg_.accel.clock_mhz;
  rep.outputs.resize(sources.size());
  rep.per_card.assign(cards_.size(), AcceleratorStats{});
  rep.per_card_steps.assign(cards_.size(), CardStepStats{});
  for (CardStepStats& s : rep.per_card_steps)
    s.rows_hist.assign(static_cast<std::size_t>(cfg_.slots_per_card) + 1, 0);

  RequestQueue queue(cfg_.num_cards);
  for (std::size_t i = 0; i < sources.size(); ++i)
    queue.push(TranslationRequest{static_cast<std::uint64_t>(i), sources[i]});
  queue.close();

  AdmissionGate gate(cards_.size());
  const auto t0 = std::chrono::steady_clock::now();
  run_per_card(cards_.size(),
               [&](std::size_t c) { run_card(c, queue, gate, rep); });
  rep.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return rep;
}

void Scheduler::run_card(std::size_t c, RequestQueue& queue,
                         AdmissionGate& gate, ScheduleReport& rep) {
  Card& card = *cards_[c];
  AcceleratorStats& stats = rep.per_card[c];
  CardStepStats& step_stats = rep.per_card_steps[c];
  const bool cached = cfg_.decode == DecodeMode::kKvCache;

  // The fused decode-step ledger: one cross-sublayer schedule per card-step
  // instead of ~3·L cold per-sublayer ledgers. Only the packed cached path
  // fuses; the encoder pass at admission and the full-recompute mode keep
  // their per-run ledgers (the fuser is simply never opened around them).
  std::optional<DecodeStepFuser> fuser;
  switch (cfg_.backend) {
    case ServeBackend::kReference:
      card.model.set_backend(ResBlockBackend{});
      break;
    case ServeBackend::kQuantized:
      card.model.set_backend(card.qt->backend());
      break;
    case ServeBackend::kAccelerator:
      if (cached && cfg_.accel.fuse_decode_step)
        fuser.emplace(*card.acc, &stats);
      card.model.set_backend(accelerator_backend(
          *card.qt, *card.acc, &stats, fuser ? &*fuser : nullptr));
      break;
  }
  const int demand = cfg_.slot_demand();

  // One admitted sentence: its id, the encoder memory (needed per step in
  // full-recompute mode, at admission only in cached mode) and its search
  // state machine.
  struct Active {
    std::uint64_t id = 0;
    MatF memory;
    int src_valid = 0;
    std::unique_ptr<SentenceSearch> search;
  };
  std::vector<Active> active;
  int reserved = 0;  // slots claimed by admitted sentences (demand each)

  // Virtual clock driving the admission order: simulated ResBlock cycles on
  // the accelerator; a work proxy (rows stepped + sentences admitted) for
  // the functional backends, which have no cycle model.
  const auto virtual_time = [&]() -> Cycle {
    return cfg_.backend == ServeBackend::kAccelerator
               ? stats.total_cycles()
               : static_cast<Cycle>(step_stats.packed_rows +
                                    step_stats.sentences);
  };

  bool queue_drained = false;
  for (;;) {
    // Refill every vacant slot before stepping: finished sentences left last
    // iteration, so admission is continuous — no barrier per batch. Each
    // admission waits its simulated-time turn so request placement follows
    // the modeled farm, not host thread scheduling.
    while (!queue_drained && reserved + demand <= cfg_.slots_per_card) {
      gate.wait_turn(c);
      TranslationRequest req;
      if (!queue.try_pop(static_cast<int>(c), req)) {
        queue_drained = true;  // closed before run(): empty is final
        break;
      }
      Active a;
      a.id = req.id;
      a.memory = card.model.encode(req.src);
      a.src_valid = unpadded_length(req.src);
      a.search = make_search(
          cfg_, cached ? std::optional<DecodeState>(card.model.begin_decode(
                             a.memory, a.src_valid))
                       : std::nullopt);
      reserved += demand;
      ++step_stats.sentences;
      active.push_back(std::move(a));
      gate.publish(c, virtual_time());
    }
    if (active.empty()) break;  // queue drained and nothing in flight

    // Gather the next-token row of every live hypothesis on this card.
    std::vector<DecodeState*> states;
    std::vector<int> tokens;
    std::vector<int> live_counts(active.size());
    int rows = 0;
    for (std::size_t ai = 0; ai < active.size(); ++ai) {
      const int k = active[ai].search->live();
      live_counts[ai] = k;
      rows += k;
      if (cached) {
        for (int i = 0; i < k; ++i) {
          states.push_back(&active[ai].search->state(i));
          tokens.push_back(active[ai].search->input_token(i));
        }
      }
    }
    // Full recompute issues one whole-prefix pass per hypothesis — nothing
    // is packed — so it is charged as `rows` one-row steps; only the cached
    // mode's single stacked invocation counts as one multi-row step.
    if (cached) {
      ++step_stats.steps;
      step_stats.packed_rows += rows;
      ++step_stats.rows_hist[static_cast<std::size_t>(
          std::min(rows, cfg_.slots_per_card))];
    } else {
      step_stats.steps += rows;
      step_stats.packed_rows += rows;
      step_stats.rows_hist[1] += rows;
    }

    // One packed pass for every row (cached), or the legacy per-hypothesis
    // full recompute (the O(L³) comparison mode — nothing to pack there).
    std::vector<std::vector<float>> logits;
    if (cached) {
      // One fused ledger per card-step: every sublayer the packed pass runs
      // is recorded and scheduled as a single cross-sublayer graph, so the
      // card's virtual clock still advances exactly once per step.
      if (fuser) fuser->begin_step();
      logits = card.model.decode_step_batch(states, tokens);
      if (fuser) (void)fuser->end_step();
    } else {
      logits.reserve(static_cast<std::size_t>(rows));
      for (std::size_t ai = 0; ai < active.size(); ++ai)
        for (int i = 0; i < live_counts[ai]; ++i)
          logits.push_back(card.model.next_token_logits(
              active[ai].search->prefix(i), active[ai].memory,
              active[ai].src_valid));
    }

    // Scatter the logits rows back to each sentence's search machine.
    std::size_t off = 0;
    for (std::size_t ai = 0; ai < active.size(); ++ai) {
      const std::size_t k = static_cast<std::size_t>(live_counts[ai]);
      active[ai].search->advance(std::vector<std::vector<float>>(
          logits.begin() + static_cast<std::ptrdiff_t>(off),
          logits.begin() + static_cast<std::ptrdiff_t>(off + k)));
      off += k;
    }

    // Finished sentences vacate their slots; the next iteration refills.
    for (std::size_t ai = 0; ai < active.size();) {
      if (active[ai].search->done()) {
        rep.outputs[active[ai].id] = active[ai].search->result();
        reserved -= demand;
        active.erase(active.begin() + static_cast<std::ptrdiff_t>(ai));
      } else {
        ++ai;
      }
    }
    gate.publish(c, virtual_time());
  }
  gate.retire(c);
  card.model.set_backend(ResBlockBackend{});
}

}  // namespace tfacc
