#include "serve/scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <functional>
#include <optional>
#include <thread>
#include <utility>

#include "common/check.hpp"
#include "common/thread_annotations.hpp"
#include "core/schedules.hpp"
#include "reference/search.hpp"
#include "serve/admission_gate.hpp"
#include "serve/worker_pool.hpp"

namespace tfacc {

void SchedulerConfig::validate() const {
  TFACC_CHECK_ARG_MSG(num_cards >= 1,
                      "num_cards must be >= 1, got " << num_cards);
  TFACC_CHECK_ARG_MSG(max_len >= 1, "max_len must be >= 1, got " << max_len);
  TFACC_CHECK_ARG_MSG(beam_size >= 0,
                      "beam_size must be >= 0, got " << beam_size);
  TFACC_CHECK_ARG_MSG(slots_per_card >= slot_demand(),
                      "slots_per_card must be >= " << slot_demand()
                          << " (one sentence's hypotheses), got "
                          << slots_per_card);
  TFACC_CHECK_ARG_MSG(host_threads >= 0,
                      "host_threads must be >= 0 (0 = auto), got "
                          << host_threads);
  accel.validate();
}

Cycle ScheduleReport::makespan_cycles() const {
  Cycle m = 0;
  for (const AcceleratorStats& s : per_card)
    m = std::max(m, s.total_cycles());
  return m;
}

Cycle ScheduleReport::total_cycles() const {
  Cycle t = 0;
  for (const AcceleratorStats& s : per_card) t += s.total_cycles();
  return t;
}

double ScheduleReport::modeled_sentences_per_second() const {
  const Cycle makespan = makespan_cycles();
  if (makespan <= 0) return 0.0;
  return sentences() * clock_mhz * 1e6 / static_cast<double>(makespan);
}

long ScheduleReport::packed_steps() const {
  long n = 0;
  for (const CardStepStats& s : per_card_steps) n += s.steps;
  return n;
}

long ScheduleReport::packed_rows() const {
  long n = 0;
  for (const CardStepStats& s : per_card_steps) n += s.packed_rows;
  return n;
}

double ScheduleReport::packed_rows_mean() const {
  const long steps = packed_steps();
  return steps <= 0 ? 0.0
                    : static_cast<double>(packed_rows()) / steps;
}

double ScheduleReport::sa_utilization() const {
  const Cycle total = total_cycles();
  return total == 0 ? 0.0 : static_cast<double>(sa_busy_cycles()) / total;
}

Cycle ScheduleReport::sa_busy_cycles() const {
  Cycle busy = 0;
  for (const AcceleratorStats& s : per_card) busy += s.sa_busy_cycles;
  return busy;
}

Cycle ScheduleReport::softmax_busy_cycles() const {
  Cycle busy = 0;
  for (const AcceleratorStats& s : per_card) busy += s.softmax_busy_cycles;
  return busy;
}

Cycle ScheduleReport::layernorm_busy_cycles() const {
  Cycle busy = 0;
  for (const AcceleratorStats& s : per_card) busy += s.layernorm_busy_cycles;
  return busy;
}

Cycle ScheduleReport::softmax_stall_cycles() const {
  Cycle stall = 0;
  for (const AcceleratorStats& s : per_card) stall += s.softmax_stall_cycles;
  return stall;
}

Cycle ScheduleReport::boundary_stall_cycles() const {
  Cycle stall = 0;
  for (const AcceleratorStats& s : per_card) stall += s.boundary_stall_cycles;
  return stall;
}

long ScheduleReport::fused_steps() const {
  long steps = 0;
  for (const AcceleratorStats& s : per_card) steps += s.fused_steps;
  return steps;
}

Cycle ScheduleReport::prefill_stall_cycles() const {
  Cycle stall = 0;
  for (const AcceleratorStats& s : per_card) stall += s.prefill_stall_cycles;
  return stall;
}

long ScheduleReport::prefill_chunks() const {
  long n = 0;
  for (const CardStepStats& s : per_card_steps) n += s.prefill_chunks;
  return n;
}

// One card: a host model copy, the INT8 quantization of its blocks (keyed by
// weight addresses inside *this* model, hence per-card) and a cycle-level
// simulator. The functional backends skip the parts they do not need.
struct Scheduler::Card {
  Transformer model;
  std::optional<QuantizedTransformer> qt;
  std::optional<Accelerator> acc;

  Card(const TransformerWeights& weights,
       const std::vector<TokenSeq>& calib_sources,
       const SchedulerConfig& cfg)
      : model(weights) {
    if (cfg.backend != ServeBackend::kReference)
      qt.emplace(QuantizedTransformer::build(model, calib_sources,
                                             cfg.max_len, cfg.softmax));
    if (cfg.backend == ServeBackend::kAccelerator) acc.emplace(cfg.accel);
  }
};

// AdmissionGate (convoy-free simulated-time admission, PR 9) and WorkerPool
// (persistent host worker pool) were defined here until PR 10 hoisted them
// into annotatable headers — serve/admission_gate.hpp and
// serve/worker_pool.hpp — so Clang's -Wthread-safety can check their lock
// discipline at compile time.

namespace {

std::unique_ptr<SentenceSearch> make_search(const SchedulerConfig& cfg,
                                            std::optional<DecodeState> state) {
  if (cfg.beam_size < 1)
    return std::make_unique<GreedySearch>(cfg.max_len, std::move(state));
  Transformer::BeamConfig beam;
  beam.beam_size = cfg.beam_size;
  beam.length_penalty = cfg.length_penalty;
  return std::make_unique<BeamSearch>(cfg.max_len, beam, std::move(state));
}

// Full-size encoder sublayer plans for one `rows`-token sentence, synthesized
// from the model shape. Used by the functional backends in pack_prefill mode,
// where no hook captures the encoder pass: only the chunk COUNT matters there
// (it drives the virtual-time admission proxy), but the shapes are kept
// faithful so chunk_prefill splits exactly as on the accelerator.
std::vector<SublayerPlan> encoder_plan(const ModelConfig& m, int rows) {
  std::vector<SublayerPlan> subs;
  subs.reserve(static_cast<std::size_t>(2 * m.num_encoder_layers));
  for (int l = 0; l < m.num_encoder_layers; ++l) {
    subs.push_back(SublayerPlan::mha_prefill("enc" + std::to_string(2 * l),
                                             rows, rows, m.d_model,
                                             m.num_heads, rows));
    subs.push_back(SublayerPlan::ffn("enc" + std::to_string(2 * l + 1), rows,
                                     m.d_model, m.d_ff));
  }
  return subs;
}

// Host threads the pool should hold: the knob, defaulted to one thread per
// card capped at the hardware concurrency, and always clamped to num_cards
// (a card is single-threaded, extra workers would idle).
int effective_threads(const SchedulerConfig& cfg) {
  int t = cfg.host_threads;
  if (t == 0) {
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    t = static_cast<int>(
        std::min(static_cast<unsigned>(cfg.num_cards), hw));
  }
  return std::min(t, cfg.num_cards);
}

// First exception thrown by any pool job; later ones are dropped (the first
// is what the caller rethrows). Annotated so the TSA wall covers the one
// piece of shared state the job wrappers touch.
struct FirstError {
  Mutex mu;
  std::exception_ptr eptr TFACC_GUARDED_BY(mu);

  void capture() TFACC_EXCLUDES(mu) {
    const MutexLock lock(mu);
    if (!eptr) eptr = std::current_exception();
  }
  void rethrow_if_set() TFACC_EXCLUDES(mu) {
    std::exception_ptr e;
    {
      const MutexLock lock(mu);
      e = eptr;
    }
    if (e) std::rethrow_exception(e);
  }
};

}  // namespace

// The per-card step loop, restructured as a resumable machine so a pool
// worker can park it (only) when it truly cannot progress. One iteration of
// the old loop becomes kTop → [kTopDrain] → kStepCompute → [kMidDrain] →
// kTop. In pack mode the admission drain runs MID-step (after the expensive
// decode compute, inside the still-open step ledger): a newly admitted
// sentence is never decode-ready in its admission step — its chunks are
// non-empty, so it contributes no gather rows — and its first prefill chunk
// rides this step's ledger exactly as when admission ran at the top, so the
// composed step ledger (and every modeled metric) is unchanged while the
// admission wait overlaps the step's host compute. Without packing (eager
// encode or full recompute) admission charges cycles that later pops
// observe, so those modes keep the old admit-at-top order.
struct Scheduler::CardRun {
  using Status = WorkerPool::Status;

  // One admitted sentence: its id, the encoder memory (needed per step in
  // full-recompute mode, at admission only in cached mode), its search state
  // machine, and — under pack_prefill — the not-yet-timed prefill chunks.
  // A sentence contributes decode rows only once every chunk has been
  // spliced into a prior step ledger (decode-ready in simulated time).
  struct Active {
    std::uint64_t id = 0;
    MatF memory;
    int src_valid = 0;
    std::unique_ptr<SentenceSearch> search;
    std::vector<SublayerPlan> chunks;
    std::size_t next_chunk = 0;
    bool prefill_done() const { return next_chunk >= chunks.size(); }
  };

  enum class StepPhase { kTop, kTopDrain, kStepCompute, kMidDrain };
  enum class Drain { kCompleted, kParked };

  CardRun(const SchedulerConfig& config, std::size_t card_id, Card& card_ref,
          AdmissionGate& gate_ref, ScheduleReport& report)
      : cfg(config),
        c(card_id),
        card(card_ref),
        gate(gate_ref),
        rep(report),
        stats(report.per_card[card_id]),
        step_stats(report.per_card_steps[card_id]),
        cached(cfg.decode == DecodeMode::kKvCache),
        pack(cached && cfg.accel.pack_prefill),
        demand(cfg.slot_demand()) {
    switch (cfg.backend) {
      case ServeBackend::kReference:
        card.model.set_backend(ResBlockBackend{});
        break;
      case ServeBackend::kQuantized:
        card.model.set_backend(card.qt->backend());
        break;
      case ServeBackend::kAccelerator:
        if (cached &&
            (cfg.accel.fuse_decode_step || cfg.accel.pack_prefill))
          fuser.emplace(*card.acc, &stats);
        card.model.set_backend(accelerator_backend(
            *card.qt, *card.acc, &stats, fuser ? &*fuser : nullptr));
        break;
    }
    fuse = fuser.has_value() && cfg.accel.fuse_decode_step;
  }

  /// Restore the card's default backend (normal completion or abandon after
  /// an exception — the backend must not dangle past this CardRun).
  void detach() { card.model.set_backend(ResBlockBackend{}); }

  // Virtual clock driving the admission order: simulated ResBlock cycles on
  // the accelerator; a work proxy (rows stepped + sentences admitted +
  // prefill chunks spliced) for the functional backends, which have no
  // cycle model. `clock_floor` fast-forwards an idle card past an arrival
  // gap so the admission order stays well-defined with staggered arrivals.
  Cycle busy() const {
    return cfg.backend == ServeBackend::kAccelerator
               ? stats.total_cycles()
               : static_cast<Cycle>(step_stats.packed_rows +
                                    step_stats.sentences +
                                    step_stats.prefill_chunks);
  }
  Cycle virtual_time() const { return std::max(clock_floor, busy()); }

  // Frozen reservation key. Pack mode pops mid-step, when the step's own
  // charges have already polluted the live clock, so its keys come from the
  // top-of-iteration snapshot: on the accelerator an admission charges
  // nothing (the capture defers all timing), so every pop this iteration
  // keys at the snapshot; the functional proxy counts each admitted
  // sentence, so successive pops key one tick apart — both exactly the
  // values the old admit-at-top protocol popped at. Eager modes admit at
  // the top with the live clock (their encodes charge cycles that later
  // pops must observe).
  Cycle admission_key() const {
    if (!pack) return virtual_time();
    const Cycle base = cfg.backend == ServeBackend::kAccelerator
                           ? busy_snapshot
                           : busy_snapshot +
                                 static_cast<Cycle>(admitted_in_drain);
    return std::max(clock_floor, base);
  }

  void post_reservation() {
    gate.reserve(c, admission_key());
    posted = true;
  }

  Status resume() {
    for (;;) {
      switch (phase) {
        case StepPhase::kTop: {
          if (queue_drained && active.empty() && pending_admits.empty()) {
            gate.retire(c);
            detach();
            return Status::kDone;
          }
          busy_snapshot = busy();
          admitted_in_drain = 0;
          if (pack && !active.empty()) {
            // Post the step's reservation BEFORE the decode compute so a
            // sibling's scan can resolve it while this thread crunches.
            if (!posted && !queue_drained &&
                reserved + demand <= cfg.slots_per_card)
              post_reservation();
            phase = StepPhase::kStepCompute;
          } else {
            phase = StepPhase::kTopDrain;
          }
          break;
        }
        case StepPhase::kTopDrain: {
          if (drain() == Drain::kParked) return Status::kParked;
          admit_pending();
          phase = active.empty() ? StepPhase::kTop : StepPhase::kStepCompute;
          break;
        }
        case StepPhase::kStepCompute: {
          step_compute();
          if (pack) {
            phase = StepPhase::kMidDrain;
          } else {
            close_step();
            finish_step();
            phase = StepPhase::kTop;
          }
          break;
        }
        case StepPhase::kMidDrain: {
          if (drain() == Drain::kParked) return Status::kParked;
          admit_pending();
          splice_range(ready.size(), active.size());
          close_step();
          finish_step();
          phase = StepPhase::kTop;
          break;
        }
      }
    }
  }

  // Fill every vacant slot via the reservation protocol. Never blocks the
  // host: a pending grant parks the job (kParked) and the resume re-enters
  // here. Completed leaves the gate slot idle (no reservation) unless the
  // card parked.
  Drain drain() {
    for (;;) {
      if (holding) {
        // Just consumed a pop: keep the turn and re-reserve while vacancy
        // remains, else yield it.
        if (queue_drained || reserved + demand > cfg.slots_per_card) {
          gate.release(c);
          holding = false;
          return Drain::kCompleted;
        }
        gate.reserve(c, admission_key());
        holding = false;
        posted = true;
      } else if (!posted) {
        if (queue_drained || reserved + demand > cfg.slots_per_card)
          return Drain::kCompleted;
        post_reservation();
      }
      AdmissionGate::Grant g;
      if (!gate.try_consume(c, &g)) return Drain::kParked;
      posted = false;
      holding = true;
      switch (g.outcome) {
        case RequestQueue::PopOutcome::kDrained:
          queue_drained = true;  // closed before run(): empty is final
          break;                 // loop head releases and completes
        case RequestQueue::PopOutcome::kPending:
          if (active.empty() && pending_admits.empty()) {
            // Nothing in flight: idle the card forward to the next arrival
            // so its reservation key (and the admission order) advances.
            clock_floor = std::max(clock_floor, g.next_arrival);
            // loop head re-reserves at the raised key
          } else {
            // Work in flight: keep stepping, arrivals re-check next step.
            gate.release(c);
            holding = false;
            return Drain::kCompleted;
          }
          break;
        case RequestQueue::PopOutcome::kPopped:
          admit(g.req);
          break;
      }
    }
  }

  void admit(TranslationRequest& req) {
    reserved += demand;
    ++step_stats.sentences;
    step_stats.admitted.push_back(req.id);
    ++admitted_in_drain;
    if (pack) {
      // Encode deferred until the drain completes (admit_pending) — the
      // capture charges nothing, so later pops' keys are unaffected.
      pending_admits.push_back(std::move(req));
      return;
    }
    // Eager encode, inside the held turn: the old protocol published its
    // post-encode clock before yielding, and the next reserve() does the
    // same here, so same-key siblings serialize identically.
    active.push_back(make_active(req));
  }

  void admit_pending() {
    for (TranslationRequest& req : pending_admits)
      active.push_back(make_active(req));
    pending_admits.clear();
  }

  Active make_active(const TranslationRequest& req) {
    Active a;
    a.id = req.id;
    if (pack && fuser) {
      // Accelerator packing: one bit-exact host-side encoder pass NOW
      // (outputs can never depend on timing), its cycle cost captured as
      // full-size sublayer plans and re-cut into chunks the step loop
      // splices into upcoming mixed ledgers.
      fuser->begin_prefill();
      a.memory = card.model.encode(req.src);
      a.chunks =
          chunk_prefill(fuser->end_prefill(), cfg.accel.prefill_chunk_rows);
    } else if (pack) {
      // Functional backends have no capture hooks for the encoder pass;
      // synthesize the same chunk sequence from the model shape so the
      // decode-ready delay and admission proxy behave identically.
      a.memory = card.model.encode(req.src);
      a.chunks = chunk_prefill(
          encoder_plan(card.model.weights().config,
                       static_cast<int>(req.src.size())),
          cfg.accel.prefill_chunk_rows);
    } else {
      // Eager encode (pack_prefill off): the whole encoder pass lands on
      // the card's ledger at admission; when live decode rows share the
      // card, every one of those cycles is decode time lost to prefill.
      const Cycle before = stats.total_cycles();
      a.memory = card.model.encode(req.src);
      if (cfg.backend == ServeBackend::kAccelerator && !active.empty())
        stats.prefill_stall_cycles += stats.total_cycles() - before;
    }
    for (SublayerPlan& chunk : a.chunks)
      chunk.label = "s" + std::to_string(req.id) + "." + chunk.label;
    a.src_valid = unpadded_length(req.src);
    a.search = make_search(
        cfg, cached ? std::optional<DecodeState>(card.model.begin_decode(
                          a.memory, a.src_valid))
                    : std::nullopt);
    return a;
  }

  // Splice ONE pending prefill chunk per not-yet-ready sentence in
  // [first, last) into this step — the fixed-size interleaving that stops
  // one long sentence from monopolizing a step while its siblings' beams
  // starve. Mid-drain admissions splice their first chunk through the same
  // call after the decode compute; the fused ledger orders lanes by splice
  // order either way, so the composed step ledger matches admit-at-top.
  void splice_range(std::size_t first, std::size_t last) {
    for (std::size_t ai = first; ai < last; ++ai) {
      Active& a = active[ai];
      if (a.prefill_done()) continue;
      const SublayerPlan& chunk = a.chunks[a.next_chunk++];
      ++step_stats.prefill_chunks;
      if (fuse) {
        fuser->add_prefill_chunk(chunk);
      } else if (cfg.backend == ServeBackend::kAccelerator) {
        // Unfused packing (ablation): each chunk is its own ledger beside
        // the step's per-sublayer ledgers. With decode rows waiting, the
        // whole chunk ledger is decode time lost to prefill.
        const RunReport r = card.acc->time_step(
            {FusedLane{std::vector<SublayerPlan>{chunk}, true}});
        charge_prefill_chunk(&stats, chunk, r);
        if (rows > 0) stats.prefill_stall_cycles += r.total_cycles;
      }
    }
  }

  void step_compute() {
    // Gather the next-token row of every decode-ready hypothesis on this
    // card. Readiness is snapshotted BEFORE splicing: a sentence whose last
    // prefill chunk rides THIS step's ledger becomes decode-ready next step
    // (its encoder output exists, in simulated time, only once this step's
    // graph nodes complete).
    states.clear();
    tokens.clear();
    ready.assign(active.size(), 0);
    live_counts.assign(active.size(), 0);
    rows = 0;
    for (std::size_t ai = 0; ai < active.size(); ++ai) {
      if (!active[ai].prefill_done()) continue;
      ready[ai] = 1;
      const int k = active[ai].search->live();
      live_counts[ai] = k;
      rows += k;
      if (cached) {
        for (int i = 0; i < k; ++i) {
          states.push_back(&active[ai].search->state(i));
          tokens.push_back(active[ai].search->input_token(i));
        }
      }
    }
    // Full recompute issues one whole-prefix pass per hypothesis — nothing
    // is packed — so it is charged as `rows` one-row steps; only the cached
    // mode's single stacked invocation counts as one multi-row step. A
    // prefill-only iteration (every slot still encoding) packs no decode
    // rows and is NOT a packed step.
    if (cached) {
      if (rows > 0) {
        ++step_stats.steps;
        step_stats.packed_rows += rows;
        ++step_stats.rows_hist[static_cast<std::size_t>(
            std::min(rows, cfg.slots_per_card))];
      }
    } else {
      step_stats.steps += rows;
      step_stats.packed_rows += rows;
      step_stats.rows_hist[1] += rows;
    }

    // One packed pass for every row (cached), or the legacy per-hypothesis
    // full recompute (the O(L³) comparison mode — nothing to pack there).
    if (cached) {
      if (fuse) fuser->begin_step();
      splice_range(0, active.size());
      if (rows > 0) card.model.decode_step_batch(states, tokens, flat_logits);
    } else {
      logits.clear();
      logits.reserve(static_cast<std::size_t>(rows));
      for (std::size_t ai = 0; ai < active.size(); ++ai)
        for (int i = 0; i < live_counts[ai]; ++i)
          logits.push_back(card.model.next_token_logits(
              active[ai].search->prefix(i), active[ai].memory,
              active[ai].src_valid));
    }
  }

  // One fused ledger per card-step: prefill chunks AND every sublayer the
  // packed pass ran are scheduled as a single mixed cross-sublayer graph,
  // so the card's virtual clock still advances exactly once per step.
  void close_step() {
    if (fuse) (void)fuser->end_step();
  }

  void finish_step() {
    // Scatter the logits rows back to each decode-ready sentence's search
    // machine. Mid-drain admissions sit past ready.size() and contributed
    // no rows.
    std::size_t off = 0;
    for (std::size_t ai = 0; ai < ready.size(); ++ai) {
      if (!ready[ai]) continue;
      const std::size_t k = static_cast<std::size_t>(live_counts[ai]);
      sentence_rows.resize(k);
      for (std::size_t i = 0; i < k; ++i) {
        if (cached) {
          const float* row = flat_logits.row(static_cast<int>(off + i));
          sentence_rows[i].assign(row, row + flat_logits.cols());
        } else {
          sentence_rows[i] = std::move(logits[off + i]);
        }
      }
      active[ai].search->advance(sentence_rows);
      off += k;
    }
    // Finished sentences vacate their slots; the next iteration refills.
    for (std::size_t ai = 0; ai < active.size();) {
      if (active[ai].search->done()) {
        rep.outputs[active[ai].id] = active[ai].search->result();
        reserved -= demand;
        active.erase(active.begin() + static_cast<std::ptrdiff_t>(ai));
      } else {
        ++ai;
      }
    }
    gate.publish(c, virtual_time());
  }

  // --- wiring ---------------------------------------------------------------
  const SchedulerConfig& cfg;
  std::size_t c;
  Card& card;
  AdmissionGate& gate;
  ScheduleReport& rep;
  AcceleratorStats& stats;
  CardStepStats& step_stats;
  const bool cached;
  const bool pack;
  const int demand;
  bool fuse = false;
  std::optional<DecodeStepFuser> fuser;

  // --- admission state ------------------------------------------------------
  std::vector<Active> active;
  int reserved = 0;  // slots claimed by admitted sentences (demand each)
  Cycle clock_floor = 0;
  bool queue_drained = false;
  bool posted = false;   // reservation outstanding (pending or granted)
  bool holding = false;  // consumed a grant, turn not yet yielded
  Cycle busy_snapshot = 0;   // busy() at the top of this iteration
  int admitted_in_drain = 0;
  std::vector<TranslationRequest> pending_admits;  // pack: encode deferred

  // --- step state -----------------------------------------------------------
  StepPhase phase = StepPhase::kTop;
  int rows = 0;
  // Per-iteration gather/scatter buffers, hoisted so their capacities
  // persist: together with the allocation-free decode_step_batch overload,
  // a warm steady-state step touches the heap only inside the search
  // machines.
  std::vector<DecodeState*> states;
  std::vector<int> tokens;
  std::vector<char> ready;
  std::vector<int> live_counts;
  MatF flat_logits;                               // cached mode: rows × vocab
  std::vector<std::vector<float>> logits;         // full-recompute rows
  std::vector<std::vector<float>> sentence_rows;  // advance() marshalling
};

Scheduler::Scheduler(const TransformerWeights& weights,
                     const std::vector<TokenSeq>& calib_sources,
                     SchedulerConfig cfg)
    : cfg_(cfg) {
  cfg_.validate();
  TFACC_CHECK_ARG_MSG(
      cfg_.backend == ServeBackend::kReference || !calib_sources.empty(),
      "need at least one calibration sentence");
  pool_ = std::make_unique<WorkerPool>(effective_threads(cfg_));
  // Card setups are independent (each copies the weights and calibrates its
  // own quantization), so build them concurrently on the pool like run()
  // decodes.
  cards_.resize(static_cast<std::size_t>(cfg_.num_cards));
  FirstError error;
  std::vector<WorkerPool::Job> jobs;
  jobs.reserve(cards_.size());
  for (std::size_t c = 0; c < cards_.size(); ++c)
    jobs.push_back([&, c]() -> WorkerPool::Status {
      try {
        cards_[c] = std::make_unique<Card>(weights, calib_sources, cfg_);
      } catch (...) {
        error.capture();
      }
      return WorkerPool::Status::kDone;
    });
  pool_->run(std::move(jobs));
  error.rethrow_if_set();
}

Scheduler::~Scheduler() = default;

ScheduleReport Scheduler::run(const std::vector<TokenSeq>& sources) {
  return run(sources, {});
}

ScheduleReport Scheduler::run(const std::vector<TokenSeq>& sources,
                              const std::vector<Cycle>& arrivals) {
  TFACC_CHECK_ARG_MSG(arrivals.empty() || arrivals.size() == sources.size(),
                      "arrivals must be empty or one per source, got "
                          << arrivals.size() << " for " << sources.size()
                          << " sources");
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    TFACC_CHECK_ARG_MSG(arrivals[i] >= 0,
                        "arrivals must be >= 0, got " << arrivals[i]
                            << " at index " << i);
    TFACC_CHECK_ARG_MSG(i == 0 || arrivals[i - 1] <= arrivals[i],
                        "arrivals must be non-decreasing, got "
                            << arrivals[i] << " after " << arrivals[i - 1]);
  }
  ScheduleReport rep;
  rep.clock_mhz = cfg_.accel.clock_mhz;
  rep.outputs.resize(sources.size());
  rep.per_card.assign(cards_.size(), AcceleratorStats{});
  rep.per_card_steps.assign(cards_.size(), CardStepStats{});
  for (CardStepStats& s : rep.per_card_steps)
    s.rows_hist.assign(static_cast<std::size_t>(cfg_.slots_per_card) + 1, 0);

  RequestQueue queue(cfg_.num_cards);
  // Sorted-arrival pushes keep every shard's FIFO arrival-sorted, which the
  // arrival-aware try_pop relies on (see request_queue.hpp).
  for (std::size_t i = 0; i < sources.size(); ++i)
    queue.push(TranslationRequest{static_cast<std::uint64_t>(i), sources[i],
                                  arrivals.empty() ? 0 : arrivals[i]});
  queue.close();

  AdmissionGate gate(cards_.size(), queue,
                     [this](std::size_t j) { pool_->unpark(j); });
  std::vector<std::unique_ptr<CardRun>> runs;
  runs.reserve(cards_.size());
  for (std::size_t c = 0; c < cards_.size(); ++c)
    runs.push_back(
        std::make_unique<CardRun>(cfg_, c, *cards_[c], gate, rep));
  FirstError error;
  std::vector<WorkerPool::Job> jobs;
  jobs.reserve(cards_.size());
  for (std::size_t c = 0; c < cards_.size(); ++c)
    jobs.push_back([&, c]() -> WorkerPool::Status {
      try {
        return runs[c]->resume();
      } catch (...) {
        error.capture();
        // Retire the card so siblings do not wait forever on its clock —
        // the old per-run threads would deadlock here instead.
        gate.retire(c);
        runs[c]->detach();
        return WorkerPool::Status::kDone;
      }
    });
  const auto t0 = std::chrono::steady_clock::now();
  pool_->run(std::move(jobs));
  rep.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  error.rethrow_if_set();
  return rep;
}

}  // namespace tfacc
