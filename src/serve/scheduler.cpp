#include "serve/scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <optional>
#include <thread>

#include "common/check.hpp"
#include "core/schedules.hpp"
#include "reference/search.hpp"

namespace tfacc {

void SchedulerConfig::validate() const {
  TFACC_CHECK_ARG_MSG(num_cards >= 1,
                      "num_cards must be >= 1, got " << num_cards);
  TFACC_CHECK_ARG_MSG(max_len >= 1, "max_len must be >= 1, got " << max_len);
  TFACC_CHECK_ARG_MSG(beam_size >= 0,
                      "beam_size must be >= 0, got " << beam_size);
  TFACC_CHECK_ARG_MSG(slots_per_card >= slot_demand(),
                      "slots_per_card must be >= " << slot_demand()
                          << " (one sentence's hypotheses), got "
                          << slots_per_card);
  accel.validate();
}

Cycle ScheduleReport::makespan_cycles() const {
  Cycle m = 0;
  for (const AcceleratorStats& s : per_card)
    m = std::max(m, s.total_cycles());
  return m;
}

Cycle ScheduleReport::total_cycles() const {
  Cycle t = 0;
  for (const AcceleratorStats& s : per_card) t += s.total_cycles();
  return t;
}

double ScheduleReport::modeled_sentences_per_second() const {
  const Cycle makespan = makespan_cycles();
  if (makespan <= 0) return 0.0;
  return sentences() * clock_mhz * 1e6 / static_cast<double>(makespan);
}

long ScheduleReport::packed_steps() const {
  long n = 0;
  for (const CardStepStats& s : per_card_steps) n += s.steps;
  return n;
}

long ScheduleReport::packed_rows() const {
  long n = 0;
  for (const CardStepStats& s : per_card_steps) n += s.packed_rows;
  return n;
}

double ScheduleReport::packed_rows_mean() const {
  const long steps = packed_steps();
  return steps <= 0 ? 0.0
                    : static_cast<double>(packed_rows()) / steps;
}

double ScheduleReport::sa_utilization() const {
  const Cycle total = total_cycles();
  return total == 0 ? 0.0 : static_cast<double>(sa_busy_cycles()) / total;
}

Cycle ScheduleReport::sa_busy_cycles() const {
  Cycle busy = 0;
  for (const AcceleratorStats& s : per_card) busy += s.sa_busy_cycles;
  return busy;
}

Cycle ScheduleReport::softmax_busy_cycles() const {
  Cycle busy = 0;
  for (const AcceleratorStats& s : per_card) busy += s.softmax_busy_cycles;
  return busy;
}

Cycle ScheduleReport::layernorm_busy_cycles() const {
  Cycle busy = 0;
  for (const AcceleratorStats& s : per_card) busy += s.layernorm_busy_cycles;
  return busy;
}

Cycle ScheduleReport::softmax_stall_cycles() const {
  Cycle stall = 0;
  for (const AcceleratorStats& s : per_card) stall += s.softmax_stall_cycles;
  return stall;
}

Cycle ScheduleReport::boundary_stall_cycles() const {
  Cycle stall = 0;
  for (const AcceleratorStats& s : per_card) stall += s.boundary_stall_cycles;
  return stall;
}

long ScheduleReport::fused_steps() const {
  long steps = 0;
  for (const AcceleratorStats& s : per_card) steps += s.fused_steps;
  return steps;
}

Cycle ScheduleReport::prefill_stall_cycles() const {
  Cycle stall = 0;
  for (const AcceleratorStats& s : per_card) stall += s.prefill_stall_cycles;
  return stall;
}

long ScheduleReport::prefill_chunks() const {
  long n = 0;
  for (const CardStepStats& s : per_card_steps) n += s.prefill_chunks;
  return n;
}

// One card: a host model copy, the INT8 quantization of its blocks (keyed by
// weight addresses inside *this* model, hence per-card) and a cycle-level
// simulator. The functional backends skip the parts they do not need.
struct Scheduler::Card {
  Transformer model;
  std::optional<QuantizedTransformer> qt;
  std::optional<Accelerator> acc;

  Card(const TransformerWeights& weights,
       const std::vector<TokenSeq>& calib_sources,
       const SchedulerConfig& cfg)
      : model(weights) {
    if (cfg.backend != ServeBackend::kReference)
      qt.emplace(QuantizedTransformer::build(model, calib_sources,
                                             cfg.max_len, cfg.softmax));
    if (cfg.backend == ServeBackend::kAccelerator) acc.emplace(cfg.accel);
  }
};

/// Conservative simulated-time admission order. Card threads race on the
/// host (and may even be fully serialized on a single CPU), but the farm
/// being modeled has every card live at once, so "who takes the next
/// request" must follow *simulated* time, not host scheduling: a card may
/// admit only while no live sibling sits at a smaller virtual clock (ties
/// break toward the lower card id). Cards publish their clock after every
/// admission and every packed step, so waiters advance promptly. This makes
/// multi-card request placement — and with it every per-card cycle ledger —
/// fully deterministic and host-independent.
class AdmissionGate {
 public:
  explicit AdmissionGate(std::size_t n) : clock_(n, 0), live_(n, true) {}

  /// Monotonically raise card c's virtual clock and wake waiters.
  void publish(std::size_t c, Cycle t) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      clock_[c] = std::max(clock_[c], t);
    }
    cv_.notify_all();
  }

  /// Card c is done (no further admissions); waiters stop considering it.
  void retire(std::size_t c) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      live_[c] = false;
    }
    cv_.notify_all();
  }

  /// Block until card c holds the smallest (clock, id) among live cards.
  void wait_turn(std::size_t c) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return my_turn(c); });
  }

 private:
  bool my_turn(std::size_t c) const {
    for (std::size_t i = 0; i < clock_.size(); ++i) {
      if (i == c || !live_[i]) continue;
      if (clock_[i] < clock_[c] || (clock_[i] == clock_[c] && i < c))
        return false;
    }
    return true;
  }

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Cycle> clock_;
  std::vector<bool> live_;
};

namespace {

// Run `fn(c)` for c in [0, n) on one thread each (or inline when n == 1),
// capturing the first exception so it rethrows on the caller's thread
// instead of std::terminate-ing the process.
template <typename Fn>
void run_per_card(std::size_t n, Fn&& fn) {
  std::exception_ptr error;
  std::mutex error_mu;
  auto guarded = [&](std::size_t c) {
    try {
      fn(c);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(error_mu);
      if (!error) error = std::current_exception();
    }
  };
  if (n == 1) {
    guarded(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(n);
    for (std::size_t c = 0; c < n; ++c) threads.emplace_back(guarded, c);
    for (std::thread& t : threads) t.join();
  }
  if (error) std::rethrow_exception(error);
}

std::unique_ptr<SentenceSearch> make_search(const SchedulerConfig& cfg,
                                            std::optional<DecodeState> state) {
  if (cfg.beam_size < 1)
    return std::make_unique<GreedySearch>(cfg.max_len, std::move(state));
  Transformer::BeamConfig beam;
  beam.beam_size = cfg.beam_size;
  beam.length_penalty = cfg.length_penalty;
  return std::make_unique<BeamSearch>(cfg.max_len, beam, std::move(state));
}

// Full-size encoder sublayer plans for one `rows`-token sentence, synthesized
// from the model shape. Used by the functional backends in pack_prefill mode,
// where no hook captures the encoder pass: only the chunk COUNT matters there
// (it drives the virtual-time admission proxy), but the shapes are kept
// faithful so chunk_prefill splits exactly as on the accelerator.
std::vector<SublayerPlan> encoder_plan(const ModelConfig& m, int rows) {
  std::vector<SublayerPlan> subs;
  subs.reserve(static_cast<std::size_t>(2 * m.num_encoder_layers));
  for (int l = 0; l < m.num_encoder_layers; ++l) {
    subs.push_back(SublayerPlan::mha_prefill("enc" + std::to_string(2 * l),
                                             rows, rows, m.d_model,
                                             m.num_heads, rows));
    subs.push_back(SublayerPlan::ffn("enc" + std::to_string(2 * l + 1), rows,
                                     m.d_model, m.d_ff));
  }
  return subs;
}

}  // namespace

Scheduler::Scheduler(const TransformerWeights& weights,
                     const std::vector<TokenSeq>& calib_sources,
                     SchedulerConfig cfg)
    : cfg_(cfg) {
  cfg_.validate();
  TFACC_CHECK_ARG_MSG(
      cfg_.backend == ServeBackend::kReference || !calib_sources.empty(),
      "need at least one calibration sentence");
  // Card setups are independent (each copies the weights and calibrates its
  // own quantization), so build them concurrently like run() decodes.
  cards_.resize(static_cast<std::size_t>(cfg_.num_cards));
  run_per_card(cards_.size(), [&](std::size_t c) {
    cards_[c] = std::make_unique<Card>(weights, calib_sources, cfg_);
  });
}

Scheduler::~Scheduler() = default;

ScheduleReport Scheduler::run(const std::vector<TokenSeq>& sources) {
  return run(sources, {});
}

ScheduleReport Scheduler::run(const std::vector<TokenSeq>& sources,
                              const std::vector<Cycle>& arrivals) {
  TFACC_CHECK_ARG_MSG(arrivals.empty() || arrivals.size() == sources.size(),
                      "arrivals must be empty or one per source, got "
                          << arrivals.size() << " for " << sources.size()
                          << " sources");
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    TFACC_CHECK_ARG_MSG(arrivals[i] >= 0,
                        "arrivals must be >= 0, got " << arrivals[i]
                            << " at index " << i);
    TFACC_CHECK_ARG_MSG(i == 0 || arrivals[i - 1] <= arrivals[i],
                        "arrivals must be non-decreasing, got "
                            << arrivals[i] << " after " << arrivals[i - 1]);
  }
  ScheduleReport rep;
  rep.clock_mhz = cfg_.accel.clock_mhz;
  rep.outputs.resize(sources.size());
  rep.per_card.assign(cards_.size(), AcceleratorStats{});
  rep.per_card_steps.assign(cards_.size(), CardStepStats{});
  for (CardStepStats& s : rep.per_card_steps)
    s.rows_hist.assign(static_cast<std::size_t>(cfg_.slots_per_card) + 1, 0);

  RequestQueue queue(cfg_.num_cards);
  // Sorted-arrival pushes keep every shard's FIFO arrival-sorted, which the
  // arrival-aware try_pop relies on (see request_queue.hpp).
  for (std::size_t i = 0; i < sources.size(); ++i)
    queue.push(TranslationRequest{static_cast<std::uint64_t>(i), sources[i],
                                  arrivals.empty() ? 0 : arrivals[i]});
  queue.close();

  AdmissionGate gate(cards_.size());
  const auto t0 = std::chrono::steady_clock::now();
  run_per_card(cards_.size(),
               [&](std::size_t c) { run_card(c, queue, gate, rep); });
  rep.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return rep;
}

void Scheduler::run_card(std::size_t c, RequestQueue& queue,
                         AdmissionGate& gate, ScheduleReport& rep) {
  Card& card = *cards_[c];
  AcceleratorStats& stats = rep.per_card[c];
  CardStepStats& step_stats = rep.per_card_steps[c];
  const bool cached = cfg_.decode == DecodeMode::kKvCache;

  // pack_prefill defers each admission's encoder timing into the step loop
  // as fixed-size chunks; without it (the PR 5 / ablation model) encode is
  // charged eagerly at admission. Only the cached mode packs — the
  // full-recompute comparison mode has no step ledger to splice into.
  const bool pack = cached && cfg_.accel.pack_prefill;

  // The fused decode-step ledger: one cross-sublayer schedule per card-step
  // instead of ~3·L cold per-sublayer ledgers. The fuser also owns prefill
  // capture, so it exists whenever packing OR fusing is on; begin_step()
  // brackets are applied only when fusing (see `fuse` below).
  std::optional<DecodeStepFuser> fuser;
  switch (cfg_.backend) {
    case ServeBackend::kReference:
      card.model.set_backend(ResBlockBackend{});
      break;
    case ServeBackend::kQuantized:
      card.model.set_backend(card.qt->backend());
      break;
    case ServeBackend::kAccelerator:
      if (cached && (cfg_.accel.fuse_decode_step || cfg_.accel.pack_prefill))
        fuser.emplace(*card.acc, &stats);
      card.model.set_backend(accelerator_backend(
          *card.qt, *card.acc, &stats, fuser ? &*fuser : nullptr));
      break;
  }
  const bool fuse = fuser.has_value() && cfg_.accel.fuse_decode_step;
  const int demand = cfg_.slot_demand();

  // One admitted sentence: its id, the encoder memory (needed per step in
  // full-recompute mode, at admission only in cached mode), its search state
  // machine, and — under pack_prefill — the not-yet-timed prefill chunks.
  // A sentence contributes decode rows only once every chunk has been
  // spliced into a prior step ledger (decode-ready in simulated time).
  struct Active {
    std::uint64_t id = 0;
    MatF memory;
    int src_valid = 0;
    std::unique_ptr<SentenceSearch> search;
    std::vector<SublayerPlan> chunks;
    std::size_t next_chunk = 0;
    bool prefill_done() const { return next_chunk >= chunks.size(); }
  };
  std::vector<Active> active;
  int reserved = 0;  // slots claimed by admitted sentences (demand each)

  // Virtual clock driving the admission order: simulated ResBlock cycles on
  // the accelerator; a work proxy (rows stepped + sentences admitted +
  // prefill chunks spliced) for the functional backends, which have no cycle
  // model. `clock_floor` fast-forwards an idle card past an arrival gap so
  // the admission order stays well-defined with staggered arrivals.
  Cycle clock_floor = 0;
  const auto virtual_time = [&]() -> Cycle {
    const Cycle busy =
        cfg_.backend == ServeBackend::kAccelerator
            ? stats.total_cycles()
            : static_cast<Cycle>(step_stats.packed_rows +
                                 step_stats.sentences +
                                 step_stats.prefill_chunks);
    return std::max(clock_floor, busy);
  };

  // Per-iteration gather/scatter buffers, hoisted out of the step loop so
  // their capacities persist: together with the allocation-free
  // decode_step_batch overload below, a warm steady-state step touches the
  // heap only inside the search machines.
  std::vector<DecodeState*> states;
  std::vector<int> tokens;
  std::vector<char> ready;
  std::vector<int> live_counts;
  std::vector<SublayerPlan> step_chunks;
  MatF flat_logits;                             // cached mode: rows × vocab
  std::vector<std::vector<float>> sentence_rows;  // advance() marshalling

  bool queue_drained = false;
  for (;;) {
    // Refill every vacant slot before stepping: finished sentences left last
    // iteration, so admission is continuous — no barrier per batch. Each
    // admission waits its simulated-time turn so request placement follows
    // the modeled farm, not host thread scheduling.
    while (!queue_drained && reserved + demand <= cfg_.slots_per_card) {
      gate.wait_turn(c);
      TranslationRequest req;
      Cycle next_arrival = 0;
      const RequestQueue::PopOutcome outcome = queue.try_pop(
          static_cast<int>(c), virtual_time(), req, &next_arrival);
      if (outcome == RequestQueue::PopOutcome::kDrained) {
        queue_drained = true;  // closed before run(): empty is final
        break;
      }
      if (outcome == RequestQueue::PopOutcome::kPending) {
        // Work in flight: keep stepping, arrivals are re-checked next
        // iteration. Otherwise idle the card forward to the next arrival so
        // its clock (and the gate's notion of whose turn it is) advances.
        if (!active.empty()) break;
        clock_floor = std::max(clock_floor, next_arrival);
        gate.publish(c, virtual_time());
        continue;
      }
      Active a;
      a.id = req.id;
      if (pack && fuser) {
        // Accelerator packing: one bit-exact host-side encoder pass NOW
        // (outputs can never depend on timing), its cycle cost captured as
        // full-size sublayer plans and re-cut into chunks the step loop
        // splices into upcoming mixed ledgers.
        fuser->begin_prefill();
        a.memory = card.model.encode(req.src);
        a.chunks =
            chunk_prefill(fuser->end_prefill(), cfg_.accel.prefill_chunk_rows);
      } else if (pack && cfg_.backend != ServeBackend::kAccelerator) {
        // Functional backends have no capture hooks for the encoder pass;
        // synthesize the same chunk sequence from the model shape so the
        // decode-ready delay and admission proxy behave identically.
        a.memory = card.model.encode(req.src);
        a.chunks = chunk_prefill(
            encoder_plan(card.model.weights().config,
                         static_cast<int>(req.src.size())),
            cfg_.accel.prefill_chunk_rows);
      } else {
        // Eager encode (pack_prefill off): the whole encoder pass lands on
        // the card's ledger at admission; when live decode rows share the
        // card, every one of those cycles is decode time lost to prefill.
        const Cycle before = stats.total_cycles();
        a.memory = card.model.encode(req.src);
        if (cfg_.backend == ServeBackend::kAccelerator && !active.empty())
          stats.prefill_stall_cycles += stats.total_cycles() - before;
      }
      for (SublayerPlan& chunk : a.chunks)
        chunk.label = "s" + std::to_string(req.id) + "." + chunk.label;
      a.src_valid = unpadded_length(req.src);
      a.search = make_search(
          cfg_, cached ? std::optional<DecodeState>(card.model.begin_decode(
                             a.memory, a.src_valid))
                       : std::nullopt);
      reserved += demand;
      ++step_stats.sentences;
      active.push_back(std::move(a));
      gate.publish(c, virtual_time());
    }
    if (active.empty()) break;  // queue drained and nothing in flight

    // Gather the next-token row of every decode-ready hypothesis on this
    // card. Readiness is snapshotted BEFORE splicing: a sentence whose last
    // prefill chunk rides THIS step's ledger becomes decode-ready next step
    // (its encoder output exists, in simulated time, only once this step's
    // graph nodes complete).
    states.clear();
    tokens.clear();
    ready.assign(active.size(), 0);
    live_counts.assign(active.size(), 0);
    int rows = 0;
    for (std::size_t ai = 0; ai < active.size(); ++ai) {
      if (!active[ai].prefill_done()) continue;
      ready[ai] = 1;
      const int k = active[ai].search->live();
      live_counts[ai] = k;
      rows += k;
      if (cached) {
        for (int i = 0; i < k; ++i) {
          states.push_back(&active[ai].search->state(i));
          tokens.push_back(active[ai].search->input_token(i));
        }
      }
    }
    // Splice ONE pending prefill chunk per not-yet-ready sentence into this
    // step — the fixed-size interleaving that stops one long sentence from
    // monopolizing a step while its siblings' beams starve.
    step_chunks.clear();
    for (Active& a : active) {
      if (a.prefill_done()) continue;
      step_chunks.push_back(a.chunks[a.next_chunk++]);
      ++step_stats.prefill_chunks;
    }
    // Full recompute issues one whole-prefix pass per hypothesis — nothing
    // is packed — so it is charged as `rows` one-row steps; only the cached
    // mode's single stacked invocation counts as one multi-row step. A
    // prefill-only iteration (every slot still encoding) packs no decode
    // rows and is NOT a packed step.
    if (cached) {
      if (rows > 0) {
        ++step_stats.steps;
        step_stats.packed_rows += rows;
        ++step_stats.rows_hist[static_cast<std::size_t>(
            std::min(rows, cfg_.slots_per_card))];
      }
    } else {
      step_stats.steps += rows;
      step_stats.packed_rows += rows;
      step_stats.rows_hist[1] += rows;
    }

    // One packed pass for every row (cached), or the legacy per-hypothesis
    // full recompute (the O(L³) comparison mode — nothing to pack there).
    // Cached mode writes into the persistent flat_logits (the allocation-free
    // overload); full recompute keeps per-hypothesis vectors.
    std::vector<std::vector<float>> logits;
    if (cached) {
      if (fuse) {
        // One fused ledger per card-step: prefill chunks AND every sublayer
        // the packed pass runs are scheduled as a single mixed
        // cross-sublayer graph, so the card's virtual clock still advances
        // exactly once per step.
        fuser->begin_step();
        for (SublayerPlan& chunk : step_chunks)
          fuser->add_prefill_chunk(std::move(chunk));
        if (rows > 0) card.model.decode_step_batch(states, tokens, flat_logits);
        (void)fuser->end_step();
      } else {
        // Unfused packing (ablation): each chunk is its own ledger ahead of
        // the step's per-sublayer ledgers. With decode rows waiting, the
        // whole chunk ledger is decode time lost to prefill.
        if (cfg_.backend == ServeBackend::kAccelerator) {
          for (const SublayerPlan& chunk : step_chunks) {
            const RunReport r = card.acc->time_step(
                {FusedLane{std::vector<SublayerPlan>{chunk}, true}});
            charge_prefill_chunk(&stats, chunk, r);
            if (rows > 0) stats.prefill_stall_cycles += r.total_cycles;
          }
        }
        if (rows > 0) card.model.decode_step_batch(states, tokens, flat_logits);
      }
    } else {
      logits.reserve(static_cast<std::size_t>(rows));
      for (std::size_t ai = 0; ai < active.size(); ++ai)
        for (int i = 0; i < live_counts[ai]; ++i)
          logits.push_back(card.model.next_token_logits(
              active[ai].search->prefix(i), active[ai].memory,
              active[ai].src_valid));
    }

    // Scatter the logits rows back to each decode-ready sentence's search
    // machine (not-yet-ready sentences contributed no rows).
    std::size_t off = 0;
    for (std::size_t ai = 0; ai < active.size(); ++ai) {
      if (!ready[ai]) continue;
      const std::size_t k = static_cast<std::size_t>(live_counts[ai]);
      sentence_rows.resize(k);
      for (std::size_t i = 0; i < k; ++i) {
        if (cached) {
          const float* row = flat_logits.row(static_cast<int>(off + i));
          sentence_rows[i].assign(row, row + flat_logits.cols());
        } else {
          sentence_rows[i] = std::move(logits[off + i]);
        }
      }
      active[ai].search->advance(sentence_rows);
      off += k;
    }

    // Finished sentences vacate their slots; the next iteration refills.
    for (std::size_t ai = 0; ai < active.size();) {
      if (active[ai].search->done()) {
        rep.outputs[active[ai].id] = active[ai].search->result();
        reserved -= demand;
        active.erase(active.begin() + static_cast<std::ptrdiff_t>(ai));
      } else {
        ++ai;
      }
    }
    gate.publish(c, virtual_time());
  }
  gate.retire(c);
  card.model.set_backend(ResBlockBackend{});
}

}  // namespace tfacc
