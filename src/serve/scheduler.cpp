#include "serve/scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "common/check.hpp"
#include "core/schedules.hpp"
#include "reference/search.hpp"

namespace tfacc {

void SchedulerConfig::validate() const {
  TFACC_CHECK_ARG_MSG(num_cards >= 1,
                      "num_cards must be >= 1, got " << num_cards);
  TFACC_CHECK_ARG_MSG(max_len >= 1, "max_len must be >= 1, got " << max_len);
  TFACC_CHECK_ARG_MSG(beam_size >= 0,
                      "beam_size must be >= 0, got " << beam_size);
  TFACC_CHECK_ARG_MSG(slots_per_card >= slot_demand(),
                      "slots_per_card must be >= " << slot_demand()
                          << " (one sentence's hypotheses), got "
                          << slots_per_card);
  TFACC_CHECK_ARG_MSG(host_threads >= 0,
                      "host_threads must be >= 0 (0 = auto), got "
                          << host_threads);
  accel.validate();
}

Cycle ScheduleReport::makespan_cycles() const {
  Cycle m = 0;
  for (const AcceleratorStats& s : per_card)
    m = std::max(m, s.total_cycles());
  return m;
}

Cycle ScheduleReport::total_cycles() const {
  Cycle t = 0;
  for (const AcceleratorStats& s : per_card) t += s.total_cycles();
  return t;
}

double ScheduleReport::modeled_sentences_per_second() const {
  const Cycle makespan = makespan_cycles();
  if (makespan <= 0) return 0.0;
  return sentences() * clock_mhz * 1e6 / static_cast<double>(makespan);
}

long ScheduleReport::packed_steps() const {
  long n = 0;
  for (const CardStepStats& s : per_card_steps) n += s.steps;
  return n;
}

long ScheduleReport::packed_rows() const {
  long n = 0;
  for (const CardStepStats& s : per_card_steps) n += s.packed_rows;
  return n;
}

double ScheduleReport::packed_rows_mean() const {
  const long steps = packed_steps();
  return steps <= 0 ? 0.0
                    : static_cast<double>(packed_rows()) / steps;
}

double ScheduleReport::sa_utilization() const {
  const Cycle total = total_cycles();
  return total == 0 ? 0.0 : static_cast<double>(sa_busy_cycles()) / total;
}

Cycle ScheduleReport::sa_busy_cycles() const {
  Cycle busy = 0;
  for (const AcceleratorStats& s : per_card) busy += s.sa_busy_cycles;
  return busy;
}

Cycle ScheduleReport::softmax_busy_cycles() const {
  Cycle busy = 0;
  for (const AcceleratorStats& s : per_card) busy += s.softmax_busy_cycles;
  return busy;
}

Cycle ScheduleReport::layernorm_busy_cycles() const {
  Cycle busy = 0;
  for (const AcceleratorStats& s : per_card) busy += s.layernorm_busy_cycles;
  return busy;
}

Cycle ScheduleReport::softmax_stall_cycles() const {
  Cycle stall = 0;
  for (const AcceleratorStats& s : per_card) stall += s.softmax_stall_cycles;
  return stall;
}

Cycle ScheduleReport::boundary_stall_cycles() const {
  Cycle stall = 0;
  for (const AcceleratorStats& s : per_card) stall += s.boundary_stall_cycles;
  return stall;
}

long ScheduleReport::fused_steps() const {
  long steps = 0;
  for (const AcceleratorStats& s : per_card) steps += s.fused_steps;
  return steps;
}

Cycle ScheduleReport::prefill_stall_cycles() const {
  Cycle stall = 0;
  for (const AcceleratorStats& s : per_card) stall += s.prefill_stall_cycles;
  return stall;
}

long ScheduleReport::prefill_chunks() const {
  long n = 0;
  for (const CardStepStats& s : per_card_steps) n += s.prefill_chunks;
  return n;
}

// One card: a host model copy, the INT8 quantization of its blocks (keyed by
// weight addresses inside *this* model, hence per-card) and a cycle-level
// simulator. The functional backends skip the parts they do not need.
struct Scheduler::Card {
  Transformer model;
  std::optional<QuantizedTransformer> qt;
  std::optional<Accelerator> acc;

  Card(const TransformerWeights& weights,
       const std::vector<TokenSeq>& calib_sources,
       const SchedulerConfig& cfg)
      : model(weights) {
    if (cfg.backend != ServeBackend::kReference)
      qt.emplace(QuantizedTransformer::build(model, calib_sources,
                                             cfg.max_len, cfg.softmax));
    if (cfg.backend == ServeBackend::kAccelerator) acc.emplace(cfg.accel);
  }
};

/// Convoy-free simulated-time admission order (the PR 9 tentpole).
///
/// Card threads race on the host, but the farm being modeled has every card
/// live at once, so "who takes the next request" must follow *simulated*
/// time, not host scheduling. The old protocol had each vacant card
/// host-block in wait_turn() until it held the global minimum (clock, id) —
/// cards with live decode work convoyed behind the slowest sibling's step
/// compute. Here admission is reservation-based and a card never blocks
/// while it has work:
///
///  * reserve(c, key) posts card c's intent to pop at simulated time `key`.
///    The key is frozen — computed from simulated state only, so it is
///    identical on every host and at every thread count.
///  * Whichever thread next touches the gate and observes that c's
///    (key, id) pair is the strict minimum over every live card's blocking
///    pair resolves the admission: the queue pop runs right there, under
///    the gate mutex, at c's frozen key — pops execute in exact (key, id)
///    order regardless of host scheduling. The outcome is parked in the
///    slot as a Grant.
///  * The card collects its grant with the non-blocking try_consume() at
///    its next drain point; with in-flight work it keeps stepping while the
///    grant is pending and only parks (WorkerPool) when it truly cannot
///    progress. A card with no reservation blocks siblings at its published
///    clock, exactly like the old protocol.
///
/// Blocking pair of live card i: (key_i, i) while a reservation is posted
/// (pending, granted or held), else (clock_i, i). A pending slot is granted
/// iff its pair is strictly below every other live card's pair — the same
/// total order wait_turn() enforced, so the admission sequence (and with it
/// every per-card cycle ledger) is unchanged from the blocking protocol.
class AdmissionGate {
 public:
  struct Grant {
    RequestQueue::PopOutcome outcome = RequestQueue::PopOutcome::kDrained;
    TranslationRequest req;
    Cycle next_arrival = 0;
  };

  AdmissionGate(std::size_t n, RequestQueue& queue,
                std::function<void(std::size_t)> on_grant)
      : queue_(&queue), on_grant_(std::move(on_grant)), slots_(n) {}

  /// Post card c's intent to pop at simulated time `key`. Raises the card's
  /// clock to the key (a reservation is also a progress publication). Legal
  /// from idle or held (re-reserving right after consuming a grant).
  void reserve(std::size_t c, Cycle key) {
    const std::lock_guard<std::mutex> lock(mu_);
    Slot& s = slots_[c];
    TFACC_CHECK(s.phase == Phase::kIdle || s.phase == Phase::kHeld);
    s.key = std::max(key, s.clock);
    s.clock = s.key;
    s.phase = Phase::kPending;
    scan_locked();
  }

  /// Collect a resolved reservation. Non-blocking: true moves the grant out
  /// and holds the turn (the slot keeps blocking siblings at its key until
  /// release()/reserve()); false means the reservation is still pending.
  bool try_consume(std::size_t c, Grant* out) {
    const std::lock_guard<std::mutex> lock(mu_);
    Slot& s = slots_[c];
    if (s.phase != Phase::kGranted) {
      TFACC_CHECK(s.phase == Phase::kPending);
      return false;
    }
    *out = std::move(s.grant);
    s.phase = Phase::kHeld;
    return true;
  }

  /// Drop a held turn without re-reserving (card is full or done popping).
  void release(std::size_t c) {
    const std::lock_guard<std::mutex> lock(mu_);
    Slot& s = slots_[c];
    TFACC_CHECK(s.phase == Phase::kHeld);
    s.phase = Phase::kIdle;
    scan_locked();
  }

  /// Monotonically raise card c's published clock (end of a step).
  void publish(std::size_t c, Cycle t) {
    const std::lock_guard<std::mutex> lock(mu_);
    slots_[c].clock = std::max(slots_[c].clock, t);
    scan_locked();
  }

  /// Card c is done (no further admissions); scans stop considering it.
  void retire(std::size_t c) {
    const std::lock_guard<std::mutex> lock(mu_);
    slots_[c].live = false;
    slots_[c].phase = Phase::kIdle;
    scan_locked();
  }

 private:
  enum class Phase { kIdle, kPending, kGranted, kHeld };

  struct Slot {
    bool live = true;
    Cycle clock = 0;
    Phase phase = Phase::kIdle;
    Cycle key = 0;
    Grant grant;
  };

  // Resolve at most one admission: if the globally minimal blocking pair
  // belongs to a PENDING slot, pop for it at its frozen key and mark it
  // granted. A granted/held minimum blocks everyone (its pop is already in
  // the total order but its card has not folded it in yet); an idle minimum
  // means that card is mid-step and may still reserve an earlier key.
  void scan_locked() {
    std::size_t min_c = slots_.size();
    Cycle min_k = 0;
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      const Slot& s = slots_[i];
      if (!s.live) continue;
      const Cycle k = s.phase == Phase::kIdle ? s.clock : s.key;
      if (min_c == slots_.size() || k < min_k) {
        min_c = i;
        min_k = k;
      }
    }
    if (min_c == slots_.size()) return;
    Slot& s = slots_[min_c];
    if (s.phase != Phase::kPending) return;
    s.grant.outcome = queue_->try_pop(static_cast<int>(min_c), s.key,
                                      s.grant.req, &s.grant.next_arrival);
    s.phase = Phase::kGranted;
    if (on_grant_) on_grant_(min_c);
  }

  RequestQueue* queue_;
  std::function<void(std::size_t)> on_grant_;
  mutable std::mutex mu_;
  std::vector<Slot> slots_;
};

/// Persistent host worker pool owned by the Scheduler: the threads are
/// spawned once at construction and reused by every run() (and by the
/// concurrent card builds), replacing the old per-run spawn/join. Job i is
/// pinned to worker i % threads, so a card's state is only ever touched by
/// one thread across park/unpark cycles. A job returns kParked when it
/// cannot progress (admission grant pending); unpark(i) makes it runnable
/// again. With one effective thread there are no workers at all: run()
/// drives every job cooperatively on the calling thread — the forced-serial
/// mode the thread-stress test compares against.
class Scheduler::WorkerPool {
 public:
  enum class Status { kDone, kParked };
  using Job = std::function<Status()>;

  explicit WorkerPool(int threads) {
    TFACC_CHECK(threads >= 1);
    if (threads == 1) return;  // inline cooperative mode
    workers_.resize(static_cast<std::size_t>(threads));
    for (auto& w : workers_) w = std::make_unique<Worker>();
    threads_.reserve(workers_.size());
    for (std::size_t w = 0; w < workers_.size(); ++w)
      threads_.emplace_back([this, w] { worker_main(w); });
  }

  ~WorkerPool() {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    for (auto& w : workers_) w->cv.notify_all();
    for (std::thread& t : threads_) t.join();
  }

  int threads() const {
    return threads_.empty() ? 1 : static_cast<int>(threads_.size());
  }

  /// Run `jobs` to completion (every job returned kDone). Blocks the caller.
  /// Jobs must not throw — wrap them.
  void run(std::vector<Job> jobs) {
    if (jobs.empty()) return;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      jobs_ = std::move(jobs);
      live_.assign(jobs_.size(), 1);
      runnable_.assign(jobs_.size(), 1);
      remaining_ = jobs_.size();
      ++generation_;
    }
    if (threads_.empty()) {
      run_inline();
    } else {
      for (auto& w : workers_) w->cv.notify_all();
      std::unique_lock<std::mutex> lock(mu_);
      done_cv_.wait(lock, [&] { return remaining_ == 0; });
    }
    jobs_.clear();
  }

  /// Make a parked job runnable again and wake its worker. Callable from
  /// any thread (the admission gate's grant callback, possibly while that
  /// thread is executing a different job).
  void unpark(std::size_t job) {
    std::size_t w = 0;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (job >= runnable_.size() || !live_[job]) return;
      runnable_[job] = 1;
      if (threads_.empty()) return;
      w = job % workers_.size();
    }
    workers_[w]->cv.notify_all();
  }

 private:
  struct Worker {
    std::condition_variable cv;
  };

  // Cooperative single-thread mode: round-robin over runnable jobs. All
  // parked with work remaining would be a deadlock — unreachable, because a
  // job only parks on a pending reservation, and the gate grants the
  // minimal pending reservation at every interaction (the grant callback
  // marks its job runnable before the owner can observe it parked).
  void run_inline() {
    std::size_t next = 0;
    for (;;) {
      std::size_t j = jobs_.size();
      {
        const std::lock_guard<std::mutex> lock(mu_);
        if (remaining_ == 0) return;
        for (std::size_t k = 0; k < jobs_.size(); ++k) {
          const std::size_t cand = (next + k) % jobs_.size();
          if (live_[cand] && runnable_[cand]) {
            j = cand;
            break;
          }
        }
        TFACC_CHECK_MSG(j < jobs_.size(),
                        "worker pool deadlock: every live job is parked");
        runnable_[j] = 0;
      }
      next = j + 1;
      const Status st = jobs_[j]();
      if (st == Status::kDone) {
        const std::lock_guard<std::mutex> lock(mu_);
        live_[j] = 0;
        --remaining_;
      }
    }
  }

  void worker_main(std::size_t w) {
    std::unique_lock<std::mutex> lock(mu_);
    std::uint64_t seen = 0;
    for (;;) {
      workers_[w]->cv.wait(
          lock, [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = generation_;
      for (;;) {
        std::size_t j = jobs_.size();
        bool any_live = false;
        for (std::size_t cand = w; cand < jobs_.size();
             cand += workers_.size()) {
          if (!live_[cand]) continue;
          any_live = true;
          if (runnable_[cand]) {
            j = cand;
            break;
          }
        }
        if (!any_live) break;  // this generation is done for this worker
        if (j == jobs_.size()) {
          workers_[w]->cv.wait(lock, [&] {
            if (shutdown_) return true;
            for (std::size_t cand = w; cand < jobs_.size();
                 cand += workers_.size())
              if (live_[cand] && runnable_[cand]) return true;
            return false;
          });
          if (shutdown_) return;
          continue;
        }
        runnable_[j] = 0;
        lock.unlock();
        const Status st = jobs_[j]();
        lock.lock();
        if (st == Status::kDone) {
          live_[j] = 0;
          if (--remaining_ == 0) done_cv_.notify_all();
        }
      }
    }
  }

  std::mutex mu_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;
  std::vector<Job> jobs_;
  std::vector<char> live_;
  std::vector<char> runnable_;
  std::size_t remaining_ = 0;
  bool shutdown_ = false;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
};

namespace {

std::unique_ptr<SentenceSearch> make_search(const SchedulerConfig& cfg,
                                            std::optional<DecodeState> state) {
  if (cfg.beam_size < 1)
    return std::make_unique<GreedySearch>(cfg.max_len, std::move(state));
  Transformer::BeamConfig beam;
  beam.beam_size = cfg.beam_size;
  beam.length_penalty = cfg.length_penalty;
  return std::make_unique<BeamSearch>(cfg.max_len, beam, std::move(state));
}

// Full-size encoder sublayer plans for one `rows`-token sentence, synthesized
// from the model shape. Used by the functional backends in pack_prefill mode,
// where no hook captures the encoder pass: only the chunk COUNT matters there
// (it drives the virtual-time admission proxy), but the shapes are kept
// faithful so chunk_prefill splits exactly as on the accelerator.
std::vector<SublayerPlan> encoder_plan(const ModelConfig& m, int rows) {
  std::vector<SublayerPlan> subs;
  subs.reserve(static_cast<std::size_t>(2 * m.num_encoder_layers));
  for (int l = 0; l < m.num_encoder_layers; ++l) {
    subs.push_back(SublayerPlan::mha_prefill("enc" + std::to_string(2 * l),
                                             rows, rows, m.d_model,
                                             m.num_heads, rows));
    subs.push_back(SublayerPlan::ffn("enc" + std::to_string(2 * l + 1), rows,
                                     m.d_model, m.d_ff));
  }
  return subs;
}

// Host threads the pool should hold: the knob, defaulted to one thread per
// card capped at the hardware concurrency, and always clamped to num_cards
// (a card is single-threaded, extra workers would idle).
int effective_threads(const SchedulerConfig& cfg) {
  int t = cfg.host_threads;
  if (t == 0) {
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    t = static_cast<int>(
        std::min(static_cast<unsigned>(cfg.num_cards), hw));
  }
  return std::min(t, cfg.num_cards);
}

}  // namespace

// The per-card step loop, restructured as a resumable machine so a pool
// worker can park it (only) when it truly cannot progress. One iteration of
// the old loop becomes kTop → [kTopDrain] → kStepCompute → [kMidDrain] →
// kTop. In pack mode the admission drain runs MID-step (after the expensive
// decode compute, inside the still-open step ledger): a newly admitted
// sentence is never decode-ready in its admission step — its chunks are
// non-empty, so it contributes no gather rows — and its first prefill chunk
// rides this step's ledger exactly as when admission ran at the top, so the
// composed step ledger (and every modeled metric) is unchanged while the
// admission wait overlaps the step's host compute. Without packing (eager
// encode or full recompute) admission charges cycles that later pops
// observe, so those modes keep the old admit-at-top order.
struct Scheduler::CardRun {
  using Status = WorkerPool::Status;

  // One admitted sentence: its id, the encoder memory (needed per step in
  // full-recompute mode, at admission only in cached mode), its search state
  // machine, and — under pack_prefill — the not-yet-timed prefill chunks.
  // A sentence contributes decode rows only once every chunk has been
  // spliced into a prior step ledger (decode-ready in simulated time).
  struct Active {
    std::uint64_t id = 0;
    MatF memory;
    int src_valid = 0;
    std::unique_ptr<SentenceSearch> search;
    std::vector<SublayerPlan> chunks;
    std::size_t next_chunk = 0;
    bool prefill_done() const { return next_chunk >= chunks.size(); }
  };

  enum class StepPhase { kTop, kTopDrain, kStepCompute, kMidDrain };
  enum class Drain { kCompleted, kParked };

  CardRun(const SchedulerConfig& config, std::size_t card_id, Card& card_ref,
          AdmissionGate& gate_ref, ScheduleReport& report)
      : cfg(config),
        c(card_id),
        card(card_ref),
        gate(gate_ref),
        rep(report),
        stats(report.per_card[card_id]),
        step_stats(report.per_card_steps[card_id]),
        cached(cfg.decode == DecodeMode::kKvCache),
        pack(cached && cfg.accel.pack_prefill),
        demand(cfg.slot_demand()) {
    switch (cfg.backend) {
      case ServeBackend::kReference:
        card.model.set_backend(ResBlockBackend{});
        break;
      case ServeBackend::kQuantized:
        card.model.set_backend(card.qt->backend());
        break;
      case ServeBackend::kAccelerator:
        if (cached &&
            (cfg.accel.fuse_decode_step || cfg.accel.pack_prefill))
          fuser.emplace(*card.acc, &stats);
        card.model.set_backend(accelerator_backend(
            *card.qt, *card.acc, &stats, fuser ? &*fuser : nullptr));
        break;
    }
    fuse = fuser.has_value() && cfg.accel.fuse_decode_step;
  }

  /// Restore the card's default backend (normal completion or abandon after
  /// an exception — the backend must not dangle past this CardRun).
  void detach() { card.model.set_backend(ResBlockBackend{}); }

  // Virtual clock driving the admission order: simulated ResBlock cycles on
  // the accelerator; a work proxy (rows stepped + sentences admitted +
  // prefill chunks spliced) for the functional backends, which have no
  // cycle model. `clock_floor` fast-forwards an idle card past an arrival
  // gap so the admission order stays well-defined with staggered arrivals.
  Cycle busy() const {
    return cfg.backend == ServeBackend::kAccelerator
               ? stats.total_cycles()
               : static_cast<Cycle>(step_stats.packed_rows +
                                    step_stats.sentences +
                                    step_stats.prefill_chunks);
  }
  Cycle virtual_time() const { return std::max(clock_floor, busy()); }

  // Frozen reservation key. Pack mode pops mid-step, when the step's own
  // charges have already polluted the live clock, so its keys come from the
  // top-of-iteration snapshot: on the accelerator an admission charges
  // nothing (the capture defers all timing), so every pop this iteration
  // keys at the snapshot; the functional proxy counts each admitted
  // sentence, so successive pops key one tick apart — both exactly the
  // values the old admit-at-top protocol popped at. Eager modes admit at
  // the top with the live clock (their encodes charge cycles that later
  // pops must observe).
  Cycle admission_key() const {
    if (!pack) return virtual_time();
    const Cycle base = cfg.backend == ServeBackend::kAccelerator
                           ? busy_snapshot
                           : busy_snapshot +
                                 static_cast<Cycle>(admitted_in_drain);
    return std::max(clock_floor, base);
  }

  void post_reservation() {
    gate.reserve(c, admission_key());
    posted = true;
  }

  Status resume() {
    for (;;) {
      switch (phase) {
        case StepPhase::kTop: {
          if (queue_drained && active.empty() && pending_admits.empty()) {
            gate.retire(c);
            detach();
            return Status::kDone;
          }
          busy_snapshot = busy();
          admitted_in_drain = 0;
          if (pack && !active.empty()) {
            // Post the step's reservation BEFORE the decode compute so a
            // sibling's scan can resolve it while this thread crunches.
            if (!posted && !queue_drained &&
                reserved + demand <= cfg.slots_per_card)
              post_reservation();
            phase = StepPhase::kStepCompute;
          } else {
            phase = StepPhase::kTopDrain;
          }
          break;
        }
        case StepPhase::kTopDrain: {
          if (drain() == Drain::kParked) return Status::kParked;
          admit_pending();
          phase = active.empty() ? StepPhase::kTop : StepPhase::kStepCompute;
          break;
        }
        case StepPhase::kStepCompute: {
          step_compute();
          if (pack) {
            phase = StepPhase::kMidDrain;
          } else {
            close_step();
            finish_step();
            phase = StepPhase::kTop;
          }
          break;
        }
        case StepPhase::kMidDrain: {
          if (drain() == Drain::kParked) return Status::kParked;
          admit_pending();
          splice_range(ready.size(), active.size());
          close_step();
          finish_step();
          phase = StepPhase::kTop;
          break;
        }
      }
    }
  }

  // Fill every vacant slot via the reservation protocol. Never blocks the
  // host: a pending grant parks the job (kParked) and the resume re-enters
  // here. Completed leaves the gate slot idle (no reservation) unless the
  // card parked.
  Drain drain() {
    for (;;) {
      if (holding) {
        // Just consumed a pop: keep the turn and re-reserve while vacancy
        // remains, else yield it.
        if (queue_drained || reserved + demand > cfg.slots_per_card) {
          gate.release(c);
          holding = false;
          return Drain::kCompleted;
        }
        gate.reserve(c, admission_key());
        holding = false;
        posted = true;
      } else if (!posted) {
        if (queue_drained || reserved + demand > cfg.slots_per_card)
          return Drain::kCompleted;
        post_reservation();
      }
      AdmissionGate::Grant g;
      if (!gate.try_consume(c, &g)) return Drain::kParked;
      posted = false;
      holding = true;
      switch (g.outcome) {
        case RequestQueue::PopOutcome::kDrained:
          queue_drained = true;  // closed before run(): empty is final
          break;                 // loop head releases and completes
        case RequestQueue::PopOutcome::kPending:
          if (active.empty() && pending_admits.empty()) {
            // Nothing in flight: idle the card forward to the next arrival
            // so its reservation key (and the admission order) advances.
            clock_floor = std::max(clock_floor, g.next_arrival);
            // loop head re-reserves at the raised key
          } else {
            // Work in flight: keep stepping, arrivals re-check next step.
            gate.release(c);
            holding = false;
            return Drain::kCompleted;
          }
          break;
        case RequestQueue::PopOutcome::kPopped:
          admit(g.req);
          break;
      }
    }
  }

  void admit(TranslationRequest& req) {
    reserved += demand;
    ++step_stats.sentences;
    step_stats.admitted.push_back(req.id);
    ++admitted_in_drain;
    if (pack) {
      // Encode deferred until the drain completes (admit_pending) — the
      // capture charges nothing, so later pops' keys are unaffected.
      pending_admits.push_back(std::move(req));
      return;
    }
    // Eager encode, inside the held turn: the old protocol published its
    // post-encode clock before yielding, and the next reserve() does the
    // same here, so same-key siblings serialize identically.
    active.push_back(make_active(req));
  }

  void admit_pending() {
    for (TranslationRequest& req : pending_admits)
      active.push_back(make_active(req));
    pending_admits.clear();
  }

  Active make_active(const TranslationRequest& req) {
    Active a;
    a.id = req.id;
    if (pack && fuser) {
      // Accelerator packing: one bit-exact host-side encoder pass NOW
      // (outputs can never depend on timing), its cycle cost captured as
      // full-size sublayer plans and re-cut into chunks the step loop
      // splices into upcoming mixed ledgers.
      fuser->begin_prefill();
      a.memory = card.model.encode(req.src);
      a.chunks =
          chunk_prefill(fuser->end_prefill(), cfg.accel.prefill_chunk_rows);
    } else if (pack) {
      // Functional backends have no capture hooks for the encoder pass;
      // synthesize the same chunk sequence from the model shape so the
      // decode-ready delay and admission proxy behave identically.
      a.memory = card.model.encode(req.src);
      a.chunks = chunk_prefill(
          encoder_plan(card.model.weights().config,
                       static_cast<int>(req.src.size())),
          cfg.accel.prefill_chunk_rows);
    } else {
      // Eager encode (pack_prefill off): the whole encoder pass lands on
      // the card's ledger at admission; when live decode rows share the
      // card, every one of those cycles is decode time lost to prefill.
      const Cycle before = stats.total_cycles();
      a.memory = card.model.encode(req.src);
      if (cfg.backend == ServeBackend::kAccelerator && !active.empty())
        stats.prefill_stall_cycles += stats.total_cycles() - before;
    }
    for (SublayerPlan& chunk : a.chunks)
      chunk.label = "s" + std::to_string(req.id) + "." + chunk.label;
    a.src_valid = unpadded_length(req.src);
    a.search = make_search(
        cfg, cached ? std::optional<DecodeState>(card.model.begin_decode(
                          a.memory, a.src_valid))
                    : std::nullopt);
    return a;
  }

  // Splice ONE pending prefill chunk per not-yet-ready sentence in
  // [first, last) into this step — the fixed-size interleaving that stops
  // one long sentence from monopolizing a step while its siblings' beams
  // starve. Mid-drain admissions splice their first chunk through the same
  // call after the decode compute; the fused ledger orders lanes by splice
  // order either way, so the composed step ledger matches admit-at-top.
  void splice_range(std::size_t first, std::size_t last) {
    for (std::size_t ai = first; ai < last; ++ai) {
      Active& a = active[ai];
      if (a.prefill_done()) continue;
      const SublayerPlan& chunk = a.chunks[a.next_chunk++];
      ++step_stats.prefill_chunks;
      if (fuse) {
        fuser->add_prefill_chunk(chunk);
      } else if (cfg.backend == ServeBackend::kAccelerator) {
        // Unfused packing (ablation): each chunk is its own ledger beside
        // the step's per-sublayer ledgers. With decode rows waiting, the
        // whole chunk ledger is decode time lost to prefill.
        const RunReport r = card.acc->time_step(
            {FusedLane{std::vector<SublayerPlan>{chunk}, true}});
        charge_prefill_chunk(&stats, chunk, r);
        if (rows > 0) stats.prefill_stall_cycles += r.total_cycles;
      }
    }
  }

  void step_compute() {
    // Gather the next-token row of every decode-ready hypothesis on this
    // card. Readiness is snapshotted BEFORE splicing: a sentence whose last
    // prefill chunk rides THIS step's ledger becomes decode-ready next step
    // (its encoder output exists, in simulated time, only once this step's
    // graph nodes complete).
    states.clear();
    tokens.clear();
    ready.assign(active.size(), 0);
    live_counts.assign(active.size(), 0);
    rows = 0;
    for (std::size_t ai = 0; ai < active.size(); ++ai) {
      if (!active[ai].prefill_done()) continue;
      ready[ai] = 1;
      const int k = active[ai].search->live();
      live_counts[ai] = k;
      rows += k;
      if (cached) {
        for (int i = 0; i < k; ++i) {
          states.push_back(&active[ai].search->state(i));
          tokens.push_back(active[ai].search->input_token(i));
        }
      }
    }
    // Full recompute issues one whole-prefix pass per hypothesis — nothing
    // is packed — so it is charged as `rows` one-row steps; only the cached
    // mode's single stacked invocation counts as one multi-row step. A
    // prefill-only iteration (every slot still encoding) packs no decode
    // rows and is NOT a packed step.
    if (cached) {
      if (rows > 0) {
        ++step_stats.steps;
        step_stats.packed_rows += rows;
        ++step_stats.rows_hist[static_cast<std::size_t>(
            std::min(rows, cfg.slots_per_card))];
      }
    } else {
      step_stats.steps += rows;
      step_stats.packed_rows += rows;
      step_stats.rows_hist[1] += rows;
    }

    // One packed pass for every row (cached), or the legacy per-hypothesis
    // full recompute (the O(L³) comparison mode — nothing to pack there).
    if (cached) {
      if (fuse) fuser->begin_step();
      splice_range(0, active.size());
      if (rows > 0) card.model.decode_step_batch(states, tokens, flat_logits);
    } else {
      logits.clear();
      logits.reserve(static_cast<std::size_t>(rows));
      for (std::size_t ai = 0; ai < active.size(); ++ai)
        for (int i = 0; i < live_counts[ai]; ++i)
          logits.push_back(card.model.next_token_logits(
              active[ai].search->prefix(i), active[ai].memory,
              active[ai].src_valid));
    }
  }

  // One fused ledger per card-step: prefill chunks AND every sublayer the
  // packed pass ran are scheduled as a single mixed cross-sublayer graph,
  // so the card's virtual clock still advances exactly once per step.
  void close_step() {
    if (fuse) (void)fuser->end_step();
  }

  void finish_step() {
    // Scatter the logits rows back to each decode-ready sentence's search
    // machine. Mid-drain admissions sit past ready.size() and contributed
    // no rows.
    std::size_t off = 0;
    for (std::size_t ai = 0; ai < ready.size(); ++ai) {
      if (!ready[ai]) continue;
      const std::size_t k = static_cast<std::size_t>(live_counts[ai]);
      sentence_rows.resize(k);
      for (std::size_t i = 0; i < k; ++i) {
        if (cached) {
          const float* row = flat_logits.row(static_cast<int>(off + i));
          sentence_rows[i].assign(row, row + flat_logits.cols());
        } else {
          sentence_rows[i] = std::move(logits[off + i]);
        }
      }
      active[ai].search->advance(sentence_rows);
      off += k;
    }
    // Finished sentences vacate their slots; the next iteration refills.
    for (std::size_t ai = 0; ai < active.size();) {
      if (active[ai].search->done()) {
        rep.outputs[active[ai].id] = active[ai].search->result();
        reserved -= demand;
        active.erase(active.begin() + static_cast<std::ptrdiff_t>(ai));
      } else {
        ++ai;
      }
    }
    gate.publish(c, virtual_time());
  }

  // --- wiring ---------------------------------------------------------------
  const SchedulerConfig& cfg;
  std::size_t c;
  Card& card;
  AdmissionGate& gate;
  ScheduleReport& rep;
  AcceleratorStats& stats;
  CardStepStats& step_stats;
  const bool cached;
  const bool pack;
  const int demand;
  bool fuse = false;
  std::optional<DecodeStepFuser> fuser;

  // --- admission state ------------------------------------------------------
  std::vector<Active> active;
  int reserved = 0;  // slots claimed by admitted sentences (demand each)
  Cycle clock_floor = 0;
  bool queue_drained = false;
  bool posted = false;   // reservation outstanding (pending or granted)
  bool holding = false;  // consumed a grant, turn not yet yielded
  Cycle busy_snapshot = 0;   // busy() at the top of this iteration
  int admitted_in_drain = 0;
  std::vector<TranslationRequest> pending_admits;  // pack: encode deferred

  // --- step state -----------------------------------------------------------
  StepPhase phase = StepPhase::kTop;
  int rows = 0;
  // Per-iteration gather/scatter buffers, hoisted so their capacities
  // persist: together with the allocation-free decode_step_batch overload,
  // a warm steady-state step touches the heap only inside the search
  // machines.
  std::vector<DecodeState*> states;
  std::vector<int> tokens;
  std::vector<char> ready;
  std::vector<int> live_counts;
  MatF flat_logits;                               // cached mode: rows × vocab
  std::vector<std::vector<float>> logits;         // full-recompute rows
  std::vector<std::vector<float>> sentence_rows;  // advance() marshalling
};

Scheduler::Scheduler(const TransformerWeights& weights,
                     const std::vector<TokenSeq>& calib_sources,
                     SchedulerConfig cfg)
    : cfg_(cfg) {
  cfg_.validate();
  TFACC_CHECK_ARG_MSG(
      cfg_.backend == ServeBackend::kReference || !calib_sources.empty(),
      "need at least one calibration sentence");
  pool_ = std::make_unique<WorkerPool>(effective_threads(cfg_));
  // Card setups are independent (each copies the weights and calibrates its
  // own quantization), so build them concurrently on the pool like run()
  // decodes.
  cards_.resize(static_cast<std::size_t>(cfg_.num_cards));
  std::exception_ptr error;
  std::mutex error_mu;
  std::vector<WorkerPool::Job> jobs;
  jobs.reserve(cards_.size());
  for (std::size_t c = 0; c < cards_.size(); ++c)
    jobs.push_back([&, c]() -> WorkerPool::Status {
      try {
        cards_[c] = std::make_unique<Card>(weights, calib_sources, cfg_);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mu);
        if (!error) error = std::current_exception();
      }
      return WorkerPool::Status::kDone;
    });
  pool_->run(std::move(jobs));
  if (error) std::rethrow_exception(error);
}

Scheduler::~Scheduler() = default;

ScheduleReport Scheduler::run(const std::vector<TokenSeq>& sources) {
  return run(sources, {});
}

ScheduleReport Scheduler::run(const std::vector<TokenSeq>& sources,
                              const std::vector<Cycle>& arrivals) {
  TFACC_CHECK_ARG_MSG(arrivals.empty() || arrivals.size() == sources.size(),
                      "arrivals must be empty or one per source, got "
                          << arrivals.size() << " for " << sources.size()
                          << " sources");
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    TFACC_CHECK_ARG_MSG(arrivals[i] >= 0,
                        "arrivals must be >= 0, got " << arrivals[i]
                            << " at index " << i);
    TFACC_CHECK_ARG_MSG(i == 0 || arrivals[i - 1] <= arrivals[i],
                        "arrivals must be non-decreasing, got "
                            << arrivals[i] << " after " << arrivals[i - 1]);
  }
  ScheduleReport rep;
  rep.clock_mhz = cfg_.accel.clock_mhz;
  rep.outputs.resize(sources.size());
  rep.per_card.assign(cards_.size(), AcceleratorStats{});
  rep.per_card_steps.assign(cards_.size(), CardStepStats{});
  for (CardStepStats& s : rep.per_card_steps)
    s.rows_hist.assign(static_cast<std::size_t>(cfg_.slots_per_card) + 1, 0);

  RequestQueue queue(cfg_.num_cards);
  // Sorted-arrival pushes keep every shard's FIFO arrival-sorted, which the
  // arrival-aware try_pop relies on (see request_queue.hpp).
  for (std::size_t i = 0; i < sources.size(); ++i)
    queue.push(TranslationRequest{static_cast<std::uint64_t>(i), sources[i],
                                  arrivals.empty() ? 0 : arrivals[i]});
  queue.close();

  AdmissionGate gate(cards_.size(), queue,
                     [this](std::size_t j) { pool_->unpark(j); });
  std::vector<std::unique_ptr<CardRun>> runs;
  runs.reserve(cards_.size());
  for (std::size_t c = 0; c < cards_.size(); ++c)
    runs.push_back(
        std::make_unique<CardRun>(cfg_, c, *cards_[c], gate, rep));
  std::exception_ptr error;
  std::mutex error_mu;
  std::vector<WorkerPool::Job> jobs;
  jobs.reserve(cards_.size());
  for (std::size_t c = 0; c < cards_.size(); ++c)
    jobs.push_back([&, c]() -> WorkerPool::Status {
      try {
        return runs[c]->resume();
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock(error_mu);
          if (!error) error = std::current_exception();
        }
        // Retire the card so siblings do not wait forever on its clock —
        // the old per-run threads would deadlock here instead.
        gate.retire(c);
        runs[c]->detach();
        return WorkerPool::Status::kDone;
      }
    });
  const auto t0 = std::chrono::steady_clock::now();
  pool_->run(std::move(jobs));
  rep.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (error) std::rethrow_exception(error);
  return rep;
}

}  // namespace tfacc
