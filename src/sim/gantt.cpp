#include "sim/gantt.hpp"

#include <algorithm>
#include <ostream>
#include <string>

#include "common/check.hpp"

namespace tfacc {

void render_gantt(const Timeline& timeline, std::ostream& os, int width) {
  TFACC_CHECK_ARG(width > 0);
  const Cycle end = timeline.end_time();
  if (end == 0) {
    os << "(empty timeline)\n";
    return;
  }
  os << "cycles 0 .. " << end << "  ('#' busy, '.' idle, one column ≈ "
     << (end + width - 1) / width << " cycles)\n";
  for (const auto& module : timeline.modules()) {
    std::string row(static_cast<std::size_t>(width), '.');
    for (const auto& iv : module.intervals()) {
      const int a = static_cast<int>(iv.start * width / end);
      int b = static_cast<int>(iv.end * width / end);
      b = std::min(b, width - 1);
      for (int i = a; i <= b; ++i) row[static_cast<std::size_t>(i)] = '#';
    }
    os.width(10);
    os << std::left << module.name() << ' ' << row << '\n';
    os.width(0);
  }
}

}  // namespace tfacc
