#include "sim/timeline.hpp"

#include <algorithm>
#include <ostream>

namespace tfacc {

ModuleTimeline& Timeline::module(const std::string& name) {
  for (auto& m : modules_)
    if (m.name() == name) return m;
  modules_.emplace_back(name);
  return modules_.back();
}

const ModuleTimeline* Timeline::find(const std::string& name) const {
  for (const auto& m : modules_)
    if (m.name() == name) return &m;
  return nullptr;
}

Cycle Timeline::end_time() const {
  Cycle end = 0;
  for (const auto& m : modules_) end = std::max(end, m.end_time());
  return end;
}

void Timeline::write_csv(std::ostream& os) const {
  os << "module,start,end,label\n";
  for (const auto& m : modules_)
    for (const auto& iv : m.intervals())
      os << m.name() << ',' << iv.start << ',' << iv.end << ',' << iv.label
         << '\n';
}

}  // namespace tfacc
