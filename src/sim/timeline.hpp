// Cycle-level timeline bookkeeping for the accelerator model.
//
// The simulator is transaction-level: each hardware module is a resource
// whose busy intervals are reserved in program order by the controller
// (Algorithm 1). Per-module busy cycles, utilization and a CSV trace fall
// out of the same records. A clocked PE-level systolic-array model
// (systolic_rtl.hpp) grounds the per-operation formulas used here.
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/check.hpp"

namespace tfacc {

using Cycle = std::int64_t;

/// One busy interval [start, end) of one module.
struct Interval {
  Cycle start = 0;
  Cycle end = 0;
  std::string label;

  Cycle duration() const { return end - start; }
};

/// Busy-interval ledger of one hardware module (SA, Softmax, LayerNorm, ...).
/// Reservations are non-overlapping and issued in non-decreasing start order,
/// matching an in-order hardware pipeline.
class ModuleTimeline {
 public:
  explicit ModuleTimeline(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Reserve `duration` cycles starting no earlier than `earliest` and no
  /// earlier than the previous reservation's end. Returns the interval.
  Interval reserve(Cycle earliest, Cycle duration, std::string label) {
    TFACC_CHECK_ARG_MSG(duration >= 0, "duration " << duration);
    const Cycle start = std::max(earliest, free_at_);
    Interval iv{start, start + duration, std::move(label)};
    free_at_ = iv.end;
    busy_ += duration;
    intervals_.push_back(iv);
    return iv;
  }

  /// First cycle at which a new reservation could start.
  Cycle free_at() const { return free_at_; }
  /// Total cycles this module was busy.
  Cycle busy_cycles() const { return busy_; }
  /// End of the last reservation (0 if none).
  Cycle end_time() const { return free_at_; }

  const std::vector<Interval>& intervals() const { return intervals_; }

 private:
  std::string name_;
  Cycle free_at_ = 0;
  Cycle busy_ = 0;
  std::vector<Interval> intervals_;
};

/// A set of module timelines forming one simulation run.
class Timeline {
 public:
  /// Get or create the timeline of a module. The returned reference stays
  /// valid for the lifetime of the Timeline (deque storage — modules are
  /// held by long-lived scheduler objects).
  ModuleTimeline& module(const std::string& name);
  /// Const lookup that never creates a ledger: nullptr when the module was
  /// never scheduled. Report code must use this — module() would silently
  /// add empty ledgers for units that never ran, polluting write_csv and
  /// gantt output.
  const ModuleTimeline* find(const std::string& name) const;
  const std::deque<ModuleTimeline>& modules() const { return modules_; }

  /// Latest end time across all modules (= total latency).
  Cycle end_time() const;

  /// Dump all intervals as CSV: module,start,end,label.
  void write_csv(std::ostream& os) const;

 private:
  std::deque<ModuleTimeline> modules_;
};

}  // namespace tfacc
