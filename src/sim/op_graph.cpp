#include "sim/op_graph.hpp"

#include <algorithm>

namespace tfacc {

const char* op_resource_name(OpResource r) {
  switch (r) {
    case OpResource::kSa:
      return "SA";
    case OpResource::kSoftmax:
      return "Softmax";
    case OpResource::kLayerNorm:
      return "LayerNorm";
    case OpResource::kWeightLoad:
      return "WeightLoad";
  }
  TFACC_CHECK(false);
  return "";
}

int OpGraph::add(OpNode op) {
  const int id = size();
  TFACC_CHECK_ARG_MSG(op.duration >= 0 && op.result_latency >= 0,
                      "op " << op.label << " has negative cycles");
  for (const int d : op.deps)
    TFACC_CHECK_ARG_MSG(d >= 0 && d < id,
                        "op " << op.label << " dep " << d
                              << " not added before it");
  TFACC_CHECK_ARG(op.weight_dep == OpNode::kStaticWeight ||
                  (op.weight_dep >= 0 && op.weight_dep < id));
  ops_.push_back(std::move(op));
  return id;
}

int OpGraph::add_sa(const SaCost& cost, std::vector<int> deps, int weight_dep,
                    std::string label, int softmax_dep) {
  OpNode op;
  op.resource = OpResource::kSa;
  op.label = std::move(label);
  op.duration = cost.duration;
  op.stream_cycles = cost.stream;
  op.spill_cycles = cost.spill;
  op.deps = std::move(deps);
  op.weight_dep = weight_dep;
  op.softmax_dep = softmax_dep;
  if (softmax_dep >= 0)
    TFACC_CHECK_ARG_MSG(std::find(op.deps.begin(), op.deps.end(),
                                  softmax_dep) != op.deps.end(),
                        "softmax_dep must be one of the op's deps");
  return add(std::move(op));
}

int OpGraph::add_softmax(Cycle occupancy, Cycle result_latency, int scores_dep,
                         std::string label) {
  OpNode op;
  op.resource = OpResource::kSoftmax;
  op.label = std::move(label);
  op.duration = occupancy;
  op.result_latency = result_latency;
  op.deps = {scores_dep};
  return add(std::move(op));
}

int OpGraph::add_layernorm(Cycle duration, std::vector<int> deps,
                           std::string label) {
  OpNode op;
  op.resource = OpResource::kLayerNorm;
  op.label = std::move(label);
  op.duration = duration;
  op.deps = std::move(deps);
  return add(std::move(op));
}

void OpGraph::mark_prefill(int begin, int end) {
  TFACC_CHECK_ARG(begin >= 0 && begin <= end && end <= size());
  for (int i = begin; i < end; ++i)
    ops_[static_cast<std::size_t>(i)].prefill = true;
}

int OpGraph::add_weight_load(Cycle duration, std::vector<int> deps,
                             std::string label) {
  OpNode op;
  op.resource = OpResource::kWeightLoad;
  op.label = std::move(label);
  op.duration = duration;
  op.deps = std::move(deps);
  return add(std::move(op));
}

namespace {

/// Issue-time constraints of one op: when its streaming operands are done
/// and when its stationary operand's first tile sits in the SA buffer.
struct OpReadiness {
  Cycle data_ready = 0;
  Cycle tile_ready = 0;

  Cycle earliest() const { return std::max(data_ready, tile_ready); }
};

}  // namespace

ScheduleStats schedule_ops(const OpGraph& g, Cycle weight_load_cycles,
                           IssuePolicy policy, Timeline& tl) {
  TFACC_CHECK_ARG(weight_load_cycles >= 0);
  const std::vector<OpNode>& ops = g.ops();
  const int n = g.size();

  ScheduleStats st;
  st.weight_load_cycles = weight_load_cycles;
  st.intervals.resize(static_cast<std::size_t>(n));
  st.result_ready.assign(static_cast<std::size_t>(n), 0);

  // Only touch ledgers for resources the graph actually uses (an FFN run
  // must not materialize an empty Softmax ledger).
  ModuleTimeline* modules[4] = {nullptr, nullptr, nullptr, nullptr};
  for (const OpNode& op : ops) {
    const auto r = static_cast<std::size_t>(op.resource);
    if (modules[r] == nullptr)
      modules[r] = &tl.module(op_resource_name(op.resource));
  }
  const auto module_of = [&](const OpNode& op) -> ModuleTimeline& {
    return *modules[static_cast<std::size_t>(op.resource)];
  };

  // Dependency bookkeeping: an op becomes ready once every dep (data and
  // stationary) has been issued — their finish times are then known.
  std::vector<int> pending(static_cast<std::size_t>(n), 0);
  std::vector<std::vector<int>> dependents(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const auto count_dep = [&](int d) {
      ++pending[static_cast<std::size_t>(i)];
      dependents[static_cast<std::size_t>(d)].push_back(i);
    };
    for (const int d : ops[static_cast<std::size_t>(i)].deps) count_dep(d);
    const int wd = ops[static_cast<std::size_t>(i)].weight_dep;
    if (wd >= 0) count_dep(wd);
  }
  // The ready set is kept as an explicit (unordered) list so each issue
  // round scans only the ready ops, not all n — fused decode-step ledgers
  // splice many sublayers into one graph, and an all-ops scan per round
  // would grow quadratically with the sublayer count.
  std::vector<char> issued(static_cast<std::size_t>(n), 0);
  std::vector<int> ready_list;
  for (int i = 0; i < n; ++i)
    if (pending[static_cast<std::size_t>(i)] == 0) ready_list.push_back(i);

  bool first_sa_op = true;
  const auto readiness_of = [&](int id) {
    const OpNode& op = ops[static_cast<std::size_t>(id)];
    OpReadiness r;
    for (const int d : op.deps)
      r.data_ready =
          std::max(r.data_ready, st.result_ready[static_cast<std::size_t>(d)]);
    if (op.resource == OpResource::kSa) {
      // Static weights prefetch under the previous op (double buffering);
      // only the run's first SA op sees the initial load. Dynamic operands
      // (K₁ᵀ, V₁) cannot be loaded before they are produced.
      if (op.weight_dep >= 0)
        r.tile_ready =
            st.result_ready[static_cast<std::size_t>(op.weight_dep)] +
            weight_load_cycles;
      else if (first_sa_op)
        r.tile_ready = weight_load_cycles;
    }
    return r;
  };

  int program_next = 0;  // kProgramOrder: lowest unissued id, amortized O(n)
  for (int count = 0; count < n; ++count) {
    int pick = -1;
    std::size_t pick_slot = 0;  // pick's position in ready_list, for erasure
    if (policy == IssuePolicy::kProgramOrder) {
      // Builders add ops dep-first, so the lowest unissued id is ready.
      while (issued[static_cast<std::size_t>(program_next)]) ++program_next;
      pick = program_next;
      bool is_ready = false;
      for (std::size_t s = 0; s < ready_list.size(); ++s)
        if (ready_list[s] == pick) {
          is_ready = true;
          pick_slot = s;
          break;
        }
      TFACC_CHECK_MSG(is_ready,
                      "op " << ops[static_cast<std::size_t>(pick)].label
                            << " issued before its deps (builder order)");
    } else {
      // Greedy event-ordered issue: the ready op that can start earliest on
      // its resource goes next; ties break toward insertion (program)
      // order — the (start, id) lexicographic minimum, so the unordered
      // ready list picks exactly what an ascending full scan would.
      Cycle pick_start = 0;
      for (std::size_t s = 0; s < ready_list.size(); ++s) {
        const int i = ready_list[s];
        const Cycle start =
            std::max(readiness_of(i).earliest(),
                     module_of(ops[static_cast<std::size_t>(i)]).free_at());
        if (pick < 0 || start < pick_start ||
            (start == pick_start && i < pick)) {
          pick = i;
          pick_start = start;
          pick_slot = s;
        }
      }
    }
    TFACC_CHECK(pick >= 0);

    const OpNode& op = ops[static_cast<std::size_t>(pick)];
    ModuleTimeline& m = module_of(op);
    const OpReadiness r = readiness_of(pick);
    if (op.resource == OpResource::kSa) {
      const Cycle sa_free = m.free_at();
      // Exposed load = cycles the SA sits idle purely waiting for the
      // stationary operand's first tile.
      st.sa_exposed_load += std::max<Cycle>(
          0, r.tile_ready - std::max(r.data_ready, sa_free));
      if (op.softmax_dep >= 0) {
        // Per-edge overlap check: what would this op's start be if the
        // softmax result were free? Anything later than the softmax result
        // is slack; anything earlier is an SA stall charged to softmax.
        Cycle other = std::max(sa_free, r.tile_ready);
        for (const int d : op.deps)
          if (d != op.softmax_dep)
            other = std::max(other,
                             st.result_ready[static_cast<std::size_t>(d)]);
        const Cycle slack =
            other - st.result_ready[static_cast<std::size_t>(op.softmax_dep)];
        st.softmax_slack_min = std::min(st.softmax_slack_min, slack);
        st.softmax_stall += std::max<Cycle>(0, -slack);
        ++st.softmax_edges;
      }
      st.sa_stream += op.stream_cycles;
      st.sa_spill += op.spill_cycles;
      if (op.prefill) st.prefill_sa_busy += op.duration;
      first_sa_op = false;
    }
    const Interval iv = m.reserve(r.earliest(), op.duration, op.label);
    st.intervals[static_cast<std::size_t>(pick)] = iv;
    st.result_ready[static_cast<std::size_t>(pick)] =
        iv.end + op.result_latency;
    issued[static_cast<std::size_t>(pick)] = 1;
    ready_list[pick_slot] = ready_list.back();
    ready_list.pop_back();
    for (const int dep : dependents[static_cast<std::size_t>(pick)])
      if (--pending[static_cast<std::size_t>(dep)] == 0)
        ready_list.push_back(dep);
  }
  return st;
}

// audit_schedule() is implemented in analysis/verifier.cpp since PR 7: it
// is a thin compat shim over the typed schedule verifier.

}  // namespace tfacc
