// Clocked (per-cycle, per-PE) model of the output-stationary systolic array.
//
// This is the register-transfer-level grounding for the transaction-level
// timing used by the accelerator model: operands enter skewed by one cycle
// per row/column, every PE multiply-accumulates the INT8 operands flowing
// right/down, and the product matrix leaves column by column on an s-wide
// drain bus (Section IV: "It is designed to output the product matrix column
// by column, so each column has s elements").
//
// For A (R×K) · B (K×C) the model completes in exactly K + R + C - 1 cycles:
// PE(r,c) performs its last MAC at cycle K-1+r+c and column c drains at cycle
// K+R+c-1, one column per cycle, back to back. Tests assert both the cycle
// count and bit-exact equality with the plain GEMM.
#pragma once

#include "sim/timeline.hpp"
#include "tensor/matrix.hpp"

namespace tfacc {

class SystolicArrayRtl {
 public:
  /// Construct an array with the given physical dimensions.
  SystolicArrayRtl(int rows, int cols);

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  struct RunResult {
    MatI32 out;     ///< A·B, bit-exact INT32 accumulators
    Cycle cycles;   ///< cycles from first operand entering to last column drained
  };

  /// Clock the array through one full operation. a is R×K with R <= rows(),
  /// b is K×C with C <= cols(). Unused PEs idle.
  RunResult run(const MatI8& a, const MatI8& b) const;

  /// The closed-form latency the clocked model is expected to achieve.
  static Cycle expected_cycles(int r, int k, int c) { return k + r + c - 1; }

 private:
  int rows_;
  int cols_;
};

}  // namespace tfacc
