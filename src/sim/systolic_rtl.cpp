#include "sim/systolic_rtl.hpp"

namespace tfacc {

SystolicArrayRtl::SystolicArrayRtl(int rows, int cols)
    : rows_(rows), cols_(cols) {
  TFACC_CHECK_ARG(rows > 0 && cols > 0);
}

SystolicArrayRtl::RunResult SystolicArrayRtl::run(const MatI8& a,
                                                  const MatI8& b) const {
  const int r_used = a.rows();
  const int k = a.cols();
  const int c_used = b.cols();
  TFACC_CHECK_ARG(b.rows() == k);
  TFACC_CHECK_ARG_MSG(r_used <= rows_ && c_used <= cols_,
                      "operand " << r_used << 'x' << c_used
                                 << " exceeds array " << rows_ << 'x' << cols_);
  TFACC_CHECK_ARG(k > 0 && r_used > 0 && c_used > 0);

  // Per-PE state. a flows left→right, b flows top→down; both advance one PE
  // per cycle. Registers are updated from the previous cycle's values by
  // sweeping from the high indices down (each PE reads its left/top
  // neighbour, which still holds the old value during the sweep).
  MatI8 a_reg(r_used, c_used), b_reg(r_used, c_used);
  MatI32 acc(r_used, c_used);
  MatI32 out(r_used, c_used);

  const Cycle total = expected_cycles(r_used, k, c_used);
  for (Cycle t = 0; t < total; ++t) {
    for (int r = r_used - 1; r >= 0; --r) {
      for (int c = c_used - 1; c >= 0; --c) {
        // Skewed edge feeds: A(r, t-r) enters column 0; B(t-c, c) enters row 0.
        const std::int64_t ka = t - r - c;  // the k index visible at PE(r,c)
        std::int8_t a_in = 0, b_in = 0;
        if (c == 0) {
          const std::int64_t kf = t - r;
          a_in = (kf >= 0 && kf < k) ? a(r, static_cast<int>(kf)) : 0;
        } else {
          a_in = a_reg(r, c - 1);
        }
        if (r == 0) {
          const std::int64_t kf = t - c;
          b_in = (kf >= 0 && kf < k) ? b(static_cast<int>(kf), c) : 0;
        } else {
          b_in = b_reg(r - 1, c);
        }
        if (ka >= 0 && ka < k)
          acc(r, c) += static_cast<std::int32_t>(a_in) * b_in;
        a_reg(r, c) = a_in;
        b_reg(r, c) = b_in;
      }
    }
    // Column drain bus: column c is complete after cycle k-1 + (r_used-1) + c,
    // i.e. drains during cycle k + r_used + c - 1 (0-indexed t).
    const std::int64_t drain_col = t - (k + r_used - 1);
    if (drain_col >= 0 && drain_col < c_used)
      for (int r = 0; r < r_used; ++r)
        out(r, static_cast<int>(drain_col)) = acc(r, static_cast<int>(drain_col));
  }
  return RunResult{std::move(out), total};
}

}  // namespace tfacc
