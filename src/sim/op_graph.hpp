// Dependency-driven operation scheduling for the accelerator model (PR 4).
//
// The controller flows of Algorithm 1 used to be emitted in strict program
// order: each slot's QKt → softmax → AV chain reserved its modules one after
// the other, so the systolic array idled through every softmax latency. Here
// the flows become explicit dependency graphs — attention ops are nodes with
// data edges — and a greedy event-ordered list scheduler places ready ops on
// the SA / Softmax / LayerNorm resources. While the softmax unit processes
// slot r of head h, the SA streams slot r+1's QKt (or the next head's
// projections): softmax latency turns into overlap instead of a bubble.
//
// The scheduler is a *timing* device only. Functional results are computed
// by the controller in program order as before; reordering is legal because
// every reordered pair is data-independent by construction (audit_schedule
// checks exactly that, and tests run it over every rebuilt flow).
#pragma once

#include <limits>
#include <string>
#include <vector>

#include "sim/timeline.hpp"

namespace tfacc {

/// Hardware resource an op occupies (one ModuleTimeline each). kWeightLoad
/// is the weight-memory load port: fused multi-sublayer ledgers (PR 5)
/// reserve the next sublayer's initial tile load on it, so the load runs
/// under the previous sublayer's compute instead of stalling the SA cold.
enum class OpResource { kSa, kSoftmax, kLayerNorm, kWeightLoad };

/// Ledger name of a resource ("SA", "Softmax", "LayerNorm", "WeightLoad").
const char* op_resource_name(OpResource r);

/// How schedule_ops picks the next op to place.
///
/// kProgramOrder reproduces the pre-PR-4 controller exactly: ops issue in
/// insertion order, each waiting for its operands — softmax latency is a
/// bubble on the SA whenever the next op in the program consumes it.
/// kGreedy issues, at every step, the ready op that can start earliest on
/// its resource (ties break toward insertion order), which interleaves
/// independent slots/heads across the softmax latency.
enum class IssuePolicy { kProgramOrder, kGreedy };

/// One node: `duration` busy cycles on `resource`, gated by data deps.
struct OpNode {
  OpResource resource = OpResource::kSa;
  std::string label;
  Cycle duration = 0;        ///< busy occupancy on the resource
  Cycle result_latency = 0;  ///< pipeline drain after occupancy before
                             ///< consumers may start (softmax: fill depth)
  Cycle stream_cycles = 0;   ///< SA only: MAC-issuing cycles
  Cycle spill_cycles = 0;    ///< SA only: accumulator spill cycles
  /// Producers of the streaming operand(s); this op starts no earlier than
  /// every producer's result time.
  std::vector<int> deps;
  /// SA only: producer of the stationary operand, or kStaticWeight when it
  /// is resident in the weight memory (tile loads prefetch under the
  /// previous op; only the run's first SA op pays the initial load).
  int weight_dep = kStaticWeight;
  /// The dep (if any) that is a softmax feeding this SA op — tracked so the
  /// scheduler can attribute SA stall cycles to softmax per edge.
  int softmax_dep = -1;
  /// True for ops belonging to a prefill (encoder chunk) lane of a mixed
  /// prefill/decode step ledger (PR 6). Purely an attribution tag: the
  /// scheduler and audit treat prefill ops like any other, but the fused
  /// composer uses it to split SA busy cycles between the lanes.
  bool prefill = false;

  static constexpr int kStaticWeight = -1;
};

/// Builder for one ResBlock flow. Ops must be added in a topological order
/// (deps before dependents); insertion order doubles as program order for
/// IssuePolicy::kProgramOrder and as the tie-break priority for kGreedy.
class OpGraph {
 public:
  struct SaCost {
    Cycle duration = 0;
    Cycle stream = 0;
    Cycle spill = 0;
  };

  /// Add a GEMM on the SA. `weight_dep` is the op producing the stationary
  /// operand (OpNode::kStaticWeight for resident weights). `softmax_dep`
  /// marks the dep that is a softmax output, for stall attribution.
  int add_sa(const SaCost& cost, std::vector<int> deps, int weight_dep,
             std::string label, int softmax_dep = -1);

  /// Add a softmax: `occupancy` cycles on the unit, results usable
  /// `result_latency` cycles after the occupancy ends (the Fig. 6 pipeline
  /// drains while the next row streams in).
  int add_softmax(Cycle occupancy, Cycle result_latency, int scores_dep,
                  std::string label);

  /// Add a LayerNorm tail gated on every producer of G.
  int add_layernorm(Cycle duration, std::vector<int> deps, std::string label);

  /// Add a weight-tile prefetch on the load port: `duration` cycles (one
  /// tile load), gated on `deps`. The tile buffer holds a single pending
  /// tile, so a fused composer passes the previous sublayer's first SA op
  /// as the dep — the buffer is free again only once that op has consumed
  /// its tile (single residency). SA ops listing the prefetch among their
  /// deps start no earlier than the load completes; because the load IS the
  /// dep, no extra weight_load_cycles are added on the edge.
  int add_weight_load(Cycle duration, std::vector<int> deps,
                      std::string label);

  /// Tag ops [begin, end) as prefill-lane members (see OpNode::prefill).
  void mark_prefill(int begin, int end);

  const std::vector<OpNode>& ops() const { return ops_; }
  int size() const { return static_cast<int>(ops_.size()); }

 private:
  int add(OpNode op);

  std::vector<OpNode> ops_;
};

/// Outcome of scheduling one OpGraph into a Timeline.
struct ScheduleStats {
  std::vector<Interval> intervals;    ///< per op id, as reserved
  std::vector<Cycle> result_ready;    ///< interval end + result_latency
  Cycle weight_load_cycles = 0;       ///< the load latency scheduled with
  Cycle sa_stream = 0;                ///< Σ MAC-issuing cycles
  Cycle sa_spill = 0;                 ///< Σ accumulator spill cycles
  Cycle sa_exposed_load = 0;          ///< SA idle purely on weight-tile loads
  Cycle prefill_sa_busy = 0;          ///< Σ SA busy cycles of prefill ops
  /// min over softmax→SA edges of (the consumer's earliest start ignoring
  /// the softmax) − (softmax result time). >= 0 on every edge means no SA
  /// cycle was lost to softmax latency — the paper's overlap claim, checked
  /// per edge so one slot's generous slack cannot mask another's stall.
  Cycle softmax_slack_min = std::numeric_limits<Cycle>::max();
  Cycle softmax_stall = 0;            ///< Σ SA cycles stalled on softmax
  int softmax_edges = 0;
};

/// Place every op of `g` onto the timeline under `policy`. Deterministic:
/// identical graphs and policies produce identical reservations on any host.
ScheduleStats schedule_ops(const OpGraph& g, Cycle weight_load_cycles,
                           IssuePolicy policy, Timeline& tl);

/// Legality audit — COMPAT SHIM over the typed schedule verifier
/// (analysis/verifier.hpp) since PR 7. Returns "" when legal, else the
/// first diagnostic's formatted message. New code should call
/// verify_schedule() directly and consume the typed Diagnostics (stable
/// code, offending op ids, resource, cycle interval).
std::string audit_schedule(const OpGraph& g, const ScheduleStats& st);

}  // namespace tfacc
