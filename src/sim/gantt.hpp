// ASCII Gantt rendering of a Timeline — a terminal "waveform view" of the
// Fig. 5 modules, used by examples/profile_timeline.
#pragma once

#include <iosfwd>

#include "sim/timeline.hpp"

namespace tfacc {

/// Render every module's busy intervals as one row of '#' (busy) and '.'
/// (idle) characters, scaled to `width` columns over [0, end_time).
void render_gantt(const Timeline& timeline, std::ostream& os, int width = 96);

}  // namespace tfacc
