#include "reference/transformer.hpp"

#include <algorithm>
#include <cmath>

#include "reference/search.hpp"
#include "tensor/kernels.hpp"
#include "tensor/ops.hpp"

namespace tfacc {

namespace {
// Initial positional-table allocation; positions() grows past it on demand.
constexpr int kInitialPositions = 512;

// Thread-local scratch of the packed decode step (decode_step_batch): the
// per-slot mask and cache-pointer lists are rebuilt each step, but their
// buffers persist across steps, keeping the warm step loop allocation-free.
struct StepScratch {
  std::vector<Mask> self_masks, cross_masks;
  std::vector<MhaCache*> self_caches, cross_caches;
};

StepScratch& step_scratch() {
  thread_local StepScratch s;
  return s;
}

/// Does this std::function still hold the free function it was defaulted to?
template <typename Sig, typename Fn>
bool holds_default(const std::function<Sig>& f, Fn* def) {
  Fn* const* target = f.template target<Fn*>();
  return target != nullptr && *target == def;
}
}  // namespace

bool ResBlockBackend::supports_cached_decode() const {
  if (!mha_cached || !mha_self_cache || !mha_cross_cache) return false;
  const bool cached_is_default =
      holds_default(mha_cached, &ref_mha_cached) &&
      holds_default(mha_self_cache, &ref_mha_self_cache) &&
      holds_default(mha_cross_cache, &ref_mha_cross_cache);
  // Default cached hooks only match a default mha; overridden cached hooks
  // are the author's claim of consistency and are trusted.
  return !cached_is_default || holds_default(mha, &mha_resblock);
}

bool ResBlockBackend::supports_batched_decode() const {
  if (!supports_cached_decode() || !mha_cached_batch) return false;
  // The default batch hook only matches backends whose cached hooks are also
  // the reference defaults; an overridden batch hook is the author's claim
  // of row-for-row agreement with their mha_cached and is trusted.
  return !holds_default(mha_cached_batch, &ref_mha_cached_batch) ||
         holds_default(mha_cached, &ref_mha_cached);
}

int unpadded_length(const TokenSeq& seq) {
  int valid = static_cast<int>(seq.size());
  while (valid > 0 && seq[static_cast<std::size_t>(valid - 1)] == kPadId)
    --valid;
  return valid;
}

MatF positional_encoding(int max_len, int d_model) {
  TFACC_CHECK_ARG(max_len > 0 && d_model > 0 && d_model % 2 == 0);
  MatF pe(max_len, d_model);
  for (int pos = 0; pos < max_len; ++pos) {
    for (int i = 0; i < d_model / 2; ++i) {
      const double angle =
          pos / std::pow(10000.0, (2.0 * i) / static_cast<double>(d_model));
      pe(pos, 2 * i) = static_cast<float>(std::sin(angle));
      pe(pos, 2 * i + 1) = static_cast<float>(std::cos(angle));
    }
  }
  return pe;
}

Transformer::Transformer(TransformerWeights weights)
    : weights_(std::move(weights)),
      pos_encoding_(std::make_shared<const MatF>(
          positional_encoding(kInitialPositions, weights_.config.d_model))) {
  weights_.config.validate();
}

std::shared_ptr<const MatF> Transformer::positions(int rows) const {
  const MutexLock lock(pos_mu_);
  if (rows > pos_encoding_->rows()) {
    const int grown = std::max(rows, 2 * pos_encoding_->rows());
    pos_encoding_ = std::make_shared<const MatF>(
        positional_encoding(grown, weights_.config.d_model));
  }
  return pos_encoding_;
}

MatF Transformer::embed(const TokenSeq& tokens, const MatF& embedding) const {
  TFACC_CHECK_ARG(!tokens.empty());
  const int d_model = weights_.config.d_model;
  const float scale = std::sqrt(static_cast<float>(d_model));
  const auto pe = positions(static_cast<int>(tokens.size()));
  MatF out(static_cast<int>(tokens.size()), d_model);
  for (int r = 0; r < out.rows(); ++r) {
    const int id = tokens[static_cast<std::size_t>(r)];
    TFACC_CHECK_ARG_MSG(id >= 0 && id < weights_.vocab_size,
                        "token id " << id);
    for (int c = 0; c < d_model; ++c)
      out(r, c) = embedding(id, c) * scale + (*pe)(r, c);
  }
  return out;
}

MatF Transformer::encode(const TokenSeq& src) const {
  MatF x = embed(src, weights_.src_embedding);
  const int s = x.rows();
  // Padding tokens (id 0) at the tail are masked from attention keys.
  const Mask mask = padding_mask(s, s, unpadded_length(src));
  for (const auto& layer : weights_.encoder_layers) {
    x = backend_.mha(x, x, layer.mha, mask);
    x = backend_.ffn(x, layer.ffn);
  }
  return x;
}

MatF Transformer::decode_states(const TokenSeq& tgt, const MatF& memory,
                                int src_valid_len) const {
  MatF y = embed(tgt, weights_.tgt_embedding);
  const int t = y.rows();
  const Mask self_mask = causal_mask(t);
  const Mask cross_mask = padding_mask(t, memory.rows(), src_valid_len);
  for (const auto& layer : weights_.decoder_layers) {
    y = backend_.mha(y, y, layer.self_mha, self_mask);
    y = backend_.mha(y, memory, layer.cross_mha, cross_mask);
    y = backend_.ffn(y, layer.ffn);
  }
  return y;
}

std::vector<float> Transformer::next_token_logits(const TokenSeq& tgt,
                                                  const MatF& memory,
                                                  int src_valid_len) const {
  const MatF states = decode_states(tgt, memory, src_valid_len);
  const MatF last = states.block(states.rows() - 1, 0, 1, states.cols());
  const MatF logits = gemm(last, weights_.output_projection);
  std::vector<float> out(static_cast<std::size_t>(logits.cols()));
  for (int c = 0; c < logits.cols(); ++c)
    out[static_cast<std::size_t>(c)] = logits(0, c);
  return out;
}

DecodeState Transformer::begin_decode(const MatF& memory,
                                      int src_valid_len) const {
  TFACC_CHECK_ARG(src_valid_len >= 0 && src_valid_len <= memory.rows());
  DecodeState state;
  state.memory_rows = memory.rows();
  state.src_valid = src_valid_len;
  state.self_kv.reserve(weights_.decoder_layers.size());
  state.cross_kv.reserve(weights_.decoder_layers.size());
  for (const auto& layer : weights_.decoder_layers) {
    state.self_kv.push_back(backend_.mha_self_cache(layer.self_mha));
    state.cross_kv.emplace_back(
        backend_.mha_cross_cache(memory, layer.cross_mha));
  }
  return state;
}

std::vector<float> Transformer::decode_step(DecodeState& state,
                                            int token) const {
  TFACC_CHECK_ARG_MSG(token >= 0 && token < weights_.vocab_size,
                      "token id " << token);
  TFACC_CHECK_ARG(state.self_kv.size() == weights_.decoder_layers.size());
  const int d_model = weights_.config.d_model;
  const float scale = std::sqrt(static_cast<float>(d_model));
  const auto pe = positions(state.steps + 1);
  MatF y(1, d_model);
  for (int c = 0; c < d_model; ++c)
    y(0, c) =
        weights_.tgt_embedding(token, c) * scale + (*pe)(state.steps, c);

  // Row `steps` of causal_mask(steps + 1) attends to every position ≤ steps
  // — exactly the rows the self cache holds after this step's append.
  const Mask self_mask = no_mask(1, state.steps + 1);
  const Mask cross_mask = padding_mask(1, state.memory_rows, state.src_valid);
  for (std::size_t li = 0; li < weights_.decoder_layers.size(); ++li) {
    const auto& layer = weights_.decoder_layers[li];
    y = backend_.mha_cached(y, *state.self_kv[li], layer.self_mha, self_mask,
                            /*append=*/true);
    y = backend_.mha_cached(y, *state.cross_kv[li], layer.cross_mha,
                            cross_mask, /*append=*/false);
    y = backend_.ffn(y, layer.ffn);
  }
  ++state.steps;

  const MatF logits = gemm(y, weights_.output_projection);
  std::vector<float> out(static_cast<std::size_t>(logits.cols()));
  for (int c = 0; c < logits.cols(); ++c)
    out[static_cast<std::size_t>(c)] = logits(0, c);
  return out;
}

std::vector<std::vector<float>> Transformer::decode_step_batch(
    const std::vector<DecodeState*>& states,
    const std::vector<int>& tokens) const {
  MatF logits;
  decode_step_batch(states, tokens, logits);
  std::vector<std::vector<float>> out(states.size());
  for (int i = 0; i < logits.rows(); ++i) {
    const float* row = logits.row(i);
    out[static_cast<std::size_t>(i)].assign(row, row + logits.cols());
  }
  return out;
}

void Transformer::decode_step_batch(const std::vector<DecodeState*>& states,
                                    const std::vector<int>& tokens,
                                    MatF& logits) const {
  TFACC_CHECK_ARG(!states.empty() && states.size() == tokens.size());
  const int n = static_cast<int>(states.size());
  const int vocab = weights_.output_projection.cols();
  if (logits.rows() != n || logits.cols() != vocab) logits = MatF(n, vocab);

  if (!backend_.supports_batched_decode()) {
    // Untrusted batch hook: the serial path is bit-identical by definition.
    for (int i = 0; i < n; ++i) {
      const std::vector<float> row =
          decode_step(*states[static_cast<std::size_t>(i)],
                      tokens[static_cast<std::size_t>(i)]);
      std::copy(row.begin(), row.end(), logits.row(i));
    }
    return;
  }

  const int d_model = weights_.config.d_model;
  const float scale = std::sqrt(static_cast<float>(d_model));
  int max_pos = 0;
  for (int i = 0; i < n; ++i) {
    const DecodeState& s = *states[static_cast<std::size_t>(i)];
    TFACC_CHECK_ARG(s.self_kv.size() == weights_.decoder_layers.size());
    const int tok = tokens[static_cast<std::size_t>(i)];
    TFACC_CHECK_ARG_MSG(tok >= 0 && tok < weights_.vocab_size,
                        "token id " << tok);
    max_pos = std::max(max_pos, s.steps);
  }
  const auto pe = positions(max_pos + 1);

  // Per-thread step scratch: the mask and cache-pointer lists are rebuilt
  // every step but keep their buffers, so a warm step allocates nothing
  // (the masks themselves draw from the recycling byte pool).
  StepScratch& sc = step_scratch();

  // Stack every hypothesis's embedded input row (each at its own position).
  MatF y(n, d_model);
  sc.self_masks.clear();
  sc.cross_masks.clear();
  for (int i = 0; i < n; ++i) {
    const DecodeState& s = *states[static_cast<std::size_t>(i)];
    const int tok = tokens[static_cast<std::size_t>(i)];
    for (int c = 0; c < d_model; ++c)
      y(i, c) = weights_.tgt_embedding(tok, c) * scale + (*pe)(s.steps, c);
    // Row `steps` of causal_mask(steps + 1), as in decode_step.
    sc.self_masks.push_back(no_mask(1, s.steps + 1));
    sc.cross_masks.push_back(padding_mask(1, s.memory_rows, s.src_valid));
  }

  sc.self_caches.resize(states.size());
  sc.cross_caches.resize(states.size());
  for (std::size_t li = 0; li < weights_.decoder_layers.size(); ++li) {
    const auto& layer = weights_.decoder_layers[li];
    for (std::size_t i = 0; i < states.size(); ++i) {
      sc.self_caches[i] = states[i]->self_kv[li].get();
      sc.cross_caches[i] = states[i]->cross_kv[li].get();
    }
    y = backend_.mha_cached_batch(y, sc.self_caches, layer.self_mha,
                                  sc.self_masks, /*append=*/true);
    y = backend_.mha_cached_batch(y, sc.cross_caches, layer.cross_mha,
                                  sc.cross_masks, /*append=*/false);
    y = backend_.ffn(y, layer.ffn);
  }
  for (DecodeState* s : states) ++s->steps;

  kernels::gemm_f32_into(y, weights_.output_projection, logits);
}

TokenSeq Transformer::translate_beam(const TokenSeq& src, int max_len,
                                     const BeamConfig& beam,
                                     DecodeMode mode) const {
  TFACC_CHECK_ARG(max_len > 0);
  TFACC_CHECK_ARG(beam.beam_size >= 1);
  const MatF memory = encode(src);
  const int src_valid = unpadded_length(src);
  const bool cached = mode == DecodeMode::kKvCache &&
                      backend_.supports_cached_decode();

  // Invariant of a cached hypothesis: its state has consumed every token but
  // the last, so one decode_step(input_token) yields the next logits. The
  // serve/ scheduler drives the same BeamSearch machine with packed steps,
  // which is what makes its outputs bit-identical to this serial loop.
  BeamSearch search(max_len, beam,
                    cached ? std::optional<DecodeState>(
                                 begin_decode(memory, src_valid))
                           : std::nullopt);
  while (!search.done()) {
    std::vector<std::vector<float>> logits;
    logits.reserve(static_cast<std::size_t>(search.live()));
    for (int i = 0; i < search.live(); ++i)
      logits.push_back(cached
                           ? decode_step(search.state(i), search.input_token(i))
                           : next_token_logits(search.prefix(i), memory,
                                               src_valid));
    search.advance(logits);
  }
  return search.result();
}

TokenSeq Transformer::translate_beam(const TokenSeq& src, int max_len) const {
  return translate_beam(src, max_len, BeamConfig{});
}

TokenSeq Transformer::translate_greedy(const TokenSeq& src, int max_len,
                                       DecodeMode mode) const {
  TFACC_CHECK_ARG(max_len > 0);
  const MatF memory = encode(src);
  const int src_valid = unpadded_length(src);
  const bool cached = mode == DecodeMode::kKvCache &&
                      backend_.supports_cached_decode();

  GreedySearch search(max_len,
                      cached ? std::optional<DecodeState>(
                                   begin_decode(memory, src_valid))
                             : std::nullopt);
  while (!search.done()) {
    search.advance({cached ? decode_step(search.state(0),
                                         search.input_token(0))
                           : next_token_logits(search.prefix(0), memory,
                                               src_valid)});
  }
  return search.result();
}

}  // namespace tfacc
