#include "reference/transformer.hpp"

#include <algorithm>
#include <cmath>

#include "tensor/ops.hpp"

namespace tfacc {

namespace {
// Initial positional-table allocation; positions() grows past it on demand.
constexpr int kInitialPositions = 512;

/// Does this std::function still hold the free function it was defaulted to?
template <typename Sig, typename Fn>
bool holds_default(const std::function<Sig>& f, Fn* def) {
  Fn* const* target = f.template target<Fn*>();
  return target != nullptr && *target == def;
}
}  // namespace

bool ResBlockBackend::supports_cached_decode() const {
  if (!mha_cached || !mha_self_cache || !mha_cross_cache) return false;
  const bool cached_is_default =
      holds_default(mha_cached, &ref_mha_cached) &&
      holds_default(mha_self_cache, &ref_mha_self_cache) &&
      holds_default(mha_cross_cache, &ref_mha_cross_cache);
  // Default cached hooks only match a default mha; overridden cached hooks
  // are the author's claim of consistency and are trusted.
  return !cached_is_default || holds_default(mha, &mha_resblock);
}

MatF positional_encoding(int max_len, int d_model) {
  TFACC_CHECK_ARG(max_len > 0 && d_model > 0 && d_model % 2 == 0);
  MatF pe(max_len, d_model);
  for (int pos = 0; pos < max_len; ++pos) {
    for (int i = 0; i < d_model / 2; ++i) {
      const double angle =
          pos / std::pow(10000.0, (2.0 * i) / static_cast<double>(d_model));
      pe(pos, 2 * i) = static_cast<float>(std::sin(angle));
      pe(pos, 2 * i + 1) = static_cast<float>(std::cos(angle));
    }
  }
  return pe;
}

Transformer::Transformer(TransformerWeights weights)
    : weights_(std::move(weights)),
      pos_encoding_(std::make_shared<const MatF>(
          positional_encoding(kInitialPositions, weights_.config.d_model))) {
  weights_.config.validate();
}

std::shared_ptr<const MatF> Transformer::positions(int rows) const {
  const std::lock_guard<std::mutex> lock(pos_mu_);
  if (rows > pos_encoding_->rows()) {
    const int grown = std::max(rows, 2 * pos_encoding_->rows());
    pos_encoding_ = std::make_shared<const MatF>(
        positional_encoding(grown, weights_.config.d_model));
  }
  return pos_encoding_;
}

MatF Transformer::embed(const TokenSeq& tokens, const MatF& embedding) const {
  TFACC_CHECK_ARG(!tokens.empty());
  const int d_model = weights_.config.d_model;
  const float scale = std::sqrt(static_cast<float>(d_model));
  const auto pe = positions(static_cast<int>(tokens.size()));
  MatF out(static_cast<int>(tokens.size()), d_model);
  for (int r = 0; r < out.rows(); ++r) {
    const int id = tokens[static_cast<std::size_t>(r)];
    TFACC_CHECK_ARG_MSG(id >= 0 && id < weights_.vocab_size,
                        "token id " << id);
    for (int c = 0; c < d_model; ++c)
      out(r, c) = embedding(id, c) * scale + (*pe)(r, c);
  }
  return out;
}

MatF Transformer::encode(const TokenSeq& src) const {
  MatF x = embed(src, weights_.src_embedding);
  const int s = x.rows();
  // Padding tokens (id 0) at the tail are masked from attention keys.
  int valid = s;
  while (valid > 0 && src[static_cast<std::size_t>(valid - 1)] == kPadId)
    --valid;
  const Mask mask = padding_mask(s, s, valid);
  for (const auto& layer : weights_.encoder_layers) {
    x = backend_.mha(x, x, layer.mha, mask);
    x = backend_.ffn(x, layer.ffn);
  }
  return x;
}

MatF Transformer::decode_states(const TokenSeq& tgt, const MatF& memory,
                                int src_valid_len) const {
  MatF y = embed(tgt, weights_.tgt_embedding);
  const int t = y.rows();
  const Mask self_mask = causal_mask(t);
  const Mask cross_mask = padding_mask(t, memory.rows(), src_valid_len);
  for (const auto& layer : weights_.decoder_layers) {
    y = backend_.mha(y, y, layer.self_mha, self_mask);
    y = backend_.mha(y, memory, layer.cross_mha, cross_mask);
    y = backend_.ffn(y, layer.ffn);
  }
  return y;
}

std::vector<float> Transformer::next_token_logits(const TokenSeq& tgt,
                                                  const MatF& memory,
                                                  int src_valid_len) const {
  const MatF states = decode_states(tgt, memory, src_valid_len);
  const MatF last = states.block(states.rows() - 1, 0, 1, states.cols());
  const MatF logits = gemm(last, weights_.output_projection);
  std::vector<float> out(static_cast<std::size_t>(logits.cols()));
  for (int c = 0; c < logits.cols(); ++c)
    out[static_cast<std::size_t>(c)] = logits(0, c);
  return out;
}

DecodeState Transformer::begin_decode(const MatF& memory,
                                      int src_valid_len) const {
  TFACC_CHECK_ARG(src_valid_len >= 0 && src_valid_len <= memory.rows());
  DecodeState state;
  state.memory_rows = memory.rows();
  state.src_valid = src_valid_len;
  state.self_kv.reserve(weights_.decoder_layers.size());
  state.cross_kv.reserve(weights_.decoder_layers.size());
  for (const auto& layer : weights_.decoder_layers) {
    state.self_kv.push_back(backend_.mha_self_cache(layer.self_mha));
    state.cross_kv.emplace_back(
        backend_.mha_cross_cache(memory, layer.cross_mha));
  }
  return state;
}

std::vector<float> Transformer::decode_step(DecodeState& state,
                                            int token) const {
  TFACC_CHECK_ARG_MSG(token >= 0 && token < weights_.vocab_size,
                      "token id " << token);
  TFACC_CHECK_ARG(state.self_kv.size() == weights_.decoder_layers.size());
  const int d_model = weights_.config.d_model;
  const float scale = std::sqrt(static_cast<float>(d_model));
  const auto pe = positions(state.steps + 1);
  MatF y(1, d_model);
  for (int c = 0; c < d_model; ++c)
    y(0, c) =
        weights_.tgt_embedding(token, c) * scale + (*pe)(state.steps, c);

  // Row `steps` of causal_mask(steps + 1) attends to every position ≤ steps
  // — exactly the rows the self cache holds after this step's append.
  const Mask self_mask = no_mask(1, state.steps + 1);
  const Mask cross_mask = padding_mask(1, state.memory_rows, state.src_valid);
  for (std::size_t li = 0; li < weights_.decoder_layers.size(); ++li) {
    const auto& layer = weights_.decoder_layers[li];
    y = backend_.mha_cached(y, *state.self_kv[li], layer.self_mha, self_mask,
                            /*append=*/true);
    y = backend_.mha_cached(y, *state.cross_kv[li], layer.cross_mha,
                            cross_mask, /*append=*/false);
    y = backend_.ffn(y, layer.ffn);
  }
  ++state.steps;

  const MatF logits = gemm(y, weights_.output_projection);
  std::vector<float> out(static_cast<std::size_t>(logits.cols()));
  for (int c = 0; c < logits.cols(); ++c)
    out[static_cast<std::size_t>(c)] = logits(0, c);
  return out;
}

namespace {

/// Row log-softmax of raw logits.
std::vector<float> log_softmax(const std::vector<float>& logits) {
  float mx = logits[0];
  for (float v : logits) mx = std::max(mx, v);
  double sum = 0.0;
  for (float v : logits) sum += std::exp(static_cast<double>(v) - mx);
  const float log_z = mx + static_cast<float>(std::log(sum));
  std::vector<float> out(logits.size());
  for (std::size_t i = 0; i < logits.size(); ++i) out[i] = logits[i] - log_z;
  return out;
}

/// GNMT length-normalized score of a hypothesis with `emitted` tokens.
float beam_score(float logprob, int emitted, float alpha) {
  const float len = std::max(1.0f, static_cast<float>(emitted));
  return logprob / std::pow((5.0f + len) / 6.0f, alpha);
}

}  // namespace

TokenSeq Transformer::translate_beam(const TokenSeq& src, int max_len,
                                     const BeamConfig& beam,
                                     DecodeMode mode) const {
  TFACC_CHECK_ARG(max_len > 0);
  TFACC_CHECK_ARG(beam.beam_size >= 1);
  const MatF memory = encode(src);
  int src_valid = static_cast<int>(src.size());
  while (src_valid > 0 && src[static_cast<std::size_t>(src_valid - 1)] == kPadId)
    --src_valid;
  const bool cached = mode == DecodeMode::kKvCache &&
                      backend_.supports_cached_decode();

  // Invariant of a cached hypothesis: `state` has consumed every token but
  // the last, so one decode_step(tokens.back()) yields the next logits.
  struct Hypothesis {
    TokenSeq tokens;  // starts with BOS
    float logprob = 0.0f;
    bool finished = false;
    DecodeState state;

    float score(float alpha) const {
      return beam_score(logprob, static_cast<int>(tokens.size()) - 1, alpha);
    }
  };

  std::vector<Hypothesis> live;
  {
    Hypothesis first;
    first.tokens = {kBosId};
    if (cached) first.state = begin_decode(memory, src_valid);
    live.push_back(std::move(first));
  }
  std::vector<Hypothesis> finished;

  for (int step = 0; step < max_len && !live.empty(); ++step) {
    // Candidates fork their parent's cache lazily: only the survivors of the
    // beam cut pay the clone.
    struct Candidate {
      TokenSeq tokens;
      float logprob = 0.0f;
      bool finished = false;
      std::size_t parent = 0;
    };
    std::vector<Candidate> candidates;
    for (std::size_t i = 0; i < live.size(); ++i) {
      Hypothesis& hyp = live[i];
      const auto logits =
          cached ? decode_step(hyp.state, hyp.tokens.back())
                 : next_token_logits(hyp.tokens, memory, src_valid);
      const auto logp = log_softmax(logits);
      // Top beam_size expansions of this hypothesis.
      std::vector<int> order(logp.size());
      for (std::size_t j = 0; j < order.size(); ++j)
        order[j] = static_cast<int>(j);
      const std::size_t keep =
          std::min<std::size_t>(order.size(),
                                static_cast<std::size_t>(beam.beam_size));
      std::partial_sort(order.begin(), order.begin() + keep, order.end(),
                        [&](int a, int b) {
                          return logp[static_cast<std::size_t>(a)] >
                                 logp[static_cast<std::size_t>(b)];
                        });
      for (std::size_t k = 0; k < keep; ++k) {
        Candidate next;
        next.tokens = hyp.tokens;
        next.tokens.push_back(order[k]);
        next.logprob =
            hyp.logprob + logp[static_cast<std::size_t>(order[k])];
        next.finished = order[k] == kEosId;
        next.parent = i;
        candidates.push_back(std::move(next));
      }
    }
    std::sort(candidates.begin(), candidates.end(),
              [&](const Candidate& a, const Candidate& b) {
                return beam_score(a.logprob,
                                  static_cast<int>(a.tokens.size()) - 1,
                                  beam.length_penalty) >
                       beam_score(b.logprob,
                                  static_cast<int>(b.tokens.size()) - 1,
                                  beam.length_penalty);
              });
    std::vector<Hypothesis> next_live;
    std::vector<std::size_t> parents;
    for (auto& cand : candidates) {
      if (cand.finished) {
        Hypothesis done;
        done.tokens = std::move(cand.tokens);
        done.logprob = cand.logprob;
        done.finished = true;
        finished.push_back(std::move(done));
      } else if (static_cast<int>(next_live.size()) < beam.beam_size) {
        Hypothesis h;
        h.tokens = std::move(cand.tokens);
        h.logprob = cand.logprob;
        next_live.push_back(std::move(h));
        parents.push_back(cand.parent);
      }
      if (static_cast<int>(finished.size()) >= beam.beam_size) break;
    }
    if (cached) {
      // Fork the caches: the last surviving child of each parent steals the
      // parent's (already advanced) state; only additional children pay a
      // deep clone. In the common one-survivor-per-parent case no clone
      // happens at all.
      std::vector<int> remaining(live.size(), 0);
      for (const std::size_t p : parents) ++remaining[p];
      for (std::size_t i = 0; i < next_live.size(); ++i) {
        const std::size_t p = parents[i];
        next_live[i].state = --remaining[p] == 0
                                 ? std::move(live[p].state)
                                 : live[p].state.clone();
      }
    }
    live = std::move(next_live);
    if (static_cast<int>(finished.size()) >= beam.beam_size) break;
  }

  for (auto& hyp : live) finished.push_back(std::move(hyp));
  TFACC_CHECK(!finished.empty());
  const auto best = std::max_element(
      finished.begin(), finished.end(),
      [&](const Hypothesis& a, const Hypothesis& b) {
        return a.score(beam.length_penalty) < b.score(beam.length_penalty);
      });
  TokenSeq out(best->tokens.begin() + 1, best->tokens.end());
  if (!out.empty() && out.back() == kEosId) out.pop_back();
  return out;
}

TokenSeq Transformer::translate_beam(const TokenSeq& src, int max_len) const {
  return translate_beam(src, max_len, BeamConfig{});
}

TokenSeq Transformer::translate_greedy(const TokenSeq& src, int max_len,
                                       DecodeMode mode) const {
  TFACC_CHECK_ARG(max_len > 0);
  const MatF memory = encode(src);
  int src_valid = static_cast<int>(src.size());
  while (src_valid > 0 && src[static_cast<std::size_t>(src_valid - 1)] == kPadId)
    --src_valid;

  if (mode == DecodeMode::kFullRecompute ||
      !backend_.supports_cached_decode()) {
    TokenSeq tgt{kBosId};
    for (int step = 0; step < max_len; ++step) {
      const auto logits = next_token_logits(tgt, memory, src_valid);
      const int next = static_cast<int>(
          std::max_element(logits.begin(), logits.end()) - logits.begin());
      if (next == kEosId) break;
      tgt.push_back(next);
    }
    return TokenSeq(tgt.begin() + 1, tgt.end());
  }

  DecodeState state = begin_decode(memory, src_valid);
  TokenSeq out;
  int prev = kBosId;
  for (int step = 0; step < max_len; ++step) {
    const auto logits = decode_step(state, prev);
    const int next = static_cast<int>(
        std::max_element(logits.begin(), logits.end()) - logits.begin());
    if (next == kEosId) break;
    out.push_back(next);
    prev = next;
  }
  return out;
}

}  // namespace tfacc
