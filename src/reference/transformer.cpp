#include "reference/transformer.hpp"

#include <algorithm>
#include <cmath>

#include "tensor/ops.hpp"

namespace tfacc {

namespace {
constexpr int kMaxPosition = 512;
}

MatF positional_encoding(int max_len, int d_model) {
  TFACC_CHECK_ARG(max_len > 0 && d_model > 0 && d_model % 2 == 0);
  MatF pe(max_len, d_model);
  for (int pos = 0; pos < max_len; ++pos) {
    for (int i = 0; i < d_model / 2; ++i) {
      const double angle =
          pos / std::pow(10000.0, (2.0 * i) / static_cast<double>(d_model));
      pe(pos, 2 * i) = static_cast<float>(std::sin(angle));
      pe(pos, 2 * i + 1) = static_cast<float>(std::cos(angle));
    }
  }
  return pe;
}

Transformer::Transformer(TransformerWeights weights)
    : weights_(std::move(weights)),
      pos_encoding_(positional_encoding(kMaxPosition,
                                        weights_.config.d_model)) {
  weights_.config.validate();
}

MatF Transformer::embed(const TokenSeq& tokens, const MatF& embedding) const {
  TFACC_CHECK_ARG(!tokens.empty());
  const int d_model = weights_.config.d_model;
  const float scale = std::sqrt(static_cast<float>(d_model));
  MatF out(static_cast<int>(tokens.size()), d_model);
  for (int r = 0; r < out.rows(); ++r) {
    const int id = tokens[static_cast<std::size_t>(r)];
    TFACC_CHECK_ARG_MSG(id >= 0 && id < weights_.vocab_size,
                        "token id " << id);
    TFACC_CHECK_ARG_MSG(r < pos_encoding_.rows(), "sequence too long");
    for (int c = 0; c < d_model; ++c)
      out(r, c) = embedding(id, c) * scale + pos_encoding_(r, c);
  }
  return out;
}

MatF Transformer::encode(const TokenSeq& src) const {
  MatF x = embed(src, weights_.src_embedding);
  const int s = x.rows();
  // Padding tokens (id 0) at the tail are masked from attention keys.
  int valid = s;
  while (valid > 0 && src[static_cast<std::size_t>(valid - 1)] == kPadId)
    --valid;
  const Mask mask = padding_mask(s, s, valid);
  for (const auto& layer : weights_.encoder_layers) {
    x = backend_.mha(x, x, layer.mha, mask);
    x = backend_.ffn(x, layer.ffn);
  }
  return x;
}

MatF Transformer::decode_states(const TokenSeq& tgt, const MatF& memory,
                                int src_valid_len) const {
  MatF y = embed(tgt, weights_.tgt_embedding);
  const int t = y.rows();
  const Mask self_mask = causal_mask(t);
  const Mask cross_mask = padding_mask(t, memory.rows(), src_valid_len);
  for (const auto& layer : weights_.decoder_layers) {
    y = backend_.mha(y, y, layer.self_mha, self_mask);
    y = backend_.mha(y, memory, layer.cross_mha, cross_mask);
    y = backend_.ffn(y, layer.ffn);
  }
  return y;
}

std::vector<float> Transformer::next_token_logits(const TokenSeq& tgt,
                                                  const MatF& memory,
                                                  int src_valid_len) const {
  const MatF states = decode_states(tgt, memory, src_valid_len);
  const MatF last = states.block(states.rows() - 1, 0, 1, states.cols());
  const MatF logits = gemm(last, weights_.output_projection);
  std::vector<float> out(static_cast<std::size_t>(logits.cols()));
  for (int c = 0; c < logits.cols(); ++c)
    out[static_cast<std::size_t>(c)] = logits(0, c);
  return out;
}

namespace {

/// Row log-softmax of raw logits.
std::vector<float> log_softmax(const std::vector<float>& logits) {
  float mx = logits[0];
  for (float v : logits) mx = std::max(mx, v);
  double sum = 0.0;
  for (float v : logits) sum += std::exp(static_cast<double>(v) - mx);
  const float log_z = mx + static_cast<float>(std::log(sum));
  std::vector<float> out(logits.size());
  for (std::size_t i = 0; i < logits.size(); ++i) out[i] = logits[i] - log_z;
  return out;
}

}  // namespace

TokenSeq Transformer::translate_beam(const TokenSeq& src, int max_len,
                                     const BeamConfig& beam) const {
  TFACC_CHECK_ARG(max_len > 0);
  TFACC_CHECK_ARG(beam.beam_size >= 1);
  const MatF memory = encode(src);
  int src_valid = static_cast<int>(src.size());
  while (src_valid > 0 && src[static_cast<std::size_t>(src_valid - 1)] == kPadId)
    --src_valid;

  struct Hypothesis {
    TokenSeq tokens;       // starts with BOS
    float logprob = 0.0f;
    bool finished = false;

    float score(float alpha) const {
      const float len =
          static_cast<float>(tokens.size() - 1);  // emitted tokens
      const float norm = std::pow((5.0f + std::max(1.0f, len)) / 6.0f, alpha);
      return logprob / norm;
    }
  };

  std::vector<Hypothesis> live{Hypothesis{{kBosId}, 0.0f, false}};
  std::vector<Hypothesis> finished;

  for (int step = 0; step < max_len && !live.empty(); ++step) {
    std::vector<Hypothesis> candidates;
    for (const auto& hyp : live) {
      const auto logits = next_token_logits(hyp.tokens, memory, src_valid);
      const auto logp = log_softmax(logits);
      // Top beam_size expansions of this hypothesis.
      std::vector<int> order(logp.size());
      for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = static_cast<int>(i);
      const std::size_t keep =
          std::min<std::size_t>(order.size(),
                                static_cast<std::size_t>(beam.beam_size));
      std::partial_sort(order.begin(), order.begin() + keep, order.end(),
                        [&](int a, int b) {
                          return logp[static_cast<std::size_t>(a)] >
                                 logp[static_cast<std::size_t>(b)];
                        });
      for (std::size_t k = 0; k < keep; ++k) {
        Hypothesis next = hyp;
        next.tokens.push_back(order[k]);
        next.logprob += logp[static_cast<std::size_t>(order[k])];
        next.finished = order[k] == kEosId;
        candidates.push_back(std::move(next));
      }
    }
    std::sort(candidates.begin(), candidates.end(),
              [&](const Hypothesis& a, const Hypothesis& b) {
                return a.score(beam.length_penalty) >
                       b.score(beam.length_penalty);
              });
    live.clear();
    for (auto& cand : candidates) {
      if (cand.finished)
        finished.push_back(std::move(cand));
      else if (static_cast<int>(live.size()) < beam.beam_size)
        live.push_back(std::move(cand));
      if (static_cast<int>(finished.size()) >= beam.beam_size) break;
    }
    if (static_cast<int>(finished.size()) >= beam.beam_size) break;
  }

  for (auto& hyp : live) finished.push_back(std::move(hyp));
  TFACC_CHECK(!finished.empty());
  const auto best = std::max_element(
      finished.begin(), finished.end(),
      [&](const Hypothesis& a, const Hypothesis& b) {
        return a.score(beam.length_penalty) < b.score(beam.length_penalty);
      });
  TokenSeq out(best->tokens.begin() + 1, best->tokens.end());
  if (!out.empty() && out.back() == kEosId) out.pop_back();
  return out;
}

TokenSeq Transformer::translate_beam(const TokenSeq& src, int max_len) const {
  return translate_beam(src, max_len, BeamConfig{});
}

TokenSeq Transformer::translate_greedy(const TokenSeq& src,
                                       int max_len) const {
  TFACC_CHECK_ARG(max_len > 0);
  const MatF memory = encode(src);
  int src_valid = static_cast<int>(src.size());
  while (src_valid > 0 && src[static_cast<std::size_t>(src_valid - 1)] == kPadId)
    --src_valid;

  TokenSeq tgt{kBosId};
  for (int step = 0; step < max_len; ++step) {
    const auto logits = next_token_logits(tgt, memory, src_valid);
    const int next = static_cast<int>(
        std::max_element(logits.begin(), logits.end()) - logits.begin());
    if (next == kEosId) break;
    tgt.push_back(next);
  }
  return TokenSeq(tgt.begin() + 1, tgt.end());
}

}  // namespace tfacc
