#include "reference/weights.hpp"

#include <cmath>

#include "tensor/ops.hpp"

namespace tfacc {

namespace {

// Xavier-style initialization keeps activations in a stable range, which in
// turn keeps INT8 calibration representative across all experiments.
MatF xavier(int rows, int cols, Rng& rng) {
  MatF m(rows, cols);
  const float bound = std::sqrt(6.0f / static_cast<float>(rows + cols));
  fill_uniform(m, rng, -bound, bound);
  return m;
}

std::vector<float> small_bias(int n, Rng& rng) {
  std::vector<float> b(n);
  for (auto& v : b) v = static_cast<float>(rng.uniform(-0.05, 0.05));
  return b;
}

}  // namespace

LayerNormParams LayerNormParams::identity(int d_model) {
  LayerNormParams p;
  p.gamma.assign(d_model, 1.0f);
  p.beta.assign(d_model, 0.0f);
  return p;
}

LayerNormParams LayerNormParams::random(int d_model, Rng& rng) {
  LayerNormParams p;
  p.gamma.resize(d_model);
  p.beta.resize(d_model);
  for (auto& g : p.gamma) g = static_cast<float>(rng.uniform(0.8, 1.2));
  for (auto& b : p.beta) b = static_cast<float>(rng.uniform(-0.1, 0.1));
  return p;
}

MhaWeights MhaWeights::random(const ModelConfig& cfg, Rng& rng) {
  cfg.validate();
  MhaWeights w;
  w.heads.resize(cfg.num_heads);
  for (auto& head : w.heads) {
    head.wq = xavier(cfg.d_model, cfg.head_dim, rng);
    head.wk = xavier(cfg.d_model, cfg.head_dim, rng);
    head.wv = xavier(cfg.d_model, cfg.head_dim, rng);
    head.bq = small_bias(cfg.head_dim, rng);
    head.bk = small_bias(cfg.head_dim, rng);
    head.bv = small_bias(cfg.head_dim, rng);
  }
  w.wg = xavier(cfg.d_model, cfg.d_model, rng);
  w.bg = small_bias(cfg.d_model, rng);
  w.norm = LayerNormParams::random(cfg.d_model, rng);
  return w;
}

FfnWeights FfnWeights::random(const ModelConfig& cfg, Rng& rng) {
  cfg.validate();
  FfnWeights w;
  w.w1 = xavier(cfg.d_model, cfg.d_ff, rng);
  w.b1 = small_bias(cfg.d_ff, rng);
  w.w2 = xavier(cfg.d_ff, cfg.d_model, rng);
  w.b2 = small_bias(cfg.d_model, rng);
  w.norm = LayerNormParams::random(cfg.d_model, rng);
  return w;
}

EncoderLayerWeights EncoderLayerWeights::random(const ModelConfig& cfg,
                                                Rng& rng) {
  return EncoderLayerWeights{MhaWeights::random(cfg, rng),
                             FfnWeights::random(cfg, rng)};
}

DecoderLayerWeights DecoderLayerWeights::random(const ModelConfig& cfg,
                                                Rng& rng) {
  return DecoderLayerWeights{MhaWeights::random(cfg, rng),
                             MhaWeights::random(cfg, rng),
                             FfnWeights::random(cfg, rng)};
}

TransformerWeights TransformerWeights::random(const ModelConfig& cfg,
                                              int vocab_size, Rng& rng) {
  cfg.validate();
  TFACC_CHECK_ARG(vocab_size > 0);
  TransformerWeights w;
  w.config = cfg;
  w.vocab_size = vocab_size;
  w.src_embedding = xavier(vocab_size, cfg.d_model, rng);
  w.tgt_embedding = xavier(vocab_size, cfg.d_model, rng);
  w.output_projection = xavier(cfg.d_model, vocab_size, rng);
  w.encoder_layers.reserve(cfg.num_encoder_layers);
  for (int i = 0; i < cfg.num_encoder_layers; ++i)
    w.encoder_layers.push_back(EncoderLayerWeights::random(cfg, rng));
  w.decoder_layers.reserve(cfg.num_decoder_layers);
  for (int i = 0; i < cfg.num_decoder_layers; ++i)
    w.decoder_layers.push_back(DecoderLayerWeights::random(cfg, rng));
  return w;
}

}  // namespace tfacc
