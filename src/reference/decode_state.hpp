// Incremental (KV-cached) decoding state.
//
// Autoregressive decoding re-reads the keys and values of every earlier
// position at every step; recomputing them from scratch makes one sentence
// O(L³) in emitted length. Every operation in the decoder stack is
// row-independent (gemm, bias, softmax, LayerNorm and the quantizers all
// process one row from that row's inputs alone), so projecting K/V once per
// position and replaying the stored rows is *bit-identical* to the full
// recompute — the property the equivalence suite in tests/test_kv_cache.cpp
// pins down for all three backends.
//
// A backend owns the representation of its cache (FP32 rows here; the INT8
// backends store the already-quantized rows so no requantization drift can
// occur); the decode loop only sees the MhaCache interface.
#pragma once

#include <memory>
#include <vector>

#include "reference/functional.hpp"
#include "reference/weights.hpp"

namespace tfacc {

/// Per-layer attention K/V cache, owned by the backend that created it.
class MhaCache {
 public:
  virtual ~MhaCache() = default;
  /// Deep copy, for beam-search hypothesis forking.
  virtual std::unique_ptr<MhaCache> clone() const = 0;
  /// Number of key/value rows currently cached.
  virtual int rows() const = 0;
};

using MhaCachePtr = std::unique_ptr<MhaCache>;

/// FP32 reference cache: the projected K/V rows of every head.
class RefMhaCache final : public MhaCache {
 public:
  RefMhaCache(std::size_t num_heads, int head_dim);
  MhaCachePtr clone() const override;
  int rows() const override;

  std::vector<MatF> k, v;  // per head, rows × head_dim
};

/// Reference implementations of the cached-MHA backend hooks
/// (the ResBlockBackend defaults, mirroring mha_resblock).
MhaCachePtr ref_mha_self_cache(const MhaWeights& w);
MhaCachePtr ref_mha_cross_cache(const MatF& memory, const MhaWeights& w);
/// Cached MHA ResBlock: when `append`, first project q's rows into the cache
/// (decoder self-attention — K = V = the new rows), then attend q over all
/// cached rows. `mask` is q.rows() × cache.rows() (after the append).
MatF ref_mha_cached(const MatF& q, MhaCache& cache, const MhaWeights& w,
                    const Mask& mask, bool append);
/// Packed cached MHA over many independent hypotheses: row r of `q` belongs
/// to slot r, attending over caches[r] under masks[r] (1 × caches[r]->rows()
/// after the append). Projections run over the stacked rows in one GEMM;
/// attention stays per slot. Every op is row-independent, so the output is
/// bit-identical, row for row, to calling ref_mha_cached on each row alone.
/// With `append`, caches must be distinct objects (each slot appends its own
/// row); without it, sharing a cache across slots is fine (read-only).
MatF ref_mha_cached_batch(const MatF& q, const std::vector<MhaCache*>& caches,
                          const MhaWeights& w, const std::vector<Mask>& masks,
                          bool append);

/// The whole incremental-decode state of one hypothesis: per-decoder-layer
/// self-attention caches (grown one row per step) and cross-attention caches
/// (projected once from the encoder memory, immutable afterwards and shared
/// between forked hypotheses).
struct DecodeState {
  std::vector<MhaCachePtr> self_kv;
  std::vector<std::shared_ptr<MhaCache>> cross_kv;
  int steps = 0;        ///< target rows fed so far (= position of next token)
  int memory_rows = 0;  ///< encoder memory rows (cross-attention key count)
  int src_valid = 0;    ///< non-padding source length for the cross mask

  /// Deep-copies the self caches; cross caches are shared (never mutated).
  DecodeState clone() const;
};

}  // namespace tfacc
