#include "reference/decode_state.hpp"

#include "tensor/ops.hpp"

namespace tfacc {

RefMhaCache::RefMhaCache(std::size_t num_heads, int head_dim)
    : k(num_heads, MatF(0, head_dim)), v(num_heads, MatF(0, head_dim)) {}

MhaCachePtr RefMhaCache::clone() const {
  return std::make_unique<RefMhaCache>(*this);
}

int RefMhaCache::rows() const { return k.empty() ? 0 : k.front().rows(); }

MhaCachePtr ref_mha_self_cache(const MhaWeights& w) {
  TFACC_CHECK_ARG(!w.heads.empty());
  return std::make_unique<RefMhaCache>(w.heads.size(),
                                       w.heads.front().wk.cols());
}

MhaCachePtr ref_mha_cross_cache(const MatF& memory, const MhaWeights& w) {
  auto cache = ref_mha_self_cache(w);
  auto& ref = static_cast<RefMhaCache&>(*cache);
  for (std::size_t h = 0; h < w.heads.size(); ++h) {
    const auto& head = w.heads[h];
    ref.k[h].append_rows(add_bias(gemm(memory, head.wk), head.bk));
    ref.v[h].append_rows(add_bias(gemm(memory, head.wv), head.bv));
  }
  return cache;
}

MatF ref_mha_cached(const MatF& q, MhaCache& cache, const MhaWeights& w,
                    const Mask& mask, bool append) {
  auto& ref = dynamic_cast<RefMhaCache&>(cache);
  TFACC_CHECK_ARG(ref.k.size() == w.heads.size());
  std::vector<MatF> head_outputs;
  head_outputs.reserve(w.heads.size());
  for (std::size_t h = 0; h < w.heads.size(); ++h) {
    const auto& head = w.heads[h];
    if (append) {
      ref.k[h].append_rows(add_bias(gemm(q, head.wk), head.bk));
      ref.v[h].append_rows(add_bias(gemm(q, head.wv), head.bv));
    }
    const MatF qi = add_bias(gemm(q, head.wq), head.bq);
    head_outputs.push_back(attention_head(qi, ref.k[h], ref.v[h], mask));
  }
  const MatF p = hconcat(head_outputs);
  const MatF g = add(q, add_bias(gemm(p, w.wg), w.bg));
  return layer_norm(g, w.norm);
}

MatF ref_mha_cached_batch(const MatF& q, const std::vector<MhaCache*>& caches,
                          const MhaWeights& w, const std::vector<Mask>& masks,
                          bool append) {
  const int n = q.rows();
  TFACC_CHECK_ARG(static_cast<int>(caches.size()) == n &&
                  static_cast<int>(masks.size()) == n);
  const int head_dim = w.heads.front().wk.cols();
  // Heads write straight into their column block of P — no per-head output
  // list, no hconcat; matrix temporaries recycle through the byte pool, so a
  // warm step allocates nothing.
  MatF p(n, static_cast<int>(w.heads.size()) * head_dim);
  for (std::size_t h = 0; h < w.heads.size(); ++h) {
    const auto& head = w.heads[h];
    if (append) {
      // One stacked projection of every slot's new K/V row, scattered into
      // the per-slot caches (gemm/add_bias are row-independent, so row r
      // equals the row a per-slot projection would have produced).
      const MatF k_new = add_bias(gemm(q, head.wk), head.bk);
      const MatF v_new = add_bias(gemm(q, head.wv), head.bv);
      for (int r = 0; r < n; ++r) {
        auto& ref = dynamic_cast<RefMhaCache&>(*caches[static_cast<std::size_t>(r)]);
        ref.k[h].append_rows(k_new.block(r, 0, 1, head_dim));
        ref.v[h].append_rows(v_new.block(r, 0, 1, head_dim));
      }
    }
    const MatF qi = add_bias(gemm(q, head.wq), head.bq);
    for (int r = 0; r < n; ++r) {
      const auto& ref =
          dynamic_cast<const RefMhaCache&>(*caches[static_cast<std::size_t>(r)]);
      p.set_block(r, static_cast<int>(h) * head_dim,
                  attention_head(qi.block(r, 0, 1, head_dim), ref.k[h],
                                 ref.v[h], masks[static_cast<std::size_t>(r)]));
    }
  }
  const MatF g = add(q, add_bias(gemm(p, w.wg), w.bg));
  return layer_norm(g, w.norm);
}

DecodeState DecodeState::clone() const {
  DecodeState out;
  out.self_kv.reserve(self_kv.size());
  for (const auto& c : self_kv) out.self_kv.push_back(c->clone());
  out.cross_kv = cross_kv;  // immutable after begin_decode: share
  out.steps = steps;
  out.memory_rows = memory_rows;
  out.src_valid = src_valid;
  return out;
}

}  // namespace tfacc
