#include "reference/serialize.hpp"

#include <cstdint>
#include <fstream>

#include "common/check.hpp"

namespace tfacc {

namespace {

constexpr std::uint32_t kMagic = 0x74666143;  // "tfaC"
constexpr std::uint32_t kVersion = 1;

void write_u32(std::ostream& os, std::uint32_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}

std::uint32_t read_u32(std::istream& is) {
  std::uint32_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof v);
  TFACC_CHECK_MSG(is.good(), "truncated weight file");
  return v;
}

void write_mat(std::ostream& os, const MatF& m) {
  write_u32(os, static_cast<std::uint32_t>(m.rows()));
  write_u32(os, static_cast<std::uint32_t>(m.cols()));
  os.write(reinterpret_cast<const char*>(m.data()),
           static_cast<std::streamsize>(m.size() * sizeof(float)));
}

MatF read_mat(std::istream& is) {
  const int rows = static_cast<int>(read_u32(is));
  const int cols = static_cast<int>(read_u32(is));
  TFACC_CHECK_MSG(rows >= 0 && cols >= 0 && rows < (1 << 20) &&
                      cols < (1 << 20),
                  "implausible tensor shape " << rows << 'x' << cols);
  MatF m(rows, cols);
  is.read(reinterpret_cast<char*>(m.data()),
          static_cast<std::streamsize>(m.size() * sizeof(float)));
  TFACC_CHECK_MSG(is.good(), "truncated tensor payload");
  return m;
}

void write_vec(std::ostream& os, const std::vector<float>& v) {
  write_u32(os, static_cast<std::uint32_t>(v.size()));
  write_u32(os, 1);
  os.write(reinterpret_cast<const char*>(v.data()),
           static_cast<std::streamsize>(v.size() * sizeof(float)));
}

std::vector<float> read_vec(std::istream& is) {
  const MatF m = read_mat(is);
  TFACC_CHECK_MSG(m.cols() == 1, "expected a vector, got " << m.cols()
                                                           << " columns");
  std::vector<float> v(static_cast<std::size_t>(m.rows()));
  for (int r = 0; r < m.rows(); ++r) v[static_cast<std::size_t>(r)] = m(r, 0);
  return v;
}

void write_mha(std::ostream& os, const MhaWeights& w) {
  write_u32(os, static_cast<std::uint32_t>(w.heads.size()));
  for (const auto& head : w.heads) {
    write_mat(os, head.wq);
    write_vec(os, head.bq);
    write_mat(os, head.wk);
    write_vec(os, head.bk);
    write_mat(os, head.wv);
    write_vec(os, head.bv);
  }
  write_mat(os, w.wg);
  write_vec(os, w.bg);
  write_vec(os, w.norm.gamma);
  write_vec(os, w.norm.beta);
}

MhaWeights read_mha(std::istream& is) {
  MhaWeights w;
  w.heads.resize(read_u32(is));
  for (auto& head : w.heads) {
    head.wq = read_mat(is);
    head.bq = read_vec(is);
    head.wk = read_mat(is);
    head.bk = read_vec(is);
    head.wv = read_mat(is);
    head.bv = read_vec(is);
  }
  w.wg = read_mat(is);
  w.bg = read_vec(is);
  w.norm.gamma = read_vec(is);
  w.norm.beta = read_vec(is);
  return w;
}

void write_ffn(std::ostream& os, const FfnWeights& w) {
  write_mat(os, w.w1);
  write_vec(os, w.b1);
  write_mat(os, w.w2);
  write_vec(os, w.b2);
  write_vec(os, w.norm.gamma);
  write_vec(os, w.norm.beta);
}

FfnWeights read_ffn(std::istream& is) {
  FfnWeights w;
  w.w1 = read_mat(is);
  w.b1 = read_vec(is);
  w.w2 = read_mat(is);
  w.b2 = read_vec(is);
  w.norm.gamma = read_vec(is);
  w.norm.beta = read_vec(is);
  return w;
}

}  // namespace

void save_weights(const TransformerWeights& w, std::ostream& os) {
  write_u32(os, kMagic);
  write_u32(os, kVersion);
  write_u32(os, static_cast<std::uint32_t>(w.config.d_model));
  write_u32(os, static_cast<std::uint32_t>(w.config.d_ff));
  write_u32(os, static_cast<std::uint32_t>(w.config.num_heads));
  write_u32(os, static_cast<std::uint32_t>(w.config.head_dim));
  write_u32(os, static_cast<std::uint32_t>(w.config.num_encoder_layers));
  write_u32(os, static_cast<std::uint32_t>(w.config.num_decoder_layers));
  write_u32(os, static_cast<std::uint32_t>(w.vocab_size));
  write_mat(os, w.src_embedding);
  write_mat(os, w.tgt_embedding);
  write_mat(os, w.output_projection);
  for (const auto& layer : w.encoder_layers) {
    write_mha(os, layer.mha);
    write_ffn(os, layer.ffn);
  }
  for (const auto& layer : w.decoder_layers) {
    write_mha(os, layer.self_mha);
    write_mha(os, layer.cross_mha);
    write_ffn(os, layer.ffn);
  }
  TFACC_CHECK_MSG(os.good(), "write failure while saving weights");
}

void save_weights(const TransformerWeights& w, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  TFACC_CHECK_ARG_MSG(os.is_open(), "cannot open " << path << " for writing");
  save_weights(w, os);
}

TransformerWeights load_weights(std::istream& is) {
  TFACC_CHECK_MSG(read_u32(is) == kMagic, "not a tfacc weight file");
  TFACC_CHECK_MSG(read_u32(is) == kVersion, "unsupported weight file version");
  TransformerWeights w;
  w.config.name = "loaded";
  w.config.d_model = static_cast<int>(read_u32(is));
  w.config.d_ff = static_cast<int>(read_u32(is));
  w.config.num_heads = static_cast<int>(read_u32(is));
  w.config.head_dim = static_cast<int>(read_u32(is));
  w.config.num_encoder_layers = static_cast<int>(read_u32(is));
  w.config.num_decoder_layers = static_cast<int>(read_u32(is));
  w.vocab_size = static_cast<int>(read_u32(is));
  w.config.validate();
  w.src_embedding = read_mat(is);
  w.tgt_embedding = read_mat(is);
  w.output_projection = read_mat(is);
  TFACC_CHECK_MSG(w.src_embedding.rows() == w.vocab_size &&
                      w.src_embedding.cols() == w.config.d_model,
                  "embedding shape mismatch");
  w.encoder_layers.resize(
      static_cast<std::size_t>(w.config.num_encoder_layers));
  for (auto& layer : w.encoder_layers) {
    layer.mha = read_mha(is);
    layer.ffn = read_ffn(is);
  }
  w.decoder_layers.resize(
      static_cast<std::size_t>(w.config.num_decoder_layers));
  for (auto& layer : w.decoder_layers) {
    layer.self_mha = read_mha(is);
    layer.cross_mha = read_mha(is);
    layer.ffn = read_ffn(is);
  }
  return w;
}

TransformerWeights load_weights(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  TFACC_CHECK_ARG_MSG(is.is_open(), "cannot open " << path);
  return load_weights(is);
}

}  // namespace tfacc
