#include "reference/functional.hpp"

#include <cmath>

#include "tensor/ops.hpp"

namespace tfacc {

Mask no_mask(int rows, int cols) { return Mask(rows, cols); }

Mask causal_mask(int s) {
  Mask m(s, s);
  for (int r = 0; r < s; ++r)
    for (int c = r + 1; c < s; ++c) m(r, c) = 1;
  return m;
}

Mask padding_mask(int rows, int cols, int valid_len) {
  TFACC_CHECK_ARG(valid_len >= 0 && valid_len <= cols);
  Mask m(rows, cols);
  for (int r = 0; r < rows; ++r)
    for (int c = valid_len; c < cols; ++c) m(r, c) = 1;
  return m;
}

MatF scaled_masked_softmax(const MatF& d, const Mask& mask, float scale_div) {
  TFACC_CHECK_ARG(d.rows() == mask.rows() && d.cols() == mask.cols());
  TFACC_CHECK_ARG(scale_div > 0.0f);
  MatF out(d.rows(), d.cols());
  for (int r = 0; r < d.rows(); ++r) {
    // Max over unmasked entries (log-sum-exp stabilization, Eq. 5).
    float mx = -std::numeric_limits<float>::infinity();
    for (int c = 0; c < d.cols(); ++c)
      if (mask(r, c) == 0) mx = std::max(mx, d(r, c) / scale_div);
    if (mx == -std::numeric_limits<float>::infinity()) {
      // Fully masked row: defined as all zeros (Eq. 4 has an empty sum).
      for (int c = 0; c < d.cols(); ++c) out(r, c) = 0.0f;
      continue;
    }
    float sum = 0.0f;
    for (int c = 0; c < d.cols(); ++c) {
      if (mask(r, c) == 0) {
        out(r, c) = std::exp(d(r, c) / scale_div - mx);
        sum += out(r, c);
      } else {
        out(r, c) = 0.0f;
      }
    }
    for (int c = 0; c < d.cols(); ++c) out(r, c) /= sum;
  }
  return out;
}

MatF layer_norm(const MatF& g, const LayerNormParams& p, float eps) {
  TFACC_CHECK_ARG(static_cast<int>(p.gamma.size()) == g.cols());
  TFACC_CHECK_ARG(static_cast<int>(p.beta.size()) == g.cols());
  MatF out(g.rows(), g.cols());
  const int n = g.cols();
  for (int r = 0; r < g.rows(); ++r) {
    double mean = 0.0;
    for (int c = 0; c < n; ++c) mean += g(r, c);
    mean /= n;
    double var = 0.0;
    for (int c = 0; c < n; ++c) {
      const double d = g(r, c) - mean;
      var += d * d;
    }
    var /= n;
    const double inv = 1.0 / std::sqrt(var + eps);
    for (int c = 0; c < n; ++c)
      out(r, c) = static_cast<float>((g(r, c) - mean) * inv * p.gamma[c] +
                                     p.beta[c]);
  }
  return out;
}

MatF attention_head(const MatF& q, const MatF& k, const MatF& v,
                    const Mask& mask) {
  TFACC_CHECK_ARG(q.cols() == k.cols() && k.rows() == v.rows());
  const MatF scores = gemm_nt(q, k);  // s_q × s_kv
  const float scale = std::sqrt(static_cast<float>(q.cols()));
  const MatF probs = scaled_masked_softmax(scores, mask, scale);
  return gemm(probs, v);
}

namespace {

MatF mha_sublayer(const MatF& q, const MatF& kv, const MhaWeights& w,
                  const Mask& mask) {
  std::vector<MatF> head_outputs;
  head_outputs.reserve(w.heads.size());
  for (const auto& head : w.heads) {
    const MatF qi = add_bias(gemm(q, head.wq), head.bq);
    const MatF ki = add_bias(gemm(kv, head.wk), head.bk);
    const MatF vi = add_bias(gemm(kv, head.wv), head.bv);
    head_outputs.push_back(attention_head(qi, ki, vi, mask));
  }
  const MatF p = hconcat(head_outputs);           // s × d_model
  return add_bias(gemm(p, w.wg), w.bg);           // s × d_model
}

}  // namespace

MatF mha_pre_norm(const MatF& q, const MatF& kv, const MhaWeights& w,
                  const Mask& mask) {
  return add(q, mha_sublayer(q, kv, w, mask));
}

MatF mha_resblock(const MatF& q, const MatF& kv, const MhaWeights& w,
                  const Mask& mask) {
  return layer_norm(mha_pre_norm(q, kv, w, mask), w.norm);
}

MatF ffn_pre_norm(const MatF& x, const FfnWeights& w) {
  const MatF hidden = relu(add_bias(gemm(x, w.w1), w.b1));
  const MatF y = add_bias(gemm(hidden, w.w2), w.b2);
  return add(x, y);
}

MatF ffn_resblock(const MatF& x, const FfnWeights& w) {
  return layer_norm(ffn_pre_norm(x, w), w.norm);
}

}  // namespace tfacc
