// Externally-stepped decode search state machines.
//
// translate_greedy / translate_beam used to own their decode loops, which
// welded "which hypothesis advances next" to "one sentence at a time". The
// continuous-batching scheduler (src/serve) needs the opposite: many
// sentences' live hypotheses packed into ONE decode step, with each
// sentence's search logic advancing from the logits rows it is handed.
//
// A SentenceSearch is that per-sentence logic with the logits supplier
// inverted: the driver asks for the live hypotheses (their input tokens, or
// cached DecodeStates), computes their next-token logits however it likes —
// serial decode_step, packed decode_step_batch, or full-recompute
// next_token_logits — and feeds them back through advance(). Because the
// serial translate_* loops and the packed scheduler drive the *same* state
// machine, their outputs are bit-identical by construction.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "reference/transformer.hpp"

namespace tfacc {

/// Search state machine of one in-flight sentence. Drivers loop:
///   while (!done()) { logits[i] = ... for each live i; advance(logits); }
/// In cached mode (constructed with a DecodeState) the driver feeds
/// input_token(i) through decode_step on state(i); in full-recompute mode it
/// evaluates next_token_logits over prefix(i).
class SentenceSearch {
 public:
  virtual ~SentenceSearch() = default;

  /// Number of live hypotheses awaiting logits this step (0 once done()).
  virtual int live() const = 0;
  /// Token hypothesis `i` feeds this step (cached-decode drivers).
  virtual int input_token(int i) const = 0;
  /// Target prefix (BOS + consumed tokens) of hypothesis `i`
  /// (full-recompute drivers).
  virtual const TokenSeq& prefix(int i) const = 0;
  /// Incremental decode state of hypothesis `i` (cached mode only).
  virtual DecodeState& state(int i) = 0;
  /// Consume one vocab-logits row per live hypothesis, in live order.
  virtual void advance(const std::vector<std::vector<float>>& logits) = 0;
  virtual bool done() const = 0;
  /// Final translation (no BOS/EOS). Valid once done().
  virtual TokenSeq result() const = 0;
};

/// Greedy argmax decode: one live hypothesis, stop at EOS or max_len tokens.
/// Exactly the loop translate_greedy runs.
class GreedySearch final : public SentenceSearch {
 public:
  /// `initial` present = cached mode (state advanced by the driver's
  /// decode_step calls); absent = full-recompute mode.
  GreedySearch(int max_len, std::optional<DecodeState> initial);

  int live() const override { return done_ ? 0 : 1; }
  int input_token(int i) const override;
  const TokenSeq& prefix(int i) const override;
  DecodeState& state(int i) override;
  void advance(const std::vector<std::vector<float>>& logits) override;
  bool done() const override { return done_; }
  TokenSeq result() const override;

 private:
  int max_len_;
  bool done_ = false;
  TokenSeq prefix_{kBosId};  // BOS + emitted tokens
  std::optional<DecodeState> state_;
};

/// Beam search with GNMT length normalization — the algorithm of
/// Transformer::translate_beam, stepped externally. Live hypotheses fork
/// their parent's DecodeState on the beam cut (the last surviving child
/// steals, extra children clone), exactly as the in-loop version did.
class BeamSearch final : public SentenceSearch {
 public:
  BeamSearch(int max_len, Transformer::BeamConfig beam,
             std::optional<DecodeState> initial);

  int live() const override;
  int input_token(int i) const override;
  const TokenSeq& prefix(int i) const override;
  DecodeState& state(int i) override;
  void advance(const std::vector<std::vector<float>>& logits) override;
  bool done() const override;
  TokenSeq result() const override;

 private:
  struct Hypothesis {
    TokenSeq tokens;  // starts with BOS
    float logprob = 0.0f;
    DecodeState state;
  };

  int max_len_;
  Transformer::BeamConfig beam_;
  bool cached_;
  int step_ = 0;
  std::vector<Hypothesis> live_;
  std::vector<Hypothesis> finished_;  // tokens end with EOS; state unused
};

}  // namespace tfacc
