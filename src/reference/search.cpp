#include "reference/search.hpp"

#include <algorithm>
#include <cmath>

namespace tfacc {

namespace {

/// Row log-softmax of raw logits.
std::vector<float> log_softmax(const std::vector<float>& logits) {
  float mx = logits[0];
  for (float v : logits) mx = std::max(mx, v);
  double sum = 0.0;
  for (float v : logits) sum += std::exp(static_cast<double>(v) - mx);
  const float log_z = mx + static_cast<float>(std::log(sum));
  std::vector<float> out(logits.size());
  for (std::size_t i = 0; i < logits.size(); ++i) out[i] = logits[i] - log_z;
  return out;
}

/// GNMT length-normalized score of a hypothesis with `emitted` tokens.
float beam_score(float logprob, int emitted, float alpha) {
  const float len = std::max(1.0f, static_cast<float>(emitted));
  return logprob / std::pow((5.0f + len) / 6.0f, alpha);
}

}  // namespace

// --- GreedySearch ------------------------------------------------------------

GreedySearch::GreedySearch(int max_len, std::optional<DecodeState> initial)
    : max_len_(max_len), state_(std::move(initial)) {
  TFACC_CHECK_ARG(max_len > 0);
}

int GreedySearch::input_token(int i) const {
  TFACC_CHECK_ARG(i == 0 && !done_);
  return prefix_.back();
}

const TokenSeq& GreedySearch::prefix(int i) const {
  TFACC_CHECK_ARG(i == 0 && !done_);
  return prefix_;
}

DecodeState& GreedySearch::state(int i) {
  TFACC_CHECK_ARG(i == 0 && !done_);
  TFACC_CHECK_ARG_MSG(state_.has_value(), "greedy search not in cached mode");
  return *state_;
}

void GreedySearch::advance(const std::vector<std::vector<float>>& logits) {
  TFACC_CHECK_ARG(!done_ && logits.size() == 1);
  const auto& row = logits.front();
  const int next = static_cast<int>(
      std::max_element(row.begin(), row.end()) - row.begin());
  if (next == kEosId) {
    done_ = true;
    return;
  }
  prefix_.push_back(next);
  if (static_cast<int>(prefix_.size()) - 1 >= max_len_) done_ = true;
}

TokenSeq GreedySearch::result() const {
  return TokenSeq(prefix_.begin() + 1, prefix_.end());
}

// --- BeamSearch --------------------------------------------------------------

BeamSearch::BeamSearch(int max_len, Transformer::BeamConfig beam,
                       std::optional<DecodeState> initial)
    : max_len_(max_len), beam_(beam), cached_(initial.has_value()) {
  TFACC_CHECK_ARG(max_len > 0);
  TFACC_CHECK_ARG(beam.beam_size >= 1);
  Hypothesis first;
  first.tokens = {kBosId};
  if (cached_) first.state = std::move(*initial);
  live_.push_back(std::move(first));
}

bool BeamSearch::done() const {
  return step_ >= max_len_ || live_.empty() ||
         static_cast<int>(finished_.size()) >= beam_.beam_size;
}

int BeamSearch::live() const {
  return done() ? 0 : static_cast<int>(live_.size());
}

int BeamSearch::input_token(int i) const {
  TFACC_CHECK_ARG(i >= 0 && i < live());
  return live_[static_cast<std::size_t>(i)].tokens.back();
}

const TokenSeq& BeamSearch::prefix(int i) const {
  TFACC_CHECK_ARG(i >= 0 && i < live());
  return live_[static_cast<std::size_t>(i)].tokens;
}

DecodeState& BeamSearch::state(int i) {
  TFACC_CHECK_ARG(i >= 0 && i < live());
  TFACC_CHECK_ARG_MSG(cached_, "beam search not in cached mode");
  return live_[static_cast<std::size_t>(i)].state;
}

void BeamSearch::advance(const std::vector<std::vector<float>>& logits) {
  TFACC_CHECK_ARG(!done());
  TFACC_CHECK_ARG(logits.size() == live_.size());

  // Candidates reference their parent index; only the survivors of the beam
  // cut pay a cache clone (the last child of each parent steals instead).
  struct Candidate {
    TokenSeq tokens;
    float logprob = 0.0f;
    bool finished = false;
    std::size_t parent = 0;
  };
  std::vector<Candidate> candidates;
  for (std::size_t i = 0; i < live_.size(); ++i) {
    const Hypothesis& hyp = live_[i];
    const auto logp = log_softmax(logits[i]);
    // Top beam_size expansions of this hypothesis.
    std::vector<int> order(logp.size());
    for (std::size_t j = 0; j < order.size(); ++j)
      order[j] = static_cast<int>(j);
    const std::size_t keep = std::min<std::size_t>(
        order.size(), static_cast<std::size_t>(beam_.beam_size));
    std::partial_sort(order.begin(), order.begin() + keep, order.end(),
                      [&](int a, int b) {
                        return logp[static_cast<std::size_t>(a)] >
                               logp[static_cast<std::size_t>(b)];
                      });
    for (std::size_t k = 0; k < keep; ++k) {
      Candidate next;
      next.tokens = hyp.tokens;
      next.tokens.push_back(order[k]);
      next.logprob = hyp.logprob + logp[static_cast<std::size_t>(order[k])];
      next.finished = order[k] == kEosId;
      next.parent = i;
      candidates.push_back(std::move(next));
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [&](const Candidate& a, const Candidate& b) {
              return beam_score(a.logprob,
                                static_cast<int>(a.tokens.size()) - 1,
                                beam_.length_penalty) >
                     beam_score(b.logprob,
                                static_cast<int>(b.tokens.size()) - 1,
                                beam_.length_penalty);
            });

  std::vector<Hypothesis> next_live;
  std::vector<std::size_t> parents;
  for (auto& cand : candidates) {
    if (cand.finished) {
      Hypothesis done_hyp;
      done_hyp.tokens = std::move(cand.tokens);
      done_hyp.logprob = cand.logprob;
      finished_.push_back(std::move(done_hyp));
    } else if (static_cast<int>(next_live.size()) < beam_.beam_size) {
      Hypothesis h;
      h.tokens = std::move(cand.tokens);
      h.logprob = cand.logprob;
      next_live.push_back(std::move(h));
      parents.push_back(cand.parent);
    }
    if (static_cast<int>(finished_.size()) >= beam_.beam_size) break;
  }
  if (cached_) {
    // Fork the caches: the last surviving child of each parent steals the
    // parent's (already advanced) state; only additional children pay a
    // deep clone. In the common one-survivor-per-parent case no clone
    // happens at all.
    std::vector<int> remaining(live_.size(), 0);
    for (const std::size_t p : parents) ++remaining[p];
    for (std::size_t i = 0; i < next_live.size(); ++i) {
      const std::size_t p = parents[i];
      next_live[i].state = --remaining[p] == 0 ? std::move(live_[p].state)
                                               : live_[p].state.clone();
    }
  }
  live_ = std::move(next_live);
  ++step_;
}

TokenSeq BeamSearch::result() const {
  // The best hypothesis over finished-then-live, first maximum on ties —
  // the order the in-loop version produced by appending live to finished.
  const Hypothesis* best = nullptr;
  float best_score = 0.0f;
  auto consider = [&](const Hypothesis& h) {
    const float s = beam_score(h.logprob, static_cast<int>(h.tokens.size()) - 1,
                               beam_.length_penalty);
    if (best == nullptr || s > best_score) {
      best = &h;
      best_score = s;
    }
  };
  for (const Hypothesis& h : finished_) consider(h);
  for (const Hypothesis& h : live_) consider(h);
  TFACC_CHECK(best != nullptr);
  TokenSeq out(best->tokens.begin() + 1, best->tokens.end());
  if (!out.empty() && out.back() == kEosId) out.pop_back();
  return out;
}

}  // namespace tfacc
