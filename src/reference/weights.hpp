// Parameter containers for the Transformer layers treated by the paper, plus
// seeded random initialization so every experiment is reproducible.
//
// Shapes follow Fig. 3: per-head projection weights are stored as
// d_model×64 blocks (the column-block layout of Section III), and the large
// matrices W_G (d_model×d_model), W_1 (d_model×d_ff), W_2 (d_ff×d_model) are
// stored whole and partitioned on demand.
#pragma once

#include <vector>

#include "common/config.hpp"
#include "common/random.hpp"
#include "tensor/matrix.hpp"

namespace tfacc {

/// Learnable scale/shift of a LayerNorm (γ, β), length d_model.
struct LayerNormParams {
  std::vector<float> gamma;
  std::vector<float> beta;

  static LayerNormParams identity(int d_model);
  static LayerNormParams random(int d_model, Rng& rng);
};

/// One attention head's projections: W_Q, W_K, W_V are d_model×64 (Fig. 3a).
struct HeadWeights {
  MatF wq, wk, wv;                    // d_model × head_dim
  std::vector<float> bq, bk, bv;      // head_dim
};

/// The whole MHA ResBlock: h heads + output projection W_G + LayerNorm.
struct MhaWeights {
  std::vector<HeadWeights> heads;     // h entries
  MatF wg;                            // d_model × d_model
  std::vector<float> bg;              // d_model
  LayerNormParams norm;

  static MhaWeights random(const ModelConfig& cfg, Rng& rng);
};

/// The FFN ResBlock: two linear sublayers + LayerNorm (Eq. 2).
struct FfnWeights {
  MatF w1;                            // d_model × d_ff
  std::vector<float> b1;              // d_ff
  MatF w2;                            // d_ff × d_model
  std::vector<float> b2;              // d_model
  LayerNormParams norm;

  static FfnWeights random(const ModelConfig& cfg, Rng& rng);
};

/// One encoder layer = MHA ResBlock + FFN ResBlock (Fig. 1, left stack).
struct EncoderLayerWeights {
  MhaWeights mha;
  FfnWeights ffn;

  static EncoderLayerWeights random(const ModelConfig& cfg, Rng& rng);
};

/// One decoder layer = masked self-MHA + cross-MHA + FFN (Fig. 1, right).
struct DecoderLayerWeights {
  MhaWeights self_mha;
  MhaWeights cross_mha;
  FfnWeights ffn;

  static DecoderLayerWeights random(const ModelConfig& cfg, Rng& rng);
};

/// Full encoder-decoder model including embeddings and the output projection
/// (the paper scopes the accelerator to the ResBlocks; the rest is host-side).
struct TransformerWeights {
  ModelConfig config;
  int vocab_size = 0;
  MatF src_embedding;                 // vocab × d_model
  MatF tgt_embedding;                 // vocab × d_model
  MatF output_projection;             // d_model × vocab
  std::vector<EncoderLayerWeights> encoder_layers;
  std::vector<DecoderLayerWeights> decoder_layers;

  static TransformerWeights random(const ModelConfig& cfg, int vocab_size,
                                   Rng& rng);
};

}  // namespace tfacc
