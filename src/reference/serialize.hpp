// Binary serialization of TransformerWeights, so trained models can be
// saved once and reused by examples/benches (and shipped as artifacts).
//
// Format: a small magic/version header, the ModelConfig scalars, vocab size,
// then every parameter tensor in the canonical enumeration order, each as
// (rows, cols, float32 row-major payload). Little-endian, as written.
#pragma once

#include <iosfwd>
#include <string>

#include "reference/weights.hpp"

namespace tfacc {

/// Serialize to a stream/file. Throws CheckError on I/O failure.
void save_weights(const TransformerWeights& w, std::ostream& os);
void save_weights(const TransformerWeights& w, const std::string& path);

/// Deserialize; validates the header and all shapes against the embedded
/// config. Throws CheckError on malformed input.
TransformerWeights load_weights(std::istream& is);
TransformerWeights load_weights(const std::string& path);

}  // namespace tfacc
