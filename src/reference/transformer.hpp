// Full encoder-decoder Transformer inference (Fig. 1), FP32.
//
// The paper's accelerator covers the MHA/FFN ResBlocks; embeddings, the
// positional encoding and the output softmax stay on the host. This module
// is the host-side golden model, and its ResBlock calls can be swapped for
// quantized or accelerator-simulated implementations via ResBlockBackend.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/thread_annotations.hpp"
#include "reference/decode_state.hpp"
#include "reference/functional.hpp"
#include "reference/weights.hpp"

namespace tfacc {

/// Token ids. Conventions (shared with src/nlp): 0=PAD, 1=BOS, 2=EOS.
using TokenSeq = std::vector<int>;

constexpr int kPadId = 0;
constexpr int kBosId = 1;
constexpr int kEosId = 2;

/// Length of `seq` with trailing PAD tokens trimmed (attention-mask extent).
int unpadded_length(const TokenSeq& seq);

/// Sinusoidal positional encoding, rows = positions, cols = d_model
/// (Vaswani et al. 2017, Eq. 5.1; referenced by Fig. 1).
MatF positional_encoding(int max_len, int d_model);

/// Pluggable ResBlock implementations so the same decode loop can run on the
/// FP32 reference, the INT8 functional model, or the accelerator simulator.
///
/// The three cached-MHA hooks are the incremental-decode interface; they
/// must agree row-for-row with `mha` (the defaults do, and so do the
/// quantized and accelerator backends). A backend overriding `mha` should
/// override all of them together; if it does not, supports_cached_decode()
/// turns false and the decode loops fall back to DecodeMode::kFullRecompute
/// (which only ever calls `mha`/`ffn`), so a partial override can never
/// silently bypass the custom `mha`.
struct ResBlockBackend {
  std::function<MatF(const MatF& q, const MatF& kv, const MhaWeights&,
                     const Mask&)>
      mha = mha_resblock;
  std::function<MatF(const MatF& x, const FfnWeights&)> ffn = ffn_resblock;

  /// Empty self-attention cache for `w` (rows appended per decode step).
  std::function<MhaCachePtr(const MhaWeights&)> mha_self_cache =
      ref_mha_self_cache;
  /// Cross-attention cache with K/V projected once from the encoder memory.
  std::function<MhaCachePtr(const MatF& memory, const MhaWeights&)>
      mha_cross_cache = ref_mha_cross_cache;
  /// Cached MHA ResBlock; appends q's K/V rows to `cache` when `append`.
  std::function<MatF(const MatF& q, MhaCache& cache, const MhaWeights&,
                     const Mask&, bool append)>
      mha_cached = ref_mha_cached;
  /// Packed cached MHA: row r of q is an independent hypothesis attending
  /// over caches[r] under masks[r]. Must agree row-for-row with mha_cached
  /// (trivially true for the defaults and the shipped backends: every op is
  /// row-independent, the packing only amortizes projections/quantization).
  std::function<MatF(const MatF& q, const std::vector<MhaCache*>& caches,
                     const MhaWeights&, const std::vector<Mask>& masks,
                     bool append)>
      mha_cached_batch = ref_mha_cached_batch;

  /// True when the cached hooks can be trusted to agree with `mha`: either
  /// everything is still the reference default, or the cached hooks were
  /// overridden (deliberately, alongside `mha`). False — e.g. a custom
  /// `mha` with default cached hooks — makes the decode loops fall back to
  /// full recompute rather than compute attention with the wrong backend.
  bool supports_cached_decode() const;
  /// True when mha_cached_batch can be trusted to agree with mha_cached: the
  /// whole backend is still the reference default, or the batch hook was
  /// overridden alongside the cached ones. False makes decode_step_batch
  /// fall back to per-hypothesis mha_cached calls — slower, never wrong.
  bool supports_batched_decode() const;
};

/// How translate_greedy / translate_beam run the decoder stack. Both modes
/// produce bit-identical token sequences; kKvCache is O(L²) per sentence
/// where kFullRecompute is O(L³).
enum class DecodeMode {
  kKvCache,        ///< incremental: one new row per step over cached K/V
  kFullRecompute,  ///< re-run every layer over the whole prefix per step
};

/// Encoder-decoder Transformer inference engine.
class Transformer {
 public:
  explicit Transformer(TransformerWeights weights);

  const TransformerWeights& weights() const { return weights_; }

  /// Replace the ResBlock implementations (e.g. with the accelerator).
  void set_backend(ResBlockBackend backend) { backend_ = std::move(backend); }

  /// Embed + positional-encode a token sequence (s × d_model). The
  /// positional table grows on demand — sequences are not capped at the
  /// construction-time length.
  MatF embed(const TokenSeq& tokens, const MatF& embedding) const;

  /// Run the encoder stack over an embedded source. `src_valid_len` marks
  /// padding for the attention mask.
  MatF encode(const TokenSeq& src) const;

  /// One decoder forward pass over `tgt` given encoder memory; returns the
  /// d_model states of every target position.
  MatF decode_states(const TokenSeq& tgt, const MatF& memory,
                     int src_valid_len) const;

  /// Logits of the *last* target position (vocab-sized row), full recompute.
  std::vector<float> next_token_logits(const TokenSeq& tgt, const MatF& memory,
                                       int src_valid_len) const;

  /// Begin an incremental decode against `memory`: build per-decoder-layer
  /// cross-attention caches and empty self-attention caches.
  DecodeState begin_decode(const MatF& memory, int src_valid_len) const;

  /// Feed `token` at the next target position (state.steps), advancing the
  /// state, and return the vocab logits row for the following position.
  /// Bit-identical to next_token_logits over the same token prefix.
  std::vector<float> decode_step(DecodeState& state, int token) const;

  /// One packed decode step over many independent hypotheses: feeds
  /// tokens[i] into *states[i] (each at its own position, against its own
  /// caches and masks — lengths may be ragged) through ONE stacked ResBlock
  /// pass per decoder sublayer, then returns one logits row per hypothesis.
  /// Bit-identical to calling decode_step(*states[i], tokens[i]) serially,
  /// because every op in the stack is row-independent; the packing exists so
  /// the systolic array streams full tiles instead of single rows. Self
  /// caches must be distinct objects; cross caches may be shared (beam
  /// siblings). Falls back to serial decode_step when the backend does not
  /// provide a trusted batch hook (supports_batched_decode()).
  std::vector<std::vector<float>> decode_step_batch(
      const std::vector<DecodeState*>& states,
      const std::vector<int>& tokens) const;

  /// Allocation-free variant for the serve step loop: writes hypothesis i's
  /// logits into row i of `logits` (reshaped to n × vocab only when its
  /// shape differs, drawing from the recycling byte pool). With a batched
  /// backend, a warm call performs ZERO heap allocations — every temporary
  /// recycles through the thread-local pool or persistent scratch
  /// (tests/test_kernels.cpp enforces this with an operator-new counter).
  void decode_step_batch(const std::vector<DecodeState*>& states,
                         const std::vector<int>& tokens, MatF& logits) const;

  /// Greedy autoregressive translation: BOS ... EOS, capped at max_len.
  /// The returned sequence excludes BOS and EOS.
  TokenSeq translate_greedy(const TokenSeq& src, int max_len,
                            DecodeMode mode = DecodeMode::kKvCache) const;

  /// Beam-search decoding parameters (GNMT-style length normalization:
  /// score = logprob / ((5 + len) / 6)^alpha).
  struct BeamConfig {
    int beam_size = 4;
    float length_penalty = 0.6f;
  };

  /// Beam-search translation; beam_size 1 degenerates to greedy.
  /// The returned sequence excludes BOS and EOS.
  TokenSeq translate_beam(const TokenSeq& src, int max_len,
                          const BeamConfig& beam,
                          DecodeMode mode = DecodeMode::kKvCache) const;
  /// Overload with default BeamConfig (beam 4, length penalty 0.6).
  TokenSeq translate_beam(const TokenSeq& src, int max_len) const;

 private:
  /// Snapshot of the positional-encoding table with at least `rows` rows;
  /// regrown geometrically when a longer sequence arrives. Growth swaps in a
  /// fresh table under a lock and earlier snapshots stay alive (shared_ptr),
  /// so concurrent const decodes on one model remain safe — and the
  /// encoding is a pure function of (position, d_model), so every regrowth
  /// reproduces existing rows bit-for-bit.
  std::shared_ptr<const MatF> positions(int rows) const
      TFACC_EXCLUDES(pos_mu_);

  TransformerWeights weights_;
  ResBlockBackend backend_;
  mutable Mutex pos_mu_;
  mutable std::shared_ptr<const MatF> pos_encoding_
      TFACC_GUARDED_BY(pos_mu_);  // see positions()
};

}  // namespace tfacc
