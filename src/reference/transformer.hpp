// Full encoder-decoder Transformer inference (Fig. 1), FP32.
//
// The paper's accelerator covers the MHA/FFN ResBlocks; embeddings, the
// positional encoding and the output softmax stay on the host. This module
// is the host-side golden model, and its ResBlock calls can be swapped for
// quantized or accelerator-simulated implementations via ResBlockBackend.
#pragma once

#include <functional>
#include <vector>

#include "reference/functional.hpp"
#include "reference/weights.hpp"

namespace tfacc {

/// Token ids. Conventions (shared with src/nlp): 0=PAD, 1=BOS, 2=EOS.
using TokenSeq = std::vector<int>;

constexpr int kPadId = 0;
constexpr int kBosId = 1;
constexpr int kEosId = 2;

/// Sinusoidal positional encoding, rows = positions, cols = d_model
/// (Vaswani et al. 2017, Eq. 5.1; referenced by Fig. 1).
MatF positional_encoding(int max_len, int d_model);

/// Pluggable ResBlock implementations so the same decode loop can run on the
/// FP32 reference, the INT8 functional model, or the accelerator simulator.
struct ResBlockBackend {
  std::function<MatF(const MatF& q, const MatF& kv, const MhaWeights&,
                     const Mask&)>
      mha = mha_resblock;
  std::function<MatF(const MatF& x, const FfnWeights&)> ffn = ffn_resblock;
};

/// Encoder-decoder Transformer inference engine.
class Transformer {
 public:
  explicit Transformer(TransformerWeights weights);

  const TransformerWeights& weights() const { return weights_; }

  /// Replace the ResBlock implementations (e.g. with the accelerator).
  void set_backend(ResBlockBackend backend) { backend_ = std::move(backend); }

  /// Embed + positional-encode a token sequence (s × d_model).
  MatF embed(const TokenSeq& tokens, const MatF& embedding) const;

  /// Run the encoder stack over an embedded source. `src_valid_len` marks
  /// padding for the attention mask.
  MatF encode(const TokenSeq& src) const;

  /// One decoder forward pass over `tgt` given encoder memory; returns the
  /// d_model states of every target position.
  MatF decode_states(const TokenSeq& tgt, const MatF& memory,
                     int src_valid_len) const;

  /// Logits of the *last* target position (vocab-sized row).
  std::vector<float> next_token_logits(const TokenSeq& tgt, const MatF& memory,
                                       int src_valid_len) const;

  /// Greedy autoregressive translation: BOS ... EOS, capped at max_len.
  /// The returned sequence excludes BOS and EOS.
  TokenSeq translate_greedy(const TokenSeq& src, int max_len) const;

  /// Beam-search decoding parameters (GNMT-style length normalization:
  /// score = logprob / ((5 + len) / 6)^alpha).
  struct BeamConfig {
    int beam_size = 4;
    float length_penalty = 0.6f;
  };

  /// Beam-search translation; beam_size 1 degenerates to greedy.
  /// The returned sequence excludes BOS and EOS.
  TokenSeq translate_beam(const TokenSeq& src, int max_len,
                          const BeamConfig& beam) const;
  /// Overload with default BeamConfig (beam 4, length penalty 0.6).
  TokenSeq translate_beam(const TokenSeq& src, int max_len) const;

 private:
  TransformerWeights weights_;
  ResBlockBackend backend_;
  MatF pos_encoding_;  // precomputed for a generous max length
};

}  // namespace tfacc
