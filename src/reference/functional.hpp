// FP32 functional ("golden") implementations of every operation the
// accelerator computes: scaled masked-softmax (Eq. 1/4), LayerNorm (Eq. 6-8),
// scaled dot-product attention, the MHA ResBlock (Fig. 2/3a) and the FFN
// ResBlock (Eq. 2 / Fig. 3b).
#pragma once

#include <cstdint>

#include "reference/weights.hpp"
#include "tensor/matrix.hpp"

namespace tfacc {

/// Attention mask: entry 1 means "illegal connection, mask out" (paper Eq. 4),
/// entry 0 means attend.
using Mask = Matrix<std::uint8_t>;

/// All-zero (attend to everything) mask of shape rows×cols.
Mask no_mask(int rows, int cols);

/// Causal (subsequent-position) mask used by decoder self-attention.
Mask causal_mask(int s);

/// Padding mask: positions >= valid_len of the key axis are masked for all
/// query rows.
Mask padding_mask(int rows, int cols, int valid_len);

/// Row-wise softmax of (D / scale_div) with masked entries forced to zero
/// (paper Eq. 4; the paper's scale is a fixed /8 = sqrt(d_k)).
/// A fully-masked row yields all zeros.
MatF scaled_masked_softmax(const MatF& d, const Mask& mask,
                           float scale_div = 8.0f);

/// LayerNorm over the last dimension with learnable γ/β (paper Eq. 6).
MatF layer_norm(const MatF& g, const LayerNormParams& p, float eps = 1e-8f);

/// Attention(Q_i, K_i, V_i) = softmax(Mask(Q_i·K_iᵀ / √d_k))·V_i (Eq. 1) for
/// one head with already-projected q/k/v (s×64 each).
MatF attention_head(const MatF& q, const MatF& k, const MatF& v,
                    const Mask& mask);

/// Full MHA ResBlock: heads → concat → W_G projection → +residual(Q) → LN.
/// q is s_q×d_model; k and v inputs are the same matrix `kv` (s_kv×d_model),
/// matching Fig. 3a where K = V.
MatF mha_resblock(const MatF& q, const MatF& kv, const MhaWeights& w,
                  const Mask& mask);

/// FFN(x) = ReLU(x·W1 + b1)·W2 + b2, then +residual and LayerNorm (Eq. 2).
MatF ffn_resblock(const MatF& x, const FfnWeights& w);

/// The pre-LayerNorm intermediate G = x + Sublayer(x) of either ResBlock;
/// exposed for LayerNorm-module validation.
MatF mha_pre_norm(const MatF& q, const MatF& kv, const MhaWeights& w,
                  const Mask& mask);
MatF ffn_pre_norm(const MatF& x, const FfnWeights& w);

}  // namespace tfacc
