// Glue between the host-side Transformer decode loop and the accelerator:
// a ResBlockBackend that runs every MHA/FFN ResBlock through the cycle-level
// simulator, accumulating the cycle cost of a whole inference — the way the
// paper envisions deployment (embedding/output layers on the host, ResBlocks
// on the FPGA).
#pragma once

#include "core/accelerator.hpp"
#include "quant/qtransformer.hpp"
#include "reference/transformer.hpp"

namespace tfacc {

/// Aggregated accelerator activity across an inference run.
struct AcceleratorStats {
  long mha_runs = 0;
  long ffn_runs = 0;
  Cycle mha_cycles = 0;
  Cycle ffn_cycles = 0;
  Cycle sa_busy_cycles = 0;         ///< SA busy cycles summed over all runs
  Cycle softmax_busy_cycles = 0;    ///< Softmax-unit busy cycles, all runs
  Cycle layernorm_busy_cycles = 0;  ///< LayerNorm-unit busy cycles, all runs
  /// SA cycles stalled waiting on softmax results (0 when every softmax→AV
  /// edge was hidden behind other SA work).
  Cycle softmax_stall_cycles = 0;

  Cycle total_cycles() const { return mha_cycles + ffn_cycles; }
  double microseconds(double clock_mhz) const {
    return static_cast<double>(total_cycles()) / clock_mhz;
  }
  /// Fraction of the accumulated ResBlock cycles the SA was busy — the
  /// number packed multi-row decode steps are meant to push back up.
  double sa_utilization() const {
    return total_cycles() == 0
               ? 0.0
               : static_cast<double>(sa_busy_cycles) / total_cycles();
  }
};

/// Backend that executes every ResBlock on `acc` using the quantized blocks
/// in `qt`. `stats` (optional) accumulates cycles across calls. All referenced
/// objects must outlive the backend.
ResBlockBackend accelerator_backend(const QuantizedTransformer& qt,
                                    const Accelerator& acc,
                                    AcceleratorStats* stats = nullptr);

}  // namespace tfacc
