// Glue between the host-side Transformer decode loop and the accelerator:
// a ResBlockBackend that runs every MHA/FFN ResBlock through the cycle-level
// simulator, accumulating the cycle cost of a whole inference — the way the
// paper envisions deployment (embedding/output layers on the host, ResBlocks
// on the FPGA).
#pragma once

#include "core/accelerator.hpp"
#include "quant/qtransformer.hpp"
#include "reference/transformer.hpp"

namespace tfacc {

/// Aggregated accelerator activity across an inference run.
struct AcceleratorStats {
  long mha_runs = 0;  ///< MHA ResBlock invocations (fused sublayers included)
  long ffn_runs = 0;  ///< FFN ResBlock invocations (fused sublayers included)
  /// Cycles of per-sublayer ledgers. A sublayer timed inside a fused
  /// decode-step ledger counts in fused_cycles instead, so the three cycle
  /// buckets partition total_cycles().
  Cycle mha_cycles = 0;
  Cycle ffn_cycles = 0;
  long fused_steps = 0;   ///< packed decode steps timed as ONE fused ledger
  Cycle fused_cycles = 0; ///< cycles of those cross-sublayer step ledgers
  Cycle sa_busy_cycles = 0;         ///< SA busy cycles summed over all runs
  Cycle softmax_busy_cycles = 0;    ///< Softmax-unit busy cycles, all runs
  Cycle layernorm_busy_cycles = 0;  ///< LayerNorm-unit busy cycles, all runs
  /// SA cycles stalled waiting on softmax results (0 when every softmax→AV
  /// edge was hidden behind other SA work).
  Cycle softmax_stall_cycles = 0;
  /// SA cycles idle at run/sublayer boundaries (cold weight loads, seam
  /// gaps of fused ledgers, LayerNorm tails) — the idle the fused
  /// decode-step ledger shrinks by prefetching the next sublayer's weight
  /// tile under the previous sublayer's compute.
  Cycle boundary_stall_cycles = 0;
  /// Cycles live decode rows waited on prefill (encoder) work sharing their
  /// card: with pack_prefill, each mixed step ledger's makespan delta over
  /// a decode-only rebuild; with eager encode, the whole encoder pass of
  /// every admission that found live decode slots on the card.
  Cycle prefill_stall_cycles = 0;
  /// Order-sensitive FNV fold of every charged run's canonical ledger hash
  /// (RunReport::ledger_hash; populated only under cfg.verify_schedules).
  /// Two runs with identical fingerprints executed identical ledger streams
  /// in identical order — the thread-stress determinism witness.
  std::uint64_t ledger_fingerprint = 0;

  Cycle total_cycles() const {
    return mha_cycles + ffn_cycles + fused_cycles;
  }
  double microseconds(double clock_mhz) const {
    return static_cast<double>(total_cycles()) / clock_mhz;
  }
  /// Fraction of the accumulated ResBlock cycles the SA was busy — the
  /// number packed multi-row decode steps are meant to push back up.
  double sa_utilization() const {
    return total_cycles() == 0
               ? 0.0
               : static_cast<double>(sa_busy_cycles) / total_cycles();
  }
};

/// Collects the sublayer shapes of one packed decode step so the whole step
/// is timed as ONE cross-sublayer fused ledger (Accelerator::time_fused)
/// instead of ~3·L per-sublayer ledgers that each restart the weight memory
/// cold. The serve step loop brackets each decode_step_batch call with
/// begin_step()/end_step(); while a step is open, the accelerator backend's
/// mha_cached_batch/ffn hooks compute their data functionally (bit-exact,
/// unchanged) and record their shape here instead of scheduling their own
/// timeline. end_step() schedules the composed ledger once and charges
/// `stats` — so the per-card cycle ledger still advances exactly once per
/// card-step, preserving the work-conservation invariant the admission gate
/// relies on.
class DecodeStepFuser {
 public:
  DecodeStepFuser(const Accelerator& acc, AcceleratorStats* stats)
      : acc_(&acc), stats_(stats) {}

  /// Open a step: subsequent hook calls record instead of scheduling.
  void begin_step();
  /// True between begin_step() and end_step().
  bool active() const { return active_; }
  /// Schedule the recorded sublayers as one fused ledger, charge the stats,
  /// close the step, and return the step's report (empty when no sublayer
  /// ran, e.g. a backend that fell back to serial decode).
  RunReport end_step();

  /// Hook-side recorders (no-ops unless a step is open — callers check
  /// active() first). They run inside the allocation-free packed step loop,
  /// so they write into recycled plan slots: `totals` is copied into the
  /// slot's persistent buffer, labels stay within SSO capacity, and a warm
  /// step touches the heap not at all.
  void record_mha_cached_batch(const std::vector<int>& totals, int d_model,
                               int num_heads, int project_kv_rows);
  void record_ffn(int rows, int d_model, int d_ff);

  // --- Prefill capture (PR 6) ----------------------------------------------
  // pack_prefill admission brackets encode() with begin_prefill() /
  // end_prefill(): the backend's encoder hooks (mha / ffn) compute
  // functionally and record full-size sublayer plans here instead of
  // charging per-run ledgers. The scheduler chunks the returned plans
  // (chunk_prefill) and feeds them back one per step via
  // add_prefill_chunk(); end_step() then times the chunks as prefill lanes
  // of the step's mixed ledger.

  /// Open prefill capture (outside any step).
  void begin_prefill();
  /// True between begin_prefill() and end_prefill().
  bool prefill_active() const { return prefill_active_; }
  /// Close capture and return the recorded full-size encoder plans.
  std::vector<SublayerPlan> end_prefill();
  /// Recorder for a full encoder MHA during capture.
  void record_mha_prefill(int s_q, int s_kv, int d_model, int num_heads);
  /// Splice one prefill chunk into the CURRENT step's ledger.
  void add_prefill_chunk(SublayerPlan chunk);

 private:
  /// Next recycled slot of subs_ (grows it on first use); labels it "subN".
  SublayerPlan& next_sub();

  const Accelerator* acc_;
  AcceleratorStats* stats_;
  bool active_ = false;
  bool prefill_active_ = false;
  long mha_sublayers_ = 0;
  long ffn_sublayers_ = 0;
  std::size_t n_subs_ = 0;            ///< live plans this step: subs_[0, n)
  std::vector<SublayerPlan> subs_;    ///< recycled slots, capacity persists
  std::vector<SublayerPlan> prefill_plans_;   ///< capture: full-size plans
  std::vector<SublayerPlan> prefill_chunks_;  ///< this step's spliced chunks
};

/// Backend that executes every ResBlock on `acc` using the quantized blocks
/// in `qt`. `stats` (optional) accumulates cycles across calls. `fuser`
/// (optional) reroutes the decode-step hooks' timing into a fused
/// cross-sublayer ledger whenever a step is open. All referenced objects
/// must outlive the backend.
ResBlockBackend accelerator_backend(const QuantizedTransformer& qt,
                                    const Accelerator& acc,
                                    AcceleratorStats* stats = nullptr,
                                    DecodeStepFuser* fuser = nullptr);

/// Charge one standalone prefill-chunk ledger (pack_prefill with
/// fuse_decode_step off) to `stats`, bucketed by the chunk's kind.
void charge_prefill_chunk(AcceleratorStats* stats, const SublayerPlan& chunk,
                          const RunReport& report);

}  // namespace tfacc
