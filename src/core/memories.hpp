// On-chip buffer sizing of the Fig. 5 top-level architecture.
//
// Fig. 5 annotates every memory: the inputs Q/X and K=V are s×64h INT8, the
// Temp1 buffer is s×max(s,64) (it holds either a projection or the softmax
// output), Temp2 is s×64, the P buffer (P or ReLU(X·W1)) is s×256h, the
// weight memory holds one layer, and the bias memory its vectors. The
// LayerNorm path additionally buffers the INT16 G matrix. This module turns
// a (model, s) pair into concrete byte/BRAM requirements and validates them
// against a device budget — the capacity planning a deployment needs.
#pragma once

#include <string>
#include <vector>

#include "common/config.hpp"

namespace tfacc {

/// One named on-chip buffer.
struct BufferSpec {
  std::string name;
  std::int64_t bytes = 0;
};

/// Complete buffer inventory for one configuration.
struct MemoryLayout {
  std::vector<BufferSpec> buffers;

  /// Fig. 5 sizing. `double_buffer_weights` doubles the weight memory for
  /// the full-model prefetch schedule (core/full_model.hpp).
  static MemoryLayout compute(const ModelConfig& cfg, int s,
                              bool double_buffer_weights = false);

  std::int64_t total_bytes() const;
  /// BRAM36 blocks (36 Kb each) if everything maps to block RAM.
  double bram36() const;
  /// Bytes of the named buffer; throws if absent.
  std::int64_t bytes_of(const std::string& name) const;
  /// True if the layout fits a device budget given in BRAM36 blocks.
  bool fits(double bram36_budget) const { return bram36() <= bram36_budget; }
};

}  // namespace tfacc
