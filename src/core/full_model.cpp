#include "core/full_model.hpp"

#include <cmath>

#include "common/check.hpp"

namespace tfacc {

void DmaConfig::validate() const {
  TFACC_CHECK_MSG(bytes_per_cycle > 0, "bytes_per_cycle " << bytes_per_cycle);
}

std::int64_t mha_weight_bytes(const ModelConfig& cfg) {
  const std::int64_t dm = cfg.d_model;
  // W_Q/W_K/W_V across heads + W_G, INT8; biases INT32.
  return 4 * dm * dm + 4 * dm * 4;
}

std::int64_t ffn_weight_bytes(const ModelConfig& cfg) {
  const std::int64_t dm = cfg.d_model, dff = cfg.d_ff;
  return 2 * dm * dff + (dff + dm) * 4;
}

FullModelScheduler::FullModelScheduler(AcceleratorConfig acc_cfg,
                                       DmaConfig dma)
    : acc_(acc_cfg), dma_(dma) {
  dma_.validate();
}

Cycle FullModelScheduler::dma_cycles(std::int64_t bytes) const {
  return static_cast<Cycle>(
      std::ceil(static_cast<double>(bytes) / dma_.bytes_per_cycle));
}

namespace {

/// Resolve DMA exposure: with double buffering, stage i's weights stream
/// during stage i-1's compute; the first stage always pays its DMA in full.
void finalize(FullModelReport& rep, bool double_buffered, double clock_mhz) {
  Cycle prev_compute = 0;
  for (auto& stage : rep.stages) {
    stage.dma_exposed = double_buffered
                            ? std::max<Cycle>(0, stage.dma - prev_compute)
                            : stage.dma;
    rep.compute_cycles += stage.compute;
    rep.dma_cycles += stage.dma;
    rep.dma_exposed_cycles += stage.dma_exposed;
    prev_compute = stage.compute;
  }
  rep.total_cycles = rep.compute_cycles + rep.dma_exposed_cycles;
  rep.clock_mhz = clock_mhz;
}

}  // namespace

void FullModelScheduler::push_stage(FullModelReport& rep, std::string name,
                                    Cycle compute,
                                    std::int64_t weight_bytes) const {
  rep.stages.push_back(
      StageLatency{std::move(name), compute, dma_cycles(weight_bytes), 0});
}

FullModelReport FullModelScheduler::encoder_pass(const ModelConfig& cfg,
                                                 int s) const {
  cfg.validate();
  TFACC_CHECK_ARG(s > 0);
  FullModelReport rep;
  const Cycle mha = acc_.time_mha(s, s, cfg.d_model, cfg.num_heads)
                        .total_cycles;
  const Cycle ffn = acc_.time_ffn(s, cfg.d_model, cfg.d_ff).total_cycles;
  for (int l = 0; l < cfg.num_encoder_layers; ++l) {
    push_stage(rep, "enc" + std::to_string(l) + ".mha", mha,
               mha_weight_bytes(cfg));
    push_stage(rep, "enc" + std::to_string(l) + ".ffn", ffn,
               ffn_weight_bytes(cfg));
  }
  finalize(rep, dma_.double_buffered, acc_.config().clock_mhz);
  return rep;
}

FullModelReport FullModelScheduler::greedy_decode(const ModelConfig& cfg,
                                                  int src_len, int out_len,
                                                  bool kv_cache) const {
  cfg.validate();
  TFACC_CHECK_ARG(src_len > 0 && out_len > 0);
  FullModelReport rep;

  // Encoder once.
  const FullModelReport enc = encoder_pass(cfg, src_len);
  rep.stages = enc.stages;

  // Decoder: one pass per emitted token; every decoder layer's weights
  // stream in each step (the weight memory holds one layer).
  for (int t = 1; t <= out_len; ++t) {
    const std::string step = "tok" + std::to_string(t);
    Cycle self_c, cross_c, ffn_c;
    if (kv_cache) {
      self_c = acc_.time_mha_cached(1, t, cfg.d_model, cfg.num_heads,
                                    /*project_kv_rows=*/1)
                   .total_cycles;
      // Cross-attention K/V are projections of the encoder memory: computed
      // at the first step, cached afterwards.
      cross_c = acc_.time_mha_cached(1, src_len, cfg.d_model, cfg.num_heads,
                                     t == 1 ? src_len : 0)
                    .total_cycles;
      ffn_c = acc_.time_ffn(1, cfg.d_model, cfg.d_ff).total_cycles;
    } else {
      self_c = acc_.time_mha(t, t, cfg.d_model, cfg.num_heads).total_cycles;
      cross_c = acc_.time_mha(t, src_len, cfg.d_model, cfg.num_heads)
                    .total_cycles;
      ffn_c = acc_.time_ffn(t, cfg.d_model, cfg.d_ff).total_cycles;
    }
    for (int l = 0; l < cfg.num_decoder_layers; ++l) {
      const std::string tag = step + ".dec" + std::to_string(l);
      push_stage(rep, tag + ".self", self_c, mha_weight_bytes(cfg));
      push_stage(rep, tag + ".cross", cross_c, mha_weight_bytes(cfg));
      push_stage(rep, tag + ".ffn", ffn_c, ffn_weight_bytes(cfg));
    }
  }
  finalize(rep, dma_.double_buffered, acc_.config().clock_mhz);
  return rep;
}

}  // namespace tfacc
