// The top-level accelerator model (Fig. 5) and its controller (Algorithm 1).
//
// run_mha / run_ffn execute a whole ResBlock: functionally (bit-exact INT8,
// matching the quantized models of src/quant by construction) and
// cycle-wise (every SA / Softmax / LayerNorm operation reserved on a
// Timeline following the paper's computation flow, including the
// softmax-under-V·W_V overlap and the Fig. 7 LayerNorm strategies).
#pragma once

#include <string>
#include <vector>

#include "common/config.hpp"
#include "core/modules.hpp"
#include "core/schedules.hpp"
#include "quant/qresblock.hpp"
#include "sim/timeline.hpp"

namespace tfacc {

/// Cycle-level outcome of one ResBlock run.
struct RunReport {
  Cycle total_cycles = 0;
  Cycle sa_busy = 0;            ///< SA busy cycles (stream + drain + spill)
  Cycle sa_stream = 0;          ///< MAC-issuing cycles only
  Cycle softmax_busy = 0;
  Cycle layernorm_busy = 0;
  Cycle exposed_weight_load = 0;
  Cycle accum_spill = 0;
  /// min over softmax→AV edges of (the AV's earliest start ignoring the
  /// softmax) − (softmax result ready); >= 0 on every edge means no SA
  /// cycle was lost waiting on the Softmax module — the paper's "hidden
  /// behind V·W_V" condition, checked per edge so under interleaving a
  /// later slot's generous slack cannot mask an earlier slot's stall.
  Cycle softmax_slack_min = 0;
  /// Σ over softmax→AV edges of the SA cycles actually stalled (0 when
  /// softmax_hidden).
  Cycle softmax_stall = 0;
  /// SA idle attributable to run/sublayer boundaries: the exposed cold
  /// weight load before the run's first SA op, the SA gaps at sublayer
  /// seams of a fused ledger, and the LayerNorm tail after the last SA op.
  /// This is the idle the fused decode-step ledger (PR 5) attacks — per
  /// PR 4 profiling it was ~77% of residual SA idle on the bench workload.
  Cycle boundary_stall = 0;
  /// Mixed prefill/decode step ledgers only (PR 6): extra makespan the
  /// decode lanes suffered because prefill chunks shared the step (the
  /// ledger's end time minus a decode-only rebuild's). 0 for pure ledgers.
  Cycle prefill_stall = 0;
  bool softmax_hidden = true;
  double clock_mhz = 200.0;
  /// Canonical ledger hash (analysis/verifier.hpp, PR 7) of this run's
  /// schedule — populated only when cfg.verify_schedules is on, 0 otherwise.
  /// Folded per card into AcceleratorStats::ledger_fingerprint so the
  /// thread-stress test can compare whole per-card ledger streams.
  std::uint64_t ledger_hash = 0;
  Timeline timeline;

  /// Fraction of total cycles the SA was busy ("the SA hardly stops").
  double sa_utilization() const {
    return total_cycles == 0 ? 0.0
                             : static_cast<double>(sa_busy) / total_cycles;
  }
  /// Fraction of total cycles the SA issued MACs (excludes drain bubbles).
  double sa_mac_utilization() const {
    return total_cycles == 0 ? 0.0
                             : static_cast<double>(sa_stream) / total_cycles;
  }
  /// Wall-clock latency at the configured clock.
  double microseconds() const {
    return static_cast<double>(total_cycles) / clock_mhz;
  }
};

/// The reconfigurable MHA/FFN ResBlock accelerator.
class Accelerator {
 public:
  explicit Accelerator(AcceleratorConfig cfg = {});

  const AcceleratorConfig& config() const { return cfg_; }

  struct MhaResult {
    MatI8 out;
    RunReport report;
  };
  /// Algorithm 1, lines 1-13. q/kv are INT8 inputs at the block's calibrated
  /// scales; kv plays both K and V (Fig. 3a: K = V).
  MhaResult run_mha(const MhaQuantized& block, const MatI8& q,
                    const MatI8& kv, const Mask& mask) const;

  /// KV-cached MHA: q's rows attend over the cached K₁/V₁ (already resident
  /// in the data memory). `projected_rows` of the cache were projected this
  /// step (charged to the SA); the rest are reused. Functionally identical
  /// to run_mha when the cache holds the projections of the full kv input.
  MhaResult run_mha_cached(const MhaQuantized& block, const MatI8& q,
                           const QuantKvCache& cache, const Mask& mask,
                           int projected_rows) const;

  /// Packed KV-cached MHA (continuous batching): row r of q is an
  /// independent hypothesis attending over caches[r] under masks[r]
  /// (ragged cache lengths allowed). The Q/K/V projections and the W_G
  /// blocks stream all rows through one weight-tile residency — restoring
  /// full-tile SA utilization where single-row steps were weight-load
  /// bound — while the per-slot attention GEMMs stay ragged. With one slot
  /// this degenerates to exactly run_mha_cached's schedule. `projected_rows`
  /// is the number of K/V rows appended this step (q.rows() or 0). Output
  /// row r is bit-identical to run_mha_cached on slot r alone.
  MhaResult run_mha_cached_batch(const MhaQuantized& block, const MatI8& q,
                                 const std::vector<const QuantKvCache*>& caches,
                                 const std::vector<const Mask*>& masks,
                                 int projected_rows) const;

  struct FfnResult {
    MatI8 out;
    RunReport report;
  };
  /// Algorithm 1, lines 14-22.
  FfnResult run_ffn(const FfnQuantized& block, const MatI8& x) const;

  /// Timing-only variants (no data): cycle counts for a given shape.
  /// Used by latency sweeps where weights/activations are irrelevant.
  RunReport time_mha(int s_q, int s_kv, int d_model, int num_heads) const;
  RunReport time_ffn(int s, int d_model, int d_ff) const;

  /// Timing of one KV-cached attention step: `s_new` fresh query rows attend
  /// over `s_total` keys/values, of which only `project_kv_rows` rows are
  /// projected this step (0 = K/V fully cached in the data memory).
  /// Used by the full-model decoder schedule (core/full_model.hpp).
  RunReport time_mha_cached(int s_new, int s_total, int d_model,
                            int num_heads, int project_kv_rows) const;

  /// Timing of one fused multi-sublayer ledger (PR 5): `subs` spliced into
  /// a single OpGraph/Timeline by schedule_fused. `chain` threads the
  /// residual stream (the packed decode step); false models independent
  /// back-to-back invocations (workload streaming). Issues under the
  /// cached-flow policy unless a full-MHA sublayer is present, which pins
  /// Algorithm 1 program order. The report's boundary_stall carries the
  /// per-seam accounting (cold load + LayerNorm tails + seam gaps).
  RunReport time_fused(const std::vector<SublayerPlan>& subs,
                       bool chain) const;

  /// Timing of one mixed prefill/decode step ledger (PR 6): each lane
  /// chains internally; lanes share the hardware and the global
  /// weight-prefetch chain but no data. Policy selection matches
  /// time_fused (a full-MHA sublayer in any lane pins program order —
  /// prefill chunks do not). The report carries both boundary_stall and
  /// the prefill-attributed stall of the mixed step.
  RunReport time_step(const std::vector<FusedLane>& lanes) const;

  /// Functional halves of the cached-batch MHA and FFN runs (validation +
  /// bit-exact INT8 arithmetic, no timeline). The fused decode-step path
  /// computes each sublayer's data through these while deferring ALL timing
  /// to one time_fused ledger per step; run_* compose them with their
  /// per-run schedules, so both paths share one functional code path.
  MatI8 forward_mha_cached_batch(const MhaQuantized& block, const MatI8& q,
                                 const std::vector<const QuantKvCache*>& caches,
                                 const std::vector<const Mask*>& masks,
                                 int projected_rows) const;
  MatI8 forward_ffn(const FfnQuantized& block, const MatI8& x) const;
  /// Functional half of run_mha (Algorithm 1 lines 1-13, bit-exact INT8).
  /// The packed-prefill path computes the encoder pass through this at
  /// admission while its chunked timing lands in later step ledgers.
  MatI8 forward_mha(const MhaQuantized& block, const MatI8& q,
                    const MatI8& kv, const Mask& mask) const;

  /// Steady-state throughput of back-to-back invocations of the same
  /// ResBlock (workload-level batching): weights stay resident, so only the
  /// very first run pays the initial tile load, and the LayerNorm tail of
  /// run i overlaps the SA work of run i+1 (they are different modules).
  /// Since PR 5 the steady interval is DERIVED from a two-invocation fused
  /// ledger (schedule_fused, chain = false) instead of the old analytic
  /// `total − weight_load − layernorm_busy` subtraction, which assumed
  /// exactly one cold load and a fully exposed LayerNorm tail per run — an
  /// assumption the op-graph scheduler no longer guarantees (an interleaved
  /// schedule may already overlap the tail, making the subtraction
  /// optimistic, and on small shapes it could even go non-positive).
  struct StreamReport {
    Cycle first_latency = 0;     ///< latency of the first invocation
    Cycle steady_interval = 0;   ///< cycles between completions afterwards
    double clock_mhz = 200.0;

    Cycle total_cycles(int n) const {
      return n <= 0 ? 0 : first_latency + (n - 1) * steady_interval;
    }
    /// Sustained sequences per second at the steady interval.
    double sequences_per_second() const {
      return clock_mhz * 1e6 / static_cast<double>(steady_interval);
    }
  };
  StreamReport stream_mha(int s_q, int s_kv, int d_model,
                          int num_heads) const;
  StreamReport stream_ffn(int s, int d_model, int d_ff) const;

 private:
  AcceleratorConfig cfg_;
};

}  // namespace tfacc
