#include "core/backend.hpp"

namespace tfacc {

ResBlockBackend accelerator_backend(const QuantizedTransformer& qt,
                                    const Accelerator& acc,
                                    AcceleratorStats* stats) {
  ResBlockBackend b;
  b.mha = [&qt, &acc, stats](const MatF& q, const MatF& kv,
                             const MhaWeights& w, const Mask& mask) {
    const MhaQuantized& qm = qt.mha_for(w);
    const auto result =
        acc.run_mha(qm, qm.quantize_q(q), qm.quantize_kv(kv), mask);
    if (stats != nullptr) {
      ++stats->mha_runs;
      stats->mha_cycles += result.report.total_cycles;
    }
    return qm.dequantize_out(result.out);
  };
  b.ffn = [&qt, &acc, stats](const MatF& x, const FfnWeights& w) {
    const FfnQuantized& qf = qt.ffn_for(w);
    const auto result = acc.run_ffn(qf, qf.quantize_in(x));
    if (stats != nullptr) {
      ++stats->ffn_runs;
      stats->ffn_cycles += result.report.total_cycles;
    }
    return qf.dequantize_out(result.out);
  };
  return b;
}

}  // namespace tfacc
