#include "core/backend.hpp"

#include "common/check.hpp"

namespace tfacc {

namespace {

void charge_modules(AcceleratorStats* stats, const RunReport& report) {
  stats->sa_busy_cycles += report.sa_busy;
  stats->softmax_busy_cycles += report.softmax_busy;
  stats->layernorm_busy_cycles += report.layernorm_busy;
  stats->softmax_stall_cycles += report.softmax_stall;
  stats->boundary_stall_cycles += report.boundary_stall;
}

void charge_mha(AcceleratorStats* stats, const RunReport& report) {
  if (stats == nullptr) return;
  ++stats->mha_runs;
  stats->mha_cycles += report.total_cycles;
  charge_modules(stats, report);
}

void charge_ffn(AcceleratorStats* stats, const RunReport& report) {
  if (stats == nullptr) return;
  ++stats->ffn_runs;
  stats->ffn_cycles += report.total_cycles;
  charge_modules(stats, report);
}

}  // namespace

void DecodeStepFuser::begin_step() {
  TFACC_CHECK_MSG(!active_, "decode step already open");
  TFACC_CHECK(subs_.empty());
  active_ = true;
  mha_sublayers_ = 0;
  ffn_sublayers_ = 0;
}

void DecodeStepFuser::record_mha_cached_batch(std::vector<int> totals,
                                              int d_model, int num_heads,
                                              int project_kv_rows) {
  TFACC_CHECK_MSG(active_, "record outside begin_step()/end_step()");
  ++mha_sublayers_;
  subs_.push_back(SublayerPlan::mha_cached_batch(
      "sub" + std::to_string(subs_.size()), std::move(totals), d_model,
      num_heads, project_kv_rows));
}

void DecodeStepFuser::record_ffn(int rows, int d_model, int d_ff) {
  TFACC_CHECK_MSG(active_, "record outside begin_step()/end_step()");
  ++ffn_sublayers_;
  subs_.push_back(SublayerPlan::ffn("sub" + std::to_string(subs_.size()),
                                    rows, d_model, d_ff));
}

RunReport DecodeStepFuser::end_step() {
  TFACC_CHECK_MSG(active_, "end_step without begin_step");
  active_ = false;
  if (subs_.empty()) return {};  // the step fell back to non-hook paths
  RunReport report = acc_->time_fused(subs_, /*chain=*/true);
  subs_.clear();
  if (stats_ != nullptr) {
    stats_->mha_runs += mha_sublayers_;
    stats_->ffn_runs += ffn_sublayers_;
    ++stats_->fused_steps;
    stats_->fused_cycles += report.total_cycles;
    charge_modules(stats_, report);
  }
  return report;
}

ResBlockBackend accelerator_backend(const QuantizedTransformer& qt,
                                    const Accelerator& acc,
                                    AcceleratorStats* stats,
                                    DecodeStepFuser* fuser) {
  // Start from the quantized backend: its K/V cache factories (INT8 rows at
  // the calibrated scales) are exactly what the accelerator consumes too.
  // Only the hooks that execute compute are rerouted through the simulator.
  ResBlockBackend b = qt.backend();
  b.mha = [&qt, &acc, stats](const MatF& q, const MatF& kv,
                             const MhaWeights& w, const Mask& mask) {
    const MhaQuantized& qm = qt.mha_for(w);
    const auto result =
        acc.run_mha(qm, qm.quantize_q(q), qm.quantize_kv(kv), mask);
    charge_mha(stats, result.report);
    return qm.dequantize_out(result.out);
  };
  b.ffn = [&qt, &acc, stats, fuser](const MatF& x, const FfnWeights& w) {
    const FfnQuantized& qf = qt.ffn_for(w);
    if (fuser != nullptr && fuser->active()) {
      // Fused decode step: bit-exact data now, timing deferred to the
      // step's single cross-sublayer ledger (end_step()).
      const MatI8 out = acc.forward_ffn(qf, qf.quantize_in(x));
      fuser->record_ffn(x.rows(), qf.d_model, qf.d_ff);
      return qf.dequantize_out(out);
    }
    const auto result = acc.run_ffn(qf, qf.quantize_in(x));
    charge_ffn(stats, result.report);
    return qf.dequantize_out(result.out);
  };
  // Incremental decode: K/V live in the card's data memory as INT8 rows,
  // appended once per projected position. Projection of the new rows is
  // charged inside run_mha_cached's schedule.
  b.mha_cached = [&qt, &acc, stats](const MatF& q, MhaCache& cache,
                                    const MhaWeights& w, const Mask& mask,
                                    bool append) {
    const MhaQuantized& qm = qt.mha_for(w);
    auto& kv_cache = dynamic_cast<QuantKvCache&>(cache);
    if (append) qm.append_kv(qm.quantize_kv(q), kv_cache);
    const auto result = acc.run_mha_cached(qm, qm.quantize_q(q), kv_cache,
                                           mask, append ? q.rows() : 0);
    charge_mha(stats, result.report);
    return qm.dequantize_out(result.out);
  };
  // Packed decode (continuous batching): all live hypotheses' rows share one
  // quantization pass and one projection per weight matrix, so the SA
  // streams full tiles again; per-slot attention stays ragged inside
  // run_mha_cached_batch's schedule.
  b.mha_cached_batch = [&qt, &acc, stats, fuser](
                           const MatF& q,
                           const std::vector<MhaCache*>& caches,
                           const MhaWeights& w,
                           const std::vector<Mask>& masks, bool append) {
    const MhaQuantized& qm = qt.mha_for(w);
    const std::vector<QuantKvCache*> kv = quant_kv_caches(caches);
    if (append) qm.append_kv_batch(qm.quantize_kv(q), kv);
    const std::vector<const QuantKvCache*> ckv(kv.begin(), kv.end());
    const int projected = append ? q.rows() : 0;
    if (fuser != nullptr && fuser->active()) {
      const MatI8 out = acc.forward_mha_cached_batch(
          qm, qm.quantize_q(q), ckv, mask_ptrs(masks), projected);
      std::vector<int> totals(ckv.size());
      for (std::size_t r = 0; r < ckv.size(); ++r) totals[r] = ckv[r]->rows();
      fuser->record_mha_cached_batch(std::move(totals), qm.d_model,
                                     qm.num_heads, projected);
      return qm.dequantize_out(out);
    }
    const auto result = acc.run_mha_cached_batch(qm, qm.quantize_q(q), ckv,
                                                 mask_ptrs(masks), projected);
    charge_mha(stats, result.report);
    return qm.dequantize_out(result.out);
  };
  return b;
}

}  // namespace tfacc
