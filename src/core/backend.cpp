#include "core/backend.hpp"

#include "common/check.hpp"

namespace tfacc {

namespace {

void charge_modules(AcceleratorStats* stats, const RunReport& report) {
  stats->sa_busy_cycles += report.sa_busy;
  stats->softmax_busy_cycles += report.softmax_busy;
  stats->layernorm_busy_cycles += report.layernorm_busy;
  stats->softmax_stall_cycles += report.softmax_stall;
  stats->boundary_stall_cycles += report.boundary_stall;
  stats->prefill_stall_cycles += report.prefill_stall;
  // Order-sensitive fold (FNV-1a step) of the verified ledger stream: any
  // reordered, missing, or altered ledger changes the fingerprint.
  if (report.ledger_hash != 0)
    stats->ledger_fingerprint =
        (stats->ledger_fingerprint * 1099511628211ULL) ^ report.ledger_hash;
}

void charge_mha(AcceleratorStats* stats, const RunReport& report) {
  if (stats == nullptr) return;
  ++stats->mha_runs;
  stats->mha_cycles += report.total_cycles;
  charge_modules(stats, report);
}

void charge_ffn(AcceleratorStats* stats, const RunReport& report) {
  if (stats == nullptr) return;
  ++stats->ffn_runs;
  stats->ffn_cycles += report.total_cycles;
  charge_modules(stats, report);
}

}  // namespace

void DecodeStepFuser::begin_step() {
  TFACC_CHECK_MSG(!active_, "decode step already open");
  TFACC_CHECK_MSG(!prefill_active_, "step opened inside prefill capture");
  TFACC_CHECK(n_subs_ == 0 && prefill_chunks_.empty());
  active_ = true;
  mha_sublayers_ = 0;
  ffn_sublayers_ = 0;
}

void DecodeStepFuser::begin_prefill() {
  TFACC_CHECK_MSG(!prefill_active_, "prefill capture already open");
  // A capture MAY open inside an open step: the convoy-free scheduler (PR 9)
  // drains admissions mid-step and encodes them before the step's splice
  // loop. The hooks stay unambiguous because every recorder checks
  // prefill_active() first; the capture must close before end_step().
  TFACC_CHECK(prefill_plans_.empty());
  prefill_active_ = true;
}

std::vector<SublayerPlan> DecodeStepFuser::end_prefill() {
  TFACC_CHECK_MSG(prefill_active_, "end_prefill without begin_prefill");
  prefill_active_ = false;
  std::vector<SublayerPlan> plans = std::move(prefill_plans_);
  prefill_plans_.clear();
  return plans;
}

void DecodeStepFuser::record_mha_prefill(int s_q, int s_kv, int d_model,
                                         int num_heads) {
  TFACC_CHECK_MSG(prefill_active_, "record outside prefill capture");
  prefill_plans_.push_back(SublayerPlan::mha_prefill(
      "enc" + std::to_string(prefill_plans_.size()), s_q, s_kv, d_model,
      num_heads, s_kv));
}

void DecodeStepFuser::add_prefill_chunk(SublayerPlan chunk) {
  TFACC_CHECK_MSG(active_, "prefill chunk outside begin_step()/end_step()");
  prefill_chunks_.push_back(std::move(chunk));
}

SublayerPlan& DecodeStepFuser::next_sub() {
  if (n_subs_ == subs_.size()) subs_.emplace_back();
  SublayerPlan& p = subs_[n_subs_];
  // "subN" stays within the small-string buffer — no heap traffic.
  p.label = "sub";
  p.label += std::to_string(n_subs_);
  ++n_subs_;
  return p;
}

void DecodeStepFuser::record_mha_cached_batch(const std::vector<int>& totals,
                                              int d_model, int num_heads,
                                              int project_kv_rows) {
  TFACC_CHECK_MSG(active_, "record outside begin_step()/end_step()");
  ++mha_sublayers_;
  SublayerPlan& p = next_sub();
  p.kind = SublayerPlan::Kind::kMhaCachedBatch;
  p.totals.assign(totals.begin(), totals.end());
  p.d_model = d_model;
  p.num_heads = num_heads;
  p.project_kv_rows = project_kv_rows;
  p.s_q = p.s_kv = p.rows = p.d_ff = 0;
}

void DecodeStepFuser::record_ffn(int rows, int d_model, int d_ff) {
  TFACC_CHECK_MSG(active_ || prefill_active_,
                  "record outside begin_step()/end_step()");
  if (prefill_active_) {
    prefill_plans_.push_back(SublayerPlan::ffn(
        "enc" + std::to_string(prefill_plans_.size()), rows, d_model, d_ff));
    return;
  }
  ++ffn_sublayers_;
  SublayerPlan& p = next_sub();
  p.kind = SublayerPlan::Kind::kFfn;
  p.totals.clear();
  p.rows = rows;
  p.d_model = d_model;
  p.d_ff = d_ff;
  p.num_heads = p.s_q = p.s_kv = p.project_kv_rows = 0;
}

RunReport DecodeStepFuser::end_step() {
  TFACC_CHECK_MSG(active_, "end_step without begin_step");
  TFACC_CHECK_MSG(!prefill_active_, "end_step inside prefill capture");
  active_ = false;
  if (n_subs_ == 0 && prefill_chunks_.empty())
    return {};  // the step fell back to non-hook paths
  // Each prefill chunk is its own (single-sublayer) lane; the packed decode
  // pass is one chained lane appended last, so its initial weight tile
  // prefetches under the prefill compute.
  const bool has_decode = n_subs_ > 0;
  long prefill_mha = 0;
  long prefill_ffn = 0;
  std::vector<FusedLane> lanes;
  lanes.reserve(prefill_chunks_.size() + 1);
  for (SublayerPlan& chunk : prefill_chunks_) {
    if (chunk.kind == SublayerPlan::Kind::kMhaPrefill)
      ++prefill_mha;
    else
      ++prefill_ffn;
    lanes.push_back(FusedLane{{std::move(chunk)}, true});
  }
  prefill_chunks_.clear();
  // Copy (not move) the live plans out so subs_ keeps its recycled slots'
  // buffers — end_step runs outside the allocation-free step window.
  if (has_decode)
    lanes.push_back(FusedLane{
        {subs_.begin(),
         subs_.begin() + static_cast<std::ptrdiff_t>(n_subs_)},
        false});
  n_subs_ = 0;
  RunReport report = acc_->time_step(lanes);
  if (stats_ != nullptr) {
    stats_->mha_runs += mha_sublayers_ + prefill_mha;
    stats_->ffn_runs += ffn_sublayers_ + prefill_ffn;
    // A prefill-only iteration is not a packed decode step; its cycles
    // still land in fused_cycles (the step-ledger bucket).
    if (has_decode) ++stats_->fused_steps;
    stats_->fused_cycles += report.total_cycles;
    charge_modules(stats_, report);
  }
  return report;
}

ResBlockBackend accelerator_backend(const QuantizedTransformer& qt,
                                    const Accelerator& acc,
                                    AcceleratorStats* stats,
                                    DecodeStepFuser* fuser) {
  // Start from the quantized backend: its K/V cache factories (INT8 rows at
  // the calibrated scales) are exactly what the accelerator consumes too.
  // Only the hooks that execute compute are rerouted through the simulator.
  ResBlockBackend b = qt.backend();
  b.mha = [&qt, &acc, stats, fuser](const MatF& q, const MatF& kv,
                                    const MhaWeights& w, const Mask& mask) {
    const MhaQuantized& qm = qt.mha_for(w);
    if (fuser != nullptr && fuser->prefill_active()) {
      // Packed prefill (PR 6): bit-exact data now, timing deferred to the
      // chunked prefill lanes of later step ledgers.
      const MatI8 out =
          acc.forward_mha(qm, qm.quantize_q(q), qm.quantize_kv(kv), mask);
      fuser->record_mha_prefill(q.rows(), kv.rows(), qm.d_model,
                                qm.num_heads);
      return qm.dequantize_out(out);
    }
    const auto result =
        acc.run_mha(qm, qm.quantize_q(q), qm.quantize_kv(kv), mask);
    charge_mha(stats, result.report);
    return qm.dequantize_out(result.out);
  };
  b.ffn = [&qt, &acc, stats, fuser](const MatF& x, const FfnWeights& w) {
    const FfnQuantized& qf = qt.ffn_for(w);
    if (fuser != nullptr && (fuser->active() || fuser->prefill_active())) {
      // Fused decode step: bit-exact data now, timing deferred to the
      // step's single cross-sublayer ledger (end_step()).
      const MatI8 out = acc.forward_ffn(qf, qf.quantize_in(x));
      fuser->record_ffn(x.rows(), qf.d_model, qf.d_ff);
      return qf.dequantize_out(out);
    }
    const auto result = acc.run_ffn(qf, qf.quantize_in(x));
    charge_ffn(stats, result.report);
    return qf.dequantize_out(result.out);
  };
  // Incremental decode: K/V live in the card's data memory as INT8 rows,
  // appended once per projected position. Projection of the new rows is
  // charged inside run_mha_cached's schedule.
  b.mha_cached = [&qt, &acc, stats](const MatF& q, MhaCache& cache,
                                    const MhaWeights& w, const Mask& mask,
                                    bool append) {
    const MhaQuantized& qm = qt.mha_for(w);
    auto& kv_cache = dynamic_cast<QuantKvCache&>(cache);
    if (append) qm.append_kv(qm.quantize_kv(q), kv_cache);
    const auto result = acc.run_mha_cached(qm, qm.quantize_q(q), kv_cache,
                                           mask, append ? q.rows() : 0);
    charge_mha(stats, result.report);
    return qm.dequantize_out(result.out);
  };
  // Packed decode (continuous batching): all live hypotheses' rows share one
  // quantization pass and one projection per weight matrix, so the SA
  // streams full tiles again; per-slot attention stays ragged inside
  // run_mha_cached_batch's schedule.
  b.mha_cached_batch = [&qt, &acc, stats, fuser](
                           const MatF& q,
                           const std::vector<MhaCache*>& caches,
                           const MhaWeights& w,
                           const std::vector<Mask>& masks, bool append) {
    const MhaQuantized& qm = qt.mha_for(w);
    // Thread-local marshalling scratch: zero heap allocations once warm.
    BatchHookScratch& s = batch_hook_scratch();
    quant_kv_caches_into(caches, s);
    mask_ptrs_into(masks, s);
    if (append) qm.append_kv_batch(qm.quantize_kv(q), s.kv);
    const int projected = append ? q.rows() : 0;
    if (fuser != nullptr && fuser->active()) {
      const MatI8 out = acc.forward_mha_cached_batch(qm, qm.quantize_q(q),
                                                     s.ckv, s.masks, projected);
      s.totals.clear();
      s.totals.reserve(s.ckv.size());
      for (const QuantKvCache* c : s.ckv) s.totals.push_back(c->rows());
      fuser->record_mha_cached_batch(s.totals, qm.d_model, qm.num_heads,
                                     projected);
      return qm.dequantize_out(out);
    }
    const auto result = acc.run_mha_cached_batch(qm, qm.quantize_q(q), s.ckv,
                                                 s.masks, projected);
    charge_mha(stats, result.report);
    return qm.dequantize_out(result.out);
  };
  return b;
}

void charge_prefill_chunk(AcceleratorStats* stats, const SublayerPlan& chunk,
                          const RunReport& report) {
  TFACC_CHECK_ARG(chunk.kind == SublayerPlan::Kind::kMhaPrefill ||
                  chunk.kind == SublayerPlan::Kind::kFfn);
  if (chunk.kind == SublayerPlan::Kind::kMhaPrefill)
    charge_mha(stats, report);
  else
    charge_ffn(stats, report);
}

}  // namespace tfacc
