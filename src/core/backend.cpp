#include "core/backend.hpp"

namespace tfacc {

ResBlockBackend accelerator_backend(const QuantizedTransformer& qt,
                                    const Accelerator& acc,
                                    AcceleratorStats* stats) {
  // Start from the quantized backend: its K/V cache factories (INT8 rows at
  // the calibrated scales) are exactly what the accelerator consumes too.
  // Only the hooks that execute compute are rerouted through the simulator.
  ResBlockBackend b = qt.backend();
  b.mha = [&qt, &acc, stats](const MatF& q, const MatF& kv,
                             const MhaWeights& w, const Mask& mask) {
    const MhaQuantized& qm = qt.mha_for(w);
    const auto result =
        acc.run_mha(qm, qm.quantize_q(q), qm.quantize_kv(kv), mask);
    if (stats != nullptr) {
      ++stats->mha_runs;
      stats->mha_cycles += result.report.total_cycles;
    }
    return qm.dequantize_out(result.out);
  };
  b.ffn = [&qt, &acc, stats](const MatF& x, const FfnWeights& w) {
    const FfnQuantized& qf = qt.ffn_for(w);
    const auto result = acc.run_ffn(qf, qf.quantize_in(x));
    if (stats != nullptr) {
      ++stats->ffn_runs;
      stats->ffn_cycles += result.report.total_cycles;
    }
    return qf.dequantize_out(result.out);
  };
  // Incremental decode: K/V live in the card's data memory as INT8 rows,
  // appended once per projected position. Projection of the new rows is
  // charged inside run_mha_cached's schedule.
  b.mha_cached = [&qt, &acc, stats](const MatF& q, MhaCache& cache,
                                    const MhaWeights& w, const Mask& mask,
                                    bool append) {
    const MhaQuantized& qm = qt.mha_for(w);
    auto& kv_cache = dynamic_cast<QuantKvCache&>(cache);
    if (append) qm.append_kv(qm.quantize_kv(q), kv_cache);
    const auto result = acc.run_mha_cached(qm, qm.quantize_q(q), kv_cache,
                                           mask, append ? q.rows() : 0);
    if (stats != nullptr) {
      ++stats->mha_runs;
      stats->mha_cycles += result.report.total_cycles;
    }
    return qm.dequantize_out(result.out);
  };
  return b;
}

}  // namespace tfacc
