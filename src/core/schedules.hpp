// The four ResBlock schedule builders, rebuilt (PR 4) as dependency graphs
// placed by the list scheduler of sim/op_graph.hpp.
//
//  * schedule_mha          — Algorithm 1 lines 1-13, the paper's validated
//                            single-sentence flow. Issued in program order:
//                            this is the controller the paper describes and
//                            the cycle counts Section V.B pins (21,188 at
//                            the design point) depend on its exact order.
//  * schedule_mha_cached   — KV-cached incremental decode (PR 2).
//  * schedule_mha_cached_batch — packed continuous-batching decode (PR 3).
//  * schedule_ffn          — Algorithm 1 lines 14-22.
//
// The cached flows issue greedily by default (AcceleratorConfig::
// interleave_decode): while the softmax unit processes slot r of head h,
// the SA streams slot r+1's QKt or the next head's projections, so softmax
// latency becomes overlap instead of a per-slot bubble. With one slot the
// batch flow degenerates to exactly the cached flow's graph — cycle counts
// are identical by construction (pinned in tests/test_op_graph.cpp).
//
// Exposed publicly (rather than as accelerator.cpp internals) so tests can
// audit schedule legality: audit_schedule() proves no resource double-books
// and no op outruns its operands, for every flow and policy.
#pragma once

#include <vector>

#include "common/config.hpp"
#include "sim/op_graph.hpp"

namespace tfacc {

/// A built flow: the dependency graph and where every op landed.
struct ScheduledRun {
  OpGraph graph;
  ScheduleStats stats;
};

/// Issue policy of the KV-cached decode flows: greedy interleaving unless
/// the interleave_decode ablation knob pins strict program order. Shared by
/// the standalone cached builders, the fused decode-step composer, and
/// Accelerator::time_fused, so the rule lives in exactly one place.
IssuePolicy cached_policy(const AcceleratorConfig& cfg);

/// Full MHA (Algorithm 1 lines 1-13): `s_q` query rows attend over `s_kv`
/// key/value rows, `num_heads` heads of `cfg.sa_cols` dims each.
ScheduledRun schedule_mha(const AcceleratorConfig& cfg, Timeline& tl, int s_q,
                          int s_kv, int d_model, int num_heads);

/// KV-cached MHA: `s_new` query rows are projected and attend over `s_total`
/// cached keys/values; only `project_kv_rows` K/V rows are projected this
/// call (0 = fully cached, the steady decode state).
ScheduledRun schedule_mha_cached(const AcceleratorConfig& cfg, Timeline& tl,
                                 int s_new, int s_total, int d_model,
                                 int num_heads, int project_kv_rows);

/// Packed KV-cached MHA: one query row per slot, slot r attending over
/// totals[r] cached keys/values. Projections (QWq, and KWk/VWv for the
/// project_kv_rows appended rows) stream the stacked rows through a single
/// weight-tile residency; the ragged per-slot attention GEMMs keep their
/// one-row shapes and interleave across slots and heads.
ScheduledRun schedule_mha_cached_batch(const AcceleratorConfig& cfg,
                                       Timeline& tl,
                                       const std::vector<int>& totals,
                                       int d_model, int num_heads,
                                       int project_kv_rows);

/// FFN (Algorithm 1 lines 14-22) over `s` rows.
ScheduledRun schedule_ffn(const AcceleratorConfig& cfg, Timeline& tl, int s,
                          int d_model, int d_ff);

// --- Fused multi-sublayer ledgers (PR 5) -------------------------------------
//
// One ResBlock run per ledger leaves every sublayer boundary cold: each of
// the ~124 per-step sublayer invocations pays the initial 64-cycle weight
// tile load and leaves its LayerNorm tail fully exposed. The fused composer
// splices consecutive sublayer graphs into ONE OpGraph/Timeline: sublayer
// N+1's initial tile load becomes an explicit prefetch op on the WeightLoad
// port, gated only on sublayer N's first SA op having consumed its own tile
// (single residency), so the load runs under sublayer N's compute and its
// softmax/LayerNorm tail instead of restarting cold.

/// Shape of one sublayer inside a fused ledger.
///
/// kMhaPrefill is the encoder (prefill) MHA as a serve-side chunk (PR 6):
/// `s_q` query rows of the sentence attend over all `s_kv` source rows.
/// Encoder attention is bidirectional, so the sentence's K/V projection is
/// one-time work — it rides with the sublayer's FIRST chunk
/// (project_kv_rows = s_kv there, 0 on later chunks, whose K₁ᵀ/V₁ are
/// already resident in the data memory from an earlier step's ledger).
/// Unlike kMha it does NOT pin the whole ledger to Algorithm 1 program
/// order: prefill chunks interleave with decode rows under the cached-flow
/// policy. A single full-size chunk builds exactly schedule_mha's graph.
struct SublayerPlan {
  enum class Kind { kMha, kMhaCachedBatch, kFfn, kMhaPrefill };
  Kind kind = Kind::kFfn;
  std::string label;  ///< ledger label prefix, e.g. "dec0.self"

  int d_model = 0;
  int num_heads = 0;         ///< kMha / kMhaCachedBatch / kMhaPrefill
  int s_q = 0, s_kv = 0;     ///< kMha / kMhaPrefill
  std::vector<int> totals;   ///< kMhaCachedBatch: per-slot cached K/V rows
  int project_kv_rows = 0;   ///< kMhaCachedBatch / kMhaPrefill
  int rows = 0, d_ff = 0;    ///< kFfn

  static SublayerPlan mha(std::string label, int s_q, int s_kv, int d_model,
                          int num_heads);
  static SublayerPlan mha_cached_batch(std::string label,
                                       std::vector<int> totals, int d_model,
                                       int num_heads, int project_kv_rows);
  static SublayerPlan ffn(std::string label, int rows, int d_model, int d_ff);
  static SublayerPlan mha_prefill(std::string label, int s_q, int s_kv,
                                  int d_model, int num_heads,
                                  int project_kv_rows);
};

/// Split a sentence's full-size encoder sublayer plans (kMhaPrefill / kFfn)
/// into chunks of at most `chunk_rows` query rows each, preserving order.
/// The first chunk of each MHA sublayer carries the plan's K/V projection;
/// later chunks reuse the resident K₁ᵀ/V₁. A chunk size >= the sentence
/// length leaves each plan whole (one chunk).
std::vector<SublayerPlan> chunk_prefill(const std::vector<SublayerPlan>& subs,
                                        int chunk_rows);

/// Where one sublayer's SA occupancy landed inside a fused ledger.
struct FusedSegment {
  std::string label;
  Cycle sa_start = 0;    ///< first SA interval start of this sublayer
  Cycle sa_end = 0;      ///< last SA interval end of this sublayer
  /// SA idle between the previous sublayer's last SA cycle and this
  /// sublayer's first (the chained LayerNorm tail, plus any exposed load);
  /// for the first sublayer, the ledger's cold-load exposure.
  Cycle seam_stall = 0;
  bool prefill = false;  ///< sublayer belongs to a prefill lane
  /// Index of the lane this sublayer came from (append order). The verifier
  /// (analysis/verifier.hpp) uses it to enforce the lane rules: chained
  /// sublayers of ONE lane never interleave their SA occupancies, while
  /// cross-lane interleaving is legal by construction.
  int lane = 0;
};

/// A fused ledger: the spliced graph, its schedule, and the per-seam
/// boundary accounting the per-sublayer RunReports could never see.
struct FusedRun {
  OpGraph graph;
  ScheduleStats stats;
  std::vector<FusedSegment> segments;  ///< one per sublayer, in plan order
  /// Σ seam stalls + the final LayerNorm tail after the last SA op — the
  /// SA idle attributable to sublayer boundaries.
  Cycle boundary_stall = 0;
  /// Extra makespan the decode lanes suffered because prefill chunks shared
  /// the step: this ledger's end time minus the end time of the same ledger
  /// rebuilt without its prefill lanes (0 when the step is pure).
  Cycle prefill_stall = 0;
};

/// One lane of a mixed step ledger: a run of sublayers chained through the
/// residual stream (sublayer N+1's input-consuming ops depend on sublayer
/// N's LayerNorm). Lanes are mutually data-independent — a prefill chunk
/// and the packed decode pass share only the hardware and the
/// weight-prefetch port — but the prefetch chain threads through ALL lanes
/// in append order, so the decode lane's initial tile loads under the
/// prefill compute (the WeightLoad prefetch across the prefill/decode
/// seam).
struct FusedLane {
  std::vector<SublayerPlan> subs;
  bool prefill = false;  ///< tag the lane's ops as prefill work
};

/// Splice `subs` into one ledger. `chain` threads the residual stream:
/// sublayer N+1's input-consuming ops additionally depend on sublayer N's
/// LayerNorm (the packed decode step); chain = false models independent
/// back-to-back invocations (workload streaming) that share only the
/// hardware and the weight-prefetch port. A one-sublayer fused ledger
/// schedules its SA/Softmax/LayerNorm intervals identically to the
/// standalone builder above (pinned in tests/test_fused_step.cpp).
FusedRun schedule_fused(const AcceleratorConfig& cfg, Timeline& tl,
                        const std::vector<SublayerPlan>& subs, bool chain,
                        IssuePolicy policy);

/// Splice `lanes` into one mixed step ledger (PR 6). Each lane chains
/// internally; lanes share the hardware and one global prefetch chain but
/// no data, so prefill chunks interleave freely with the packed decode
/// rows. schedule_fused is the special case of one lane (chain = true) or
/// one single-sublayer lane per plan (chain = false).
FusedRun schedule_fused_lanes(const AcceleratorConfig& cfg, Timeline& tl,
                              const std::vector<FusedLane>& lanes,
                              IssuePolicy policy);

/// Standalone ledger of one prefill chunk (pack_prefill with
/// fuse_decode_step off): the chunk alone, issued under the cached-flow
/// policy. A full-size kMhaPrefill chunk scheduled in program order builds
/// exactly schedule_mha's graph (pinned in tests/test_prefill_pack.cpp).
ScheduledRun schedule_prefill(const AcceleratorConfig& cfg, Timeline& tl,
                              const SublayerPlan& chunk);

/// The packed decode step: every decoder sublayer of one step (self MHA,
/// cross MHA, FFN, per block) chained through the residual stream, issued
/// under the cached-flow policy (greedy unless interleave_decode = false).
FusedRun schedule_decode_step(const AcceleratorConfig& cfg, Timeline& tl,
                              const std::vector<SublayerPlan>& subs);

}  // namespace tfacc
