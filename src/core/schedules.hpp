// The four ResBlock schedule builders, rebuilt (PR 4) as dependency graphs
// placed by the list scheduler of sim/op_graph.hpp.
//
//  * schedule_mha          — Algorithm 1 lines 1-13, the paper's validated
//                            single-sentence flow. Issued in program order:
//                            this is the controller the paper describes and
//                            the cycle counts Section V.B pins (21,188 at
//                            the design point) depend on its exact order.
//  * schedule_mha_cached   — KV-cached incremental decode (PR 2).
//  * schedule_mha_cached_batch — packed continuous-batching decode (PR 3).
//  * schedule_ffn          — Algorithm 1 lines 14-22.
//
// The cached flows issue greedily by default (AcceleratorConfig::
// interleave_decode): while the softmax unit processes slot r of head h,
// the SA streams slot r+1's QKt or the next head's projections, so softmax
// latency becomes overlap instead of a per-slot bubble. With one slot the
// batch flow degenerates to exactly the cached flow's graph — cycle counts
// are identical by construction (pinned in tests/test_op_graph.cpp).
//
// Exposed publicly (rather than as accelerator.cpp internals) so tests can
// audit schedule legality: audit_schedule() proves no resource double-books
// and no op outruns its operands, for every flow and policy.
#pragma once

#include <vector>

#include "common/config.hpp"
#include "sim/op_graph.hpp"

namespace tfacc {

/// A built flow: the dependency graph and where every op landed.
struct ScheduledRun {
  OpGraph graph;
  ScheduleStats stats;
};

/// Full MHA (Algorithm 1 lines 1-13): `s_q` query rows attend over `s_kv`
/// key/value rows, `num_heads` heads of `cfg.sa_cols` dims each.
ScheduledRun schedule_mha(const AcceleratorConfig& cfg, Timeline& tl, int s_q,
                          int s_kv, int d_model, int num_heads);

/// KV-cached MHA: `s_new` query rows are projected and attend over `s_total`
/// cached keys/values; only `project_kv_rows` K/V rows are projected this
/// call (0 = fully cached, the steady decode state).
ScheduledRun schedule_mha_cached(const AcceleratorConfig& cfg, Timeline& tl,
                                 int s_new, int s_total, int d_model,
                                 int num_heads, int project_kv_rows);

/// Packed KV-cached MHA: one query row per slot, slot r attending over
/// totals[r] cached keys/values. Projections (QWq, and KWk/VWv for the
/// project_kv_rows appended rows) stream the stacked rows through a single
/// weight-tile residency; the ragged per-slot attention GEMMs keep their
/// one-row shapes and interleave across slots and heads.
ScheduledRun schedule_mha_cached_batch(const AcceleratorConfig& cfg,
                                       Timeline& tl,
                                       const std::vector<int>& totals,
                                       int d_model, int num_heads,
                                       int project_kv_rows);

/// FFN (Algorithm 1 lines 14-22) over `s` rows.
ScheduledRun schedule_ffn(const AcceleratorConfig& cfg, Timeline& tl, int s,
                          int d_model, int d_ff);

}  // namespace tfacc
