#include "core/batch_runner.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace tfacc {

namespace {

SchedulerConfig to_scheduler_config(const BatchConfig& cfg) {
  SchedulerConfig sc;
  sc.num_cards = cfg.num_cards;
  sc.max_len = cfg.max_len;
  sc.slots_per_card = cfg.slots_per_card;
  sc.beam_size = 0;  // BatchRunner's contract is greedy decode
  sc.decode = cfg.decode;
  sc.backend = ServeBackend::kAccelerator;
  sc.accel = cfg.accel;
  sc.softmax = cfg.softmax;
  return sc;
}

const BatchConfig& validated(const BatchConfig& cfg) {
  cfg.validate();
  return cfg;
}

}  // namespace

void BatchConfig::validate() const {
  TFACC_CHECK_ARG_MSG(num_cards >= 1, "num_cards must be >= 1, got "
                                          << num_cards);
  TFACC_CHECK_ARG_MSG(max_len >= 1, "max_len must be >= 1, got " << max_len);
  TFACC_CHECK_ARG_MSG(slots_per_card >= 1, "slots_per_card must be >= 1, got "
                                               << slots_per_card);
  accel.validate();
}

Cycle BatchReport::makespan_cycles() const {
  Cycle m = 0;
  for (const AcceleratorStats& s : per_card)
    m = std::max(m, s.total_cycles());
  return m;
}

Cycle BatchReport::total_cycles() const {
  Cycle t = 0;
  for (const AcceleratorStats& s : per_card) t += s.total_cycles();
  return t;
}

double BatchReport::modeled_sentences_per_second() const {
  const Cycle makespan = makespan_cycles();
  if (makespan <= 0) return 0.0;
  return sentences() * clock_mhz * 1e6 / static_cast<double>(makespan);
}

double BatchReport::sa_utilization() const {
  const Cycle total = total_cycles();
  return total == 0 ? 0.0
                    : static_cast<double>(sa_busy_cycles) / total;
}

BatchRunner::BatchRunner(const TransformerWeights& weights,
                         const std::vector<TokenSeq>& calib_sources,
                         BatchConfig cfg)
    : cfg_(validated(cfg)),
      scheduler_(weights, calib_sources, to_scheduler_config(cfg_)) {}

BatchRunner::~BatchRunner() = default;

BatchReport BatchRunner::run(const std::vector<TokenSeq>& sources) {
  ScheduleReport sched = scheduler_.run(sources);
  BatchReport rep;
  rep.outputs = std::move(sched.outputs);
  rep.per_card = std::move(sched.per_card);
  rep.wall_seconds = sched.wall_seconds;
  rep.clock_mhz = sched.clock_mhz;
  rep.packed_steps = sched.packed_steps();
  rep.packed_rows = sched.packed_rows();
  rep.prefill_chunks = sched.prefill_chunks();
  for (const AcceleratorStats& s : rep.per_card) {
    rep.sa_busy_cycles += s.sa_busy_cycles;
    rep.softmax_busy_cycles += s.softmax_busy_cycles;
    rep.layernorm_busy_cycles += s.layernorm_busy_cycles;
    rep.softmax_stall_cycles += s.softmax_stall_cycles;
    rep.boundary_stall_cycles += s.boundary_stall_cycles;
    rep.prefill_stall_cycles += s.prefill_stall_cycles;
    rep.fused_steps += s.fused_steps;
  }
  return rep;
}

}  // namespace tfacc
