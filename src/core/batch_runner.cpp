#include "core/batch_runner.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <mutex>
#include <thread>

#include "common/check.hpp"

namespace tfacc {

void BatchConfig::validate() const {
  TFACC_CHECK_ARG_MSG(num_cards >= 1, "num_cards must be >= 1, got "
                                          << num_cards);
  TFACC_CHECK_ARG_MSG(max_len >= 1, "max_len must be >= 1, got " << max_len);
  accel.validate();
}

Cycle BatchReport::makespan_cycles() const {
  Cycle m = 0;
  for (const AcceleratorStats& s : per_card)
    m = std::max(m, s.total_cycles());
  return m;
}

Cycle BatchReport::total_cycles() const {
  Cycle t = 0;
  for (const AcceleratorStats& s : per_card) t += s.total_cycles();
  return t;
}

double BatchReport::modeled_sentences_per_second() const {
  const Cycle makespan = makespan_cycles();
  if (makespan <= 0) return 0.0;
  return sentences() * clock_mhz * 1e6 / static_cast<double>(makespan);
}

// One accelerator card: a host model copy, the INT8 quantization of its
// blocks (keyed by weight addresses inside *this* model, hence per-card),
// and the cycle-level simulator instance the card's thread drives.
struct BatchRunner::Card {
  Transformer model;
  QuantizedTransformer qt;
  Accelerator acc;

  Card(const TransformerWeights& weights,
       const std::vector<TokenSeq>& calib_sources, const BatchConfig& cfg)
      : model(weights),
        qt(QuantizedTransformer::build(model, calib_sources, cfg.max_len,
                                       cfg.softmax)),
        acc(cfg.accel) {}
};

namespace {

// Run `fn(c)` for c in [0, n) on one thread each (or inline when n == 1),
// capturing the first exception so it rethrows on the caller's thread
// instead of std::terminate-ing the process.
template <typename Fn>
void run_per_card(std::size_t n, Fn&& fn) {
  std::exception_ptr error;
  std::mutex error_mu;
  auto guarded = [&](std::size_t c) {
    try {
      fn(c);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(error_mu);
      if (!error) error = std::current_exception();
    }
  };
  if (n == 1) {
    guarded(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(n);
    for (std::size_t c = 0; c < n; ++c) threads.emplace_back(guarded, c);
    for (std::thread& t : threads) t.join();
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace

BatchRunner::BatchRunner(const TransformerWeights& weights,
                         const std::vector<TokenSeq>& calib_sources,
                         BatchConfig cfg)
    : cfg_(cfg) {
  cfg_.validate();
  TFACC_CHECK_ARG_MSG(!calib_sources.empty(),
                      "need at least one calibration sentence");
  // Card setups are independent (each copies the weights and calibrates its
  // own quantization), so build them concurrently like run() decodes.
  cards_.resize(cfg_.num_cards);
  run_per_card(cards_.size(), [&](std::size_t c) {
    cards_[c] = std::make_unique<Card>(weights, calib_sources, cfg_);
  });
}

BatchRunner::~BatchRunner() = default;

BatchReport BatchRunner::run(const std::vector<TokenSeq>& sources) {
  BatchReport rep;
  rep.clock_mhz = cfg_.accel.clock_mhz;
  rep.outputs.resize(sources.size());
  rep.per_card.assign(cards_.size(), AcceleratorStats{});

  // Sentence i goes to card i % num_cards: a deterministic deal, so the
  // per-card cycle ledgers (not just the outputs) are reproducible.
  const auto t0 = std::chrono::steady_clock::now();
  const std::size_t n_cards = cards_.size();
  auto work = [&](std::size_t c) {
    Card& card = *cards_[c];
    card.model.set_backend(
        accelerator_backend(card.qt, card.acc, &rep.per_card[c]));
    for (std::size_t i = c; i < sources.size(); i += n_cards)
      rep.outputs[i] =
          card.model.translate_greedy(sources[i], cfg_.max_len, cfg_.decode);
    card.model.set_backend(ResBlockBackend{});
  };
  run_per_card(n_cards, work);
  rep.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return rep;
}

}  // namespace tfacc
