// Timing models of the three datapath modules of Fig. 5: the systolic array
// (with bias adders and ReLU inline), the Softmax module and the LayerNorm
// module. Functional results are computed by the controller through the
// quantized primitives (src/quant, src/hwarith); these classes are the cost
// oracles the dependency-driven schedule builders (core/schedules.hpp) use
// to size each op before the list scheduler (sim/op_graph.hpp) places it.
#pragma once

#include "common/config.hpp"
#include "sim/op_graph.hpp"

namespace tfacc {

/// Transaction-level systolic-array op costing.
///
/// An operation A(rows×inner)·B(inner×out_cols) is decomposed into
/// ceil(rows/sa_rows) × ceil(out_cols/sa_cols) chunks of
/// ceil(inner/tile_k) weight-tile passes each (Section III partitioning).
/// Each pass streams the chunk's rows plus a drain bubble; weight-tile loads
/// are double-buffered, so non-first passes are padded to the load latency
/// and only the op's first tile load can be exposed — and only when the
/// stationary operand is produced at runtime (Q·Kᵀ, Attn·V) or the op is the
/// run's very first (cold weight memory). Ops whose accumulation chain
/// exceeds the partial-sum buffer depth pay a spill (write-out + read-back
/// of the partial block) per extra pass. The exposure/first-op logic lives
/// in the scheduler (sim/op_graph.cpp); this oracle prices the busy time.
class SaModule {
 public:
  /// Busy cycles, MAC-issuing cycles and spill cycles of one GEMM op.
  static OpGraph::SaCost op_cost(const AcceleratorConfig& cfg, int rows,
                                 int inner, int out_cols);
};

/// The four-stage Softmax module of Fig. 6. Stage 1 (running max) tracks the
/// score columns as the SA drains them, so it costs nothing after the scores
/// finish; stages 2-4 stream the row twice through the EXP/SUM/LN pipeline.
/// The pipeline accepts a new independent row every `occupancy_cycles`
/// (initiation interval); the fill/drain depth is paid once per row as
/// result latency, so back-to-back softmaxes of different slots overlap —
/// an isolated softmax still takes occupancy + latency end to end, exactly
/// the pre-PR-4 figure.
class SoftmaxModule {
 public:
  /// Unit occupancy of softmax over `cols` score columns (two streaming
  /// passes through the EXP/SUM/LN/EXP pipeline).
  static Cycle occupancy_cycles(const AcceleratorConfig& cfg, int cols);
  /// Cycles after the occupancy until the last probability drains out.
  static Cycle result_latency(const AcceleratorConfig& cfg);
};

/// The LayerNorm module of Fig. 8 with the three latency strategies of
/// Fig. 7. ΣG / ΣG² accumulators are fed while G streams in (strategy-
/// dependent), so only the strategy's tail remains after G is done.
class LayerNormModule {
 public:
  /// The post-G tail length for a given strategy and width (also used by
  /// the Fig. 7 ablation bench).
  static Cycle tail_cycles(const AcceleratorConfig& cfg,
                           LayerNormStrategy strategy, int d_model);
};

}  // namespace tfacc
