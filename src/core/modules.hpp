// Timing models of the three datapath modules of Fig. 5: the systolic array
// (with bias adders and ReLU inline), the Softmax module and the LayerNorm
// module. Functional results are computed by the controller through the
// quantized primitives (src/quant, src/hwarith); these classes own the cycle
// accounting on the shared Timeline.
#pragma once

#include <string>

#include "common/config.hpp"
#include "sim/timeline.hpp"

namespace tfacc {

/// Transaction-level systolic-array schedule.
///
/// An operation A(rows×inner)·B(inner×out_cols) is decomposed into
/// ceil(rows/sa_rows) × ceil(out_cols/sa_cols) chunks of
/// ceil(inner/tile_k) weight-tile passes each (Section III partitioning).
/// Each pass streams the chunk's rows plus a drain bubble; weight-tile loads
/// are double-buffered, so only the op's first tile load is exposed — and
/// only when the stationary operand is produced at runtime (Q·Kᵀ, Attn·V).
/// Ops whose accumulation chain exceeds the partial-sum buffer depth pay a
/// spill (write-out + read-back of the partial block) per extra pass.
class SaModule {
 public:
  /// Marker for stationary operands resident in the weight memory, whose
  /// tile loads can be prefetched while the previous op streams.
  static constexpr Cycle kStaticWeight = -1;

  SaModule(const AcceleratorConfig& cfg, Timeline& timeline);

  /// Schedule one GEMM op; returns its busy interval on the SA.
  /// `a_ready` — cycle the streaming operand is available;
  /// `weight_ready` — cycle the stationary operand is available, or
  /// kStaticWeight for weights resident in the weight memory.
  Interval schedule(int rows, int inner, int out_cols, Cycle a_ready,
                    Cycle weight_ready, const std::string& label);

  /// Pure streaming cycles (MAC-issuing) scheduled so far: the numerator of
  /// the "SA never stops" utilization claim.
  Cycle ideal_stream_cycles() const { return ideal_stream_; }
  /// Exposed (non-overlapped) weight-load cycles accumulated so far.
  Cycle exposed_load_cycles() const { return exposed_load_; }
  /// Accumulator spill cycles accumulated so far.
  Cycle spill_cycles() const { return spill_; }

 private:
  const AcceleratorConfig& cfg_;
  ModuleTimeline& tl_;
  bool first_op_ = true;
  Cycle ideal_stream_ = 0;
  Cycle exposed_load_ = 0;
  Cycle spill_ = 0;
};

/// The four-stage Softmax module of Fig. 6. Stage 1 (running max) tracks the
/// score columns as the SA drains them, so it costs nothing after the scores
/// finish; stages 2-4 stream the row twice through the EXP/SUM/LN pipeline.
class SoftmaxModule {
 public:
  SoftmaxModule(const AcceleratorConfig& cfg, Timeline& timeline);

  /// Schedule softmax over an s×cols score matrix whose last column drains
  /// at `scores_done`.
  Interval schedule(Cycle scores_done, int cols, const std::string& label);

 private:
  const AcceleratorConfig& cfg_;
  ModuleTimeline& tl_;
};

/// The LayerNorm module of Fig. 8 with the three latency strategies of
/// Fig. 7. ΣG / ΣG² accumulators are fed while G streams in (strategy-
/// dependent), so only the strategy's tail remains after `g_done`.
class LayerNormModule {
 public:
  LayerNormModule(const AcceleratorConfig& cfg, Timeline& timeline);

  /// Schedule normalization of an s×d_model G whose last column is written
  /// at `g_done`.
  Interval schedule(Cycle g_done, int d_model, const std::string& label);

  /// The post-G tail length for a given strategy and width (for the Fig. 7
  /// ablation bench).
  static Cycle tail_cycles(const AcceleratorConfig& cfg,
                           LayerNormStrategy strategy, int d_model);

 private:
  const AcceleratorConfig& cfg_;
  ModuleTimeline& tl_;
};

}  // namespace tfacc
