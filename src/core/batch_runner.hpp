// Batched translation serving across a farm of accelerator cards.
//
// BatchRunner is the original (PR 1) batch API, kept as a thin compatibility
// shim over the serve/ continuous-batching Scheduler: requests now flow
// through the work-stealing RequestQueue instead of a static i % num_cards
// deal, and `slots_per_card` > 1 packs many sentences' single-row decode
// steps into one multi-row ResBlock invocation (full SA tiles). The default
// slots_per_card = 1 reproduces the PR 2 behavior — one sentence in flight
// per card — including its per-sentence cycle costs.
//
// Decoding is deterministic per sentence, so the batched outputs are
// bit-identical to a serial single-card run regardless of thread count,
// slot count, or which card a request lands on — and request placement
// itself follows the scheduler's simulated-time AdmissionGate, so the
// per-card cycle ledgers and the makespan are reproducible too, at any
// card count, on any host. Throughput is reported two ways:
//  * wall-clock sentences/sec of the simulation itself (host dependent), and
//  * modeled sentences/sec of the farm: n / makespan, where the makespan is
//    the busiest card's simulated cycles at the configured clock — the number
//    a real farm of these cards would sustain.
#pragma once

#include <vector>

#include "serve/scheduler.hpp"

namespace tfacc {

/// Configuration of a batched decode farm.
struct BatchConfig {
  int num_cards = 1;       ///< worker threads, one modeled accelerator card each
  int max_len = 32;        ///< greedy-decode length cap per sentence
  int slots_per_card = 1;  ///< sentences packed per decode step (1 = PR 2 mode)
  AcceleratorConfig accel{};              ///< micro-architecture of every card
  SoftmaxImpl softmax = SoftmaxImpl::kHardware;  ///< quantized softmax flavor
  /// KV-cached incremental decode (the production mode) or full recompute
  /// (the O(L³) legacy path, kept for equivalence tests and benchmarks).
  /// Outputs are bit-identical either way.
  DecodeMode decode = DecodeMode::kKvCache;

  void validate() const;
};

/// Outcome of one BatchRunner::run call.
struct BatchReport {
  std::vector<TokenSeq> outputs;          ///< outputs[i] decodes sources[i]
  std::vector<AcceleratorStats> per_card; ///< cycle ledger of each card
  double wall_seconds = 0;                ///< host time spent simulating
  double clock_mhz = 200.0;
  long packed_steps = 0;                  ///< step-loop iterations, all cards
  long packed_rows = 0;                   ///< Σ hypothesis rows over steps
  Cycle sa_busy_cycles = 0;               ///< Σ SA busy cycles, all cards
  Cycle softmax_busy_cycles = 0;          ///< Σ Softmax busy cycles, all cards
  Cycle layernorm_busy_cycles = 0;        ///< Σ LayerNorm busy, all cards
  Cycle softmax_stall_cycles = 0;         ///< Σ SA cycles stalled on softmax
  /// Σ SA cycles idle at run/sublayer boundaries (cold weight loads, fused
  /// seam gaps, LayerNorm tails), all cards.
  Cycle boundary_stall_cycles = 0;
  /// Σ cycles live decode rows waited on prefill (encoder) work, all cards.
  Cycle prefill_stall_cycles = 0;
  long fused_steps = 0;                   ///< steps timed as one fused ledger
  long prefill_chunks = 0;                ///< prefill chunks spliced, all cards

  int sentences() const { return static_cast<int>(outputs.size()); }
  /// Simulated cycles of the busiest card: the farm finishes when it does.
  Cycle makespan_cycles() const;
  /// Sum of ResBlock cycles across every card.
  Cycle total_cycles() const;
  /// Farm throughput a real deployment of these cards would sustain.
  double modeled_sentences_per_second() const;
  /// Host-side simulation throughput (depends on the machine running us).
  double wall_sentences_per_second() const {
    return wall_seconds <= 0 ? 0.0 : sentences() / wall_seconds;
  }
  /// Mean hypothesis rows per packed decode step (1.0 = PR 2's one-row
  /// steps; higher = fuller SA tiles).
  double packed_rows_mean() const {
    return packed_steps <= 0
               ? 0.0
               : static_cast<double>(packed_rows) / packed_steps;
  }
  /// SA-busy fraction of all simulated ResBlock cycles.
  double sa_utilization() const;
};

/// Decodes batches of translation requests concurrently across per-thread
/// Accelerator+backend instances. Construction pays the per-card setup
/// (weight copy + INT8 calibration) once; run() may be called repeatedly.
class BatchRunner {
 public:
  /// `weights` is copied into every card. `calib_sources` drive the INT8
  /// calibration of each card's QuantizedTransformer (identical across cards
  /// because calibration is deterministic).
  BatchRunner(const TransformerWeights& weights,
              const std::vector<TokenSeq>& calib_sources, BatchConfig cfg = {});
  ~BatchRunner();

  BatchRunner(const BatchRunner&) = delete;
  BatchRunner& operator=(const BatchRunner&) = delete;

  const BatchConfig& config() const { return cfg_; }

  /// Greedily translate every source. Cards pull sentences from the shared
  /// work-stealing queue and run them in parallel threads. Outputs are
  /// bit-identical to a serial decode of the same sources.
  BatchReport run(const std::vector<TokenSeq>& sources);

 private:
  BatchConfig cfg_;
  Scheduler scheduler_;
};

}  // namespace tfacc
