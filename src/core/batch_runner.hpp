// Batched translation serving across a farm of accelerator cards.
//
// The paper evaluates batch-1 latency on a single FPGA; a deployment serving
// heavy traffic replicates the card and spreads independent requests across
// the replicas (the same scaling marian-dev applies to its multi-threaded
// INT8 CPU decode path). BatchRunner models exactly that: each worker thread
// owns a complete per-card context — a Transformer host model, its
// QuantizedTransformer (INT8 blocks are keyed by weight addresses, so every
// card calibrates its own copy deterministically) and a cycle-level
// Accelerator — and requests are dealt round-robin across cards.
//
// Decoding is deterministic, so the batched outputs are bit-identical to a
// serial single-card run regardless of thread count; only wall-clock time
// and the per-card cycle ledgers change. Throughput is reported two ways:
//  * wall-clock sentences/sec of the simulation itself (host dependent), and
//  * modeled sentences/sec of the farm: n / makespan, where the makespan is
//    the busiest card's simulated cycles at the configured clock — the number
//    a real farm of these cards would sustain.
#pragma once

#include <memory>
#include <vector>

#include "core/backend.hpp"

namespace tfacc {

/// Configuration of a batched decode farm.
struct BatchConfig {
  int num_cards = 1;   ///< worker threads, one modeled accelerator card each
  int max_len = 32;    ///< greedy-decode length cap per sentence
  AcceleratorConfig accel{};              ///< micro-architecture of every card
  SoftmaxImpl softmax = SoftmaxImpl::kHardware;  ///< quantized softmax flavor
  /// KV-cached incremental decode (the production mode) or full recompute
  /// (the O(L³) legacy path, kept for equivalence tests and benchmarks).
  /// Outputs are bit-identical either way.
  DecodeMode decode = DecodeMode::kKvCache;

  void validate() const;
};

/// Outcome of one BatchRunner::run call.
struct BatchReport {
  std::vector<TokenSeq> outputs;          ///< outputs[i] decodes sources[i]
  std::vector<AcceleratorStats> per_card; ///< cycle ledger of each card
  double wall_seconds = 0;                ///< host time spent simulating
  double clock_mhz = 200.0;

  int sentences() const { return static_cast<int>(outputs.size()); }
  /// Simulated cycles of the busiest card: the farm finishes when it does.
  Cycle makespan_cycles() const;
  /// Sum of ResBlock cycles across every card.
  Cycle total_cycles() const;
  /// Farm throughput a real deployment of these cards would sustain.
  double modeled_sentences_per_second() const;
  /// Host-side simulation throughput (depends on the machine running us).
  double wall_sentences_per_second() const {
    return wall_seconds <= 0 ? 0.0 : sentences() / wall_seconds;
  }
};

/// Decodes batches of translation requests concurrently across per-thread
/// Accelerator+backend instances. Construction pays the per-card setup
/// (weight copy + INT8 calibration) once; run() may be called repeatedly.
class BatchRunner {
 public:
  /// `weights` is copied into every card. `calib_sources` drive the INT8
  /// calibration of each card's QuantizedTransformer (identical across cards
  /// because calibration is deterministic).
  BatchRunner(const TransformerWeights& weights,
              const std::vector<TokenSeq>& calib_sources, BatchConfig cfg = {});
  ~BatchRunner();

  BatchRunner(const BatchRunner&) = delete;
  BatchRunner& operator=(const BatchRunner&) = delete;

  const BatchConfig& config() const { return cfg_; }

  /// Greedily translate every source. Sentence i is decoded by card
  /// i % num_cards; cards run in parallel threads. Outputs are bit-identical
  /// to a serial decode of the same sources.
  BatchReport run(const std::vector<TokenSeq>& sources);

 private:
  struct Card;
  BatchConfig cfg_;
  std::vector<std::unique_ptr<Card>> cards_;
};

}  // namespace tfacc
