// Full-model inference scheduling — the paper's stated future work
// ("In the future, we will build a FPGA or ASIC accelerator for the complete
// Transformer inference").
//
// The Fig. 5 weight memory holds one layer's weights (456 BRAM36 ≈ the FFN
// pair). Running a whole stack therefore interleaves per-layer weight DMA
// from off-chip memory with ResBlock compute. This scheduler models both
// policies: serial reload, and a double-buffered weight memory that
// prefetches layer i+1 while layer i computes (costing 2× weight BRAM).
//
// Greedy decoding is modeled at the workload level: the encoder runs once;
// each emitted token re-runs the decoder stack. Both the naive mode
// (recompute all t query rows each step, which is what the batch-style
// ResBlock engine naturally does) and a KV-cache mode (only the new row is
// projected; K/V of earlier positions are reused from the data memory) are
// provided.
#pragma once

#include <string>
#include <vector>

#include "common/config.hpp"
#include "core/accelerator.hpp"

namespace tfacc {

/// Off-chip weight streaming parameters.
struct DmaConfig {
  /// Payload bytes per accelerator cycle (e.g. a 512-bit interface at the
  /// core clock = 64 B/cycle = 12.8 GB/s at 200 MHz).
  double bytes_per_cycle = 64.0;
  /// Prefetch next layer's weights during current layer's compute.
  bool double_buffered = true;

  void validate() const;
};

/// One scheduled stage of a full-model pass.
struct StageLatency {
  std::string name;
  Cycle compute = 0;      ///< ResBlock cycles (from the Accelerator model)
  Cycle dma = 0;          ///< weight-streaming cycles for this stage
  Cycle dma_exposed = 0;  ///< DMA cycles not hidden behind compute
};

/// Aggregate of a full-model pass.
struct FullModelReport {
  std::vector<StageLatency> stages;
  Cycle compute_cycles = 0;
  Cycle dma_cycles = 0;
  Cycle dma_exposed_cycles = 0;
  Cycle total_cycles = 0;
  double clock_mhz = 200.0;

  double microseconds() const {
    return static_cast<double>(total_cycles) / clock_mhz;
  }
};

/// Weight bytes of one MHA ResBlock (4 d_model² INT8 weights + biases).
std::int64_t mha_weight_bytes(const ModelConfig& cfg);
/// Weight bytes of one FFN ResBlock (2 d_model·d_ff INT8 weights + biases).
std::int64_t ffn_weight_bytes(const ModelConfig& cfg);

class FullModelScheduler {
 public:
  FullModelScheduler(AcceleratorConfig acc_cfg = {}, DmaConfig dma = {});

  /// One full encoder pass over an s-token batch-1 sequence:
  /// num_encoder_layers × (MHA + FFN), with per-layer weight streaming.
  FullModelReport encoder_pass(const ModelConfig& cfg, int s) const;

  /// Greedy translation: one encoder pass + out_len decoder passes.
  /// With `kv_cache`, decoder self-attention at step t projects only the
  /// new row (queries 1 row against t cached keys); without it, the whole
  /// t-row block recomputes.
  FullModelReport greedy_decode(const ModelConfig& cfg, int src_len,
                                int out_len, bool kv_cache) const;

  const Accelerator& accelerator() const { return acc_; }

 private:
  Cycle dma_cycles(std::int64_t bytes) const;
  /// Fold a compute stage with its (possibly prefetched) weight DMA.
  void push_stage(FullModelReport& rep, std::string name, Cycle compute,
                  std::int64_t weight_bytes) const;

  Accelerator acc_;
  DmaConfig dma_;
};

}  // namespace tfacc
