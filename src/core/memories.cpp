#include "core/memories.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "core/full_model.hpp"

namespace tfacc {

MemoryLayout MemoryLayout::compute(const ModelConfig& cfg, int s,
                                   bool double_buffer_weights) {
  cfg.validate();
  TFACC_CHECK_ARG(s > 0);
  const std::int64_t s64 = s;
  const std::int64_t dm = cfg.d_model;
  const std::int64_t dff = cfg.d_ff;

  MemoryLayout layout;
  auto add = [&layout](std::string name, std::int64_t bytes) {
    layout.buffers.push_back(BufferSpec{std::move(name), bytes});
  };
  // Fig. 5 annotations, INT8 activations unless noted.
  add("input Q/X (s x 64h)", s64 * dm);
  add("input K=V (s x 64h)", s64 * dm);
  add("Temp1 (s x max(s,64))", s64 * std::max<std::int64_t>(s64, 64));
  add("Temp2 (s x 64)", s64 * 64);
  add("P / ReLU(XW1) (s x 256h)", s64 * dff);
  add("G (s x d_model, INT16)", s64 * dm * 2);
  add("output (s x d_model)", s64 * dm);
  const std::int64_t weights =
      std::max(mha_weight_bytes(cfg), ffn_weight_bytes(cfg));
  add("weight memory", double_buffer_weights ? 2 * weights : weights);
  // Bias memory: the largest live set (FFN: d_ff + d_model INT32 entries).
  add("bias memory", (dff + dm) * 4);
  return layout;
}

std::int64_t MemoryLayout::total_bytes() const {
  std::int64_t total = 0;
  for (const auto& b : buffers) total += b.bytes;
  return total;
}

double MemoryLayout::bram36() const {
  // Each buffer maps to whole BRAM36 blocks (36 Kb = 4608 B granularity).
  double blocks = 0.0;
  for (const auto& b : buffers)
    blocks += static_cast<double>((b.bytes + 4607) / 4608);
  return blocks;
}

std::int64_t MemoryLayout::bytes_of(const std::string& name) const {
  for (const auto& b : buffers)
    if (b.name == name) return b.bytes;
  TFACC_CHECK_ARG_MSG(false, "no buffer named " << name);
  return 0;
}

}  // namespace tfacc
