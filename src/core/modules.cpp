#include "core/modules.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace tfacc {

namespace {
Cycle ceil_div(Cycle a, Cycle b) { return (a + b - 1) / b; }
}  // namespace

OpGraph::SaCost SaModule::op_cost(const AcceleratorConfig& cfg, int rows,
                                  int inner, int out_cols) {
  TFACC_CHECK_ARG(rows > 0 && inner > 0 && out_cols > 0);

  const int row_chunks = static_cast<int>(ceil_div(rows, cfg.sa_rows));
  const int col_chunks = static_cast<int>(ceil_div(out_cols, cfg.sa_cols));
  const int tiles_k = static_cast<int>(ceil_div(inner, cfg.tile_k));

  OpGraph::SaCost cost;
  for (int rc = 0; rc < row_chunks; ++rc) {
    const int chunk_rows = std::min(cfg.sa_rows, rows - rc * cfg.sa_rows);
    for (int cc = 0; cc < col_chunks; ++cc) {
      for (int t = 0; t < tiles_k; ++t) {
        const Cycle pass = chunk_rows + cfg.tile_drain_cycles;
        const bool first_pass_of_op = (rc == 0 && cc == 0 && t == 0);
        // Subsequent tile loads are double-buffered: a pass cannot finish
        // before the next tile's load does, so short passes are padded.
        const Cycle padded =
            first_pass_of_op ? pass
                             : std::max<Cycle>(pass, cfg.weight_load_cycles);
        cost.duration += padded;
        cost.stream += chunk_rows;
      }
      // Accumulation chains longer than the partial-sum buffer spill.
      const Cycle passes = ceil_div(tiles_k, cfg.accum_depth_tiles);
      cost.duration += (passes - 1) * cfg.accum_spill_cycles;
      cost.spill += (passes - 1) * cfg.accum_spill_cycles;
    }
  }
  return cost;
}

Cycle SoftmaxModule::occupancy_cycles(const AcceleratorConfig& cfg, int cols) {
  TFACC_CHECK_ARG(cols > 0);
  (void)cfg;
  // Stage 1 (max) tracked during score arrival; stages 2-4 stream the row
  // through EXP+SUM (cols cycles), LN, then EXP again (cols cycles).
  return 2 * static_cast<Cycle>(cols);
}

Cycle SoftmaxModule::result_latency(const AcceleratorConfig& cfg) {
  return cfg.softmax_pipeline_depth;
}

Cycle LayerNormModule::tail_cycles(const AcceleratorConfig& cfg,
                                   LayerNormStrategy strategy, int d_model) {
  TFACC_CHECK_ARG(d_model > 0);
  const Cycle d = d_model;
  switch (strategy) {
    case LayerNormStrategy::kStepOneAndTwo:
      // ΣG and ΣG² both online: only the rsqrt lookup, then stream output.
      return cfg.layernorm_lut_latency + d;
    case LayerNormStrategy::kStepOne:
      // ΣG online, but the variance needs a second pass over G.
      return d + cfg.layernorm_lut_latency + d;
    case LayerNormStrategy::kStraightforward:
      // Mean pass, variance pass, then output (Fig. 7 top).
      return d + d + cfg.layernorm_lut_latency + d;
  }
  TFACC_CHECK(false);
  return 0;
}

}  // namespace tfacc
