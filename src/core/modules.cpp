#include "core/modules.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace tfacc {

namespace {
Cycle ceil_div(Cycle a, Cycle b) { return (a + b - 1) / b; }
}  // namespace

SaModule::SaModule(const AcceleratorConfig& cfg, Timeline& timeline)
    : cfg_(cfg), tl_(timeline.module("SA")) {
  cfg_.validate();
}

Interval SaModule::schedule(int rows, int inner, int out_cols, Cycle a_ready,
                            Cycle weight_ready, const std::string& label) {
  TFACC_CHECK_ARG(rows > 0 && inner > 0 && out_cols > 0);
  TFACC_CHECK_ARG(a_ready >= 0);
  TFACC_CHECK_ARG(weight_ready >= 0 || weight_ready == kStaticWeight);

  const int row_chunks = static_cast<int>(ceil_div(rows, cfg_.sa_rows));
  const int col_chunks = static_cast<int>(ceil_div(out_cols, cfg_.sa_cols));
  const int tiles_k = static_cast<int>(ceil_div(inner, cfg_.tile_k));

  // When does the first weight tile sit in the stationary buffer?
  // Static weights prefetch under the previous op (double buffering); only
  // the very first op of a run sees the initial load. Dynamic operands
  // (K_iᵀ, V_i) cannot be loaded before they exist.
  Cycle first_tile_ready = 0;
  if (weight_ready == kStaticWeight) {
    if (first_op_) first_tile_ready = cfg_.weight_load_cycles;
  } else {
    first_tile_ready = weight_ready + cfg_.weight_load_cycles;
  }
  first_op_ = false;

  Cycle duration = 0;
  Cycle stream_total = 0;
  for (int rc = 0; rc < row_chunks; ++rc) {
    const int chunk_rows = std::min(cfg_.sa_rows, rows - rc * cfg_.sa_rows);
    for (int cc = 0; cc < col_chunks; ++cc) {
      for (int t = 0; t < tiles_k; ++t) {
        const Cycle pass = chunk_rows + cfg_.tile_drain_cycles;
        const bool first_pass_of_op = (rc == 0 && cc == 0 && t == 0);
        // Subsequent tile loads are double-buffered: a pass cannot finish
        // before the next tile's load does, so short passes are padded.
        const Cycle padded =
            first_pass_of_op ? pass
                             : std::max<Cycle>(pass, cfg_.weight_load_cycles);
        duration += padded;
        stream_total += chunk_rows;
      }
      // Accumulation chains longer than the partial-sum buffer spill.
      const Cycle passes = ceil_div(tiles_k, cfg_.accum_depth_tiles);
      duration += (passes - 1) * cfg_.accum_spill_cycles;
      spill_ += (passes - 1) * cfg_.accum_spill_cycles;
    }
  }

  // Exposed load = cycles the SA sits idle purely waiting for the
  // stationary operand's first tile (measured against when it could
  // otherwise have started).
  const Cycle sa_free = tl_.free_at();
  exposed_load_ +=
      std::max<Cycle>(0, first_tile_ready - std::max(a_ready, sa_free));

  const Cycle earliest = std::max(a_ready, first_tile_ready);
  const Interval iv = tl_.reserve(earliest, duration, label);
  ideal_stream_ += stream_total;
  return iv;
}

SoftmaxModule::SoftmaxModule(const AcceleratorConfig& cfg, Timeline& timeline)
    : cfg_(cfg), tl_(timeline.module("Softmax")) {}

Interval SoftmaxModule::schedule(Cycle scores_done, int cols,
                                 const std::string& label) {
  TFACC_CHECK_ARG(cols > 0);
  // Stage 1 (max) tracked during score arrival; stages 2-4 stream the row
  // through EXP+SUM (cols cycles), LN, then EXP again (cols cycles).
  const Cycle duration = 2 * static_cast<Cycle>(cols) +
                         cfg_.softmax_pipeline_depth;
  return tl_.reserve(scores_done, duration, label);
}

LayerNormModule::LayerNormModule(const AcceleratorConfig& cfg,
                                 Timeline& timeline)
    : cfg_(cfg), tl_(timeline.module("LayerNorm")) {}

Cycle LayerNormModule::tail_cycles(const AcceleratorConfig& cfg,
                                   LayerNormStrategy strategy, int d_model) {
  const Cycle d = d_model;
  switch (strategy) {
    case LayerNormStrategy::kStepOneAndTwo:
      // ΣG and ΣG² both online: only the rsqrt lookup, then stream output.
      return cfg.layernorm_lut_latency + d;
    case LayerNormStrategy::kStepOne:
      // ΣG online, but the variance needs a second pass over G.
      return d + cfg.layernorm_lut_latency + d;
    case LayerNormStrategy::kStraightforward:
      // Mean pass, variance pass, then output (Fig. 7 top).
      return d + d + cfg.layernorm_lut_latency + d;
  }
  TFACC_CHECK(false);
  return 0;
}

Interval LayerNormModule::schedule(Cycle g_done, int d_model,
                                   const std::string& label) {
  TFACC_CHECK_ARG(d_model > 0);
  return tl_.reserve(g_done,
                     tail_cycles(cfg_, cfg_.layernorm_strategy, d_model),
                     label);
}

}  // namespace tfacc
