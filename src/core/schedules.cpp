#include "core/schedules.hpp"

#include <algorithm>
#include <string>

#include "common/check.hpp"
#include "core/modules.hpp"

namespace tfacc {

namespace {

int add_gemm(OpGraph& g, const AcceleratorConfig& cfg, int rows, int inner,
             int out_cols, std::vector<int> deps, int weight_dep,
             std::string label, int softmax_dep = -1) {
  return g.add_sa(SaModule::op_cost(cfg, rows, inner, out_cols),
                  std::move(deps), weight_dep, std::move(label), softmax_dep);
}

int add_softmax(OpGraph& g, const AcceleratorConfig& cfg, int scores_dep,
                int cols, std::string label) {
  return g.add_softmax(SoftmaxModule::occupancy_cycles(cfg, cols),
                       SoftmaxModule::result_latency(cfg), scores_dep,
                       std::move(label));
}

/// Lines 9-12 of Algorithm 1, shared by every MHA flow: G_i = P·W_Gi + b +
/// Q_i one 64-column block at a time (each needs the full P row, i.e. every
/// head's AV output), then the LayerNorm tail. Returns the LayerNorm op.
int add_output_blocks(OpGraph& g, const AcceleratorConfig& cfg, int rows,
                      int d_model, const std::vector<int>& avs,
                      const std::string& prefix) {
  std::vector<int> gs;
  for (int i = 0; i < d_model / cfg.sa_cols; ++i)
    gs.push_back(add_gemm(g, cfg, rows, d_model, cfg.sa_cols, avs,
                          OpNode::kStaticWeight,
                          prefix + "G" + std::to_string(i)));
  return g.add_layernorm(
      LayerNormModule::tail_cycles(cfg, cfg.layernorm_strategy, d_model), gs,
      prefix + "LayerNorm");
}

/// Where a sublayer's graph hooks into a fused ledger: its LayerNorm (the
/// residual-stream output the next sublayer chains on) and its first SA op
/// (whose tile consumption frees the prefetch buffer for the next
/// sublayer's initial load).
struct AppendResult {
  int ln = -1;
  int first_sa = -1;
};

/// Full MHA (Algorithm 1 lines 1-13). `entry_deps` are extra data deps for
/// every input-consuming op (empty for a standalone run; a fused composer
/// passes the previous sublayer's LayerNorm and this sublayer's weight
/// prefetch).
AppendResult append_mha(OpGraph& g, const AcceleratorConfig& cfg, int s_q,
                        int s_kv, int d_model, int num_heads,
                        const std::vector<int>& entry_deps,
                        const std::string& prefix) {
  const int hd = cfg.sa_cols;
  AppendResult res;
  std::vector<int> avs;
  avs.reserve(static_cast<std::size_t>(num_heads));
  for (int h = 0; h < num_heads; ++h) {
    const std::string tag = prefix + "head" + std::to_string(h);
    // Lines 3-4: Temp1 = Q·W_Qi + b, Temp2 = K·W_Ki + b.
    const int q1 = add_gemm(g, cfg, s_q, d_model, hd, entry_deps,
                            OpNode::kStaticWeight, tag + ".QWq");
    if (res.first_sa < 0) res.first_sa = q1;
    const int k1 = add_gemm(g, cfg, s_kv, d_model, hd, entry_deps,
                            OpNode::kStaticWeight, tag + ".KWk");
    // Line 5: softmax input = Temp1 · Temp2ᵀ (K₁ᵀ is a runtime operand).
    const int d = add_gemm(g, cfg, s_q, hd, s_kv, {q1}, k1, tag + ".QKt");
    // Line 6: softmax runs in parallel with V·W_Vi (the overlap claim);
    // the ablation knob serializes V·W_Vi behind it instead — a genuine
    // softmax→SA edge, so tag it for stall/slack attribution.
    const int sm = add_softmax(g, cfg, d, s_kv, tag + ".softmax");
    const int v1 =
        cfg.overlap_softmax
            ? add_gemm(g, cfg, s_kv, d_model, hd, entry_deps,
                       OpNode::kStaticWeight, tag + ".VWv")
            : add_gemm(g, cfg, s_kv, d_model, hd, {sm},
                       OpNode::kStaticWeight, tag + ".VWv", sm);
    // Line 7: P_i = softmax · Temp2 (V₁ is a runtime operand).
    avs.push_back(
        add_gemm(g, cfg, s_q, s_kv, hd, {sm}, v1, tag + ".AV", sm));
  }
  res.ln = add_output_blocks(g, cfg, s_q, d_model, avs, prefix);
  return res;
}

/// Packed KV-cached MHA (see schedule_mha_cached_batch).
AppendResult append_mha_cached_batch(OpGraph& g, const AcceleratorConfig& cfg,
                                     const std::vector<int>& totals,
                                     int d_model, int num_heads,
                                     int project_kv_rows,
                                     const std::vector<int>& entry_deps,
                                     const std::string& prefix) {
  const int hd = cfg.sa_cols;
  const int n = static_cast<int>(totals.size());
  TFACC_CHECK_ARG(n > 0);
  AppendResult res;
  std::vector<int> avs;
  avs.reserve(static_cast<std::size_t>(num_heads) *
              static_cast<std::size_t>(n));
  for (int h = 0; h < num_heads; ++h) {
    const std::string tag = prefix + "head" + std::to_string(h);
    // Projections stream the stacked slot rows through a single weight-tile
    // residency (the PR 3 full-tile restoration). K/V project before Q so
    // the first slot's K₁ᵀ tile loads under the Q projection (see
    // schedule_mha_cached) — the one-slot graph stays identical to it.
    int k_dep = OpNode::kStaticWeight;  // cached K₁ᵀ / V₁ are resident
    int v_dep = OpNode::kStaticWeight;
    if (project_kv_rows > 0) {
      k_dep = add_gemm(g, cfg, project_kv_rows, d_model, hd, entry_deps,
                       OpNode::kStaticWeight, tag + ".KWk");
      if (res.first_sa < 0) res.first_sa = k_dep;
      v_dep = add_gemm(g, cfg, project_kv_rows, d_model, hd, entry_deps,
                       OpNode::kStaticWeight, tag + ".VWv");
    }
    const int q1 = add_gemm(g, cfg, n, d_model, hd, entry_deps,
                            OpNode::kStaticWeight, tag + ".QWq");
    if (res.first_sa < 0) res.first_sa = q1;
    // The ragged per-slot attention chains are mutually independent: under
    // the greedy policy slot r+1's QKt streams while slot r's softmax runs.
    for (int r = 0; r < n; ++r) {
      const int s_total = totals[static_cast<std::size_t>(r)];
      const std::string slot = tag + ".slot" + std::to_string(r);
      const int d =
          add_gemm(g, cfg, 1, hd, s_total, {q1}, k_dep, slot + ".QKt");
      const int sm = add_softmax(g, cfg, d, s_total, slot + ".softmax");
      avs.push_back(
          add_gemm(g, cfg, 1, s_total, hd, {sm}, v_dep, slot + ".AV", sm));
    }
  }
  res.ln = add_output_blocks(g, cfg, n, d_model, avs, prefix);
  return res;
}

/// Encoder (prefill) MHA chunk: `s_q` of the sentence's rows attend over
/// all `s_kv` source rows. Encoder attention is bidirectional, so the
/// sentence's K/V projection is one-time work: it rides with the
/// sublayer's first chunk (project_kv_rows = s_kv), while later chunks'
/// K₁ᵀ/V₁ are already resident in the data memory from an earlier step's
/// ledger. A full-size chunk (s_q = s_kv = project_kv_rows) appends
/// exactly append_mha's graph, op for op.
AppendResult append_mha_prefill(OpGraph& g, const AcceleratorConfig& cfg,
                                int s_q, int s_kv, int d_model, int num_heads,
                                int project_kv_rows,
                                const std::vector<int>& entry_deps,
                                const std::string& prefix) {
  TFACC_CHECK_ARG(s_q > 0 && s_kv >= s_q);
  TFACC_CHECK_ARG(project_kv_rows == 0 || project_kv_rows == s_kv);
  const int hd = cfg.sa_cols;
  AppendResult res;
  std::vector<int> avs;
  avs.reserve(static_cast<std::size_t>(num_heads));
  for (int h = 0; h < num_heads; ++h) {
    const std::string tag = prefix + "head" + std::to_string(h);
    const int q1 = add_gemm(g, cfg, s_q, d_model, hd, entry_deps,
                            OpNode::kStaticWeight, tag + ".QWq");
    if (res.first_sa < 0) res.first_sa = q1;
    int k_dep = OpNode::kStaticWeight;  // resident from an earlier chunk
    if (project_kv_rows > 0)
      k_dep = add_gemm(g, cfg, project_kv_rows, d_model, hd, entry_deps,
                       OpNode::kStaticWeight, tag + ".KWk");
    const int d = add_gemm(g, cfg, s_q, hd, s_kv, {q1}, k_dep, tag + ".QKt");
    const int sm = add_softmax(g, cfg, d, s_kv, tag + ".softmax");
    int v_dep = OpNode::kStaticWeight;
    if (project_kv_rows > 0)
      v_dep = cfg.overlap_softmax
                  ? add_gemm(g, cfg, project_kv_rows, d_model, hd, entry_deps,
                             OpNode::kStaticWeight, tag + ".VWv")
                  : add_gemm(g, cfg, project_kv_rows, d_model, hd, {sm},
                             OpNode::kStaticWeight, tag + ".VWv", sm);
    avs.push_back(
        add_gemm(g, cfg, s_q, s_kv, hd, {sm}, v_dep, tag + ".AV", sm));
  }
  res.ln = add_output_blocks(g, cfg, s_q, d_model, avs, prefix);
  return res;
}

/// FFN (Algorithm 1 lines 14-22) over `s` rows.
AppendResult append_ffn(OpGraph& g, const AcceleratorConfig& cfg, int s,
                        int d_model, int d_ff,
                        const std::vector<int>& entry_deps,
                        const std::string& prefix) {
  // At least one H and one G block must exist (the Table I pattern makes
  // both multiples of sa_cols); an empty H set would leave the sublayer
  // with no first SA op to hook the fused prefetch chain on.
  TFACC_CHECK_ARG(s > 0 && d_model >= cfg.sa_cols && d_ff >= cfg.sa_cols);
  const int bc = cfg.sa_cols;
  AppendResult res;
  // Lines 15-17: P_i = ReLU(X·W_1i + b_1i), 4h blocks.
  std::vector<int> hs;
  for (int i = 0; i < d_ff / bc; ++i)
    hs.push_back(add_gemm(g, cfg, s, d_model, bc, entry_deps,
                          OpNode::kStaticWeight,
                          prefix + "H" + std::to_string(i)));
  res.first_sa = hs.front();
  // Lines 18-20: G_i = P·W_2i + b_2i + X_i; P is the full s×d_ff matrix.
  std::vector<int> gs;
  for (int i = 0; i < d_model / bc; ++i)
    gs.push_back(add_gemm(g, cfg, s, d_ff, bc, hs, OpNode::kStaticWeight,
                          prefix + "G" + std::to_string(i)));
  res.ln = g.add_layernorm(
      LayerNormModule::tail_cycles(cfg, cfg.layernorm_strategy, d_model), gs,
      prefix + "LayerNorm");
  return res;
}

AppendResult append_sublayer(OpGraph& g, const AcceleratorConfig& cfg,
                             const SublayerPlan& sub,
                             const std::vector<int>& entry_deps,
                             const std::string& prefix) {
  switch (sub.kind) {
    case SublayerPlan::Kind::kMha:
      return append_mha(g, cfg, sub.s_q, sub.s_kv, sub.d_model,
                        sub.num_heads, entry_deps, prefix);
    case SublayerPlan::Kind::kMhaCachedBatch:
      return append_mha_cached_batch(g, cfg, sub.totals, sub.d_model,
                                     sub.num_heads, sub.project_kv_rows,
                                     entry_deps, prefix);
    case SublayerPlan::Kind::kFfn:
      return append_ffn(g, cfg, sub.rows, sub.d_model, sub.d_ff, entry_deps,
                        prefix);
    case SublayerPlan::Kind::kMhaPrefill:
      return append_mha_prefill(g, cfg, sub.s_q, sub.s_kv, sub.d_model,
                                sub.num_heads, sub.project_kv_rows,
                                entry_deps, prefix);
  }
  TFACC_CHECK(false);
  return {};
}

}  // namespace

IssuePolicy cached_policy(const AcceleratorConfig& cfg) {
  return cfg.interleave_decode ? IssuePolicy::kGreedy
                               : IssuePolicy::kProgramOrder;
}

ScheduledRun schedule_mha(const AcceleratorConfig& cfg, Timeline& tl, int s_q,
                          int s_kv, int d_model, int num_heads) {
  cfg.validate();
  ScheduledRun run;
  append_mha(run.graph, cfg, s_q, s_kv, d_model, num_heads, {}, "");
  // Algorithm 1's controller is a fixed program: issue in its order so the
  // Section V.B cycle validation against the paper — and the per-head
  // softmax-hidden-behind-V·W_V property it demonstrates — stays exact.
  run.stats = schedule_ops(run.graph, cfg.weight_load_cycles,
                           IssuePolicy::kProgramOrder, tl);
  return run;
}

ScheduledRun schedule_mha_cached(const AcceleratorConfig& cfg, Timeline& tl,
                                 int s_new, int s_total, int d_model,
                                 int num_heads, int project_kv_rows) {
  cfg.validate();
  const int hd = cfg.sa_cols;
  ScheduledRun run;
  OpGraph& g = run.graph;
  std::vector<int> avs;
  avs.reserve(static_cast<std::size_t>(num_heads));
  for (int h = 0; h < num_heads; ++h) {
    const std::string tag = "head" + std::to_string(h);
    // K/V project before Q (insertion order = greedy tie-break priority):
    // their output tiles are the attention GEMMs' stationary operands, so
    // starting them first lets the K₁ᵀ load run under the Q projection
    // instead of stalling the first QKt.
    int k_dep = OpNode::kStaticWeight;  // cached K₁ᵀ / V₁ are resident
    int v_dep = OpNode::kStaticWeight;
    if (project_kv_rows > 0) {
      k_dep = add_gemm(g, cfg, project_kv_rows, d_model, hd, {},
                       OpNode::kStaticWeight, tag + ".KWk");
      v_dep = add_gemm(g, cfg, project_kv_rows, d_model, hd, {},
                       OpNode::kStaticWeight, tag + ".VWv");
    }
    const int q1 = add_gemm(g, cfg, s_new, d_model, hd, {},
                            OpNode::kStaticWeight, tag + ".QWq");
    const int d =
        add_gemm(g, cfg, s_new, hd, s_total, {q1}, k_dep, tag + ".QKt");
    const int sm = add_softmax(g, cfg, d, s_total, tag + ".softmax");
    avs.push_back(
        add_gemm(g, cfg, s_new, s_total, hd, {sm}, v_dep, tag + ".AV", sm));
  }
  add_output_blocks(g, cfg, s_new, d_model, avs, "");
  run.stats =
      schedule_ops(g, cfg.weight_load_cycles, cached_policy(cfg), tl);
  return run;
}

ScheduledRun schedule_mha_cached_batch(const AcceleratorConfig& cfg,
                                       Timeline& tl,
                                       const std::vector<int>& totals,
                                       int d_model, int num_heads,
                                       int project_kv_rows) {
  cfg.validate();
  ScheduledRun run;
  append_mha_cached_batch(run.graph, cfg, totals, d_model, num_heads,
                          project_kv_rows, {}, "");
  run.stats = schedule_ops(run.graph, cfg.weight_load_cycles,
                           cached_policy(cfg), tl);
  return run;
}

ScheduledRun schedule_ffn(const AcceleratorConfig& cfg, Timeline& tl, int s,
                          int d_model, int d_ff) {
  cfg.validate();
  ScheduledRun run;
  append_ffn(run.graph, cfg, s, d_model, d_ff, {}, "");
  // All weights are resident and the H→G barrier is a real data dependency,
  // so greedy issue reproduces program order exactly — one code path.
  run.stats = schedule_ops(run.graph, cfg.weight_load_cycles,
                           IssuePolicy::kGreedy, tl);
  return run;
}

// --- Fused multi-sublayer ledgers (PR 5) -------------------------------------

SublayerPlan SublayerPlan::mha(std::string label, int s_q, int s_kv,
                               int d_model, int num_heads) {
  SublayerPlan sub;
  sub.kind = Kind::kMha;
  sub.label = std::move(label);
  sub.s_q = s_q;
  sub.s_kv = s_kv;
  sub.d_model = d_model;
  sub.num_heads = num_heads;
  return sub;
}

SublayerPlan SublayerPlan::mha_cached_batch(std::string label,
                                            std::vector<int> totals,
                                            int d_model, int num_heads,
                                            int project_kv_rows) {
  SublayerPlan sub;
  sub.kind = Kind::kMhaCachedBatch;
  sub.label = std::move(label);
  sub.totals = std::move(totals);
  sub.d_model = d_model;
  sub.num_heads = num_heads;
  sub.project_kv_rows = project_kv_rows;
  return sub;
}

SublayerPlan SublayerPlan::ffn(std::string label, int rows, int d_model,
                               int d_ff) {
  SublayerPlan sub;
  sub.kind = Kind::kFfn;
  sub.label = std::move(label);
  sub.rows = rows;
  sub.d_model = d_model;
  sub.d_ff = d_ff;
  return sub;
}

SublayerPlan SublayerPlan::mha_prefill(std::string label, int s_q, int s_kv,
                                       int d_model, int num_heads,
                                       int project_kv_rows) {
  SublayerPlan sub;
  sub.kind = Kind::kMhaPrefill;
  sub.label = std::move(label);
  sub.s_q = s_q;
  sub.s_kv = s_kv;
  sub.d_model = d_model;
  sub.num_heads = num_heads;
  sub.project_kv_rows = project_kv_rows;
  return sub;
}

std::vector<SublayerPlan> chunk_prefill(const std::vector<SublayerPlan>& subs,
                                        int chunk_rows) {
  TFACC_CHECK_ARG_MSG(chunk_rows >= 1,
                      "chunk_rows must be >= 1, got " << chunk_rows);
  std::vector<SublayerPlan> chunks;
  for (const SublayerPlan& sub : subs) {
    const bool mha = sub.kind == SublayerPlan::Kind::kMhaPrefill;
    TFACC_CHECK_ARG_MSG(mha || sub.kind == SublayerPlan::Kind::kFfn,
                        "chunk_prefill: sublayer " << sub.label
                                                   << " is not an encoder plan");
    const int total = mha ? sub.s_q : sub.rows;
    TFACC_CHECK_ARG(total > 0);
    // Sublayer-major order keeps the cross-step data flow legal: sublayer
    // i+1's first chunk (which projects K/V from sublayer i's full output)
    // only ever lands in a step after every chunk of sublayer i.
    int done = 0;
    for (int k = 0; done < total; ++k) {
      const int n = std::min(chunk_rows, total - done);
      SublayerPlan chunk = sub;
      chunk.label = sub.label + ".c" + std::to_string(k);
      if (mha) {
        chunk.s_q = n;
        chunk.project_kv_rows = done == 0 ? sub.project_kv_rows : 0;
      } else {
        chunk.rows = n;
      }
      chunks.push_back(std::move(chunk));
      done += n;
    }
  }
  return chunks;
}

FusedRun schedule_fused_lanes(const AcceleratorConfig& cfg, Timeline& tl,
                              const std::vector<FusedLane>& lanes,
                              IssuePolicy policy) {
  cfg.validate();
  TFACC_CHECK_ARG_MSG(!lanes.empty(), "fused ledger needs >= 1 lane");
  for (const FusedLane& lane : lanes)
    TFACC_CHECK_ARG_MSG(!lane.subs.empty(), "fused lane needs >= 1 sublayer");
  FusedRun fr;
  OpGraph& g = fr.graph;

  struct OpRange {
    int begin = 0;
    int end = 0;
  };
  std::vector<OpRange> ranges;
  std::vector<const SublayerPlan*> plans;
  std::vector<char> plan_prefill;
  std::vector<int> plan_lane;

  // The prefetch chain is GLOBAL across lanes — the single-tile prefetch
  // buffer is hardware, not lane state — so in a mixed step the decode
  // lane's initial tile loads under the last prefill chunk's compute: the
  // WeightLoad prefetch crosses the prefill/decode seam.
  int prev_first_sa = -1;
  int idx = 0;
  int lane_idx = -1;
  bool any_prefill = false;
  bool any_decode = false;
  for (const FusedLane& lane : lanes) {
    ++lane_idx;
    if (lane.prefill)
      any_prefill = true;
    else
      any_decode = true;
    int prev_ln = -1;  // the residual stream chains within a lane only
    for (const SublayerPlan& sub : lane.subs) {
      const std::string prefix =
          (sub.label.empty() ? "sub" + std::to_string(idx) : sub.label) + ".";
      ++idx;
      // The sublayer's initial weight tile: an explicit load on the
      // prefetch port. The single-tile prefetch buffer frees once the
      // previous sublayer's first SA op has consumed its own tile, so that
      // op is the load's dep — every later sublayer's load runs under
      // earlier compute and only the ledger's very first SA op starts cold.
      std::vector<int> load_deps;
      if (prev_first_sa >= 0) load_deps.push_back(prev_first_sa);
      const int prefetch = g.add_weight_load(cfg.weight_load_cycles,
                                             std::move(load_deps),
                                             prefix + "prefetch");
      std::vector<int> entry_deps{prefetch};
      if (prev_ln >= 0) entry_deps.push_back(prev_ln);

      OpRange range;
      range.begin = g.size();
      const AppendResult appended =
          append_sublayer(g, cfg, sub, entry_deps, prefix);
      range.end = g.size();
      if (lane.prefill) g.mark_prefill(prefetch, range.end);
      ranges.push_back(range);
      plans.push_back(&sub);
      plan_prefill.push_back(lane.prefill ? 1 : 0);
      plan_lane.push_back(lane_idx);
      prev_ln = appended.ln;
      prev_first_sa = appended.first_sa;
    }
  }

  fr.stats = schedule_ops(g, cfg.weight_load_cycles, policy, tl);

  // Per-sublayer SA occupancy and seam accounting. With chaining, sublayer
  // N+1's SA work cannot overlap sublayer N's (the residual stream passes
  // through N's LayerNorm), so the gap between their SA occupancies is real
  // SA idle — the boundary cost this composer exists to shrink.
  Cycle covered_sa_end = 0;
  for (std::size_t i = 0; i < plans.size(); ++i) {
    FusedSegment seg;
    seg.label = plans[i]->label;
    seg.prefill = plan_prefill[i] != 0;
    seg.lane = plan_lane[i];
    bool any_sa = false;
    for (int op = ranges[i].begin; op < ranges[i].end; ++op) {
      if (g.ops()[static_cast<std::size_t>(op)].resource != OpResource::kSa)
        continue;
      const Interval& iv = fr.stats.intervals[static_cast<std::size_t>(op)];
      if (!any_sa || iv.start < seg.sa_start) seg.sa_start = iv.start;
      if (!any_sa || iv.end > seg.sa_end) seg.sa_end = iv.end;
      any_sa = true;
    }
    if (any_sa) {
      seg.seam_stall = std::max<Cycle>(0, seg.sa_start - covered_sa_end);
      covered_sa_end = std::max(covered_sa_end, seg.sa_end);
      fr.boundary_stall += seg.seam_stall;
    }
    fr.segments.push_back(std::move(seg));
  }
  // The final LayerNorm tail: the ledger is not done until it drains, and
  // no SA work remains to hide it under.
  fr.boundary_stall += std::max<Cycle>(0, tl.end_time() - covered_sa_end);

  // Prefill-attributed stall: how much longer the decode lanes took because
  // prefill chunks shared the step, measured against the same ledger
  // rebuilt without its prefill lanes (recursion is depth-1: the rebuilt
  // ledger has no prefill lanes left).
  if (any_prefill && any_decode) {
    std::vector<FusedLane> decode_lanes;
    for (const FusedLane& lane : lanes)
      if (!lane.prefill) decode_lanes.push_back(lane);
    Timeline scratch;
    (void)schedule_fused_lanes(cfg, scratch, decode_lanes, policy);
    fr.prefill_stall = std::max<Cycle>(0, tl.end_time() - scratch.end_time());
  }
  return fr;
}

FusedRun schedule_fused(const AcceleratorConfig& cfg, Timeline& tl,
                        const std::vector<SublayerPlan>& subs, bool chain,
                        IssuePolicy policy) {
  TFACC_CHECK_ARG_MSG(!subs.empty(), "fused ledger needs >= 1 sublayer");
  // One chained lane, or one singleton lane per sublayer (unchained
  // back-to-back invocations): either way the lane composer appends the
  // exact graph the pre-lane composer built, so every existing cycle pin
  // holds unchanged.
  std::vector<FusedLane> lanes;
  if (chain) {
    lanes.push_back(FusedLane{subs, false});
  } else {
    lanes.reserve(subs.size());
    for (const SublayerPlan& sub : subs)
      lanes.push_back(FusedLane{{sub}, false});
  }
  return schedule_fused_lanes(cfg, tl, lanes, policy);
}

ScheduledRun schedule_prefill(const AcceleratorConfig& cfg, Timeline& tl,
                              const SublayerPlan& chunk) {
  cfg.validate();
  TFACC_CHECK_ARG_MSG(chunk.kind == SublayerPlan::Kind::kMhaPrefill ||
                          chunk.kind == SublayerPlan::Kind::kFfn,
                      "schedule_prefill: " << chunk.label
                                           << " is not an encoder chunk");
  ScheduledRun run;
  append_sublayer(run.graph, cfg, chunk, {},
                  chunk.label.empty() ? "" : chunk.label + ".");
  run.stats = schedule_ops(run.graph, cfg.weight_load_cycles,
                           cached_policy(cfg), tl);
  return run;
}

FusedRun schedule_decode_step(const AcceleratorConfig& cfg, Timeline& tl,
                              const std::vector<SublayerPlan>& subs) {
  return schedule_fused(cfg, tl, subs, /*chain=*/true, cached_policy(cfg));
}

}  // namespace tfacc
