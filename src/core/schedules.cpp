#include "core/schedules.hpp"

#include <string>

#include "common/check.hpp"
#include "core/modules.hpp"

namespace tfacc {

namespace {

int add_gemm(OpGraph& g, const AcceleratorConfig& cfg, int rows, int inner,
             int out_cols, std::vector<int> deps, int weight_dep,
             std::string label, int softmax_dep = -1) {
  return g.add_sa(SaModule::op_cost(cfg, rows, inner, out_cols),
                  std::move(deps), weight_dep, std::move(label), softmax_dep);
}

int add_softmax(OpGraph& g, const AcceleratorConfig& cfg, int scores_dep,
                int cols, std::string label) {
  return g.add_softmax(SoftmaxModule::occupancy_cycles(cfg, cols),
                       SoftmaxModule::result_latency(cfg), scores_dep,
                       std::move(label));
}

/// Lines 9-12 of Algorithm 1, shared by every MHA flow: G_i = P·W_Gi + b +
/// Q_i one 64-column block at a time (each needs the full P row, i.e. every
/// head's AV output), then the LayerNorm tail.
void add_output_blocks(OpGraph& g, const AcceleratorConfig& cfg, int rows,
                       int d_model, const std::vector<int>& avs) {
  std::vector<int> gs;
  for (int i = 0; i < d_model / cfg.sa_cols; ++i)
    gs.push_back(add_gemm(g, cfg, rows, d_model, cfg.sa_cols, avs,
                          OpNode::kStaticWeight, "G" + std::to_string(i)));
  g.add_layernorm(
      LayerNormModule::tail_cycles(cfg, cfg.layernorm_strategy, d_model), gs,
      "LayerNorm");
}

IssuePolicy cached_policy(const AcceleratorConfig& cfg) {
  return cfg.interleave_decode ? IssuePolicy::kGreedy
                               : IssuePolicy::kProgramOrder;
}

}  // namespace

ScheduledRun schedule_mha(const AcceleratorConfig& cfg, Timeline& tl, int s_q,
                          int s_kv, int d_model, int num_heads) {
  cfg.validate();
  const int hd = cfg.sa_cols;
  ScheduledRun run;
  OpGraph& g = run.graph;
  std::vector<int> avs;
  avs.reserve(static_cast<std::size_t>(num_heads));
  for (int h = 0; h < num_heads; ++h) {
    const std::string tag = "head" + std::to_string(h);
    // Lines 3-4: Temp1 = Q·W_Qi + b, Temp2 = K·W_Ki + b.
    const int q1 = add_gemm(g, cfg, s_q, d_model, hd, {},
                            OpNode::kStaticWeight, tag + ".QWq");
    const int k1 = add_gemm(g, cfg, s_kv, d_model, hd, {},
                            OpNode::kStaticWeight, tag + ".KWk");
    // Line 5: softmax input = Temp1 · Temp2ᵀ (K₁ᵀ is a runtime operand).
    const int d = add_gemm(g, cfg, s_q, hd, s_kv, {q1}, k1, tag + ".QKt");
    // Line 6: softmax runs in parallel with V·W_Vi (the overlap claim);
    // the ablation knob serializes V·W_Vi behind it instead — a genuine
    // softmax→SA edge, so tag it for stall/slack attribution.
    const int sm = add_softmax(g, cfg, d, s_kv, tag + ".softmax");
    const int v1 =
        cfg.overlap_softmax
            ? add_gemm(g, cfg, s_kv, d_model, hd, {}, OpNode::kStaticWeight,
                       tag + ".VWv")
            : add_gemm(g, cfg, s_kv, d_model, hd, {sm},
                       OpNode::kStaticWeight, tag + ".VWv", sm);
    // Line 7: P_i = softmax · Temp2 (V₁ is a runtime operand).
    avs.push_back(
        add_gemm(g, cfg, s_q, s_kv, hd, {sm}, v1, tag + ".AV", sm));
  }
  add_output_blocks(g, cfg, s_q, d_model, avs);
  // Algorithm 1's controller is a fixed program: issue in its order so the
  // Section V.B cycle validation against the paper — and the per-head
  // softmax-hidden-behind-V·W_V property it demonstrates — stays exact.
  run.stats = schedule_ops(g, cfg.weight_load_cycles,
                           IssuePolicy::kProgramOrder, tl);
  return run;
}

ScheduledRun schedule_mha_cached(const AcceleratorConfig& cfg, Timeline& tl,
                                 int s_new, int s_total, int d_model,
                                 int num_heads, int project_kv_rows) {
  cfg.validate();
  const int hd = cfg.sa_cols;
  ScheduledRun run;
  OpGraph& g = run.graph;
  std::vector<int> avs;
  avs.reserve(static_cast<std::size_t>(num_heads));
  for (int h = 0; h < num_heads; ++h) {
    const std::string tag = "head" + std::to_string(h);
    // K/V project before Q (insertion order = greedy tie-break priority):
    // their output tiles are the attention GEMMs' stationary operands, so
    // starting them first lets the K₁ᵀ load run under the Q projection
    // instead of stalling the first QKt.
    int k_dep = OpNode::kStaticWeight;  // cached K₁ᵀ / V₁ are resident
    int v_dep = OpNode::kStaticWeight;
    if (project_kv_rows > 0) {
      k_dep = add_gemm(g, cfg, project_kv_rows, d_model, hd, {},
                       OpNode::kStaticWeight, tag + ".KWk");
      v_dep = add_gemm(g, cfg, project_kv_rows, d_model, hd, {},
                       OpNode::kStaticWeight, tag + ".VWv");
    }
    const int q1 = add_gemm(g, cfg, s_new, d_model, hd, {},
                            OpNode::kStaticWeight, tag + ".QWq");
    const int d =
        add_gemm(g, cfg, s_new, hd, s_total, {q1}, k_dep, tag + ".QKt");
    const int sm = add_softmax(g, cfg, d, s_total, tag + ".softmax");
    avs.push_back(
        add_gemm(g, cfg, s_new, s_total, hd, {sm}, v_dep, tag + ".AV", sm));
  }
  add_output_blocks(g, cfg, s_new, d_model, avs);
  run.stats =
      schedule_ops(g, cfg.weight_load_cycles, cached_policy(cfg), tl);
  return run;
}

ScheduledRun schedule_mha_cached_batch(const AcceleratorConfig& cfg,
                                       Timeline& tl,
                                       const std::vector<int>& totals,
                                       int d_model, int num_heads,
                                       int project_kv_rows) {
  cfg.validate();
  const int hd = cfg.sa_cols;
  const int n = static_cast<int>(totals.size());
  TFACC_CHECK_ARG(n > 0);
  ScheduledRun run;
  OpGraph& g = run.graph;
  std::vector<int> avs;
  avs.reserve(static_cast<std::size_t>(num_heads) *
              static_cast<std::size_t>(n));
  for (int h = 0; h < num_heads; ++h) {
    const std::string tag = "head" + std::to_string(h);
    // Projections stream the stacked slot rows through a single weight-tile
    // residency (the PR 3 full-tile restoration). K/V project before Q so
    // the first slot's K₁ᵀ tile loads under the Q projection (see
    // schedule_mha_cached) — the one-slot graph stays identical to it.
    int k_dep = OpNode::kStaticWeight;  // cached K₁ᵀ / V₁ are resident
    int v_dep = OpNode::kStaticWeight;
    if (project_kv_rows > 0) {
      k_dep = add_gemm(g, cfg, project_kv_rows, d_model, hd, {},
                       OpNode::kStaticWeight, tag + ".KWk");
      v_dep = add_gemm(g, cfg, project_kv_rows, d_model, hd, {},
                       OpNode::kStaticWeight, tag + ".VWv");
    }
    const int q1 = add_gemm(g, cfg, n, d_model, hd, {},
                            OpNode::kStaticWeight, tag + ".QWq");
    // The ragged per-slot attention chains are mutually independent: under
    // the greedy policy slot r+1's QKt streams while slot r's softmax runs.
    for (int r = 0; r < n; ++r) {
      const int s_total = totals[static_cast<std::size_t>(r)];
      const std::string slot = tag + ".slot" + std::to_string(r);
      const int d =
          add_gemm(g, cfg, 1, hd, s_total, {q1}, k_dep, slot + ".QKt");
      const int sm = add_softmax(g, cfg, d, s_total, slot + ".softmax");
      avs.push_back(
          add_gemm(g, cfg, 1, s_total, hd, {sm}, v_dep, slot + ".AV", sm));
    }
  }
  add_output_blocks(g, cfg, n, d_model, avs);
  run.stats =
      schedule_ops(g, cfg.weight_load_cycles, cached_policy(cfg), tl);
  return run;
}

ScheduledRun schedule_ffn(const AcceleratorConfig& cfg, Timeline& tl, int s,
                          int d_model, int d_ff) {
  cfg.validate();
  const int bc = cfg.sa_cols;
  ScheduledRun run;
  OpGraph& g = run.graph;
  // Lines 15-17: P_i = ReLU(X·W_1i + b_1i), 4h blocks.
  std::vector<int> hs;
  for (int i = 0; i < d_ff / bc; ++i)
    hs.push_back(add_gemm(g, cfg, s, d_model, bc, {}, OpNode::kStaticWeight,
                          "H" + std::to_string(i)));
  // Lines 18-20: G_i = P·W_2i + b_2i + X_i; P is the full s×d_ff matrix.
  std::vector<int> gs;
  for (int i = 0; i < d_model / bc; ++i)
    gs.push_back(add_gemm(g, cfg, s, d_ff, bc, hs, OpNode::kStaticWeight,
                          "G" + std::to_string(i)));
  g.add_layernorm(
      LayerNormModule::tail_cycles(cfg, cfg.layernorm_strategy, d_model), gs,
      "LayerNorm");
  // All weights are resident and the H→G barrier is a real data dependency,
  // so greedy issue reproduces program order exactly — one code path.
  run.stats =
      schedule_ops(g, cfg.weight_load_cycles, IssuePolicy::kGreedy, tl);
  return run;
}

}  // namespace tfacc
