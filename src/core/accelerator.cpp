#include "core/accelerator.hpp"

#include "core/schedules.hpp"
#include "tensor/ops.hpp"

namespace tfacc {

namespace {

/// Busy cycles of a module that may never have been scheduled (e.g. Softmax
/// in an FFN run). The const find() cannot create an empty ledger the way
/// the non-const module() accessor would.
Cycle busy_cycles_of(const Timeline& tl, const std::string& name) {
  const ModuleTimeline* m = tl.find(name);
  return m == nullptr ? 0 : m->busy_cycles();
}

void finalize_report(RunReport& rep, const AcceleratorConfig& cfg,
                     const ScheduledRun& run) {
  rep.clock_mhz = cfg.clock_mhz;
  rep.total_cycles = rep.timeline.end_time();
  rep.sa_busy = busy_cycles_of(rep.timeline, "SA");
  rep.softmax_busy = busy_cycles_of(rep.timeline, "Softmax");
  rep.layernorm_busy = busy_cycles_of(rep.timeline, "LayerNorm");
  rep.sa_stream = run.stats.sa_stream;
  rep.exposed_weight_load = run.stats.sa_exposed_load;
  rep.accum_spill = run.stats.sa_spill;
  rep.softmax_slack_min =
      run.stats.softmax_edges > 0 ? run.stats.softmax_slack_min : 0;
  rep.softmax_stall = run.stats.softmax_stall;
  rep.softmax_hidden = rep.softmax_slack_min >= 0;
}

std::vector<std::int32_t> bias_slice(const std::vector<std::int32_t>& bias,
                                     int offset, int len) {
  return std::vector<std::int32_t>(bias.begin() + offset,
                                   bias.begin() + offset + len);
}

}  // namespace

Accelerator::Accelerator(AcceleratorConfig cfg) : cfg_(cfg) {
  cfg_.validate();
}

Accelerator::MhaResult Accelerator::run_mha(const MhaQuantized& block,
                                            const MatI8& q, const MatI8& kv,
                                            const Mask& mask) const {
  TFACC_CHECK_ARG(q.cols() == block.d_model && kv.cols() == block.d_model);
  TFACC_CHECK_ARG(mask.rows() == q.rows() && mask.cols() == kv.rows());
  TFACC_CHECK_ARG_MSG(block.head_dim == cfg_.sa_cols,
                      "head_dim " << block.head_dim << " != SA columns "
                                  << cfg_.sa_cols);

  MhaResult res;
  RunReport& rep = res.report;
  const ScheduledRun sched =
      schedule_mha(cfg_, rep.timeline, q.rows(), kv.rows(), block.d_model,
                   block.num_heads);

  // Functional pass, op for op in the program order of Algorithm 1 (the
  // schedule above may reorder timing-wise; data results are unaffected
  // because reordered ops are data-independent by construction).
  std::vector<MatI8> p_blocks;
  p_blocks.reserve(block.heads.size());
  for (int h = 0; h < block.num_heads; ++h) {
    const auto& head = block.heads[static_cast<std::size_t>(h)];
    const MatI8 q1 = head.wq.forward(q);
    const MatI8 k1 = head.wk.forward(kv);
    const MatI32 scores = gemm_nt_i8(q1, k1);
    const MatI8 probs = block.softmax(scores, mask, h);
    const MatI8 v1 = head.wv.forward(kv);
    const MatI32 a_acc = gemm_i8(probs, v1);
    p_blocks.push_back(requantize_i8(a_acc, head.av_requant));
  }
  const MatI8 p = hconcat(p_blocks);

  const int hd = block.head_dim;
  const MatI16 g_res = requantize_i8_to_i16(q, block.residual_to_g);
  const auto wg_blocks = split_cols(block.wg.w, hd);
  MatI16 g(q.rows(), block.d_model);
  for (int i = 0; i < block.d_model / hd; ++i) {
    const MatI32 acc = add_bias_i32(
        gemm_i8(p, wg_blocks[static_cast<std::size_t>(i)]),
        bias_slice(block.wg.bias, i * hd, hd));
    const MatI16 proj = requantize_i16(acc, block.wg_to_g);
    const MatI16 res_blk = g_res.block(0, i * hd, q.rows(), hd);
    g.set_block(0, i * hd, saturating_add_i16(proj, res_blk));
  }
  res.out = block.norm(g);

  finalize_report(rep, cfg_, sched);
  return res;
}

Accelerator::FfnResult Accelerator::run_ffn(const FfnQuantized& block,
                                            const MatI8& x) const {
  TFACC_CHECK_ARG(x.cols() == block.d_model);
  TFACC_CHECK_ARG(block.d_model % cfg_.sa_cols == 0 &&
                  block.d_ff % cfg_.sa_cols == 0);

  FfnResult res;
  RunReport& rep = res.report;
  const ScheduledRun sched =
      schedule_ffn(cfg_, rep.timeline, x.rows(), block.d_model, block.d_ff);

  const int bc = cfg_.sa_cols;
  const auto w1_blocks = split_cols(block.w1.w, bc);
  std::vector<MatI8> h_blocks;
  h_blocks.reserve(w1_blocks.size());
  for (int i = 0; i < block.d_ff / bc; ++i) {
    const MatI32 acc = add_bias_i32(
        gemm_i8(x, w1_blocks[static_cast<std::size_t>(i)]),
        bias_slice(block.w1.bias, i * bc, bc));
    h_blocks.push_back(block.w1.requantize(relu_i32(acc), i * bc));
  }
  const MatI8 hidden = hconcat(h_blocks);

  const auto w2_blocks = split_cols(block.w2.w, bc);
  const MatI16 g_res = requantize_i8_to_i16(x, block.residual_to_g);
  MatI16 g(x.rows(), block.d_model);
  for (int i = 0; i < block.d_model / bc; ++i) {
    const MatI32 acc = add_bias_i32(
        gemm_i8(hidden, w2_blocks[static_cast<std::size_t>(i)]),
        bias_slice(block.w2.bias, i * bc, bc));
    const MatI16 proj = requantize_i16(acc, block.w2_to_g);
    const MatI16 res_blk = g_res.block(0, i * bc, x.rows(), bc);
    g.set_block(0, i * bc, saturating_add_i16(proj, res_blk));
  }
  res.out = block.norm(g);

  finalize_report(rep, cfg_, sched);
  return res;
}

RunReport Accelerator::time_mha(int s_q, int s_kv, int d_model,
                                int num_heads) const {
  TFACC_CHECK_ARG(d_model == num_heads * cfg_.sa_cols);
  RunReport rep;
  const ScheduledRun sched =
      schedule_mha(cfg_, rep.timeline, s_q, s_kv, d_model, num_heads);
  finalize_report(rep, cfg_, sched);
  return rep;
}

RunReport Accelerator::time_mha_cached(int s_new, int s_total, int d_model,
                                       int num_heads,
                                       int project_kv_rows) const {
  TFACC_CHECK_ARG(s_new > 0 && s_total >= s_new);
  TFACC_CHECK_ARG(project_kv_rows >= 0);
  TFACC_CHECK_ARG(d_model == num_heads * cfg_.sa_cols);
  RunReport rep;
  const ScheduledRun sched =
      schedule_mha_cached(cfg_, rep.timeline, s_new, s_total, d_model,
                          num_heads, project_kv_rows);
  finalize_report(rep, cfg_, sched);
  return rep;
}

Accelerator::MhaResult Accelerator::run_mha_cached(const MhaQuantized& block,
                                                   const MatI8& q,
                                                   const QuantKvCache& cache,
                                                   const Mask& mask,
                                                   int projected_rows) const {
  TFACC_CHECK_ARG(q.cols() == block.d_model);
  TFACC_CHECK_ARG(mask.rows() == q.rows() && mask.cols() == cache.rows());
  TFACC_CHECK_ARG(projected_rows >= 0 && projected_rows <= cache.rows());
  TFACC_CHECK_ARG_MSG(block.head_dim == cfg_.sa_cols,
                      "head_dim " << block.head_dim << " != SA columns "
                                  << cfg_.sa_cols);

  MhaResult res;
  RunReport& rep = res.report;
  const ScheduledRun sched =
      schedule_mha_cached(cfg_, rep.timeline, q.rows(), cache.rows(),
                          block.d_model, block.num_heads, projected_rows);

  // Functional pass: identical arithmetic to the quantized model's cached
  // path (the caller appended this step's K/V rows before invoking us, so
  // the cache already holds them — mirroring the data memory on chip).
  res.out = block.forward_cached(q, cache, mask);

  finalize_report(rep, cfg_, sched);
  return res;
}

Accelerator::MhaResult Accelerator::run_mha_cached_batch(
    const MhaQuantized& block, const MatI8& q,
    const std::vector<const QuantKvCache*>& caches,
    const std::vector<const Mask*>& masks, int projected_rows) const {
  TFACC_CHECK_ARG(q.cols() == block.d_model);
  TFACC_CHECK_ARG(static_cast<int>(caches.size()) == q.rows() &&
                  static_cast<int>(masks.size()) == q.rows());
  TFACC_CHECK_ARG(projected_rows == 0 || projected_rows == q.rows());
  TFACC_CHECK_ARG_MSG(block.head_dim == cfg_.sa_cols,
                      "head_dim " << block.head_dim << " != SA columns "
                                  << cfg_.sa_cols);
  std::vector<int> totals(caches.size());
  for (std::size_t r = 0; r < caches.size(); ++r) {
    totals[r] = caches[r]->rows();
    TFACC_CHECK_ARG(masks[r]->rows() == 1 && masks[r]->cols() == totals[r]);
  }

  MhaResult res;
  RunReport& rep = res.report;
  const ScheduledRun sched =
      schedule_mha_cached_batch(cfg_, rep.timeline, totals, block.d_model,
                                block.num_heads, projected_rows);

  // Functional pass: identical arithmetic to the quantized model's packed
  // cached path (the caller appended this step's K/V rows before invoking
  // us, so each slot's cache already holds them — mirroring the data memory
  // on chip).
  res.out = block.forward_cached_batch(q, caches, masks);

  finalize_report(rep, cfg_, sched);
  return res;
}

RunReport Accelerator::time_ffn(int s, int d_model, int d_ff) const {
  TFACC_CHECK_ARG(d_model % cfg_.sa_cols == 0 && d_ff % cfg_.sa_cols == 0);
  RunReport rep;
  const ScheduledRun sched =
      schedule_ffn(cfg_, rep.timeline, s, d_model, d_ff);
  finalize_report(rep, cfg_, sched);
  return rep;
}

namespace {

Accelerator::StreamReport to_stream(const RunReport& rep,
                                    const AcceleratorConfig& cfg) {
  Accelerator::StreamReport sr;
  sr.first_latency = rep.total_cycles;
  // Steady state drops the cold weight load and hides the LayerNorm tail
  // under the next run's SA work.
  sr.steady_interval =
      rep.total_cycles - cfg.weight_load_cycles - rep.layernorm_busy;
  sr.clock_mhz = cfg.clock_mhz;
  TFACC_CHECK(sr.steady_interval > 0);
  return sr;
}

}  // namespace

Accelerator::StreamReport Accelerator::stream_mha(int s_q, int s_kv,
                                                  int d_model,
                                                  int num_heads) const {
  return to_stream(time_mha(s_q, s_kv, d_model, num_heads), cfg_);
}

Accelerator::StreamReport Accelerator::stream_ffn(int s, int d_model,
                                                  int d_ff) const {
  return to_stream(time_ffn(s, d_model, d_ff), cfg_);
}

}  // namespace tfacc
