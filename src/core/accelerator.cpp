#include "core/accelerator.hpp"

#include <algorithm>

#include "analysis/verifier.hpp"
#include "tensor/ops.hpp"

namespace tfacc {

namespace {

/// Paranoid mode (cfg.verify_schedules): run the typed verifier over the
/// ledger just built and throw with the full diagnostic list on violation.
/// `policy` is the issue policy the builder actually used, so the verifier
/// knows whether the program-order pin applies.
void maybe_verify(const AcceleratorConfig& cfg, const char* what,
                  const ScheduledRun& run, IssuePolicy policy,
                  RunReport& rep) {
  if (!cfg.verify_schedules) return;
  VerifyOptions opts;
  opts.program_order = policy == IssuePolicy::kProgramOrder;
  const VerifyResult res = verify_schedule(run.graph, run.stats, opts);
  TFACC_CHECK_MSG(res.ok(), what << " schedule failed verification:\n"
                                 << res.to_string());
  rep.ledger_hash = res.hash;  // canonical PR 7 hash, 0 when verify is off
}

void maybe_verify_fused(const AcceleratorConfig& cfg, const char* what,
                        const FusedRun& run, IssuePolicy policy,
                        RunReport& rep) {
  if (!cfg.verify_schedules) return;
  VerifyOptions opts;
  opts.program_order = policy == IssuePolicy::kProgramOrder;
  const VerifyResult res = verify_fused(run, opts);
  TFACC_CHECK_MSG(res.ok(), what << " ledger failed verification:\n"
                                 << res.to_string());
  rep.ledger_hash = res.hash;
}

/// Busy cycles of a module that may never have been scheduled (e.g. Softmax
/// in an FFN run). The const find() cannot create an empty ledger the way
/// the non-const module() accessor would.
Cycle busy_cycles_of(const Timeline& tl, const std::string& name) {
  const ModuleTimeline* m = tl.find(name);
  return m == nullptr ? 0 : m->busy_cycles();
}

void finalize_report(RunReport& rep, const AcceleratorConfig& cfg,
                     const ScheduleStats& stats) {
  rep.clock_mhz = cfg.clock_mhz;
  rep.total_cycles = rep.timeline.end_time();
  rep.sa_busy = busy_cycles_of(rep.timeline, "SA");
  rep.softmax_busy = busy_cycles_of(rep.timeline, "Softmax");
  rep.layernorm_busy = busy_cycles_of(rep.timeline, "LayerNorm");
  rep.sa_stream = stats.sa_stream;
  rep.exposed_weight_load = stats.sa_exposed_load;
  rep.accum_spill = stats.sa_spill;
  rep.softmax_slack_min =
      stats.softmax_edges > 0 ? stats.softmax_slack_min : 0;
  rep.softmax_stall = stats.softmax_stall;
  rep.softmax_hidden = rep.softmax_slack_min >= 0;
  // Boundary cost of a single-sublayer run: the cold load before the first
  // SA op and the LayerNorm tail after the last. A fused ledger overwrites
  // this with schedule_fused's seam-aware accounting.
  if (const ModuleTimeline* sa = rep.timeline.find("SA");
      sa != nullptr && !sa->intervals().empty())
    rep.boundary_stall = sa->intervals().front().start +
                         std::max<Cycle>(0, rep.total_cycles - sa->end_time());
}

}  // namespace

Accelerator::Accelerator(AcceleratorConfig cfg) : cfg_(cfg) {
  cfg_.validate();
}

MatI8 Accelerator::forward_mha(const MhaQuantized& block, const MatI8& q,
                               const MatI8& kv, const Mask& mask) const {
  TFACC_CHECK_ARG(q.cols() == block.d_model && kv.cols() == block.d_model);
  TFACC_CHECK_ARG(mask.rows() == q.rows() && mask.cols() == kv.rows());
  TFACC_CHECK_ARG_MSG(block.head_dim == cfg_.sa_cols,
                      "head_dim " << block.head_dim << " != SA columns "
                                  << cfg_.sa_cols);

  // Functional pass, op for op in the program order of Algorithm 1 (a
  // schedule may reorder timing-wise; data results are unaffected because
  // reordered ops are data-independent by construction).
  const int hd = block.head_dim;
  MatI8 p(q.rows(), block.d_model);
  for (int h = 0; h < block.num_heads; ++h) {
    const auto& head = block.heads[static_cast<std::size_t>(h)];
    const MatI8 q1 = head.wq.forward(q);
    const MatI8 k1 = head.wk.forward(kv);
    const MatI32 scores = gemm_nt_i8(q1, k1);
    const MatI8 probs = block.softmax(scores, mask, h);
    const MatI8 v1 = head.wv.forward(kv);
    const MatI32 a_acc = gemm_i8(probs, v1);
    p.set_block(0, h * hd, requantize_i8(a_acc, head.av_requant));
  }

  // Full-width packed W_G projection. The requantizer and residual adders
  // are column-independent, so this is bit-identical to the per-head_dim
  // column-block loop the controller executes (and that the seed modeled).
  const MatI32 g_acc = block.wg.accumulate(p);
  const MatI16 g_proj = requantize_i16(g_acc, block.wg_to_g);
  const MatI16 g_res = requantize_i8_to_i16(q, block.residual_to_g);
  return block.norm(saturating_add_i16(g_proj, g_res));
}

Accelerator::MhaResult Accelerator::run_mha(const MhaQuantized& block,
                                            const MatI8& q, const MatI8& kv,
                                            const Mask& mask) const {
  MhaResult res;
  res.out = forward_mha(block, q, kv, mask);

  RunReport& rep = res.report;
  const ScheduledRun sched =
      schedule_mha(cfg_, rep.timeline, q.rows(), kv.rows(), block.d_model,
                   block.num_heads);
  maybe_verify(cfg_, "run_mha", sched, IssuePolicy::kProgramOrder, rep);
  finalize_report(rep, cfg_, sched.stats);
  return res;
}

MatI8 Accelerator::forward_ffn(const FfnQuantized& block,
                               const MatI8& x) const {
  TFACC_CHECK_ARG(x.cols() == block.d_model);
  TFACC_CHECK_ARG(block.d_model % cfg_.sa_cols == 0 &&
                  block.d_ff % cfg_.sa_cols == 0);

  // One full-width packed GEMM per layer (W₁ then W₂). The per-SA-column
  // requantizers (including per-column granularity) are column-independent,
  // so the output is bit-identical to the per-64-column block loop the
  // controller executes (and that the seed modeled).
  const MatI8 hidden = block.w1.forward_relu(x);
  const MatI32 g_acc = block.w2.accumulate(hidden);
  const MatI16 g_proj = requantize_i16(g_acc, block.w2_to_g);
  const MatI16 g_res = requantize_i8_to_i16(x, block.residual_to_g);
  return block.norm(saturating_add_i16(g_proj, g_res));
}

Accelerator::FfnResult Accelerator::run_ffn(const FfnQuantized& block,
                                            const MatI8& x) const {
  FfnResult res;
  res.out = forward_ffn(block, x);

  RunReport& rep = res.report;
  const ScheduledRun sched =
      schedule_ffn(cfg_, rep.timeline, x.rows(), block.d_model, block.d_ff);
  maybe_verify(cfg_, "run_ffn", sched, IssuePolicy::kGreedy, rep);
  finalize_report(rep, cfg_, sched.stats);
  return res;
}

RunReport Accelerator::time_mha(int s_q, int s_kv, int d_model,
                                int num_heads) const {
  TFACC_CHECK_ARG(d_model == num_heads * cfg_.sa_cols);
  RunReport rep;
  const ScheduledRun sched =
      schedule_mha(cfg_, rep.timeline, s_q, s_kv, d_model, num_heads);
  maybe_verify(cfg_, "time_mha", sched, IssuePolicy::kProgramOrder, rep);
  finalize_report(rep, cfg_, sched.stats);
  return rep;
}

RunReport Accelerator::time_mha_cached(int s_new, int s_total, int d_model,
                                       int num_heads,
                                       int project_kv_rows) const {
  TFACC_CHECK_ARG(s_new > 0 && s_total >= s_new);
  TFACC_CHECK_ARG(project_kv_rows >= 0);
  TFACC_CHECK_ARG(d_model == num_heads * cfg_.sa_cols);
  RunReport rep;
  const ScheduledRun sched =
      schedule_mha_cached(cfg_, rep.timeline, s_new, s_total, d_model,
                          num_heads, project_kv_rows);
  maybe_verify(cfg_, "time_mha_cached", sched, cached_policy(cfg_), rep);
  finalize_report(rep, cfg_, sched.stats);
  return rep;
}

Accelerator::MhaResult Accelerator::run_mha_cached(const MhaQuantized& block,
                                                   const MatI8& q,
                                                   const QuantKvCache& cache,
                                                   const Mask& mask,
                                                   int projected_rows) const {
  TFACC_CHECK_ARG(q.cols() == block.d_model);
  TFACC_CHECK_ARG(mask.rows() == q.rows() && mask.cols() == cache.rows());
  TFACC_CHECK_ARG(projected_rows >= 0 && projected_rows <= cache.rows());
  TFACC_CHECK_ARG_MSG(block.head_dim == cfg_.sa_cols,
                      "head_dim " << block.head_dim << " != SA columns "
                                  << cfg_.sa_cols);

  MhaResult res;
  RunReport& rep = res.report;
  const ScheduledRun sched =
      schedule_mha_cached(cfg_, rep.timeline, q.rows(), cache.rows(),
                          block.d_model, block.num_heads, projected_rows);
  maybe_verify(cfg_, "run_mha_cached", sched, cached_policy(cfg_), rep);

  // Functional pass: identical arithmetic to the quantized model's cached
  // path (the caller appended this step's K/V rows before invoking us, so
  // the cache already holds them — mirroring the data memory on chip).
  res.out = block.forward_cached(q, cache, mask);

  finalize_report(rep, cfg_, sched.stats);
  return res;
}

MatI8 Accelerator::forward_mha_cached_batch(
    const MhaQuantized& block, const MatI8& q,
    const std::vector<const QuantKvCache*>& caches,
    const std::vector<const Mask*>& masks, int projected_rows) const {
  TFACC_CHECK_ARG(q.cols() == block.d_model);
  TFACC_CHECK_ARG(static_cast<int>(caches.size()) == q.rows() &&
                  static_cast<int>(masks.size()) == q.rows());
  TFACC_CHECK_ARG(projected_rows == 0 || projected_rows == q.rows());
  TFACC_CHECK_ARG_MSG(block.head_dim == cfg_.sa_cols,
                      "head_dim " << block.head_dim << " != SA columns "
                                  << cfg_.sa_cols);
  for (std::size_t r = 0; r < caches.size(); ++r)
    TFACC_CHECK_ARG(masks[r]->rows() == 1 &&
                    masks[r]->cols() == caches[r]->rows());

  // Functional pass: identical arithmetic to the quantized model's packed
  // cached path (the caller appended this step's K/V rows before invoking
  // us, so each slot's cache already holds them — mirroring the data memory
  // on chip).
  return block.forward_cached_batch(q, caches, masks);
}

Accelerator::MhaResult Accelerator::run_mha_cached_batch(
    const MhaQuantized& block, const MatI8& q,
    const std::vector<const QuantKvCache*>& caches,
    const std::vector<const Mask*>& masks, int projected_rows) const {
  MhaResult res;
  res.out = forward_mha_cached_batch(block, q, caches, masks, projected_rows);

  std::vector<int> totals(caches.size());
  for (std::size_t r = 0; r < caches.size(); ++r) totals[r] = caches[r]->rows();
  RunReport& rep = res.report;
  const ScheduledRun sched =
      schedule_mha_cached_batch(cfg_, rep.timeline, totals, block.d_model,
                                block.num_heads, projected_rows);
  maybe_verify(cfg_, "run_mha_cached_batch", sched, cached_policy(cfg_), rep);
  finalize_report(rep, cfg_, sched.stats);
  return res;
}

RunReport Accelerator::time_ffn(int s, int d_model, int d_ff) const {
  TFACC_CHECK_ARG(d_model % cfg_.sa_cols == 0 && d_ff % cfg_.sa_cols == 0);
  RunReport rep;
  const ScheduledRun sched =
      schedule_ffn(cfg_, rep.timeline, s, d_model, d_ff);
  maybe_verify(cfg_, "time_ffn", sched, IssuePolicy::kGreedy, rep);
  finalize_report(rep, cfg_, sched.stats);
  return rep;
}

namespace {

/// Issue policy of a fused ledger: a full-MHA sublayer pins Algorithm 1
/// program order (the paper-validated controller); the cached decode flows
/// follow the interleave_decode knob like their standalone builders.
IssuePolicy fused_policy(const AcceleratorConfig& cfg,
                         const std::vector<SublayerPlan>& subs) {
  for (const SublayerPlan& sub : subs)
    if (sub.kind == SublayerPlan::Kind::kMha)
      return IssuePolicy::kProgramOrder;
  return cached_policy(cfg);
}

/// Lane variant: kMhaPrefill deliberately does NOT pin program order — the
/// whole point of the mixed step is that encoder chunks interleave with the
/// packed decode rows under the cached-flow policy.
IssuePolicy fused_policy(const AcceleratorConfig& cfg,
                         const std::vector<FusedLane>& lanes) {
  for (const FusedLane& lane : lanes)
    for (const SublayerPlan& sub : lane.subs)
      if (sub.kind == SublayerPlan::Kind::kMha)
        return IssuePolicy::kProgramOrder;
  return cached_policy(cfg);
}

}  // namespace

RunReport Accelerator::time_fused(const std::vector<SublayerPlan>& subs,
                                  bool chain) const {
  RunReport rep;
  const FusedRun fused = schedule_fused(cfg_, rep.timeline, subs, chain,
                                        fused_policy(cfg_, subs));
  maybe_verify_fused(cfg_, "time_fused", fused, fused_policy(cfg_, subs), rep);
  finalize_report(rep, cfg_, fused.stats);
  // Replace the edges-only estimate with the composer's seam-aware number
  // (identical for a one-sublayer ledger).
  rep.boundary_stall = fused.boundary_stall;
  return rep;
}

RunReport Accelerator::time_step(const std::vector<FusedLane>& lanes) const {
  RunReport rep;
  const FusedRun fused = schedule_fused_lanes(cfg_, rep.timeline, lanes,
                                              fused_policy(cfg_, lanes));
  maybe_verify_fused(cfg_, "time_step", fused, fused_policy(cfg_, lanes), rep);
  finalize_report(rep, cfg_, fused.stats);
  rep.boundary_stall = fused.boundary_stall;
  rep.prefill_stall = fused.prefill_stall;
  return rep;
}

namespace {

/// Steady-state interval from a two-invocation fused ledger: the second run
/// shares the first's hardware and weight-prefetch port but no data, so the
/// ledger realizes exactly the overlap the hardware would — the old
/// analytic `total − weight_load − layernorm_busy` model assumed one cold
/// load and a fully exposed LayerNorm tail per run, which the op-graph
/// scheduler no longer guarantees. Clamped to >= 1 cycle so degenerate
/// shapes yield a finite rate instead of tripping a CHECK.
Accelerator::StreamReport to_stream(const Accelerator& acc,
                                    const AcceleratorConfig& cfg,
                                    const SublayerPlan& sub) {
  const RunReport one = acc.time_fused({sub}, /*chain=*/false);
  const RunReport two = acc.time_fused({sub, sub}, /*chain=*/false);
  Accelerator::StreamReport sr;
  sr.first_latency = one.total_cycles;
  sr.steady_interval =
      std::max<Cycle>(1, two.total_cycles - one.total_cycles);
  sr.clock_mhz = cfg.clock_mhz;
  return sr;
}

}  // namespace

Accelerator::StreamReport Accelerator::stream_mha(int s_q, int s_kv,
                                                  int d_model,
                                                  int num_heads) const {
  TFACC_CHECK_ARG(d_model == num_heads * cfg_.sa_cols);
  return to_stream(*this, cfg_,
                   SublayerPlan::mha("mha", s_q, s_kv, d_model, num_heads));
}

Accelerator::StreamReport Accelerator::stream_ffn(int s, int d_model,
                                                  int d_ff) const {
  TFACC_CHECK_ARG(d_model % cfg_.sa_cols == 0 && d_ff % cfg_.sa_cols == 0);
  return to_stream(*this, cfg_, SublayerPlan::ffn("ffn", s, d_model, d_ff));
}

}  // namespace tfacc
