#include "core/accelerator.hpp"

#include <limits>

#include "tensor/ops.hpp"

namespace tfacc {

namespace {

/// Per-head SA/Softmax intervals of the MHA flow (Algorithm 1 lines 2-8).
struct HeadIntervals {
  Interval q1, k1, d, sm, v1, a;
};

struct MhaSchedule {
  std::vector<HeadIntervals> heads;
  std::vector<Interval> g;
  Interval ln;
};

struct FfnSchedule {
  std::vector<Interval> h;
  std::vector<Interval> g;
  Interval ln;
};

/// Slack bookkeeping of the KV-cached MHA flow (intervals are not needed
/// downstream, only the softmax-overlap check).
struct MhaCachedSchedule {
  Cycle slack_min = std::numeric_limits<Cycle>::max();
  int num_heads = 0;
};

MhaSchedule schedule_mha(const AcceleratorConfig& cfg, SaModule& sa,
                         SoftmaxModule& sm, LayerNormModule& ln, int s_q,
                         int s_kv, int d_model, int num_heads) {
  const int hd = cfg.sa_cols;
  MhaSchedule sched;
  sched.heads.reserve(static_cast<std::size_t>(num_heads));
  Cycle p_ready = 0;
  for (int h = 0; h < num_heads; ++h) {
    const std::string tag = "head" + std::to_string(h);
    HeadIntervals hi;
    // Lines 3-4: Temp1 = Q·W_Qi + b, Temp2 = K·W_Ki + b.
    hi.q1 = sa.schedule(s_q, d_model, hd, 0, SaModule::kStaticWeight,
                        tag + ".QWq");
    hi.k1 = sa.schedule(s_kv, d_model, hd, 0, SaModule::kStaticWeight,
                        tag + ".KWk");
    // Line 5: softmax input = Temp1 · Temp2ᵀ (K₁ᵀ is a runtime operand).
    hi.d = sa.schedule(s_q, hd, s_kv, hi.q1.end, hi.k1.end, tag + ".QKt");
    // Line 6: softmax runs in parallel with V·W_Vi (the overlap claim).
    hi.sm = sm.schedule(hi.d.end, s_kv, tag + ".softmax");
    hi.v1 = sa.schedule(s_kv, d_model, hd,
                        cfg.overlap_softmax ? 0 : hi.sm.end,
                        SaModule::kStaticWeight, tag + ".VWv");
    // Line 7: P_i = softmax · Temp2 (V₁ is a runtime operand).
    hi.a = sa.schedule(s_q, s_kv, hd, hi.sm.end, hi.v1.end, tag + ".AV");
    p_ready = hi.a.end;
    sched.heads.push_back(hi);
  }
  // Lines 9-11: G_i = P·W_Gi + b + Q_i, one op per 64-column block.
  Cycle g_done = p_ready;
  for (int i = 0; i < d_model / hd; ++i) {
    const Interval g_iv = sa.schedule(s_q, d_model, hd, p_ready,
                                      SaModule::kStaticWeight,
                                      "G" + std::to_string(i));
    g_done = g_iv.end;
    sched.g.push_back(g_iv);
  }
  // Line 12: LayerNorm.
  sched.ln = ln.schedule(g_done, d_model, "LayerNorm");
  return sched;
}

/// KV-cached MHA flow: `s_new` query rows are projected and attend over
/// `s_total` cached keys/values; only `project_kv_rows` K/V rows are
/// projected this call (0 = fully cached, the steady decode state).
MhaCachedSchedule schedule_mha_cached(const AcceleratorConfig& cfg,
                                      SaModule& sa, SoftmaxModule& sm,
                                      LayerNormModule& ln, int s_new,
                                      int s_total, int d_model, int num_heads,
                                      int project_kv_rows) {
  const int hd = cfg.sa_cols;
  MhaCachedSchedule sched;
  Cycle p_ready = 0;
  for (int h = 0; h < num_heads; ++h) {
    const std::string tag = "head" + std::to_string(h);
    const Interval q1 = sa.schedule(s_new, d_model, hd, 0,
                                    SaModule::kStaticWeight, tag + ".QWq");
    Cycle k_ready = SaModule::kStaticWeight;  // cached K₁ᵀ is resident
    Cycle v_ready = SaModule::kStaticWeight;
    if (project_kv_rows > 0) {
      k_ready = sa.schedule(project_kv_rows, d_model, hd, 0,
                            SaModule::kStaticWeight, tag + ".KWk")
                    .end;
      v_ready = sa.schedule(project_kv_rows, d_model, hd, 0,
                            SaModule::kStaticWeight, tag + ".VWv")
                    .end;
    }
    const Interval d = sa.schedule(s_new, hd, s_total, q1.end, k_ready,
                                   tag + ".QKt");
    const Interval smv = sm.schedule(d.end, s_total, tag + ".softmax");
    const Interval a = sa.schedule(s_new, s_total, hd, smv.end, v_ready,
                                   tag + ".AV");
    sched.slack_min = std::min(sched.slack_min, a.start - smv.end);
    p_ready = a.end;
  }
  Cycle g_done = p_ready;
  for (int i = 0; i < d_model / hd; ++i)
    g_done = sa.schedule(s_new, d_model, hd, p_ready,
                         SaModule::kStaticWeight, "G" + std::to_string(i))
                 .end;
  ln.schedule(g_done, d_model, "LayerNorm");
  sched.num_heads = num_heads;
  return sched;
}

void record_softmax_slack(RunReport& rep, const MhaCachedSchedule& sched) {
  rep.softmax_slack_min = sched.num_heads > 0 ? sched.slack_min : 0;
  rep.softmax_hidden = rep.softmax_slack_min >= 0;
}

/// Packed KV-cached MHA flow: one query row per slot, slot r attending over
/// totals[r] cached keys/values. Projections (QWq, and KWk/VWv for the
/// project_kv_rows appended rows) stream the stacked rows through a single
/// weight-tile residency; the ragged per-slot attention GEMMs keep their
/// one-row shapes. With totals.size() == 1 the op sequence — and therefore
/// the cycle count — is identical to schedule_mha_cached(1, totals[0], ...).
MhaCachedSchedule schedule_mha_cached_batch(
    const AcceleratorConfig& cfg, SaModule& sa, SoftmaxModule& sm,
    LayerNormModule& ln, const std::vector<int>& totals, int d_model,
    int num_heads, int project_kv_rows) {
  const int hd = cfg.sa_cols;
  const int n = static_cast<int>(totals.size());
  MhaCachedSchedule sched;
  Cycle p_ready = 0;
  for (int h = 0; h < num_heads; ++h) {
    const std::string tag = "head" + std::to_string(h);
    const Interval q1 = sa.schedule(n, d_model, hd, 0, SaModule::kStaticWeight,
                                    tag + ".QWq");
    Cycle k_ready = SaModule::kStaticWeight;  // cached K₁ᵀ is resident
    Cycle v_ready = SaModule::kStaticWeight;
    if (project_kv_rows > 0) {
      k_ready = sa.schedule(project_kv_rows, d_model, hd, 0,
                            SaModule::kStaticWeight, tag + ".KWk")
                    .end;
      v_ready = sa.schedule(project_kv_rows, d_model, hd, 0,
                            SaModule::kStaticWeight, tag + ".VWv")
                    .end;
    }
    for (int r = 0; r < n; ++r) {
      const int s_total = totals[static_cast<std::size_t>(r)];
      const Interval d =
          sa.schedule(1, hd, s_total, q1.end, k_ready, tag + ".QKt");
      const Interval smv = sm.schedule(d.end, s_total, tag + ".softmax");
      const Interval a =
          sa.schedule(1, s_total, hd, smv.end, v_ready, tag + ".AV");
      sched.slack_min = std::min(sched.slack_min, a.start - smv.end);
      p_ready = a.end;
    }
  }
  Cycle g_done = p_ready;
  for (int i = 0; i < d_model / hd; ++i)
    g_done = sa.schedule(n, d_model, hd, p_ready, SaModule::kStaticWeight,
                         "G" + std::to_string(i))
                 .end;
  ln.schedule(g_done, d_model, "LayerNorm");
  sched.num_heads = num_heads;
  return sched;
}

FfnSchedule schedule_ffn(const AcceleratorConfig& cfg, SaModule& sa,
                         LayerNormModule& ln, int s, int d_model, int d_ff) {
  const int bc = cfg.sa_cols;
  FfnSchedule sched;
  // Lines 15-17: P_i = ReLU(X·W_1i + b_1i), 4h blocks.
  Cycle h_done = 0;
  for (int i = 0; i < d_ff / bc; ++i) {
    const Interval iv = sa.schedule(s, d_model, bc, 0,
                                    SaModule::kStaticWeight,
                                    "H" + std::to_string(i));
    h_done = iv.end;
    sched.h.push_back(iv);
  }
  // Lines 18-20: G_i = P·W_2i + b_2i + X_i; P is the full s×d_ff matrix.
  Cycle g_done = h_done;
  for (int i = 0; i < d_model / bc; ++i) {
    const Interval iv = sa.schedule(s, d_ff, bc, h_done,
                                    SaModule::kStaticWeight,
                                    "G" + std::to_string(i));
    g_done = iv.end;
    sched.g.push_back(iv);
  }
  sched.ln = ln.schedule(g_done, d_model, "LayerNorm");
  return sched;
}

/// Busy cycles of a module that may never have been scheduled (e.g. Softmax
/// in an FFN run). The const find() cannot create an empty ledger the way
/// the non-const module() accessor would.
Cycle busy_cycles_of(const Timeline& tl, const std::string& name) {
  const ModuleTimeline* m = tl.find(name);
  return m == nullptr ? 0 : m->busy_cycles();
}

void finalize_report(RunReport& rep, const AcceleratorConfig& cfg,
                     const SaModule& sa) {
  rep.clock_mhz = cfg.clock_mhz;
  rep.total_cycles = rep.timeline.end_time();
  rep.sa_busy = busy_cycles_of(rep.timeline, "SA");
  rep.softmax_busy = busy_cycles_of(rep.timeline, "Softmax");
  rep.layernorm_busy = busy_cycles_of(rep.timeline, "LayerNorm");
  rep.sa_stream = sa.ideal_stream_cycles();
  rep.exposed_weight_load = sa.exposed_load_cycles();
  rep.accum_spill = sa.spill_cycles();
}

void record_softmax_slack(RunReport& rep, const MhaSchedule& sched) {
  Cycle slack = std::numeric_limits<Cycle>::max();
  for (const auto& hi : sched.heads)
    slack = std::min(slack, hi.v1.end - hi.sm.end);
  rep.softmax_slack_min = sched.heads.empty() ? 0 : slack;
  rep.softmax_hidden = rep.softmax_slack_min >= 0;
}

std::vector<std::int32_t> bias_slice(const std::vector<std::int32_t>& bias,
                                     int offset, int len) {
  return std::vector<std::int32_t>(bias.begin() + offset,
                                   bias.begin() + offset + len);
}

}  // namespace

Accelerator::Accelerator(AcceleratorConfig cfg) : cfg_(cfg) {
  cfg_.validate();
}

Accelerator::MhaResult Accelerator::run_mha(const MhaQuantized& block,
                                            const MatI8& q, const MatI8& kv,
                                            const Mask& mask) const {
  TFACC_CHECK_ARG(q.cols() == block.d_model && kv.cols() == block.d_model);
  TFACC_CHECK_ARG(mask.rows() == q.rows() && mask.cols() == kv.rows());
  TFACC_CHECK_ARG_MSG(block.head_dim == cfg_.sa_cols,
                      "head_dim " << block.head_dim << " != SA columns "
                                  << cfg_.sa_cols);

  MhaResult res;
  RunReport& rep = res.report;
  SaModule sa(cfg_, rep.timeline);
  SoftmaxModule sm(cfg_, rep.timeline);
  LayerNormModule ln(cfg_, rep.timeline);

  const MhaSchedule sched =
      schedule_mha(cfg_, sa, sm, ln, q.rows(), kv.rows(), block.d_model,
                   block.num_heads);

  // Functional pass, op for op in the scheduled order (Algorithm 1).
  std::vector<MatI8> p_blocks;
  p_blocks.reserve(block.heads.size());
  for (int h = 0; h < block.num_heads; ++h) {
    const auto& head = block.heads[static_cast<std::size_t>(h)];
    const MatI8 q1 = head.wq.forward(q);
    const MatI8 k1 = head.wk.forward(kv);
    const MatI32 scores = gemm_nt_i8(q1, k1);
    const MatI8 probs = block.softmax(scores, mask, h);
    const MatI8 v1 = head.wv.forward(kv);
    const MatI32 a_acc = gemm_i8(probs, v1);
    p_blocks.push_back(requantize_i8(a_acc, head.av_requant));
  }
  const MatI8 p = hconcat(p_blocks);

  const int hd = block.head_dim;
  const MatI16 g_res = requantize_i8_to_i16(q, block.residual_to_g);
  const auto wg_blocks = split_cols(block.wg.w, hd);
  MatI16 g(q.rows(), block.d_model);
  for (int i = 0; i < block.d_model / hd; ++i) {
    const MatI32 acc = add_bias_i32(
        gemm_i8(p, wg_blocks[static_cast<std::size_t>(i)]),
        bias_slice(block.wg.bias, i * hd, hd));
    const MatI16 proj = requantize_i16(acc, block.wg_to_g);
    const MatI16 res_blk = g_res.block(0, i * hd, q.rows(), hd);
    g.set_block(0, i * hd, saturating_add_i16(proj, res_blk));
  }
  res.out = block.norm(g);

  record_softmax_slack(rep, sched);
  finalize_report(rep, cfg_, sa);
  return res;
}

Accelerator::FfnResult Accelerator::run_ffn(const FfnQuantized& block,
                                            const MatI8& x) const {
  TFACC_CHECK_ARG(x.cols() == block.d_model);
  TFACC_CHECK_ARG(block.d_model % cfg_.sa_cols == 0 &&
                  block.d_ff % cfg_.sa_cols == 0);

  FfnResult res;
  RunReport& rep = res.report;
  SaModule sa(cfg_, rep.timeline);
  LayerNormModule ln(cfg_, rep.timeline);
  const FfnSchedule sched =
      schedule_ffn(cfg_, sa, ln, x.rows(), block.d_model, block.d_ff);
  (void)sched;

  const int bc = cfg_.sa_cols;
  const auto w1_blocks = split_cols(block.w1.w, bc);
  std::vector<MatI8> h_blocks;
  h_blocks.reserve(w1_blocks.size());
  for (int i = 0; i < block.d_ff / bc; ++i) {
    const MatI32 acc = add_bias_i32(
        gemm_i8(x, w1_blocks[static_cast<std::size_t>(i)]),
        bias_slice(block.w1.bias, i * bc, bc));
    h_blocks.push_back(block.w1.requantize(relu_i32(acc), i * bc));
  }
  const MatI8 hidden = hconcat(h_blocks);

  const auto w2_blocks = split_cols(block.w2.w, bc);
  const MatI16 g_res = requantize_i8_to_i16(x, block.residual_to_g);
  MatI16 g(x.rows(), block.d_model);
  for (int i = 0; i < block.d_model / bc; ++i) {
    const MatI32 acc = add_bias_i32(
        gemm_i8(hidden, w2_blocks[static_cast<std::size_t>(i)]),
        bias_slice(block.w2.bias, i * bc, bc));
    const MatI16 proj = requantize_i16(acc, block.w2_to_g);
    const MatI16 res_blk = g_res.block(0, i * bc, x.rows(), bc);
    g.set_block(0, i * bc, saturating_add_i16(proj, res_blk));
  }
  res.out = block.norm(g);

  finalize_report(rep, cfg_, sa);
  return res;
}

RunReport Accelerator::time_mha(int s_q, int s_kv, int d_model,
                                int num_heads) const {
  TFACC_CHECK_ARG(d_model == num_heads * cfg_.sa_cols);
  RunReport rep;
  SaModule sa(cfg_, rep.timeline);
  SoftmaxModule sm(cfg_, rep.timeline);
  LayerNormModule ln(cfg_, rep.timeline);
  const MhaSchedule sched =
      schedule_mha(cfg_, sa, sm, ln, s_q, s_kv, d_model, num_heads);
  record_softmax_slack(rep, sched);
  finalize_report(rep, cfg_, sa);
  return rep;
}

RunReport Accelerator::time_mha_cached(int s_new, int s_total, int d_model,
                                       int num_heads,
                                       int project_kv_rows) const {
  TFACC_CHECK_ARG(s_new > 0 && s_total >= s_new);
  TFACC_CHECK_ARG(project_kv_rows >= 0);
  TFACC_CHECK_ARG(d_model == num_heads * cfg_.sa_cols);
  RunReport rep;
  SaModule sa(cfg_, rep.timeline);
  SoftmaxModule sm(cfg_, rep.timeline);
  LayerNormModule ln(cfg_, rep.timeline);
  const MhaCachedSchedule sched =
      schedule_mha_cached(cfg_, sa, sm, ln, s_new, s_total, d_model,
                          num_heads, project_kv_rows);
  record_softmax_slack(rep, sched);
  finalize_report(rep, cfg_, sa);
  return rep;
}

Accelerator::MhaResult Accelerator::run_mha_cached(const MhaQuantized& block,
                                                   const MatI8& q,
                                                   const QuantKvCache& cache,
                                                   const Mask& mask,
                                                   int projected_rows) const {
  TFACC_CHECK_ARG(q.cols() == block.d_model);
  TFACC_CHECK_ARG(mask.rows() == q.rows() && mask.cols() == cache.rows());
  TFACC_CHECK_ARG(projected_rows >= 0 && projected_rows <= cache.rows());
  TFACC_CHECK_ARG_MSG(block.head_dim == cfg_.sa_cols,
                      "head_dim " << block.head_dim << " != SA columns "
                                  << cfg_.sa_cols);

  MhaResult res;
  RunReport& rep = res.report;
  SaModule sa(cfg_, rep.timeline);
  SoftmaxModule sm(cfg_, rep.timeline);
  LayerNormModule ln(cfg_, rep.timeline);
  const MhaCachedSchedule sched =
      schedule_mha_cached(cfg_, sa, sm, ln, q.rows(), cache.rows(),
                          block.d_model, block.num_heads, projected_rows);

  // Functional pass: identical arithmetic to the quantized model's cached
  // path (the caller appended this step's K/V rows before invoking us, so
  // the cache already holds them — mirroring the data memory on chip).
  res.out = block.forward_cached(q, cache, mask);

  record_softmax_slack(rep, sched);
  finalize_report(rep, cfg_, sa);
  return res;
}

Accelerator::MhaResult Accelerator::run_mha_cached_batch(
    const MhaQuantized& block, const MatI8& q,
    const std::vector<const QuantKvCache*>& caches,
    const std::vector<const Mask*>& masks, int projected_rows) const {
  TFACC_CHECK_ARG(q.cols() == block.d_model);
  TFACC_CHECK_ARG(static_cast<int>(caches.size()) == q.rows() &&
                  static_cast<int>(masks.size()) == q.rows());
  TFACC_CHECK_ARG(projected_rows == 0 || projected_rows == q.rows());
  TFACC_CHECK_ARG_MSG(block.head_dim == cfg_.sa_cols,
                      "head_dim " << block.head_dim << " != SA columns "
                                  << cfg_.sa_cols);
  std::vector<int> totals(caches.size());
  for (std::size_t r = 0; r < caches.size(); ++r) {
    totals[r] = caches[r]->rows();
    TFACC_CHECK_ARG(masks[r]->rows() == 1 && masks[r]->cols() == totals[r]);
  }

  MhaResult res;
  RunReport& rep = res.report;
  SaModule sa(cfg_, rep.timeline);
  SoftmaxModule sm(cfg_, rep.timeline);
  LayerNormModule ln(cfg_, rep.timeline);
  const MhaCachedSchedule sched =
      schedule_mha_cached_batch(cfg_, sa, sm, ln, totals, block.d_model,
                                block.num_heads, projected_rows);

  // Functional pass: identical arithmetic to the quantized model's packed
  // cached path (the caller appended this step's K/V rows before invoking
  // us, so each slot's cache already holds them — mirroring the data memory
  // on chip).
  res.out = block.forward_cached_batch(q, caches, masks);

  record_softmax_slack(rep, sched);
  finalize_report(rep, cfg_, sa);
  return res;
}

RunReport Accelerator::time_ffn(int s, int d_model, int d_ff) const {
  TFACC_CHECK_ARG(d_model % cfg_.sa_cols == 0 && d_ff % cfg_.sa_cols == 0);
  RunReport rep;
  SaModule sa(cfg_, rep.timeline);
  LayerNormModule ln(cfg_, rep.timeline);
  schedule_ffn(cfg_, sa, ln, s, d_model, d_ff);
  finalize_report(rep, cfg_, sa);
  return rep;
}

namespace {

Accelerator::StreamReport to_stream(const RunReport& rep,
                                    const AcceleratorConfig& cfg) {
  Accelerator::StreamReport sr;
  sr.first_latency = rep.total_cycles;
  // Steady state drops the cold weight load and hides the LayerNorm tail
  // under the next run's SA work.
  sr.steady_interval =
      rep.total_cycles - cfg.weight_load_cycles - rep.layernorm_busy;
  sr.clock_mhz = cfg.clock_mhz;
  TFACC_CHECK(sr.steady_interval > 0);
  return sr;
}

}  // namespace

Accelerator::StreamReport Accelerator::stream_mha(int s_q, int s_kv,
                                                  int d_model,
                                                  int num_heads) const {
  return to_stream(time_mha(s_q, s_kv, d_model, num_heads), cfg_);
}

Accelerator::StreamReport Accelerator::stream_ffn(int s, int d_model,
                                                  int d_ff) const {
  return to_stream(time_ffn(s, d_model, d_ff), cfg_);
}

}  // namespace tfacc
