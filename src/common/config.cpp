#include "common/config.hpp"

#include "common/check.hpp"

namespace tfacc {

void ModelConfig::validate() const {
  TFACC_CHECK_MSG(d_model > 0 && d_ff > 0 && num_heads > 0 && head_dim > 0,
                  "config " << name);
  TFACC_CHECK_MSG(d_model == head_dim * num_heads,
                  name << ": d_model must equal head_dim*h (Table I pattern)");
  TFACC_CHECK_MSG(d_ff == 4 * d_model,
                  name << ": d_ff must equal 4*d_model (Table I pattern)");
  TFACC_CHECK_MSG(num_encoder_layers >= 0 && num_decoder_layers >= 0,
                  name << ": negative layer count");
}

ModelConfig ModelConfig::transformer_base() {
  return ModelConfig{"transformer-base", 512, 2048, 8, 64, 6, 6};
}

ModelConfig ModelConfig::transformer_big() {
  return ModelConfig{"transformer-big", 1024, 4096, 16, 64, 6, 6};
}

ModelConfig ModelConfig::bert_base() {
  return ModelConfig{"bert-base", 768, 3072, 12, 64, 12, 0};
}

ModelConfig ModelConfig::bert_large() {
  return ModelConfig{"bert-large", 1024, 4096, 16, 64, 24, 0};
}

ModelConfig ModelConfig::tiny() {
  return ModelConfig{"tiny", 128, 512, 2, 64, 2, 2};
}

std::vector<ModelConfig> ModelConfig::table1() {
  return {transformer_base(), transformer_big(), bert_base(), bert_large()};
}

void SequenceConfig::validate() const {
  TFACC_CHECK_MSG(seq_len > 0, "seq_len=" << seq_len);
  TFACC_CHECK_MSG(batch > 0, "batch=" << batch);
}

void AcceleratorConfig::validate() const {
  TFACC_CHECK(sa_rows > 0 && sa_cols > 0 && tile_k > 0);
  TFACC_CHECK(tile_drain_cycles >= 0 && weight_load_cycles >= 0);
  TFACC_CHECK(accum_depth_tiles > 0 && accum_spill_cycles >= 0);
  TFACC_CHECK(softmax_pipeline_depth >= 0 && layernorm_lut_latency >= 0);
  TFACC_CHECK(clock_mhz > 0.0);
  TFACC_CHECK_ARG_MSG(prefill_chunk_rows >= 1,
                      "prefill_chunk_rows must be >= 1, got "
                          << prefill_chunk_rows);
}

}  // namespace tfacc
