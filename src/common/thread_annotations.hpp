// Clang Thread Safety Analysis wall (PR 10).
//
// PR 9 made the measured farm concurrent; until now every lock-discipline
// invariant (which mutex guards which field, which functions must be called
// with the gate mutex held) was enforced only dynamically, by TSan over
// whatever interleavings the host happened to produce. This header moves the
// discipline to *compile time*: the TFACC_* macros expand to Clang's
// -Wthread-safety attributes (no-ops on GCC and MSVC), and the Mutex /
// MutexLock / CondVar wrappers give the analysis an annotated lock vocabulary
// — libstdc++'s std::mutex carries no annotations, so raw std::mutex members
// are invisible to the analysis and are banned by scripts/lint_invariants.py
// (rule raw-mutex-member) outside this file.
//
// Usage pattern (see src/serve/admission_gate.hpp for the real thing):
//
//   class Gate {
//    public:
//     void poke() TFACC_EXCLUDES(mu_) {
//       const MutexLock lock(mu_);
//       scan_locked();
//     }
//    private:
//     void scan_locked() TFACC_REQUIRES(mu_);
//     mutable Mutex mu_;
//     std::vector<Slot> slots_ TFACC_GUARDED_BY(mu_);
//   };
//
// A Clang build (the clang CI jobs compile with -Wthread-safety -Werror)
// then rejects, at compile time, any access to slots_ without mu_ held and
// any call to scan_locked() outside the lock — on every path, not just the
// interleavings a stress test samples. tests/negative/ holds WILL_FAIL
// compile probes proving the wall actually rejects both violation shapes.
#pragma once

#include <condition_variable>
#include <mutex>

// ---------------------------------------------------------------------------
// Attribute macros. Clang-only: GCC's -Wthread-safety does not exist and its
// __attribute__ parser rejects the capability spellings, so everything
// compiles away outside Clang.
// ---------------------------------------------------------------------------
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define TFACC_TSA_ATTR(x) __attribute__((x))
#endif
#endif
#ifndef TFACC_TSA_ATTR
#define TFACC_TSA_ATTR(x)  // not Clang: no thread safety analysis
#endif

/// Type is a lockable capability (name shows up in diagnostics).
#define TFACC_CAPABILITY(name) TFACC_TSA_ATTR(capability(name))
/// RAII type that acquires a capability at construction, releases at scope
/// exit; the analysis tracks its held/released state across Unlock()/Lock().
#define TFACC_SCOPED_CAPABILITY TFACC_TSA_ATTR(scoped_lockable)
/// Field may only be read/written with the named capability held.
#define TFACC_GUARDED_BY(x) TFACC_TSA_ATTR(guarded_by(x))
/// Pointer field whose *pointee* is guarded by the named capability.
#define TFACC_PT_GUARDED_BY(x) TFACC_TSA_ATTR(pt_guarded_by(x))
/// Function requires the capability held on entry (and does not release it).
#define TFACC_REQUIRES(...) TFACC_TSA_ATTR(requires_capability(__VA_ARGS__))
/// Function acquires the capability (must not be held on entry).
#define TFACC_ACQUIRE(...) TFACC_TSA_ATTR(acquire_capability(__VA_ARGS__))
/// Function releases the capability (must be held on entry).
#define TFACC_RELEASE(...) TFACC_TSA_ATTR(release_capability(__VA_ARGS__))
/// Function acquires the capability iff it returns the given value.
#define TFACC_TRY_ACQUIRE(...) \
  TFACC_TSA_ATTR(try_acquire_capability(__VA_ARGS__))
/// Function must NOT be called with the capability held (deadlock guard for
/// non-reentrant locks).
#define TFACC_EXCLUDES(...) TFACC_TSA_ATTR(locks_excluded(__VA_ARGS__))
/// Function returns a reference to the named capability.
#define TFACC_RETURN_CAPABILITY(x) TFACC_TSA_ATTR(lock_returned(x))
/// Escape hatch: function body is not analyzed. Budgeted: the determinism
/// lint forbids this in src/serve/** — exemptions are allowed only outside
/// the serving stack and each use must carry a reason comment.
#define TFACC_NO_TSA TFACC_TSA_ATTR(no_thread_safety_analysis)

namespace tfacc {

class CondVar;

/// std::mutex with the capability annotation the analysis needs. Same cost:
/// the wrapper is a single std::mutex member and every method inlines to the
/// underlying call.
class TFACC_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() TFACC_ACQUIRE() { mu_.lock(); }
  void unlock() TFACC_RELEASE() { mu_.unlock(); }
  bool try_lock() TFACC_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;  // wait() needs the raw mutex for the cv protocol
  std::mutex mu_;
};

/// RAII lock with the scoped-capability annotation (the std::lock_guard /
/// std::unique_lock replacement — those types are unannotated in libstdc++,
/// so the analysis cannot see their acquisitions). Unlock()/Lock() support
/// the worker-pool pattern of dropping the lock around a job invocation; the
/// analysis tracks the held state through both.
class TFACC_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) TFACC_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() TFACC_RELEASE() {
    if (held_) mu_.unlock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Temporarily drop the lock (e.g. around a parked-job invocation).
  void Unlock() TFACC_RELEASE() {
    held_ = false;
    mu_.unlock();
  }
  /// Re-acquire after Unlock().
  void Lock() TFACC_ACQUIRE() {
    mu_.lock();
    held_ = true;
  }

 private:
  Mutex& mu_;
  bool held_ = true;
};

/// Condition variable bound to the annotated Mutex. wait() requires the
/// mutex held (enforced at compile time under Clang) and returns with it
/// held again; predicates stay in the caller as explicit while-loops so
/// every guarded read sits inside an analyzed, annotated function rather
/// than an unannotatable lambda.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically release `mu`, sleep, and re-acquire before returning.
  /// Spurious wakeups happen; callers loop on their predicate.
  void wait(Mutex& mu) TFACC_REQUIRES(mu) {
    // The caller already holds mu (compile-time enforced), so adopt it for
    // the duration of the underlying wait and hand it back on return.
    std::unique_lock<std::mutex> relock(mu.mu_, std::adopt_lock);
    cv_.wait(relock);
    relock.release();
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace tfacc
