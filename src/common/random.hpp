// Deterministic, seedable random sources used across tests, weight
// initialization and synthetic-workload generation. Everything in this
// repository is reproducible from a seed.
#pragma once

#include <cstdint>
#include <random>

namespace tfacc {

/// A thin wrapper over std::mt19937_64 with convenience draws.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eedULL) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive).
  int uniform_int(int lo, int hi) {
    std::uniform_int_distribution<int> d(lo, hi);
    return d(engine_);
  }

  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi) {
    std::uniform_real_distribution<double> d(lo, hi);
    return d(engine_);
  }

  /// Normal draw with the given mean and standard deviation.
  double normal(double mean, double stddev) {
    std::normal_distribution<double> d(mean, stddev);
    return d(engine_);
  }

  /// Bernoulli draw.
  bool flip(double p_true = 0.5) {
    std::bernoulli_distribution d(p_true);
    return d(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace tfacc
