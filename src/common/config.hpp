// Model and accelerator configuration.
//
// Table I of the paper: every Transformer/BERT variant satisfies
// d_model = 64 h and d_ff = 4 d_model = 256 h, the pattern that makes the
// Section III matrix partitioning work with a single s×64 systolic array.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tfacc {

/// Hyper-parameters of a Transformer encoder/decoder layer pair, following
/// Table I of the paper. `head_dim` (d_k) is 64 in every published variant.
struct ModelConfig {
  std::string name = "transformer-base";
  int d_model = 512;   ///< model (embedding) width
  int d_ff = 2048;     ///< inner FFN width
  int num_heads = 8;   ///< h
  int head_dim = 64;   ///< d_k = d_model / h (64 for all Table I variants)
  int num_encoder_layers = 6;
  int num_decoder_layers = 6;

  /// Validate the Table I pattern the partitioning method relies on.
  /// Throws CheckError when violated.
  void validate() const;

  /// d_model / head_dim — number of 64-column blocks in W_G (Fig. 4).
  int wg_blocks() const { return d_model / head_dim; }
  /// d_ff / head_dim — number of 64-column blocks in W_1 (4h, Fig. 4).
  int w1_blocks() const { return d_ff / head_dim; }
  /// d_model / head_dim — number of 64-column blocks in W_2 (h, Fig. 4).
  int w2_blocks() const { return d_model / head_dim; }

  // --- Table I presets -----------------------------------------------------
  static ModelConfig transformer_base();
  static ModelConfig transformer_big();
  static ModelConfig bert_base();
  static ModelConfig bert_large();
  /// A reduced configuration (d_model=128, h=2, d_ff=512) used by unit tests
  /// and the in-repo trained translation model. Follows the same pattern.
  static ModelConfig tiny();
  /// All four published variants in Table I order.
  static std::vector<ModelConfig> table1();
};

/// Workload parameters for one ResBlock invocation (Section V: batch 1, s=64).
struct SequenceConfig {
  int seq_len = 64;    ///< s, the (max) sequence length
  int batch = 1;       ///< batch size (the paper evaluates batch 1)

  void validate() const;
};

/// Which latency strategy the LayerNorm module uses (Fig. 7 of the paper).
enum class LayerNormStrategy {
  kStraightforward,  ///< mean pass, then variance pass, then output
  kStepOne,          ///< running ΣG accumulators fed during G production
  kStepOneAndTwo,    ///< + var = E[G²] − E[G]²; ΣG² also accumulated online
};

/// Micro-architectural parameters of the modeled accelerator.
/// Defaults correspond to the paper's evaluated design point (64×64 SA,
/// 200 MHz on an xcvu13p).
struct AcceleratorConfig {
  int sa_rows = 64;         ///< physical systolic-array rows (matrix rows/chunk)
  int sa_cols = 64;         ///< physical systolic-array cols (= head_dim)
  int tile_k = 64;          ///< inner-dimension tile (weight tile is tile_k×sa_cols)
  int tile_drain_cycles = 8;   ///< per-tile pipeline-skew / drain bubble
  int weight_load_cycles = 64; ///< cycles to load one weight tile (double-buffered)
  int accum_depth_tiles = 8;   ///< partial-sum buffer depth, in inner-dim tiles
  int accum_spill_cycles = 128;  ///< write-out + read-back of one s×64 partial
                                 ///< block when an op exceeds accum_depth_tiles
  int softmax_pipeline_depth = 12;  ///< EXP/SUM/LN/EXP pipeline fill latency
  int layernorm_lut_latency = 4;    ///< x^(-0.5) LUT + multiply latency
  double clock_mhz = 200.0;         ///< Vivado-reported achievable clock
  bool overlap_softmax = true;      ///< run softmax parallel to V·W_V (Alg. 1 l.6)
  /// Dependency-driven interleaving of the KV-cached decode flows: ready
  /// attention ops of other slots/heads stream on the SA while a softmax
  /// runs, instead of Algorithm 1's strict per-slot program order. Timing
  /// only — functional results are identical. false is the ablation knob:
  /// strict program-order issue (PR 3 style; exact PR 3 cycle counts can
  /// differ slightly because projections now issue K/V before Q).
  bool interleave_decode = true;
  /// Fuse every packed decode step's sublayer schedules (self MHA, cross
  /// MHA, FFN across all decoder blocks) into ONE cross-sublayer ledger:
  /// sublayer N+1's initial weight-tile load prefetches under sublayer N's
  /// compute and LayerNorm tail instead of restarting cold, so only the
  /// step's first SA op pays the 64-cycle load. Timing only — functional
  /// results are identical. false is the ablation knob: per-sublayer
  /// ledgers, each starting cold (the PR 4 model).
  bool fuse_decode_step = true;
  /// Pack admitted sentences' encoder (prefill) passes into the per-card
  /// serve step ledgers instead of running them eagerly at admission: the
  /// scheduler splices each sentence's encoder sublayers — in
  /// prefill_chunk_rows-row chunks, so one long sentence can never
  /// monopolize a step — alongside the live packed decode rows, and a slot
  /// becomes decode-ready only once its last chunk's graph nodes complete
  /// in simulated time. Timing only — functional results are identical.
  /// false is the ablation knob: eager encode() at admission (the PR 5
  /// model), which stalls every live decode slot for the whole encoder
  /// pass.
  bool pack_prefill = true;
  /// Max encoder query rows one prefill chunk contributes to a step; the
  /// first chunk of each MHA sublayer additionally carries the sentence's
  /// one-time K/V projection.
  int prefill_chunk_rows = 16;
  /// Run the typed schedule verifier (analysis/verifier.hpp) over EVERY
  /// ledger the accelerator builds, throwing CheckError with the full
  /// diagnostic list on any violation. Off by default (verification is
  /// O(ops log ops) per ledger); the CI benches, tools/schedule_lint, and
  /// the paranoid tests turn it on.
  bool verify_schedules = false;
  LayerNormStrategy layernorm_strategy = LayerNormStrategy::kStepOneAndTwo;

  void validate() const;
};

}  // namespace tfacc
