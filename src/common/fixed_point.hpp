// Fixed-point and saturating-integer helpers shared by the quantizer and the
// bit-accurate hardware arithmetic units.
//
// The accelerator datapath is INT8 activations/weights with INT32 accumulators
// (Section V.A of the paper). Requantization back to INT8 is modeled the way
// hardware does it: multiply by an integer mantissa and arithmetic-shift right
// with round-to-nearest (round-half-away-from-zero), then saturate.
#pragma once

#include <cstdint>
#include <limits>

#include "common/check.hpp"

namespace tfacc {

/// Saturate a wide integer into [lo, hi].
template <typename T>
constexpr T clamp(T v, T lo, T hi) {
  return v < lo ? lo : (v > hi ? hi : v);
}

/// Saturate an int64 value to the int8 range.
constexpr std::int8_t saturate_i8(std::int64_t v) {
  return static_cast<std::int8_t>(
      clamp<std::int64_t>(v, std::numeric_limits<std::int8_t>::min(),
                          std::numeric_limits<std::int8_t>::max()));
}

/// Saturate an int64 value to the int16 range.
constexpr std::int16_t saturate_i16(std::int64_t v) {
  return static_cast<std::int16_t>(
      clamp<std::int64_t>(v, std::numeric_limits<std::int16_t>::min(),
                          std::numeric_limits<std::int16_t>::max()));
}

/// Saturate an int64 value to the int32 range.
constexpr std::int32_t saturate_i32(std::int64_t v) {
  return static_cast<std::int32_t>(
      clamp<std::int64_t>(v, std::numeric_limits<std::int32_t>::min(),
                          std::numeric_limits<std::int32_t>::max()));
}

/// Arithmetic shift right with round-to-nearest, half away from zero.
/// This matches a hardware rounding adder in front of the shifter.
constexpr std::int64_t rounding_shift_right(std::int64_t v, int shift) {
  if (shift <= 0) return v << -shift;
  const std::int64_t bias = std::int64_t{1} << (shift - 1);
  if (v >= 0) return (v + bias) >> shift;
  return -((-v + bias) >> shift);
}

/// A requantization multiplier `m * 2^-k` with an integer mantissa, exactly as
/// a hardware requantizer implements a real-valued scale. The mantissa is
/// normalized into [2^(bits-1), 2^bits) so precision is constant.
struct FixedPointScale {
  std::int32_t mantissa = 0;  ///< normalized integer mantissa (0 => scale 0)
  int shift = 0;              ///< right-shift applied after the multiply

  /// Number of mantissa bits used for normalization.
  static constexpr int kMantissaBits = 15;

  /// Build the fixed-point representation of a non-negative real scale.
  static FixedPointScale from_double(double scale) {
    TFACC_CHECK_ARG_MSG(scale >= 0.0, "scale=" << scale);
    FixedPointScale fps;
    if (scale == 0.0) return fps;
    int shift = 0;
    double m = scale;
    while (m < (1 << (kMantissaBits - 1))) {
      m *= 2.0;
      ++shift;
    }
    while (m >= (1 << kMantissaBits)) {
      m /= 2.0;
      --shift;
    }
    fps.mantissa = static_cast<std::int32_t>(m + 0.5);
    if (fps.mantissa == (1 << kMantissaBits)) {  // rounding overflowed
      fps.mantissa >>= 1;
      --shift;
    }
    fps.shift = shift;
    return fps;
  }

  /// The real value this fixed-point scale represents.
  double to_double() const {
    if (mantissa == 0) return 0.0;
    double v = static_cast<double>(mantissa);
    int s = shift;
    while (s > 0) { v *= 0.5; --s; }
    while (s < 0) { v *= 2.0; ++s; }
    return v;
  }

  /// Apply the scale to an int32 accumulator: round((v * mantissa) >> shift).
  std::int64_t apply(std::int64_t v) const {
    return rounding_shift_right(v * mantissa, shift);
  }

  /// Apply and saturate to int8 — the full hardware requantization step.
  std::int8_t apply_i8(std::int64_t v) const { return saturate_i8(apply(v)); }

  /// Apply and saturate to int16.
  std::int16_t apply_i16(std::int64_t v) const { return saturate_i16(apply(v)); }
};

/// A signed fixed-point value with a compile-time number of fraction bits.
/// Used by the softmax / layernorm hardware models (e.g. Q8.8, Q2.14).
template <int FracBits>
struct Fixed {
  static_assert(FracBits >= 0 && FracBits < 32);
  std::int32_t raw = 0;

  static constexpr int kFracBits = FracBits;
  static constexpr std::int32_t kOne = std::int32_t{1} << FracBits;

  static Fixed from_raw(std::int32_t r) { return Fixed{r}; }
  static Fixed from_double(double v) {
    return Fixed{saturate_i32(static_cast<std::int64_t>(
        v * static_cast<double>(kOne) + (v >= 0 ? 0.5 : -0.5)))};
  }
  double to_double() const { return static_cast<double>(raw) / kOne; }

  Fixed operator+(Fixed o) const { return Fixed{raw + o.raw}; }
  Fixed operator-(Fixed o) const { return Fixed{raw - o.raw}; }
  bool operator<(Fixed o) const { return raw < o.raw; }
  bool operator==(Fixed o) const { return raw == o.raw; }
};

}  // namespace tfacc
