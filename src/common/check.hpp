// Runtime precondition / invariant checking for the tfacc library.
//
// Per the C++ Core Guidelines (I.5/I.6, P.6/P.7) we state preconditions
// explicitly and catch violations early. Violations throw, so callers can
// test error paths and no misuse silently corrupts a simulation.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace tfacc {

/// Thrown when a TFACC_CHECK* precondition or invariant fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* kind, const char* expr,
                                      const char* file, int line,
                                      const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace detail

}  // namespace tfacc

/// Check an invariant; throws tfacc::CheckError with location info on failure.
#define TFACC_CHECK(cond)                                                     \
  do {                                                                        \
    if (!(cond))                                                              \
      ::tfacc::detail::check_failed("check", #cond, __FILE__, __LINE__, ""); \
  } while (false)

/// Check an invariant with a streamed message:
///   TFACC_CHECK_MSG(a == b, "a=" << a << " b=" << b);
#define TFACC_CHECK_MSG(cond, stream_expr)                                  \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::ostringstream tfacc_check_os_;                                   \
      tfacc_check_os_ << stream_expr;                                       \
      ::tfacc::detail::check_failed("check", #cond, __FILE__, __LINE__,     \
                                    tfacc_check_os_.str());                 \
    }                                                                       \
  } while (false)

/// Check a caller-supplied argument (precondition).
#define TFACC_CHECK_ARG(cond)                                                \
  do {                                                                       \
    if (!(cond))                                                             \
      ::tfacc::detail::check_failed("argument check", #cond, __FILE__,       \
                                    __LINE__, "");                           \
  } while (false)

#define TFACC_CHECK_ARG_MSG(cond, stream_expr)                              \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::ostringstream tfacc_check_os_;                                   \
      tfacc_check_os_ << stream_expr;                                       \
      ::tfacc::detail::check_failed("argument check", #cond, __FILE__,      \
                                    __LINE__, tfacc_check_os_.str());       \
    }                                                                       \
  } while (false)
