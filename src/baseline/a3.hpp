// A³-style approximate attention baseline (Ham et al., "A³: Accelerating
// Attention Mechanisms in Neural Networks with Approximation", HPCA 2020).
//
// The paper positions itself against A³ as the only prior attention
// accelerator ("which is not specifically designed for the Transformer").
// This module reproduces A³'s core idea as a software model so the two
// approaches can be compared on the same workloads:
//
//   - Preprocess keys: per dimension, sort key indices by component value.
//   - Candidate search: greedily pop the key whose single-component partial
//     product with the query is largest (looking at both ends of each
//     sorted dimension), for a fixed iteration budget — keys touched become
//     candidates.
//   - Compute exact dot products (and softmax) only over the candidates;
//     non-candidates are treated as -inf (zero probability).
//
// A cycle model in the A³ spirit (one candidate-search iteration per cycle,
// pipelined dot products over candidates) allows latency comparisons with
// the exact systolic-array design of src/core.
#pragma once

#include "reference/functional.hpp"
#include "tensor/matrix.hpp"

namespace tfacc {

struct A3Config {
  /// Greedy candidate-search iterations per query row (the approximation
  /// knob; >= s·d effectively degenerates to exact attention).
  int search_iterations = 64;
  /// Dot-product lanes of the modeled A³ unit (exact-score throughput).
  int dot_lanes = 64;

  void validate() const;
};

/// Result of the approximate attention with instrumentation.
struct A3Result {
  MatF output;                 ///< s_q × d_v attention output
  double mean_candidates = 0;  ///< avg candidate-set size per query row
  double score_macs_saved = 0; ///< fraction of Q·Kᵀ MACs skipped vs exact
};

/// Approximate Attention(Q, K, V) with masking semantics matching Eq. 4
/// (masked keys are never candidates; fully-masked rows yield zeros).
A3Result a3_attention(const MatF& q, const MatF& k, const MatF& v,
                      const Mask& mask, const A3Config& cfg);

/// Cycle estimate of one head's attention on the modeled A³ unit:
/// preprocessing is amortized (done once per key matrix); per query row:
/// search_iterations cycles + ceil(candidates·d_k / dot_lanes) score cycles
/// + softmax/weighted-sum pipeline over the candidates.
std::int64_t a3_attention_cycles(int s_q, int s_kv, int d_k,
                                 double mean_candidates, const A3Config& cfg);

}  // namespace tfacc
