#include "baseline/a3.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/check.hpp"
#include "tensor/ops.hpp"

namespace tfacc {

void A3Config::validate() const {
  TFACC_CHECK_MSG(search_iterations > 0,
                  "search_iterations " << search_iterations);
  TFACC_CHECK_MSG(dot_lanes > 0, "dot_lanes " << dot_lanes);
}

namespace {

/// Per-dimension key ordering: indices sorted ascending by component value.
/// The greedy search walks each dimension from both ends (largest positive
/// and most negative components).
std::vector<std::vector<int>> sort_keys_per_dimension(const MatF& k) {
  std::vector<std::vector<int>> sorted(static_cast<std::size_t>(k.cols()));
  for (int j = 0; j < k.cols(); ++j) {
    auto& order = sorted[static_cast<std::size_t>(j)];
    order.resize(static_cast<std::size_t>(k.rows()));
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](int a, int b) { return k(a, j) < k(b, j); });
  }
  return sorted;
}

/// One query row's greedy candidate search. Each dimension j maintains two
/// cursors (low end / high end of the sorted key list); at every iteration
/// the globally largest remaining partial product q_j·K(i,j) is consumed
/// and key i becomes a candidate.
void search_candidates(const MatF& q, int row, const MatF& k,
                       const std::vector<std::vector<int>>& sorted,
                       const std::uint8_t* mask_row, int iterations,
                       std::vector<char>& candidate) {
  const int d = k.cols();
  const int s = k.rows();
  struct Cursor {
    int lo = 0;
    int hi = 0;
  };
  std::vector<Cursor> cur(static_cast<std::size_t>(d));
  for (auto& c : cur) c.hi = s - 1;

  auto partial = [&](int j, bool from_high) {
    const auto& order = sorted[static_cast<std::size_t>(j)];
    const Cursor& c = cur[static_cast<std::size_t>(j)];
    if (c.lo > c.hi) return -std::numeric_limits<float>::infinity();
    const int key = from_high ? order[static_cast<std::size_t>(c.hi)]
                              : order[static_cast<std::size_t>(c.lo)];
    return q(row, j) * k(key, j);
  };

  for (int it = 0; it < iterations; ++it) {
    float best = -std::numeric_limits<float>::infinity();
    int best_j = -1;
    bool best_high = true;
    for (int j = 0; j < d; ++j) {
      // The profitable end depends on the sign of q_j: positive components
      // pair with large key values, negative with small ones.
      const bool from_high = q(row, j) >= 0.0f;
      const float p = partial(j, from_high);
      if (p > best) {
        best = p;
        best_j = j;
        best_high = from_high;
      }
    }
    if (best_j < 0 || best == -std::numeric_limits<float>::infinity()) break;
    auto& c = cur[static_cast<std::size_t>(best_j)];
    const auto& order = sorted[static_cast<std::size_t>(best_j)];
    const int key = best_high ? order[static_cast<std::size_t>(c.hi--)]
                              : order[static_cast<std::size_t>(c.lo++)];
    if (mask_row[key] == 0) candidate[static_cast<std::size_t>(key)] = 1;
  }
}

}  // namespace

A3Result a3_attention(const MatF& q, const MatF& k, const MatF& v,
                      const Mask& mask, const A3Config& cfg) {
  cfg.validate();
  TFACC_CHECK_ARG(q.cols() == k.cols() && k.rows() == v.rows());
  TFACC_CHECK_ARG(mask.rows() == q.rows() && mask.cols() == k.rows());

  const auto sorted = sort_keys_per_dimension(k);
  const float tau = std::sqrt(static_cast<float>(q.cols()));

  A3Result res;
  res.output = MatF(q.rows(), v.cols());
  std::int64_t total_candidates = 0;
  for (int r = 0; r < q.rows(); ++r) {
    std::vector<char> candidate(static_cast<std::size_t>(k.rows()), 0);
    search_candidates(q, r, k, sorted, mask.row(r), cfg.search_iterations,
                      candidate);

    // Exact scores over the candidate set only; softmax over candidates.
    float mx = -std::numeric_limits<float>::infinity();
    std::vector<float> score(static_cast<std::size_t>(k.rows()),
                             -std::numeric_limits<float>::infinity());
    int n_cand = 0;
    for (int i = 0; i < k.rows(); ++i) {
      if (!candidate[static_cast<std::size_t>(i)]) continue;
      float dot = 0.0f;
      for (int j = 0; j < q.cols(); ++j) dot += q(r, j) * k(i, j);
      score[static_cast<std::size_t>(i)] = dot / tau;
      mx = std::max(mx, score[static_cast<std::size_t>(i)]);
      ++n_cand;
    }
    total_candidates += n_cand;
    if (n_cand == 0) continue;  // fully masked or empty budget → zeros
    float denom = 0.0f;
    for (int i = 0; i < k.rows(); ++i)
      if (candidate[static_cast<std::size_t>(i)])
        denom += std::exp(score[static_cast<std::size_t>(i)] - mx);
    for (int i = 0; i < k.rows(); ++i) {
      if (!candidate[static_cast<std::size_t>(i)]) continue;
      const float p =
          std::exp(score[static_cast<std::size_t>(i)] - mx) / denom;
      for (int c = 0; c < v.cols(); ++c) res.output(r, c) += p * v(i, c);
    }
  }
  res.mean_candidates =
      static_cast<double>(total_candidates) / std::max(1, q.rows());
  const double exact_macs =
      static_cast<double>(q.rows()) * k.rows() * q.cols();
  const double done_macs = static_cast<double>(total_candidates) * q.cols();
  res.score_macs_saved = 1.0 - done_macs / exact_macs;
  return res;
}

std::int64_t a3_attention_cycles(int s_q, int s_kv, int d_k,
                                 double mean_candidates,
                                 const A3Config& cfg) {
  cfg.validate();
  TFACC_CHECK_ARG(s_q > 0 && s_kv > 0 && d_k > 0);
  // Per query row: the greedy search issues one selection per cycle; exact
  // scoring streams candidate·d_k MACs through dot_lanes; the softmax and
  // weighted sum pipeline over the candidates (2 passes).
  const double score_cycles =
      std::ceil(mean_candidates * d_k / cfg.dot_lanes);
  const double per_row =
      cfg.search_iterations + score_cycles + 2.0 * mean_candidates;
  return static_cast<std::int64_t>(std::ceil(per_row * s_q));
}

}  // namespace tfacc
