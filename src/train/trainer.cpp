#include "train/trainer.hpp"

#include <cmath>
#include <cstring>

#include "tensor/ops.hpp"

namespace tfacc {

namespace {

// ---------------------------------------------------------------------------
// Parameter enumeration: weights_/grads_/adam_m_/adam_v_ are four structurally
// identical TransformerWeights; enumerating their flat buffers in the same
// order yields parallel parameter lists for the optimizer.
// ---------------------------------------------------------------------------

struct FlatParam {
  float* data;
  std::size_t size;
};

void push(std::vector<FlatParam>& out, MatF& m) {
  out.push_back({m.data(), m.size()});
}
void push(std::vector<FlatParam>& out, std::vector<float>& v) {
  out.push_back({v.data(), v.size()});
}

void collect_mha(std::vector<FlatParam>& out, MhaWeights& w) {
  for (auto& head : w.heads) {
    push(out, head.wq);
    push(out, head.bq);
    push(out, head.wk);
    push(out, head.bk);
    push(out, head.wv);
    push(out, head.bv);
  }
  push(out, w.wg);
  push(out, w.bg);
  push(out, w.norm.gamma);
  push(out, w.norm.beta);
}

void collect_ffn(std::vector<FlatParam>& out, FfnWeights& w) {
  push(out, w.w1);
  push(out, w.b1);
  push(out, w.w2);
  push(out, w.b2);
  push(out, w.norm.gamma);
  push(out, w.norm.beta);
}

std::vector<FlatParam> collect(TransformerWeights& w) {
  std::vector<FlatParam> out;
  push(out, w.src_embedding);
  push(out, w.tgt_embedding);
  push(out, w.output_projection);
  for (auto& layer : w.encoder_layers) {
    collect_mha(out, layer.mha);
    collect_ffn(out, layer.ffn);
  }
  for (auto& layer : w.decoder_layers) {
    collect_mha(out, layer.self_mha);
    collect_mha(out, layer.cross_mha);
    collect_ffn(out, layer.ffn);
  }
  return out;
}

void zero_params(TransformerWeights& w) {
  for (auto& p : collect(w)) std::memset(p.data, 0, p.size * sizeof(float));
}

// ---------------------------------------------------------------------------
// Layer forward/backward with explicit caches. Gradients accumulate (+=)
// into grad containers that mirror the weight containers.
// ---------------------------------------------------------------------------

struct LnCache {
  MatF xhat;                    // normalized activations
  std::vector<float> inv_sigma; // per-row 1/sqrt(var+eps)
};

constexpr float kLnEps = 1e-8f;

MatF ln_fwd(const MatF& x, const LayerNormParams& p, LnCache& c) {
  const int n = x.cols();
  c.xhat = MatF(x.rows(), n);
  c.inv_sigma.assign(static_cast<std::size_t>(x.rows()), 0.0f);
  MatF y(x.rows(), n);
  for (int r = 0; r < x.rows(); ++r) {
    double mean = 0.0;
    for (int j = 0; j < n; ++j) mean += x(r, j);
    mean /= n;
    double var = 0.0;
    for (int j = 0; j < n; ++j) {
      const double d = x(r, j) - mean;
      var += d * d;
    }
    var /= n;
    const float inv = static_cast<float>(1.0 / std::sqrt(var + kLnEps));
    c.inv_sigma[static_cast<std::size_t>(r)] = inv;
    for (int j = 0; j < n; ++j) {
      const float xh = (x(r, j) - static_cast<float>(mean)) * inv;
      c.xhat(r, j) = xh;
      y(r, j) = xh * p.gamma[static_cast<std::size_t>(j)] +
                p.beta[static_cast<std::size_t>(j)];
    }
  }
  return y;
}

MatF ln_bwd(const MatF& dy, const LayerNormParams& p, const LnCache& c,
            LayerNormParams& g) {
  const int n = dy.cols();
  MatF dx(dy.rows(), n);
  for (int r = 0; r < dy.rows(); ++r) {
    double mean_dxhat = 0.0, mean_dxhat_xhat = 0.0;
    for (int j = 0; j < n; ++j) {
      const float dxh = dy(r, j) * p.gamma[static_cast<std::size_t>(j)];
      mean_dxhat += dxh;
      mean_dxhat_xhat += static_cast<double>(dxh) * c.xhat(r, j);
      g.gamma[static_cast<std::size_t>(j)] += dy(r, j) * c.xhat(r, j);
      g.beta[static_cast<std::size_t>(j)] += dy(r, j);
    }
    mean_dxhat /= n;
    mean_dxhat_xhat /= n;
    const float inv = c.inv_sigma[static_cast<std::size_t>(r)];
    for (int j = 0; j < n; ++j) {
      const float dxh = dy(r, j) * p.gamma[static_cast<std::size_t>(j)];
      dx(r, j) = inv * (dxh - static_cast<float>(mean_dxhat) -
                        c.xhat(r, j) * static_cast<float>(mean_dxhat_xhat));
    }
  }
  return dx;
}

struct HeadCache {
  MatF q1, k1, v1;
  MatF probs;
  float tau = 1.0f;
};

MatF head_fwd(const MatF& q, const MatF& kv, const HeadWeights& w,
              const Mask& mask, HeadCache& c) {
  c.q1 = add_bias(gemm(q, w.wq), w.bq);
  c.k1 = add_bias(gemm(kv, w.wk), w.bk);
  c.v1 = add_bias(gemm(kv, w.wv), w.bv);
  c.tau = std::sqrt(static_cast<float>(c.q1.cols()));
  const MatF scores = gemm_nt(c.q1, c.k1);
  c.probs = scaled_masked_softmax(scores, mask, c.tau);
  return gemm(c.probs, c.v1);
}

void head_bwd(const MatF& dout, const MatF& q, const MatF& kv,
              const HeadWeights& w, const Mask& mask, const HeadCache& c,
              HeadWeights& g, MatF& dq, MatF& dkv) {
  const MatF dprobs = gemm_nt(dout, c.v1);
  const MatF dv1 = gemm_tn(c.probs, dout);

  // Softmax backward, row-wise; masked / fully-masked entries have probs 0,
  // which already zeroes their gradient contribution.
  MatF dscores(dprobs.rows(), dprobs.cols());
  for (int r = 0; r < dprobs.rows(); ++r) {
    double dot = 0.0;
    for (int j = 0; j < dprobs.cols(); ++j)
      dot += static_cast<double>(dprobs(r, j)) * c.probs(r, j);
    for (int j = 0; j < dprobs.cols(); ++j) {
      const float v = mask(r, j) != 0
                          ? 0.0f
                          : c.probs(r, j) *
                                (dprobs(r, j) - static_cast<float>(dot));
      dscores(r, j) = v / c.tau;
    }
  }

  const MatF dq1 = gemm(dscores, c.k1);
  const MatF dk1 = gemm_tn(dscores, c.q1);

  accumulate(g.wq, gemm_tn(q, dq1));
  accumulate(g.bq, col_sums(dq1));
  accumulate(g.wk, gemm_tn(kv, dk1));
  accumulate(g.bk, col_sums(dk1));
  accumulate(g.wv, gemm_tn(kv, dv1));
  accumulate(g.bv, col_sums(dv1));
  accumulate(dq, gemm_nt(dq1, w.wq));
  accumulate(dkv, gemm_nt(dk1, w.wk));
  accumulate(dkv, gemm_nt(dv1, w.wv));
}

struct MhaActCache {
  MatF q, kv;
  Mask mask{0, 0};
  std::vector<HeadCache> heads;
  MatF p_concat;
  LnCache ln;
};

MatF mha_fwd(const MatF& q, const MatF& kv, const MhaWeights& w,
             const Mask& mask, MhaActCache& c) {
  c.q = q;
  c.kv = kv;
  c.mask = mask;
  c.heads.assign(w.heads.size(), HeadCache{});
  std::vector<MatF> outs;
  outs.reserve(w.heads.size());
  for (std::size_t h = 0; h < w.heads.size(); ++h)
    outs.push_back(head_fwd(q, kv, w.heads[h], mask, c.heads[h]));
  c.p_concat = hconcat(outs);
  const MatF gmat = add(q, add_bias(gemm(c.p_concat, w.wg), w.bg));
  return ln_fwd(gmat, w.norm, c.ln);
}

/// dq and dkv accumulate; they may alias (self-attention).
void mha_bwd(const MatF& dy, const MhaWeights& w, const MhaActCache& c,
             MhaWeights& g, MatF& dq, MatF& dkv) {
  const MatF dg = ln_bwd(dy, w.norm, c.ln, g.norm);
  accumulate(dq, dg);  // residual path
  const MatF dp = gemm_nt(dg, w.wg);
  accumulate(g.wg, gemm_tn(c.p_concat, dg));
  accumulate(g.bg, col_sums(dg));
  const int hd = w.heads.front().wq.cols();
  for (std::size_t h = 0; h < w.heads.size(); ++h) {
    const MatF dout =
        dp.block(0, static_cast<int>(h) * hd, dp.rows(), hd);
    head_bwd(dout, c.q, c.kv, w.heads[h], c.mask, c.heads[h], g.heads[h], dq,
             dkv);
  }
}

struct FfnCache {
  MatF x;
  MatF pre1;    // x·W1 + b1 (pre-ReLU)
  MatF hidden;  // ReLU(pre1)
  LnCache ln;
};

MatF ffn_fwd(const MatF& x, const FfnWeights& w, FfnCache& c) {
  c.x = x;
  c.pre1 = add_bias(gemm(x, w.w1), w.b1);
  c.hidden = relu(c.pre1);
  const MatF gmat = add(x, add_bias(gemm(c.hidden, w.w2), w.b2));
  return ln_fwd(gmat, w.norm, c.ln);
}

void ffn_bwd(const MatF& dy, const FfnWeights& w, const FfnCache& c,
             FfnWeights& g, MatF& dx) {
  const MatF dg = ln_bwd(dy, w.norm, c.ln, g.norm);
  accumulate(dx, dg);  // residual path
  MatF dhidden = gemm_nt(dg, w.w2);
  accumulate(g.w2, gemm_tn(c.hidden, dg));
  accumulate(g.b2, col_sums(dg));
  for (int r = 0; r < dhidden.rows(); ++r)
    for (int j = 0; j < dhidden.cols(); ++j)
      if (c.pre1(r, j) <= 0.0f) dhidden(r, j) = 0.0f;
  accumulate(dx, gemm_nt(dhidden, w.w1));
  accumulate(g.w1, gemm_tn(c.x, dhidden));
  accumulate(g.b1, col_sums(dhidden));
}

MatF embed_fwd(const TokenSeq& tokens, const MatF& embedding, const MatF& pe,
               int d_model) {
  const float scale = std::sqrt(static_cast<float>(d_model));
  MatF out(static_cast<int>(tokens.size()), d_model);
  for (int r = 0; r < out.rows(); ++r) {
    const int id = tokens[static_cast<std::size_t>(r)];
    for (int c = 0; c < d_model; ++c)
      out(r, c) = embedding(id, c) * scale + pe(r, c);
  }
  return out;
}

void embed_bwd(const TokenSeq& tokens, const MatF& dx, int d_model,
               MatF& dembedding) {
  const float scale = std::sqrt(static_cast<float>(d_model));
  for (int r = 0; r < dx.rows(); ++r) {
    const int id = tokens[static_cast<std::size_t>(r)];
    for (int c = 0; c < d_model; ++c)
      dembedding(id, c) += dx(r, c) * scale;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Trainer
// ---------------------------------------------------------------------------

struct Trainer::ForwardState {
  TokenSeq src, tgt_in, labels;
  Mask enc_mask{0, 0}, self_mask{0, 0}, cross_mask{0, 0};
  MatF src_x;  // encoder input embedding (cached for embed_bwd)
  MatF tgt_x;
  struct EncCache {
    MhaActCache mha;
    FfnCache ffn;
  };
  struct DecCache {
    MhaActCache self, cross;
    FfnCache ffn;
  };
  std::vector<EncCache> enc;
  std::vector<DecCache> dec;
  MatF memory;
  MatF dec_out;
  MatF probs;  // row-softmaxed logits
  MatF pe;     // positional encoding, sized to the longest sequence
};

Trainer::Trainer(TransformerWeights weights, AdamConfig adam)
    : weights_(std::move(weights)),
      grads_(weights_),
      adam_m_(weights_),
      adam_v_(weights_),
      adam_(adam),
      state_(std::make_unique<ForwardState>()) {
  weights_.config.validate();
  zero_params(grads_);
  zero_params(adam_m_);
  zero_params(adam_v_);
}

Trainer::~Trainer() = default;

float Trainer::forward(const SentencePair& pair) {
  TFACC_CHECK_ARG(!pair.source.empty() && !pair.reference.empty());
  ForwardState& st = *state_;
  st.src = pair.source;
  st.tgt_in.assign(1, kBosId);
  st.tgt_in.insert(st.tgt_in.end(), pair.reference.begin(),
                   pair.reference.end());
  st.labels = pair.reference;
  st.labels.push_back(kEosId);

  const int d_model = weights_.config.d_model;
  const int s = static_cast<int>(st.src.size());
  const int t = static_cast<int>(st.tgt_in.size());
  st.pe = positional_encoding(std::max(s, t), d_model);
  st.enc_mask = no_mask(s, s);
  st.self_mask = causal_mask(t);
  st.cross_mask = no_mask(t, s);

  // Encoder.
  st.src_x = embed_fwd(st.src, weights_.src_embedding, st.pe, d_model);
  st.enc.assign(weights_.encoder_layers.size(), ForwardState::EncCache{});
  MatF x = st.src_x;
  for (std::size_t l = 0; l < weights_.encoder_layers.size(); ++l) {
    const auto& lw = weights_.encoder_layers[l];
    x = mha_fwd(x, x, lw.mha, st.enc_mask, st.enc[l].mha);
    x = ffn_fwd(x, lw.ffn, st.enc[l].ffn);
  }
  st.memory = x;

  // Decoder (teacher forcing).
  st.tgt_x = embed_fwd(st.tgt_in, weights_.tgt_embedding, st.pe, d_model);
  st.dec.assign(weights_.decoder_layers.size(), ForwardState::DecCache{});
  MatF y = st.tgt_x;
  for (std::size_t l = 0; l < weights_.decoder_layers.size(); ++l) {
    const auto& lw = weights_.decoder_layers[l];
    y = mha_fwd(y, y, lw.self_mha, st.self_mask, st.dec[l].self);
    y = mha_fwd(y, st.memory, lw.cross_mha, st.cross_mask, st.dec[l].cross);
    y = ffn_fwd(y, lw.ffn, st.dec[l].ffn);
  }
  st.dec_out = y;

  // Cross-entropy over the vocabulary at every target position.
  const MatF logits = gemm(st.dec_out, weights_.output_projection);
  st.probs = MatF(logits.rows(), logits.cols());
  double loss = 0.0;
  for (int r = 0; r < logits.rows(); ++r) {
    float mx = logits(r, 0);
    for (int j = 1; j < logits.cols(); ++j) mx = std::max(mx, logits(r, j));
    double sum = 0.0;
    for (int j = 0; j < logits.cols(); ++j)
      sum += std::exp(static_cast<double>(logits(r, j)) - mx);
    for (int j = 0; j < logits.cols(); ++j)
      st.probs(r, j) = static_cast<float>(
          std::exp(static_cast<double>(logits(r, j)) - mx) / sum);
    const int label = st.labels[static_cast<std::size_t>(r)];
    loss -= std::log(
        std::max(1e-30, static_cast<double>(st.probs(r, label))));
  }
  return static_cast<float>(loss / logits.rows());
}

void Trainer::backward() {
  ForwardState& st = *state_;
  const int d_model = weights_.config.d_model;
  const int t = st.probs.rows();

  // dLogits = (softmax − onehot) / T.
  MatF dlogits = st.probs;
  for (int r = 0; r < t; ++r) {
    dlogits(r, st.labels[static_cast<std::size_t>(r)]) -= 1.0f;
    for (int j = 0; j < dlogits.cols(); ++j) dlogits(r, j) /= t;
  }

  MatF dy = gemm_nt(dlogits, weights_.output_projection);
  // Qualified: the member Trainer::accumulate would otherwise hide the
  // namespace-scope matrix accumulate.
  ::tfacc::accumulate(grads_.output_projection, gemm_tn(st.dec_out, dlogits));

  MatF dmemory(st.memory.rows(), d_model);
  for (std::size_t li = weights_.decoder_layers.size(); li-- > 0;) {
    const auto& lw = weights_.decoder_layers[li];
    auto& lg = grads_.decoder_layers[li];
    auto& cache = st.dec[li];
    MatF dffn_in(dy.rows(), d_model);
    ffn_bwd(dy, lw.ffn, cache.ffn, lg.ffn, dffn_in);
    MatF dcross_in(dy.rows(), d_model);
    mha_bwd(dffn_in, lw.cross_mha, cache.cross, lg.cross_mha, dcross_in,
            dmemory);
    MatF dself_in(dy.rows(), d_model);
    mha_bwd(dcross_in, lw.self_mha, cache.self, lg.self_mha, dself_in,
            dself_in);
    dy = std::move(dself_in);
  }
  embed_bwd(st.tgt_in, dy, d_model, grads_.tgt_embedding);

  MatF dx = std::move(dmemory);
  for (std::size_t li = weights_.encoder_layers.size(); li-- > 0;) {
    const auto& lw = weights_.encoder_layers[li];
    auto& lg = grads_.encoder_layers[li];
    auto& cache = st.enc[li];
    MatF dffn_in(dx.rows(), d_model);
    ffn_bwd(dx, lw.ffn, cache.ffn, lg.ffn, dffn_in);
    MatF dmha_in(dx.rows(), d_model);
    mha_bwd(dffn_in, lw.mha, cache.mha, lg.mha, dmha_in, dmha_in);
    dx = std::move(dmha_in);
  }
  embed_bwd(st.src, dx, d_model, grads_.src_embedding);
}

float Trainer::accumulate(const SentencePair& pair) {
  const float loss = forward(pair);
  backward();
  return loss;
}

void Trainer::step(int count) {
  TFACC_CHECK_ARG(count > 0);
  ++adam_t_;
  const auto w = collect(weights_);
  const auto g = collect(grads_);
  const auto m = collect(adam_m_);
  const auto v = collect(adam_v_);
  const double bc1 = 1.0 - std::pow(adam_.beta1, adam_t_);
  const double bc2 = 1.0 - std::pow(adam_.beta2, adam_t_);
  for (std::size_t p = 0; p < w.size(); ++p) {
    TFACC_CHECK(w[p].size == g[p].size);
    for (std::size_t i = 0; i < w[p].size; ++i) {
      const float grad = g[p].data[i] / static_cast<float>(count);
      m[p].data[i] = adam_.beta1 * m[p].data[i] + (1 - adam_.beta1) * grad;
      v[p].data[i] =
          adam_.beta2 * v[p].data[i] + (1 - adam_.beta2) * grad * grad;
      const double mhat = m[p].data[i] / bc1;
      const double vhat = v[p].data[i] / bc2;
      w[p].data[i] -= static_cast<float>(adam_.lr * mhat /
                                         (std::sqrt(vhat) + adam_.eps));
    }
  }
  zero_params(grads_);
}

float Trainer::train_batch(const std::vector<SentencePair>& batch) {
  TFACC_CHECK_ARG(!batch.empty());
  float loss = 0.0f;
  for (const auto& pair : batch) loss += accumulate(pair);
  step(static_cast<int>(batch.size()));
  return loss / static_cast<float>(batch.size());
}

float Trainer::evaluate_loss(const SentencePair& pair) {
  return forward(pair);
}

}  // namespace tfacc
