// Training for the reference Transformer: explicit (hand-derived) backprop
// through every layer, cross-entropy loss with teacher forcing, and Adam.
//
// This substrate exists so the Section V.A experiment (quantization impact on
// translation BLEU) can run on a model that genuinely translates: the paper
// used a Transformer-base trained on IWSLT'16 De-En; we train a small
// configuration on the synthetic task of src/nlp (see DESIGN.md §4).
//
// The forward pass mirrors reference/transformer.cpp exactly (tested against
// it); gradients are verified by finite differences in the test suite.
#pragma once

#include <memory>
#include <vector>

#include "nlp/synthetic.hpp"
#include "reference/transformer.hpp"
#include "reference/weights.hpp"

namespace tfacc {

/// Adam hyper-parameters.
struct AdamConfig {
  float lr = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.98f;
  float eps = 1e-9f;
};

class Trainer {
 public:
  Trainer(TransformerWeights weights, AdamConfig adam = {});
  ~Trainer();  // out of line: ForwardState is an incomplete type here

  const TransformerWeights& weights() const { return weights_; }
  /// Move the trained weights out (the trainer is finished afterwards).
  TransformerWeights take_weights() { return std::move(weights_); }

  /// Forward + backward of one (source, reference) pair with teacher
  /// forcing; gradients accumulate. Returns the mean token cross-entropy.
  float accumulate(const SentencePair& pair);

  /// Apply Adam with the accumulated gradients (scaled by 1/count) and
  /// clear them. `count` is the number of accumulate() calls in the batch.
  void step(int count);

  /// Convenience: one optimizer step over a batch; returns the mean loss.
  float train_batch(const std::vector<SentencePair>& batch);

  /// Teacher-forced mean token cross-entropy without touching gradients.
  float evaluate_loss(const SentencePair& pair);

  /// Loss-only forward used by the finite-difference gradient check.
  float forward_loss_only(const SentencePair& pair) { return forward(pair); }

  /// Accumulated gradients (structurally identical to weights());
  /// exposed for the finite-difference checks in the test suite.
  const TransformerWeights& gradients() const { return grads_; }

 private:
  float forward(const SentencePair& pair);  // fills caches_
  void backward();                          // consumes caches_, fills grads_

  TransformerWeights weights_;
  TransformerWeights grads_;
  TransformerWeights adam_m_;
  TransformerWeights adam_v_;
  AdamConfig adam_;
  long adam_t_ = 0;

  struct ForwardState;  // defined in trainer.cpp
  std::unique_ptr<ForwardState> state_;
};

}  // namespace tfacc
