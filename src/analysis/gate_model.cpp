#include "analysis/gate_model.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_set>
#include <utility>

#include "common/check.hpp"

namespace tfacc {
namespace {

// ---------------------------------------------------------------------------
// Abstract state. Everything below mirrors a named piece of the real
// implementation; each mirror cites its source so drift is reviewable.
// ---------------------------------------------------------------------------

/// AdmissionGate::Phase (serve/admission_gate.hpp).
enum class Phase : std::uint8_t { kIdle, kPending, kGranted, kHeld };

/// AdmissionGate::Slot. `outcome`/`req` stand in for the Grant payload
/// (burst arrivals: kPending never occurs, next_arrival is dead).
struct Slot {
  bool live = true;
  Cycle clock = 0;
  Phase phase = Phase::kIdle;
  Cycle key = 0;
  bool popped = false;  ///< grant outcome: true=kPopped, false=kDrained
  int req = -1;         ///< popped request id
};

/// Scheduler::CardRun::StepPhase plus an explicit publish point (publish
/// is its own mutex acquisition in finish_step, so it is its own atomic
/// transition here).
enum class Pc : std::uint8_t {
  kTop,
  kTopDrain,
  kCompute,
  kMidDrain,
  kMidPublish,
};

/// The abstracted CardRun (pack mode, burst arrivals): clock is busy(),
/// active holds (id, remaining decode steps), pending mirrors
/// pending_admits (pack defers activation until the drain completes).
struct Card {
  Pc pc = Pc::kTop;
  bool done = false;
  bool parked = false;  ///< WorkerPool: kParked, waiting for unpark
  bool posted = false;
  bool holding = false;
  bool queue_drained = false;
  Cycle clock = 0;
  Cycle snapshot = 0;  ///< busy_snapshot at the step top
  Cycle spec_key = 0;  ///< frozen key the spec mandates for the live post
  int admitted_in_drain = 0;
  int reserved = 0;
  std::vector<std::pair<int, int>> active;  ///< (id, remaining steps)
  std::vector<int> pending;                 ///< admitted, not yet active
  std::vector<int> admitted;                ///< admission log (request ids)
};

/// Whole-model state: cards + gate + sharded queue + the last resolved pop
/// (the (key, id)-order check needs exactly one event of history, so it
/// lives in the memoized state).
struct State {
  std::vector<Card> cards;
  std::vector<Slot> slots;
  std::vector<std::vector<int>> shards;  ///< RequestQueue, ids only
  Cycle last_pop_key = 0;
  int last_pop_card = -1;
  bool tamper_armed = true;  ///< one-shot tampers not yet fired
};

struct Explorer {
  const GateModelConfig& cfg;
  GateModelResult result;
  std::unordered_set<std::string> seen;
  bool stop = false;

  explicit Explorer(const GateModelConfig& c) : cfg(c) {}

  void fail(GateDiagCode code, int card, const std::string& msg) {
    if (stop) return;
    GateDiagnostic d;
    d.code = code;
    d.card = card;
    d.message = std::string(gate_diag_code_name(code)) + ": " + msg;
    result.diagnostics.push_back(std::move(d));
    stop = true;
  }
};

int decode_len(int id) { return 1 + id % 2; }

std::string fmt_pair(Cycle key, int card) {
  std::ostringstream os;
  os << "(key=" << key << ", card=" << card << ")";
  return os.str();
}

// ---------------------------------------------------------------------------
// RequestQueue mirror (serve/request_queue.cpp): burst arrivals, so the
// arrival-aware try_pop degenerates to owner-front / thief-back over the
// most loaded sibling (first-lowest index wins victim ties, as the real
// scan does with its strict `>` comparison).
// ---------------------------------------------------------------------------

/// Returns true and sets `id` on kPopped; false means kDrained.
bool queue_pop(State& st, int c, int& id) {
  std::vector<int>& own = st.shards[static_cast<std::size_t>(c)];
  if (!own.empty()) {
    id = own.front();
    own.erase(own.begin());
    return true;
  }
  int victim = -1;
  std::size_t victim_load = 0;
  for (std::size_t s = 0; s < st.shards.size(); ++s) {
    if (static_cast<int>(s) == c) continue;
    if (st.shards[s].size() > victim_load) {
      victim_load = st.shards[s].size();
      victim = static_cast<int>(s);
    }
  }
  if (victim < 0) return false;
  std::vector<int>& v = st.shards[static_cast<std::size_t>(victim)];
  id = v.back();
  v.pop_back();
  return true;
}

// ---------------------------------------------------------------------------
// AdmissionGate mirror (serve/admission_gate.cpp). Every helper below is
// one critical section of the real gate; scan() is scan_locked() with the
// invariant probes (and the seeded tampers) spliced in.
// ---------------------------------------------------------------------------

void scan(State& st, Explorer& ex) {
  if (ex.stop) return;
  const std::size_t n = st.slots.size();

  // The real scan: global-minimum blocking pair, phase-agnostic. First
  // index among equal keys wins (strict `<`), i.e. the id tie-break.
  std::size_t min_c = n;
  Cycle min_k = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const Slot& s = st.slots[i];
    if (!s.live) continue;
    const Cycle k = s.phase == Phase::kIdle ? s.clock : s.key;
    if (min_c == n || k < min_k) {
      min_c = i;
      min_k = k;
    }
  }

  // Pick the slot to grant. Faithful protocol: the minimum, iff pending.
  std::size_t grant_c = n;
  if (ex.cfg.tamper == GateTamper::kNonMinGrant) {
    // Tamper: grant the maximal pending pair whenever one exists.
    for (std::size_t i = 0; i < n; ++i) {
      const Slot& s = st.slots[i];
      if (!s.live || s.phase != Phase::kPending) continue;
      if (grant_c == n || s.key >= st.slots[grant_c].key) grant_c = i;
    }
  } else if (min_c < n && st.slots[min_c].phase == Phase::kPending) {
    grant_c = min_c;
  }
  if (grant_c == n) return;

  Slot& s = st.slots[grant_c];
  const int card = static_cast<int>(grant_c);
  ++ex.result.grants;

  // GATE-ORDER probe 1: the granted pair must be <= every live blocking
  // pair (pops enter the total order at the global minimum).
  for (std::size_t i = 0; i < n; ++i) {
    const Slot& o = st.slots[i];
    if (!o.live || i == grant_c) continue;
    const Cycle k = o.phase == Phase::kIdle ? o.clock : o.key;
    if (k < s.key || (k == s.key && i < grant_c)) {
      ex.fail(GateDiagCode::kOrder, card,
              "granted " + fmt_pair(s.key, card) + " while live pair " +
                  fmt_pair(k, static_cast<int>(i)) + " is smaller");
      return;
    }
  }
  // GATE-ORDER probe 2: the pop log is non-decreasing in (key, id).
  if (st.last_pop_card >= 0 &&
      (s.key < st.last_pop_key ||
       (s.key == st.last_pop_key && card < st.last_pop_card))) {
    ex.fail(GateDiagCode::kOrder, card,
            "pop " + fmt_pair(s.key, card) + " resolved after pop " +
                fmt_pair(st.last_pop_key, st.last_pop_card));
    return;
  }
  // GATE-KEY probe: the pop must execute at the frozen key the card's
  // step-top snapshot mandated, never at a live clock.
  const Card& cd = st.cards[grant_c];
  if (s.key != cd.spec_key) {
    ex.fail(GateDiagCode::kKey, card,
            "pop executed at key=" + std::to_string(s.key) +
                " but the frozen step-top snapshot key is " +
                std::to_string(cd.spec_key));
    return;
  }
  st.last_pop_key = s.key;
  st.last_pop_card = card;

  // The pop itself, under the gate mutex, at the frozen key.
  int id = -1;
  bool popped = queue_pop(st, card, id);
  if (popped && ex.cfg.tamper == GateTamper::kDoubleGrant &&
      st.tamper_armed) {
    // Tamper (one-shot): leave the request in the queue as well.
    st.tamper_armed = false;
    st.shards[grant_c % st.shards.size()].insert(
        st.shards[grant_c % st.shards.size()].begin(), id);
  }
  if (popped && ex.cfg.tamper == GateTamper::kDropGrant && st.tamper_armed) {
    // Tamper (one-shot): discard the popped request, report drained.
    st.tamper_armed = false;
    popped = false;
    id = -1;
  }
  s.popped = popped;
  s.req = id;
  s.phase = Phase::kGranted;

  // on_grant_: WorkerPool::unpark(card), still under the gate mutex.
  if (ex.cfg.tamper != GateTamper::kLostUnpark)
    st.cards[grant_c].parked = false;
}

void gate_reserve(State& st, int c, Cycle key, Explorer& ex) {
  Slot& s = st.slots[static_cast<std::size_t>(c)];
  TFACC_CHECK(s.phase == Phase::kIdle || s.phase == Phase::kHeld);
  s.key = std::max(key, s.clock);
  s.clock = s.key;
  s.phase = Phase::kPending;
  scan(st, ex);
}

bool gate_try_consume(State& st, int c, bool& popped, int& req) {
  Slot& s = st.slots[static_cast<std::size_t>(c)];
  if (s.phase != Phase::kGranted) {
    TFACC_CHECK(s.phase == Phase::kPending);
    return false;
  }
  popped = s.popped;
  req = s.req;
  s.phase = Phase::kHeld;
  return true;  // no scan: try_consume is the one op that never resolves
}

void gate_release(State& st, int c, Explorer& ex) {
  Slot& s = st.slots[static_cast<std::size_t>(c)];
  TFACC_CHECK(s.phase == Phase::kHeld);
  s.phase = Phase::kIdle;
  scan(st, ex);
}

void gate_publish(State& st, int c, Cycle t, Explorer& ex) {
  Slot& s = st.slots[static_cast<std::size_t>(c)];
  s.clock = std::max(s.clock, t);
  scan(st, ex);
}

void gate_retire(State& st, int c, Explorer& ex) {
  Slot& s = st.slots[static_cast<std::size_t>(c)];
  s.live = false;
  s.phase = Phase::kIdle;
  scan(st, ex);
}

// ---------------------------------------------------------------------------
// CardRun mirror (serve/scheduler.cpp, pack mode, burst arrivals). One
// call = one DFS transition: run card-local code until exactly one gate
// operation has executed, then return. Parking happens at try_consume
// (the op that returned false), matching Drain::kParked.
// ---------------------------------------------------------------------------

/// CardRun::admission_key, accelerator vs functional-proxy flavors. Burst
/// arrivals pin clock_floor to 0, so the floor term vanishes.
Cycle frozen_key(const Card& cd, const GateModelConfig& cfg) {
  return cfg.proxy_keys
             ? cd.snapshot + static_cast<Cycle>(cd.admitted_in_drain)
             : cd.snapshot;
}

void complete_drain(Card& cd);

void post_reservation(State& st, int c, Explorer& ex) {
  Card& cd = st.cards[static_cast<std::size_t>(c)];
  cd.spec_key = frozen_key(cd, ex.cfg);
  // Tamper: post the live clock (what a naive implementation reading the
  // in-step cycle counter would do) instead of the frozen snapshot.
  const Cycle posted =
      ex.cfg.tamper == GateTamper::kFrozenKey ? cd.clock : cd.spec_key;
  cd.posted = true;
  gate_reserve(st, c, posted, ex);
}

void step_card(State& st, int c, Explorer& ex) {
  Card& cd = st.cards[static_cast<std::size_t>(c)];
  const int slots = ex.cfg.slots_per_card;
  for (;;) {
    switch (cd.pc) {
      case Pc::kTop: {
        if (cd.queue_drained && cd.active.empty() && cd.pending.empty()) {
          cd.done = true;
          gate_retire(st, c, ex);
          return;
        }
        cd.snapshot = cd.clock;
        cd.admitted_in_drain = 0;
        if (!cd.active.empty()) {
          cd.pc = Pc::kCompute;
          // Post the step's reservation BEFORE the compute so a sibling's
          // scan can resolve it mid-step (the convoy-free core).
          if (!cd.posted && !cd.queue_drained && cd.reserved + 1 <= slots) {
            post_reservation(st, c, ex);
            return;
          }
          break;
        }
        cd.pc = Pc::kTopDrain;
        break;
      }
      case Pc::kCompute: {
        // One packed step: every active row decodes one token; the clock
        // charges one cycle per row (ragged finishes via decode_len).
        Cycle cost = 0;
        for (auto& hyp : cd.active) {
          --hyp.second;
          ++cost;
        }
        for (std::size_t i = cd.active.size(); i-- > 0;) {
          if (cd.active[i].second > 0) continue;
          cd.active.erase(cd.active.begin() + static_cast<std::ptrdiff_t>(i));
          --cd.reserved;
        }
        cd.clock += cost;
        cd.pc = Pc::kMidDrain;
        break;
      }
      case Pc::kTopDrain:
      case Pc::kMidDrain: {
        if (cd.holding) {
          cd.holding = false;
          if (cd.queue_drained || cd.reserved + 1 > slots) {
            // Done popping this drain: yield the turn, then complete (the
            // completion continuation is card-local, next case below).
            complete_drain(cd);
            gate_release(st, c, ex);
            return;
          }
          post_reservation(st, c, ex);  // keep the turn, re-reserve
          return;
        }
        if (!cd.posted) {
          if (cd.queue_drained || cd.reserved + 1 > slots) {
            complete_drain(cd);  // nothing to collect; no gate op
            break;
          }
          post_reservation(st, c, ex);
          return;
        }
        bool popped = false;
        int req = -1;
        if (!gate_try_consume(st, c, popped, req)) {
          cd.parked = true;  // WorkerPool: park until on_grant unparks
          return;
        }
        cd.posted = false;
        cd.holding = true;
        if (!popped) {
          cd.queue_drained = true;  // burst: empty is final
        } else {
          ++cd.reserved;
          ++cd.admitted_in_drain;
          cd.admitted.push_back(req);
          cd.pending.push_back(req);  // pack defers the encode
          if (ex.cfg.proxy_keys) ++cd.clock;  // proxy busy() counts admits
        }
        return;
      }
      case Pc::kMidPublish: {
        cd.pc = Pc::kTop;
        gate_publish(st, c, cd.clock, ex);
        return;
      }
    }
  }
}

/// Drain completed: activate deferred admissions and pick the next phase
/// (CardRun::admit_pending + the resume() phase hand-off).
void complete_drain(Card& cd) {
  for (const int id : cd.pending)
    cd.active.emplace_back(id, decode_len(id));
  cd.pending.clear();
  if (cd.pc == Pc::kTopDrain)
    cd.pc = cd.active.empty() ? Pc::kTop : Pc::kCompute;
  else
    cd.pc = Pc::kMidPublish;  // close_step/finish_step publish the clock
}

// ---------------------------------------------------------------------------
// DFS over interleavings.
// ---------------------------------------------------------------------------

void append_int(std::string& out, long long v) {
  out += std::to_string(v);
  out += ',';
}

std::string encode(const State& st) {
  std::string out;
  out.reserve(256);
  for (const Card& c : st.cards) {
    append_int(out, static_cast<int>(c.pc));
    append_int(out, (c.done << 5) | (c.parked << 4) | (c.posted << 3) |
                        (c.holding << 2) | (c.queue_drained << 1));
    append_int(out, c.clock);
    append_int(out, c.snapshot);
    append_int(out, c.spec_key);
    append_int(out, c.admitted_in_drain);
    append_int(out, c.reserved);
    for (const auto& hyp : c.active) {
      append_int(out, hyp.first);
      append_int(out, hyp.second);
    }
    out += ';';
    for (const int id : c.pending) append_int(out, id);
    out += ';';
    for (const int id : c.admitted) append_int(out, id);
    out += '|';
  }
  for (const Slot& s : st.slots) {
    append_int(out, (s.live << 3) | (static_cast<int>(s.phase) << 1) |
                        static_cast<int>(s.popped));
    append_int(out, s.clock);
    append_int(out, s.key);
    append_int(out, s.req);
    out += '|';
  }
  for (const auto& shard : st.shards) {
    for (const int id : shard) append_int(out, id);
    out += '|';
  }
  append_int(out, st.last_pop_key);
  append_int(out, st.last_pop_card);
  append_int(out, st.tamper_armed);
  return out;
}

/// What the user-visible determinism claim pins: which card admitted which
/// requests in which order, and every card's final clock (the ledger).
std::string terminal_fingerprint(const State& st) {
  std::string out;
  for (const Card& c : st.cards) {
    for (const int id : c.admitted) append_int(out, id);
    out += ':';
    append_int(out, c.clock);
    out += '|';
  }
  return out;
}

void check_quiescence(const State& st, Explorer& ex) {
  const int m = ex.cfg.num_requests;
  std::vector<int> admits(static_cast<std::size_t>(m), 0);
  for (const Card& c : st.cards)
    for (const int id : c.admitted) ++admits[static_cast<std::size_t>(id)];
  for (int id = 0; id < m; ++id) {
    if (admits[static_cast<std::size_t>(id)] > 1) {
      ex.fail(GateDiagCode::kDup, -1,
              "request " + std::to_string(id) + " admitted " +
                  std::to_string(admits[static_cast<std::size_t>(id)]) +
                  " times");
      return;
    }
    if (admits[static_cast<std::size_t>(id)] == 0) {
      ex.fail(GateDiagCode::kLost, -1,
              "request " + std::to_string(id) +
                  " never admitted by any card");
      return;
    }
  }
  for (const auto& shard : st.shards) {
    if (!shard.empty()) {
      ex.fail(GateDiagCode::kLost, -1,
              "queue still holds " + std::to_string(shard.size()) +
                  " request(s) after every card retired");
      return;
    }
  }
  const std::string fp = terminal_fingerprint(st);
  if (ex.result.terminal_fingerprint.empty()) {
    ex.result.terminal_fingerprint = fp;
  } else if (ex.result.terminal_fingerprint != fp) {
    ex.fail(GateDiagCode::kNondet, -1,
            "terminal state {" + fp + "} differs from {" +
                ex.result.terminal_fingerprint +
                "} reached by another interleaving");
    return;
  }
  ++ex.result.terminals;
}

void dfs(const State& st, Explorer& ex, int depth) {
  if (ex.stop) return;
  bool any_enabled = false;
  bool any_live = false;
  for (std::size_t c = 0; c < st.cards.size(); ++c) {
    const Card& cd = st.cards[c];
    if (cd.done) continue;
    any_live = true;
    if (cd.parked) continue;
    any_enabled = true;

    State next = st;
    step_card(next, static_cast<int>(c), ex);
    if (ex.stop) return;
    ++ex.result.transitions;
    if (!ex.seen.insert(encode(next)).second) continue;
    ++ex.result.states;
    if (ex.result.states > ex.cfg.max_states) {
      ex.result.truncated = true;
      ex.stop = true;
      return;
    }
    dfs(next, ex, depth + 1);
    if (ex.stop) return;
  }
  if (!any_enabled) {
    if (any_live) {
      std::string who;
      for (std::size_t c = 0; c < st.cards.size(); ++c)
        if (!st.cards[c].done) who += " " + std::to_string(c);
      ex.fail(GateDiagCode::kDeadlock, -1,
              "no enabled transition at depth " + std::to_string(depth) +
                  "; parked live card(s):" + who);
      return;
    }
    check_quiescence(st, ex);
  }
}

}  // namespace

const char* gate_diag_code_name(GateDiagCode code) {
  switch (code) {
    case GateDiagCode::kOrder: return "GATE-ORDER";
    case GateDiagCode::kKey: return "GATE-KEY";
    case GateDiagCode::kDeadlock: return "GATE-DEADLOCK";
    case GateDiagCode::kLost: return "GATE-LOST";
    case GateDiagCode::kDup: return "GATE-DUP";
    case GateDiagCode::kNondet: return "GATE-NONDET";
  }
  return "GATE-?";
}

const char* gate_tamper_name(GateTamper tamper) {
  switch (tamper) {
    case GateTamper::kNone: return "none";
    case GateTamper::kFrozenKey: return "frozen-key";
    case GateTamper::kLostUnpark: return "lost-unpark";
    case GateTamper::kDoubleGrant: return "double-grant";
    case GateTamper::kDropGrant: return "drop-grant";
    case GateTamper::kNonMinGrant: return "non-min-grant";
  }
  return "?";
}

std::string GateModelResult::to_string() const {
  std::ostringstream os;
  os << "states=" << states << " transitions=" << transitions
     << " terminals=" << terminals << " grants=" << grants;
  if (truncated) os << " TRUNCATED (max_states hit; bounds too large)";
  for (const GateDiagnostic& d : diagnostics)
    os << "\n  " << d.message
       << (d.card >= 0 ? " [card " + std::to_string(d.card) + "]" : "");
  return os.str();
}

GateModelResult check_gate_model(const GateModelConfig& cfg) {
  TFACC_CHECK_ARG_MSG(cfg.num_cards >= 1 && cfg.num_cards <= 4,
                      "num_cards must be in [1, 4], got " << cfg.num_cards);
  TFACC_CHECK_ARG_MSG(
      cfg.num_requests >= 0 && cfg.num_requests <= 4,
      "num_requests must be in [0, 4], got " << cfg.num_requests);
  TFACC_CHECK_ARG_MSG(
      cfg.slots_per_card >= 1,
      "slots_per_card must be >= 1, got " << cfg.slots_per_card);

  Explorer ex(cfg);
  State init;
  init.cards.resize(static_cast<std::size_t>(cfg.num_cards));
  init.slots.resize(static_cast<std::size_t>(cfg.num_cards));
  init.shards.resize(static_cast<std::size_t>(cfg.num_cards));
  // Scheduler::run pushes sources in order; RequestQueue deals them
  // round-robin across the card shards.
  for (int id = 0; id < cfg.num_requests; ++id)
    init.shards[static_cast<std::size_t>(id % cfg.num_cards)].push_back(id);

  ex.seen.insert(encode(init));
  ex.result.states = 1;
  dfs(init, ex, 0);
  return ex.result;
}

}  // namespace tfacc
