// Schedule verifier (PR 7): typed diagnostics for every ledger.
//
// The repo's core claim — paper-pinned cycle counts and deterministic,
// host-independent per-card ledgers — used to rest on one ad-hoc
// audit_schedule() returning an unstructured string, invoked only from
// tests that happened to call it. This subsystem treats any OpGraph plus a
// placed schedule (ScheduleStats / FusedRun) as a *program* and checks the
// full invariant set:
//
//   * coverage           — every op has exactly one interval and result time
//   * dependency legality — no op starts before its producers' results
//   * stationary operands — SA ops wait out their weight tile's load
//   * cold load          — the earliest SA op pays the run's initial load
//   * single occupancy   — no two intervals overlap on one resource
//   * prefetch chain     — WeightLoad single-residency and continuity
//                          (PR 5/6, including across the prefill/decode seam)
//   * program-order pins — schedule_mha (Algorithm 1) and the
//                          interleave_decode=false ablation issue in order
//   * lane rules         — chained sublayers of one fused lane never
//                          interleave their SA occupancies
//   * determinism        — a canonical FNV-1a hash of the ledger, compared
//                          across rebuilds / hosts
//
// Violations come back as typed Diagnostics (stable code, offending op ids,
// resource, cycle interval) instead of a string, so a failing CI run is
// actionable without a local repro. audit_schedule() (sim/op_graph.hpp) is
// now a thin compat shim over verify_schedule().
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/schedules.hpp"
#include "sim/op_graph.hpp"

namespace tfacc {

/// Stable diagnostic codes. tools/schedule_lint and the tamper tests key on
/// these; never renumber or reuse a retired code.
enum class DiagCode {
  kCoverage,        ///< SCHED-COVERAGE: stats don't cover every op
  kDuration,        ///< SCHED-DURATION: interval length != declared duration
  kResultTime,      ///< SCHED-RESULT: result time != interval end + latency
  kDependency,      ///< SCHED-DEP: op starts before a producer's result
  kStationaryLoad,  ///< SCHED-WLOAD: SA op outruns its weight tile's load
  kColdLoad,        ///< SCHED-COLD: first SA op skips the run's cold load
  kOverlap,         ///< SCHED-OVERLAP: two intervals share a resource
  kPrefetchChain,   ///< SCHED-CHAIN: WeightLoad residency/continuity broken
  kProgramOrder,    ///< SCHED-ORDER: program-order pin violated
  kLaneInterleave,  ///< SCHED-LANE: chained sublayers' SA work interleaves
  kHashMismatch,    ///< SCHED-HASH: ledger hash != the expected hash
};

/// The stable code string ("SCHED-DEP", ...), as printed by schedule_lint.
const char* diag_code_name(DiagCode code);

/// One verifier finding. `message` is fully formatted and always names the
/// code, the offending op id(s) and label(s), the resource, and the cycle
/// interval, so CI output alone pinpoints the violation.
struct Diagnostic {
  DiagCode code = DiagCode::kCoverage;
  int op = -1;     ///< offending op id (-1 when not op-specific)
  int other = -1;  ///< peer op id (dep / overlap partner; -1 when none)
  OpResource resource = OpResource::kSa;
  Cycle begin = 0;  ///< offending cycle interval [begin, end)
  Cycle end = 0;
  std::string message;
};

struct VerifyOptions {
  /// The schedule claims IssuePolicy::kProgramOrder (schedule_mha, or any
  /// flow under the interleave_decode=false ablation): per-resource issue
  /// order must follow op insertion order.
  bool program_order = false;
  /// Expected canonical ledger hash from a previous build of the same
  /// shapes (0 = don't check). A mismatch is a determinism violation: the
  /// per-card ledgers must be identical on any host.
  std::uint64_t expect_hash = 0;
};

/// Verification outcome: all diagnostics (in deterministic order, never just
/// the first) plus the ledger's canonical hash.
struct VerifyResult {
  std::vector<Diagnostic> diags;
  std::uint64_t hash = 0;

  bool ok() const { return diags.empty(); }
  /// All messages, newline-joined ("" when ok).
  std::string to_string() const;
};

/// Canonical determinism hash of a placed schedule: FNV-1a over every op's
/// (resource, label, interval, result time) in op order, plus the load
/// latency. Identical graphs placed identically hash identically on any
/// host; any reordering, shift, or relabeling changes it.
std::uint64_t ledger_hash(const OpGraph& g, const ScheduleStats& st);

/// Check the full invariant set of one placed schedule.
VerifyResult verify_schedule(const OpGraph& g, const ScheduleStats& st,
                             const VerifyOptions& opts = {});

/// Fused-ledger variant: verify_schedule plus the lane rules (chained
/// sublayers of one lane must not interleave their SA occupancies — the
/// residual stream passes through each sublayer's LayerNorm).
VerifyResult verify_fused(const FusedRun& run, const VerifyOptions& opts = {});

}  // namespace tfacc
