#include "analysis/verifier.hpp"

#include <algorithm>
#include <sstream>

#include "common/check.hpp"

namespace tfacc {

const char* diag_code_name(DiagCode code) {
  switch (code) {
    case DiagCode::kCoverage:
      return "SCHED-COVERAGE";
    case DiagCode::kDuration:
      return "SCHED-DURATION";
    case DiagCode::kResultTime:
      return "SCHED-RESULT";
    case DiagCode::kDependency:
      return "SCHED-DEP";
    case DiagCode::kStationaryLoad:
      return "SCHED-WLOAD";
    case DiagCode::kColdLoad:
      return "SCHED-COLD";
    case DiagCode::kOverlap:
      return "SCHED-OVERLAP";
    case DiagCode::kPrefetchChain:
      return "SCHED-CHAIN";
    case DiagCode::kProgramOrder:
      return "SCHED-ORDER";
    case DiagCode::kLaneInterleave:
      return "SCHED-LANE";
    case DiagCode::kHashMismatch:
      return "SCHED-HASH";
  }
  TFACC_CHECK(false);
  return "";
}

std::string VerifyResult::to_string() const {
  std::string out;
  for (const Diagnostic& d : diags) {
    if (!out.empty()) out += '\n';
    out += d.message;
  }
  return out;
}

std::uint64_t ledger_hash(const OpGraph& g, const ScheduleStats& st) {
  // FNV-1a 64. Mixing every per-op field in op order makes the hash
  // canonical: two ledgers hash equal iff every reservation (placement,
  // shape, and label) is identical.
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix_byte = [&h](unsigned char b) {
    h ^= b;
    h *= 1099511628211ULL;
  };
  const auto mix_u64 = [&](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) mix_byte(static_cast<unsigned char>(v >> (8 * i)));
  };
  const auto mix_str = [&](const std::string& s) {
    mix_u64(s.size());
    for (const char c : s) mix_byte(static_cast<unsigned char>(c));
  };

  const std::vector<OpNode>& ops = g.ops();
  const std::size_t n =
      std::min({ops.size(), st.intervals.size(), st.result_ready.size()});
  mix_u64(n);
  mix_u64(static_cast<std::uint64_t>(st.weight_load_cycles));
  for (std::size_t i = 0; i < n; ++i) {
    mix_u64(static_cast<std::uint64_t>(ops[i].resource));
    mix_str(ops[i].label);
    mix_u64(static_cast<std::uint64_t>(st.intervals[i].start));
    mix_u64(static_cast<std::uint64_t>(st.intervals[i].end));
    mix_u64(static_cast<std::uint64_t>(st.result_ready[i]));
  }
  return h;
}

namespace {

/// "op 12 (head1.AV)" — every diagnostic names ops this way.
std::string op_ref(const OpGraph& g, int id) {
  std::ostringstream os;
  os << "op " << id;
  if (id >= 0 && id < g.size())
    os << " (" << g.ops()[static_cast<std::size_t>(id)].label << ")";
  return os.str();
}

std::string interval_ref(Cycle begin, Cycle end) {
  std::ostringstream os;
  os << "[" << begin << "," << end << ")";
  return os.str();
}

/// Central diagnostic factory: every message leads with the stable code and
/// includes op id, resource name, and the offending cycle interval.
void emit(VerifyResult& res, const OpGraph& g, DiagCode code, int op,
          int other, OpResource resource, Cycle begin, Cycle end,
          const std::string& detail) {
  Diagnostic d;
  d.code = code;
  d.op = op;
  d.other = other;
  d.resource = resource;
  d.begin = begin;
  d.end = end;
  std::ostringstream os;
  os << "[" << diag_code_name(code) << "] ";
  if (op >= 0)
    os << op_ref(g, op) << " on " << op_resource_name(resource) << " @ "
       << interval_ref(begin, end) << ": ";
  os << detail;
  d.message = os.str();
  res.diags.push_back(std::move(d));
}

/// Earliest-starting SA op that lists `load` among its deps (the op whose
/// issue consumes the prefetched tile), or -1 when none exists.
int earliest_sa_consumer(const OpGraph& g, const ScheduleStats& st,
                         int load) {
  const std::vector<OpNode>& ops = g.ops();
  int best = -1;
  for (int i = 0; i < g.size(); ++i) {
    const OpNode& op = ops[static_cast<std::size_t>(i)];
    if (op.resource != OpResource::kSa) continue;
    if (std::find(op.deps.begin(), op.deps.end(), load) == op.deps.end())
      continue;
    if (best < 0 || st.intervals[static_cast<std::size_t>(i)].start <
                        st.intervals[static_cast<std::size_t>(best)].start)
      best = i;
  }
  return best;
}

}  // namespace

VerifyResult verify_schedule(const OpGraph& g, const ScheduleStats& st,
                             const VerifyOptions& opts) {
  VerifyResult res;
  const std::vector<OpNode>& ops = g.ops();
  const std::size_t n = ops.size();

  if (st.intervals.size() != n || st.result_ready.size() != n) {
    std::ostringstream os;
    os << "schedule covers " << st.intervals.size() << " intervals and "
       << st.result_ready.size() << " result times for " << n << " ops";
    emit(res, g, DiagCode::kCoverage, -1, -1, OpResource::kSa, 0, 0,
         os.str());
    return res;  // per-op checks would index out of bounds
  }
  res.hash = ledger_hash(g, st);

  // --- Per-op checks: shape, result bookkeeping, data and weight deps ------
  for (std::size_t i = 0; i < n; ++i) {
    const OpNode& op = ops[i];
    const Interval& iv = st.intervals[i];
    const int id = static_cast<int>(i);
    if (iv.duration() != op.duration) {
      std::ostringstream os;
      os << "reserved for " << iv.duration() << " cycles, declared "
         << op.duration;
      emit(res, g, DiagCode::kDuration, id, -1, op.resource, iv.start, iv.end,
           os.str());
    }
    if (st.result_ready[i] != iv.end + op.result_latency) {
      std::ostringstream os;
      os << "result time " << st.result_ready[i]
         << " inconsistent with interval end " << iv.end << " + latency "
         << op.result_latency;
      emit(res, g, DiagCode::kResultTime, id, -1, op.resource, iv.start,
           iv.end, os.str());
    }
    for (const int d : op.deps) {
      if (iv.start >= st.result_ready[static_cast<std::size_t>(d)]) continue;
      std::ostringstream os;
      os << "starts before dep " << op_ref(g, d) << " result at "
         << st.result_ready[static_cast<std::size_t>(d)];
      emit(res, g, DiagCode::kDependency, id, d, op.resource, iv.start,
           iv.end, os.str());
    }
    if (op.weight_dep >= 0 &&
        iv.start <
            st.result_ready[static_cast<std::size_t>(op.weight_dep)] +
                st.weight_load_cycles) {
      std::ostringstream os;
      os << "starts before its stationary operand " << op_ref(g, op.weight_dep)
         << " finishes loading at "
         << st.result_ready[static_cast<std::size_t>(op.weight_dep)] +
                st.weight_load_cycles;
      emit(res, g, DiagCode::kStationaryLoad, id, op.weight_dep, op.resource,
           iv.start, iv.end, os.str());
    }
  }

  // --- Cold load: the run's earliest SA op pays the initial tile load ------
  // (the weight memory cannot have prefetched anything before the run began,
  // unless the ledger carries an explicit WeightLoad op for that tile).
  bool has_weight_loads = false;
  for (const OpNode& op : ops)
    if (op.resource == OpResource::kWeightLoad) has_weight_loads = true;
  if (!has_weight_loads) {
    std::size_t first_sa = n;
    for (std::size_t i = 0; i < n; ++i) {
      if (ops[i].resource != OpResource::kSa) continue;
      if (first_sa == n ||
          st.intervals[i].start < st.intervals[first_sa].start)
        first_sa = i;
    }
    if (first_sa != n && st.intervals[first_sa].start < st.weight_load_cycles) {
      std::ostringstream os;
      os << "starts before the run's cold " << st.weight_load_cycles
         << "-cycle weight load completes";
      emit(res, g, DiagCode::kColdLoad, static_cast<int>(first_sa), -1,
           OpResource::kSa, st.intervals[first_sa].start,
           st.intervals[first_sa].end, os.str());
    }
  }

  // --- Single occupancy: no two intervals overlap on the same resource -----
  for (const OpResource r :
       {OpResource::kSa, OpResource::kSoftmax, OpResource::kLayerNorm,
        OpResource::kWeightLoad}) {
    std::vector<std::size_t> ids;
    for (std::size_t i = 0; i < n; ++i)
      if (ops[i].resource == r) ids.push_back(i);
    std::sort(ids.begin(), ids.end(), [&](std::size_t a, std::size_t b) {
      return st.intervals[a].start != st.intervals[b].start
                 ? st.intervals[a].start < st.intervals[b].start
                 : a < b;
    });
    for (std::size_t k = 1; k < ids.size(); ++k) {
      if (st.intervals[ids[k]].start >= st.intervals[ids[k - 1]].end) continue;
      std::ostringstream os;
      os << "overlaps " << op_ref(g, static_cast<int>(ids[k - 1])) << " @ "
         << interval_ref(st.intervals[ids[k - 1]].start,
                         st.intervals[ids[k - 1]].end);
      emit(res, g, DiagCode::kOverlap, static_cast<int>(ids[k]),
           static_cast<int>(ids[k - 1]), r, st.intervals[ids[k]].start,
           st.intervals[ids[k]].end, os.str());
    }
  }

  // --- Prefetch chain (fused ledgers): single residency and continuity -----
  // The tile buffer behind the WeightLoad port holds ONE pending tile.
  // Structurally: every load must have an SA consumer (a dangling load would
  // claim the buffer forever), every load but the earliest must be gated on
  // prior tile consumption, and no load may start while the previous load's
  // tile still sits unconsumed in the buffer.
  if (has_weight_loads) {
    std::vector<std::size_t> loads;
    for (std::size_t i = 0; i < n; ++i)
      if (ops[i].resource == OpResource::kWeightLoad) loads.push_back(i);
    std::sort(loads.begin(), loads.end(), [&](std::size_t a, std::size_t b) {
      return st.intervals[a].start != st.intervals[b].start
                 ? st.intervals[a].start < st.intervals[b].start
                 : a < b;
    });
    int prev_consumer = -1;
    for (std::size_t k = 0; k < loads.size(); ++k) {
      const int id = static_cast<int>(loads[k]);
      const Interval& iv = st.intervals[loads[k]];
      const int consumer = earliest_sa_consumer(g, st, id);
      if (consumer < 0)
        emit(res, g, DiagCode::kPrefetchChain, id, -1, OpResource::kWeightLoad,
             iv.start, iv.end,
             "no SA op consumes this tile — the prefetch chain is broken");
      if (k > 0) {
        if (ops[loads[k]].deps.empty())
          emit(res, g, DiagCode::kPrefetchChain, id, -1,
               OpResource::kWeightLoad, iv.start, iv.end,
               "load is not gated on any prior tile consumption "
               "(single-residency buffer)");
        if (prev_consumer >= 0 &&
            iv.start <
                st.intervals[static_cast<std::size_t>(prev_consumer)].start) {
          std::ostringstream os;
          os << "starts while the previous tile is still pending — its "
             << "consumer " << op_ref(g, prev_consumer) << " only issues at "
             << st.intervals[static_cast<std::size_t>(prev_consumer)].start;
          emit(res, g, DiagCode::kPrefetchChain, id, prev_consumer,
               OpResource::kWeightLoad, iv.start, iv.end, os.str());
        }
      }
      prev_consumer = consumer;
    }
  }

  // --- Program-order pin (Algorithm 1 / ablation): per-resource issue order
  // must follow op insertion order. A strict start-time inversion between a
  // higher- and lower-id op on one resource proves reordering.
  if (opts.program_order) {
    for (const OpResource r :
         {OpResource::kSa, OpResource::kSoftmax, OpResource::kLayerNorm,
          OpResource::kWeightLoad}) {
      std::vector<std::size_t> ids;
      for (std::size_t i = 0; i < n; ++i)
        if (ops[i].resource == r) ids.push_back(i);
      std::sort(ids.begin(), ids.end(), [&](std::size_t a, std::size_t b) {
        return st.intervals[a].start != st.intervals[b].start
                   ? st.intervals[a].start < st.intervals[b].start
                   : a < b;
      });
      for (std::size_t k = 1; k < ids.size(); ++k) {
        if (ids[k] >= ids[k - 1]) continue;
        std::ostringstream os;
        os << "issued before " << op_ref(g, static_cast<int>(ids[k - 1]))
           << " @ "
           << interval_ref(st.intervals[ids[k - 1]].start,
                           st.intervals[ids[k - 1]].end)
           << " despite the program-order pin";
        emit(res, g, DiagCode::kProgramOrder, static_cast<int>(ids[k]),
             static_cast<int>(ids[k - 1]), r, st.intervals[ids[k]].start,
             st.intervals[ids[k]].end, os.str());
      }
    }
  }

  // --- Determinism hash ----------------------------------------------------
  if (opts.expect_hash != 0 && opts.expect_hash != res.hash) {
    std::ostringstream os;
    os << "ledger hash 0x" << std::hex << res.hash << " != expected 0x"
       << opts.expect_hash << std::dec
       << " — the schedule is not deterministic across rebuilds";
    emit(res, g, DiagCode::kHashMismatch, -1, -1, OpResource::kSa, 0, 0,
         os.str());
  }
  return res;
}

VerifyResult verify_fused(const FusedRun& run, const VerifyOptions& opts) {
  VerifyResult res = verify_schedule(run.graph, run.stats, opts);

  // Lane non-interleaving: within one chained lane the residual stream
  // passes through each sublayer's LayerNorm, so sublayer k+1's SA work
  // starting before sublayer k's SA work has drained means the chain edge
  // was dropped. Lanes are mutually independent — cross-lane interleaving
  // is exactly what the mixed prefill/decode step is for.
  for (std::size_t k = 1; k < run.segments.size(); ++k) {
    const FusedSegment& prev = run.segments[k - 1];
    const FusedSegment& seg = run.segments[k];
    if (seg.lane != prev.lane) continue;
    if (seg.sa_start >= prev.sa_end) continue;
    std::ostringstream os;
    os << "[" << diag_code_name(DiagCode::kLaneInterleave) << "] sublayer '"
       << seg.label << "' SA work @ "
       << "[" << seg.sa_start << "," << seg.sa_end << ")"
       << " interleaves with chained predecessor '" << prev.label << "' @ "
       << "[" << prev.sa_start << "," << prev.sa_end << ") in lane "
       << seg.lane;
    Diagnostic d;
    d.code = DiagCode::kLaneInterleave;
    d.resource = OpResource::kSa;
    d.begin = seg.sa_start;
    d.end = seg.sa_end;
    d.message = os.str();
    res.diags.push_back(std::move(d));
  }
  return res;
}

// Compat shim (declared in sim/op_graph.hpp): the pre-PR-7 string audit,
// now answering from the typed verifier. "" when legal, else the first
// diagnostic's message. New code should call verify_schedule directly.
std::string audit_schedule(const OpGraph& g, const ScheduleStats& st) {
  const VerifyResult res = verify_schedule(g, st);
  return res.ok() ? "" : res.diags.front().message;
}

}  // namespace tfacc
