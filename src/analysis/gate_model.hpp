// Exhaustive model checker for the AdmissionGate reservation protocol
// (PR 10 tentpole, pillar 2).
//
// Clang's -Wthread-safety proves the *lock discipline* of the serve stack
// (every slot access under mu_, see serve/admission_gate.hpp), but not the
// *protocol*: that pops resolve in global (key, id) order, that no
// interleaving deadlocks, that no grant is lost or duplicated. TSan can
// only sample interleavings the host scheduler happens to produce. This
// module closes that gap with a small-scope exhaustive search: an
// abstracted replica of the card step machine (Scheduler::CardRun, pack
// mode, burst arrivals) driving a faithful replica of the gate
// (reserve / try_consume / release / publish / retire over
// kIdle/kPending/kGranted/kHeld), explored by memoized DFS over EVERY
// interleaving of gate operations for small farms (num_cards <= 4,
// num_requests <= 4).
//
// The abstraction is sound for the protocol because the gate mutex
// serializes all shared state: the only scheduling choices that matter are
// which card performs its next gate operation, so one DFS transition =
// "card c runs until its next gate op (inclusive)". Card-local compute is
// deterministic and invisible to siblings. A card whose try_consume comes
// back pending parks (WorkerPool) and is re-enabled only by the on_grant
// unpark — modeled exactly, so a lost wakeup shows up as a reachable
// deadlock, not a hang.
//
// Invariants checked (stable codes, tools/gate_model_check keys on them):
//   GATE-ORDER     pops resolve in non-decreasing (key, id) order, and a
//                  grant only ever goes to the global-minimum blocking pair
//   GATE-KEY       every pop executes at the card's frozen step-top
//                  snapshot key, never at a live (host-dependent) clock
//   GATE-DEADLOCK  some interleaving reaches a state with live cards but
//                  no enabled transition (e.g. a lost unpark)
//   GATE-LOST      at quiescence a request was popped but never admitted
//                  (or still sits in the queue after every card retired)
//   GATE-DUP       at quiescence some request was admitted more than once
//   GATE-NONDET    two interleavings reach different terminal states
//                  (admission assignment or per-card clocks differ) — the
//                  determinism claim the thread-stress test samples,
//                  proven here over the whole space
//
// `--tamper` (GateTamper) seeds one protocol bug per mode and the checker
// must catch each with its precise code — proving the wall can fail.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/timeline.hpp"

namespace tfacc {

/// Stable diagnostic codes; never renumber or reuse a retired code.
enum class GateDiagCode {
  kOrder,     ///< GATE-ORDER: pop order / minimality violated
  kKey,       ///< GATE-KEY: pop executed at a non-frozen key
  kDeadlock,  ///< GATE-DEADLOCK: reachable state with no enabled card
  kLost,      ///< GATE-LOST: request never admitted at quiescence
  kDup,       ///< GATE-DUP: request admitted more than once
  kNondet,    ///< GATE-NONDET: terminal state differs across interleavings
};

/// The stable code string ("GATE-ORDER", ...), as printed by
/// gate_model_check.
const char* gate_diag_code_name(GateDiagCode code);

/// One model-checker finding. `message` names the code, the card, the keys
/// involved and the interleaving depth, so a CI failure is actionable
/// without a local repro.
struct GateDiagnostic {
  GateDiagCode code = GateDiagCode::kOrder;
  int card = -1;  ///< offending card (-1 when not card-specific)
  std::string message;
};

/// Seeded protocol bugs for the --tamper self-test. Each mode must be
/// caught by exactly the code documented here (tests/test_gate_model.cpp
/// pins the pairing).
enum class GateTamper {
  kNone,         ///< faithful protocol — must verify clean
  kFrozenKey,    ///< reserve posts the live clock, not the frozen
                 ///  step-top snapshot            -> GATE-KEY
  kLostUnpark,   ///< on_grant drops the WorkerPool unpark -> GATE-DEADLOCK
  kDoubleGrant,  ///< first pop leaves the request in the queue -> GATE-DUP
  kDropGrant,    ///< first popped request is discarded (reported as
                 ///  drained)                      -> GATE-LOST
  kNonMinGrant,  ///< scan grants the maximal pending pair instead of the
                 ///  global minimum               -> GATE-ORDER
};

const char* gate_tamper_name(GateTamper tamper);

/// One model configuration: a burst of `num_requests` requests (ids
/// 0..M-1, all arrived at t=0, decode lengths 1 + id % 2 so finishes are
/// ragged) over `num_cards` cards with `slots_per_card` hypothesis slots.
struct GateModelConfig {
  int num_cards = 2;
  int num_requests = 2;
  int slots_per_card = 2;
  /// false: accelerator keys (admissions charge nothing; every pop of a
  /// drain keys at the step-top snapshot). true: functional-proxy keys
  /// (each admission charges one tick; successive pops key one apart) —
  /// both variants ship in Scheduler::CardRun::admission_key.
  bool proxy_keys = false;
  GateTamper tamper = GateTamper::kNone;
  /// Explosion guard: exploring past this many distinct states aborts the
  /// search with truncated=true (a FAILURE — bounds below must fit).
  long long max_states = 4'000'000;
};

struct GateModelResult {
  std::vector<GateDiagnostic> diagnostics;  ///< first violation found
  long long states = 0;       ///< distinct states visited
  long long transitions = 0;  ///< DFS edges executed
  long long terminals = 0;    ///< distinct quiescent states reached
  long long grants = 0;       ///< grant events across all explored edges
  /// Canonical serialization of the unique terminal state (admission
  /// assignment + per-card clocks); empty until a terminal is reached.
  std::string terminal_fingerprint;
  bool truncated = false;  ///< hit max_states before exhausting the space

  bool ok() const { return diagnostics.empty() && !truncated; }
  std::string to_string() const;
};

/// Exhaustively explore `cfg`. Deterministic: same config, same result
/// (including states/transitions counts — pinned by the tests).
GateModelResult check_gate_model(const GateModelConfig& cfg);

}  // namespace tfacc
