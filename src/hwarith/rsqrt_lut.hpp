// The "x^(-0.5)" lookup table of the LayerNorm module (Section IV-B: "The
// x^(-0.5) unit is implemented with a lookup table in our experiment").
//
// The operand is the integer variance proxy V = n·ΣG² − (ΣG)², a non-negative
// 64-bit value. It is normalized to m·2^(2k) with m ∈ [1,4); rsqrt(m) comes
// from a 768-entry Q.15 ROM (8 fractional index bits, no interpolation) and
// the exponent is folded back as a shift. This is exactly the BRAM-backed
// structure Table II charges to the LayerNorm module.
#pragma once

#include <cstdint>

namespace tfacc::hw {

class RsqrtLut {
 public:
  /// Number of fractional index bits of the mantissa ROM.
  static constexpr int kIndexFracBits = 8;
  /// ROM entries cover m ∈ [1, 4) in steps of 2^-8.
  static constexpr int kEntries = 3 << kIndexFracBits;
  /// Output fraction bits of the ROM values.
  static constexpr int kOutFracBits = 15;

  RsqrtLut();

  /// Result of a lookup: rsqrt(v) = mantissa · 2^(-kOutFracBits - shift).
  struct Result {
    std::int32_t mantissa = 0;  ///< Q.15 value of rsqrt(m), in (2^14, 2^15]
    int shift = 0;              ///< additional right shift (= k, may be <0)
  };

  /// Look up rsqrt of a positive 64-bit integer.
  Result lookup(std::int64_t v) const;

  /// Convenience: multiply x by rsqrt(v) and shift into `out_frac_bits`
  /// fixed point with rounding: round(x / sqrt(v) * 2^out_frac_bits).
  std::int64_t mul_rsqrt(std::int64_t x, std::int64_t v,
                         int out_frac_bits) const;

  /// ROM size in bits (for the resource model).
  static constexpr int rom_bits() { return kEntries * 16; }

 private:
  std::int32_t rom_[kEntries];
};

/// Process-wide ROM instance (contents are constant).
const RsqrtLut& rsqrt_lut();

}  // namespace tfacc::hw
