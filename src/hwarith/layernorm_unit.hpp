// Bit-accurate LayerNorm datapath (Fig. 8 of the paper).
//
// The module receives one row of the pre-norm matrix G as INT16 values
// (real = raw · g_scale) and produces INT8 outputs (real = raw · out_scale).
//
// Normalization is scale-invariant, so no input scale enters the datapath:
//
//   normalized_j = (n·G_j − ΣG) / sqrt(n·ΣG² − (ΣG)²)
//
// which equals (G_j − E) / sqrt(var) exactly (both numerator and denominator
// are multiplied by n). The identity var = E[G²] − E[G]² is "step two" of
// Fig. 7 — ΣG and ΣG² are accumulated in parallel while G streams in, and
// only the rsqrt lookup plus the γ/β stage remain afterwards.
#pragma once

#include <cstdint>
#include <vector>

#include "reference/weights.hpp"
#include "tensor/matrix.hpp"

namespace tfacc::hw {

class LayerNormUnit {
 public:
  /// Fraction bits of the normalized value and of the γ multiplier.
  static constexpr int kNormFracBits = 12;

  /// Default-constructed unit is empty (n() == 0) and must not be used
  /// before being replaced via build().
  LayerNormUnit() = default;

  /// Fold FP32 γ/β and the output scale into integer multipliers.
  /// `n` is the row width (d_model).
  static LayerNormUnit build(const LayerNormParams& params, float out_scale);

  int n() const { return n_; }
  float out_scale() const { return out_scale_; }

  /// Normalize one row of n INT16 values into n INT8 outputs.
  void row(const std::int16_t* g, std::int8_t* out) const;

  /// Matrix convenience wrapper.
  Matrix<std::int8_t> operator()(const MatI16& g) const;

  /// Row statistics exposed for the accelerator's streaming accumulators:
  /// given ΣG and ΣG² (accumulated online) and the row, finish the output.
  /// Matches row() exactly; lets the core module model Fig. 7 step 1.
  void finish_row(const std::int16_t* g, std::int64_t sum, std::int64_t sumsq,
                  std::int8_t* out) const;

 private:
  int n_ = 0;
  float out_scale_ = 1.0f;
  std::vector<std::int32_t> gq_;  // Q.12 of γ_j / out_scale
  std::vector<std::int32_t> bq_;  // round(β_j / out_scale)
};

}  // namespace tfacc::hw
