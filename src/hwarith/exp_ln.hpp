// Shift-add EXP and LN units (Fig. 6 of the paper; detailed architecture per
// Wang et al., "A high-speed and low-complexity architecture for softmax
// function in deep learning", APCCAS 2018 [13]).
//
// Both units operate on Q21.10 fixed point (kFracBits = 10) and use only
// shifts, adds and small constant tables held in registers — no general
// multipliers, no BRAM lookup tables, matching the paper's claim.
//
//   exp:  e^x = 2^(x·log2 e); x·log2 e by shift-add, 2^frac by a 4-segment
//         piecewise-linear fit with dyadic slopes.
//   ln:   ln v = e·ln 2 + ln(1+m) after normalizing v = (1+m)·2^e; ln(1+m) by
//         a 4-segment piecewise-linear fit with dyadic slopes.
#pragma once

#include <cstdint>

namespace tfacc::hw {

/// Fraction bits of the softmax datapath fixed-point format.
inline constexpr int kSoftmaxFracBits = 10;
inline constexpr std::int32_t kSoftmaxOne = 1 << kSoftmaxFracBits;

/// Most negative exponent argument the EXP unit resolves; anything below
/// yields 0 (exp(-16) < 2^-23, far below INT8 resolution).
inline constexpr std::int32_t kExpMinArg = -16 * kSoftmaxOne;

/// Hardware EXP unit: y = exp(x) for x <= 0, in Q.10 fixed point.
/// Input is clamped to [kExpMinArg, 0]. Output is in [0, kSoftmaxOne].
std::int32_t exp_unit_q10(std::int32_t x_q10);

/// Hardware LN unit: y = ln(v) for v >= 1 (raw >= kSoftmaxOne), Q.10 in and
/// out. Used on the softmax denominator, which always satisfies v >= 1
/// because the maximum element contributes exp(0) = 1.
std::int32_t ln_unit_q10(std::int64_t v_q10);

/// Piecewise-linear resolution of the 2^f and ln(1+u) fits, for the
/// accuracy-vs-hardware-cost ablation. The shipped datapath (above) is the
/// 4-segment dyadic-slope design; these variants use exact segment anchors
/// with Q.10 secant slopes (a small slope ROM + one multiplier in hardware).
enum class PwlResolution { kTwo = 2, kFour = 4, kEight = 8, kSixteen = 16 };

std::int32_t exp_unit_q10(std::int32_t x_q10, PwlResolution res);
std::int32_t ln_unit_q10(std::int64_t v_q10, PwlResolution res);

/// Float helpers for accuracy studies (same algorithm, double interface).
double exp_unit(double x);
double ln_unit(double v);

}  // namespace tfacc::hw
