#include "hwarith/rsqrt_lut.hpp"

#include <bit>
#include <cmath>

#include "common/check.hpp"
#include "common/fixed_point.hpp"

// std::bit_width below models the exponent extractor; it needs the C++20
// <bit> library. Fail here with a readable message on older toolchains
// (the macro is undefined pre-C++20, so guard before the static_assert).
#ifndef __cpp_lib_bitops
#error "tfacc requires C++20 bit operations (std::bit_width); build with -std=c++20 or newer"
#else
static_assert(__cpp_lib_bitops >= 201907L,
              "tfacc requires C++20 bit operations (std::bit_width); "
              "build with -std=c++20 or newer");
#endif

namespace tfacc::hw {

RsqrtLut::RsqrtLut() {
  for (int i = 0; i < kEntries; ++i) {
    // Midpoint of the bucket minimizes the worst-case step error.
    const double m = 1.0 + (i + 0.5) / (1 << kIndexFracBits);
    rom_[i] = static_cast<std::int32_t>(
        std::lround((1 << kOutFracBits) / std::sqrt(m)));
  }
}

RsqrtLut::Result RsqrtLut::lookup(std::int64_t v) const {
  TFACC_CHECK_ARG_MSG(v > 0, "rsqrt of " << v);
  const int e = std::bit_width(static_cast<std::uint64_t>(v)) - 1;
  const int k = e / 2;         // v = m · 2^(2k), m ∈ [1, 4)
  const int norm = 2 * k - kIndexFracBits;
  std::int64_t m_q8 = norm >= 0 ? (v >> norm) : (v << -norm);
  // Truncation keeps m_q8 in [256, 1024); defensively clamp the index.
  int idx = static_cast<int>(m_q8) - (1 << kIndexFracBits);
  idx = clamp(idx, 0, kEntries - 1);
  return Result{rom_[idx], k};
}

std::int64_t RsqrtLut::mul_rsqrt(std::int64_t x, std::int64_t v,
                                 int out_frac_bits) const {
  const Result r = lookup(v);
  return rounding_shift_right(x * r.mantissa,
                              kOutFracBits + r.shift - out_frac_bits);
}

const RsqrtLut& rsqrt_lut() {
  static const RsqrtLut lut;
  return lut;
}

}  // namespace tfacc::hw
