#include "hwarith/layernorm_unit.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/fixed_point.hpp"
#include "hwarith/rsqrt_lut.hpp"
#include "tensor/kernels.hpp"

namespace tfacc::hw {

LayerNormUnit LayerNormUnit::build(const LayerNormParams& params,
                                   float out_scale) {
  TFACC_CHECK_ARG(out_scale > 0.0f);
  TFACC_CHECK_ARG(params.gamma.size() == params.beta.size());
  TFACC_CHECK_ARG(!params.gamma.empty());
  LayerNormUnit u;
  u.n_ = static_cast<int>(params.gamma.size());
  u.out_scale_ = out_scale;
  u.gq_.resize(params.gamma.size());
  u.bq_.resize(params.beta.size());
  for (std::size_t j = 0; j < params.gamma.size(); ++j) {
    u.gq_[j] = static_cast<std::int32_t>(std::lround(
        static_cast<double>(params.gamma[j]) / out_scale *
        (1 << kNormFracBits)));
    u.bq_[j] = static_cast<std::int32_t>(
        std::lround(static_cast<double>(params.beta[j]) / out_scale));
  }
  return u;
}

void LayerNormUnit::finish_row(const std::int16_t* g, std::int64_t sum,
                               std::int64_t sumsq, std::int8_t* out) const {
  // Integer variance proxy V = n·ΣG² − (ΣG)² = n²·var ≥ 0.
  const std::int64_t v = static_cast<std::int64_t>(n_) * sumsq - sum * sum;
  TFACC_CHECK_MSG(v >= 0, "negative variance proxy " << v);

  if (v == 0) {
    // Constant row: Eq. 6 with ε makes the normalized value 0, output β.
    for (int j = 0; j < n_; ++j)
      out[j] = saturate_i8(bq_[static_cast<std::size_t>(j)]);
    return;
  }

  // One ROM access per row, like the hardware: V is row-constant, so the
  // lookup is hoisted and only the multiply/shift runs per element
  // (bit-identical to calling mul_rsqrt per element). The γ/β loop runs
  // through the dispatched kernel (TFACC_KERNEL) — every kind is exact.
  const RsqrtLut::Result rs = rsqrt_lut().lookup(v);
  const int norm_shift = RsqrtLut::kOutFracBits + rs.shift - kNormFracBits;
  kernels::layernorm_finish_into(g, n_, sum, rs.mantissa, norm_shift,
                                 2 * kNormFracBits, gq_.data(), bq_.data(),
                                 out);
}

void LayerNormUnit::row(const std::int16_t* g, std::int8_t* out) const {
  std::int64_t sum = 0, sumsq = 0;
  kernels::layernorm_stats(g, n_, &sum, &sumsq);
  finish_row(g, sum, sumsq, out);
}

Matrix<std::int8_t> LayerNormUnit::operator()(const MatI16& g) const {
  TFACC_CHECK_ARG_MSG(g.cols() == n_, "row width " << g.cols() << " vs " << n_);
  Matrix<std::int8_t> out(g.rows(), g.cols());
  for (int r = 0; r < g.rows(); ++r) row(g.row(r), out.row(r));
  return out;
}

}  // namespace tfacc::hw
