// The scaled masked-softmax datapath of Fig. 6, bit-accurate.
//
// The module receives one row of the score matrix D = Q_i·K_iᵀ as INT32
// accumulators (real value = raw · d_scale), applies the /8 scaling (">>3" in
// Fig. 6 — √d_k = 8), masks illegal positions, and produces INT8
// probabilities with scale 1/127 using the log-sum-exp formulation (Eq. 5):
//
//   stage 1: running max of D over unmasked entries
//   stage 2: y_j = EXP((D_j − D_max)·scale/8), SUM = Σ y_j
//   stage 3: L = LN(SUM)
//   stage 4: out_j = EXP((D_j − D_max)·scale/8 − L) → quantize to INT8
//
// No divider and no general multiplier appear anywhere on the path.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/fixed_point.hpp"
#include "hwarith/exp_ln.hpp"
#include "tensor/matrix.hpp"

namespace tfacc::hw {

/// Scale of the INT8 probability outputs (q = round(p * 127)).
inline constexpr float kProbScale = 1.0f / 127.0f;

/// Bit-accurate model of the paper's Softmax module.
class SoftmaxUnit {
 public:
  /// `d_scale` is the real value of one LSB of the INT32 score input
  /// (i.e. scale(Q_i) * scale(K_i)); the unit folds the /√d_k = /8 into its
  /// input conversion, mirroring the ">>3" of Fig. 6.
  explicit SoftmaxUnit(double d_scale);

  /// Ablation constructor: use the generic secant-slope PWL tables at the
  /// given resolution instead of the shipped 4-segment dyadic design.
  SoftmaxUnit(double d_scale, PwlResolution resolution);

  /// Process one row. `d` and `mask` have length n; mask 1 = illegal.
  /// Fully-masked rows produce all zeros.
  /// Reuses an internal scratch buffer (no allocation per row once warm),
  /// so one SoftmaxUnit must not process rows from multiple threads.
  void row(const std::int32_t* d, const std::uint8_t* mask, int n,
           std::int8_t* out) const;

  /// Matrix convenience wrapper: out(i,j) over all rows of `d`.
  Matrix<std::int8_t> operator()(const MatI32& d,
                                 const Matrix<std::uint8_t>& mask) const;

  /// The fixed-point conversion applied to (D − D_max); exposed for tests.
  const FixedPointScale& input_conversion() const { return to_q10_; }

 private:
  std::int32_t exp_fx(std::int32_t x) const;
  std::int32_t ln_fx(std::int64_t v) const;

  FixedPointScale to_q10_;  // d_scale/8, expressed in Q.10 LSBs
  std::optional<PwlResolution> resolution_;  // empty = shipped dyadic design
  // Per-row exp-argument scratch, hoisted out of row()'s hot path so the
  // attention inner loop is allocation-free. Pool-backed (tensor/arena.hpp)
  // so even a freshly constructed unit recycles a warm thread's buffer
  // instead of hitting the heap. Entries for masked columns are left stale;
  // every read in stage 4 is guarded by the same mask.
  mutable PoolVec<std::int32_t> x_q10_;
};

}  // namespace tfacc::hw
