#include "hwarith/exp_ln.hpp"

#include <bit>
#include <cmath>
#include <vector>

#include "common/check.hpp"
#include "common/fixed_point.hpp"

// std::bit_width below models the unit's leading-one detector; it needs the
// C++20 <bit> library. Fail here with a readable message on older toolchains
// (the macro is undefined pre-C++20, so guard before the static_assert).
#ifndef __cpp_lib_bitops
#error "tfacc requires C++20 bit operations (std::bit_width); build with -std=c++20 or newer"
#else
static_assert(__cpp_lib_bitops >= 201907L,
              "tfacc requires C++20 bit operations (std::bit_width); "
              "build with -std=c++20 or newer");
#endif

namespace tfacc::hw {

namespace {

// Piecewise-linear segment start values, Q.10, at f = 0, 1/4, 1/2, 3/4.
// pow2: 2^f; log1p: ln(1+f). Exact to the LSB so error never accumulates
// across segments.
constexpr std::int32_t kPow2Start[4] = {1024, 1218, 1448, 1722};
constexpr std::int32_t kLog1pStart[4] = {0, 228, 415, 573};

// Dyadic secant slopes, expressed as shift-add terms of the in-segment
// offset df ∈ [0, 256).
inline std::int32_t pow2_slope(int seg, std::int32_t df) {
  switch (seg) {
    case 0: return (df >> 1) + (df >> 2);          // 0.75   (true 0.757)
    case 1: return df - (df >> 3);                 // 0.875  (true 0.900)
    case 2: return df + (df >> 4);                 // 1.0625 (true 1.070)
    default: return df + (df >> 2);                // 1.25   (true 1.273)
  }
}

inline std::int32_t log1p_slope(int seg, std::int32_t du) {
  switch (seg) {
    case 0: return du - (du >> 3);                 // 0.875  (true 0.893)
    case 1: return (du >> 1) + (du >> 2);          // 0.75   (true 0.729)
    case 2: return (du >> 1) + (du >> 3);          // 0.625  (true 0.617)
    default: return (du >> 1) + (du >> 5);         // 0.53125 (true 0.534)
  }
}

// ln 2 in Q.10 (0.69336 vs true 0.69315).
constexpr std::int32_t kLn2Q10 = 710;

}  // namespace

std::int32_t exp_unit_q10(std::int32_t x_q10) {
  TFACC_CHECK_ARG_MSG(x_q10 <= 0, "EXP unit takes x <= 0, got " << x_q10);
  if (x_q10 <= kExpMinArg) return 0;

  // t = x * log2(e) by shift-add: 1 + 1/2 - 1/16 + 1/256 = 1.44140625.
  const std::int32_t t = x_q10 + (x_q10 >> 1) - (x_q10 >> 4) + (x_q10 >> 8);

  // Split into integer and fractional powers of two.
  const std::int32_t n = t >> kSoftmaxFracBits;  // floor, n <= 0
  const std::int32_t f = t - (n << kSoftmaxFracBits);  // [0, 1024)
  const int seg = f >> 8;
  const std::int32_t df = f & 0xFF;
  const std::int32_t frac_pow = kPow2Start[seg] + pow2_slope(seg, df);

  // y = 2^n * 2^f ; n <= 0 so this is a right shift.
  const int rshift = -n;
  if (rshift >= 31) return 0;
  return static_cast<std::int32_t>(
      rounding_shift_right(frac_pow, rshift));
}

std::int32_t ln_unit_q10(std::int64_t v_q10) {
  TFACC_CHECK_ARG_MSG(v_q10 >= kSoftmaxOne,
                      "LN unit takes v >= 1.0, got raw " << v_q10);
  // Normalize v = (1+u) * 2^e with the leading-one detector.
  const int e = std::bit_width(static_cast<std::uint64_t>(v_q10)) - 1;
  std::int32_t m;
  if (e >= kSoftmaxFracBits)
    m = static_cast<std::int32_t>(v_q10 >> (e - kSoftmaxFracBits));
  else
    m = static_cast<std::int32_t>(v_q10 << (kSoftmaxFracBits - e));
  const std::int32_t u = m - kSoftmaxOne;  // [0, 1024)
  const int seg = u >> 8;
  const std::int32_t du = u & 0xFF;
  const std::int32_t log1p = kLog1pStart[seg] + log1p_slope(seg, du);

  return (e - kSoftmaxFracBits) * kLn2Q10 + log1p;
}

namespace {

// Q.10 anchors/slopes of 2^f and ln(1+u) on [0,1) at a given segment count.
struct PwlTable {
  std::vector<std::int32_t> start;  // value at each segment start, Q.10
  std::vector<std::int32_t> slope;  // secant slope, Q.10
};

PwlTable make_pow2_table(int segments) {
  PwlTable t;
  for (int i = 0; i < segments; ++i) {
    const double f0 = static_cast<double>(i) / segments;
    const double f1 = static_cast<double>(i + 1) / segments;
    const double v0 = std::exp2(f0), v1 = std::exp2(f1);
    t.start.push_back(static_cast<std::int32_t>(std::lround(v0 * 1024)));
    t.slope.push_back(
        static_cast<std::int32_t>(std::lround((v1 - v0) / (f1 - f0) * 1024)));
  }
  return t;
}

PwlTable make_log1p_table(int segments) {
  PwlTable t;
  for (int i = 0; i < segments; ++i) {
    const double u0 = static_cast<double>(i) / segments;
    const double u1 = static_cast<double>(i + 1) / segments;
    const double v0 = std::log1p(u0), v1 = std::log1p(u1);
    t.start.push_back(static_cast<std::int32_t>(std::lround(v0 * 1024)));
    t.slope.push_back(
        static_cast<std::int32_t>(std::lround((v1 - v0) / (u1 - u0) * 1024)));
  }
  return t;
}

const PwlTable& pow2_table(PwlResolution res) {
  static const PwlTable t2 = make_pow2_table(2);
  static const PwlTable t4 = make_pow2_table(4);
  static const PwlTable t8 = make_pow2_table(8);
  static const PwlTable t16 = make_pow2_table(16);
  switch (res) {
    case PwlResolution::kTwo: return t2;
    case PwlResolution::kFour: return t4;
    case PwlResolution::kEight: return t8;
    case PwlResolution::kSixteen: return t16;
  }
  TFACC_CHECK(false);
  return t4;
}

const PwlTable& log1p_table(PwlResolution res) {
  static const PwlTable t2 = make_log1p_table(2);
  static const PwlTable t4 = make_log1p_table(4);
  static const PwlTable t8 = make_log1p_table(8);
  static const PwlTable t16 = make_log1p_table(16);
  switch (res) {
    case PwlResolution::kTwo: return t2;
    case PwlResolution::kFour: return t4;
    case PwlResolution::kEight: return t8;
    case PwlResolution::kSixteen: return t16;
  }
  TFACC_CHECK(false);
  return t4;
}

std::int32_t eval_pwl(const PwlTable& t, std::int32_t frac_q10) {
  const int segments = static_cast<int>(t.start.size());
  const int seg = static_cast<int>((static_cast<std::int64_t>(frac_q10) *
                                    segments) >> kSoftmaxFracBits);
  const std::int32_t seg_start_q10 =
      static_cast<std::int32_t>((static_cast<std::int64_t>(seg)
                                 << kSoftmaxFracBits) /
                                segments);
  const std::int32_t df = frac_q10 - seg_start_q10;
  return t.start[static_cast<std::size_t>(seg)] +
         static_cast<std::int32_t>(
             rounding_shift_right(static_cast<std::int64_t>(
                                      t.slope[static_cast<std::size_t>(seg)]) *
                                      df,
                                  kSoftmaxFracBits));
}

}  // namespace

std::int32_t exp_unit_q10(std::int32_t x_q10, PwlResolution res) {
  TFACC_CHECK_ARG_MSG(x_q10 <= 0, "EXP unit takes x <= 0, got " << x_q10);
  if (x_q10 <= kExpMinArg) return 0;
  const std::int32_t t = x_q10 + (x_q10 >> 1) - (x_q10 >> 4) + (x_q10 >> 8);
  const std::int32_t n = t >> kSoftmaxFracBits;
  const std::int32_t f = t - (n << kSoftmaxFracBits);
  const std::int32_t frac_pow = eval_pwl(pow2_table(res), f);
  const int rshift = -n;
  if (rshift >= 31) return 0;
  return static_cast<std::int32_t>(rounding_shift_right(frac_pow, rshift));
}

std::int32_t ln_unit_q10(std::int64_t v_q10, PwlResolution res) {
  TFACC_CHECK_ARG_MSG(v_q10 >= kSoftmaxOne,
                      "LN unit takes v >= 1.0, got raw " << v_q10);
  const int e = std::bit_width(static_cast<std::uint64_t>(v_q10)) - 1;
  std::int32_t m;
  if (e >= kSoftmaxFracBits)
    m = static_cast<std::int32_t>(v_q10 >> (e - kSoftmaxFracBits));
  else
    m = static_cast<std::int32_t>(v_q10 << (kSoftmaxFracBits - e));
  const std::int32_t u = m - kSoftmaxOne;
  return (e - kSoftmaxFracBits) * kLn2Q10 + eval_pwl(log1p_table(res), u);
}

double exp_unit(double x) {
  TFACC_CHECK_ARG(x <= 0.0);
  const auto fx = Fixed<kSoftmaxFracBits>::from_double(x);
  return static_cast<double>(exp_unit_q10(fx.raw)) / kSoftmaxOne;
}

double ln_unit(double v) {
  TFACC_CHECK_ARG(v >= 1.0);
  const auto fx = Fixed<kSoftmaxFracBits>::from_double(v);
  return static_cast<double>(ln_unit_q10(fx.raw)) / kSoftmaxOne;
}

}  // namespace tfacc::hw
