#include "hwarith/softmax_unit.hpp"

#include "common/check.hpp"
#include "hwarith/exp_ln.hpp"

namespace tfacc::hw {

SoftmaxUnit::SoftmaxUnit(double d_scale)
    : to_q10_(FixedPointScale::from_double(d_scale / 8.0 *
                                           (1 << kSoftmaxFracBits))) {
  TFACC_CHECK_ARG(d_scale > 0.0);
}

SoftmaxUnit::SoftmaxUnit(double d_scale, PwlResolution resolution)
    : SoftmaxUnit(d_scale) {
  resolution_ = resolution;
}

std::int32_t SoftmaxUnit::exp_fx(std::int32_t x) const {
  return resolution_ ? exp_unit_q10(x, *resolution_) : exp_unit_q10(x);
}

std::int32_t SoftmaxUnit::ln_fx(std::int64_t v) const {
  return resolution_ ? ln_unit_q10(v, *resolution_) : ln_unit_q10(v);
}

// hot-path: allocation-free
void SoftmaxUnit::row(const std::int32_t* d, const std::uint8_t* mask, int n,
                      std::int8_t* out) const {
  TFACC_CHECK_ARG(n > 0);

  // Stage 1: running max over unmasked entries (integer compare — the input
  // scale is positive so the raw ordering is the real ordering).
  bool any = false;
  std::int32_t dmax = 0;
  for (int j = 0; j < n; ++j) {
    if (mask[j]) continue;
    if (!any || d[j] > dmax) dmax = d[j];
    any = true;
  }
  if (!any) {  // fully masked row: empty sum in Eq. 4, defined as zeros
    for (int j = 0; j < n; ++j) out[j] = 0;
    return;
  }

  // Stage 2: exponentials of the negated distances to the max, and their sum.
  std::int64_t sum_q10 = 0;
  // One-time warm-up growth of the scratch row, amortized to zero.
  if (x_q10_.size() < static_cast<std::size_t>(n))
    x_q10_.resize(static_cast<std::size_t>(n));  // lint: allow(hot-path-alloc)
  std::int32_t* x_q10 = x_q10_.data();
  for (int j = 0; j < n; ++j) {
    if (mask[j]) continue;
    const std::int64_t diff = static_cast<std::int64_t>(d[j]) - dmax;  // <= 0
    std::int64_t x = to_q10_.apply(diff);
    if (x < kExpMinArg) x = kExpMinArg;
    x_q10[j] = static_cast<std::int32_t>(x);
    sum_q10 += exp_fx(static_cast<std::int32_t>(x));
  }
  // The max element contributes exp(0) = 1.0, so sum >= 1.0 always holds.
  TFACC_CHECK(sum_q10 >= kSoftmaxOne);

  // Stage 3: log of the denominator.
  const std::int32_t log_sum = ln_fx(sum_q10);

  // Stage 4: out_j = exp(x_j - log_sum), quantized to INT8 (scale 1/127).
  for (int j = 0; j < n; ++j) {
    if (mask[j]) {
      out[j] = 0;
      continue;
    }
    std::int64_t arg = static_cast<std::int64_t>(x_q10[j]) - log_sum;
    if (arg < kExpMinArg) arg = kExpMinArg;
    if (arg > 0) arg = 0;  // rounding in LN can make the max slightly positive
    const std::int32_t y = exp_fx(static_cast<std::int32_t>(arg));
    out[j] = saturate_i8(
        rounding_shift_right(static_cast<std::int64_t>(y) * 127,
                             kSoftmaxFracBits));
  }
}

Matrix<std::int8_t> SoftmaxUnit::operator()(
    const MatI32& d, const Matrix<std::uint8_t>& mask) const {
  TFACC_CHECK_ARG(d.rows() == mask.rows() && d.cols() == mask.cols());
  Matrix<std::int8_t> out(d.rows(), d.cols());
  for (int r = 0; r < d.rows(); ++r) row(d.row(r), mask.row(r), d.cols(), out.row(r));
  return out;
}

}  // namespace tfacc::hw
