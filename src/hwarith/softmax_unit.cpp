#include "hwarith/softmax_unit.hpp"

#include "common/check.hpp"
#include "hwarith/exp_ln.hpp"
#include "tensor/kernels.hpp"

// The batched row path vectorizes the shipped 4-segment dyadic design with
// per-function target("avx2") + a runtime CPU check, exactly like
// tensor/kernels.cpp — the binary carries no -march requirement.
#if defined(__x86_64__) || defined(__i386__)
#define TFACC_SOFTMAX_X86 1
#include <immintrin.h>
#endif

namespace tfacc::hw {

namespace {

#if TFACC_SOFTMAX_X86

bool cpu_has_avx2() {
  static const bool has = __builtin_cpu_supports("avx2");
  return has;
}

// hot-path: allocation-free region — the batched softmax row runs inside the
// attention inner loop; everything here writes caller-owned buffers only.

/// rounding_shift_right(prod, s) + clamp for four int64 products — the same
/// branchless reformulation as tensor/kernels.cpp's requantizer (valid for
/// 1 <= s <= 48 and |prod| < 2^46; here |diff·mantissa| < 2^31·2^15).
__attribute__((target("avx2"))) __m256i sm_round_clamp_avx2(
    __m256i prod, __m256i bias, __m128i count, __m256i offset,
    __m256i offset_shifted, __m256i lo, __m256i hi) {
  const __m256i neg = _mm256_cmpgt_epi64(_mm256_setzero_si256(), prod);
  __m256i x = _mm256_add_epi64(_mm256_add_epi64(prod, bias), neg);
  x = _mm256_sub_epi64(_mm256_srl_epi64(_mm256_add_epi64(x, offset), count),
                       offset_shifted);
  x = _mm256_blendv_epi8(x, hi, _mm256_cmpgt_epi64(x, hi));
  x = _mm256_blendv_epi8(x, lo, _mm256_cmpgt_epi64(lo, x));
  return x;
}

/// The EXP unit (exp_unit_q10's dyadic 4-segment PWL), 8 lanes at once.
/// Lanes must be in [kExpMinArg, 0]; lanes at kExpMinArg produce 0 exactly
/// like the scalar early-out. For in-range x the scalar `rshift >= 31` guard
/// is unreachable (x > −16·1024 ⇒ rshift ≤ 24).
__attribute__((target("avx2"))) __m256i exp_q10_avx2(__m256i x) {
  // t = x·log2(e) by shift-add: x + x/2 − x/16 + x/256.
  const __m256i t = _mm256_add_epi32(
      _mm256_sub_epi32(_mm256_add_epi32(x, _mm256_srai_epi32(x, 1)),
                       _mm256_srai_epi32(x, 4)),
      _mm256_srai_epi32(x, 8));
  const __m256i n = _mm256_srai_epi32(t, kSoftmaxFracBits);  // floor, <= 0
  const __m256i f =
      _mm256_sub_epi32(t, _mm256_slli_epi32(n, kSoftmaxFracBits));
  const __m256i seg = _mm256_srli_epi32(f, 8);  // f ∈ [0,1024) ⇒ seg ∈ [0,3]
  const __m256i df = _mm256_and_si256(f, _mm256_set1_epi32(0xFF));
  // kPow2Start gather: permutevar8x32 indexed by seg (duplicated table).
  const __m256i start = _mm256_permutevar8x32_epi32(
      _mm256_setr_epi32(1024, 1218, 1448, 1722, 1024, 1218, 1448, 1722), seg);
  // The four dyadic secant slopes, selected per lane.
  const __m256i s0 =
      _mm256_add_epi32(_mm256_srli_epi32(df, 1), _mm256_srli_epi32(df, 2));
  const __m256i s1 = _mm256_sub_epi32(df, _mm256_srli_epi32(df, 3));
  const __m256i s2 = _mm256_add_epi32(df, _mm256_srli_epi32(df, 4));
  const __m256i s3 = _mm256_add_epi32(df, _mm256_srli_epi32(df, 2));
  __m256i slope = s0;
  slope = _mm256_blendv_epi8(
      slope, s1, _mm256_cmpeq_epi32(seg, _mm256_set1_epi32(1)));
  slope = _mm256_blendv_epi8(
      slope, s2, _mm256_cmpeq_epi32(seg, _mm256_set1_epi32(2)));
  slope = _mm256_blendv_epi8(
      slope, s3, _mm256_cmpeq_epi32(seg, _mm256_set1_epi32(3)));
  const __m256i frac = _mm256_add_epi32(start, slope);
  // y = rounding_shift_right(frac, −n): frac > 0, bias = (1 << rs) >> 1
  // (0 when rs = 0), then a logical variable shift.
  const __m256i rshift = _mm256_sub_epi32(_mm256_setzero_si256(), n);
  const __m256i bias =
      _mm256_srli_epi32(_mm256_sllv_epi32(_mm256_set1_epi32(1), rshift), 1);
  __m256i y = _mm256_srlv_epi32(_mm256_add_epi32(frac, bias), rshift);
  // Scalar unit returns 0 at (or below) the PWL range floor.
  y = _mm256_and_si256(
      y, _mm256_cmpgt_epi32(x, _mm256_set1_epi32(kExpMinArg)));
  return y;
}

/// One full softmax row, batched 8 columns per iteration. Bit-identical to
/// the scalar stages for every column: integer max/min are order-independent,
/// the Q.10 conversion reuses the requantizer reformulation, and the EXP unit
/// is ported shift-for-shift. Returns false (touching nothing) when the
/// unmasked spread overflows int32 — the caller reruns the scalar stages.
__attribute__((target("avx2"))) bool softmax_row_avx2(
    const FixedPointScale& conv, const std::int32_t* d,
    const std::uint8_t* mask, int n, std::int32_t* x_q10, std::int8_t* out) {
  const __m256i zero = _mm256_setzero_si256();
  // Stage 1: masked running max (and min, for the int32-spread gate).
  __m256i vmax = _mm256_set1_epi32(INT32_MIN);
  __m256i vmin = _mm256_set1_epi32(INT32_MAX);
  __m256i vany = zero;
  int j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m256i d8 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(d + j));
    const __m256i m8 = _mm256_cvtepu8_epi32(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(mask + j)));
    const __m256i legal = _mm256_cmpeq_epi32(m8, zero);
    vany = _mm256_or_si256(vany, legal);
    vmax = _mm256_max_epi32(
        vmax, _mm256_blendv_epi8(_mm256_set1_epi32(INT32_MIN), d8, legal));
    vmin = _mm256_min_epi32(
        vmin, _mm256_blendv_epi8(_mm256_set1_epi32(INT32_MAX), d8, legal));
  }
  alignas(32) std::int32_t lmax[8];
  alignas(32) std::int32_t lmin[8];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lmax), vmax);
  _mm256_store_si256(reinterpret_cast<__m256i*>(lmin), vmin);
  bool any = _mm256_movemask_epi8(vany) != 0;
  std::int32_t dmax = INT32_MIN;
  std::int32_t dmin = INT32_MAX;
  for (int k = 0; k < 8; ++k) {
    if (lmax[k] > dmax) dmax = lmax[k];
    if (lmin[k] < dmin) dmin = lmin[k];
  }
  for (; j < n; ++j) {
    if (mask[j]) continue;
    any = true;
    if (d[j] > dmax) dmax = d[j];
    if (d[j] < dmin) dmin = d[j];
  }
  if (!any) {  // fully masked row: empty sum in Eq. 4, defined as zeros
    for (j = 0; j < n; ++j) out[j] = 0;
    return true;
  }
  // The vector conversion multiplies the int32 lane (D_j − D_max); bail out
  // to scalar (which converts in int64) if the unmasked spread overflows.
  if (static_cast<std::int64_t>(dmax) - dmin > INT32_MAX) return false;

  // Stage 2: x_j = clamp(conv(D_j − D_max)), SUM = Σ exp(x_j) (legal only).
  const __m256i dmax8 = _mm256_set1_epi32(dmax);
  const __m256i mant = _mm256_set1_epi64x(conv.mantissa);
  const __m256i cbias =
      _mm256_set1_epi64x(std::int64_t{1} << (conv.shift - 1));
  const __m128i ccount = _mm_cvtsi32_si128(conv.shift);
  const __m256i coffset = _mm256_set1_epi64x(std::int64_t{1} << 62);
  const __m256i coff_sh =
      _mm256_set1_epi64x((std::int64_t{1} << 62) >> conv.shift);
  const __m256i clo = _mm256_set1_epi64x(kExpMinArg);
  const __m256i chi = _mm256_set1_epi64x(0);
  __m256i sum64 = zero;
  for (j = 0; j + 8 <= n; j += 8) {
    const __m256i d8 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(d + j));
    const __m256i m8 = _mm256_cvtepu8_epi32(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(mask + j)));
    const __m256i legal = _mm256_cmpeq_epi32(m8, zero);
    // Masked lanes may wrap here; their x is still clamped into the EXP
    // domain below and their contribution is zeroed before the sum.
    const __m256i ds = _mm256_sub_epi32(d8, dmax8);
    const __m256i pe = _mm256_mul_epi32(ds, mant);  // dwords 0,2,4,6
    const __m256i po = _mm256_mul_epi32(
        _mm256_shuffle_epi32(ds, _MM_SHUFFLE(3, 3, 1, 1)), mant);  // 1,3,5,7
    const __m256i xe = sm_round_clamp_avx2(pe, cbias, ccount, coffset,
                                           coff_sh, clo, chi);
    const __m256i xo = sm_round_clamp_avx2(po, cbias, ccount, coffset,
                                           coff_sh, clo, chi);
    const __m256i x8 =
        _mm256_blend_epi32(xe, _mm256_slli_epi64(xo, 32), 0b10101010);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(x_q10 + j), x8);
    const __m256i e8 = _mm256_and_si256(exp_q10_avx2(x8), legal);
    sum64 = _mm256_add_epi64(
        sum64, _mm256_cvtepi32_epi64(_mm256_castsi256_si128(e8)));
    sum64 = _mm256_add_epi64(
        sum64, _mm256_cvtepi32_epi64(_mm256_extracti128_si256(e8, 1)));
  }
  alignas(32) std::int64_t lsum[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lsum), sum64);
  std::int64_t sum_q10 = (lsum[0] + lsum[1]) + (lsum[2] + lsum[3]);
  for (; j < n; ++j) {
    if (mask[j]) continue;
    const std::int64_t diff = static_cast<std::int64_t>(d[j]) - dmax;
    std::int64_t x = conv.apply(diff);
    if (x < kExpMinArg) x = kExpMinArg;
    x_q10[j] = static_cast<std::int32_t>(x);
    sum_q10 += exp_unit_q10(static_cast<std::int32_t>(x));
  }
  // The max element contributes exp(0) = 1.0, so sum >= 1.0 always holds.
  TFACC_CHECK(sum_q10 >= kSoftmaxOne);

  // Stage 3: log of the denominator (one LN per row, as in hardware).
  const std::int32_t log_sum = ln_unit_q10(sum_q10);

  // Stage 4: out_j = exp(x_j − log_sum) → INT8 (scale 1/127). y ≤ 1024, so
  // (y·127 + 512) >> 10 ≤ 127 and the scalar saturate never binds.
  const __m256i logsum8 = _mm256_set1_epi32(log_sum);
  const __m256i minarg8 = _mm256_set1_epi32(kExpMinArg);
  const __m256i pick = _mm256_setr_epi8(
      0, 4, 8, 12, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1,  //
      0, 4, 8, 12, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1);
  const __m256i join = _mm256_setr_epi32(0, 4, 0, 0, 0, 0, 0, 0);
  for (j = 0; j + 8 <= n; j += 8) {
    const __m256i m8 = _mm256_cvtepu8_epi32(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(mask + j)));
    const __m256i legal = _mm256_cmpeq_epi32(m8, zero);
    const __m256i x8 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x_q10 + j));
    __m256i arg = _mm256_sub_epi32(x8, logsum8);
    arg = _mm256_max_epi32(arg, minarg8);
    arg = _mm256_min_epi32(arg, zero);  // LN rounding can overshoot the max
    const __m256i y = exp_q10_avx2(arg);
    __m256i o = _mm256_srli_epi32(
        _mm256_add_epi32(_mm256_mullo_epi32(y, _mm256_set1_epi32(127)),
                         _mm256_set1_epi32(512)),
        kSoftmaxFracBits);
    o = _mm256_and_si256(o, legal);
    const __m256i packed =
        _mm256_permutevar8x32_epi32(_mm256_shuffle_epi8(o, pick), join);
    _mm_storel_epi64(reinterpret_cast<__m128i*>(out + j),
                     _mm256_castsi256_si128(packed));
  }
  for (; j < n; ++j) {
    if (mask[j]) {
      out[j] = 0;
      continue;
    }
    std::int64_t arg = static_cast<std::int64_t>(x_q10[j]) - log_sum;
    if (arg < kExpMinArg) arg = kExpMinArg;
    if (arg > 0) arg = 0;
    const std::int32_t y = exp_unit_q10(static_cast<std::int32_t>(arg));
    out[j] = saturate_i8(rounding_shift_right(
        static_cast<std::int64_t>(y) * 127, kSoftmaxFracBits));
  }
  return true;
}

// hot-path: region end

#endif  // TFACC_SOFTMAX_X86

}  // namespace

SoftmaxUnit::SoftmaxUnit(double d_scale)
    : to_q10_(FixedPointScale::from_double(d_scale / 8.0 *
                                           (1 << kSoftmaxFracBits))) {
  TFACC_CHECK_ARG(d_scale > 0.0);
}

SoftmaxUnit::SoftmaxUnit(double d_scale, PwlResolution resolution)
    : SoftmaxUnit(d_scale) {
  resolution_ = resolution;
}

std::int32_t SoftmaxUnit::exp_fx(std::int32_t x) const {
  return resolution_ ? exp_unit_q10(x, *resolution_) : exp_unit_q10(x);
}

std::int32_t SoftmaxUnit::ln_fx(std::int64_t v) const {
  return resolution_ ? ln_unit_q10(v, *resolution_) : ln_unit_q10(v);
}

// hot-path: allocation-free
void SoftmaxUnit::row(const std::int32_t* d, const std::uint8_t* mask, int n,
                      std::int8_t* out) const {
  TFACC_CHECK_ARG(n > 0);

  // One-time warm-up growth of the scratch row, amortized to zero.
  if (x_q10_.size() < static_cast<std::size_t>(n))
    x_q10_.resize(static_cast<std::size_t>(n));  // lint: allow(hot-path-alloc)
  std::int32_t* x_q10 = x_q10_.data();

#if TFACC_SOFTMAX_X86
  // Batched row model (gprof hotspot #2): only the shipped dyadic design is
  // vectorized, and only where the requantizer reformulation is proven exact
  // (1 ≤ shift ≤ 48; the int32-spread gate lives inside). kScalar/kBlocked
  // keep the reference loop — this unit has no reduction to block.
  if (!resolution_ && n >= 8 && to_q10_.shift >= 1 && to_q10_.shift <= 48 &&
      kernels::selected() == kernels::Kind::kSimd && cpu_has_avx2() &&
      softmax_row_avx2(to_q10_, d, mask, n, x_q10, out))
    return;
#endif

  // Stage 1: running max over unmasked entries (integer compare — the input
  // scale is positive so the raw ordering is the real ordering).
  bool any = false;
  std::int32_t dmax = 0;
  for (int j = 0; j < n; ++j) {
    if (mask[j]) continue;
    if (!any || d[j] > dmax) dmax = d[j];
    any = true;
  }
  if (!any) {  // fully masked row: empty sum in Eq. 4, defined as zeros
    for (int j = 0; j < n; ++j) out[j] = 0;
    return;
  }

  // Stage 2: exponentials of the negated distances to the max, and their sum.
  std::int64_t sum_q10 = 0;
  for (int j = 0; j < n; ++j) {
    if (mask[j]) continue;
    const std::int64_t diff = static_cast<std::int64_t>(d[j]) - dmax;  // <= 0
    std::int64_t x = to_q10_.apply(diff);
    if (x < kExpMinArg) x = kExpMinArg;
    x_q10[j] = static_cast<std::int32_t>(x);
    sum_q10 += exp_fx(static_cast<std::int32_t>(x));
  }
  // The max element contributes exp(0) = 1.0, so sum >= 1.0 always holds.
  TFACC_CHECK(sum_q10 >= kSoftmaxOne);

  // Stage 3: log of the denominator.
  const std::int32_t log_sum = ln_fx(sum_q10);

  // Stage 4: out_j = exp(x_j - log_sum), quantized to INT8 (scale 1/127).
  for (int j = 0; j < n; ++j) {
    if (mask[j]) {
      out[j] = 0;
      continue;
    }
    std::int64_t arg = static_cast<std::int64_t>(x_q10[j]) - log_sum;
    if (arg < kExpMinArg) arg = kExpMinArg;
    if (arg > 0) arg = 0;  // rounding in LN can make the max slightly positive
    const std::int32_t y = exp_fx(static_cast<std::int32_t>(arg));
    out[j] = saturate_i8(
        rounding_shift_right(static_cast<std::int64_t>(y) * 127,
                             kSoftmaxFracBits));
  }
}

Matrix<std::int8_t> SoftmaxUnit::operator()(
    const MatI32& d, const Matrix<std::uint8_t>& mask) const {
  TFACC_CHECK_ARG(d.rows() == mask.rows() && d.cols() == mask.cols());
  Matrix<std::int8_t> out(d.rows(), d.cols());
  for (int r = 0; r < d.rows(); ++r) row(d.row(r), mask.row(r), d.cols(), out.row(r));
  return out;
}

}  // namespace tfacc::hw
