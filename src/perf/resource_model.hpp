// Analytic FPGA resource and power model reproducing Table II.
//
// SUBSTITUTION (see DESIGN.md §4): without Vivado, per-module resources come
// from per-unit cost formulas. The constants (LUTs per INT8 PE, registers per
// softmax lane, ...) were calibrated once against the paper's Table II
// implementation on the xcvu13p and are documented next to each formula; the
// *structure* — SA dominates LUTs, Softmax is register-heavy, LayerNorm owns
// the DSPs and a little BRAM, the weight memory owns most BRAM — is a
// property of the architecture, not of the calibration.
#pragma once

#include <string>
#include <vector>

#include "common/config.hpp"

namespace tfacc {

/// One row of a utilization report.
struct ResourceUsage {
  std::string name;
  double lut = 0;
  double registers = 0;
  double bram = 0;  ///< BRAM36 equivalents
  double dsp = 0;
};

/// The xcvu13p-fhga2104-3-e device limits (Table II "Available" row).
ResourceUsage xcvu13p_available();

class ResourceModel {
 public:
  /// Per-unit calibrated constants (defaults reproduce Table II at s = 64,
  /// Transformer-base).
  struct Params {
    // SA: LUT-fabric INT8 multiplier + INT32 accumulate per PE (no DSPs —
    // Table II reports 0 DSPs for the 64×64 SA).
    double lut_per_pe = 63 + 32 + 8;  ///< multiplier + accumulator + control
    double reg_per_pe = 42;           ///< operand/pipeline/accumulator regs
    // Softmax: two EXP units, one LN unit, one accumulator per row lane.
    double lut_per_softmax_lane = 331;
    double reg_per_softmax_lane = 510;  ///< row buffer + pipeline registers
    // LayerNorm: two DSP multiplies per lane (x·rsqrt, ·γ) + one shared.
    double dsp_per_ln_lane = 2;
    double lut_per_ln_lane = 160;
    double reg_per_ln_lane = 80;
    double ln_bram_factor = 1.2;  ///< routing/packing margin on LN buffers
    // Weight memory: pure BRAM plus a small addressing fabric.
    double weight_mem_lut = 3379;
    double weight_mem_reg = 80;
    // Remaining top-level fabric (data memory muxing, control FSM).
    double control_lut = 15576;
    double control_reg = 6721;
    double control_bram = 14.5;
    // Power: effective dynamic energy per active PE-cycle, including SRAM
    // and routing (calibrated to the reported 13.3 W dynamic at 200 MHz).
    double pj_per_mac_cycle = 20.3;
    double static_power_w = 3.4;
  };

  /// Default-calibrated model (Table II constants).
  ResourceModel();
  explicit ResourceModel(const Params& p);

  ResourceUsage systolic_array(int rows, int cols) const;
  ResourceUsage softmax(int s) const;
  ResourceUsage layernorm(int s, int d_model) const;
  ResourceUsage weight_memory(const ModelConfig& cfg) const;

  /// Full utilization table in Table II order:
  /// Top, SA, Softmax, LayerNorm, Weight Memory.
  std::vector<ResourceUsage> utilization_table(const ModelConfig& cfg,
                                               int s) const;

  /// Total on-chip power at the given clock and SA utilization.
  double total_power_w(int sa_rows, int sa_cols, double clock_mhz,
                       double sa_utilization) const;

 private:
  Params p_;
};

}  // namespace tfacc
