#include "perf/resource_model.hpp"

#include <cmath>

#include "common/check.hpp"
#include "hwarith/rsqrt_lut.hpp"

namespace tfacc {

namespace {
constexpr double kBram36Bits = 36 * 1024;
}

ResourceUsage xcvu13p_available() {
  return ResourceUsage{"Available", 1728000, 3456000, 2688, 12288};
}

ResourceModel::ResourceModel() : p_() {}
ResourceModel::ResourceModel(const Params& p) : p_(p) {}

ResourceUsage ResourceModel::systolic_array(int rows, int cols) const {
  TFACC_CHECK_ARG(rows > 0 && cols > 0);
  const double pes = static_cast<double>(rows) * cols;
  return ResourceUsage{std::to_string(rows) + "x" + std::to_string(cols) +
                           " SA",
                       pes * p_.lut_per_pe, pes * p_.reg_per_pe, 0, 0};
}

ResourceUsage ResourceModel::softmax(int s) const {
  TFACC_CHECK_ARG(s > 0);
  return ResourceUsage{"Softmax", s * p_.lut_per_softmax_lane,
                       s * p_.reg_per_softmax_lane, 0, 0};
}

ResourceUsage ResourceModel::layernorm(int s, int d_model) const {
  TFACC_CHECK_ARG(s > 0 && d_model > 0);
  // Buffers: the s×d_model INT16 G matrix (step-1 accumulators read it back
  // for the output pass), the s×d_model INT8 output buffer, γ/β coefficients,
  // and the x^(-0.5) ROM.
  const double buffer_bits = static_cast<double>(s) * d_model * (16 + 8) +
                             2.0 * d_model * 16 + hw::RsqrtLut::rom_bits();
  const double bram = p_.ln_bram_factor * buffer_bits / kBram36Bits;
  return ResourceUsage{"LayerNorm", s * p_.lut_per_ln_lane,
                       s * p_.reg_per_ln_lane, bram,
                       p_.dsp_per_ln_lane * s + 1};
}

ResourceUsage ResourceModel::weight_memory(const ModelConfig& cfg) const {
  cfg.validate();
  // Sized for the largest resident layer: the FFN weights 2·d_model·d_ff
  // INT8 (the MHA's 4·d_model² fits in the same space). Biases live in the
  // separate Bias Memory of Fig. 5 and are negligible.
  const double ffn_bits = 2.0 * cfg.d_model * cfg.d_ff * 8;
  const double mha_bits = 4.0 * cfg.d_model * cfg.d_model * 8;
  const double bits = std::max(ffn_bits, mha_bits);
  return ResourceUsage{"Weight Memory", p_.weight_mem_lut, p_.weight_mem_reg,
                       std::ceil(bits / kBram36Bits), 0};
}

std::vector<ResourceUsage> ResourceModel::utilization_table(
    const ModelConfig& cfg, int s) const {
  const ResourceUsage sa = systolic_array(s, 64);
  const ResourceUsage sm = softmax(s);
  const ResourceUsage ln = layernorm(s, cfg.d_model);
  const ResourceUsage wm = weight_memory(cfg);
  ResourceUsage top{"Top",
                    sa.lut + sm.lut + ln.lut + wm.lut + p_.control_lut,
                    sa.registers + sm.registers + ln.registers +
                        wm.registers + p_.control_reg,
                    sa.bram + sm.bram + ln.bram + wm.bram + p_.control_bram,
                    sa.dsp + sm.dsp + ln.dsp + wm.dsp};
  return {top, sa, sm, ln, wm};
}

double ResourceModel::total_power_w(int sa_rows, int sa_cols, double clock_mhz,
                                    double sa_utilization) const {
  TFACC_CHECK_ARG(clock_mhz > 0 && sa_utilization >= 0 &&
                  sa_utilization <= 1.0);
  const double macs_per_s = static_cast<double>(sa_rows) * sa_cols *
                            clock_mhz * 1e6 * sa_utilization;
  return p_.static_power_w + macs_per_s * p_.pj_per_mac_cycle * 1e-12;
}

}  // namespace tfacc
