// Analytic latency model of the paper's GPU baseline: the PyTorch eager-mode
// Transformer (github.com/jadore801120/attention-is-all-you-need-pytorch)
// running one ResBlock on an NVIDIA V100 at batch 1.
//
// SUBSTITUTION (see DESIGN.md §4): we cannot run a V100, so the baseline is a
// per-op cost model. At batch 1 / s = 64, eager-mode latency is dominated by
// per-op dispatch (Python + ATen + kernel launch) plus a few low-utilization
// skinny GEMMs — the regime the model captures. Dispatch costs and the
// effective GEMM throughputs below were calibrated once against the paper's
// Table III measurements and are held fixed across all sweeps.
#pragma once

#include <string>
#include <vector>

namespace tfacc {

struct GpuModelParams {
  // Per-op dispatch cost in microseconds (Python dispatch + ATen + launch).
  double linear_us = 100.0;       ///< nn.Linear / addmm
  double matmul_us = 80.0;        ///< (batched) torch.matmul
  double softmax_us = 60.0;
  double layernorm_us = 60.0;
  double masked_fill_us = 50.0;
  double elementwise_us = 45.0;   ///< div / add / relu / dropout / contiguous
  double reshape_us = 40.0;       ///< view / transpose
  // Effective compute/memory throughputs at these shapes (FP32, V100).
  double skinny_gemm_gflops = 1000.0;        ///< m <= 64 GEMMs (~6% of peak)
  double batched_small_gemm_gflops = 200.0;  ///< per-head 64×64×64 batches
  double mem_bw_gbps = 790.0;                ///< effective HBM2 bandwidth
  // Global eager-mode factor (profiler gaps, sync) from calibration.
  double calibration = 1.08;
};

/// One modeled framework-level operation.
struct GpuOp {
  std::string name;
  double dispatch_us = 0.0;
  double compute_us = 0.0;

  double total_us() const { return dispatch_us + compute_us; }
};

/// Latency breakdown of one ResBlock on the modeled GPU.
struct GpuLatency {
  std::vector<GpuOp> ops;
  double total_us = 0.0;
};

/// MHA ResBlock latency (22 framework ops: QKV/out projections, reshapes,
/// scores, mask, softmax, dropouts, residual, layernorm).
GpuLatency gpu_mha_latency(int s, int d_model, int h,
                           const GpuModelParams& p = {});

/// FFN ResBlock latency (6 framework ops: two linears, relu, dropout,
/// residual, layernorm).
GpuLatency gpu_ffn_latency(int s, int d_model, int d_ff,
                           const GpuModelParams& p = {});

}  // namespace tfacc
