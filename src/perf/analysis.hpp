// Operation-count analysis of the two ResBlocks, including the Q·Kᵀ share
// formula of Eq. 3 (both the paper's simplified form and the exact count).
#pragma once

#include <cstdint>

namespace tfacc {

/// Multiply(-accumulate) counts of one MHA ResBlock at batch 1.
struct MhaMacs {
  std::int64_t qkv_projections = 0;  ///< 3 · s·d_model·64 · h
  std::int64_t qkt = 0;              ///< s²·64 · h
  std::int64_t attention_v = 0;      ///< s²·64 · h
  std::int64_t output_projection = 0;  ///< s·d_model²

  std::int64_t total() const {
    return qkv_projections + qkt + attention_v + output_projection;
  }
};

MhaMacs mha_macs(int s, int d_model, int h);

/// MACs of one FFN ResBlock: 2 · s·d_model·d_ff.
std::int64_t ffn_macs(int s, int d_model, int d_ff);

/// Eq. 3 as printed in the paper: s / (s + 256·h² + 64).
/// (The paper's derivation fixes s = 64 in the last simplification step.)
double qkt_ratio_paper(int s, int h);

/// Exact share of Q·Kᵀ multiplies in the MHA ResBlock from mha_macs().
double qkt_ratio_exact(int s, int d_model, int h);

}  // namespace tfacc
