#include "perf/gpu_model.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace tfacc {

namespace {

/// Roofline time of a GEMM: max of compute time at the effective throughput
/// and the time to move its operands once through HBM.
double gemm_us(double m, double n, double k, double gflops, double bw_gbps) {
  const double flops = 2.0 * m * n * k;
  const double bytes = 4.0 * (m * k + k * n + m * n);  // FP32
  return std::max(flops / (gflops * 1e3), bytes / (bw_gbps * 1e3));
}

void add(GpuLatency& lat, std::string name, double dispatch_us,
         double compute_us = 0.0) {
  lat.ops.push_back(GpuOp{std::move(name), dispatch_us, compute_us});
}

void finish(GpuLatency& lat, double calibration) {
  double sum = 0.0;
  for (auto& op : lat.ops) {
    op.dispatch_us *= calibration;
    op.compute_us *= calibration;
    sum += op.total_us();
  }
  lat.total_us = sum;
}

}  // namespace

GpuLatency gpu_mha_latency(int s, int d_model, int h, const GpuModelParams& p) {
  TFACC_CHECK_ARG(s > 0 && d_model > 0 && h > 0);
  GpuLatency lat;
  const double head_dim = static_cast<double>(d_model) / h;
  const double lin_us =
      gemm_us(s, d_model, d_model, p.skinny_gemm_gflops, p.mem_bw_gbps);
  // Per-head batched score/context matmuls: h batches of (s×hd)·(hd×s).
  const double qkt_us = gemm_us(static_cast<double>(h) * s, s, head_dim,
                                p.batched_small_gemm_gflops, p.mem_bw_gbps);

  add(lat, "linear_q", p.linear_us, lin_us);
  add(lat, "linear_k", p.linear_us, lin_us);
  add(lat, "linear_v", p.linear_us, lin_us);
  add(lat, "view_q", p.reshape_us);
  add(lat, "view_k", p.reshape_us);
  add(lat, "view_v", p.reshape_us);
  add(lat, "transpose_q", p.reshape_us);
  add(lat, "transpose_k", p.reshape_us);
  add(lat, "transpose_v", p.reshape_us);
  add(lat, "matmul_qkt", p.matmul_us, qkt_us);
  add(lat, "div_scale", p.elementwise_us);
  add(lat, "masked_fill", p.masked_fill_us);
  add(lat, "softmax", p.softmax_us);
  add(lat, "dropout_attn", p.elementwise_us);
  add(lat, "matmul_av", p.matmul_us, qkt_us);
  add(lat, "transpose_out", p.reshape_us);
  add(lat, "contiguous", p.elementwise_us);
  add(lat, "view_merge", p.reshape_us);
  add(lat, "linear_out", p.linear_us, lin_us);
  add(lat, "dropout_out", p.elementwise_us);
  add(lat, "residual_add", p.elementwise_us);
  add(lat, "layer_norm", p.layernorm_us);
  finish(lat, p.calibration);
  return lat;
}

GpuLatency gpu_ffn_latency(int s, int d_model, int d_ff,
                           const GpuModelParams& p) {
  TFACC_CHECK_ARG(s > 0 && d_model > 0 && d_ff > 0);
  GpuLatency lat;
  const double lin_us =
      gemm_us(s, d_ff, d_model, p.skinny_gemm_gflops, p.mem_bw_gbps);
  add(lat, "linear_1", p.linear_us, lin_us);
  add(lat, "relu", p.elementwise_us);
  add(lat, "linear_2", p.linear_us, lin_us);
  add(lat, "dropout", p.elementwise_us);
  add(lat, "residual_add", p.elementwise_us);
  add(lat, "layer_norm", p.layernorm_us);
  finish(lat, p.calibration);
  return lat;
}

}  // namespace tfacc
