#include "perf/analysis.hpp"

#include "common/check.hpp"

namespace tfacc {

MhaMacs mha_macs(int s, int d_model, int h) {
  TFACC_CHECK_ARG(s > 0 && d_model > 0 && h > 0);
  const std::int64_t s64 = s, dm = d_model, hh = h, hd = 64;
  MhaMacs m;
  m.qkv_projections = 3 * s64 * dm * hd * hh;
  m.qkt = s64 * s64 * hd * hh;
  m.attention_v = s64 * s64 * hd * hh;
  m.output_projection = s64 * dm * dm;
  return m;
}

std::int64_t ffn_macs(int s, int d_model, int d_ff) {
  TFACC_CHECK_ARG(s > 0 && d_model > 0 && d_ff > 0);
  return 2ll * s * d_model * d_ff;
}

double qkt_ratio_paper(int s, int h) {
  TFACC_CHECK_ARG(s > 0 && h > 0);
  return static_cast<double>(s) /
         (static_cast<double>(s) + 256.0 * h * h + 64.0);
}

double qkt_ratio_exact(int s, int d_model, int h) {
  const MhaMacs m = mha_macs(s, d_model, h);
  return static_cast<double>(m.qkt) / static_cast<double>(m.total());
}

}  // namespace tfacc
