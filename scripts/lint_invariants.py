#!/usr/bin/env python3
"""Determinism invariant lint (PR 7).

Three repo-specific rules that clang-tidy cannot express, enforced over
src/ and tools/ (tests may do what they like):

1. pointer-keyed-iteration — every ``std::unordered_map`` with a pointer
   key must be declared with a ``// lint: lookup-only`` comment, and no
   range-for may iterate a lookup-only map: pointer-keyed hash iteration
   order depends on allocator placement, so anything it feeds (reports,
   ledgers, build sequences) silently loses reproducibility.

2. nondeterminism-source — ``rand()`` / ``srand()`` / ``time()`` /
   ``std::random_device`` / ``system_clock`` appear nowhere outside
   ``src/common/random.hpp``. All randomness flows through the seeded
   ``Rng`` wrapper so every run is replayable.

3. hot-path-alloc — a function whose definition is preceded by a
   ``// hot-path: allocation-free`` marker must not allocate (new/malloc,
   container growth, string building) anywhere in its body. A
   ``// hot-path: allocation-free region`` marker extends the rule to every
   line until the matching ``// hot-path: region end`` (PR 8: the GEMM /
   requantize kernel block in src/tensor/kernels.cpp).

Per-line exemption: append ``// lint: allow(<rule>)`` with the rule name
above (e.g. ``// lint: allow(hot-path-alloc)`` on a one-time warm-up
resize).

Exit 0 when clean; exit 1 with file:line diagnostics otherwise.
"""

from __future__ import annotations

import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
SCAN_DIRS = ("src", "tools")
RANDOM_HOME = REPO / "src" / "common" / "random.hpp"

ALLOW_RE = re.compile(r"//\s*lint:\s*allow\(([a-z-]+)\)")
LOOKUP_ONLY_RE = re.compile(r"//\s*lint:\s*lookup-only")

# A pointer-keyed unordered_map declaration; the declaration statement may
# wrap, so match against the joined file with the variable name at the end.
PTR_MAP_DECL_RE = re.compile(
    r"std::unordered_map<\s*(?:const\s+)?\w[\w:]*\s*\*[^;]*?>\s*\n?\s*"
    r"(\w+)\s*;([^\n]*)"
)

NONDET_RE = re.compile(
    r"\b(?:std::)?rand\s*\(|\bsrand\s*\(|\bstd::random_device\b"
    r"|\bsystem_clock\b|(?<![_\w])time\s*\(\s*(?:NULL|nullptr|0)\s*\)"
)

ALLOC_RE = re.compile(
    r"\bnew\b|\bmalloc\s*\(|\bcalloc\s*\(|\brealloc\s*\(|\.resize\s*\("
    r"|\.reserve\s*\(|\.push_back\s*\(|\.emplace_back\s*\(|\.emplace\s*\("
    r"|\.insert\s*\(|\.append\s*\(|\bstd::vector<|\bstd::string\s+\w"
    r"|\bto_string\s*\("
)

HOT_PATH_RE = re.compile(r"//\s*hot-path:\s*allocation-free")
HOT_REGION_RE = re.compile(r"//\s*hot-path:\s*allocation-free\s+region")
HOT_REGION_END_RE = re.compile(r"//\s*hot-path:\s*region\s+end")


def allowed(line: str, rule: str) -> bool:
    m = ALLOW_RE.search(line)
    return m is not None and m.group(1) == rule


def lint_pointer_maps(path: pathlib.Path, text: str, lines: list[str],
                      errors: list[str]) -> None:
    lookup_only: set[str] = set()
    for m in PTR_MAP_DECL_RE.finditer(text):
        name, trailer = m.group(1), m.group(2)
        line_no = text.count("\n", 0, m.start()) + 1
        decl = m.group(0)
        if LOOKUP_ONLY_RE.search(decl) or LOOKUP_ONLY_RE.search(trailer):
            lookup_only.add(name)
        else:
            errors.append(
                f"{path}:{line_no}: pointer-keyed-iteration: pointer-keyed "
                f"unordered_map '{name}' lacks a '// lint: lookup-only' "
                f"declaration comment (hash order = allocator order)")
    if not lookup_only:
        return
    # Any range-for over a lookup-only map (bare name or member access).
    names = "|".join(sorted(lookup_only))
    iter_re = re.compile(rf"for\s*\(.*:\s*[\w.\->]*\b(?:{names})\b\s*\)")
    for i, line in enumerate(lines, start=1):
        if iter_re.search(line) and not allowed(line, "pointer-keyed-iteration"):
            errors.append(
                f"{path}:{i}: pointer-keyed-iteration: range-for over a "
                f"lookup-only pointer-keyed map — iterate an "
                f"insertion-ordered mirror (e.g. CaptureStore::mha_order) "
                f"instead")


def lint_nondeterminism(path: pathlib.Path, lines: list[str],
                        errors: list[str]) -> None:
    if path == RANDOM_HOME:
        return
    for i, line in enumerate(lines, start=1):
        code = line.split("//", 1)[0]
        if NONDET_RE.search(code) and not allowed(line, "nondeterminism-source"):
            errors.append(
                f"{path}:{i}: nondeterminism-source: platform randomness/"
                f"clock outside src/common/random.hpp — draw from the "
                f"seeded Rng instead")


def lint_hot_paths(path: pathlib.Path, lines: list[str],
                   errors: list[str]) -> None:
    i = 0
    while i < len(lines):
        if not HOT_PATH_RE.search(lines[i]):
            i += 1
            continue
        if HOT_REGION_RE.search(lines[i]):
            # Region form: every line until '// hot-path: region end' is hot.
            j = i + 1
            while j < len(lines) and not HOT_REGION_END_RE.search(lines[j]):
                code = lines[j].split("//", 1)[0]
                if ALLOC_RE.search(code) and not allowed(
                        lines[j], "hot-path-alloc"):
                    errors.append(
                        f"{path}:{j + 1}: hot-path-alloc: allocation inside "
                        f"a '// hot-path: allocation-free region'")
                j += 1
            if j >= len(lines):
                errors.append(
                    f"{path}:{i + 1}: hot-path-alloc: unterminated "
                    f"'// hot-path: allocation-free region' (no "
                    f"'// hot-path: region end')")
            i = j + 1
            continue
        # The marked function's body: from its first '{' to brace balance 0.
        depth = 0
        entered = False
        j = i + 1
        while j < len(lines):
            code = lines[j].split("//", 1)[0]
            if entered and ALLOC_RE.search(code) and not allowed(
                    lines[j], "hot-path-alloc"):
                errors.append(
                    f"{path}:{j + 1}: hot-path-alloc: allocation inside a "
                    f"'// hot-path: allocation-free' function")
            depth += code.count("{") - code.count("}")
            if "{" in code:
                entered = True
            if entered and depth <= 0:
                break
            j += 1
        i = j + 1


def main() -> int:
    errors: list[str] = []
    files = sorted(
        p for d in SCAN_DIRS for p in (REPO / d).rglob("*")
        if p.suffix in (".cpp", ".hpp", ".h", ".cc"))
    for path in files:
        text = path.read_text(encoding="utf-8")
        lines = text.splitlines()
        lint_pointer_maps(path, text, lines, errors)
        lint_nondeterminism(path, lines, errors)
        lint_hot_paths(path, lines, errors)

    for e in errors:
        print(e, file=sys.stderr)
    print(f"lint_invariants: {len(files)} files scanned, "
          f"{len(errors)} violation(s)")
    return 0 if not errors else 1


if __name__ == "__main__":
    sys.exit(main())
