#!/usr/bin/env python3
"""Determinism + concurrency invariant lint (PR 7, extended in PR 10).

Repo-specific rules that clang-tidy cannot express, enforced over
src/ and tools/ (tests may do what they like):

1. pointer-keyed-iteration — every ``std::unordered_map`` with a pointer
   key must be declared with a ``// lint: lookup-only`` comment, and no
   range-for may iterate a lookup-only map: pointer-keyed hash iteration
   order depends on allocator placement, so anything it feeds (reports,
   ledgers, build sequences) silently loses reproducibility.

2. nondeterminism-source — ``rand()`` / ``srand()`` / ``time()`` /
   ``std::random_device`` / ``system_clock`` appear nowhere outside
   ``src/common/random.hpp``. All randomness flows through the seeded
   ``Rng`` wrapper so every run is replayable.

3. hot-path-alloc — a function whose definition is preceded by a
   ``// hot-path: allocation-free`` marker must not allocate (new/malloc,
   container growth, string building) anywhere in its body. A
   ``// hot-path: allocation-free region`` marker extends the rule to every
   line until the matching ``// hot-path: region end`` (PR 8: the GEMM /
   requantize kernel block in src/tensor/kernels.cpp).

Concurrency rules (PR 10, the thread-safety-annotation wall's escape
hatch police):

4. raw-mutex-member — ``std::mutex`` / ``std::condition_variable`` (and
   kin) appear nowhere outside ``src/common/thread_annotations.hpp``.
   libstdc++'s primitives carry no capability attributes, so a raw mutex
   is invisible to Clang's -Wthread-safety: every lock must be the
   annotated ``Mutex`` / ``CondVar`` wrapper or the compile-time wall has
   a hole. Exemption: ``// lint: tsa-exempt <reason>`` on the line.

5. naked-lock — no ``.lock()`` / ``.unlock()`` / ``try_lock()`` calls
   outside ``src/common/thread_annotations.hpp``: critical sections are
   RAII-scoped (``MutexLock``), so no early return or exception can leak
   a held mutex, and the scoped capability is what -Wthread-safety
   tracks. (``MutexLock::Unlock``/``Lock`` — capitalized — remain the
   sanctioned mid-scope escape, themselves annotated.)

6. thread-spawn — ``std::thread`` is constructed only in
   ``src/serve/worker_pool.*``: every host thread runs under the
   WorkerPool's annotated park/unpark discipline, so there is no thread
   the admission-gate model (tools/gate_model_check) doesn't cover.
   ``std::thread::hardware_concurrency()`` queries are fine anywhere.

7. no-tsa-escape — ``TFACC_NO_TSA`` never appears under ``src/serve/``:
   the serving stack is the concurrency hot spot the wall exists for, so
   its annotation budget is pinned at zero escapes (no exemption syntax;
   loosening this rule is an explicit review decision).

Per-line exemption: append ``// lint: allow(<rule>)`` with the rule name
above (e.g. ``// lint: allow(hot-path-alloc)`` on a one-time warm-up
resize); rule 4 uses ``// lint: tsa-exempt <reason>`` instead so the
exemption names its justification.

Exit 0 when clean; exit 1 with file:line diagnostics otherwise.
``--self-test`` seeds one violation per rule against the rule engine and
exits 0 iff every one is caught (CI runs this before the real scan, so a
regex regression cannot silently disarm the lint).
"""

from __future__ import annotations

import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
SCAN_DIRS = ("src", "tools")
RANDOM_HOME = REPO / "src" / "common" / "random.hpp"
TSA_HOME = REPO / "src" / "common" / "thread_annotations.hpp"
THREAD_HOMES = (REPO / "src" / "serve" / "worker_pool.hpp",
                REPO / "src" / "serve" / "worker_pool.cpp")

ALLOW_RE = re.compile(r"//\s*lint:\s*allow\(([a-z-]+)\)")
LOOKUP_ONLY_RE = re.compile(r"//\s*lint:\s*lookup-only")

# A pointer-keyed unordered_map declaration; the declaration statement may
# wrap, so match against the joined file with the variable name at the end.
PTR_MAP_DECL_RE = re.compile(
    r"std::unordered_map<\s*(?:const\s+)?\w[\w:]*\s*\*[^;]*?>\s*\n?\s*"
    r"(\w+)\s*;([^\n]*)"
)

NONDET_RE = re.compile(
    r"\b(?:std::)?rand\s*\(|\bsrand\s*\(|\bstd::random_device\b"
    r"|\bsystem_clock\b|(?<![_\w])time\s*\(\s*(?:NULL|nullptr|0)\s*\)"
)

ALLOC_RE = re.compile(
    r"\bnew\b|\bmalloc\s*\(|\bcalloc\s*\(|\brealloc\s*\(|\.resize\s*\("
    r"|\.reserve\s*\(|\.push_back\s*\(|\.emplace_back\s*\(|\.emplace\s*\("
    r"|\.insert\s*\(|\.append\s*\(|\bstd::vector<|\bstd::string\s+\w"
    r"|\bto_string\s*\("
)

TSA_EXEMPT_RE = re.compile(r"//\s*lint:\s*tsa-exempt\s+\S+")
RAW_MUTEX_RE = re.compile(
    r"\bstd::(?:mutex|recursive_mutex|timed_mutex|recursive_timed_mutex"
    r"|shared_mutex|shared_timed_mutex|condition_variable(?:_any)?)\b"
)
NAKED_LOCK_RE = re.compile(r"(?:\.|->)\s*(?:try_)?(?:un)?lock\s*\(")
THREAD_SPAWN_RE = re.compile(r"\bstd::(?:j)?thread\b(?!\s*::)")
NO_TSA_RE = re.compile(r"\bTFACC_NO_TSA\b")
SERVE_DIR = REPO / "src" / "serve"

HOT_PATH_RE = re.compile(r"//\s*hot-path:\s*allocation-free")
HOT_REGION_RE = re.compile(r"//\s*hot-path:\s*allocation-free\s+region")
HOT_REGION_END_RE = re.compile(r"//\s*hot-path:\s*region\s+end")


def allowed(line: str, rule: str) -> bool:
    m = ALLOW_RE.search(line)
    return m is not None and m.group(1) == rule


def lint_pointer_maps(path: pathlib.Path, text: str, lines: list[str],
                      errors: list[str]) -> None:
    lookup_only: set[str] = set()
    for m in PTR_MAP_DECL_RE.finditer(text):
        name, trailer = m.group(1), m.group(2)
        line_no = text.count("\n", 0, m.start()) + 1
        decl = m.group(0)
        if LOOKUP_ONLY_RE.search(decl) or LOOKUP_ONLY_RE.search(trailer):
            lookup_only.add(name)
        else:
            errors.append(
                f"{path}:{line_no}: pointer-keyed-iteration: pointer-keyed "
                f"unordered_map '{name}' lacks a '// lint: lookup-only' "
                f"declaration comment (hash order = allocator order)")
    if not lookup_only:
        return
    # Any range-for over a lookup-only map (bare name or member access).
    names = "|".join(sorted(lookup_only))
    iter_re = re.compile(rf"for\s*\(.*:\s*[\w.\->]*\b(?:{names})\b\s*\)")
    for i, line in enumerate(lines, start=1):
        if iter_re.search(line) and not allowed(line, "pointer-keyed-iteration"):
            errors.append(
                f"{path}:{i}: pointer-keyed-iteration: range-for over a "
                f"lookup-only pointer-keyed map — iterate an "
                f"insertion-ordered mirror (e.g. CaptureStore::mha_order) "
                f"instead")


def lint_nondeterminism(path: pathlib.Path, lines: list[str],
                        errors: list[str]) -> None:
    if path == RANDOM_HOME:
        return
    for i, line in enumerate(lines, start=1):
        code = line.split("//", 1)[0]
        if NONDET_RE.search(code) and not allowed(line, "nondeterminism-source"):
            errors.append(
                f"{path}:{i}: nondeterminism-source: platform randomness/"
                f"clock outside src/common/random.hpp — draw from the "
                f"seeded Rng instead")


def lint_hot_paths(path: pathlib.Path, lines: list[str],
                   errors: list[str]) -> None:
    i = 0
    while i < len(lines):
        if not HOT_PATH_RE.search(lines[i]):
            i += 1
            continue
        if HOT_REGION_RE.search(lines[i]):
            # Region form: every line until '// hot-path: region end' is hot.
            j = i + 1
            while j < len(lines) and not HOT_REGION_END_RE.search(lines[j]):
                code = lines[j].split("//", 1)[0]
                if ALLOC_RE.search(code) and not allowed(
                        lines[j], "hot-path-alloc"):
                    errors.append(
                        f"{path}:{j + 1}: hot-path-alloc: allocation inside "
                        f"a '// hot-path: allocation-free region'")
                j += 1
            if j >= len(lines):
                errors.append(
                    f"{path}:{i + 1}: hot-path-alloc: unterminated "
                    f"'// hot-path: allocation-free region' (no "
                    f"'// hot-path: region end')")
            i = j + 1
            continue
        # The marked function's body: from its first '{' to brace balance 0.
        depth = 0
        entered = False
        j = i + 1
        while j < len(lines):
            code = lines[j].split("//", 1)[0]
            if entered and ALLOC_RE.search(code) and not allowed(
                    lines[j], "hot-path-alloc"):
                errors.append(
                    f"{path}:{j + 1}: hot-path-alloc: allocation inside a "
                    f"'// hot-path: allocation-free' function")
            depth += code.count("{") - code.count("}")
            if "{" in code:
                entered = True
            if entered and depth <= 0:
                break
            j += 1
        i = j + 1


def lint_raw_mutex(path: pathlib.Path, lines: list[str],
                   errors: list[str]) -> None:
    if path == TSA_HOME:
        return
    for i, line in enumerate(lines, start=1):
        code = line.split("//", 1)[0]
        if RAW_MUTEX_RE.search(code) and not TSA_EXEMPT_RE.search(line):
            errors.append(
                f"{path}:{i}: raw-mutex-member: raw std::mutex/"
                f"condition_variable outside common/thread_annotations.hpp "
                f"— use the annotated Mutex/CondVar wrappers so "
                f"-Wthread-safety can see the lock (or justify with "
                f"'// lint: tsa-exempt <reason>')")


def lint_naked_lock(path: pathlib.Path, lines: list[str],
                    errors: list[str]) -> None:
    if path == TSA_HOME:
        return
    for i, line in enumerate(lines, start=1):
        code = line.split("//", 1)[0]
        if NAKED_LOCK_RE.search(code) and not allowed(line, "naked-lock"):
            errors.append(
                f"{path}:{i}: naked-lock: manual lock()/unlock() outside "
                f"an RAII guard — hold critical sections via MutexLock "
                f"(mid-scope escapes go through its annotated "
                f"Unlock()/Lock())")


def lint_thread_spawn(path: pathlib.Path, lines: list[str],
                      errors: list[str]) -> None:
    if path in THREAD_HOMES:
        return
    for i, line in enumerate(lines, start=1):
        code = line.split("//", 1)[0]
        if THREAD_SPAWN_RE.search(code) and not allowed(line, "thread-spawn"):
            errors.append(
                f"{path}:{i}: thread-spawn: std::thread outside "
                f"serve/worker_pool — host threads run under the "
                f"WorkerPool's park/unpark discipline (the one the "
                f"admission-gate model checker covers)")


def lint_no_tsa_escape(path: pathlib.Path, lines: list[str],
                       errors: list[str]) -> None:
    if SERVE_DIR not in path.parents:
        return
    for i, line in enumerate(lines, start=1):
        code = line.split("//", 1)[0]
        if NO_TSA_RE.search(code):
            errors.append(
                f"{path}:{i}: no-tsa-escape: TFACC_NO_TSA inside src/serve/ "
                f"— the serving stack's annotation budget is zero escapes; "
                f"restructure the access instead")


def lint_file(path: pathlib.Path, text: str, errors: list[str]) -> None:
    lines = text.splitlines()
    lint_pointer_maps(path, text, lines, errors)
    lint_nondeterminism(path, lines, errors)
    lint_hot_paths(path, lines, errors)
    lint_raw_mutex(path, lines, errors)
    lint_naked_lock(path, lines, errors)
    lint_thread_spawn(path, lines, errors)
    lint_no_tsa_escape(path, lines, errors)


# One seeded violation (and one exempted twin that must stay clean) per
# rule; --self-test runs each through the real rule engine.
SELF_TEST_CASES = [
    ("pointer-keyed-iteration",
     "std::unordered_map<const Op*, int> uses_;\n",
     "std::unordered_map<const Op*, int> uses_;  // lint: lookup-only\n"),
    ("nondeterminism-source",
     "const unsigned seed = std::random_device{}();\n",
     "const unsigned seed = 1;  // std::random_device via comment is fine\n"),
    ("hot-path-alloc",
     "// hot-path: allocation-free\n"
     "void f() {\n  v.push_back(1);\n}\n",
     "// hot-path: allocation-free\n"
     "void f() {\n  v.push_back(1);  // lint: allow(hot-path-alloc)\n}\n"),
    ("raw-mutex-member",
     "mutable std::mutex mu_;\n",
     "mutable std::mutex mu_;  // lint: tsa-exempt ffi-boundary\n"),
    ("naked-lock",
     "mu_.lock();\ncount += 1;\nmu_.unlock();\n",
     "const MutexLock lock(mu_);\ncount += 1;\n"),
    ("thread-spawn",
     "std::thread worker([] { run(); });\n",
     "const unsigned hw = std::thread::hardware_concurrency();\n"),
]

# no-tsa-escape is path-scoped (src/serve only), so it gets its own pair
# of fake paths rather than a SELF_TEST_CASES row.
NO_TSA_SNIPPET = "void poke() TFACC_NO_TSA { slots_.clear(); }\n"


def self_test() -> int:
    failures = 0
    fake = REPO / "src" / "self_test" / "seeded.cpp"
    for rule, bad, good in SELF_TEST_CASES:
        errors: list[str] = []
        lint_file(fake, bad, errors)
        caught = [e for e in errors if f" {rule}: " in e]
        if not caught:
            print(f"self-test: seeded {rule} violation NOT caught",
                  file=sys.stderr)
            failures += 1
        clean: list[str] = []
        lint_file(fake, good, clean)
        if any(f" {rule}: " in e for e in clean):
            print(f"self-test: exempted {rule} twin flagged spuriously",
                  file=sys.stderr)
            failures += 1

    serve_errors: list[str] = []
    lint_file(SERVE_DIR / "seeded.hpp", NO_TSA_SNIPPET, serve_errors)
    if not any(" no-tsa-escape: " in e for e in serve_errors):
        print("self-test: seeded no-tsa-escape violation NOT caught",
              file=sys.stderr)
        failures += 1
    outside_errors: list[str] = []
    lint_file(REPO / "src" / "sim" / "seeded.hpp", NO_TSA_SNIPPET,
              outside_errors)
    if any(" no-tsa-escape: " in e for e in outside_errors):
        print("self-test: no-tsa-escape flagged outside src/serve",
              file=sys.stderr)
        failures += 1

    print(f"lint_invariants --self-test: {len(SELF_TEST_CASES) + 1} rules, "
          f"{failures} failure(s)")
    return 0 if failures == 0 else 1


def main(argv: list[str]) -> int:
    if argv == ["--self-test"]:
        return self_test()
    if argv:
        print("usage: lint_invariants.py [--self-test]", file=sys.stderr)
        return 2

    errors: list[str] = []
    files = sorted(
        p for d in SCAN_DIRS for p in (REPO / d).rglob("*")
        if p.suffix in (".cpp", ".hpp", ".h", ".cc"))
    for path in files:
        lint_file(path, path.read_text(encoding="utf-8"), errors)

    for e in errors:
        print(e, file=sys.stderr)
    print(f"lint_invariants: {len(files)} files scanned, "
          f"{len(errors)} violation(s)")
    return 0 if not errors else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
