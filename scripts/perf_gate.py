#!/usr/bin/env python3
"""Perf gate: fail when a bench's modeled throughput or SA utilization
regresses more than the tolerance against its committed baseline.

Usage:  perf_gate.py CURRENT_BENCH.json BASELINE.json [--tolerance 0.02]

The BENCH_*.json files are produced by bench_batch_throughput and
bench_scheduler (see README "BENCH_*.json schema"). The simulated cycle
ledgers are integer-deterministic for a given workload, so on an unchanged
tree current == baseline exactly; the tolerance only leaves head-room for
deliberate small model refinements. Gated metrics, compared at every
structurally matching position (sweep points, beam section, gates):

  * sa_utilization               — must not drop below baseline * (1 - tol)
  * modeled_sentences_per_second — must not drop below baseline * (1 - tol)
  * wallclock_speedup_vs_scalar  — measured SIMD/scalar serve-loop ratio
  * gemm_ns_scalar_over_simd     — measured scalar/SIMD GEMM-kernel ratio
  * wall_speedup_vs_1card        — measured multi-card scaling ratio (PR 9)

The wall-clock metrics are dimensionless ratios (host-speed free), but they
do depend on the host's SIMD class. When both files carry a "host" stanza
(bench/json.hpp write_host_info) and the kernel capabilities differ — e.g. a
NEON box diffing an AVX2 baseline — the wall-clock gates are SKIPPED;
simulated-cycle metrics stay gated regardless. The multi-card scaling ratio
additionally depends on the host's core count: it is SKIPPED whenever either
side of the diff ran on fewer than 4 cores (the host stanza's "cores"), since
a core-starved box cannot reproduce a 4-card curve. Gate wall-clock files
with a loose --tolerance (CI uses 0.25): they are measured, not
integer-replayed.

Workload keys (sentences, max_len, slots, cards, kernel, ...) must match
exactly: comparing different workloads is a configuration error, not a
regression.

The walk is driven by the baseline, so a gated metric present only in the
CURRENT bench (a new sweep point, a new gated section) would otherwise be
silently unguarded forever. Those paths are reported as UNBASELINED and
fail the gate: shipping a new gated metric requires refreshing its baseline
in the same change (see README "Refreshing the perf baselines").
"""

import argparse
import json
import sys

# Multi-card scaling gates: measured speedup ratios that need >= 4 host
# cores on both sides of the diff to be comparable.
SCALING_METRICS = {"wall_speedup_vs_1card"}
# Wall-clock gates: dimensionless measured ratios, skipped on a host whose
# kernel capability differs from the baseline's. Scaling ratios are
# wall-clock too (the capability skip applies on top of the core-count one).
WALLCLOCK_METRICS = {"wallclock_speedup_vs_scalar",
                     "gemm_ns_scalar_over_simd"} | SCALING_METRICS
GATED_METRICS = {"sa_utilization",
                 "modeled_sentences_per_second"} | WALLCLOCK_METRICS
WORKLOAD_KEYS = {"sentences", "max_len", "slots", "slots_per_card", "cards",
                 "beam_size", "bench", "pack_prefill", "prefill_chunk_rows",
                 "arrival_mean_gap_cycles", "kernel", "d_model", "backend",
                 "repeats"}


def capability(doc):
    """The host stanza's kernel capability, or None on pre-PR-8 files."""
    host = doc.get("host") if isinstance(doc, dict) else None
    return host.get("kernel_capability") if isinstance(host, dict) else None


def host_cores(doc):
    """The host stanza's core count, or None on pre-PR-9 files."""
    host = doc.get("host") if isinstance(doc, dict) else None
    return host.get("cores") if isinstance(host, dict) else None


def walk(current, baseline, path, failures, checks, skip_wallclock,
         skip_scaling, skips):
    if isinstance(baseline, dict):
        if not isinstance(current, dict):
            failures.append(f"{path}: baseline is an object, current is not")
            return
        for key, base_value in baseline.items():
            if key not in current:
                failures.append(f"{path}.{key}: missing from current bench")
                continue
            walk(current[key], base_value, f"{path}.{key}", failures, checks,
                 skip_wallclock, skip_scaling, skips)
    elif isinstance(baseline, list):
        if not isinstance(current, list) or len(current) != len(baseline):
            failures.append(f"{path}: sweep shape differs from baseline")
            return
        for i, base_value in enumerate(baseline):
            walk(current[i], base_value, f"{path}[{i}]", failures, checks,
                 skip_wallclock, skip_scaling, skips)
    else:
        leaf = path.rsplit(".", 1)[-1]
        if leaf in SCALING_METRICS and skip_scaling:
            skips.append(path)
            print(f"     SKIPPED  {path}: a host on either side has < 4 "
                  f"cores — multi-card scaling gate not comparable")
        elif leaf in WALLCLOCK_METRICS and skip_wallclock:
            skips.append(path)
            print(f"     SKIPPED  {path}: host kernel capability differs "
                  f"from baseline — wall-clock gate not comparable")
        elif leaf in WORKLOAD_KEYS and path.endswith(f".host.{leaf}"):
            # The host stanza describes the machine, not the workload: the
            # "kernel" key there legitimately differs across hosts.
            pass
        elif leaf in WORKLOAD_KEYS and current != baseline:
            failures.append(
                f"{path}: workload mismatch (current {current!r} vs "
                f"baseline {baseline!r}) — rerun the bench with the "
                f"baseline's arguments")
        elif leaf in GATED_METRICS:
            try:
                checks.append((path, float(current), float(baseline)))
            except (TypeError, ValueError):
                failures.append(
                    f"{path}: gated metric is not numeric "
                    f"(current {current!r}, baseline {baseline!r})")


def collect_gated_paths(node, path, out):
    """All paths in `node` whose leaf is a gated metric."""
    if isinstance(node, dict):
        for key, value in node.items():
            collect_gated_paths(value, f"{path}.{key}", out)
    elif isinstance(node, list):
        for i, value in enumerate(node):
            collect_gated_paths(value, f"{path}[{i}]", out)
    elif path.rsplit(".", 1)[-1] in GATED_METRICS:
        out.add(path)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current")
    parser.add_argument("baseline")
    parser.add_argument("--tolerance", type=float, default=0.02,
                        help="allowed fractional regression (default 0.02)")
    args = parser.parse_args()

    with open(args.current) as f:
        current = json.load(f)
    with open(args.baseline) as f:
        baseline = json.load(f)

    cap_current, cap_baseline = capability(current), capability(baseline)
    skip_wallclock = (cap_current is not None and cap_baseline is not None
                      and cap_current != cap_baseline)
    cores_current, cores_baseline = host_cores(current), host_cores(baseline)
    skip_scaling = ((cores_current is not None and cores_current < 4)
                    or (cores_baseline is not None and cores_baseline < 4))

    failures, checks, skips = [], [], []
    walk(current, baseline, "$", failures, checks, skip_wallclock,
         skip_scaling, skips)

    # The baseline-driven walk never sees current-only paths: a gated metric
    # the current bench emits without a baseline counterpart must fail, or
    # new gates would ship unguarded.
    current_gated, baseline_gated = set(), set()
    collect_gated_paths(current, "$", current_gated)
    collect_gated_paths(baseline, "$", baseline_gated)
    unbaselined = sorted(
        path for path in current_gated - baseline_gated
        if not (skip_wallclock
                and path.rsplit(".", 1)[-1] in WALLCLOCK_METRICS)
        if not (skip_scaling
                and path.rsplit(".", 1)[-1] in SCALING_METRICS))
    for path in unbaselined:
        print(f"  UNBASELINED {path}: gated metric has no baseline — "
              f"refresh {args.baseline} in this change")
    failures.extend(f"{path}: gated metric missing from baseline"
                    for path in unbaselined)

    regressions = 0
    for path, cur, base in checks:
        floor = base * (1.0 - args.tolerance)
        status = "ok"
        if cur < floor:
            status = "REGRESSION"
            regressions += 1
        elif cur > base:
            status = "improved"
        print(f"  {status:>10}  {path}: {cur:.6g} (baseline {base:.6g})")

    for failure in failures:
        print(f"  STRUCTURE   {failure}")

    if not checks and not failures:
        if skips:
            print(f"perf gate: PASS ({len(skips)} wall-clock metric(s) "
                  f"skipped on host capability/core mismatch, nothing else "
                  f"gated)")
            return 0
        print("perf gate: no gated metrics found — check the file pair")
        return 1
    if regressions or failures:
        print(f"perf gate: FAIL ({regressions} regression(s), "
              f"{len(failures)} structural problem(s)) vs {args.baseline}")
        return 1
    print(f"perf gate: PASS ({len(checks)} metrics within "
          f"{args.tolerance:.0%} of {args.baseline})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
