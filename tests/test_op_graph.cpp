// Tests for the dependency-driven schedules (PR 4): legality audits over all
// four rebuilt flows (no resource double-booking, no op outrunning its
// operands), the one-slot batch ≡ cached degenerate identity, the pipelined
// softmax model, per-edge slack/stall semantics, and the interleaving win
// over strict program order.
#include <gtest/gtest.h>

#include <vector>

#include "analysis/verifier.hpp"
#include "core/schedules.hpp"

namespace tfacc {
namespace {

AcceleratorConfig accel_config(bool interleave = true) {
  AcceleratorConfig cfg;
  cfg.interleave_decode = interleave;
  return cfg;
}

Cycle run_cycles(const AcceleratorConfig& cfg,
                 ScheduledRun (*build)(const AcceleratorConfig&, Timeline&,
                                       const std::vector<int>&, int, int,
                                       int),
                 const std::vector<int>& totals, int d_model, int num_heads,
                 int project) {
  Timeline tl;
  build(cfg, tl, totals, d_model, num_heads, project);
  return tl.end_time();
}

void expect_legal(const ScheduledRun& run, const std::string& what) {
  const VerifyResult res = verify_schedule(run.graph, run.stats);
  EXPECT_TRUE(res.ok()) << what << "\n" << res.to_string();
}

// --- Legality audits over every rebuilt flow ---------------------------------

TEST(ScheduleAudit, FullMhaFlowIsLegal) {
  Timeline tl;
  expect_legal(schedule_mha(accel_config(), tl, 64, 64, 512, 8),
               "mha 64x64 h8");
  Timeline cross;
  expect_legal(schedule_mha(accel_config(), cross, 5, 24, 128, 2),
               "mha cross 5x24 h2");
  AcceleratorConfig serial = accel_config();
  serial.overlap_softmax = false;
  Timeline ts;
  expect_legal(schedule_mha(serial, ts, 64, 64, 512, 8),
               "mha without softmax overlap");
}

TEST(ScheduleAudit, CachedFlowIsLegalBothPoliciesAndProjections) {
  for (const bool interleave : {true, false})
    for (const int project : {0, 1, 64})
      for (const int s_new : {1, 4}) {
        Timeline tl;
        expect_legal(schedule_mha_cached(accel_config(interleave), tl, s_new,
                                         64, 512, 8, project),
                     "cached s_new=" + std::to_string(s_new) + " project=" +
                         std::to_string(project) +
                         (interleave ? " greedy" : " program-order"));
      }
}

// Slot shapes the serve scheduler produces: greedy decode packs distinct
// sentences (ragged totals), beam search packs sibling hypotheses of the
// same sentence (duplicate totals).
std::vector<int> greedy_totals(int slots) {
  std::vector<int> totals;
  for (int r = 0; r < slots; ++r) totals.push_back(3 + (5 * r) % 11);
  return totals;
}

std::vector<int> beam_totals(int slots) {
  std::vector<int> totals;
  for (int r = 0; r < slots; ++r) totals.push_back(4 + 3 * (r / 4));
  return totals;
}

TEST(ScheduleAudit, BatchFlowIsLegalAcrossSlotShapesAndPolicies) {
  for (const bool interleave : {true, false})
    for (const int slots : {1, 8, 16})
      for (const bool beam : {false, true}) {
        const std::vector<int> totals =
            beam ? beam_totals(slots) : greedy_totals(slots);
        for (const int heads : {1, 8}) {
          for (const int project : {0, slots}) {
            Timeline tl;
            expect_legal(
                schedule_mha_cached_batch(accel_config(interleave), tl,
                                          totals, heads * 64, heads, project),
                std::string(beam ? "beam" : "greedy") + " slots=" +
                    std::to_string(slots) + " heads=" +
                    std::to_string(heads) + " project=" +
                    std::to_string(project) +
                    (interleave ? " interleaved" : " program-order"));
          }
        }
      }
}

TEST(ScheduleAudit, FfnFlowIsLegal) {
  Timeline tl;
  expect_legal(schedule_ffn(accel_config(), tl, 64, 512, 2048), "ffn 64");
  Timeline tiny;
  expect_legal(schedule_ffn(accel_config(), tiny, 1, 64, 256), "ffn 1-row");
}

TEST(ScheduleAudit, ShimCatchesATamperedSchedule) {
  // audit_schedule() is a compat shim over verify_schedule() since PR 7;
  // tampering must still surface through the string API (per-code typed
  // coverage lives in tests/test_verifier.cpp).
  Timeline tl;
  ScheduledRun run = schedule_ffn(accel_config(), tl, 8, 64, 256);
  ASSERT_EQ(audit_schedule(run.graph, run.stats), "");
  // Drag the last op to start before its deps finished.
  Interval& last = run.stats.intervals.back();
  const Cycle len = last.duration();
  last.start = 0;
  last.end = len;
  run.stats.result_ready.back() = last.end;
  EXPECT_NE(audit_schedule(run.graph, run.stats), "");
}

TEST(ScheduleAudit, ShimCatchesAnIgnoredColdWeightLoad) {
  Timeline tl;
  ScheduledRun run = schedule_ffn(accel_config(), tl, 8, 64, 256);
  ASSERT_EQ(audit_schedule(run.graph, run.stats), "");
  // The first SA op has no deps and static weights; sliding it to cycle 0
  // creates no dep violation or overlap, but skips the run's initial
  // 64-cycle weight load — the audit must still object.
  Interval& first = run.stats.intervals.front();
  ASSERT_EQ(first.start, accel_config().weight_load_cycles);
  const Cycle len = first.duration();
  first.start = 0;
  first.end = len;
  run.stats.result_ready.front() = first.end;
  EXPECT_NE(audit_schedule(run.graph, run.stats), "");
}

// --- Degenerate one-slot identity --------------------------------------------

TEST(BatchDegenerate, OneSlotIsCycleIdenticalToCachedAcrossProjections) {
  for (const int project : {0, 1})  // fully cached and appending this step
    for (const int s_total : {1, 7, 64, 200}) {
      for (const int heads : {1, 8}) {
        Timeline batch_tl, cached_tl;
        const ScheduledRun batch = schedule_mha_cached_batch(
            accel_config(), batch_tl, {s_total}, heads * 64, heads, project);
        const ScheduledRun cached = schedule_mha_cached(
            accel_config(), cached_tl, 1, s_total, heads * 64, heads,
            project);
        EXPECT_EQ(batch_tl.end_time(), cached_tl.end_time())
            << "s_total=" << s_total << " heads=" << heads
            << " project=" << project;
        // Not just the same total: every interval lands identically.
        ASSERT_EQ(batch.stats.intervals.size(), cached.stats.intervals.size());
        for (std::size_t i = 0; i < batch.stats.intervals.size(); ++i) {
          EXPECT_EQ(batch.stats.intervals[i].start,
                    cached.stats.intervals[i].start);
          EXPECT_EQ(batch.stats.intervals[i].end,
                    cached.stats.intervals[i].end);
        }
      }
    }
}

// --- The interleaving win ----------------------------------------------------

TEST(Interleaving, GreedyBeatsProgramOrderOnPackedSlots) {
  for (const int slots : {8, 16}) {
    const Cycle greedy =
        run_cycles(accel_config(true), schedule_mha_cached_batch,
                   greedy_totals(slots), 64, 1, slots);
    const Cycle program =
        run_cycles(accel_config(false), schedule_mha_cached_batch,
                   greedy_totals(slots), 64, 1, slots);
    EXPECT_LT(greedy, program) << slots << " slots";
    // Program order pays ~one softmax latency per slot; interleaving must
    // recover the bulk of those bubbles, not a token amount.
    EXPECT_GT(program - greedy, slots * 10) << slots << " slots";
  }
}

TEST(Interleaving, StallShrinksVersusProgramOrder) {
  Timeline greedy_tl, program_tl;
  const ScheduledRun greedy = schedule_mha_cached_batch(
      accel_config(true), greedy_tl, greedy_totals(16), 64, 1, 16);
  const ScheduledRun program = schedule_mha_cached_batch(
      accel_config(false), program_tl, greedy_totals(16), 64, 1, 16);
  EXPECT_LT(greedy.stats.softmax_stall, program.stats.softmax_stall);
  // Per-edge accounting covers every softmax→AV edge in both policies.
  EXPECT_EQ(greedy.stats.softmax_edges, 16);
  EXPECT_EQ(program.stats.softmax_edges, 16);
}

TEST(Interleaving, SchedulesAreDeterministic) {
  Timeline a_tl, b_tl;
  const ScheduledRun a = schedule_mha_cached_batch(
      accel_config(), a_tl, greedy_totals(16), 512, 8, 16);
  const ScheduledRun b = schedule_mha_cached_batch(
      accel_config(), b_tl, greedy_totals(16), 512, 8, 16);
  ASSERT_EQ(a.stats.intervals.size(), b.stats.intervals.size());
  for (std::size_t i = 0; i < a.stats.intervals.size(); ++i) {
    EXPECT_EQ(a.stats.intervals[i].start, b.stats.intervals[i].start);
    EXPECT_EQ(a.stats.intervals[i].label, b.stats.intervals[i].label);
  }
}

// --- Scheduler kernel semantics ----------------------------------------------

TEST(OpGraphScheduler, PipelinedSoftmaxOverlapsBackToBackRows) {
  // Two independent score rows: the second softmax enters the pipeline as
  // soon as the first's occupancy ends — the fill depth is paid once per
  // row as result latency, not as unit occupancy.
  AcceleratorConfig cfg = accel_config();
  OpGraph g;
  const OpGraph::SaCost cost{9, 1, 0};
  const int d0 = g.add_sa(cost, {}, OpNode::kStaticWeight, "d0");
  const int d1 = g.add_sa(cost, {}, OpNode::kStaticWeight, "d1");
  const int sm0 = g.add_softmax(20, cfg.softmax_pipeline_depth, d0, "sm0");
  const int sm1 = g.add_softmax(20, cfg.softmax_pipeline_depth, d1, "sm1");
  Timeline tl;
  const ScheduleStats st =
      schedule_ops(g, cfg.weight_load_cycles, IssuePolicy::kGreedy, tl);
  EXPECT_EQ(st.intervals[static_cast<std::size_t>(sm1)].start,
            st.intervals[static_cast<std::size_t>(sm0)].end);
  // Results still drain a full pipeline depth after occupancy.
  EXPECT_EQ(st.result_ready[static_cast<std::size_t>(sm0)],
            st.intervals[static_cast<std::size_t>(sm0)].end +
                cfg.softmax_pipeline_depth);
}

TEST(OpGraphScheduler, IsolatedSoftmaxLatencyMatchesPrePipelineModel) {
  // An isolated softmax still delays its consumer by occupancy + depth —
  // the pre-PR-4 duration — so single-sentence flows time identically.
  AcceleratorConfig cfg = accel_config();
  OpGraph g;
  const int d = g.add_sa({9, 1, 0}, {}, OpNode::kStaticWeight, "d");
  const int sm = g.add_softmax(2 * 64, cfg.softmax_pipeline_depth, d, "sm");
  const int av = g.add_sa({9, 1, 0}, {sm}, OpNode::kStaticWeight, "av", sm);
  Timeline tl;
  const ScheduleStats st =
      schedule_ops(g, cfg.weight_load_cycles, IssuePolicy::kGreedy, tl);
  EXPECT_EQ(st.intervals[static_cast<std::size_t>(av)].start,
            st.intervals[static_cast<std::size_t>(sm)].end +
                cfg.softmax_pipeline_depth);
  // The SA idled the whole wait: charged as a per-edge stall, slack < 0.
  EXPECT_GT(st.softmax_stall, 0);
  EXPECT_LT(st.softmax_slack_min, 0);
  EXPECT_EQ(st.softmax_edges, 1);
}

TEST(OpGraphScheduler, FirstSaOpPaysTheColdWeightLoad) {
  OpGraph g;
  g.add_sa({10, 10, 0}, {}, OpNode::kStaticWeight, "a");
  g.add_sa({10, 10, 0}, {}, OpNode::kStaticWeight, "b");
  Timeline tl;
  const ScheduleStats st = schedule_ops(g, 64, IssuePolicy::kGreedy, tl);
  EXPECT_EQ(st.intervals[0].start, 64);  // cold load exposed
  EXPECT_EQ(st.intervals[1].start, 74);  // prefetched under op a
  EXPECT_EQ(st.sa_exposed_load, 64);
}

TEST(OpGraphScheduler, DynamicWeightWaitsForProducerPlusLoad) {
  OpGraph g;
  const int k = g.add_sa({10, 10, 0}, {}, OpNode::kStaticWeight, "k");
  const int d = g.add_sa({10, 10, 0}, {}, k, "d");
  Timeline tl;
  const ScheduleStats st = schedule_ops(g, 64, IssuePolicy::kGreedy, tl);
  // k: cold load 64 + 10 busy; d: k's result + its own 64-cycle tile load.
  EXPECT_EQ(st.intervals[static_cast<std::size_t>(d)].start,
            st.intervals[static_cast<std::size_t>(k)].end + 64);
}

TEST(OpGraphScheduler, RejectsForwardDependencies) {
  OpGraph g;
  EXPECT_THROW(g.add_sa({1, 1, 0}, {0}, OpNode::kStaticWeight, "self"),
               CheckError);
  EXPECT_THROW(g.add_sa({1, 1, 0}, {}, 3, "future-weight"), CheckError);
}

}  // namespace
}  // namespace tfacc
