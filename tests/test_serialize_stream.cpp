// Tests for weight serialization, back-to-back streaming throughput, and the
// PWL-resolution ablation of the softmax units.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "core/accelerator.hpp"
#include "hwarith/exp_ln.hpp"
#include "hwarith/softmax_unit.hpp"
#include "quant/quantizer.hpp"
#include "reference/functional.hpp"
#include "reference/serialize.hpp"
#include "reference/transformer.hpp"
#include "tensor/compare.hpp"
#include "tensor/ops.hpp"

namespace tfacc {
namespace {

ModelConfig micro_config() {
  ModelConfig cfg;
  cfg.name = "micro";
  cfg.d_model = 32;
  cfg.d_ff = 128;
  cfg.num_heads = 2;
  cfg.head_dim = 16;
  cfg.num_encoder_layers = 2;
  cfg.num_decoder_layers = 1;
  return cfg;
}

// --- Serialization ------------------------------------------------------------

TEST(Serialize, RoundTripsExactly) {
  Rng rng(1);
  const TransformerWeights w =
      TransformerWeights::random(micro_config(), 19, rng);
  std::stringstream ss;
  save_weights(w, ss);
  const TransformerWeights r = load_weights(ss);

  EXPECT_EQ(r.vocab_size, w.vocab_size);
  EXPECT_EQ(r.config.d_model, w.config.d_model);
  EXPECT_EQ(r.config.num_heads, w.config.num_heads);
  EXPECT_EQ(r.src_embedding, w.src_embedding);
  EXPECT_EQ(r.tgt_embedding, w.tgt_embedding);
  EXPECT_EQ(r.output_projection, w.output_projection);
  ASSERT_EQ(r.encoder_layers.size(), w.encoder_layers.size());
  EXPECT_EQ(r.encoder_layers[1].mha.heads[1].wk,
            w.encoder_layers[1].mha.heads[1].wk);
  EXPECT_EQ(r.encoder_layers[0].ffn.w2, w.encoder_layers[0].ffn.w2);
  EXPECT_EQ(r.decoder_layers[0].cross_mha.norm.gamma,
            w.decoder_layers[0].cross_mha.norm.gamma);
}

TEST(Serialize, LoadedModelDecodesIdentically) {
  Rng rng(2);
  const TransformerWeights w =
      TransformerWeights::random(micro_config(), 19, rng);
  std::stringstream ss;
  save_weights(w, ss);
  Transformer a(w);
  Transformer b(load_weights(ss));
  const TokenSeq src{3, 5, 7, 9};
  EXPECT_EQ(a.translate_greedy(src, 8), b.translate_greedy(src, 8));
}

TEST(Serialize, RejectsGarbageAndTruncation) {
  std::stringstream garbage("not a weight file at all");
  EXPECT_THROW(load_weights(garbage), CheckError);

  Rng rng(3);
  const TransformerWeights w =
      TransformerWeights::random(micro_config(), 12, rng);
  std::stringstream ss;
  save_weights(w, ss);
  const std::string full = ss.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_THROW(load_weights(truncated), CheckError);
}

TEST(Serialize, FileRoundTrip) {
  Rng rng(4);
  const TransformerWeights w =
      TransformerWeights::random(micro_config(), 12, rng);
  const std::string path = "/tmp/tfacc_test_weights.bin";
  save_weights(w, path);
  const TransformerWeights r = load_weights(path);
  EXPECT_EQ(r.src_embedding, w.src_embedding);
  std::remove(path.c_str());
  EXPECT_THROW(load_weights("/tmp/tfacc_does_not_exist.bin"), CheckError);
}

// --- Streaming throughput -------------------------------------------------------

// Since PR 5 the steady interval is derived from a two-invocation fused
// ledger (tests/test_fused_step.cpp pins that identity); at the paper's
// design point the ledger realizes exactly the overlap the old analytic
// model asserted — run 2 skips the cold load and hides run 1's LayerNorm
// tail under its own SA work — so the subtraction holds as a *derived*
// cross-check here rather than as the defining formula.
TEST(Streaming, SteadyIntervalDropsColdLoadAndLnTail) {
  Accelerator acc;
  const RunReport one = acc.time_mha(64, 64, 512, 8);
  const auto stream = acc.stream_mha(64, 64, 512, 8);
  EXPECT_EQ(stream.first_latency, one.total_cycles);
  EXPECT_EQ(stream.steady_interval,
            one.total_cycles - 64 - one.layernorm_busy);
  EXPECT_LT(stream.steady_interval, stream.first_latency);
}

TEST(Streaming, TotalCyclesIsAffineInBatch) {
  Accelerator acc;
  const auto s = acc.stream_ffn(64, 512, 2048);
  EXPECT_EQ(s.total_cycles(0), 0);
  EXPECT_EQ(s.total_cycles(1), s.first_latency);
  EXPECT_EQ(s.total_cycles(5), s.first_latency + 4 * s.steady_interval);
}

TEST(Streaming, ThroughputBeatsNaiveLatencyRate) {
  Accelerator acc;
  const auto s = acc.stream_mha(64, 64, 512, 8);
  const double naive_rate = 200e6 / static_cast<double>(s.first_latency);
  EXPECT_GT(s.sequences_per_second(), naive_rate);
}

// --- PWL resolution ablation -----------------------------------------------------

TEST(PwlResolution, AccuracyImprovesWithSegments) {
  double err2 = 0, err4 = 0, err16 = 0;
  for (int i = 0; i <= 1000; ++i) {
    const double x = -12.0 * i / 1000.0;
    const auto fx = Fixed<hw::kSoftmaxFracBits>::from_double(x);
    const double ref = std::exp(x);
    err2 += std::abs(hw::exp_unit_q10(fx.raw, hw::PwlResolution::kTwo) /
                         1024.0 - ref);
    err4 += std::abs(hw::exp_unit_q10(fx.raw, hw::PwlResolution::kFour) /
                         1024.0 - ref);
    err16 += std::abs(hw::exp_unit_q10(fx.raw, hw::PwlResolution::kSixteen) /
                          1024.0 - ref);
  }
  EXPECT_LT(err4, err2);
  EXPECT_LE(err16, err4);
}

TEST(PwlResolution, LnVariantsTrackStdLog) {
  for (double v : {1.0, 1.7, 3.0, 100.0, 5000.0}) {
    const auto fx = static_cast<std::int64_t>(v * 1024.0);
    for (auto res : {hw::PwlResolution::kTwo, hw::PwlResolution::kEight}) {
      const double got = hw::ln_unit_q10(fx, res) / 1024.0;
      EXPECT_NEAR(got, std::log(v), 0.05 * std::max(1.0, std::log(v)) + 0.02)
          << "v=" << v;
    }
  }
}

TEST(PwlResolution, DefaultUnitUnaffectedByAblationApi) {
  // The shipped dyadic 4-segment unit must be bit-identical to itself
  // through the default constructor (no resolution override).
  Rng rng(5);
  MatI32 d(4, 32);
  for (int r = 0; r < 4; ++r)
    for (int c = 0; c < 32; ++c) d(r, c) = rng.uniform_int(-10000, 10000);
  const hw::SoftmaxUnit a(1.0 / 256.0);
  const hw::SoftmaxUnit b(1.0 / 256.0);
  EXPECT_EQ(a(d, no_mask(4, 32)), b(d, no_mask(4, 32)));
}

TEST(PwlResolution, SoftmaxAccuracyOrdering) {
  Rng rng(6);
  MatI32 d(16, 48);
  for (int r = 0; r < 16; ++r)
    for (int c = 0; c < 48; ++c) d(r, c) = rng.uniform_int(-20000, 20000);
  const double d_scale = 1.0 / 512.0;
  const Mask m = no_mask(16, 48);
  const MatF ref = scaled_masked_softmax(
      dequantize_i32(d, static_cast<float>(d_scale)), m, 8.0f);
  auto err = [&](hw::PwlResolution res) {
    const hw::SoftmaxUnit unit(d_scale, res);
    return max_abs_diff(dequantize(unit(d, m), QuantParams{hw::kProbScale}),
                        ref);
  };
  const double e2 = err(hw::PwlResolution::kTwo);
  const double e16 = err(hw::PwlResolution::kSixteen);
  EXPECT_LE(e16, e2);
  EXPECT_LE(e16, 0.02);  // INT8 floor
}

}  // namespace
}  // namespace tfacc
