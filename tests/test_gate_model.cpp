// Tests for the AdmissionGate protocol model checker
// (src/analysis/gate_model.hpp): the faithful protocol verifies clean over
// every interleaving of every small-scope shape, each seeded tamper is
// caught by exactly its documented GATE-* code, and the exploration itself
// is deterministic (state/transition counts and the terminal fingerprint
// reproduce run to run — the checker can't be a flaky oracle).
#include "analysis/gate_model.hpp"

#include <gtest/gtest.h>

#include <string>

namespace tfacc {
namespace {

GateModelConfig config(int cards, int reqs, int slots, bool proxy = false,
                       GateTamper tamper = GateTamper::kNone) {
  GateModelConfig cfg;
  cfg.num_cards = cards;
  cfg.num_requests = reqs;
  cfg.slots_per_card = slots;
  cfg.proxy_keys = proxy;
  cfg.tamper = tamper;
  return cfg;
}

std::string describe(const GateModelConfig& cfg, const GateModelResult& res) {
  return "cards=" + std::to_string(cfg.num_cards) +
         " reqs=" + std::to_string(cfg.num_requests) +
         " slots=" + std::to_string(cfg.slots_per_card) +
         (cfg.proxy_keys ? " proxy" : " accel") + "\n" + res.to_string();
}

// --------------------------------------------------------------------------
// Faithful protocol: clean over the whole small-scope grid.
// --------------------------------------------------------------------------

TEST(GateModel, FaithfulProtocolVerifiesCleanAcrossGrid) {
  for (int cards = 1; cards <= 3; ++cards)
    for (int reqs = 0; reqs <= 3; ++reqs)
      for (int slots = 1; slots <= 3; ++slots)
        for (const bool proxy : {false, true}) {
          const GateModelConfig cfg = config(cards, reqs, slots, proxy);
          const GateModelResult res = check_gate_model(cfg);
          EXPECT_TRUE(res.ok()) << describe(cfg, res);
          EXPECT_GE(res.terminals, 1) << describe(cfg, res);
        }
}

// The acceptance bound: cards=3, requests=3 explored exhaustively with
// zero diagnostics, and the space is genuinely concurrent (many distinct
// states, many interleavings collapsing onto ONE terminal).
TEST(GateModel, ThreeCardsThreeRequestsExhaustive) {
  const GateModelConfig cfg = config(3, 3, 2);
  const GateModelResult res = check_gate_model(cfg);
  EXPECT_TRUE(res.ok()) << describe(cfg, res);
  EXPECT_FALSE(res.truncated);
  EXPECT_GT(res.states, 100) << "suspiciously small exploration";
  EXPECT_GT(res.transitions, res.states) << "DFS explored no branching";
  EXPECT_EQ(res.terminals, 1)
      << "a deterministic protocol must quiesce in exactly one state";
  EXPECT_FALSE(res.terminal_fingerprint.empty());
}

// Determinism of the admission outcome across *shapes of concurrency*: a
// 1-card farm and a 3-card farm differ, but the same farm explored twice
// must land on the identical terminal fingerprint (see below), and every
// clean run reports exactly one terminal state.
TEST(GateModel, EveryCleanConfigQuiescesUniquely) {
  for (int cards = 1; cards <= 3; ++cards) {
    const GateModelConfig cfg = config(cards, 3, 2);
    const GateModelResult res = check_gate_model(cfg);
    ASSERT_TRUE(res.ok()) << describe(cfg, res);
    EXPECT_EQ(res.terminals, 1) << describe(cfg, res);
  }
}

// --------------------------------------------------------------------------
// Exploration determinism: the checker is a reproducible oracle.
// --------------------------------------------------------------------------

TEST(GateModel, StateCountsAndFingerprintReproduce) {
  const GateModelConfig cfg = config(3, 3, 3, /*proxy=*/true);
  const GateModelResult first = check_gate_model(cfg);
  const GateModelResult second = check_gate_model(cfg);
  ASSERT_TRUE(first.ok()) << describe(cfg, first);
  EXPECT_EQ(first.states, second.states);
  EXPECT_EQ(first.transitions, second.transitions);
  EXPECT_EQ(first.terminals, second.terminals);
  EXPECT_EQ(first.grants, second.grants);
  EXPECT_EQ(first.terminal_fingerprint, second.terminal_fingerprint);
}

// --------------------------------------------------------------------------
// Tamper self-tests: each seeded protocol bug must be caught by exactly
// its documented code (same pairing tools/gate_model_check pins). A tamper
// caught by the "wrong" code would mean the diagnostics don't localize.
// --------------------------------------------------------------------------

void expect_tamper_caught(GateTamper tamper, GateDiagCode expect, int cards,
                          int reqs, int slots) {
  const GateModelConfig cfg = config(cards, reqs, slots, false, tamper);
  const GateModelResult res = check_gate_model(cfg);
  ASSERT_FALSE(res.diagnostics.empty())
      << gate_tamper_name(tamper) << " went undetected\n"
      << describe(cfg, res);
  EXPECT_EQ(res.diagnostics.front().code, expect)
      << gate_tamper_name(tamper) << " caught by "
      << gate_diag_code_name(res.diagnostics.front().code) << " instead of "
      << gate_diag_code_name(expect) << "\n"
      << describe(cfg, res);
}

TEST(GateModelTamper, FrozenKeyTamperCaughtByGateKey) {
  // Needs a reservation posted after compute advanced the live clock past
  // the frozen step-top snapshot — any mid-drain (re-)reserve does it.
  expect_tamper_caught(GateTamper::kFrozenKey, GateDiagCode::kKey, 2, 4, 3);
}

TEST(GateModelTamper, LostUnparkTamperCaughtByGateDeadlock) {
  expect_tamper_caught(GateTamper::kLostUnpark, GateDiagCode::kDeadlock, 2,
                       2, 1);
}

TEST(GateModelTamper, DoubleGrantTamperCaughtByGateDup) {
  expect_tamper_caught(GateTamper::kDoubleGrant, GateDiagCode::kDup, 1, 2,
                       3);
}

TEST(GateModelTamper, DropGrantTamperCaughtByGateLost) {
  expect_tamper_caught(GateTamper::kDropGrant, GateDiagCode::kLost, 2, 2,
                       2);
}

TEST(GateModelTamper, NonMinGrantTamperCaughtByGateOrder) {
  expect_tamper_caught(GateTamper::kNonMinGrant, GateDiagCode::kOrder, 2, 3,
                       2);
}

// The frozen-key tamper must be INVISIBLE on a shape where every
// reservation posts before any compute runs (one card with enough slots
// drains the whole burst in its initial top drain, where live clock ==
// snapshot) — pinning that the tamper cases above are minimal, not
// vacuous: the checker distinguishes "tampered key happened to equal the
// frozen key" from "tampered key diverged".
TEST(GateModelTamper, FrozenKeyTamperInvisibleWithoutMidDrainReserve) {
  const GateModelConfig cfg =
      config(1, 2, 3, false, GateTamper::kFrozenKey);
  const GateModelResult res = check_gate_model(cfg);
  EXPECT_TRUE(res.ok()) << describe(cfg, res);
}

// Stable code names: CI output and the negative tests key on these
// strings; renaming one is a breaking change to the wall.
TEST(GateModel, DiagnosticCodeNamesAreStable) {
  EXPECT_STREQ(gate_diag_code_name(GateDiagCode::kOrder), "GATE-ORDER");
  EXPECT_STREQ(gate_diag_code_name(GateDiagCode::kKey), "GATE-KEY");
  EXPECT_STREQ(gate_diag_code_name(GateDiagCode::kDeadlock),
               "GATE-DEADLOCK");
  EXPECT_STREQ(gate_diag_code_name(GateDiagCode::kLost), "GATE-LOST");
  EXPECT_STREQ(gate_diag_code_name(GateDiagCode::kDup), "GATE-DUP");
  EXPECT_STREQ(gate_diag_code_name(GateDiagCode::kNondet), "GATE-NONDET");
}

}  // namespace
}  // namespace tfacc
