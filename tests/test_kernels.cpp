// PR 8 kernel suite: the blocked/SIMD GEMM dispatch must be bit-identical to
// the scalar reference on every shape (ragged tails, 1×1, empty edges), the
// packed-B layout must round-trip and stay cache-line aligned, the
// TFACC_KERNEL knob must parse/refresh correctly, and — the tentpole
// invariant — a warm packed decode step must perform ZERO heap allocations
// on all three backends (enforced with a global operator-new counter).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <new>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/fixed_point.hpp"
#include "common/random.hpp"
#include "core/backend.hpp"
#include "hwarith/softmax_unit.hpp"
#include "quant/qtransformer.hpp"
#include "reference/transformer.hpp"
#include "tensor/kernels.hpp"
#include "tensor/ops.hpp"
#include "tensor/pack.hpp"

// --- Global allocation counter ----------------------------------------------
// Counts every route into the heap (plain, nothrow, aligned, array). The
// zero-allocation tests reset it, run a warm step, and require no growth.
// Definitions live at global scope; all other state stays in tfacc::.

namespace {
std::atomic<long> g_heap_allocs{0};

void* counted_alloc(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  const std::size_t padded = (size + align - 1) / align * align;
  void* p = std::aligned_alloc(align, padded ? padded : align);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t al) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(al));
}
void* operator new[](std::size_t size, std::align_val_t al) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(al));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace tfacc {
namespace {

/// RAII kernel-kind override: restores the previous selection on scope exit
/// so test order never leaks a kind into another test.
class KindGuard {
 public:
  explicit KindGuard(kernels::Kind kind) : saved_(kernels::selected()) {
    kernels::set_kind(kind);
  }
  ~KindGuard() { kernels::set_kind(saved_); }
  KindGuard(const KindGuard&) = delete;
  KindGuard& operator=(const KindGuard&) = delete;

 private:
  kernels::Kind saved_;
};

struct Shape {
  int m, k, n;
};

// Ragged tails (non-multiples of every vector width), singletons, and empty
// edges. k = 0 must yield an all-zero (bias-only) accumulator.
const Shape kShapes[] = {
    {1, 1, 1},  {1, 7, 1},   {5, 1, 3},   {3, 5, 7},    {4, 64, 64},
    {2, 66, 3}, {17, 33, 65}, {8, 127, 31}, {0, 4, 4},   {4, 0, 4},
    {4, 4, 0},  {1, 256, 16}, {9, 100, 100},
};

MatI8 rand_i8(int r, int c, Rng& rng) {
  MatI8 m(r, c);
  fill_uniform_i8(m, rng);
  return m;
}

MatI16 rand_i16(int r, int c, Rng& rng) {
  MatI16 m(r, c);
  for (int i = 0; i < r; ++i)
    for (int j = 0; j < c; ++j)
      m(i, j) = static_cast<std::int16_t>(rng.uniform_int(-1000, 1000));
  return m;
}

MatF rand_f32(int r, int c, Rng& rng) {
  MatF m(r, c);
  fill_uniform(m, rng, -1.0f, 1.0f);
  return m;
}

template <typename T>
void expect_same(const Matrix<T>& got, const Matrix<T>& want,
                 const char* what, const Shape& s) {
  ASSERT_EQ(got.rows(), want.rows());
  ASSERT_EQ(got.cols(), want.cols());
  for (int r = 0; r < got.rows(); ++r)
    for (int c = 0; c < got.cols(); ++c)
      ASSERT_EQ(got(r, c), want(r, c))
          << what << " (" << s.m << 'x' << s.k << 'x' << s.n << ") at (" << r
          << ',' << c << ") under kernel "
          << kernels::kind_name(kernels::selected());
}

// --- Cross-kind bit-identity over the shape grid ----------------------------

class KernelEquivalence : public ::testing::TestWithParam<kernels::Kind> {};

TEST_P(KernelEquivalence, MatchesScalarBitExact) {
  Rng rng(1234);
  for (const Shape& s : kShapes) {
    const MatI8 a8 = rand_i8(s.m, s.k, rng);
    const MatI8 b8 = rand_i8(s.k, s.n, rng);
    const MatI16 a16 = rand_i16(s.m, s.k, rng);
    const MatI16 b16 = rand_i16(s.k, s.n, rng);
    const MatF af = rand_f32(s.m, s.k, rng);
    const MatF bf = rand_f32(s.k, s.n, rng);
    const MatF bt = rand_f32(s.n, s.k, rng);  // for A·Bᵀ
    const MatI8 b8t = rand_i8(s.n, s.k, rng);
    std::vector<std::int32_t> bias(static_cast<std::size_t>(s.n));
    for (auto& v : bias)
      v = rng.uniform_int(-100000, 100000);

    MatI32 want_i8(s.m, s.n), want_i16(s.m, s.n), want_nt_i8(s.m, s.n);
    MatF want_f(s.m, s.n), want_nt_f(s.m, s.n);
    {
      KindGuard g(kernels::Kind::kScalar);
      kernels::gemm_i8_into(a8, b8, want_i8);
      kernels::gemm_i16_into(a16, b16, want_i16);
      kernels::gemm_f32_into(af, bf, want_f);
      kernels::gemm_nt_f32_into(af, bt, want_nt_f);
      kernels::gemm_nt_i8_into(a8, b8t, want_nt_i8);
    }

    KindGuard g(GetParam());
    MatI32 got_i32(s.m, s.n);
    kernels::gemm_i8_into(a8, b8, got_i32);
    expect_same(got_i32, want_i8, "gemm_i8", s);
    kernels::gemm_i16_into(a16, b16, got_i32);
    expect_same(got_i32, want_i16, "gemm_i16", s);
    MatF got_f(s.m, s.n);
    kernels::gemm_f32_into(af, bf, got_f);
    expect_same(got_f, want_f, "gemm_f32", s);
    kernels::gemm_nt_f32_into(af, bt, got_f);
    expect_same(got_f, want_nt_f, "gemm_nt_f32", s);
    kernels::gemm_nt_i8_into(a8, b8t, got_i32);
    expect_same(got_i32, want_nt_i8, "gemm_nt_i8", s);

    // Packed-B forms against the dense reference results.
    const PackedI8 p8 = pack_b_i8(b8);
    kernels::gemm_i8_packed_into(a8, p8, got_i32);
    expect_same(got_i32, want_i8, "gemm_i8_packed", s);
    const PackedI16 p16 = pack_b_i16(b16);
    kernels::gemm_i16_packed_into(a16, p16, got_i32);
    expect_same(got_i32, want_i16, "gemm_i16_packed", s);

    // Fused bias: exactly add_bias_i32(gemm_i8(a, b), bias).
    const MatI32 want_bias = add_bias_i32(want_i8, bias);
    kernels::gemm_i8_packed_bias_into(a8, p8, bias, got_i32);
    expect_same(got_i32, want_bias, "gemm_i8_packed_bias", s);
  }
}

TEST_P(KernelEquivalence, RequantizeMatchesFixedPointScale) {
  Rng rng(4321);
  KindGuard g(GetParam());
  // Shifts sweep the AVX2 fast path (1..48), its shift<1 fallback, and the
  // saturating regime (small shifts push values far past ±127 / ±32767).
  for (const int shift : {0, 1, 2, 7, 15, 20, 31, 48, 50}) {
    const FixedPointScale s{/*mantissa=*/rng.uniform_int(1 << 14,
                                                         (1 << 15) - 1),
                            shift};
    for (const int rows : {1, 3, 16}) {
      for (const int cols : {1, 7, 8, 64, 100}) {
        MatI32 acc(rows, cols);
        for (int r = 0; r < rows; ++r)
          for (int c = 0; c < cols; ++c)
            acc(r, c) = rng.uniform_int(std::numeric_limits<int>::min() / 2,
                                        std::numeric_limits<int>::max() / 2);
        // Pin the extremes onto the first row.
        acc(0, 0) = std::numeric_limits<std::int32_t>::max();
        if (cols > 1) acc(0, 1) = std::numeric_limits<std::int32_t>::min();

        MatI8 got8(rows, cols);
        kernels::requantize_i8_into(acc, s.mantissa, s.shift, got8);
        MatI16 got16(rows, cols);
        kernels::requantize_i16_into(acc, s.mantissa, s.shift, got16);
        for (int r = 0; r < rows; ++r)
          for (int c = 0; c < cols; ++c) {
            ASSERT_EQ(got8(r, c), s.apply_i8(acc(r, c)))
                << "requantize_i8 shift=" << shift << " at (" << r << ','
                << c << ") under kernel "
                << kernels::kind_name(kernels::selected());
            ASSERT_EQ(got16(r, c), s.apply_i16(acc(r, c)))
                << "requantize_i16 shift=" << shift << " at (" << r << ','
                << c << ") under kernel "
                << kernels::kind_name(kernels::selected());
          }
      }
    }
  }
}

// --- LayerNorm row kernels (PR 9) -------------------------------------------
// The dispatched stats/finish loops must be bit-identical to scalar over the
// serve datapath's envelope: ragged n (vector tails), constant rows (zero
// variance — t = n·g − sum vanishes), extreme INT16 values, and every
// norm/gamma shift class the AVX2 path accepts, plus the fallback edges
// (n > 16384, shifts outside [1, 48] including left shifts) where dispatch
// must detour to the scalar loop.

struct LayerNormCase {
  int norm_shift, gamma_shift;
  int max_mant;  // keeps |norm| inside the AVX2 path's proven envelope
  int max_n;
};

void expect_layernorm_rows_match(const std::vector<LayerNormCase>& cases,
                                 const std::vector<int>& sizes,
                                 kernels::Kind kind, int16_t g_lo,
                                 int16_t g_hi) {
  Rng rng(5150);
  for (const int n : sizes) {
    // Three row flavors: random, constant (v == 0), alternating extremes.
    for (int flavor = 0; flavor < 3; ++flavor) {
      std::vector<std::int16_t> g(static_cast<std::size_t>(n));
      for (int j = 0; j < n; ++j) {
        if (flavor == 0)
          g[static_cast<std::size_t>(j)] =
              static_cast<std::int16_t>(rng.uniform_int(g_lo, g_hi));
        else if (flavor == 1)
          g[static_cast<std::size_t>(j)] = 7;
        else
          g[static_cast<std::size_t>(j)] = static_cast<std::int16_t>(
              j % 2 == 0 ? g_hi : (j % 4 == 1 ? g_lo : 0));
      }
      std::int64_t want_sum = 0, want_sumsq = 0;
      {
        KindGuard guard(kernels::Kind::kScalar);
        kernels::layernorm_stats(g.data(), n, &want_sum, &want_sumsq);
      }
      std::int64_t got_sum = 0, got_sumsq = 0;
      {
        KindGuard guard(kind);
        kernels::layernorm_stats(g.data(), n, &got_sum, &got_sumsq);
      }
      EXPECT_EQ(got_sum, want_sum)
          << "layernorm_stats sum, n=" << n << " flavor=" << flavor
          << " under " << kernels::kind_name(kind);
      EXPECT_EQ(got_sumsq, want_sumsq)
          << "layernorm_stats sumsq, n=" << n << " flavor=" << flavor
          << " under " << kernels::kind_name(kind);

      for (const LayerNormCase& c : cases) {
        if (n > c.max_n) continue;
        const std::int32_t mant = rng.uniform_int(1, c.max_mant);
        std::vector<std::int32_t> gq(static_cast<std::size_t>(n));
        std::vector<std::int32_t> bq(static_cast<std::size_t>(n));
        for (int j = 0; j < n; ++j) {
          gq[static_cast<std::size_t>(j)] =
              rng.uniform_int(-(1 << 20), 1 << 20);
          bq[static_cast<std::size_t>(j)] = rng.uniform_int(-100000, 100000);
        }
        std::vector<std::int8_t> want(static_cast<std::size_t>(n));
        std::vector<std::int8_t> got(static_cast<std::size_t>(n));
        {
          KindGuard guard(kernels::Kind::kScalar);
          kernels::layernorm_finish_into(g.data(), n, want_sum, mant,
                                         c.norm_shift, c.gamma_shift,
                                         gq.data(), bq.data(), want.data());
        }
        {
          KindGuard guard(kind);
          kernels::layernorm_finish_into(g.data(), n, want_sum, mant,
                                         c.norm_shift, c.gamma_shift,
                                         gq.data(), bq.data(), got.data());
        }
        EXPECT_EQ(got, want)
            << "layernorm_finish, n=" << n << " flavor=" << flavor
            << " norm_shift=" << c.norm_shift
            << " gamma_shift=" << c.gamma_shift << " under "
            << kernels::kind_name(kind);
      }
    }
  }
}

TEST_P(KernelEquivalence, LayerNormRowsMatchScalarBitExact) {
  // AVX2-eligible shift classes. max_mant bounds |t·mant| >> norm_shift so
  // the intermediate norm stays within the int32 range the vector gamma
  // stage multiplies from — the envelope the real datapath guarantees.
  const std::vector<LayerNormCase> cases = {
      {1, 7, 16, 64},          {14, 1, 32767, 16384},
      {20, 7, 32767, 16384},   {33, 48, 32767, 16384},
      {48, 20, 32767, 16384},
  };
  expect_layernorm_rows_match(cases, {1, 3, 7, 8, 15, 64, 100, 1023, 16384},
                              GetParam(), -32768, 32767);
}

TEST_P(KernelEquivalence, LayerNormFinishFallbackEdges) {
  // Outside the AVX2 gate every kind must detour to the scalar loop:
  // n > 16384, shift 0, left shifts (norm_shift < 0), and shifts > 48.
  // Magnitudes are kept small so the left-shifted intermediates stay exact.
  const std::vector<LayerNormCase> big_n = {{20, 7, 1000, 1 << 20}};
  expect_layernorm_rows_match(big_n, {16385, 16390}, GetParam(), -1000, 1000);
  const std::vector<LayerNormCase> edge_shifts = {
      {0, 7, 1000, 100},  {-2, 7, 1000, 100},  {49, 7, 1000, 100},
      {20, 0, 1000, 100}, {20, 49, 1000, 100},
  };
  expect_layernorm_rows_match(edge_shifts, {1, 5, 40, 100}, GetParam(),
                              -1000, 1000);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, KernelEquivalence,
                         ::testing::Values(kernels::Kind::kBlocked,
                                           kernels::Kind::kSimd),
                         [](const auto& info) {
                           return std::string(kernels::kind_name(info.param));
                         });

// --- Softmax row model (PR 9) -----------------------------------------------
// The batched AVX2 row path inside SoftmaxUnit::row dispatches off the same
// kernel knob; every selection must produce bit-identical INT8 probability
// rows, including the gates that force the scalar stages: n < 8, a fully
// masked row, and an unmasked spread wider than int32.

TEST(SoftmaxRowDispatch, RowsMatchScalarBitExact) {
  Rng rng(2718);
  for (const double d_scale : {0.02, 1e-4}) {
    const hw::SoftmaxUnit unit(d_scale);
    for (const int n : {1, 5, 8, 24, 33, 100}) {
      for (int flavor = 0; flavor < 4; ++flavor) {
        std::vector<std::int32_t> d(static_cast<std::size_t>(n));
        std::vector<std::uint8_t> mask(static_cast<std::size_t>(n), 0);
        for (int j = 0; j < n; ++j)
          d[static_cast<std::size_t>(j)] = rng.uniform_int(-200000, 200000);
        if (flavor == 1)
          for (int j = 0; j < n; ++j)
            mask[static_cast<std::size_t>(j)] =
                static_cast<std::uint8_t>(rng.uniform_int(0, 1));
        if (flavor == 2)  // fully masked: all-zero outputs on every path
          for (int j = 0; j < n; ++j) mask[static_cast<std::size_t>(j)] = 1;
        if (flavor == 3) {  // int32-overflow spread: AVX2 bails to scalar
          d[0] = std::numeric_limits<std::int32_t>::max() - 7;
          d[static_cast<std::size_t>(n - 1)] =
              std::numeric_limits<std::int32_t>::min() + 7;
        }
        std::vector<std::int8_t> want(static_cast<std::size_t>(n));
        {
          KindGuard g(kernels::Kind::kScalar);
          unit.row(d.data(), mask.data(), n, want.data());
        }
        for (const kernels::Kind kind :
             {kernels::Kind::kBlocked, kernels::Kind::kSimd}) {
          std::vector<std::int8_t> got(static_cast<std::size_t>(n));
          KindGuard g(kind);
          unit.row(d.data(), mask.data(), n, got.data());
          EXPECT_EQ(got, want)
              << "softmax row, d_scale=" << d_scale << " n=" << n
              << " flavor=" << flavor << " under "
              << kernels::kind_name(kind);
        }
      }
    }
  }
}

// --- Packed layout ----------------------------------------------------------

TEST(PackB, RoundTripsAndPadsWithZeros) {
  Rng rng(7);
  for (const Shape& s : kShapes) {
    const MatI8 b8 = rand_i8(s.k, s.n, rng);
    const PackedI8 p8 = pack_b_i8(b8);
    EXPECT_EQ(p8.k, s.k);
    EXPECT_EQ(p8.n, s.n);
    EXPECT_EQ(p8.k_pad % 64, 0);  // int8: 64 elements per 64 bytes
    EXPECT_GE(p8.k_pad, s.k);
    EXPECT_EQ(unpack_b_i8(p8), b8);
    for (int j = 0; j < p8.n; ++j)
      for (int x = p8.k; x < p8.k_pad; ++x)
        ASSERT_EQ(p8.row(j)[x], 0) << "pad row " << j << " elem " << x;

    const MatI16 b16 = rand_i16(s.k, s.n, rng);
    const PackedI16 p16 = pack_b_i16(b16);
    EXPECT_EQ(p16.k_pad % 32, 0);  // int16: 32 elements per 64 bytes
    EXPECT_EQ(unpack_b_i16(p16), b16);

    const MatF bf = rand_f32(s.k, s.n, rng);
    const PackedF pf = pack_b_f32(bf);
    EXPECT_EQ(pf.k_pad % 16, 0);  // f32: 16 elements per 64 bytes
    EXPECT_EQ(unpack_b_f32(pf), bf);
  }
}

TEST(PackB, RowsAreCacheLineAligned) {
  Rng rng(8);
  const MatI8 b = rand_i8(100, 7, rng);
  const PackedI8 p = pack_b_i8(b);
  for (int j = 0; j < p.n; ++j)
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p.row(j)) % 64, 0u)
        << "row " << j;
}

// --- Dispatch knob ----------------------------------------------------------

TEST(KernelDispatch, ParsesKnownKindsOnly) {
  kernels::Kind k{};
  EXPECT_TRUE(kernels::parse_kind("scalar", &k));
  EXPECT_EQ(k, kernels::Kind::kScalar);
  EXPECT_TRUE(kernels::parse_kind("blocked", &k));
  EXPECT_EQ(k, kernels::Kind::kBlocked);
  EXPECT_TRUE(kernels::parse_kind("simd", &k));
  EXPECT_EQ(k, kernels::Kind::kSimd);
  EXPECT_FALSE(kernels::parse_kind("avx512", &k));
  EXPECT_FALSE(kernels::parse_kind("", &k));
}

TEST(KernelDispatch, SetKindOverridesSelection) {
  KindGuard g(kernels::Kind::kBlocked);
  EXPECT_EQ(kernels::selected(), kernels::Kind::kBlocked);
  kernels::set_kind(kernels::Kind::kScalar);
  EXPECT_EQ(kernels::selected(), kernels::Kind::kScalar);
}

TEST(KernelDispatch, RefreshFromEnvReadsTheKnob) {
  const kernels::Kind saved = kernels::selected();
  ASSERT_EQ(setenv("TFACC_KERNEL", "blocked", 1), 0);
  EXPECT_EQ(kernels::refresh_from_env(), kernels::Kind::kBlocked);
  EXPECT_EQ(kernels::selected(), kernels::Kind::kBlocked);
  ASSERT_EQ(setenv("TFACC_KERNEL", "warp-drive", 1), 0);
  EXPECT_THROW(kernels::refresh_from_env(), CheckError);
  ASSERT_EQ(unsetenv("TFACC_KERNEL"), 0);
  EXPECT_EQ(kernels::refresh_from_env(), kernels::Kind::kSimd);  // default
  kernels::set_kind(saved);
}

TEST(KernelDispatch, CapabilityNamesAreStable) {
  const std::string cap = kernels::capability();
  EXPECT_TRUE(cap == "avx2" || cap == "sse2" || cap == "neon" ||
              cap == "generic");
  EXPECT_EQ(kernels::simd_available(), cap != "generic");
}

// --- Zero allocations per warm packed step ----------------------------------

ModelConfig hw_config() {
  ModelConfig cfg;
  cfg.name = "kernels-hw";
  cfg.d_model = 64;
  cfg.d_ff = 256;
  cfg.num_heads = 1;
  cfg.head_dim = 64;
  cfg.num_encoder_layers = 1;
  cfg.num_decoder_layers = 2;
  return cfg;
}

constexpr int kSlots = 4;
// The pool and every scratch buffer are warm after the KV-cache capacity
// doublings at steps 1,2,3,5,9; the next is at step 17, and per-slot score
// rows stay within the smallest pool class through step 16. So measure
// steps 11..16: a correct hot path does zero heap allocations there.
constexpr int kWarmSteps = 10;
constexpr int kMeasuredSteps = 6;

/// Drives kWarmSteps + kMeasuredSteps packed steps over kSlots ragged
/// hypotheses and returns the operator-new count of the measured steps.
/// `bracket` wraps each decode_step_batch call (the fuser hooks for the
/// accelerator backend); the counter only covers the step call itself.
template <typename Fn>
long measure_step_allocs(Transformer& model, const Fn& bracket) {
  const std::vector<TokenSeq> srcs = {{3, 4, 5}, {6, 7}, {8, 9, 10, 3}, {4}};
  std::vector<MatF> memories;
  std::vector<DecodeState> states_store;
  for (const TokenSeq& src : srcs) {
    memories.push_back(model.encode(src));
    states_store.push_back(
        model.begin_decode(memories.back(), static_cast<int>(src.size())));
  }
  std::vector<DecodeState*> states;
  for (auto& s : states_store) states.push_back(&s);
  std::vector<int> tokens(kSlots, kBosId);

  MatF logits;
  long measured = 0;
  for (int step = 0; step < kWarmSteps + kMeasuredSteps; ++step) {
    // Count only the step call itself: the fuser begin/end bracketing around
    // it schedules the simulated-time ledger and may allocate freely.
    bracket([&] {
      const long before = g_heap_allocs.load(std::memory_order_relaxed);
      model.decode_step_batch(states, tokens, logits);
      const long after = g_heap_allocs.load(std::memory_order_relaxed);
      if (step >= kWarmSteps) measured += after - before;
    });
    for (int i = 0; i < kSlots; ++i) {
      // Cycle deterministic non-EOS tokens so every slot stays live.
      tokens[static_cast<std::size_t>(i)] = 3 + (step + i) % 4;
    }
  }
  return measured;
}

class ZeroAllocStep : public ::testing::TestWithParam<kernels::Kind> {};

TEST_P(ZeroAllocStep, ReferenceBackend) {
  KindGuard g(GetParam());
  Rng rng(91);
  Transformer model(TransformerWeights::random(hw_config(), 20, rng));
  const long allocs =
      measure_step_allocs(model, [](const auto& fn) { fn(); });
  EXPECT_EQ(allocs, 0) << "heap allocations in " << kMeasuredSteps
                       << " warm packed steps (reference backend)";
}

TEST_P(ZeroAllocStep, QuantizedBackend) {
  KindGuard g(GetParam());
  Rng rng(92);
  Transformer model(TransformerWeights::random(hw_config(), 20, rng));
  const auto qt = QuantizedTransformer::build(model, {{3, 4, 5}, {6, 7}}, 12,
                                              SoftmaxImpl::kHardware);
  model.set_backend(qt.backend());
  const long allocs =
      measure_step_allocs(model, [](const auto& fn) { fn(); });
  model.set_backend(ResBlockBackend{});
  EXPECT_EQ(allocs, 0) << "heap allocations in " << kMeasuredSteps
                       << " warm packed steps (quantized backend)";
}

TEST_P(ZeroAllocStep, AcceleratorBackendFusedStep) {
  KindGuard g(GetParam());
  Rng rng(93);
  Transformer model(TransformerWeights::random(hw_config(), 20, rng));
  const auto qt = QuantizedTransformer::build(model, {{3, 4, 5}, {6, 7}}, 12,
                                              SoftmaxImpl::kHardware);
  Accelerator acc;
  AcceleratorStats stats;
  DecodeStepFuser fuser(acc, &stats);
  model.set_backend(accelerator_backend(qt, acc, &stats, &fuser));
  // The serve loop brackets each step with begin/end_step; the allocation
  // window covers only the decode_step_batch call (end_step schedules the
  // fused ledger and may allocate — that is simulator bookkeeping, not the
  // measured datapath).
  const long allocs = measure_step_allocs(model, [&](const auto& fn) {
    fuser.begin_step();
    fn();
    (void)fuser.end_step();
  });
  model.set_backend(ResBlockBackend{});
  EXPECT_EQ(allocs, 0) << "heap allocations in " << kMeasuredSteps
                       << " warm packed steps (accelerator backend)";
  EXPECT_GT(stats.fused_steps, 0);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, ZeroAllocStep,
                         ::testing::Values(kernels::Kind::kScalar,
                                           kernels::Kind::kBlocked,
                                           kernels::Kind::kSimd),
                         [](const auto& info) {
                           return std::string(kernels::kind_name(info.param));
                         });

}  // namespace
}  // namespace tfacc
