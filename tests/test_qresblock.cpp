// Tests for the quantized functional ResBlocks: the INT8 pipelines must track
// their FP32 references within quantization-error bounds, for both softmax
// implementations (the two quantization steps of Section V.A).
#include <gtest/gtest.h>

#include "quant/qresblock.hpp"
#include "reference/functional.hpp"
#include "tensor/compare.hpp"
#include "tensor/ops.hpp"

namespace tfacc {
namespace {

ModelConfig hw_config() {
  // head_dim 64 (hardware softmax requires the /8 scale); 2 heads keeps the
  // test fast while exercising concat across heads.
  ModelConfig cfg;
  cfg.name = "hw-test";
  cfg.d_model = 128;
  cfg.d_ff = 512;
  cfg.num_heads = 2;
  cfg.head_dim = 64;
  return cfg;
}

MhaQuantized::Calibration make_mha_calib(const ModelConfig& cfg, Rng& rng,
                                         int samples, int s) {
  MhaQuantized::Calibration calib;
  for (int i = 0; i < samples; ++i) {
    MatF q(s, cfg.d_model), kv(s, cfg.d_model);
    fill_normal(q, rng, 0, 1);
    fill_normal(kv, rng, 0, 1);
    calib.q.push_back(q);
    calib.kv.push_back(kv);
    calib.mask.push_back(no_mask(s, s));
  }
  return calib;
}

TEST(QuantizedLinear, TracksFloatLinear) {
  Rng rng(1);
  MatF w(64, 32), x(10, 64);
  fill_normal(w, rng, 0, 0.3);
  fill_normal(x, rng, 0, 1);
  std::vector<float> b(32);
  for (auto& v : b) v = static_cast<float>(rng.uniform(-0.2, 0.2));

  const MatF y = add_bias(gemm(x, w), b);
  const float in_scale = calibrate(x, 127).scale;
  const float out_scale = calibrate(y, 127).scale;
  const auto ql = QuantizedLinear::build(w, b, in_scale, out_scale);
  const MatF got = dequantize(ql.forward(quantize_i8(x, QuantParams{in_scale})),
                              QuantParams{out_scale});
  EXPECT_GT(cosine_similarity(y, got), 0.999);
  EXPECT_LT(max_abs_diff(y, got), 6 * out_scale);
}

TEST(QuantizedLinear, ReluOnAccumulatorEqualsReluAfterRequant) {
  // ReLU commutes with a positive rescaling that fixes 0 — the reason the
  // hardware can clamp right after the bias adders (Fig. 5).
  Rng rng(2);
  MatF w(32, 16), x(8, 32);
  fill_normal(w, rng, 0, 0.3);
  fill_normal(x, rng, 0, 1);
  std::vector<float> b(16, 0.05f);
  const MatF y = relu(add_bias(gemm(x, w), b));
  const auto ql = QuantizedLinear::build(w, b, calibrate(x, 127).scale,
                                         calibrate(y, 127).scale);
  const MatI8 xi = quantize_i8(x, QuantParams{ql.in_scale});
  const MatI8 a = ql.forward_relu(xi);
  MatI8 bpath = ql.forward(xi);
  for (int r = 0; r < bpath.rows(); ++r)
    for (int c = 0; c < bpath.cols(); ++c)
      if (bpath(r, c) < 0) bpath(r, c) = 0;
  EXPECT_EQ(a, bpath);
}

TEST(SaturatingAdd, SaturatesAtInt16Limits) {
  MatI16 a{{32000, -32000}}, b{{1000, -1000}};
  const MatI16 c = saturating_add_i16(a, b);
  EXPECT_EQ(c(0, 0), 32767);
  EXPECT_EQ(c(0, 1), -32768);
}

class MhaQuantizedTest : public ::testing::TestWithParam<SoftmaxImpl> {};

TEST_P(MhaQuantizedTest, TracksFloatResblock) {
  const ModelConfig cfg = hw_config();
  Rng rng(3);
  const MhaWeights w = MhaWeights::random(cfg, rng);
  const int s = 16;
  auto calib = make_mha_calib(cfg, rng, 3, s);
  const auto qm = MhaQuantized::build(w, calib, GetParam());

  // Evaluate on a fresh input from the calibration distribution.
  MatF q(s, cfg.d_model), kv(s, cfg.d_model);
  fill_normal(q, rng, 0, 1);
  fill_normal(kv, rng, 0, 1);
  const Mask mask = no_mask(s, s);
  const MatF ref = mha_resblock(q, kv, w, mask);
  const MatF got = qm.dequantize_out(
      qm.forward(qm.quantize_q(q), qm.quantize_kv(kv), mask));
  EXPECT_GT(cosine_similarity(ref, got), 0.99);
  EXPECT_LT(mse(ref, got) / (mse(ref, MatF(s, cfg.d_model)) + 1e-9), 0.02);
}

TEST_P(MhaQuantizedTest, RespectsCausalMask) {
  const ModelConfig cfg = hw_config();
  Rng rng(4);
  const MhaWeights w = MhaWeights::random(cfg, rng);
  const int s = 8;
  MhaQuantized::Calibration calib;
  for (int i = 0; i < 2; ++i) {
    MatF x(s, cfg.d_model);
    fill_normal(x, rng, 0, 1);
    calib.q.push_back(x);
    calib.kv.push_back(x);
    calib.mask.push_back(causal_mask(s));
  }
  const auto qm = MhaQuantized::build(w, calib, GetParam());

  // Row r of the output must not depend on kv rows > r.
  MatF x(s, cfg.d_model);
  fill_normal(x, rng, 0, 1);
  const MatI8 xi = qm.quantize_q(x);
  const MatI8 base = qm.forward(xi, qm.quantize_kv(x), causal_mask(s));

  MatF x2 = x;
  for (int c = 0; c < cfg.d_model; ++c) x2(s - 1, c) += 5.0f;  // perturb last
  const MatI8 pert =
      qm.forward(qm.quantize_q(x2), qm.quantize_kv(x2), causal_mask(s));
  // Row 0 attends only to position 0 and its own residual, both unchanged.
  for (int c = 0; c < cfg.d_model; ++c)
    EXPECT_EQ(base(0, c), pert(0, c)) << "col " << c;
}

INSTANTIATE_TEST_SUITE_P(SoftmaxImpls, MhaQuantizedTest,
                         ::testing::Values(SoftmaxImpl::kFloatExact,
                                           SoftmaxImpl::kHardware));

TEST(MhaQuantized, HardwareRequiresHeadDim64) {
  ModelConfig cfg = hw_config();
  cfg.head_dim = 32;
  cfg.d_model = 64;
  cfg.d_ff = 256;
  Rng rng(5);
  const MhaWeights w = MhaWeights::random(cfg, rng);
  auto calib = make_mha_calib(cfg, rng, 1, 4);
  EXPECT_THROW(MhaQuantized::build(w, calib, SoftmaxImpl::kHardware),
               CheckError);
  EXPECT_NO_THROW(MhaQuantized::build(w, calib, SoftmaxImpl::kFloatExact));
}

TEST(FfnQuantized, TracksFloatResblock) {
  const ModelConfig cfg = hw_config();
  Rng rng(6);
  const FfnWeights w = FfnWeights::random(cfg, rng);
  const int s = 12;
  std::vector<MatF> samples;
  for (int i = 0; i < 3; ++i) {
    MatF x(s, cfg.d_model);
    fill_normal(x, rng, 0, 1);
    samples.push_back(x);
  }
  const auto qf = FfnQuantized::build(w, samples);

  MatF x(s, cfg.d_model);
  fill_normal(x, rng, 0, 1);
  const MatF ref = ffn_resblock(x, w);
  const MatF got = qf.dequantize_out(qf.forward(qf.quantize_in(x)));
  EXPECT_GT(cosine_similarity(ref, got), 0.99);
}

TEST(FfnQuantized, InScaleOverrideRespected) {
  const ModelConfig cfg = hw_config();
  Rng rng(7);
  const FfnWeights w = FfnWeights::random(cfg, rng);
  std::vector<MatF> samples{MatF(4, cfg.d_model)};
  fill_normal(samples[0], rng, 0, 1);
  const auto qf = FfnQuantized::build(w, samples, CalibMethod::kMaxAbs, 0.123f);
  EXPECT_FLOAT_EQ(qf.in_scale, 0.123f);
}

TEST(FfnQuantized, HiddenIsNonNegativeAfterRelu) {
  const ModelConfig cfg = hw_config();
  Rng rng(8);
  const FfnWeights w = FfnWeights::random(cfg, rng);
  std::vector<MatF> samples{MatF(6, cfg.d_model)};
  fill_normal(samples[0], rng, 0, 1);
  const auto qf = FfnQuantized::build(w, samples);
  const MatI8 h = qf.w1.forward_relu(qf.quantize_in(samples[0]));
  for (int r = 0; r < h.rows(); ++r)
    for (int c = 0; c < h.cols(); ++c) EXPECT_GE(h(r, c), 0);
}

TEST(MhaQuantized, PercentileCalibrationSurvivesOutliers) {
  const ModelConfig cfg = hw_config();
  Rng rng(9);
  const MhaWeights w = MhaWeights::random(cfg, rng);
  const int s = 8;
  auto calib = make_mha_calib(cfg, rng, 2, s);
  calib.q[0](0, 0) = 80.0f;  // inject an outlier into the calibration set

  const auto qmax = MhaQuantized::build(w, calib, SoftmaxImpl::kFloatExact,
                                        CalibMethod::kMaxAbs);
  const auto qpct = MhaQuantized::build(w, calib, SoftmaxImpl::kFloatExact,
                                        CalibMethod::kPercentile999);
  // Percentile calibration must not blow up the input scale.
  EXPECT_LT(qpct.q_in_scale, qmax.q_in_scale * 0.5f);
}

}  // namespace
}  // namespace tfacc
