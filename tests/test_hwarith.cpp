// Tests for the bit-accurate hardware arithmetic: EXP/LN units (Fig. 6),
// the log-sum-exp softmax datapath, the rsqrt LUT, and the LayerNorm unit
// (Fig. 8). Accuracy sweeps are parameterized.
#include <gtest/gtest.h>

#include <cmath>

#include "hwarith/exp_ln.hpp"
#include "hwarith/layernorm_unit.hpp"
#include "hwarith/rsqrt_lut.hpp"
#include "hwarith/softmax_unit.hpp"
#include "quant/quantizer.hpp"
#include "reference/functional.hpp"
#include "tensor/compare.hpp"
#include "tensor/ops.hpp"

namespace tfacc {
namespace {

// --- EXP unit ---------------------------------------------------------------

TEST(ExpUnit, ExactAtZero) { EXPECT_EQ(hw::exp_unit_q10(0), 1 << 10); }

TEST(ExpUnit, SaturatesToZeroBelowMinArg) {
  EXPECT_EQ(hw::exp_unit_q10(hw::kExpMinArg), 0);
  EXPECT_EQ(hw::exp_unit_q10(hw::kExpMinArg - 1000), 0);
}

TEST(ExpUnit, RejectsPositiveInput) {
  EXPECT_THROW(hw::exp_unit_q10(1), CheckError);
}

TEST(ExpUnit, MonotonicNonDecreasing) {
  int prev = -1;
  for (std::int32_t x = hw::kExpMinArg; x <= 0; x += 7) {
    const int y = hw::exp_unit_q10(x);
    EXPECT_GE(y, prev) << "x=" << x;
    prev = y;
  }
}

class ExpUnitSweep : public ::testing::TestWithParam<double> {};

TEST_P(ExpUnitSweep, TracksStdExp) {
  const double x = GetParam();
  const double got = hw::exp_unit(x);
  const double expected = std::exp(x);
  // Shift-add log2e + 4-segment PWL: ≤ ~1% relative + quantization floor.
  EXPECT_NEAR(got, expected, expected * 0.012 + 1.5 / 1024.0) << "x=" << x;
}

INSTANTIATE_TEST_SUITE_P(Args, ExpUnitSweep,
                         ::testing::Values(0.0, -0.1, -0.25, -0.5, -0.7,
                                           -1.0, -1.5, -2.0, -3.0, -4.5,
                                           -6.0, -8.0, -10.0, -12.0, -15.0));

// --- LN unit ----------------------------------------------------------------

TEST(LnUnit, ExactAtOne) { EXPECT_EQ(hw::ln_unit_q10(1 << 10), 0); }

TEST(LnUnit, RejectsBelowOne) {
  EXPECT_THROW(hw::ln_unit_q10((1 << 10) - 1), CheckError);
}

class LnUnitSweep : public ::testing::TestWithParam<double> {};

TEST_P(LnUnitSweep, TracksStdLog) {
  const double v = GetParam();
  const double got = hw::ln_unit(v);
  const double expected = std::log(v);
  EXPECT_NEAR(got, expected, 0.012 * std::max(1.0, expected) + 2.0 / 1024.0)
      << "v=" << v;
}

INSTANTIATE_TEST_SUITE_P(Args, LnUnitSweep,
                         ::testing::Values(1.0, 1.1, 1.5, 1.9, 2.0, 3.0, 4.0,
                                           7.5, 16.0, 33.0, 64.0, 100.0,
                                           1000.0, 65536.0));

// --- rsqrt LUT ----------------------------------------------------------------

TEST(RsqrtLut, RejectsNonPositive) {
  EXPECT_THROW(hw::rsqrt_lut().lookup(0), CheckError);
  EXPECT_THROW(hw::rsqrt_lut().lookup(-5), CheckError);
}

class RsqrtSweep : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(RsqrtSweep, MulRsqrtTracksRealMath) {
  const std::int64_t v = GetParam();
  const std::int64_t x = 1'000'000;
  const std::int64_t got = hw::rsqrt_lut().mul_rsqrt(x, v, 12);
  const double expected = static_cast<double>(x) / std::sqrt(v) * 4096.0;
  // 8 fractional index bits, no interpolation: ≤ ~0.4% relative error.
  EXPECT_NEAR(static_cast<double>(got), expected,
              std::abs(expected) * 0.004 + 1.0)
      << "v=" << v;
}

INSTANTIATE_TEST_SUITE_P(Args, RsqrtSweep,
                         ::testing::Values(1, 2, 3, 4, 7, 100, 1023, 1024,
                                           999'999, 1'000'000'000,
                                           123'456'789'012'345ll));

// --- Softmax unit --------------------------------------------------------------

MatF hw_softmax_as_float(const MatI32& d, const Mask& mask, double d_scale) {
  const hw::SoftmaxUnit unit(d_scale);
  return dequantize(unit(d, mask), QuantParams{hw::kProbScale});
}

TEST(SoftmaxUnit, MatchesFloatSoftmaxUnmasked) {
  Rng rng(1);
  MatI32 d(8, 64);
  for (int r = 0; r < d.rows(); ++r)
    for (int c = 0; c < d.cols(); ++c) d(r, c) = rng.uniform_int(-30000, 30000);
  const double d_scale = 1.0 / 1024.0;
  const MatF got = hw_softmax_as_float(d, no_mask(8, 64), d_scale);
  const MatF ref = scaled_masked_softmax(
      dequantize_i32(d, static_cast<float>(d_scale)), no_mask(8, 64), 8.0f);
  // INT8 probabilities resolve 1/127 ≈ 0.0079; PWL adds ~1%.
  EXPECT_LE(max_abs_diff(got, ref), 0.02);
  EXPECT_GT(cosine_similarity(got, ref), 0.995);
}

TEST(SoftmaxUnit, RowsSumToApproximatelyOne) {
  Rng rng(2);
  MatI32 d(16, 32);
  for (int r = 0; r < d.rows(); ++r)
    for (int c = 0; c < d.cols(); ++c) d(r, c) = rng.uniform_int(-5000, 5000);
  const MatF p = hw_softmax_as_float(d, no_mask(16, 32), 1.0 / 256.0);
  for (int r = 0; r < p.rows(); ++r) {
    double sum = 0;
    for (int c = 0; c < p.cols(); ++c) sum += p(r, c);
    EXPECT_NEAR(sum, 1.0, 0.08) << "row " << r;
  }
}

TEST(SoftmaxUnit, MaskedPositionsAreExactlyZero) {
  MatI32 d(2, 4);
  d.fill(100);
  Mask m(2, 4);
  m(0, 1) = 1;
  m(1, 0) = m(1, 2) = 1;
  const hw::SoftmaxUnit unit(0.01);
  const MatI8 p = unit(d, m);
  EXPECT_EQ(p(0, 1), 0);
  EXPECT_EQ(p(1, 0), 0);
  EXPECT_EQ(p(1, 2), 0);
  EXPECT_GT(p(0, 0), 0);
}

TEST(SoftmaxUnit, FullyMaskedRowIsAllZeros) {
  MatI32 d(1, 3);
  d.fill(5000);
  Mask m(1, 3);
  m(0, 0) = m(0, 1) = m(0, 2) = 1;
  const hw::SoftmaxUnit unit(0.01);
  const MatI8 p = unit(d, m);
  for (int c = 0; c < 3; ++c) EXPECT_EQ(p(0, c), 0);
}

TEST(SoftmaxUnit, OneHotForDominantScore) {
  MatI32 d{{20000, 0, 0, 0}};
  const hw::SoftmaxUnit unit(1.0 / 64.0);  // real max ≈ 312 ≫ others
  const MatI8 p = unit(d, no_mask(1, 4));
  EXPECT_EQ(p(0, 0), 127);
  for (int c = 1; c < 4; ++c) EXPECT_EQ(p(0, c), 0);
}

TEST(SoftmaxUnit, UniformScoresGiveUniformProbs) {
  MatI32 d(1, 8);
  d.fill(1234);
  const hw::SoftmaxUnit unit(0.001);
  const MatF p = dequantize(unit(d, no_mask(1, 8)), QuantParams{hw::kProbScale});
  for (int c = 0; c < 8; ++c) EXPECT_NEAR(p(0, c), 0.125, 0.01);
}

// The log-sum-exp identity (Eq. 5) makes the unit invariant to adding a
// constant to every score.
TEST(SoftmaxUnit, ShiftInvariance) {
  Rng rng(3);
  MatI32 a(4, 16), b(4, 16);
  for (int r = 0; r < 4; ++r)
    for (int c = 0; c < 16; ++c) {
      a(r, c) = rng.uniform_int(-1000, 1000);
      b(r, c) = a(r, c) + 5000;
    }
  const hw::SoftmaxUnit unit(1.0 / 512.0);
  EXPECT_EQ(unit(a, no_mask(4, 16)), unit(b, no_mask(4, 16)));
}

// Parameterized over input scales: accuracy must hold across the dynamic
// ranges the calibrated models produce.
class SoftmaxScaleSweep : public ::testing::TestWithParam<double> {};

TEST_P(SoftmaxScaleSweep, TracksFloatSoftmax) {
  const double d_scale = GetParam();
  Rng rng(42);
  MatI32 d(8, 48);
  for (int r = 0; r < d.rows(); ++r)
    for (int c = 0; c < d.cols(); ++c)
      d(r, c) = rng.uniform_int(-20000, 20000);
  const MatF got = hw_softmax_as_float(d, no_mask(8, 48), d_scale);
  const MatF ref = scaled_masked_softmax(
      dequantize_i32(d, static_cast<float>(d_scale)), no_mask(8, 48), 8.0f);
  EXPECT_LE(max_abs_diff(got, ref), 0.025) << "scale " << d_scale;
}

INSTANTIATE_TEST_SUITE_P(Scales, SoftmaxScaleSweep,
                         ::testing::Values(1e-4, 1e-3, 1.0 / 512, 1.0 / 128,
                                           0.05, 0.2));

// --- LayerNorm unit -----------------------------------------------------------

TEST(LayerNormUnit, MatchesFloatLayerNorm) {
  Rng rng(4);
  const int n = 128;
  LayerNormParams params = LayerNormParams::random(n, rng);
  MatF g(6, n);
  fill_normal(g, rng, 1.0f, 4.0f);
  const QuantParams gq = calibrate(g, 32000);
  const MatI16 gi = quantize_i16(g, gq);

  const MatF ref = layer_norm(dequantize_i16(gi, gq), params);
  const float out_scale = calibrate(ref, 127).scale;
  const auto unit = hw::LayerNormUnit::build(params, out_scale);
  const MatF got = dequantize(unit(gi), QuantParams{out_scale});
  EXPECT_LE(max_abs_diff(got, ref), 2.5 * out_scale);
  EXPECT_GT(cosine_similarity(got, ref), 0.999);
}

TEST(LayerNormUnit, ScaleInvarianceOfNormalization) {
  // Doubling every INT16 input leaves the output unchanged (up to LUT step):
  // normalization cancels the input scale.
  Rng rng(5);
  const int n = 64;
  const auto params = LayerNormParams::identity(n);
  const auto unit = hw::LayerNormUnit::build(params, 0.05f);
  MatI16 g(1, n), g2(1, n);
  for (int c = 0; c < n; ++c) {
    g(0, c) = static_cast<std::int16_t>(rng.uniform_int(-8000, 8000));
    g2(0, c) = static_cast<std::int16_t>(2 * g(0, c));
  }
  const MatI8 a = unit(g);
  const MatI8 b = unit(g2);
  for (int c = 0; c < n; ++c) EXPECT_NEAR(a(0, c), b(0, c), 1) << c;
}

TEST(LayerNormUnit, ConstantRowOutputsBeta) {
  const int n = 32;
  LayerNormParams params = LayerNormParams::identity(n);
  params.beta.assign(n, 0.5f);
  const float out_scale = 0.01f;
  const auto unit = hw::LayerNormUnit::build(params, out_scale);
  MatI16 g(1, n);
  g.fill(1234);
  const MatI8 y = unit(g);
  for (int c = 0; c < n; ++c) EXPECT_EQ(y(0, c), 50);  // 0.5 / 0.01
}

TEST(LayerNormUnit, FinishRowEqualsRow) {
  // The streaming-accumulator interface (Fig. 7 step 1) must agree with the
  // one-shot row interface exactly.
  Rng rng(6);
  const int n = 96;
  const auto params = LayerNormParams::random(n, rng);
  const auto unit = hw::LayerNormUnit::build(params, 0.03f);
  MatI16 g(1, n);
  std::int64_t sum = 0, sumsq = 0;
  for (int c = 0; c < n; ++c) {
    g(0, c) = static_cast<std::int16_t>(rng.uniform_int(-3000, 3000));
    sum += g(0, c);
    sumsq += static_cast<std::int64_t>(g(0, c)) * g(0, c);
  }
  MatI8 a(1, n), b(1, n);
  unit.row(g.row(0), a.row(0));
  unit.finish_row(g.row(0), sum, sumsq, b.row(0));
  EXPECT_EQ(a, b);
}

TEST(LayerNormUnit, VarianceIdentityHoldsOnIntegers) {
  // step two of Fig. 7: n·ΣG² − (ΣG)² == n²·var exactly on integers.
  Rng rng(7);
  const int n = 50;
  std::vector<std::int64_t> g(n);
  for (auto& v : g) v = rng.uniform_int(-1000, 1000);
  std::int64_t sum = 0, sumsq = 0;
  for (auto v : g) {
    sum += v;
    sumsq += v * v;
  }
  const std::int64_t lhs = n * sumsq - sum * sum;
  // Direct n²·Σ(g−mean)²/n with exact rational mean: compare via n²·var·n.
  std::int64_t rhs = 0;
  for (auto v : g) {
    const std::int64_t d = n * v - sum;  // n·(g − mean)
    rhs += d * d;
  }
  EXPECT_EQ(lhs * n, rhs);
}

}  // namespace
}  // namespace tfacc
