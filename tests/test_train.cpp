// Tests for the training substrate: finite-difference gradient checks,
// agreement with the reference forward pass, and loss descent.
#include <gtest/gtest.h>

#include <cmath>

#include "tensor/ops.hpp"
#include "train/trainer.hpp"

namespace tfacc {
namespace {

ModelConfig grad_config() {
  // Deliberately tiny (head_dim 4) — validate() only requires the Table I
  // *pattern*; the hardware path is not involved in training.
  ModelConfig cfg;
  cfg.name = "grad-check";
  cfg.d_model = 8;
  cfg.d_ff = 32;
  cfg.num_heads = 2;
  cfg.head_dim = 4;
  cfg.num_encoder_layers = 1;
  cfg.num_decoder_layers = 1;
  return cfg;
}

TEST(Trainer, LossIsFiniteAndPositive) {
  Rng rng(1);
  Trainer tr(TransformerWeights::random(grad_config(), 12, rng));
  const SentencePair pair{{3, 4, 5}, {6, 7, 8}};
  const float loss = tr.evaluate_loss(pair);
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_GT(loss, 0.0f);
  // Untrained model ≈ uniform over 12 tokens: loss near ln(12).
  EXPECT_NEAR(loss, std::log(12.0), 1.5);
}

// Finite-difference gradient check across a sample of parameters from every
// block type (embeddings, attention, FFN, layernorm, output projection).
TEST(Trainer, GradientsMatchFiniteDifferences) {
  Rng rng(2);
  TransformerWeights w = TransformerWeights::random(grad_config(), 10, rng);
  const SentencePair pair{{3, 4, 5, 6}, {7, 8, 9}};

  // Analytic gradients via one accumulate() on a fresh trainer.
  Trainer tr(w);
  tr.accumulate(pair);

  // Probe: perturb a parameter in a copy, re-evaluate the loss.
  struct Probe {
    const char* name;
    std::function<float*(TransformerWeights&)> locate;
  };
  const std::vector<Probe> probes = {
      {"src_embedding", [](TransformerWeights& m) {
         return &m.src_embedding(3, 1);
       }},
      {"tgt_embedding", [](TransformerWeights& m) {
         return &m.tgt_embedding(7, 0);
       }},
      {"enc.mha.wq", [](TransformerWeights& m) {
         return &m.encoder_layers[0].mha.heads[0].wq(2, 1);
       }},
      {"enc.mha.bk", [](TransformerWeights& m) {
         return &m.encoder_layers[0].mha.heads[1].bk[2];
       }},
      {"enc.mha.wg", [](TransformerWeights& m) {
         return &m.encoder_layers[0].mha.wg(4, 3);
       }},
      {"enc.mha.gamma", [](TransformerWeights& m) {
         return &m.encoder_layers[0].mha.norm.gamma[5];
       }},
      {"enc.ffn.w1", [](TransformerWeights& m) {
         return &m.encoder_layers[0].ffn.w1(1, 7);
       }},
      {"enc.ffn.b2", [](TransformerWeights& m) {
         return &m.encoder_layers[0].ffn.b2[3];
       }},
      {"dec.self.wv", [](TransformerWeights& m) {
         return &m.decoder_layers[0].self_mha.heads[0].wv(0, 2);
       }},
      {"dec.cross.wk", [](TransformerWeights& m) {
         return &m.decoder_layers[0].cross_mha.heads[1].wk(3, 3);
       }},
      {"dec.ffn.beta", [](TransformerWeights& m) {
         return &m.decoder_layers[0].ffn.norm.beta[1];
       }},
      {"output_projection", [](TransformerWeights& m) {
         return &m.output_projection(2, 4);
       }},
  };

  // grads_ mirrors the weight structure, so the same locator applied to the
  // gradient container finds the analytic derivative of the probed entry.
  const double eps = 1e-3;
  for (const auto& probe : probes) {
    const float analytic =
        *probe.locate(const_cast<TransformerWeights&>(tr.gradients()));

    TransformerWeights wp = w;
    float* p = probe.locate(wp);
    const float orig = *p;
    *p = orig + static_cast<float>(eps);
    Trainer tp(wp);
    const double lp = tp.forward_loss_only(pair);
    *probe.locate(wp) = orig - static_cast<float>(eps);
    Trainer tm(wp);
    const double lm = tm.forward_loss_only(pair);
    const double fd = (lp - lm) / (2 * eps);

    EXPECT_NEAR(analytic, fd, std::abs(fd) * 0.05 + 2e-3) << probe.name;
  }
}

TEST(Trainer, AnalyticGradientDrivesLossDown) {
  // A few Adam steps on a single pair must reduce its loss substantially —
  // this fails if any layer's backward is wrong in sign or scale.
  Rng rng(3);
  AdamConfig adam;
  adam.lr = 5e-3f;
  Trainer tr(TransformerWeights::random(grad_config(), 10, rng), adam);
  const SentencePair pair{{3, 4, 5}, {6, 7}};
  const float before = tr.evaluate_loss(pair);
  for (int i = 0; i < 100; ++i) tr.train_batch({pair});
  const float after = tr.evaluate_loss(pair);
  EXPECT_LT(after, before * 0.3f) << before << " -> " << after;
}

TEST(Trainer, ForwardMatchesReferenceTransformer) {
  // The trainer's forward pass must agree with reference/transformer.cpp
  // (same embeddings, masks, layers) — guarded here via the greedy decode
  // path on shared weights.
  Rng rng(4);
  const TransformerWeights w =
      TransformerWeights::random(grad_config(), 12, rng);
  Trainer tr(w);
  Transformer model(w);

  const SentencePair pair{{3, 4, 5}, {6, 7, 8}};
  // Reference: teacher-forced loss computed from reference decode_states.
  const MatF memory = model.encode(pair.source);
  TokenSeq tgt_in{kBosId};
  tgt_in.insert(tgt_in.end(), pair.reference.begin(), pair.reference.end());
  const MatF states = model.decode_states(
      tgt_in, memory, static_cast<int>(pair.source.size()));
  const MatF logits = gemm(states, w.output_projection);
  TokenSeq labels = pair.reference;
  labels.push_back(kEosId);
  double ref_loss = 0.0;
  for (int r = 0; r < logits.rows(); ++r) {
    double mx = logits(r, 0);
    for (int j = 1; j < logits.cols(); ++j)
      mx = std::max(mx, static_cast<double>(logits(r, j)));
    double sum = 0.0;
    for (int j = 0; j < logits.cols(); ++j)
      sum += std::exp(logits(r, j) - mx);
    ref_loss -= logits(r, labels[static_cast<std::size_t>(r)]) - mx -
                std::log(sum);
  }
  ref_loss /= logits.rows();
  EXPECT_NEAR(tr.evaluate_loss(pair), ref_loss, 1e-4);
}

TEST(Trainer, BatchTrainingLearnsTheSyntheticTask) {
  // Small smoke version of the Section V.A setup: loss on held-out pairs
  // drops markedly after a short training run.
  ModelConfig cfg = grad_config();
  const SyntheticTranslationTask task(8, 3, 6);
  Rng rng(5);
  AdamConfig adam;
  adam.lr = 3e-3f;
  Trainer tr(TransformerWeights::random(cfg, task.vocab_size(), rng), adam);
  const auto train_set = task.corpus(32, rng);
  const auto held_out = task.corpus(8, rng);

  auto mean_loss = [&] {
    float sum = 0;
    for (const auto& p : held_out) sum += tr.evaluate_loss(p);
    return sum / held_out.size();
  };
  const float before = mean_loss();
  for (int epoch = 0; epoch < 12; ++epoch)
    for (std::size_t i = 0; i < train_set.size(); i += 8)
      tr.train_batch(std::vector<SentencePair>(
          train_set.begin() + i,
          train_set.begin() + std::min(i + 8, train_set.size())));
  EXPECT_LT(mean_loss(), before * 0.8f);
}

}  // namespace
}  // namespace tfacc
