// Tests for the analytic models: Eq. 3 ratios, the GPU baseline, the
// resource/power model (Table II calibration bands).
#include <gtest/gtest.h>

#include "perf/analysis.hpp"
#include "perf/gpu_model.hpp"
#include "perf/resource_model.hpp"

namespace tfacc {
namespace {

TEST(Analysis, Eq3PaperFormulaAtDesignPoint) {
  // s = 64, h = 8: 64 / (64 + 16384 + 64) ≈ 0.39%.
  EXPECT_NEAR(qkt_ratio_paper(64, 8), 64.0 / 16512.0, 1e-12);
  EXPECT_LT(qkt_ratio_paper(128, 8), 0.01);  // "very small" for s ≤ 128
}

TEST(Analysis, ExactRatioIsSmallToo) {
  const double r = qkt_ratio_exact(64, 512, 8);
  EXPECT_GT(r, 0.0);
  EXPECT_LT(r, 0.05);
}

TEST(Analysis, RatioGrowsWithSAndShrinksWithH) {
  EXPECT_GT(qkt_ratio_paper(128, 8), qkt_ratio_paper(64, 8));
  EXPECT_LT(qkt_ratio_paper(64, 16), qkt_ratio_paper(64, 8));
  EXPECT_GT(qkt_ratio_exact(128, 512, 8), qkt_ratio_exact(64, 512, 8));
}

TEST(Analysis, MacCountsAtDesignPoint) {
  const MhaMacs m = mha_macs(64, 512, 8);
  EXPECT_EQ(m.qkv_projections, 3ll * 64 * 512 * 64 * 8);
  EXPECT_EQ(m.qkt, 64ll * 64 * 64 * 8);
  EXPECT_EQ(m.output_projection, 64ll * 512 * 512);
  EXPECT_EQ(m.total(), 71303168);  // 71.3 M MACs
  EXPECT_EQ(ffn_macs(64, 512, 2048), 134217728);  // 134.2 M MACs
}

TEST(GpuModel, ReproducesTable3Baselines) {
  // Paper Table III: MHA 1557.8 µs, FFN 713.4 µs (V100, batch 1, s = 64).
  const double mha = gpu_mha_latency(64, 512, 8).total_us;
  const double ffn = gpu_ffn_latency(64, 512, 2048).total_us;
  EXPECT_NEAR(mha, 1557.8, 1557.8 * 0.02) << mha;
  EXPECT_NEAR(ffn, 713.4, 713.4 * 0.02) << ffn;
}

TEST(GpuModel, DispatchDominatesAtBatchOne) {
  const GpuLatency mha = gpu_mha_latency(64, 512, 8);
  double dispatch = 0, compute = 0;
  for (const auto& op : mha.ops) {
    dispatch += op.dispatch_us;
    compute += op.compute_us;
  }
  EXPECT_GT(dispatch, compute * 3);  // the launch-bound regime
}

TEST(GpuModel, ComputeGrowsWithSequenceLength) {
  const double s64 = gpu_ffn_latency(64, 512, 2048).total_us;
  const double s512 = gpu_ffn_latency(512, 512, 2048).total_us;
  EXPECT_GT(s512, s64);
}

TEST(GpuModel, OpListsMatchEagerImplementation) {
  EXPECT_EQ(gpu_mha_latency(64, 512, 8).ops.size(), 22u);
  EXPECT_EQ(gpu_ffn_latency(64, 512, 2048).ops.size(), 6u);
}

TEST(ResourceModel, Table2Bands) {
  // Paper Table II (xcvu13p, s = 64, Transformer-base). The analytic model
  // must land within 10% on every primary entry.
  const ResourceModel model;
  const auto table =
      model.utilization_table(ModelConfig::transformer_base(), 64);
  ASSERT_EQ(table.size(), 5u);

  const auto& top = table[0];
  const auto& sa = table[1];
  const auto& sm = table[2];
  const auto& ln = table[3];
  const auto& wm = table[4];

  EXPECT_NEAR(sa.lut, 420867, 420867 * 0.10);
  EXPECT_NEAR(sa.registers, 173110, 173110 * 0.10);
  EXPECT_EQ(sa.dsp, 0);
  EXPECT_EQ(sa.bram, 0);

  EXPECT_NEAR(sm.lut, 21190, 21190 * 0.10);
  EXPECT_NEAR(sm.registers, 32623, 32623 * 0.10);

  EXPECT_NEAR(ln.dsp, 129, 1);  // 2 per lane + 1
  EXPECT_NEAR(ln.bram, 27.5, 27.5 * 0.20);

  EXPECT_NEAR(wm.bram, 456, 5);
  EXPECT_NEAR(wm.lut, 3379, 1);

  EXPECT_NEAR(top.lut, 471563, 471563 * 0.10);
  EXPECT_NEAR(top.registers, 217859, 217859 * 0.10);
  EXPECT_NEAR(top.bram, 498, 498 * 0.10);
  EXPECT_NEAR(top.dsp, 129, 1);
}

TEST(ResourceModel, FitsOnTheDevice) {
  const ResourceModel model;
  const auto avail = xcvu13p_available();
  const auto table =
      model.utilization_table(ModelConfig::transformer_base(), 64);
  EXPECT_LT(table[0].lut, avail.lut);
  EXPECT_LT(table[0].registers, avail.registers);
  EXPECT_LT(table[0].bram, avail.bram);
  EXPECT_LT(table[0].dsp, avail.dsp);
}

TEST(ResourceModel, ScalesWithArrayAndModel) {
  const ResourceModel model;
  EXPECT_GT(model.systolic_array(128, 64).lut,
            model.systolic_array(64, 64).lut * 1.9);
  EXPECT_GT(model.weight_memory(ModelConfig::transformer_big()).bram,
            model.weight_memory(ModelConfig::transformer_base()).bram * 3);
}

TEST(ResourceModel, PowerNearPaperReport) {
  // Paper: 16.7 W total (13.3 dynamic + 3.4 static) at 200 MHz.
  const ResourceModel model;
  const double w = model.total_power_w(64, 64, 200.0, 0.80);
  EXPECT_NEAR(w, 16.7, 16.7 * 0.05);
}

}  // namespace
}  // namespace tfacc
