// Tests for the extension features: beam-search decoding, the Fig. 5 memory
// layout, per-column weight quantization, and weight fault injection.
#include <gtest/gtest.h>

#include "core/accelerator.hpp"
#include "core/memories.hpp"
#include "quant/fault.hpp"
#include "reference/transformer.hpp"
#include "tensor/compare.hpp"
#include "tensor/ops.hpp"

namespace tfacc {
namespace {

ModelConfig micro_config() {
  ModelConfig cfg;
  cfg.name = "micro";
  cfg.d_model = 32;
  cfg.d_ff = 128;
  cfg.num_heads = 2;
  cfg.head_dim = 16;
  cfg.num_encoder_layers = 1;
  cfg.num_decoder_layers = 1;
  return cfg;
}

// --- Beam search --------------------------------------------------------------

TEST(BeamSearch, BeamOneEqualsGreedy) {
  Rng rng(1);
  Transformer model(TransformerWeights::random(micro_config(), 16, rng));
  Transformer::BeamConfig beam;
  beam.beam_size = 1;
  beam.length_penalty = 0.0f;  // pure logprob, like greedy
  for (const TokenSeq& src : {TokenSeq{3, 4, 5}, TokenSeq{6, 7, 8, 9}}) {
    EXPECT_EQ(model.translate_beam(src, 8, beam),
              model.translate_greedy(src, 8));
  }
}

TEST(BeamSearch, WiderBeamNeverWorseInModelScore) {
  // The beam-4 hypothesis must score at least as well (length-normalized
  // logprob) as the greedy one under the same model.
  Rng rng(2);
  Transformer model(TransformerWeights::random(micro_config(), 16, rng));
  const TokenSeq src{3, 5, 7, 9};
  const int max_len = 8;

  auto score = [&](const TokenSeq& out) {
    // Re-score a candidate with teacher forcing.
    const MatF memory = model.encode(src);
    TokenSeq tgt{kBosId};
    double logprob = 0.0;
    TokenSeq full = out;
    full.push_back(kEosId);
    for (int tok : full) {
      const auto logits =
          model.next_token_logits(tgt, memory, static_cast<int>(src.size()));
      float mx = logits[0];
      for (float v : logits) mx = std::max(mx, v);
      double sum = 0;
      for (float v : logits) sum += std::exp(static_cast<double>(v) - mx);
      logprob += logits[static_cast<std::size_t>(tok)] - mx - std::log(sum);
      tgt.push_back(tok);
    }
    const double len = std::max<std::size_t>(1, full.size());
    return logprob / std::pow((5.0 + len) / 6.0, 0.6);
  };

  Transformer::BeamConfig beam;
  beam.beam_size = 4;
  const TokenSeq beam_out = model.translate_beam(src, max_len, beam);
  const TokenSeq greedy_out = model.translate_greedy(src, max_len);
  EXPECT_GE(score(beam_out), score(greedy_out) - 1e-6);
}

TEST(BeamSearch, RespectsMaxLenAndStripsSpecials) {
  Rng rng(3);
  Transformer model(TransformerWeights::random(micro_config(), 16, rng));
  const TokenSeq out = model.translate_beam({3, 4}, 5);
  EXPECT_LE(static_cast<int>(out.size()), 5);
  for (int t : out) {
    EXPECT_NE(t, kBosId);
    EXPECT_NE(t, kEosId);
  }
}

TEST(BeamSearch, RejectsBadArgs) {
  Rng rng(4);
  Transformer model(TransformerWeights::random(micro_config(), 16, rng));
  Transformer::BeamConfig beam;
  beam.beam_size = 0;
  EXPECT_THROW(model.translate_beam({3}, 4, beam), CheckError);
  EXPECT_THROW(model.translate_beam({3}, 0), CheckError);
}

// --- Memory layout (Fig. 5) ----------------------------------------------------

TEST(MemoryLayout, Fig5SizesAtDesignPoint) {
  const auto layout =
      MemoryLayout::compute(ModelConfig::transformer_base(), 64);
  EXPECT_EQ(layout.bytes_of("input Q/X (s x 64h)"), 64 * 512);
  EXPECT_EQ(layout.bytes_of("Temp1 (s x max(s,64))"), 64 * 64);
  EXPECT_EQ(layout.bytes_of("Temp2 (s x 64)"), 64 * 64);
  EXPECT_EQ(layout.bytes_of("P / ReLU(XW1) (s x 256h)"), 64 * 2048);
  EXPECT_EQ(layout.bytes_of("G (s x d_model, INT16)"), 64 * 512 * 2);
  // Weight memory = FFN footprint (dominates the 4·d_model² MHA one).
  EXPECT_EQ(layout.bytes_of("weight memory"),
            2 * 512 * 2048 + (2048 + 512) * 4);
  EXPECT_THROW(layout.bytes_of("nonexistent"), CheckError);
}

TEST(MemoryLayout, Temp1GrowsWithLongSequences) {
  const auto s64 = MemoryLayout::compute(ModelConfig::transformer_base(), 64);
  const auto s128 =
      MemoryLayout::compute(ModelConfig::transformer_base(), 128);
  EXPECT_EQ(s64.bytes_of("Temp1 (s x max(s,64))"), 64 * 64);
  EXPECT_EQ(s128.bytes_of("Temp1 (s x max(s,64))"), 128 * 128);
}

TEST(MemoryLayout, DoubleBufferingDoublesWeights) {
  const ModelConfig cfg = ModelConfig::transformer_base();
  const auto single = MemoryLayout::compute(cfg, 64, false);
  const auto dbl = MemoryLayout::compute(cfg, 64, true);
  EXPECT_EQ(dbl.bytes_of("weight memory"),
            2 * single.bytes_of("weight memory"));
}

TEST(MemoryLayout, FitsTheXcvu13pBramBudget) {
  // The xcvu13p has 2,688 BRAM36 (plus URAM headroom); the full layout at
  // the paper's design point must fit comfortably.
  const auto layout =
      MemoryLayout::compute(ModelConfig::transformer_base(), 64);
  EXPECT_TRUE(layout.fits(2688));
  EXPECT_GT(layout.total_bytes(), 0);
  EXPECT_GT(layout.bram36(), 0.0);
}

// --- Per-column quantization ----------------------------------------------------

TEST(PerColumnQuant, MoreAccurateThanPerTensorOnSkewedColumns) {
  // Columns with very different magnitudes are the per-tensor worst case.
  Rng rng(5);
  const int k = 64, n = 32;
  MatF w(k, n), x(16, k);
  fill_normal(x, rng, 0, 1);
  for (int j = 0; j < n; ++j) {
    const float col_scale = (j % 2 == 0) ? 1.0f : 0.02f;  // skew
    for (int r = 0; r < k; ++r)
      w(r, j) = static_cast<float>(rng.normal(0, 0.3)) * col_scale;
  }
  std::vector<float> b(n, 0.0f);
  const MatF y = gemm(x, w);
  const float in_scale = calibrate(x, 127).scale;
  const float out_scale = calibrate(y, 127).scale;

  const auto per_tensor = QuantizedLinear::build(
      w, b, in_scale, out_scale, WeightGranularity::kPerTensor);
  const auto per_col = QuantizedLinear::build(
      w, b, in_scale, out_scale, WeightGranularity::kPerColumn);
  const MatI8 xi = quantize_i8(x, QuantParams{in_scale});

  // Compare at the INT32 accumulator (before the shared INT8 output
  // quantization floors both variants): weight-quantization error only.
  const MatI32 acc_tensor = per_tensor.accumulate(xi);
  const MatI32 acc_col = per_col.accumulate(xi);
  MatF yt(x.rows(), n), yc(x.rows(), n);
  for (int r = 0; r < x.rows(); ++r)
    for (int j = 0; j < n; ++j) {
      yt(r, j) = static_cast<float>(acc_tensor(r, j)) * in_scale *
                 per_tensor.w_scale;
      yc(r, j) = static_cast<float>(acc_col(r, j)) * in_scale *
                 per_col.col_w_scale[static_cast<std::size_t>(j)];
    }
  // The small-magnitude columns are where per-tensor scales destroy
  // precision (their weights quantize to a handful of levels); restrict the
  // comparison there — per-column must win by a wide margin.
  double small_tensor = 0.0, small_col = 0.0;
  int count = 0;
  for (int r = 0; r < x.rows(); ++r)
    for (int j = 1; j < n; j += 2) {  // the 0.02-scaled columns
      const double dt = static_cast<double>(yt(r, j)) - y(r, j);
      const double dc = static_cast<double>(yc(r, j)) - y(r, j);
      small_tensor += dt * dt;
      small_col += dc * dc;
      ++count;
    }
  small_tensor /= count;
  small_col /= count;
  EXPECT_LT(small_col, small_tensor * 0.05)
      << "tensor " << small_tensor << " col " << small_col;
  // Overall MSE is also never worse.
  EXPECT_LE(mse(y, yc), mse(y, yt) * 1.01);

  // At the INT8 output both remain valid and per-column is never worse.
  const double out_tensor =
      mse(y, dequantize(per_tensor.forward(xi), QuantParams{out_scale}));
  const double out_col =
      mse(y, dequantize(per_col.forward(xi), QuantParams{out_scale}));
  EXPECT_LE(out_col, out_tensor * 1.05);
}

TEST(PerColumnQuant, BlockwiseRequantizeMatchesWholeMatrix) {
  // The accelerator requantizes per 64-column block with offsets; results
  // must agree bit-for-bit with whole-matrix requantization.
  Rng rng(6);
  MatF w(32, 16), x(8, 32);
  fill_normal(w, rng, 0, 0.4);
  fill_normal(x, rng, 0, 1);
  std::vector<float> b(16, 0.01f);
  const auto ql = QuantizedLinear::build(w, b, 0.01f, 0.02f,
                                         WeightGranularity::kPerColumn);
  const MatI8 xi = quantize_i8(x, QuantParams{0.01f});
  const MatI32 acc = ql.accumulate(xi);
  const MatI8 whole = ql.requantize(acc);
  for (int c0 = 0; c0 < 16; c0 += 4) {
    const MatI8 blk = ql.requantize(acc.block(0, c0, acc.rows(), 4), c0);
    for (int r = 0; r < blk.rows(); ++r)
      for (int c = 0; c < 4; ++c) EXPECT_EQ(blk(r, c), whole(r, c0 + c));
  }
}

TEST(PerColumnQuant, AcceleratorStaysBitExactWithPerColumnFfn) {
  ModelConfig cfg;
  cfg.d_model = 128;
  cfg.d_ff = 512;
  cfg.num_heads = 2;
  cfg.head_dim = 64;
  Rng rng(7);
  const FfnWeights w = FfnWeights::random(cfg, rng);
  std::vector<MatF> samples{MatF(12, cfg.d_model)};
  fill_normal(samples[0], rng, 0, 1);
  const auto qf = FfnQuantized::build(w, samples, CalibMethod::kMaxAbs, 0.0f,
                                      WeightGranularity::kPerColumn);
  MatF x(12, cfg.d_model);
  fill_normal(x, rng, 0, 1);
  const MatI8 xi = qf.quantize_in(x);
  Accelerator acc;
  EXPECT_EQ(acc.run_ffn(qf, xi).out, qf.forward(xi));
}

// --- Fault injection ------------------------------------------------------------

TEST(FaultInjection, ZeroBerIsIdentity) {
  Rng rng(8);
  MatI8 m(16, 16);
  fill_uniform_i8(m, rng);
  const MatI8 orig = m;
  Rng frng(9);
  EXPECT_EQ(inject_bit_flips(m, 0.0, frng), 0);
  EXPECT_EQ(m, orig);
}

TEST(FaultInjection, FlipCountTracksBer) {
  Rng rng(10);
  MatI8 m(64, 64);
  fill_uniform_i8(m, rng);
  Rng frng(11);
  const double ber = 0.01;
  const std::int64_t flips = inject_bit_flips(m, ber, frng);
  const double expected = 64 * 64 * 8 * ber;  // ≈ 328
  EXPECT_NEAR(static_cast<double>(flips), expected, 4 * std::sqrt(expected));
}

TEST(FaultInjection, DegradationGrowsWithBer) {
  ModelConfig cfg;
  cfg.d_model = 128;
  cfg.d_ff = 512;
  cfg.num_heads = 2;
  cfg.head_dim = 64;
  Rng rng(12);
  const FfnWeights w = FfnWeights::random(cfg, rng);
  std::vector<MatF> samples{MatF(8, cfg.d_model)};
  fill_normal(samples[0], rng, 0, 1);
  const auto clean = FfnQuantized::build(w, samples);
  const MatI8 xi = clean.quantize_in(samples[0]);
  const MatF base = clean.dequantize_out(clean.forward(xi));

  double prev_cos = 1.1;
  for (double ber : {1e-4, 1e-2}) {
    FfnQuantized faulty = clean;
    Rng frng(13);
    inject_faults(faulty, ber, frng);
    const double cos =
        cosine_similarity(base, faulty.dequantize_out(faulty.forward(xi)));
    EXPECT_LT(cos, prev_cos);
    prev_cos = cos;
  }
  EXPECT_GT(prev_cos, 0.0);  // heavily degraded but not random-sign garbage
}

TEST(FaultInjection, RejectsInvalidBer) {
  MatI8 m(2, 2);
  Rng rng(14);
  EXPECT_THROW(inject_bit_flips(m, -0.1, rng), CheckError);
  EXPECT_THROW(inject_bit_flips(m, 1.5, rng), CheckError);
}

}  // namespace
}  // namespace tfacc
