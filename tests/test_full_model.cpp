// Tests for the full-model scheduler: DMA exposure accounting, KV-cache
// decoder timing, and consistency with the single-block accelerator model.
#include <gtest/gtest.h>

#include "core/full_model.hpp"

namespace tfacc {
namespace {

TEST(WeightBytes, MatchTheFig5Footprint) {
  const ModelConfig cfg = ModelConfig::transformer_base();
  // 4·512² INT8 + biases / 2·512·2048 INT8 + biases.
  EXPECT_EQ(mha_weight_bytes(cfg), 4 * 512 * 512 + 4 * 512 * 4);
  EXPECT_EQ(ffn_weight_bytes(cfg), 2 * 512 * 2048 + (2048 + 512) * 4);
}

TEST(EncoderPass, ComputeEqualsLayersTimesBlocks) {
  const ModelConfig cfg = ModelConfig::transformer_base();
  const FullModelScheduler sched;
  const FullModelReport rep = sched.encoder_pass(cfg, 64);
  const Accelerator& acc = sched.accelerator();
  const Cycle mha = acc.time_mha(64, 64, 512, 8).total_cycles;
  const Cycle ffn = acc.time_ffn(64, 512, 2048).total_cycles;
  EXPECT_EQ(rep.compute_cycles, 6 * (mha + ffn));
  EXPECT_EQ(rep.stages.size(), 12u);
  EXPECT_EQ(rep.total_cycles, rep.compute_cycles + rep.dma_exposed_cycles);
}

TEST(EncoderPass, DoubleBufferingHidesDmaBehindLongCompute) {
  const ModelConfig cfg = ModelConfig::transformer_base();
  DmaConfig db;
  db.double_buffered = true;
  DmaConfig serial;
  serial.double_buffered = false;
  const FullModelReport a = FullModelScheduler({}, db).encoder_pass(cfg, 64);
  const FullModelReport b =
      FullModelScheduler({}, serial).encoder_pass(cfg, 64);
  EXPECT_LT(a.dma_exposed_cycles, b.dma_exposed_cycles);
  EXPECT_LT(a.total_cycles, b.total_cycles);
  // Double buffering exposes exactly max(0, dma − previous compute) per
  // stage (the FFN's 2 MB weight stream exceeds the MHA's compute at
  // 64 B/cycle, so some exposure remains even when prefetching).
  Cycle expected = 0, prev = 0;
  for (const auto& st : a.stages) {
    expected += std::max<Cycle>(0, st.dma - prev);
    prev = st.compute;
  }
  EXPECT_EQ(a.dma_exposed_cycles, expected);
  EXPECT_GT(a.dma_exposed_cycles, 0);
  // Serial mode pays every stream in full.
  EXPECT_EQ(b.dma_exposed_cycles, b.dma_cycles);
}

TEST(EncoderPass, DmaScalesWithBandwidth) {
  const ModelConfig cfg = ModelConfig::transformer_base();
  DmaConfig slow;
  slow.bytes_per_cycle = 8.0;
  DmaConfig fast;
  fast.bytes_per_cycle = 128.0;
  const auto a = FullModelScheduler({}, slow).encoder_pass(cfg, 64);
  const auto b = FullModelScheduler({}, fast).encoder_pass(cfg, 64);
  EXPECT_EQ(a.dma_cycles, 16 * b.dma_cycles);
}

TEST(TimeMhaCached, SingleRowStepCheaperButWeightLoadBound) {
  Accelerator acc;
  const Cycle full = acc.time_mha(64, 64, 512, 8).total_cycles;
  const Cycle step = acc.time_mha_cached(1, 64, 512, 8, 1).total_cycles;
  EXPECT_LT(step, full);
  // The architectural floor: below sa_rows−drain rows, every tile pass is
  // bounded by the 64-cycle weight load, so a 1-row step cannot shrink
  // proportionally — it stays within a small factor of the full block.
  EXPECT_GT(step, full / 3);
}

TEST(TimeMhaCached, CachedKvCheaperThanProjectingIt) {
  Accelerator acc;
  const Cycle cached = acc.time_mha_cached(1, 64, 512, 8, 0).total_cycles;
  const Cycle projecting =
      acc.time_mha_cached(1, 64, 512, 8, 64).total_cycles;
  EXPECT_LT(cached, projecting);
}

TEST(TimeMhaCached, GrowsWithContextLength) {
  Accelerator acc;
  Cycle prev = 0;
  for (int t : {8, 32, 128, 512}) {
    const Cycle c = acc.time_mha_cached(1, t, 512, 8, 1).total_cycles;
    EXPECT_GE(c, prev) << t;
    prev = c;
  }
}

TEST(GreedyDecode, KvCacheBeatsNaiveAndGapGrowsWithLength) {
  const ModelConfig cfg = ModelConfig::transformer_base();
  const FullModelScheduler sched;
  double prev_ratio = 1.0;
  for (int out : {4, 16, 64}) {
    const auto naive = sched.greedy_decode(cfg, 64, out, false);
    const auto cached = sched.greedy_decode(cfg, 64, out, true);
    EXPECT_LT(cached.compute_cycles, naive.compute_cycles) << out;
    const double ratio = static_cast<double>(cached.compute_cycles) /
                         naive.compute_cycles;
    EXPECT_LE(ratio, prev_ratio + 1e-9) << out;
    prev_ratio = ratio;
  }
}

TEST(GreedyDecode, StageCountMatchesSchedule) {
  const ModelConfig cfg = ModelConfig::transformer_base();
  const FullModelScheduler sched;
  const auto rep = sched.greedy_decode(cfg, 64, 5, true);
  // 12 encoder stages + 5 tokens × 6 decoder layers × 3 blocks.
  EXPECT_EQ(rep.stages.size(), 12u + 5u * 6u * 3u);
}

TEST(GreedyDecode, WeightStreamingIsFirstOrderInCachedDecode) {
  // Every decoder layer's weights stream on every step; with KV caching the
  // exposed DMA becomes a first-order share of the total latency.
  const ModelConfig cfg = ModelConfig::transformer_base();
  const FullModelScheduler sched;
  const auto rep = sched.greedy_decode(cfg, 64, 32, true);
  EXPECT_GT(rep.dma_exposed_cycles, rep.total_cycles / 4);
}

TEST(DmaConfig, RejectsNonPositiveBandwidth) {
  DmaConfig dma;
  dma.bytes_per_cycle = 0.0;
  EXPECT_THROW(dma.validate(), CheckError);
}

}  // namespace
}  // namespace tfacc
