// Tests for whole-model quantization: calibration capture, backend routing,
// and agreement between the quantized backend and the accelerator backend.
#include <gtest/gtest.h>

#include "core/backend.hpp"
#include "quant/qtransformer.hpp"
#include "tensor/compare.hpp"

namespace tfacc {
namespace {

ModelConfig hw_tiny() {
  // Smallest hardware-compatible config: one 64-wide head.
  ModelConfig cfg;
  cfg.name = "hw-tiny";
  cfg.d_model = 64;
  cfg.d_ff = 256;
  cfg.num_heads = 1;
  cfg.head_dim = 64;
  cfg.num_encoder_layers = 1;
  cfg.num_decoder_layers = 1;
  return cfg;
}

Transformer make_model(int vocab, Rng& rng) {
  return Transformer(TransformerWeights::random(hw_tiny(), vocab, rng));
}

TEST(CapturingBackend, RecordsEveryBlockInvocation) {
  Rng rng(1);
  Transformer model = make_model(20, rng);
  CaptureStore store;
  model.set_backend(capturing_backend(store));
  // The capturing backend overrides only the batch-style mha/ffn hooks, so
  // supports_cached_decode() is false and the decode loop falls back to
  // full recompute — every block invocation must be recorded.
  model.translate_greedy({3, 4, 5}, 6);
  model.set_backend(ResBlockBackend{});
  // 1 encoder MHA + 1 decoder self + 1 decoder cross = 3 distinct MHA blocks;
  // 2 distinct FFN blocks (encoder + decoder).
  EXPECT_EQ(store.mha.size(), 3u);
  EXPECT_EQ(store.ffn.size(), 2u);
  for (const auto& [w, calib] : store.mha) {
    EXPECT_GT(calib.q.size(), 0u);
    EXPECT_EQ(calib.q.size(), calib.kv.size());
    EXPECT_EQ(calib.q.size(), calib.mask.size());
  }
}

TEST(QuantizedTransformer, BuildsAndTranslatesCloseToFp32) {
  Rng rng(2);
  Transformer model = make_model(24, rng);
  const std::vector<TokenSeq> calib{{3, 4, 5}, {6, 7, 8, 9}, {10, 11}};
  const auto qt = QuantizedTransformer::build(model, calib,
                                              /*max_len=*/8,
                                              SoftmaxImpl::kHardware);
  // Encoder memories must be numerically close between FP32 and INT8 paths.
  const TokenSeq src{3, 4, 5};
  const MatF ref = model.encode(src);
  model.set_backend(qt.backend());
  const MatF got = model.encode(src);
  model.set_backend(ResBlockBackend{});
  EXPECT_GT(cosine_similarity(ref, got), 0.98);
}

TEST(QuantizedTransformer, UnknownBlockThrows) {
  Rng rng(3);
  Transformer model = make_model(20, rng);
  const auto qt = QuantizedTransformer::build(model, {{3, 4, 5}}, 6,
                                              SoftmaxImpl::kFloatExact);
  const MhaWeights stranger = MhaWeights::random(hw_tiny(), rng);
  EXPECT_THROW(qt.mha_for(stranger), CheckError);
}

TEST(QuantizedTransformer, TranslateRestoresBackend) {
  Rng rng(4);
  Transformer model = make_model(20, rng);
  const auto qt = QuantizedTransformer::build(model, {{3, 4, 5}}, 6,
                                              SoftmaxImpl::kHardware);
  const TokenSeq fp32_before = model.translate_greedy({3, 4}, 6);
  qt.translate_greedy(model, {3, 4}, 6);
  // After the quantized call the FP32 backend must be active again.
  EXPECT_EQ(model.translate_greedy({3, 4}, 6), fp32_before);
}

TEST(AcceleratorBackend, AgreesWithQuantizedBackendBitForBit) {
  // The accelerator computes the exact same INT8 arithmetic as the quantized
  // functional model, so the two backends must produce identical floats.
  Rng rng(5);
  Transformer model = make_model(24, rng);
  const std::vector<TokenSeq> calib{{3, 4, 5, 6}, {7, 8, 9}};
  const auto qt = QuantizedTransformer::build(model, calib, 8,
                                              SoftmaxImpl::kHardware);
  const TokenSeq src{4, 6, 8};

  model.set_backend(qt.backend());
  const MatF memory_q = model.encode(src);
  Accelerator acc;
  AcceleratorStats stats;
  model.set_backend(accelerator_backend(qt, acc, &stats));
  const MatF memory_a = model.encode(src);
  model.set_backend(ResBlockBackend{});

  EXPECT_DOUBLE_EQ(max_abs_diff(memory_q, memory_a), 0.0);
  EXPECT_EQ(stats.mha_runs, 1);
  EXPECT_EQ(stats.ffn_runs, 1);
  EXPECT_GT(stats.total_cycles(), 0);
}

TEST(AcceleratorBackend, AccumulatesCyclesAcrossDecode) {
  Rng rng(6);
  Transformer model = make_model(20, rng);
  const auto qt = QuantizedTransformer::build(model, {{3, 4, 5}}, 6,
                                              SoftmaxImpl::kHardware);
  Accelerator acc;
  AcceleratorStats stats;
  model.set_backend(accelerator_backend(qt, acc, &stats));
  model.translate_greedy({3, 4, 5}, 6);
  model.set_backend(ResBlockBackend{});
  EXPECT_GT(stats.mha_runs, stats.ffn_runs);  // self + cross per decoder step
  EXPECT_GT(stats.microseconds(200.0), 0.0);
}

}  // namespace
}  // namespace tfacc
