// Unit tests for src/quant/quantizer: calibration, quantize/dequantize,
// fixed-point requantization.
#include <gtest/gtest.h>

#include <cmath>

#include "quant/quantizer.hpp"
#include "tensor/compare.hpp"
#include "tensor/ops.hpp"

namespace tfacc {
namespace {

TEST(Calibrate, MaxAbsUsesLargestMagnitude) {
  const QuantParams p = calibrate(std::vector<float>{-6.35f, 1.0f, 2.0f}, 127);
  EXPECT_NEAR(p.scale, 6.35f / 127.0f, 1e-6);
}

TEST(Calibrate, AllZeroFallsBackToUnitScale) {
  const QuantParams p = calibrate(std::vector<float>{0.0f, 0.0f}, 127);
  EXPECT_FLOAT_EQ(p.scale, 1.0f);
}

TEST(Calibrate, PercentileClipsOutliers) {
  std::vector<float> v(10000, 1.0f);
  v[0] = 1000.0f;  // single outlier
  const QuantParams pm = calibrate(v, 127, CalibMethod::kMaxAbs);
  const QuantParams pp = calibrate(v, 127, CalibMethod::kPercentile999);
  EXPECT_GT(pm.scale, 1.0f);
  EXPECT_NEAR(pp.scale, 1.0f / 127.0f, 1e-5);
}

TEST(Calibrate, MultiSampleTakesGlobalRange) {
  MatF a(1, 2), b(1, 2);
  a(0, 0) = 1.0f;
  b(0, 1) = -12.7f;
  const QuantParams p = calibrate(std::vector<MatF>{a, b}, 127);
  EXPECT_NEAR(p.scale, 0.1f, 1e-6);
}

TEST(Quantize, RoundTripErrorBoundedByHalfStep) {
  Rng rng(3);
  MatF m(16, 16);
  fill_normal(m, rng, 0, 2);
  const QuantParams p = calibrate(m, 127);
  const MatF back = dequantize(quantize_i8(m, p), p);
  EXPECT_LE(max_abs_diff(m, back), 0.5 * p.scale + 1e-7);
}

TEST(Quantize, SaturatesOutOfRange) {
  MatF m{{100.0f, -100.0f}};
  const MatI8 q = quantize_i8(m, QuantParams{0.1f});
  EXPECT_EQ(q(0, 0), 127);
  EXPECT_EQ(q(0, 1), -128);
}

TEST(Quantize, I16RoundTrip) {
  Rng rng(4);
  MatF m(8, 8);
  fill_normal(m, rng, 0, 5);
  const QuantParams p = calibrate(m, 32000);
  const MatF back = dequantize_i16(quantize_i16(m, p), p);
  EXPECT_LE(max_abs_diff(m, back), 0.5 * p.scale + 1e-7);
}

TEST(QuantizeBias, LandsInAccumulatorUnits) {
  const std::vector<float> bias{1.0f, -0.5f};
  const auto q = quantize_bias(bias, 0.1f, 0.01f);  // acc scale 1e-3
  EXPECT_EQ(q[0], 1000);
  EXPECT_EQ(q[1], -500);
}

TEST(Requantize, MatchesRealValuedRescaling) {
  Rng rng(5);
  MatI32 acc(12, 12);
  for (int r = 0; r < acc.rows(); ++r)
    for (int c = 0; c < acc.cols(); ++c)
      acc(r, c) = rng.uniform_int(-200000, 200000);
  const double ratio = 4.2e-4;
  const auto fps = FixedPointScale::from_double(ratio);
  const MatI8 q = requantize_i8(acc, fps);
  for (int r = 0; r < acc.rows(); ++r)
    for (int c = 0; c < acc.cols(); ++c) {
      const double real = acc(r, c) * ratio;
      EXPECT_NEAR(static_cast<double>(q(r, c)),
                  clamp<double>(real, -128.0, 127.0), 0.75)
          << acc(r, c);
    }
}

TEST(Requantize, I16Path) {
  MatI32 acc{{1000000, -1000000}};
  const auto fps = FixedPointScale::from_double(0.01);
  const MatI16 q = requantize_i16(acc, fps);
  EXPECT_NEAR(q(0, 0), 10000, 1);
  EXPECT_NEAR(q(0, 1), -10000, 1);
}

TEST(Requantize, QuantizedGemmTracksFloatGemm) {
  // The full INT8 pipeline: quantize inputs/weights, int GEMM, requantize —
  // result must track the FP32 GEMM within accumulated quantization error.
  Rng rng(6);
  MatF x(8, 32), w(32, 8);
  fill_normal(x, rng, 0, 1);
  fill_normal(w, rng, 0, 0.5);
  const QuantParams px = calibrate(x, 127);
  const QuantParams pw = calibrate(w, 127);
  const MatF y = gemm(x, w);
  const QuantParams py = calibrate(y, 127);

  const MatI32 acc = gemm_i8(quantize_i8(x, px), quantize_i8(w, pw));
  const auto fps = FixedPointScale::from_double(
      static_cast<double>(px.scale) * pw.scale / py.scale);
  const MatF yq = dequantize(requantize_i8(acc, fps), py);
  EXPECT_GT(cosine_similarity(y, yq), 0.999);
  EXPECT_LT(max_abs_diff(y, yq) / calibrate(y, 1).scale, 0.05);
}

}  // namespace
}  // namespace tfacc
